// Chaos: link blackouts on a 3-hop line (§9 robustness).
//
// Two fixed blackout windows on the first-hop link (border router <-> relay
// 10) cut the only path mid-transfer. With the default R2 budget TCP itself
// rides out both outages — expected shape: the connection survives without a
// single reconnect, goodput dips by roughly the outage fraction, and the
// flow resumes within a few RTO doublings of each window's end.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "line_blackout";
    d.title = "Chaos: first-hop link blackouts on a 3-hop line";
    d.base.topology.kind = TopologyKind::kLine;
    d.base.topology.hops = 3;
    d.base.workload.totalBytes = 40000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.base.fault.chaos = true;
    // Two dark windows on link 1<->10: [5 s, 12 s) and [22 s, 29 s) —
    // both inside the ~16 s (plus outage time) life of the transfer.
    d.base.fault.plan.fixed = {
        {sim::FaultKind::kLinkBlackout, 5 * sim::kSecond, 7 * sim::kSecond, 1, 10},
        {sim::FaultKind::kLinkBlackout, 22 * sim::kSecond, 7 * sim::kSecond, 1, 10},
    };
    d.axes = {{"fault", {0, 1}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = scenario::faultFromAxis(p.value("fault"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %14s %12s %12s %10s\n", "Fault", "Goodput kb/s",
                    "Reconnects", "Recover s", "Outage s");
        for (double fault : {0.0, 1.0}) {
            std::printf("%-10s %14.1f %12.1f %12.1f %10.1f\n",
                        fault > 0.5 ? "blackout" : "clean",
                        r.mean("goodput_kbps", {{"fault", fault}}),
                        r.mean("reconnects", {{"fault", fault}}),
                        r.mean("recover_s", {{"fault", fault}}),
                        r.mean("outage_s", {{"fault", fault}}));
        }
        std::printf("\nTCP should survive both windows on its own R2 budget:\n"
                    "0 reconnects, recovery within a few RTO doublings.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
