// Mixed uplink/downlink multi-flow office run: two sensors stream up while
// the cloud pushes firmware-update-style bulk data down to two others, all
// four flows sharing the Fig. 3 tree concurrently — the bidirectional
// contention pattern a real deployment sees, and a scenario the old
// single-flow bench helpers could not express.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "office_multiflow";
    d.title = "Office multi-flow: mixed uplink/downlink over the Fig. 3 tree";
    // Shared preset (also behind the timer_wheel_ab A/B and the scheduler
    // equivalence tests): sensors 12/14 stream up, 13/15 receive bulk
    // downlink (3-5 hops out), all four flows saturating.
    d.base = scenario::officeMultiflowSpec();
    d.seeds = {1, 2};
    d.present = [](const SweepResult& r) {
        std::printf("%-8s %-6s %-6s %12s %12s\n", "Flow", "Node", "Dir", "kb/s (mean)",
                    "RTT ms");
        for (std::size_t f = 0; f < 4; ++f) {
            const std::string p = "flow" + std::to_string(f);
            double kbps = 0.0, rtt = 0.0;
            for (const auto& record : r.records) {
                kbps += record.row.number(p + "_kbps");
                rtt += record.row.number(p + "_rtt_ms");
            }
            const auto& first = r.records.front().row;
            std::printf("%-8zu %-6.0f %-6s %12.1f %12.0f\n", f,
                        first.number(p + "_node"), first.str(p + "_dir").c_str(),
                        kbps / double(r.records.size()), rtt / double(r.records.size()));
        }
        double aggregate = 0.0, fairness = 0.0;
        for (const auto& record : r.records) {
            aggregate += record.row.number("aggregate_kbps");
            fairness += record.row.number("jain_fairness");
        }
        std::printf("\naggregate %.1f kb/s, Jain fairness %.2f across the four flows\n",
                    aggregate / double(r.records.size()),
                    fairness / double(r.records.size()));
        std::printf("Expect uplink and downlink to coexist without starving either\n"
                    "direction (the RED-queued relays keep tail drops bounded).\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
