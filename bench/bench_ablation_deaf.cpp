// Ablation (§4): software CSMA vs "deaf listening" hardware CSMA.
//
// With deaf listening the radio cannot hear incoming frames during CSMA
// backoff, which breaks TCP's bidirectional data/ACK flow. Expected: a
// large goodput gap in favor of software CSMA.
#include "bench/common.hpp"

using namespace bench;

namespace {
double runWith(bool softwareCsma, std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.nodeDefaults.macConfig.softwareCsma = softwareCsma;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(10);
    cfg.nodeDefaults.queueConfig.capacityPackets = 24;
    auto tb = harness::Testbed::line(1, cfg);

    mesh::Node& mote = *tb->findNode(10);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());
    app::GoodputMeter meter(tb->simulator());
    cloudStack.listen(80, serverTcpConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = moteStack.createSocket(moteTcpConfig(mssForFrames(5)));
    app::BulkSender sender(client, 80000);
    client.connect(tb->cloud().address(), 80);
    tb->simulator().runUntil(30 * sim::kMinute);
    return meter.goodputKbps();
}
}  // namespace

int main() {
    printHeader("Ablation: software CSMA vs deaf-listening hardware CSMA (§4)");
    double software = 0, deaf = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        software += runWith(true, seed);
        deaf += runWith(false, seed);
    }
    software /= 3;
    deaf /= 3;
    std::printf("software CSMA (TCPlp's fix): %7.1f kb/s\n", software);
    std::printf("deaf listening (hardware):   %7.1f kb/s\n", deaf);
    std::printf("penalty for deaf listening:  %6.1f%%\n", 100.0 * (1.0 - deaf / software));
    return 0;
}
