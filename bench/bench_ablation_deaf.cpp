// Ablation (§4): software CSMA vs "deaf listening" hardware CSMA.
//
// With deaf listening the radio cannot hear incoming frames during CSMA
// backoff, which breaks TCP's bidirectional data/ACK flow. Expected: a
// large goodput gap in favor of software CSMA.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "ablation_deaf";
    d.title = "Ablation: software CSMA vs deaf-listening hardware CSMA (Sec. 4)";
    d.base.topology.hops = 1;
    d.base.topology.retryDelayMax = sim::fromMillis(10);
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 80000;
    d.base.workload.timeLimit = 30 * sim::kMinute;
    d.axes = {{"software_csma", {1, 0}}};
    d.seeds = {1, 2, 3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.softwareCsma = p.value("software_csma") != 0;
    };
    d.present = [](const SweepResult& r) {
        const double software = r.mean("goodput_kbps", {{"software_csma", 1}});
        const double deaf = r.mean("goodput_kbps", {{"software_csma", 0}});
        std::printf("software CSMA (TCPlp's fix): %7.1f kb/s\n", software);
        std::printf("deaf listening (hardware):   %7.1f kb/s\n", deaf);
        std::printf("penalty for deaf listening:  %6.1f%%\n",
                    100.0 * (1.0 - deaf / software));
    };
    return d;
}

Registration reg{def()};
}  // namespace
