// Figure 13: RTT distribution over a duty-cycled link with a fixed 2 s
// sleep interval.
//
// Expected shape (Appendix C.1): uplink RTTs cluster at ~1 multiple of the
// sleep interval; downlink RTTs spread across multiples of it (ACKs wait in
// the uplink queue across duty cycles).
#include "bench/sleepy_common.hpp"

using namespace bench;

namespace {
void histogram(const char* label, const Summary& rtt) {
    std::printf("\n%s: n=%zu median=%.0f ms p10=%.0f p90=%.0f max=%.0f\n", label, rtt.count(),
                rtt.median(), rtt.percentile(10), rtt.percentile(90), rtt.max());
    const auto h = rtt.histogram(0.0, 8000.0, 16);  // 500 ms buckets
    for (std::size_t i = 0; i < h.size(); ++i) {
        std::printf("  %4zu-%4zu ms |", i * 500, (i + 1) * 500);
        for (std::size_t b = 0; b < h[i] && b < 60; ++b) std::printf("#");
        std::printf(" %zu\n", h[i]);
    }
}
}  // namespace

int main() {
    printHeader("Figure 13: RTT distribution at a fixed 2 s sleep interval");
    SleepyOptions o;
    o.sleepy.policy = mac::PollPolicy::kFixed;
    o.sleepy.sleepInterval = 2 * sim::kSecond;
    o.totalBytes = 20000;
    o.timeLimit = 60 * sim::kMinute;

    o.uplink = true;
    const SleepyRun up = runSleepyTransfer(o);
    histogram("Uplink (leaf sends)", up.rttMs);

    o.uplink = false;
    const SleepyRun down = runSleepyTransfer(o);
    histogram("Downlink (leaf receives)", down.rttMs);

    std::printf("\nPaper shape: uplink concentrated near the 2 s interval; downlink\n"
                "spread over multiples of it.\n");
    return 0;
}
