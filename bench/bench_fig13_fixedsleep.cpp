// Figure 13: RTT distribution over a duty-cycled link with a fixed 2 s
// sleep interval.
//
// Expected shape (Appendix C.1): uplink RTTs cluster at ~1 multiple of the
// sleep interval; downlink RTTs spread across multiples of it (ACKs wait in
// the uplink queue across duty cycles).
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig13_fixedsleep";
    d.title = "Figure 13: RTT distribution at a fixed 2 s sleep interval";
    d.base.workload.kind = WorkloadKind::kSleepyBulk;
    d.base.workload.sleepy.policy = mac::PollPolicy::kFixed;
    d.base.workload.sleepy.sleepInterval = 2 * sim::kSecond;
    d.base.workload.totalBytes = 20000;
    d.base.workload.timeLimit = 60 * sim::kMinute;
    d.axes = {{"uplink", {1, 0}}};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.uplink = p.value("uplink") != 0;
    };
    // Custom measure: the standard sleepy row plus the 500 ms-bucket RTT
    // histogram the figure plots.
    d.measure = [](const ScenarioSpec& spec, const Point& p) {
        const scenario::SleepyRunResult r = scenario::runSleepyBulk(spec, p.seed);
        scenario::MetricRow row;
        row.set("goodput_kbps", r.goodputKbps)
            .set("rtt_n", std::uint64_t(r.rttMs.count()))
            .set("rtt_median_ms", r.rttMs.median())
            .set("rtt_p10_ms", r.rttMs.percentile(10))
            .set("rtt_p90_ms", r.rttMs.percentile(90))
            .set("rtt_max_ms", r.rttMs.max());
        std::string hist;
        for (std::size_t count : r.rttMs.histogram(0.0, 8000.0, 16)) {
            if (!hist.empty()) hist += ',';
            hist += std::to_string(count);
        }
        row.set("rtt_hist_500ms", hist).set("rng_digest", r.rngDigest);
        return row;
    };
    d.present = [](const SweepResult& r) {
        for (const auto& record : r.records) {
            const auto& row = record.row;
            std::printf("\n%s: n=%.0f median=%.0f ms p10=%.0f p90=%.0f max=%.0f\n",
                        record.point.value("uplink") != 0 ? "Uplink (leaf sends)"
                                                          : "Downlink (leaf receives)",
                        row.number("rtt_n"), row.number("rtt_median_ms"),
                        row.number("rtt_p10_ms"), row.number("rtt_p90_ms"),
                        row.number("rtt_max_ms"));
            const std::vector<double> hist = splitCsv(row.str("rtt_hist_500ms"));
            for (std::size_t i = 0; i < hist.size(); ++i) {
                std::printf("  %4zu-%4zu ms |", i * 500, (i + 1) * 500);
                for (std::size_t b = 0; b < std::size_t(hist[i]) && b < 60; ++b)
                    std::printf("#");
                std::printf(" %zu\n", std::size_t(hist[i]));
            }
        }
        std::printf("\nPaper shape: uplink concentrated near the 2 s interval; downlink\n"
                    "spread over multiples of it.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
