// Shared setup for the Appendix C (duty-cycled link) benches: one sleepy
// leaf attached to the border router, TCP to/from the cloud host.
#pragma once

#include "bench/common.hpp"

namespace bench {

struct SleepyRun {
    double goodputKbps = 0.0;
    std::size_t bytes = 0;
    Summary rttMs;          // sender-side RTT samples
    double idleRadioDc = 0.0;  // duty cycle measured over a quiet tail
};

struct SleepyOptions {
    mac::SleepyConfig sleepy{};
    bool uplink = true;
    std::size_t totalBytes = 40000;
    std::size_t windowSegments = 4;
    std::uint64_t seed = 1;
    sim::Time timeLimit = 30 * sim::kMinute;
    sim::Time idleTail = 0;  // extra quiet time to measure idle duty cycle
};

inline SleepyRun runSleepyTransfer(const SleepyOptions& opt) {
    harness::TestbedConfig cfg;
    cfg.seed = opt.seed;
    auto tb = std::make_unique<harness::Testbed>(cfg);

    mesh::NodeConfig rc = cfg.nodeDefaults;
    tb->addBorderRouterAndCloud(1, {0.0, 0.0}, rc);

    mesh::NodeConfig lc = cfg.nodeDefaults;
    lc.role = mesh::Role::kLeaf;
    lc.sleepyConfig = opt.sleepy;
    lc.macConfig.sleepDuringRetryDelay = true;
    mesh::Node& leaf = tb->addNode(10, {10.0, 0.0}, lc);
    leaf.setParent(1);
    tb->borderRouter().adoptSleepyChild(10);
    tb->borderRouter().addRoute(10, 10);
    leaf.start();

    const std::uint16_t mss = mssForFrames(5);
    tcp::TcpStack leafStack(leaf);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    tcp::TcpStack& senderStack = opt.uplink ? leafStack : cloudStack;
    tcp::TcpStack& receiverStack = opt.uplink ? cloudStack : leafStack;
    tcp::TcpConfig senderCfg =
        opt.uplink ? moteTcpConfig(mss, opt.windowSegments) : serverTcpConfig(mss);
    tcp::TcpConfig receiverCfg =
        opt.uplink ? serverTcpConfig(mss) : moteTcpConfig(mss, opt.windowSegments);

    receiverStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& sender = senderStack.createSocket(senderCfg);
    app::BulkSender bulk(sender, opt.totalBytes);
    sender.connect(opt.uplink ? tb->cloud().address() : leaf.address(), 80);
    tb->simulator().runUntil(opt.timeLimit);

    SleepyRun r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.rttMs = sender.stats().rttSamples;

    if (opt.idleTail > 0) {
        phy::Radio* radio = leaf.radio();
        radio->energy().resetWindow(radio->state(), tb->simulator().now());
        tb->simulator().runUntil(tb->simulator().now() + opt.idleTail);
        r.idleRadioDc = radio->energy().radioDutyCycle(radio->state(), tb->simulator().now());
    }
    return r;
}

}  // namespace bench
