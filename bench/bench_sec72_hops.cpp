// §7.2 + §6.4: goodput vs hop count against the analytical bounds.
//
// Expected shape: one-hop goodput near (but under) the 82 kb/s §6.4 bound,
// then B/2 at two hops and ~B/3 at three or more (radio scheduling).
#include "bench/common.hpp"

using namespace bench;

int main() {
    printHeader("Sec. 7.2: goodput vs hop count (d = 40 ms)");
    const std::uint16_t mss = mssForFrames(5);
    const double bound1 = model::singleHopUpperBound(double(mss), 5.0) * 8.0 / 1000.0;
    std::printf("Single-hop upper bound (Sec. 6.4 analysis): %.1f kb/s (paper: 82)\n\n", bound1);
    std::printf("%-6s %14s %16s %14s\n", "Hops", "Goodput kb/s", "Bound B/min(h,3)", "Paper kb/s");

    const double paper[] = {64.1, 28.3, 19.5, 17.5};
    double b1 = 0.0;
    for (std::size_t hops = 1; hops <= 4; ++hops) {
        double goodput = 0.0;
        const int kSeeds = 2;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            BulkOptions o;
            o.hops = hops;
            o.totalBytes = hops == 1 ? 120000 : 50000;
            o.retryDelayMax = sim::fromMillis(40);
            o.mss = mss;
            // §7.2: four hops need a larger window to fill the longer pipe.
            o.windowSegments = hops >= 4 ? 6 : 4;
            o.seed = seed;
            goodput += runBulkTransfer(o).goodputKbps;
        }
        goodput /= kSeeds;
        if (hops == 1) b1 = goodput;
        std::printf("%-6zu %14.1f %16.1f %14.1f\n", hops, goodput,
                    b1 * model::multihopFactor(hops), paper[hops - 1]);
    }
    std::printf("\nThe measured curve should track B, ~B/2, ~B/3, ~B/3.\n");
    return 0;
}
