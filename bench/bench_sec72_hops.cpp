// §7.2 + §6.4: goodput vs hop count against the analytical bounds.
//
// Expected shape: one-hop goodput near (but under) the 82 kb/s §6.4 bound,
// then B/2 at two hops and ~B/3 at three or more (radio scheduling).
#include "bench/driver.hpp"

#include "tcplp/model/models.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "sec72_hops";
    d.title = "Sec. 7.2: goodput vs hop count (d = 40 ms)";
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.base.topology.queueCapacityPackets = 24;
    d.axes = {{"hops", {1, 2, 3, 4}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.hops = std::size_t(p.value("hops"));
        s.workload.totalBytes = s.topology.hops == 1 ? 120000 : 50000;
        // §7.2: four hops need a larger window to fill the longer pipe.
        s.workload.windowSegments = s.topology.hops >= 4 ? 6 : 4;
    };
    d.present = [](const SweepResult& r) {
        const std::uint16_t mss = scenario::mssForFrames(5);
        const double bound1 = model::singleHopUpperBound(double(mss), 5.0) * 8.0 / 1000.0;
        std::printf("Single-hop upper bound (Sec. 6.4 analysis): %.1f kb/s (paper: 82)\n\n",
                    bound1);
        std::printf("%-6s %14s %16s %14s\n", "Hops", "Goodput kb/s", "Bound B/min(h,3)",
                    "Paper kb/s");
        const double paper[] = {64.1, 28.3, 19.5, 17.5};
        const double b1 = r.mean("goodput_kbps", {{"hops", 1.0}});
        for (double hops : {1.0, 2.0, 3.0, 4.0}) {
            std::printf("%-6.0f %14.1f %16.1f %14.1f\n", hops,
                        r.mean("goodput_kbps", {{"hops", hops}}),
                        b1 * model::multihopFactor(std::size_t(hops)),
                        paper[std::size_t(hops) - 1]);
        }
        std::printf("\nThe measured curve should track B, ~B/2, ~B/3, ~B/3.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
