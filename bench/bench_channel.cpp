// Shared-medium microbenchmark: spatially-indexed batched delivery vs the
// frozen linear-scan reference vs the kAuto adaptive mode, on dense
// office-style grids of 15-100 nodes.
//
// The presenter emits ONE line of JSON to stdout so future PRs can track
// the perf trajectory in BENCH_*.json files:
//
//   {"bench":"channel","grids":[...],"speedup_100":...,...}
//
// The workload drives the medium directly (periodic broadcast frames from
// every node, with collisions and Bernoulli loss) so the measured cost is
// the channel's: who gets examined at carrier-up and at delivery. All modes
// replay the identical simulation — same RNG draw sequence, same delivered
// frames (the equivalence tests prove it); only the wall-clock differs.
// "Linear scan" is the seed behavior: every radio in the network examined
// twice per frame. "Auto" is the production default: linear below
// Channel::kAutoLinearThreshold radios (making the index strictly free on
// small-n runs like the 15-node office), spatial above it.
#include <chrono>
#include <cmath>
#include <memory>

#include "bench/driver.hpp"
#include "tcplp/mesh/node.hpp"
#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/radio.hpp"

namespace {
using namespace bench;
using namespace tcplp::phy;

struct GridResult {
    std::uint64_t transmitted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t listenerVisits = 0;
    std::uint64_t rngDigest = 0;
    double wallMs = 0.0;
    double deliveredPerSec = 0.0;
};

/// One slot cohort: all nodes sharing a backoff-slot phase report together
/// on one re-arming timer (the fleet-synchronized reporting schedule of the
/// §9 sensor deployment). A single event drives the whole cohort, so the
/// measurement isolates medium cost, not workload timer volume.
struct SlotLoop {
    Channel& channel;
    std::vector<std::pair<Radio*, PacketBuffer>> members;
    sim::Time period;
    sim::Time horizon;

    void fire() {
        for (auto& [radio, payload] : members) {
            Frame f;
            f.src = radio->id();
            f.dst = kBroadcast;
            f.payload = payload;
            channel.startTransmission(radio, f);
        }
        if (channel.simulator().now() + period < horizon) {
            channel.simulator().schedule(period, [this] { fire(); });
        }
    }
};

GridResult runGrid(Channel::DeliveryMode mode, std::size_t n) {
    sim::Simulator simulator(11);
    Channel channel(simulator, 12.0);
    channel.setDeliveryMode(mode);
    channel.setDefaultLoss(0.02);

    // Office-style grid of REAL mesh nodes (radio embedded in the full node
    // object, as in every testbed sweep): 10 m spacing, 12 m range —
    // adjacent nodes in range, nodes two apart hidden from each other (the
    // §7.1 geometry), so the traffic below collides at relays exactly like
    // the office runs.
    const auto cols = std::size_t(std::ceil(std::sqrt(double(n))));
    std::vector<std::unique_ptr<mesh::Node>> nodes;
    std::vector<Radio*> radios;
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Position pos{double(i % cols) * 10.0, double(i / cols) * 10.0};
        nodes.push_back(std::make_unique<mesh::Node>(simulator, &channel, NodeId(i + 1),
                                                     pos, mesh::NodeConfig{}));
        radios.push_back(nodes.back()->radio());
        radios.back()->setAutoAck(false);
        radios.back()->setReceiveCallback([&delivered](const Frame&) { ++delivered; });
    }

    // Every node broadcasts a 16-byte report (1.44 ms of air) on a shared
    // slotted schedule — start times aligned to the 802.15.4 unit backoff
    // period (320 us, 20 symbols), as slotted CSMA and fleet-synchronized
    // sensor reporting (§9) produce. Equal frame lengths + slot-aligned
    // starts mean each slot cohort's carriers drop at the SAME tick: the
    // regime where batched delivery collapses event volume and the seed
    // design paid one event per frame. 30 simulated seconds at ~28% per-node
    // duty: a saturated medium where hidden senders collide constantly.
    // (Mode-replay precondition: starts land on ticks ≡ 0 mod 320 us while
    // carrier ends land on ≡ 160 mod 320 us — no event can interleave
    // between same-tick deliveries, so all modes replay the identical RNG
    // sequence; see the caveat in phy/channel.hpp.)
    constexpr sim::Time kSlot = 320;
    constexpr sim::Time kHorizon = 30 * sim::kSecond;
    constexpr std::size_t kSlotsPerRound = 16;
    std::vector<std::unique_ptr<SlotLoop>> loops;
    for (std::size_t phase = 0; phase < kSlotsPerRound; ++phase) {
        loops.push_back(std::make_unique<SlotLoop>(
            SlotLoop{channel, {}, kSlot * kSlotsPerRound, kHorizon}));
    }
    for (std::size_t i = 0; i < n; ++i) {
        loops[i % kSlotsPerRound]->members.emplace_back(radios[i], patternBytes(i, 16));
    }
    for (std::size_t phase = 0; phase < kSlotsPerRound; ++phase) {
        simulator.scheduleAt(sim::Time(phase) * kSlot,
                             [loop = loops[phase].get()] { loop->fire(); });
    }

    const auto t0 = std::chrono::steady_clock::now();
    simulator.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) / 1e6;

    GridResult r;
    r.transmitted = channel.framesTransmitted();
    r.delivered = delivered;
    r.listenerVisits = channel.channelStats().listenerVisits;
    r.rngDigest = simulator.rng().stateDigest();
    r.wallMs = ms;
    r.deliveredPerSec = double(delivered) * 1000.0 / ms;
    return r;
}

ScenarioDef def() {
    ScenarioDef d;
    d.name = "channel_grid";
    d.title = "Channel microbench: spatial index vs linear scan vs auto";
    d.axes = {{"nodes", {15, 50, 100}}};
    d.seeds = {11};
    d.measure = [](const ScenarioSpec&, const Point& p) {
        const std::size_t n = std::size_t(p.value("nodes"));
        // Best-of-3 per mode: the 15-node grid finishes in tens of
        // milliseconds, where one scheduler hiccup swings the ratio by
        // double digits. Reps replay identically (same seed), so the
        // fastest wall is the least-perturbed measurement of the same
        // computation; every non-timing field is rep-invariant.
        const auto best = [n](Channel::DeliveryMode mode) {
            GridResult fastest{};
            for (int rep = 0; rep < 3; ++rep) {
                GridResult r = runGrid(mode, n);
                if (rep == 0 || r.wallMs < fastest.wallMs) fastest = r;
            }
            return fastest;
        };
        const GridResult indexed = best(Channel::DeliveryMode::kSpatialIndex);
        const GridResult linear = best(Channel::DeliveryMode::kLinearScan);
        const GridResult automatic = best(Channel::DeliveryMode::kAuto);
        // All three modes must replay the identical simulation.
        TCPLP_ASSERT(indexed.delivered == linear.delivered &&
                     indexed.rngDigest == linear.rngDigest &&
                     automatic.delivered == linear.delivered &&
                     automatic.rngDigest == linear.rngDigest);
        scenario::MetricRow row;
        row.set("frames", indexed.transmitted)
            .set("delivered", indexed.delivered)
            .set("indexed_delivered_per_sec", indexed.deliveredPerSec)
            .set("linear_delivered_per_sec", linear.deliveredPerSec)
            .set("auto_delivered_per_sec", automatic.deliveredPerSec)
            .set("indexed_listener_visits", indexed.listenerVisits)
            .set("linear_listener_visits", linear.listenerVisits)
            .set("auto_listener_visits", automatic.listenerVisits)
            .set("auto_mode", n < Channel::kAutoLinearThreshold ? "linear" : "spatial")
            .set("speedup", indexed.deliveredPerSec / linear.deliveredPerSec)
            .set("auto_speedup", automatic.deliveredPerSec / linear.deliveredPerSec)
            .set("visit_reduction",
                 double(linear.listenerVisits) / double(indexed.listenerVisits))
            // All three modes proved equal above; expose the digest so the
            // golden corpus / campaign identity checks pin the replay.
            .set("rng_digest", indexed.rngDigest);
        return row;
    };
    d.present = [](const SweepResult& r) {
        std::string grids;
        double speedup100 = 0.0, visitReduction100 = 0.0, autoSpeedup15 = 0.0;
        for (const auto& record : r.records) {
            const std::size_t n = std::size_t(record.point.value("nodes"));
            const auto& row = record.row;
            if (n == 100) {
                speedup100 = row.number("speedup");
                visitReduction100 = row.number("visit_reduction");
            }
            if (n == 15) autoSpeedup15 = row.number("auto_speedup");
            char buf[640];
            std::snprintf(
                buf, sizeof buf,
                "%s{\"nodes\":%zu,\"frames\":%.0f,\"delivered\":%.0f,"
                "\"indexed_delivered_per_sec\":%.0f,\"linear_delivered_per_sec\":%.0f,"
                "\"auto_delivered_per_sec\":%.0f,\"auto_mode\":\"%s\","
                "\"indexed_listener_visits\":%.0f,\"linear_listener_visits\":%.0f,"
                "\"speedup\":%.2f,\"auto_speedup\":%.2f,\"visit_reduction\":%.1f}",
                grids.empty() ? "" : ",", n, row.number("frames"),
                row.number("delivered"), row.number("indexed_delivered_per_sec"),
                row.number("linear_delivered_per_sec"),
                row.number("auto_delivered_per_sec"), row.str("auto_mode").c_str(),
                row.number("indexed_listener_visits"),
                row.number("linear_listener_visits"), row.number("speedup"),
                row.number("auto_speedup"), row.number("visit_reduction"));
            grids += buf;
        }
        std::printf("{\"bench\":\"channel\",\"auto_linear_threshold\":%zu,\"grids\":[%s],"
                    "\"speedup_100\":%.2f,\"visit_reduction_100\":%.1f,"
                    "\"auto_speedup_15\":%.2f}\n",
                    Channel::kAutoLinearThreshold, grids.c_str(), speedup100,
                    visitReduction100, autoSpeedup15);
    };
    return d;
}

Registration reg{def()};
}  // namespace
