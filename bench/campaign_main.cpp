// tcplp_campaign: the cross-scenario campaign orchestrator CLI.
//
// Expands every linked scenario's axis grid x seeds into one flat run-point
// list, shards it across a single pool of forked workers, and emits one
// canonical JSON object per point (timing fields stripped — byte-identical
// for any --jobs N). Usage:
//
//   tcplp_campaign [--list] [--filter SUBSTR] [--subset golden] [--jobs N]
//                  [--out DIR] [--resume] [--golden DIR] [--check]
//                  [--seeds a,b,c] [--quiet]
//
//   --filter    run only scenarios whose name contains SUBSTR
//   --subset    'golden': the curated fast corpus subset (scenario::goldenSubset)
//   --jobs N    worker processes across the whole campaign (default 1, or
//               $TCPLP_BENCH_JOBS); output is byte-identical to N=1
//   --out DIR   write per-scenario artifacts + a resume manifest to DIR
//   --resume    skip points already recorded in DIR's manifest
//   --golden D  write the golden corpus to D — or, with --check, diff
//               against it instead (exit 1 on any non-timing drift)
//   --check     verify mode: re-run and diff against --golden DIR
//   --seeds     override every scenario's seed list
//   --quiet     suppress per-scenario progress on stderr
//
// CI runs `tcplp_campaign --subset golden --golden golden --check` as the
// cross-refactor determinism oracle; see docs/SCENARIOS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tcplp/scenario/campaign.hpp"

namespace {

bool parseSeedList(const char* text, std::vector<std::uint64_t>& out) {
    const char* p = text;
    while (*p) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) return false;
        out.push_back(v);
        p = *end == ',' ? end + 1 : end;
        if (*end != '\0' && *end != ',') return false;
    }
    return !out.empty();
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--list] [--filter SUBSTR] [--subset golden] [--jobs N]\n"
                 "          [--out DIR] [--resume] [--golden DIR] [--check]\n"
                 "          [--seeds a,b,c] [--quiet]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tcplp::scenario;

    bool list = false, check = false, quiet = false;
    std::string filter, subset, goldenDir;
    CampaignOptions options;
    options.progress = true;
    if (const char* env = std::getenv("TCPLP_BENCH_JOBS")) options.jobs = std::atoi(env);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char* name) -> const char* {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
            if (arg == name && i + 1 < argc) return argv[++i];
            return nullptr;
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (const char* v = valueOf("--filter")) {
            filter = v;
        } else if (const char* v = valueOf("--subset")) {
            subset = v;
        } else if (const char* v = valueOf("--jobs")) {
            options.jobs = std::atoi(v);
        } else if (const char* v = valueOf("--out")) {
            options.outDir = v;
        } else if (const char* v = valueOf("--golden")) {
            goldenDir = v;
        } else if (const char* v = valueOf("--seeds")) {
            options.seedOverride.clear();
            if (!parseSeedList(v, options.seedOverride)) {
                std::fprintf(stderr, "bad --seeds list: %s\n", v);
                return 2;
            }
        } else {
            return usage(argv[0]);
        }
    }
    options.progress = !quiet;
    if (check && goldenDir.empty()) {
        std::fprintf(stderr, "--check requires --golden DIR (the corpus to diff)\n");
        return 2;
    }
    if (options.resume && options.outDir.empty()) {
        std::fprintf(stderr, "--resume requires --out DIR (where the manifest lives)\n");
        return 2;
    }
    if (!subset.empty() && subset != "golden") {
        std::fprintf(stderr, "unknown --subset '%s' (only 'golden')\n", subset.c_str());
        return 2;
    }

    std::vector<ScenarioDef> defs =
        subset == "golden" ? goldenSubset() : registryDefs(filter);
    if (subset == "golden") {
        // A curated scenario whose driver stopped being linked must fail
        // loudly — otherwise the corpus check silently shrinks and the
        // "oracle" goes green while checking less than it claims.
        for (const std::string& name : goldenSubsetNames()) {
            bool found = false;
            for (const ScenarioDef& def : defs) found |= (def.name == name);
            if (!found) {
                std::fprintf(stderr,
                             "golden subset scenario '%s' is not registered in this "
                             "binary — corpus check would be incomplete\n",
                             name.c_str());
                return 1;
            }
        }
    }
    if (subset == "golden" && !filter.empty()) {
        std::erase_if(defs, [&filter](const ScenarioDef& d) {
            return d.name.find(filter) == std::string::npos;
        });
    }
    if (list) {
        for (const ScenarioDef& def : defs) {
            std::size_t points = def.seeds.size();
            for (const Axis& a : def.axes) points *= a.values.size();
            std::printf("%-24s %4zu points  %s\n", def.name.c_str(), points,
                        def.title.c_str());
        }
        return 0;
    }
    if (defs.empty()) {
        std::fprintf(stderr, "no scenario matches filter '%s'\n", filter.c_str());
        return 1;
    }

    const CampaignResult result = runCampaign(defs, options);
    if (!result.ok) {
        std::fprintf(stderr, "campaign failed: %s\n", result.error.c_str());
        for (const ShardFailure& failure : result.failures)
            std::fprintf(stderr, "  %s\n", failure.message().c_str());
        return 1;
    }
    if (!quiet) {
        std::fprintf(stderr, "[campaign] %zu points run, %zu resumed, %zu scenarios\n",
                     result.pointsRun, result.pointsResumed, result.scenarios.size());
    }

    if (!goldenDir.empty() && check) {
        const std::vector<GoldenDiff> diffs = checkGoldenCorpus(result, goldenDir);
        if (diffs.empty()) {
            std::fprintf(stderr, "[campaign] golden check OK: %zu scenarios match %s\n",
                         result.scenarios.size(), goldenDir.c_str());
            return 0;
        }
        for (const GoldenDiff& diff : diffs)
            std::fprintf(stderr, "[campaign] GOLDEN DIFF in %s: %s\n",
                         diff.scenario.c_str(), diff.detail.c_str());
        return 1;
    }
    if (!goldenDir.empty()) {
        std::string error;
        if (!writeGoldenCorpus(result, goldenDir, error)) {
            std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[campaign] golden corpus written: %zu scenarios -> %s\n",
                     result.scenarios.size(), goldenDir.c_str());
    }

    const std::string lines = result.canonicalLines();
    std::fwrite(lines.data(), 1, lines.size(), stdout);
    return 0;
}
