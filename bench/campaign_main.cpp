// tcplp_campaign: the cross-scenario campaign orchestrator CLI.
//
// Expands every linked scenario's axis grid x seeds into one flat run-point
// list, shards it across a single pool of forked workers, and emits one
// canonical JSON object per point (timing fields stripped — byte-identical
// for any --jobs N). Usage:
//
//   tcplp_campaign [--list] [--filter SUBSTR] [--subset golden] [--jobs N]
//                  [--out DIR] [--resume] [--golden DIR] [--check]
//                  [--present-golden DIR] [--seeds a,b,c] [--quiet]
//                  [--wall-out FILE] [--wall-check FILE] [--wall-tolerance T]
//
//   --filter    run only scenarios whose name contains SUBSTR
//   --subset    'golden': the curated fast corpus subset (scenario::goldenSubset)
//   --jobs N    worker processes across the whole campaign (default 1, or
//               $TCPLP_BENCH_JOBS); output is byte-identical to N=1
//   --out DIR   write per-scenario artifacts + a resume manifest to DIR
//   --resume    skip points already recorded in DIR's manifest
//   --golden D  write the golden corpus to D — or, with --check, diff
//               against it instead (exit 1 on any non-timing drift)
//   --check     verify mode: diff against --golden / --present-golden DIR
//   --present-golden D
//               snapshot each scenario's presenter table (rendered over
//               timing-stripped rows, so the text is deterministic) to
//               D/<name>.txt — or diff against the snapshots with --check
//   --seeds     override every scenario's seed list
//   --quiet     suppress per-scenario progress on stderr
//   --wall-out F      record the campaign's total wall time to F (JSON)
//   --wall-check F    fail (exit 1) if this run's wall time drifts more than
//                     the tolerance from the recording in F
//   --wall-tolerance T  relative drift budget for --wall-check (default 0.2)
//
// CI runs `tcplp_campaign --subset golden --golden golden --check` as the
// cross-refactor determinism oracle, and a same-settings --wall-out /
// --wall-check pair as a coarse perf tripwire; see docs/SCENARIOS.md.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tcplp/scenario/campaign.hpp"

namespace {

bool parseSeedList(const char* text, std::vector<std::uint64_t>& out) {
    const char* p = text;
    while (*p) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) return false;
        out.push_back(v);
        p = *end == ',' ? end + 1 : end;
        if (*end != '\0' && *end != ',') return false;
    }
    return !out.empty();
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--list] [--filter SUBSTR] [--subset golden] [--jobs N]\n"
                 "          [--out DIR] [--resume] [--golden DIR] [--check]\n"
                 "          [--present-golden DIR] [--seeds a,b,c] [--quiet]\n"
                 "          [--wall-out FILE] [--wall-check FILE] [--wall-tolerance T]\n",
                 argv0);
    return 2;
}

/// The scenario's presenter output, captured from stdout. The presenter
/// renders TIMING-STRIPPED copies of the rows: any presenter that reads a
/// wall-clock field sees 0, so the snapshot text is a deterministic function
/// of (spec, seed) and can be golden-pinned like the JSONL artifacts.
std::string capturePresentation(const tcplp::scenario::CampaignScenario& s) {
    using namespace tcplp::scenario;
    SweepResult sweep;
    sweep.def = &s.def;
    sweep.ok = true;
    sweep.records.reserve(s.records.size());
    for (const RunRecord& rec : s.records)
        sweep.records.push_back(RunRecord{rec.point, stripTimingFields(rec.row)});

    std::fflush(stdout);
    FILE* sink = std::tmpfile();
    if (sink == nullptr) return {};
    const int saved = dup(fileno(stdout));
    dup2(fileno(sink), fileno(stdout));
    s.def.present(sweep);
    std::fflush(stdout);
    dup2(saved, fileno(stdout));
    close(saved);

    std::fseek(sink, 0, SEEK_END);
    const long size = std::ftell(sink);
    std::fseek(sink, 0, SEEK_SET);
    std::string text(size > 0 ? std::size_t(size) : 0, '\0');
    if (!text.empty() && std::fread(text.data(), 1, text.size(), sink) != text.size())
        text.clear();
    std::fclose(sink);
    return text;
}

std::string presentArtifactPath(const std::string& dir, const std::string& scenario) {
    return dir + "/" + scenario + ".txt";
}

/// "" on success, else a description of the first mismatch.
std::string diffPresentation(const std::string& path, const std::string& actual) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return "missing presenter snapshot " + path;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string expected = ss.str();
    if (expected == actual) return {};
    // Name the first diverging line for the failure message.
    std::size_t line = 1, pos = 0;
    const std::size_t n = std::min(expected.size(), actual.size());
    while (pos < n && expected[pos] == actual[pos]) {
        if (expected[pos] == '\n') ++line;
        ++pos;
    }
    return "presenter output diverged at line " + std::to_string(line);
}

/// {"campaign_wall_ms": N} — the recorded total campaign wall time.
bool readWallRecord(const std::string& path, double& wallMs) {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::size_t key = text.find("\"campaign_wall_ms\"");
    if (key == std::string::npos) return false;
    const std::size_t colon = text.find(':', key);
    if (colon == std::string::npos) return false;
    wallMs = std::strtod(text.c_str() + colon + 1, nullptr);
    return wallMs > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tcplp::scenario;

    bool list = false, check = false, quiet = false;
    std::string filter, subset, goldenDir, presentDir;
    std::string wallOut, wallCheck;
    double wallTolerance = 0.2;
    CampaignOptions options;
    options.progress = true;
    if (const char* env = std::getenv("TCPLP_BENCH_JOBS")) options.jobs = std::atoi(env);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char* name) -> const char* {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
            if (arg == name && i + 1 < argc) return argv[++i];
            return nullptr;
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (const char* v = valueOf("--filter")) {
            filter = v;
        } else if (const char* v = valueOf("--subset")) {
            subset = v;
        } else if (const char* v = valueOf("--jobs")) {
            options.jobs = std::atoi(v);
        } else if (const char* v = valueOf("--out")) {
            options.outDir = v;
        } else if (const char* v = valueOf("--golden")) {
            goldenDir = v;
        } else if (const char* v = valueOf("--present-golden")) {
            presentDir = v;
        } else if (const char* v = valueOf("--wall-out")) {
            wallOut = v;
        } else if (const char* v = valueOf("--wall-check")) {
            wallCheck = v;
        } else if (const char* v = valueOf("--wall-tolerance")) {
            wallTolerance = std::strtod(v, nullptr);
            if (wallTolerance <= 0.0) {
                std::fprintf(stderr, "bad --wall-tolerance: %s\n", v);
                return 2;
            }
        } else if (const char* v = valueOf("--seeds")) {
            options.seedOverride.clear();
            if (!parseSeedList(v, options.seedOverride)) {
                std::fprintf(stderr, "bad --seeds list: %s\n", v);
                return 2;
            }
        } else {
            return usage(argv[0]);
        }
    }
    options.progress = !quiet;
    if (check && goldenDir.empty() && presentDir.empty()) {
        std::fprintf(stderr,
                     "--check requires --golden DIR and/or --present-golden DIR "
                     "(the corpus to diff)\n");
        return 2;
    }
    if (options.resume && options.outDir.empty()) {
        std::fprintf(stderr, "--resume requires --out DIR (where the manifest lives)\n");
        return 2;
    }
    if (!subset.empty() && subset != "golden") {
        std::fprintf(stderr, "unknown --subset '%s' (only 'golden')\n", subset.c_str());
        return 2;
    }

    std::vector<ScenarioDef> defs =
        subset == "golden" ? goldenSubset() : registryDefs(filter);
    if (subset == "golden") {
        // A curated scenario whose driver stopped being linked must fail
        // loudly — otherwise the corpus check silently shrinks and the
        // "oracle" goes green while checking less than it claims.
        for (const std::string& name : goldenSubsetNames()) {
            bool found = false;
            for (const ScenarioDef& def : defs) found |= (def.name == name);
            if (!found) {
                std::fprintf(stderr,
                             "golden subset scenario '%s' is not registered in this "
                             "binary — corpus check would be incomplete\n",
                             name.c_str());
                return 1;
            }
        }
    }
    if (subset == "golden" && !filter.empty()) {
        std::erase_if(defs, [&filter](const ScenarioDef& d) {
            return d.name.find(filter) == std::string::npos;
        });
    }
    if (list) {
        for (const ScenarioDef& def : defs) {
            std::size_t points = def.seeds.size();
            for (const Axis& a : def.axes) points *= a.values.size();
            std::printf("%-24s %4zu points  %s\n", def.name.c_str(), points,
                        def.title.c_str());
        }
        return 0;
    }
    if (defs.empty()) {
        std::fprintf(stderr, "no scenario matches filter '%s'\n", filter.c_str());
        return 1;
    }

    const auto wallStart = std::chrono::steady_clock::now();
    const CampaignResult result = runCampaign(defs, options);
    const double wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wallStart)
                              .count();
    if (!result.ok) {
        std::fprintf(stderr, "campaign failed: %s\n", result.error.c_str());
        for (const ShardFailure& failure : result.failures)
            std::fprintf(stderr, "  %s\n", failure.message().c_str());
        return 1;
    }
    if (!quiet) {
        std::fprintf(stderr, "[campaign] %zu points run, %zu resumed, %zu scenarios\n",
                     result.pointsRun, result.pointsResumed, result.scenarios.size());
    }

    // --- Wall-clock tracker (coarse same-machine perf tripwire) ------------
    if (!wallOut.empty()) {
        std::ofstream out(wallOut, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write wall record '%s'\n", wallOut.c_str());
            return 1;
        }
        out << "{\"campaign_wall_ms\": " << std::int64_t(wallMs) << "}\n";
        if (!quiet)
            std::fprintf(stderr, "[campaign] wall %.0f ms recorded to %s\n", wallMs,
                         wallOut.c_str());
    }
    if (!wallCheck.empty()) {
        double recordedMs = 0.0;
        if (!readWallRecord(wallCheck, recordedMs)) {
            std::fprintf(stderr, "cannot read wall record '%s'\n", wallCheck.c_str());
            return 1;
        }
        const double drift = wallMs / recordedMs - 1.0;
        std::fprintf(stderr, "[campaign] wall %.0f ms vs recorded %.0f ms (%+.0f%%)\n",
                     wallMs, recordedMs, drift * 100.0);
        if (drift > wallTolerance || drift < -wallTolerance) {
            std::fprintf(stderr,
                         "[campaign] WALL DRIFT beyond +/-%.0f%% — perf regression "
                         "or machine noise; investigate before re-recording\n",
                         wallTolerance * 100.0);
            return 1;
        }
    }

    // --- Presenter snapshots ----------------------------------------------
    int presentFailures = 0;
    if (!presentDir.empty() && check) {
        std::size_t checked = 0;
        for (const CampaignScenario& s : result.scenarios) {
            if (!s.def.present) continue;
            const std::string detail = diffPresentation(
                presentArtifactPath(presentDir, s.def.name), capturePresentation(s));
            if (detail.empty()) {
                ++checked;
                continue;
            }
            std::fprintf(stderr, "[campaign] PRESENT DIFF in %s: %s\n",
                         s.def.name.c_str(), detail.c_str());
            ++presentFailures;
        }
        if (presentFailures == 0)
            std::fprintf(stderr, "[campaign] presenter check OK: %zu snapshots match %s\n",
                         checked, presentDir.c_str());
    } else if (!presentDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(presentDir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create present-golden directory '%s': %s\n",
                         presentDir.c_str(), ec.message().c_str());
            return 1;
        }
        std::size_t written = 0;
        for (const CampaignScenario& s : result.scenarios) {
            if (!s.def.present) continue;
            const std::string path = presentArtifactPath(presentDir, s.def.name);
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                std::fprintf(stderr, "cannot write presenter snapshot '%s'\n",
                             path.c_str());
                return 1;
            }
            out << capturePresentation(s);
            ++written;
        }
        std::fprintf(stderr, "[campaign] %zu presenter snapshots written to %s\n",
                     written, presentDir.c_str());
    }

    if (!goldenDir.empty() && check) {
        const std::vector<GoldenDiff> diffs = checkGoldenCorpus(result, goldenDir);
        if (diffs.empty()) {
            std::fprintf(stderr, "[campaign] golden check OK: %zu scenarios match %s\n",
                         result.scenarios.size(), goldenDir.c_str());
            return presentFailures == 0 ? 0 : 1;
        }
        for (const GoldenDiff& diff : diffs)
            std::fprintf(stderr, "[campaign] GOLDEN DIFF in %s: %s\n",
                         diff.scenario.c_str(), diff.detail.c_str());
        return 1;
    }
    if (check) return presentFailures == 0 ? 0 : 1;
    if (!goldenDir.empty()) {
        std::string error;
        if (!writeGoldenCorpus(result, goldenDir, error)) {
            std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[campaign] golden corpus written: %zu scenarios -> %s\n",
                     result.scenarios.size(), goldenDir.c_str());
    }

    const std::string lines = result.canonicalLines();
    std::fwrite(lines.data(), 1, lines.size(), stdout);
    return 0;
}
