// 200-node dense grid stress: many concurrent TCP flows criss-crossing a
// grid an order of magnitude denser than the 15-node office — the workload
// the PR 2 spatial channel index was built for, and one the old
// one-file-per-figure bench structure made awkward to express.
//
// Six flows (mixed uplink/downlink) run from nodes spread across the grid
// while all 200 radios contend for the medium; the row reports per-flow and
// aggregate goodput, Jain fairness, and the listener-visit count that shows
// the index examining neighborhoods instead of all 200 radios.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "grid200_dense";
    d.title = "Dense 200-node grid: multi-flow TCP over the spatial channel index";
    // Shared preset (also behind the timer_wheel_ab A/B and the scheduler
    // equivalence tests): six saturating mixed-direction flows spread
    // across the grid, so goodput and fairness measure the medium, not the
    // byte budget.
    d.base = scenario::grid200DenseSpec();
    // Independent per-point RNG streams (sim::Rng::deriveStream): grid
    // points are their own replications, not paper seed lists.
    d.deriveSeeds = true;
    d.baseSeed = 42;
    d.seeds = {1, 2};
    d.present = [](const SweepResult& r) {
        std::printf("%-8s %-6s %-6s %12s\n", "Flow", "Node", "Dir", "kb/s (mean)");
        for (std::size_t f = 0; f < 6; ++f) {
            const std::string key = "flow" + std::to_string(f) + "_kbps";
            double sum = 0.0;
            for (const auto& record : r.records) sum += record.row.number(key);
            const auto& first = r.records.front().row;
            std::printf("%-8zu %-6.0f %-6s %12.1f\n", f,
                        first.number("flow" + std::to_string(f) + "_node"),
                        first.str("flow" + std::to_string(f) + "_dir").c_str(),
                        sum / double(r.records.size()));
        }
        double aggregate = 0.0, fairness = 0.0, visits = 0.0, frames = 0.0;
        for (const auto& record : r.records) {
            aggregate += record.row.number("aggregate_kbps");
            fairness += record.row.number("jain_fairness");
            visits += record.row.number("listener_visits");
            frames += record.row.number("frames_tx");
        }
        const double n = double(r.records.size());
        std::printf("\naggregate %.1f kb/s, Jain fairness %.2f\n", aggregate / n,
                    fairness / n);
        std::printf("listener visits/frame: %.1f (vs %.0f for a linear scan of 200 "
                    "radios)\n",
                    visits / std::max(1.0, frames), 199.0);
    };
    return d;
}

Registration reg{def()};
}  // namespace
