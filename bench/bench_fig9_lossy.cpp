// Figure 9: resilience to packet loss injected at the border router.
//
//  (a) reliability: TCPlp and CoAP near-100% below ~15% loss; CoCoA falls
//      off early (weak-estimator RTO inflation, §9.4); above 15% CoAP edges
//      out TCP (TCP's 12-rexmit exponential backoff overflows the queue).
//  (b) transport retransmissions climb with loss; TCP's RTO subset shown.
//  (c)/(d) radio and CPU duty cycles rise with loss, comparable across
//      protocols.
#include "bench/common.hpp"
#include "tcplp/harness/anemometer.hpp"

using namespace bench;
using harness::SensorProtocol;

int main() {
    printHeader("Figure 9: injected loss sweep (reliability / rexmits / duty cycles)");
    std::printf("%-10s %-8s %12s %14s %12s %10s %10s\n", "Protocol", "Loss", "Reliab.",
                "Rexmit/10min", "TCP RTOs", "RadioDC%", "CpuDC%");
    const double losses[] = {0.0, 0.03, 0.06, 0.09, 0.12, 0.15, 0.18, 0.21};
    for (SensorProtocol proto :
         {SensorProtocol::kTcp, SensorProtocol::kCoap, SensorProtocol::kCocoa}) {
        for (double p : losses) {
            harness::AnemometerOptions o;
            o.protocol = proto;
            o.batching = true;
            o.duration = 20 * sim::kMinute;
            o.injectedLoss = p;
            o.seed = 5;
            const auto r = harness::runAnemometer(o);
            const double perTen =
                double(r.transportRetransmissions) / (sim::toSeconds(o.duration) / 600.0) / 4.0;
            std::printf("%-10s %-8.2f %11.1f%% %14.1f %12llu %10.2f %10.2f\n",
                        harness::protocolName(proto), p, r.reliability * 100.0, perTen,
                        (unsigned long long)r.tcpTimeouts, r.radioDutyCycle * 100.0,
                        r.cpuDutyCycle * 100.0);
        }
    }
    std::printf("\nPaper shape: TCP & CoAP ~100%% to 15%% loss; CoCoA degrades after\n"
                "~10%%; beyond 15%% CoAP > TCP (backoff policy); duty cycles grow\n"
                "with loss and stay comparable between TCP and CoAP.\n");
    return 0;
}
