// Figure 9: resilience to packet loss injected at the border router.
//
//  (a) reliability: TCPlp and CoAP near-100% below ~15% loss; CoCoA falls
//      off early (weak-estimator RTO inflation, §9.4); above 15% CoAP edges
//      out TCP (TCP's 12-rexmit exponential backoff overflows the queue).
//  (b) transport retransmissions climb with loss; TCP's RTO subset shown.
//  (c)/(d) radio and CPU duty cycles rise with loss, comparable across
//      protocols.
#include "bench/driver.hpp"

namespace {
using namespace bench;
using harness::SensorProtocol;

constexpr SensorProtocol kProtoOrder[] = {SensorProtocol::kTcp, SensorProtocol::kCoap,
                                          SensorProtocol::kCocoa};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig9_lossy";
    d.title = "Figure 9: injected loss sweep (reliability / rexmits / duty cycles)";
    d.base.workload.kind = WorkloadKind::kAnemometer;
    d.base.workload.anemometer.duration = 20 * sim::kMinute;
    d.base.workload.anemometer.batching = true;
    d.axes = {{"proto", {0, 1, 2}},
              {"loss", {0.0, 0.03, 0.06, 0.09, 0.12, 0.15, 0.18, 0.21}}};
    d.seeds = {5};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.anemometer.protocol = kProtoOrder[std::size_t(p.value("proto"))];
        s.workload.anemometer.injectedLoss = p.value("loss");
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %-8s %12s %14s %12s %10s %10s\n", "Protocol", "Loss", "Reliab.",
                    "Rexmit/10min", "TCP RTOs", "RadioDC%", "CpuDC%");
        const double durationSecs = sim::toSeconds(20 * sim::kMinute);
        for (const auto& record : r.records) {
            const SensorProtocol proto =
                kProtoOrder[std::size_t(record.point.value("proto"))];
            const double perTen =
                record.row.number("rexmits") / (durationSecs / 600.0) / 4.0;
            std::printf("%-10s %-8.2f %11.1f%% %14.1f %12.0f %10.2f %10.2f\n",
                        harness::protocolName(proto), record.point.value("loss"),
                        record.row.number("reliability") * 100.0, perTen,
                        record.row.number("tcp_rtos"),
                        record.row.number("radio_dc") * 100.0,
                        record.row.number("cpu_dc") * 100.0);
        }
        std::printf("\nPaper shape: TCP & CoAP ~100%% to 15%% loss; CoCoA degrades after\n"
                    "~10%%; beyond 15%% CoAP > TCP (backoff policy); duty cycles grow\n"
                    "with loss and stay comparable between TCP and CoAP.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
