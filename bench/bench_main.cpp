// Shared CLI for every scenario bench binary.
//
// Each per-figure binary links exactly one driver TU (whose static
// Registration populates the registry) plus this main; `tcplp_bench` links
// all of them. Usage:
//
//   bench [--list] [--filter SUBSTR] [--jobs N] [--json] [--seeds a,b,c]
//         [--campaign]
//
//   --list      print registered scenarios and exit
//   --filter    run only scenarios whose name contains SUBSTR
//   --jobs N    shard each sweep across N worker processes (default 1, or
//               $TCPLP_BENCH_JOBS); merged output is byte-identical to N=1
//   --json      emit one JSON object per run point on stdout (suppresses the
//               human-readable paper tables); CI's sweep smoke parses this
//   --seeds     override every scenario's seed list
//   --campaign  cross-scenario sharding: flatten every selected scenario's
//               grid into one task list for a single worker pool (instead
//               of one pool per scenario); with --json, rows render
//               canonically (timing fields stripped — see tcplp_campaign)
//
// Exit status is nonzero if any sweep fails (including any worker process
// exiting abnormally), which is what the CI smoke keys on.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/driver.hpp"
#include "tcplp/scenario/campaign.hpp"

namespace {

bool parseSeedList(const char* text, std::vector<std::uint64_t>& out) {
    const char* p = text;
    while (*p) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) return false;
        out.push_back(v);
        p = *end == ',' ? end + 1 : end;
        if (*end != '\0' && *end != ',') return false;
    }
    return !out.empty();
}

void printDefaultTable(const bench::SweepResult& result) {
    for (const auto& record : result.records)
        std::printf("%s\n", tcplp::scenario::toJsonLine(record.row).c_str());
}

}  // namespace

int main(int argc, char** argv) {
    using namespace tcplp::scenario;

    bool list = false, json = false, campaign = false;
    std::string filter;
    SweepOptions options;
    if (const char* env = std::getenv("TCPLP_BENCH_JOBS")) options.jobs = std::atoi(env);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char* name) -> const char* {
            const std::string prefix = std::string(name) + "=";
            if (arg.rfind(prefix, 0) == 0) return argv[i] + prefix.size();
            if (arg == name && i + 1 < argc) return argv[++i];
            return nullptr;
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--campaign") {
            campaign = true;
        } else if (const char* v = valueOf("--filter")) {
            filter = v;
        } else if (const char* v = valueOf("--jobs")) {
            options.jobs = std::atoi(v);
        } else if (const char* v = valueOf("--seeds")) {
            options.seedOverride.clear();
            if (!parseSeedList(v, options.seedOverride)) {
                std::fprintf(stderr, "bad --seeds list: %s\n", v);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--list] [--filter SUBSTR] [--jobs N] [--json] "
                         "[--seeds a,b,c] [--campaign]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<const ScenarioDef*> selected;
    for (const ScenarioDef& def : Registry::instance().all()) {
        if (filter.empty() || def.name.find(filter) != std::string::npos)
            selected.push_back(&def);
    }
    if (list) {
        for (const ScenarioDef* def : selected) {
            std::size_t points = def->seeds.size();
            for (const Axis& a : def->axes) points *= a.values.size();
            std::printf("%-24s %4zu points  %s\n", def->name.c_str(), points,
                        def->title.c_str());
        }
        return 0;
    }
    if (selected.empty()) {
        std::fprintf(stderr, "no scenario matches filter '%s'\n", filter.c_str());
        return 1;
    }

    if (campaign) {
        // One shared worker pool over the whole selection: points from
        // different scenarios interleave across workers, and the merge is
        // registry order across scenarios / grid order within.
        CampaignOptions campaignOptions;
        campaignOptions.jobs = options.jobs;
        campaignOptions.seedOverride = options.seedOverride;
        std::vector<ScenarioDef> defs;
        for (const ScenarioDef* def : selected) defs.push_back(*def);
        const CampaignResult result = runCampaign(defs, campaignOptions);
        if (!result.ok) {
            std::fprintf(stderr, "campaign failed: %s\n", result.error.c_str());
            return 1;
        }
        for (const CampaignScenario& s : result.scenarios) {
            if (json) {
                const std::string lines = s.canonicalLines();
                std::fwrite(lines.data(), 1, lines.size(), stdout);
                continue;
            }
            bench::printHeader(s.def.title);
            SweepResult view;
            view.def = &s.def;
            view.records = s.records;
            view.ok = true;
            if (s.def.present) {
                s.def.present(view);
            } else {
                printDefaultTable(view);
            }
        }
        return 0;
    }

    for (const ScenarioDef* def : selected) {
        const SweepResult result = runSweep(*def, options);
        if (!result.ok) {
            std::fprintf(stderr, "[%s] sweep failed: %s\n", def->name.c_str(),
                         result.error.c_str());
            return 1;
        }
        if (json) {
            const std::string lines = result.jsonLines();
            std::fwrite(lines.data(), 1, lines.size(), stdout);
        } else {
            bench::printHeader(def->title);
            if (def->present) {
                def->present(result);
            } else {
                printDefaultTable(result);
            }
        }
    }
    return 0;
}
