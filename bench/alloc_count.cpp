#include "bench/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Atomic: the campaign orchestrator runs sweeps on worker threads.
std::atomic<std::uint64_t> g_allocCount{0};
}  // namespace

namespace bench {
std::uint64_t allocCount() { return g_allocCount.load(std::memory_order_relaxed); }
}  // namespace bench

#if !defined(__SANITIZE_ADDRESS__)
void* operator new(std::size_t n) {
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif
