// Table 1: feature comparison among embedded TCP stacks.
//
// The uIP/BLIP rows describe our EmbeddedTcpSocket profiles; the TCPlp row
// describes the full-scale engine. Each "Yes" is backed by an implemented
// mechanism in this repository (file references printed alongside).
#include "bench/driver.hpp"

namespace {
using namespace bench;

struct FeatureRow {
    const char* feature;
    const char* uip;
    const char* blip;
    const char* gnrc;
    const char* tcplp;
};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "table1_features";
    d.title = "Table 1: TCP feature comparison (paper Table 1)";
    d.measure = [](const ScenarioSpec&, const Point&) {
        // Back the table's claims with the live configuration defaults.
        tcp::TcpConfig full;
        transport::EmbeddedTcpConfig uip;
        uip.profile = transport::EmbeddedProfile::kUip;
        scenario::MetricRow row;
        row.set("tcplp_sack", full.sack)
            .set("tcplp_timestamps", full.timestamps)
            .set("tcplp_delayed_ack", full.delayedAck)
            .set("tcplp_drop_ooo", full.dropOutOfOrder)
            .set("uip_mss", std::uint64_t(uip.mss));
        return row;
    };
    d.present = [](const SweepResult& r) {
        // GNRC column reflects RIOT's stack as characterized by the paper;
        // our simulator reproduces uIP/BLIP behavior via EmbeddedProfile and
        // TCPlp via the full engine.
        const FeatureRow rows[] = {
            {"Flow Control", "Yes", "Yes", "Yes", "Yes"},
            {"Congestion Control", "N/A", "No", "Yes", "Yes (New Reno)"},
            {"RTT Estimation", "Yes", "No", "Yes", "Yes"},
            {"MSS Option", "Yes", "No", "Yes", "Yes"},
            {"TCP Timestamps", "No", "No", "No", "Yes"},
            {"OOO Reassembly", "No", "No", "Yes", "Yes (in-place queue)"},
            {"Selective ACKs", "No", "No", "No", "Yes"},
            {"Delayed ACKs", "No", "No", "No", "Yes"},
        };
        std::printf("%-20s %-8s %-8s %-8s %s\n", "Feature", "uIP", "BLIP", "GNRC", "TCPlp");
        for (const auto& row : rows)
            std::printf("%-20s %-8s %-8s %-8s %s\n", row.feature, row.uip, row.blip,
                        row.gnrc, row.tcplp);
        const auto& live = r.records.front().row;
        std::printf("\nTCPlp defaults: sack=%.0f timestamps=%.0f delayedAck=%.0f "
                    "(src/tcplp/tcp/tcp.hpp)\n",
                    live.number("tcplp_sack"), live.number("tcplp_timestamps"),
                    live.number("tcplp_delayed_ack"));
        std::printf("uIP profile: single outstanding segment, mss=%.0f "
                    "(src/tcplp/transport/embedded_tcp.hpp)\n",
                    live.number("uip_mss"));
    };
    return d;
}

Registration reg{def()};
}  // namespace
