// Table 1: feature comparison among embedded TCP stacks.
//
// The uIP/BLIP rows describe our EmbeddedTcpSocket profiles; the TCPlp row
// describes the full-scale engine. Each "Yes" is backed by an implemented
// mechanism in this repository (file references printed alongside).
#include <cstdio>

#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/embedded_tcp.hpp"

namespace {
struct FeatureRow {
    const char* feature;
    const char* uip;
    const char* blip;
    const char* gnrc;
    const char* tcplp;
};
}  // namespace

int main() {
    std::printf("=== Table 1: TCP feature comparison (paper Table 1) ===\n");
    // GNRC column reflects RIOT's stack as characterized by the paper; our
    // simulator reproduces uIP/BLIP behavior via EmbeddedProfile and TCPlp
    // via the full engine.
    const FeatureRow rows[] = {
        {"Flow Control", "Yes", "Yes", "Yes", "Yes"},
        {"Congestion Control", "N/A", "No", "Yes", "Yes (New Reno)"},
        {"RTT Estimation", "Yes", "No", "Yes", "Yes"},
        {"MSS Option", "Yes", "No", "Yes", "Yes"},
        {"TCP Timestamps", "No", "No", "No", "Yes"},
        {"OOO Reassembly", "No", "No", "Yes", "Yes (in-place queue)"},
        {"Selective ACKs", "No", "No", "No", "Yes"},
        {"Delayed ACKs", "No", "No", "No", "Yes"},
    };
    std::printf("%-20s %-8s %-8s %-8s %s\n", "Feature", "uIP", "BLIP", "GNRC", "TCPlp");
    for (const auto& r : rows)
        std::printf("%-20s %-8s %-8s %-8s %s\n", r.feature, r.uip, r.blip, r.gnrc, r.tcplp);

    // Back the claims with the live configuration defaults.
    tcplp::tcp::TcpConfig full;
    tcplp::transport::EmbeddedTcpConfig uip;
    uip.profile = tcplp::transport::EmbeddedProfile::kUip;
    std::printf("\nTCPlp defaults: sack=%d timestamps=%d delayedAck=%d (src/tcplp/tcp/tcp.hpp)\n",
                full.sack, full.timestamps, full.delayedAck);
    std::printf("uIP profile: single outstanding segment, mss=%u "
                "(src/tcplp/transport/embedded_tcp.hpp)\n",
                uip.mss);
    return 0;
}
