// Chaos: randomized relay reboot storm over the Fig. 3 office tree.
//
// Five relay reboots drawn deterministically from the seed's derived fault
// stream (sim::expandFaultPlan) hit the office mesh while sensor 15 streams
// uplink. Each seed gets a different storm, but the same seed always gets
// the same one — the rows are golden-pinned. Reboots of off-path relays are
// invisible; on-path ones cost route repairs and RTO recoveries.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "office_reboot_storm";
    d.title = "Chaos: randomized relay reboots over the office tree";
    d.base.topology.kind = TopologyKind::kOffice;
    d.base.workload.totalBytes = 25000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.base.fault.chaos = true;
    {
        sim::RandomFaultBurst storm;
        storm.kind = sim::FaultKind::kNodeReboot;
        storm.count = 5;
        storm.windowStart = 5 * sim::kSecond;
        storm.windowEnd = 60 * sim::kSecond;
        storm.durationMin = 2 * sim::kSecond;
        storm.durationMax = 10 * sim::kSecond;
        storm.candidates = {2, 3, 4, 5, 6, 7, 8, 9, 10, 11};  // the relays
        d.base.fault.plan.random = {storm};
    }
    d.axes = {{"fault", {0, 1}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = scenario::faultFromAxis(p.value("fault"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %14s %12s %12s %10s %10s\n", "Fault", "Goodput kb/s",
                    "Reconnects", "Timeouts", "Events", "Outage s");
        for (double fault : {0.0, 1.0}) {
            std::printf("%-10s %14.1f %12.1f %12.1f %10.1f %10.1f\n",
                        fault > 0.5 ? "storm" : "clean",
                        r.mean("goodput_kbps", {{"fault", fault}}),
                        r.mean("reconnects", {{"fault", fault}}),
                        r.mean("timeouts", {{"fault", fault}}),
                        r.mean("fault_events", {{"fault", fault}}),
                        r.mean("outage_s", {{"fault", fault}}));
        }
        std::printf("\nRelay reboots off the sensor's path should cost nothing;\n"
                    "on-path reboots show up as timeouts, not lost bytes.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
