// Scheduler backend A/B at scenario scale: the hierarchical timer wheel vs
// the indexed binary heap on the two timer-storm workloads the wheel was
// built for — the office 15-node Fig. 3 tree under mixed up/downlink flows
// and the 200-node dense grid (both multiflow, both dominated by RTO /
// delayed-ACK / CSMA-backoff / forwarding timers clustering at a handful of
// deadlines).
//
// The sweep grids topology x scheduler x seed. Both backends fire events in
// the identical (when, seq) order, so every metric row — goodput, fairness,
// frames, rng_digest — must be byte-identical between scheduler=0 (heap)
// and scheduler=1 (wheel) modulo the timing fields (wall_ms, events_per_sec
// and the backend label). The CI smoke strips those fields and diffs the
// rest; the presenter prints the wall-clock A/B.
#include <chrono>

#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "timer_wheel_ab";
    d.title = "Scheduler A/B: hierarchical timer wheel vs indexed binary heap";
    d.axes = {{"topo", {0, 1}},        // 0 = office multiflow, 1 = grid200
              {"scheduler", {0, 1}}};  // 0 = binary heap, 1 = timer wheel
    d.seeds = {1};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        // The shared presets (also behind office_multiflow / grid200_dense),
        // shortened so the A/B fits a CI smoke.
        s = p.value("topo") < 0.5 ? scenario::officeMultiflowSpec(60 * sim::kSecond)
                                  : scenario::grid200DenseSpec(15 * sim::kSecond);
        s.topology.scheduler = scenario::schedulerFromAxis(p.value("scheduler"));
    };
    d.measure = [](const ScenarioSpec& s, const Point& p) {
        const auto t0 = std::chrono::steady_clock::now();
        scenario::MetricRow row = scenario::runScenario(s, p.seed);
        const auto t1 = std::chrono::steady_clock::now();
        const double wallMs =
            double(std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()) /
            1000.0;
        row.set("backend", sim::schedulerKindName(s.topology.scheduler))
            .set("wall_ms", wallMs);
        return row;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %10s %10s %8s %14s %20s\n", "topo", "heap ms", "wheel ms",
                    "speedup", "digests", "aggregate kb/s");
        for (double topo : {0.0, 1.0}) {
            const scenario::RunRecord* heap =
                r.first({{"topo", topo}, {"scheduler", 0.0}});
            const scenario::RunRecord* wheel =
                r.first({{"topo", topo}, {"scheduler", 1.0}});
            if (heap == nullptr || wheel == nullptr) continue;
            const double h = heap->row.number("wall_ms");
            const double w = wheel->row.number("wall_ms");
            const bool same =
                heap->row.number("rng_digest") == wheel->row.number("rng_digest") &&
                heap->row.number("aggregate_kbps") == wheel->row.number("aggregate_kbps");
            std::printf("%-10s %10.0f %10.0f %7.2fx %14s %20.1f\n",
                        topo < 0.5 ? "office15" : "grid200", h, w, h / w,
                        same ? "identical" : "DIVERGED!", heap->row.number("aggregate_kbps"));
        }
        std::printf("\nBoth backends replay the identical event order: every metric\n"
                    "column (incl. rng_digest) matches; only wall clock may differ.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
