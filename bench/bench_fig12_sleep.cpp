// Figure 12: TCP over a duty-cycled link with a fixed sleep interval —
// goodput and RTT vs interval duration, uplink and downlink.
//
// Expected shape (Appendix C.1): at 20 ms the throughput matches the
// always-on link; it collapses as the interval grows because the 4-segment
// buffers cannot fill the interval-dominated BDP. Uplink RTT ≈ the sleep
// interval (TCP self-clocking); downlink RTT a multiple of it.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig12_sleep";
    d.title = "Figure 12: fixed sleep interval sweep (TCP over duty-cycled link)";
    d.base.workload.kind = WorkloadKind::kSleepyBulk;
    d.base.workload.sleepy.policy = mac::PollPolicy::kFixed;
    d.base.workload.timeLimit = 40 * sim::kMinute;
    d.axes = {{"sleep_ms", {20, 100, 250, 500, 1000, 2000, 4000}}, {"uplink", {1, 0}}};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const auto ms = sim::Time(p.value("sleep_ms"));
        s.workload.sleepy.sleepInterval = sim::fromMillis(ms);
        s.workload.totalBytes = ms <= 250 ? 60000 : 20000;
        s.workload.uplink = p.value("uplink") != 0;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-12s %14s %12s %14s %12s\n", "Sleep(ms)", "Up kb/s", "UpRTT ms",
                    "Down kb/s", "DownRTT ms");
        for (double ms : {20., 100., 250., 500., 1000., 2000., 4000.}) {
            std::printf("%-12.0f %14.1f %12.0f %14.1f %12.0f\n", ms,
                        r.mean("goodput_kbps", {{"sleep_ms", ms}, {"uplink", 1}}),
                        r.mean("rtt_median_ms", {{"sleep_ms", ms}, {"uplink", 1}}),
                        r.mean("goodput_kbps", {{"sleep_ms", ms}, {"uplink", 0}}),
                        r.mean("rtt_median_ms", {{"sleep_ms", ms}, {"uplink", 0}}));
        }
        std::printf("\nPaper shape: ~full throughput at 20 ms; sharp decline with longer\n"
                    "intervals; uplink RTT tracks the sleep interval (self-clocking).\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
