// Figure 12: TCP over a duty-cycled link with a fixed sleep interval —
// goodput and RTT vs interval duration, uplink and downlink.
//
// Expected shape (Appendix C.1): at 20 ms the throughput matches the
// always-on link; it collapses as the interval grows because the 4-segment
// buffers cannot fill the interval-dominated BDP. Uplink RTT ≈ the sleep
// interval (TCP self-clocking); downlink RTT a multiple of it.
#include "bench/sleepy_common.hpp"

using namespace bench;

int main() {
    printHeader("Figure 12: fixed sleep interval sweep (TCP over duty-cycled link)");
    std::printf("%-12s %14s %12s %14s %12s\n", "Sleep(ms)", "Up kb/s", "UpRTT ms",
                "Down kb/s", "DownRTT ms");
    for (int ms : {20, 100, 250, 500, 1000, 2000, 4000}) {
        SleepyOptions o;
        o.sleepy.policy = mac::PollPolicy::kFixed;
        o.sleepy.sleepInterval = sim::fromMillis(ms);
        o.totalBytes = ms <= 250 ? 60000 : 20000;
        o.timeLimit = 40 * sim::kMinute;

        o.uplink = true;
        const SleepyRun up = runSleepyTransfer(o);
        o.uplink = false;
        const SleepyRun down = runSleepyTransfer(o);
        std::printf("%-12d %14.1f %12.0f %14.1f %12.0f\n", ms, up.goodputKbps,
                    up.rttMs.median(), down.goodputKbps, down.rttMs.median());
    }
    std::printf("\nPaper shape: ~full throughput at 20 ms; sharp decline with longer\n"
                "intervals; uplink RTT tracks the sleep interval (self-clocking).\n");
    return 0;
}
