// Tables 3/4: memory usage of TCPlp connection state and buffers.
//
// The paper reports ROM and RAM per module on TinyOS/RIOT; our analogue is
// the in-memory size of the protocol objects: the Tcb (protocol state), the
// full active socket (protocol + timers + callbacks), the passive socket,
// and the configured buffers. The headline claim to reproduce: active
// connection state is a few hundred bytes — ~1-2% of mote RAM — while
// buffers dominate (§4.2, §4.3).
#include <cstdio>

#include "tcplp/common/arena.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/mesh/node.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/send_buffer.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

int main() {
    std::printf("=== Tables 3/4: TCPlp memory footprint ===\n");
    std::printf("%-42s %8s\n", "Object", "Bytes");
    std::printf("%-42s %8zu\n", "Tcb (protocol state, RAM-active analogue)", sizeof(tcp::Tcb));
    std::printf("%-42s %8zu\n", "TcpSocket (active socket incl. timers)", sizeof(tcp::TcpSocket));
    std::printf("%-42s %8zu\n", "PassiveSocket (listening state)", sizeof(tcp::PassiveSocket));
    std::printf("%-42s %8zu\n", "TcpConfig", sizeof(tcp::TcpConfig));

    const tcp::TcpConfig mote;  // defaults = paper's mote configuration
    std::printf("\nBuffers at the default mote configuration (2 KiB each, §6.2):\n");
    std::printf("%-42s %8zu\n", "send buffer capacity", mote.sendBufferBytes);
    std::printf("%-42s %8zu\n", "recv buffer capacity (+bitmap)",
                mote.recvBufferBytes + mote.recvBufferBytes / 8);

    const std::size_t hamiltonRam = 32 * 1024;
    std::printf("\nHamilton (Cortex-M0+) RAM: %zu B\n", hamiltonRam);
    std::printf("Tcb as %% of Hamilton RAM: %.2f%% (paper: ~2%% incl. app state)\n",
                100.0 * double(sizeof(tcp::Tcb)) / double(hamiltonRam));
    std::printf("Buffers as %% of Hamilton RAM: %.1f%%\n",
                100.0 * double(mote.sendBufferBytes + mote.recvBufferBytes) /
                    double(hamiltonRam));

    // Zero-copy send buffer: owned storage stays tiny when the app hands
    // over immutable chunks (§4.3.1).
    tcp::SendBuffer zc(4096);
    auto chunk = std::make_shared<const Bytes>(patternBytes(0, 4096));
    zc.appendShared(chunk);
    std::printf("\nZero-copy send buffer: queued=%zu B, buffer-owned=%zu B, nodes=%zu\n",
                zc.size(), zc.ownedBytes(), zc.nodeCount());

    // 6LoWPAN reassembly arena (the mote packet heap): genuine buffer
    // pressure — bytes pinned while datagrams gather, drops on exhaustion —
    // instead of elastic heap growth (Ayers et al.'s footprint concern).
    const mesh::NodeConfig nodeDefaults;
    std::printf("\nReassembly arena (per node, mote packet heap):\n");
    std::printf("%-42s %8zu\n", "arena capacity (default)", nodeDefaults.reassemblyArenaBytes);
    std::printf("%-42s %8zu\n", "partial-datagram slots", nodeDefaults.reassemblySlots);
    std::printf("%-42s %8zu\n", "BufferArena object overhead", sizeof(BufferArena));
    std::printf("Arena as %% of Hamilton RAM: %.1f%%\n",
                100.0 * double(nodeDefaults.reassemblyArenaBytes) / double(hamiltonRam));

    // Pressure run: interleave datagrams from several senders so gather
    // buffers coexist at the default arena size (no drops expected).
    sim::Simulator simulator;
    BufferArena arena(nodeDefaults.reassemblyArenaBytes);
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
        5 * sim::kSecond, &arena);
    std::vector<std::vector<PacketBuffer>> flows;
    for (std::uint16_t s = 1; s <= 6; ++s) {
        ip6::Packet p;
        p.src = ip6::Address::meshLocal(s);
        p.dst = ip6::Address::meshLocal(99);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = patternBytes(s, 900);
        flows.push_back(lowpan::encodeDatagram(p, s, 99, s, 104));
    }
    const std::uint64_t heapBlocksBefore = PacketBuffer::stats().allocations;
    for (std::size_t f = 0; f < flows[0].size(); ++f) {
        for (std::uint16_t s = 1; s <= 6; ++s) {
            if (f < flows[s - 1].size()) reasm.input(s, 99, flows[s - 1][f]);
        }
    }
    const std::uint64_t heapBlocks = PacketBuffer::stats().allocations - heapBlocksBefore;
    std::printf("\nPressure run (6 interleaved 900 B datagrams):\n");
    std::printf("%-42s %8llu\n", "datagrams delivered",
                static_cast<unsigned long long>(delivered));
    std::printf("%-42s %8zu\n", "arena high-water bytes", arena.stats().highWaterBytes);
    std::printf("%-42s %8llu\n", "overflow drops (arena + slots)",
                static_cast<unsigned long long>(reasm.stats().arenaDrops +
                                                reasm.stats().slotDrops));
    std::printf("%-42s %8llu\n", "heap blocks allocated while gathering",
                static_cast<unsigned long long>(heapBlocks));

    // Overflow run: the same six flows against a half-size mote heap — now
    // the later FRAG1s find no room and their datagrams are shed, which is
    // the drop accounting the NodeStats fields surface.
    BufferArena tightArena(nodeDefaults.reassemblyArenaBytes / 2);
    std::uint64_t tightDelivered = 0;
    lowpan::Reassembler tightReasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++tightDelivered; },
        5 * sim::kSecond, &tightArena);
    for (std::size_t f = 0; f < flows[0].size(); ++f) {
        for (std::uint16_t s = 1; s <= 6; ++s) {
            if (f < flows[s - 1].size()) tightReasm.input(s, 99, flows[s - 1][f]);
        }
    }
    std::printf("\nOverflow run (same flows, %zu B arena):\n", tightArena.capacity());
    std::printf("%-42s %8llu\n", "datagrams delivered",
                static_cast<unsigned long long>(tightDelivered));
    std::printf("%-42s %8zu\n", "arena high-water bytes",
                tightArena.stats().highWaterBytes);
    std::printf("%-42s %8llu\n", "overflow drops (arena + slots)",
                static_cast<unsigned long long>(tightReasm.stats().arenaDrops +
                                                tightReasm.stats().slotDrops));
    return 0;
}
