// Tables 3/4: memory usage of TCPlp connection state and buffers.
//
// The paper reports ROM and RAM per module on TinyOS/RIOT; our analogue is
// the in-memory size of the protocol objects: the Tcb (protocol state), the
// full active socket (protocol + timers + callbacks), the passive socket,
// and the configured buffers. The headline claim to reproduce: active
// connection state is a few hundred bytes — ~1-2% of mote RAM — while
// buffers dominate (§4.2, §4.3). The reassembly-arena pressure runs put
// genuine buffer pressure (drops, high-water marks) behind the numbers.
#include "bench/driver.hpp"

#include "tcplp/common/arena.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/mesh/node.hpp"
#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/send_buffer.hpp"

namespace {
using namespace bench;

/// Drives the six interleaved 900 B datagram flows through a reassembler
/// backed by `arena`, returning delivered count / drops / heap blocks.
void pressureRun(BufferArena& arena, scenario::MetricRow& row, const char* prefix) {
    sim::Simulator simulator;
    std::uint64_t delivered = 0;
    lowpan::Reassembler reasm(
        simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; }, 5 * sim::kSecond,
        &arena);
    std::vector<std::vector<PacketBuffer>> flows;
    for (std::uint16_t s = 1; s <= 6; ++s) {
        ip6::Packet p;
        p.src = ip6::Address::meshLocal(s);
        p.dst = ip6::Address::meshLocal(99);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = patternBytes(s, 900);
        flows.push_back(lowpan::encodeDatagram(p, s, 99, s, 104));
    }
    const std::uint64_t heapBlocksBefore = PacketBuffer::stats().allocations;
    for (std::size_t f = 0; f < flows[0].size(); ++f) {
        for (std::uint16_t s = 1; s <= 6; ++s) {
            if (f < flows[s - 1].size()) reasm.input(s, 99, flows[s - 1][f]);
        }
    }
    const std::string p = prefix;
    row.set(p + "_delivered", delivered)
        .set(p + "_arena_high_water", std::uint64_t(arena.stats().highWaterBytes))
        .set(p + "_overflow_drops",
             reasm.stats().arenaDrops + reasm.stats().slotDrops)
        .set(p + "_heap_blocks", PacketBuffer::stats().allocations - heapBlocksBefore);
}

ScenarioDef def() {
    ScenarioDef d;
    d.name = "table34_memory";
    d.title = "Tables 3/4: TCPlp memory footprint";
    d.measure = [](const ScenarioSpec&, const Point&) {
        scenario::MetricRow row;
        row.set("tcb_bytes", std::uint64_t(sizeof(tcp::Tcb)))
            .set("socket_bytes", std::uint64_t(sizeof(tcp::TcpSocket)))
            .set("passive_bytes", std::uint64_t(sizeof(tcp::PassiveSocket)))
            .set("config_bytes", std::uint64_t(sizeof(tcp::TcpConfig)));

        const tcp::TcpConfig mote;  // defaults = paper's mote configuration
        row.set("send_buffer_bytes", std::uint64_t(mote.sendBufferBytes))
            .set("recv_buffer_bytes",
                 std::uint64_t(mote.recvBufferBytes + mote.recvBufferBytes / 8));

        // Zero-copy send buffer: owned storage stays tiny when the app
        // hands over immutable chunks (§4.3.1).
        tcp::SendBuffer zc(4096);
        auto chunk = std::make_shared<const Bytes>(patternBytes(0, 4096));
        zc.appendShared(chunk);
        row.set("zc_queued_bytes", std::uint64_t(zc.size()))
            .set("zc_owned_bytes", std::uint64_t(zc.ownedBytes()))
            .set("zc_nodes", std::uint64_t(zc.nodeCount()));

        const mesh::NodeConfig nodeDefaults;
        row.set("arena_capacity", std::uint64_t(nodeDefaults.reassemblyArenaBytes))
            .set("arena_slots", std::uint64_t(nodeDefaults.reassemblySlots))
            .set("arena_overhead", std::uint64_t(sizeof(BufferArena)));

        // Pressure run at the default arena, overflow run at half size.
        BufferArena arena(nodeDefaults.reassemblyArenaBytes);
        pressureRun(arena, row, "pressure");
        BufferArena tightArena(nodeDefaults.reassemblyArenaBytes / 2);
        pressureRun(tightArena, row, "overflow");
        row.set("tight_arena_capacity", std::uint64_t(tightArena.capacity()));
        return row;
    };
    d.present = [](const SweepResult& r) {
        const auto& row = r.records.front().row;
        const auto n = [&row](const char* key) { return std::size_t(row.number(key)); };
        std::printf("%-42s %8s\n", "Object", "Bytes");
        std::printf("%-42s %8zu\n", "Tcb (protocol state, RAM-active analogue)",
                    n("tcb_bytes"));
        std::printf("%-42s %8zu\n", "TcpSocket (active socket incl. timers)",
                    n("socket_bytes"));
        std::printf("%-42s %8zu\n", "PassiveSocket (listening state)", n("passive_bytes"));
        std::printf("%-42s %8zu\n", "TcpConfig", n("config_bytes"));

        std::printf("\nBuffers at the default mote configuration (2 KiB each, Sec. 6.2):\n");
        std::printf("%-42s %8zu\n", "send buffer capacity", n("send_buffer_bytes"));
        std::printf("%-42s %8zu\n", "recv buffer capacity (+bitmap)",
                    n("recv_buffer_bytes"));

        const std::size_t hamiltonRam = 32 * 1024;
        std::printf("\nHamilton (Cortex-M0+) RAM: %zu B\n", hamiltonRam);
        std::printf("Tcb as %% of Hamilton RAM: %.2f%% (paper: ~2%% incl. app state)\n",
                    100.0 * row.number("tcb_bytes") / double(hamiltonRam));
        std::printf("Buffers as %% of Hamilton RAM: %.1f%%\n",
                    100.0 * (row.number("send_buffer_bytes") + 2048.0) /
                        double(hamiltonRam));

        std::printf("\nZero-copy send buffer: queued=%zu B, buffer-owned=%zu B, nodes=%zu\n",
                    n("zc_queued_bytes"), n("zc_owned_bytes"), n("zc_nodes"));

        std::printf("\nReassembly arena (per node, mote packet heap):\n");
        std::printf("%-42s %8zu\n", "arena capacity (default)", n("arena_capacity"));
        std::printf("%-42s %8zu\n", "partial-datagram slots", n("arena_slots"));
        std::printf("%-42s %8zu\n", "BufferArena object overhead", n("arena_overhead"));
        std::printf("Arena as %% of Hamilton RAM: %.1f%%\n",
                    100.0 * row.number("arena_capacity") / double(hamiltonRam));

        std::printf("\nPressure run (6 interleaved 900 B datagrams):\n");
        std::printf("%-42s %8zu\n", "datagrams delivered", n("pressure_delivered"));
        std::printf("%-42s %8zu\n", "arena high-water bytes", n("pressure_arena_high_water"));
        std::printf("%-42s %8zu\n", "overflow drops (arena + slots)",
                    n("pressure_overflow_drops"));
        std::printf("%-42s %8zu\n", "heap blocks allocated while gathering",
                    n("pressure_heap_blocks"));

        std::printf("\nOverflow run (same flows, %zu B arena):\n", n("tight_arena_capacity"));
        std::printf("%-42s %8zu\n", "datagrams delivered", n("overflow_delivered"));
        std::printf("%-42s %8zu\n", "arena high-water bytes", n("overflow_arena_high_water"));
        std::printf("%-42s %8zu\n", "overflow drops (arena + slots)",
                    n("overflow_overflow_drops"));
    };
    return d;
}

Registration reg{def()};
}  // namespace
