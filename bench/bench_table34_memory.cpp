// Tables 3/4: memory usage of TCPlp connection state and buffers.
//
// The paper reports ROM and RAM per module on TinyOS/RIOT; our analogue is
// the in-memory size of the protocol objects: the Tcb (protocol state), the
// full active socket (protocol + timers + callbacks), the passive socket,
// and the configured buffers. The headline claim to reproduce: active
// connection state is a few hundred bytes — ~1-2% of mote RAM — while
// buffers dominate (§4.2, §4.3).
#include <cstdio>

#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/send_buffer.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

int main() {
    std::printf("=== Tables 3/4: TCPlp memory footprint ===\n");
    std::printf("%-42s %8s\n", "Object", "Bytes");
    std::printf("%-42s %8zu\n", "Tcb (protocol state, RAM-active analogue)", sizeof(tcp::Tcb));
    std::printf("%-42s %8zu\n", "TcpSocket (active socket incl. timers)", sizeof(tcp::TcpSocket));
    std::printf("%-42s %8zu\n", "PassiveSocket (listening state)", sizeof(tcp::PassiveSocket));
    std::printf("%-42s %8zu\n", "TcpConfig", sizeof(tcp::TcpConfig));

    const tcp::TcpConfig mote;  // defaults = paper's mote configuration
    std::printf("\nBuffers at the default mote configuration (2 KiB each, §6.2):\n");
    std::printf("%-42s %8zu\n", "send buffer capacity", mote.sendBufferBytes);
    std::printf("%-42s %8zu\n", "recv buffer capacity (+bitmap)",
                mote.recvBufferBytes + mote.recvBufferBytes / 8);

    const std::size_t hamiltonRam = 32 * 1024;
    std::printf("\nHamilton (Cortex-M0+) RAM: %zu B\n", hamiltonRam);
    std::printf("Tcb as %% of Hamilton RAM: %.2f%% (paper: ~2%% incl. app state)\n",
                100.0 * double(sizeof(tcp::Tcb)) / double(hamiltonRam));
    std::printf("Buffers as %% of Hamilton RAM: %.1f%%\n",
                100.0 * double(mote.sendBufferBytes + mote.recvBufferBytes) /
                    double(hamiltonRam));

    // Zero-copy send buffer: owned storage stays tiny when the app hands
    // over immutable chunks (§4.3.1).
    tcp::SendBuffer zc(4096);
    auto chunk = std::make_shared<const Bytes>(patternBytes(0, 4096));
    zc.appendShared(chunk);
    std::printf("\nZero-copy send buffer: queued=%zu B, buffer-owned=%zu B, nodes=%zu\n",
                zc.size(), zc.ownedBytes(), zc.nodeCount());
    return 0;
}
