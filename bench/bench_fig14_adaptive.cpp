// Figure 14 / Appendix C.2: the Trickle-inspired adaptive sleep interval.
//
// smin = 20 ms, smax = 5 s: bursts collapse the interval to smin (high
// throughput), idle periods double it back to smax (~0.1% idle duty cycle).
// Expected: uplink ~always-on throughput (paper 68.6 kb/s), downlink
// slightly less (55.6), uplink RTT mostly under ~200 ms, and a tiny idle
// duty cycle after the transfer ends.
#include "bench/sleepy_common.hpp"

using namespace bench;

namespace {
void rttSummary(const char* label, const Summary& rtt) {
    std::printf("%-24s median=%4.0f ms  p90=%4.0f ms  max=%5.0f ms  (n=%zu)\n", label,
                rtt.median(), rtt.percentile(90), rtt.max(), rtt.count());
}
}  // namespace

int main() {
    printHeader("Figure 14 / C.2: adaptive sleep interval (smin=20 ms, smax=5 s)");
    SleepyOptions o;
    o.sleepy.policy = mac::PollPolicy::kAdaptive;
    o.sleepy.sminAdaptive = 20 * sim::kMillisecond;
    o.sleepy.smaxAdaptive = 5 * sim::kSecond;
    o.totalBytes = 100000;
    o.windowSegments = 6;  // C.2 enlarges buffers to 6 packets
    o.timeLimit = 30 * sim::kMinute;
    o.idleTail = 10 * sim::kMinute;

    o.uplink = true;
    const SleepyRun up = runSleepyTransfer(o);
    o.uplink = false;
    o.idleTail = 0;
    const SleepyRun down = runSleepyTransfer(o);

    std::printf("Uplink goodput:   %6.1f kb/s   (paper: 68.6; always-on link: ~60)\n",
                up.goodputKbps);
    std::printf("Downlink goodput: %6.1f kb/s   (paper: 55.6)\n", down.goodputKbps);
    rttSummary("Uplink RTT", up.rttMs);
    rttSummary("Downlink RTT", down.rttMs);
    std::printf("Idle radio duty cycle after transfer: %.3f%%   (paper: ~0.1%%)\n",
                up.idleRadioDc * 100.0);
    return 0;
}
