// Figure 14 / Appendix C.2: the Trickle-inspired adaptive sleep interval.
//
// smin = 20 ms, smax = 5 s: bursts collapse the interval to smin (high
// throughput), idle periods double it back to smax (~0.1% idle duty cycle).
// Expected: uplink ~always-on throughput (paper 68.6 kb/s), downlink
// slightly less (55.6), uplink RTT mostly under ~200 ms, and a tiny idle
// duty cycle after the transfer ends.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig14_adaptive";
    d.title = "Figure 14 / C.2: adaptive sleep interval (smin=20 ms, smax=5 s)";
    d.base.workload.kind = WorkloadKind::kSleepyBulk;
    d.base.workload.sleepy.policy = mac::PollPolicy::kAdaptive;
    d.base.workload.sleepy.sminAdaptive = 20 * sim::kMillisecond;
    d.base.workload.sleepy.smaxAdaptive = 5 * sim::kSecond;
    d.base.workload.totalBytes = 100000;
    d.base.workload.windowSegments = 6;  // C.2 enlarges buffers to 6 packets
    d.base.workload.timeLimit = 30 * sim::kMinute;
    d.axes = {{"uplink", {1, 0}}};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.uplink = p.value("uplink") != 0;
        // The idle-duty-cycle tail is measured after the uplink transfer.
        s.workload.idleTail = s.workload.uplink ? 10 * sim::kMinute : sim::Time(0);
    };
    d.present = [](const SweepResult& r) {
        const auto* up = r.first({{"uplink", 1}});
        const auto* down = r.first({{"uplink", 0}});
        std::printf("Uplink goodput:   %6.1f kb/s   (paper: 68.6; always-on link: ~60)\n",
                    up->row.number("goodput_kbps"));
        std::printf("Downlink goodput: %6.1f kb/s   (paper: 55.6)\n",
                    down->row.number("goodput_kbps"));
        for (const auto* rec : {up, down}) {
            std::printf("%-24s median=%4.0f ms  p90=%4.0f ms  max=%5.0f ms  (n=%.0f)\n",
                        rec == up ? "Uplink RTT" : "Downlink RTT",
                        rec->row.number("rtt_median_ms"), rec->row.number("rtt_p90_ms"),
                        rec->row.number("rtt_max_ms"), rec->row.number("rtt_n"));
        }
        std::printf("Idle radio duty cycle after transfer: %.3f%%   (paper: ~0.1%%)\n",
                    up->row.number("idle_radio_dc") * 100.0);
    };
    return d;
}

Registration reg{def()};
}  // namespace
