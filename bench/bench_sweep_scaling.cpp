// Sweep-runner scaling harness (own main, not a registry scenario).
//
// Two rows of JSON (BENCH_sweep.json):
//
//  1. Within-scenario sharding: the sweep_smoke grid over an 8-seed list
//     serially and at --jobs 8, merged JSON verified byte-identical.
//  2. Cross-scenario sharding: a Campaign over sweep_smoke + sec72_hops —
//     one worker pool executing points from BOTH scenarios back-to-back —
//     serial vs --jobs 8, canonical output verified byte-identical.
//
// The speedups are bounded by the machine: `cores` is recorded so a 1-core
// container's ~1.0x is not mistaken for a runner regression — on an 8-core
// host the independent simulations shard perfectly, and the campaign row
// additionally shows the cross-scenario queue keeping the pool busy where
// per-scenario pools would drain one grid at a time.
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "bench/driver.hpp"
#include "tcplp/scenario/campaign.hpp"

namespace {

double msSince(const std::chrono::steady_clock::time_point& t0) {
    const auto t1 = std::chrono::steady_clock::now();
    return double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
           1e6;
}

}  // namespace

int main() {
    using namespace tcplp::scenario;
    const ScenarioDef* def = Registry::instance().find("sweep_smoke");
    if (def == nullptr) {
        std::fprintf(stderr, "sweep_smoke scenario not linked in\n");
        return 1;
    }
    const long cores = sysconf(_SC_NPROCESSORS_ONLN);

    // --- Row 1: within-scenario sharding (the PR 3 runner) ----------------
    // 8 seeds on the 2-hop uplink cell: one run point per seed.
    ScenarioDef scaled = *def;
    scaled.axes = {{"hops", {2}}, {"uplink", {1}}};
    scaled.seeds = {1, 2, 3, 4, 5, 6, 7, 8};

    const auto timeRun = [&scaled](int jobs, SweepResult& out) {
        const auto t0 = std::chrono::steady_clock::now();
        out = runSweep(scaled, SweepOptions{jobs, {}});
        return msSince(t0);
    };

    SweepResult serial, parallel;
    const double serialMs = timeRun(1, serial);
    const double parallelMs = timeRun(8, parallel);
    if (!serial.ok || !parallel.ok) {
        std::fprintf(stderr, "sweep failed: %s%s\n", serial.error.c_str(),
                     parallel.error.c_str());
        return 1;
    }
    if (serial.jsonLines() != parallel.jsonLines()) {
        std::fprintf(stderr, "determinism violated: --jobs 8 output differs from serial\n");
        return 1;
    }
    std::printf("{\"bench\":\"sweep\",\"scenario\":\"sweep_smoke\",\"points\":%zu,"
                "\"jobs\":8,\"cores\":%ld,\"serial_ms\":%.1f,\"parallel_ms\":%.1f,"
                "\"speedup\":%.2f,\"byte_identical\":true}\n",
                serial.records.size(), cores, serialMs, parallelMs,
                serialMs / parallelMs);

    // --- Row 2: cross-scenario campaign sharding --------------------------
    std::vector<ScenarioDef> defs;
    defs.push_back(scaled);
    if (const ScenarioDef* hops = Registry::instance().find("sec72_hops"))
        defs.push_back(*hops);

    const auto timeCampaign = [&defs](int jobs, CampaignResult& out) {
        CampaignOptions options;
        options.jobs = jobs;
        const auto t0 = std::chrono::steady_clock::now();
        out = runCampaign(defs, options);
        return msSince(t0);
    };

    CampaignResult campSerial, campParallel;
    const double campSerialMs = timeCampaign(1, campSerial);
    const double campParallelMs = timeCampaign(8, campParallel);
    if (!campSerial.ok || !campParallel.ok) {
        std::fprintf(stderr, "campaign failed: %s%s\n", campSerial.error.c_str(),
                     campParallel.error.c_str());
        return 1;
    }
    if (campSerial.canonicalLines() != campParallel.canonicalLines()) {
        std::fprintf(stderr,
                     "determinism violated: campaign --jobs 8 differs from serial\n");
        return 1;
    }
    std::size_t points = 0;
    for (const CampaignScenario& s : campSerial.scenarios) points += s.records.size();
    std::printf("{\"bench\":\"campaign\",\"scenarios\":%zu,\"points\":%zu,"
                "\"jobs\":8,\"cores\":%ld,\"serial_ms\":%.1f,\"parallel_ms\":%.1f,"
                "\"speedup\":%.2f,\"byte_identical\":true}\n",
                campSerial.scenarios.size(), points, cores, campSerialMs, campParallelMs,
                campSerialMs / campParallelMs);
    return 0;
}
