// Sweep-runner scaling harness (own main, not a registry scenario).
//
// Runs the sweep_smoke scenario over an 8-seed list serially and at
// --jobs 8, verifies the merged JSON is byte-identical, and emits ONE line
// of JSON (BENCH_sweep.json) recording wall-clock for both plus the
// speedup. The speedup is bounded by the machine: `cores` is recorded so a
// 1-core container's ~1.0x is not mistaken for a runner regression — on an
// 8-core host the 8 independent simulations shard perfectly.
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "bench/driver.hpp"

int main() {
    using namespace tcplp::scenario;
    const ScenarioDef* def = Registry::instance().find("sweep_smoke");
    if (def == nullptr) {
        std::fprintf(stderr, "sweep_smoke scenario not linked in\n");
        return 1;
    }

    // 8 seeds on the 2-hop uplink cell: one run point per seed.
    ScenarioDef scaled = *def;
    scaled.axes = {{"hops", {2}}, {"uplink", {1}}};
    scaled.seeds = {1, 2, 3, 4, 5, 6, 7, 8};

    const auto timeRun = [&scaled](int jobs, SweepResult& out) {
        const auto t0 = std::chrono::steady_clock::now();
        out = runSweep(scaled, SweepOptions{jobs, {}});
        const auto t1 = std::chrono::steady_clock::now();
        return double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                          .count()) /
               1e6;
    };

    SweepResult serial, parallel;
    const double serialMs = timeRun(1, serial);
    const double parallelMs = timeRun(8, parallel);
    if (!serial.ok || !parallel.ok) {
        std::fprintf(stderr, "sweep failed: %s%s\n", serial.error.c_str(),
                     parallel.error.c_str());
        return 1;
    }
    const bool identical = serial.jsonLines() == parallel.jsonLines();
    if (!identical) {
        std::fprintf(stderr, "determinism violated: --jobs 8 output differs from serial\n");
        return 1;
    }

    long cores = sysconf(_SC_NPROCESSORS_ONLN);
    std::printf("{\"bench\":\"sweep\",\"scenario\":\"sweep_smoke\",\"points\":%zu,"
                "\"jobs\":8,\"cores\":%ld,\"serial_ms\":%.1f,\"parallel_ms\":%.1f,"
                "\"speedup\":%.2f,\"byte_identical\":true}\n",
                serial.records.size(), cores, serialMs, parallelMs,
                serialMs / parallelMs);
    return 0;
}
