// Event-core microbenchmark: pooled scheduler (heap and timer-wheel
// backends) vs the seed design.
//
// The presenter emits ONE line of JSON to stdout so future PRs can track
// the perf trajectory in BENCH_*.json files:
//
//   {"bench":"event_loop","events":...,"pooled_allocs_per_event":...,...}
//
// The workload models what the protocol stack actually does to the
// scheduler: a set of restartable millisecond-scale timers (TCP RTO,
// delayed ACK, MAC sleep/poll — all of which cluster at a handful of
// deadlines) that fire, re-arm themselves, and occasionally re-arm a
// neighbor before it expires. Heap allocations are counted by the shared
// counting operator new (bench/alloc_count.hpp) — no instrumentation in the
// measured code.
//
// "Legacy" is a frozen copy of the seed scheduler (shared_ptr<State> per
// event + type-erased std::function + lazy-cancel priority_queue), kept here
// so the comparison survives the seed's replacement. "Pooled" is the slab
// pool + indexed binary heap; "wheel" is the same pool behind the
// hierarchical TimerWheel backend (sim/scheduler.hpp) — both fire the
// identical event order, so the delta is pure scheduler cost.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "bench/alloc_count.hpp"
#include "bench/driver.hpp"
#include "tcplp/sim/simulator.hpp"

namespace {

using tcplp::sim::Time;

// --- Frozen seed scheduler (the "before") ----------------------------------

class LegacySimulator;

class LegacyEventHandle {
public:
    LegacyEventHandle() = default;
    void cancel() {
        if (auto s = state_.lock()) s->cancelled = true;
        state_.reset();
    }

private:
    friend class LegacySimulator;
    struct State {
        bool cancelled = false;
        bool fired = false;
    };
    explicit LegacyEventHandle(std::weak_ptr<State> state) : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
};

class LegacySimulator {
public:
    Time now() const { return now_; }

    LegacyEventHandle schedule(Time delay, std::function<void()> fn) {
        auto state = std::make_shared<LegacyEventHandle::State>();
        queue_.push(Event{now_ + delay, nextSeq_++, state, std::move(fn)});
        return LegacyEventHandle(state);
    }

    void run() {
        while (!queue_.empty()) {
            Event ev = std::move(const_cast<Event&>(queue_.top()));
            queue_.pop();
            now_ = ev.when;
            if (!ev.state->cancelled) {
                ev.state->fired = true;
                ev.fn();
            }
        }
    }

private:
    struct Event {
        Time when;
        std::uint64_t seq;
        std::shared_ptr<LegacyEventHandle::State> state;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

class LegacyTimer {
public:
    LegacyTimer(LegacySimulator& simulator, std::function<void()> fn)
        : simulator_(simulator), fn_(std::move(fn)) {}
    void start(Time delay) {
        handle_.cancel();
        handle_ = simulator_.schedule(delay, [this] { fn_(); });
    }

private:
    LegacySimulator& simulator_;
    std::function<void()> fn_;
    LegacyEventHandle handle_;
};

// --- Workload ---------------------------------------------------------------

constexpr int kTimers = 64;
constexpr std::uint64_t kEvents = 1'000'000;

struct RunResult {
    double nsPerEvent = 0.0;
    double allocsPerEvent = 0.0;
    double eventsPerSec = 0.0;
};

template <typename Sim, typename Tmr, typename... Args>
RunResult runWorkload(Args&&... args) {
    Sim simulator(std::forward<Args>(args)...);
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<Tmr>> timers;
    timers.reserve(kTimers);
    constexpr Time kMs = tcplp::sim::kMillisecond;  // protocol timers are ms-scale
    for (int i = 0; i < kTimers; ++i) {
        timers.push_back(std::make_unique<Tmr>(simulator, [&, i] {
            ++fired;
            if (fired >= kEvents) return;
            // Re-arm self (the RTO idiom)...
            timers[std::size_t(i)]->start(kMs * (1 + i % 13));
            // ...and every third fire, re-arm a neighbor that has not
            // expired yet (the delayed-ACK-reset / sleep-extend idiom).
            if (fired % 3 == 0) {
                timers[std::size_t((i + 1) % kTimers)]->start(kMs * (2 + i % 11));
            }
        }));
    }

    const std::uint64_t allocsBefore = bench::allocCount();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimers; ++i) timers[std::size_t(i)]->start(kMs + i);
    simulator.run();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs = bench::allocCount() - allocsBefore;

    const double ns = double(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    RunResult r;
    r.nsPerEvent = ns / double(fired);
    r.allocsPerEvent = double(allocs) / double(fired);
    r.eventsPerSec = double(fired) * 1e9 / ns;
    return r;
}

using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "event_loop";
    d.title = "Event-core microbench: pooled scheduler vs the seed design";
    d.measure = [](const ScenarioSpec&, const Point&) {
        using tcplp::sim::SchedulerKind;
        using tcplp::sim::SimConfig;
        // Delta, not the absolute counter: the global accumulates across
        // every simulation this process ran before (in a campaign a worker
        // executes other scenarios' points back-to-back), and rows must be
        // independent of execution order.
        const std::uint64_t fallbacksBefore = tcplp::sim::SmallFn::heapFallbacks();
        const RunResult pooled = runWorkload<tcplp::sim::Simulator, tcplp::sim::Timer>(
            SimConfig{1, SchedulerKind::kBinaryHeap});
        const RunResult wheel = runWorkload<tcplp::sim::Simulator, tcplp::sim::Timer>(
            SimConfig{1, SchedulerKind::kTimerWheel});
        const RunResult legacy = runWorkload<LegacySimulator, LegacyTimer>();
        const double denom = pooled.allocsPerEvent > 1e-9 ? pooled.allocsPerEvent : 1e-9;
        scenario::MetricRow row;
        row.set("events", kEvents)
            .set("timers", std::int64_t(kTimers))
            .set("pooled_events_per_sec", pooled.eventsPerSec)
            .set("pooled_ns_per_event", pooled.nsPerEvent)
            .set("pooled_allocs_per_event", pooled.allocsPerEvent)
            .set("wheel_events_per_sec", wheel.eventsPerSec)
            .set("wheel_ns_per_event", wheel.nsPerEvent)
            .set("wheel_allocs_per_event", wheel.allocsPerEvent)
            .set("wheel_vs_heap_speedup", pooled.nsPerEvent / wheel.nsPerEvent)
            .set("legacy_events_per_sec", legacy.eventsPerSec)
            .set("legacy_ns_per_event", legacy.nsPerEvent)
            .set("legacy_allocs_per_event", legacy.allocsPerEvent)
            .set("alloc_reduction_factor", legacy.allocsPerEvent / denom)
            .set("smallfn_heap_fallbacks",
                 tcplp::sim::SmallFn::heapFallbacks() - fallbacksBefore);
        return row;
    };
    d.present = [](const SweepResult& r) {
        const auto& row = r.records.front().row;
        std::printf(
            "{\"bench\":\"event_loop\",\"events\":%.0f,\"timers\":%.0f,"
            "\"pooled_events_per_sec\":%.0f,\"pooled_ns_per_event\":%.1f,"
            "\"pooled_allocs_per_event\":%.6f,"
            "\"wheel_events_per_sec\":%.0f,\"wheel_ns_per_event\":%.1f,"
            "\"wheel_allocs_per_event\":%.6f,\"wheel_vs_heap_speedup\":%.2f,"
            "\"legacy_events_per_sec\":%.0f,\"legacy_ns_per_event\":%.1f,"
            "\"legacy_allocs_per_event\":%.6f,"
            "\"alloc_reduction_factor\":%.1f,"
            "\"smallfn_heap_fallbacks\":%.0f}\n",
            row.number("events"), row.number("timers"),
            row.number("pooled_events_per_sec"), row.number("pooled_ns_per_event"),
            row.number("pooled_allocs_per_event"), row.number("wheel_events_per_sec"),
            row.number("wheel_ns_per_event"), row.number("wheel_allocs_per_event"),
            row.number("wheel_vs_heap_speedup"), row.number("legacy_events_per_sec"),
            row.number("legacy_ns_per_event"), row.number("legacy_allocs_per_event"),
            row.number("alloc_reduction_factor"), row.number("smallfn_heap_fallbacks"));
    };
    return d;
}

Registration reg{def()};
}  // namespace
