// Figure 6: effect of the random delay d between link-layer retries.
//
//  (a) one hop:    goodput falls slowly with d; segment loss stays ~0.
//  (b) three hops: segment loss is high at d=0 (hidden terminals) and
//                  collapses once d reaches a few tens of ms; goodput is
//                  surprisingly flat (§7.3's robustness result).
//  (c) RTT grows with d.
//  (d) total frames transmitted falls with d (fewer link retries).
//
// The "Pred." column is Equation 2 evaluated with the measured RTT and
// segment loss — the dotted lines of Figs. 6(a)/6(b).
#include "bench/common.hpp"

using namespace bench;

namespace {
void sweep(std::size_t hops, std::size_t totalBytes) {
    std::printf("\n-- %zu hop(s) --\n", hops);
    std::printf("%-8s %12s %10s %10s %12s %12s\n", "d(ms)", "Goodput", "SegLoss", "RTT ms",
                "Frames", "Pred kb/s");
    const std::uint16_t mss = mssForFrames(5);
    for (int d : {0, 5, 10, 20, 30, 40, 60, 80, 100}) {
        double goodput = 0, loss = 0, rtt = 0, frames = 0;
        const int kSeeds = 3;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            BulkOptions o;
            o.hops = hops;
            o.totalBytes = totalBytes;
            o.retryDelayMax = sim::fromMillis(d);
            o.mss = mss;
            o.seed = seed;
            const BulkResult r = runBulkTransfer(o);
            goodput += r.goodputKbps;
            loss += r.segmentLoss;
            rtt += r.rttMedianMs;
            frames += double(r.framesTransmitted);
        }
        goodput /= kSeeds;
        loss /= kSeeds;
        rtt /= kSeeds;
        frames /= kSeeds;
        // Equation 2 with w = 4 segments, measured RTT and loss.
        const double predicted =
            model::llnGoodput(double(mss), rtt / 1000.0, loss, 4.0) * 8.0 / 1000.0;
        std::printf("%-8d %9.1f kb/s %9.3f %10.0f %12.0f %12.1f\n", d, goodput, loss, rtt,
                    frames, predicted);
    }
}
}  // namespace

int main() {
    printHeader("Figure 6: link-retry delay sweep (goodput/loss/RTT/frames + Eq. 2)");
    sweep(1, 120000);
    sweep(3, 50000);
    std::printf(
        "\nPaper shape: 3-hop segment loss ~6%% at d=0 vs <1%% at d>=30 ms, with\n"
        "nearly unchanged goodput (small windows recover instantly, §7.3); the\n"
        "frame count falls with d as fewer link retries are spent per frame.\n");
    return 0;
}
