// Figure 6: effect of the random delay d between link-layer retries.
//
//  (a) one hop:    goodput falls slowly with d; segment loss stays ~0.
//  (b) three hops: segment loss is high at d=0 (hidden terminals) and
//                  collapses once d reaches a few tens of ms; goodput is
//                  surprisingly flat (§7.3's robustness result).
//  (c) RTT grows with d.
//  (d) total frames transmitted falls with d (fewer link retries).
//
// The "Pred." column is Equation 2 evaluated with the measured RTT and
// segment loss — the dotted lines of Figs. 6(a)/6(b).
#include "bench/driver.hpp"

#include "tcplp/model/models.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig6_linkdelay";
    d.title = "Figure 6: link-retry delay sweep (goodput/loss/RTT/frames + Eq. 2)";
    d.base.topology.queueCapacityPackets = 24;
    d.axes = {{"hops", {1, 3}}, {"d_ms", {0, 5, 10, 20, 30, 40, 60, 80, 100}}};
    d.seeds = {1, 2, 3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.hops = std::size_t(p.value("hops"));
        s.topology.retryDelayMax = sim::fromMillis(sim::Time(p.value("d_ms")));
        s.workload.totalBytes = s.topology.hops == 1 ? 120000 : 50000;
    };
    d.present = [](const SweepResult& r) {
        const std::uint16_t mss = scenario::mssForFrames(5);
        for (double hops : {1.0, 3.0}) {
            std::printf("\n-- %.0f hop(s) --\n", hops);
            std::printf("%-8s %12s %10s %10s %12s %12s\n", "d(ms)", "Goodput", "SegLoss",
                        "RTT ms", "Frames", "Pred kb/s");
            for (double ms : {0., 5., 10., 20., 30., 40., 60., 80., 100.}) {
                const double goodput =
                    r.mean("goodput_kbps", {{"hops", hops}, {"d_ms", ms}});
                const double loss = r.mean("segment_loss", {{"hops", hops}, {"d_ms", ms}});
                const double rtt = r.mean("rtt_median_ms", {{"hops", hops}, {"d_ms", ms}});
                const double frames = r.mean("frames_tx", {{"hops", hops}, {"d_ms", ms}});
                // Equation 2 with w = 4 segments, measured RTT and loss.
                const double predicted =
                    model::llnGoodput(double(mss), rtt / 1000.0, loss, 4.0) * 8.0 / 1000.0;
                std::printf("%-8.0f %9.1f kb/s %9.3f %10.0f %12.0f %12.1f\n", ms, goodput,
                            loss, rtt, frames, predicted);
            }
        }
        std::printf(
            "\nPaper shape: 3-hop segment loss ~6%% at d=0 vs <1%% at d>=30 ms, with\n"
            "nearly unchanged goodput (small windows recover instantly, §7.3); the\n"
            "frame count falls with d as fewer link retries are spent per frame.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
