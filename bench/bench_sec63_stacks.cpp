// §6.3: impact of network-stack design — node-to-node goodput under three
// stack profiles emulating OpenThread, BLIP, and GNRC.
//
// The profiles differ in per-frame header budget and per-datagram
// processing latency (GNRC's thread-per-layer IPC, §6.3). Expected shape:
// OpenThread > BLIP > GNRC, all in the 60-75 kb/s band.
#include "bench/common.hpp"

using namespace bench;

namespace {
double runPair(std::size_t payloadBudget, sim::Time processingDelay, std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.nodeDefaults.macConfig.retryDelayMax = 0;
    cfg.nodeDefaults.macPayloadBudget = payloadBudget;
    cfg.nodeDefaults.txProcessingDelay = processingDelay;
    cfg.nodeDefaults.queueConfig.capacityPackets = 24;
    auto tb = harness::Testbed::pair(cfg);

    mesh::Node& a = tb->node(0);
    mesh::Node& b = tb->node(1);
    tcp::TcpStack stackA(a);
    tcp::TcpStack stackB(b);

    const std::uint16_t mss = mssForFrames(5);
    app::GoodputMeter meter(tb->simulator());
    stackB.listen(80, moteTcpConfig(mss, 6), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = stackA.createSocket(moteTcpConfig(mss, 4));
    app::BulkSender sender(client, 150000);
    client.connect(b.address(), 80);
    tb->simulator().runUntil(30 * sim::kMinute);
    return meter.goodputKbps();
}
}  // namespace

int main() {
    printHeader("Sec. 6.3: node-to-node goodput across stack profiles");
    std::printf("%-34s %14s %10s\n", "Stack profile", "Goodput kb/s", "Paper");
    // OpenThread: full frame budget, lean processing.
    std::printf("%-34s %14.1f %10s\n", "OpenThread-like (lean)",
                runPair(phy::kMaxMacPayloadBytes, 0, 1), "75");
    // BLIP: event-driven, slightly higher per-packet cost.
    std::printf("%-34s %14.1f %10s\n", "BLIP-like (event-driven)",
                runPair(phy::kMaxMacPayloadBytes - 2, 2 * sim::kMillisecond, 1), "71");
    // GNRC: more header overhead + IPC thread hops per datagram.
    std::printf("%-34s %14.1f %10s\n", "GNRC-like (IPC per layer)",
                runPair(phy::kMaxMacPayloadBytes - 8, 6 * sim::kMillisecond, 1), "63");
    std::printf("\nShape: the underlying stack's overhead shifts goodput by ~15%%,\n"
                "reproducing the paper's GNRC < BLIP < OpenThread ordering.\n");
    return 0;
}
