// §6.3: impact of network-stack design — node-to-node goodput under three
// stack profiles emulating OpenThread, BLIP, and GNRC.
//
// The profiles differ in per-frame header budget and per-datagram
// processing latency (GNRC's thread-per-layer IPC, §6.3). Expected shape:
// OpenThread > BLIP > GNRC, all in the 60-75 kb/s band.
#include "bench/driver.hpp"

#include "tcplp/phy/frame.hpp"

namespace {
using namespace bench;

struct StackProfile {
    const char* label;
    std::size_t payloadBudget;
    sim::Time processingDelay;
    const char* paper;
};
const StackProfile kProfiles[] = {
    {"OpenThread-like (lean)", phy::kMaxMacPayloadBytes, 0, "75"},
    {"BLIP-like (event-driven)", phy::kMaxMacPayloadBytes - 2, 2 * sim::kMillisecond, "71"},
    {"GNRC-like (IPC per layer)", phy::kMaxMacPayloadBytes - 8, 6 * sim::kMillisecond, "63"},
};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "sec63_stacks";
    d.title = "Sec. 6.3: node-to-node goodput across stack profiles";
    d.base.topology.kind = TopologyKind::kPair;
    d.base.topology.retryDelayMax = sim::Time(0);
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 150000;
    d.base.workload.windowSegments = 4;
    d.base.workload.recvWindowSegments = 6;
    d.base.workload.timeLimit = 30 * sim::kMinute;
    d.axes = {{"profile", {0, 1, 2}}};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const StackProfile& prof = kProfiles[std::size_t(p.value("profile"))];
        s.topology.macPayloadBudget = prof.payloadBudget;
        s.topology.txProcessingDelay = prof.processingDelay;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-34s %14s %10s\n", "Stack profile", "Goodput kb/s", "Paper");
        for (const auto& record : r.records) {
            const StackProfile& prof = kProfiles[std::size_t(record.point.value("profile"))];
            std::printf("%-34s %14.1f %10s\n", prof.label,
                        record.row.number("goodput_kbps"), prof.paper);
        }
        std::printf("\nShape: the underlying stack's overhead shifts goodput by ~15%%,\n"
                    "reproducing the paper's GNRC < BLIP < OpenThread ordering.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
