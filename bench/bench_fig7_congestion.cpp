// Figure 7: congestion behavior over three wireless hops.
//
//  (a) cwnd trace at d=0: unlike the classic saw-tooth, cwnd sits pinned at
//      the (small) buffer cap and snaps back immediately after loss (§7.3).
//  (b) loss-recovery mix vs d: fast retransmissions shrink as d grows
//      (hidden-terminal losses disappear); timeouts stay roughly flat.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef traceDef() {
    ScenarioDef d;
    d.name = "fig7_cwnd_trace";
    d.title = "Figure 7(a): cwnd trace, 3 hops, d = 0 (sampled transitions)";
    d.base.topology.hops = 3;
    d.base.topology.retryDelayMax = sim::Time(0);
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 60000;
    d.seeds = {2};
    d.measure = [](const ScenarioSpec& spec, const Point& p) {
        std::vector<std::pair<double, std::uint32_t>> trace;
        ScenarioSpec s = spec;
        s.workload.cwndTracer = [&trace](sim::Time t, std::uint32_t cwnd, std::uint32_t) {
            trace.emplace_back(sim::toSeconds(t), cwnd);
        };
        const scenario::BulkRunResult r = scenario::runBulk(s, p.seed);

        const std::uint32_t cap = std::uint32_t(4 * scenario::resolveMss(s.workload));
        std::size_t atCap = 0;
        for (const auto& [t, c] : trace) atCap += (c >= cap);
        std::string decimated;
        for (std::size_t i = 0; i < trace.size();
             i += std::max<std::size_t>(1, trace.size() / 24)) {
            if (!decimated.empty()) decimated += ';';
            decimated += scenario::formatDouble(trace[i].first) + ':' +
                         std::to_string(trace[i].second);
        }
        scenario::MetricRow row;
        row.set("trace_points", std::uint64_t(trace.size()))
            .set("frac_at_cap",
                 trace.empty() ? 0.0 : double(atCap) / double(trace.size()))
            .set("goodput_kbps", r.goodputKbps)
            .set("fast_rexmits", r.fastRetransmissions)
            .set("timeouts", r.timeouts)
            .set("cwnd_trace", decimated)
            .set("rng_digest", r.rngDigest);
        return row;
    };
    d.present = [](const SweepResult& r) {
        const auto& row = r.records.front().row;
        std::printf("trace points=%.0f, fraction at max window=%0.2f (paper: \"almost "
                    "always maxed out\")\n",
                    row.number("trace_points"), row.number("frac_at_cap"));
        const std::string& trace = row.str("cwnd_trace");
        std::size_t pos = 0;
        while (pos < trace.size()) {
            std::size_t semi = trace.find(';', pos);
            if (semi == std::string::npos) semi = trace.size();
            const std::string sample = trace.substr(pos, semi - pos);
            const std::size_t colon = sample.find(':');
            if (colon != std::string::npos) {
                std::printf("  t=%7.2fs cwnd=%5.0f\n",
                            std::strtod(sample.substr(0, colon).c_str(), nullptr),
                            std::strtod(sample.substr(colon + 1).c_str(), nullptr));
            }
            pos = semi + 1;
        }
        std::printf("(transfer: %.1f kb/s, fast rexmits=%.0f, timeouts=%.0f)\n",
                    row.number("goodput_kbps"), row.number("fast_rexmits"),
                    row.number("timeouts"));
    };
    return d;
}

ScenarioDef mixDef() {
    ScenarioDef d;
    d.name = "fig7_loss_mix";
    d.title = "Figure 7(b): loss recovery mix vs link-retry delay, 3 hops";
    d.base.topology.hops = 3;
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 40000;
    d.axes = {{"d_ms", {0, 10, 20, 40, 60, 100}}};
    d.seeds = {1, 2, 3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.retryDelayMax = sim::fromMillis(sim::Time(p.value("d_ms")));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-8s %18s %10s\n", "d(ms)", "FastRetransmits", "Timeouts");
        for (double ms : {0., 10., 20., 40., 60., 100.}) {
            std::printf("%-8.0f %18.0f %10.0f\n", ms,
                        sumAt(r, "fast_rexmits", {{"d_ms", ms}}),
                        sumAt(r, "timeouts", {{"d_ms", ms}}));
        }
        std::printf("\nPaper shape: fast retransmissions dominate at d=0 and fall with d;\n"
                    "timeouts come from other loss sources and stay roughly constant.\n");
    };
    return d;
}

Registration regTrace{traceDef()};
Registration regMix{mixDef()};
}  // namespace
