// Figure 7: congestion behavior over three wireless hops.
//
//  (a) cwnd trace at d=0: unlike the classic saw-tooth, cwnd sits pinned at
//      the (small) buffer cap and snaps back immediately after loss (§7.3).
//  (b) loss-recovery mix vs d: fast retransmissions shrink as d grows
//      (hidden-terminal losses disappear); timeouts stay roughly flat.
#include "bench/common.hpp"

using namespace bench;

int main() {
    printHeader("Figure 7(a): cwnd trace, 3 hops, d = 0 (sampled transitions)");
    const std::uint16_t mss = mssForFrames(5);

    std::vector<std::pair<double, std::uint32_t>> trace;
    BulkOptions o;
    o.hops = 3;
    o.totalBytes = 60000;
    o.retryDelayMax = 0;
    o.mss = mss;
    o.seed = 2;
    o.cwndTracer = [&trace](sim::Time t, std::uint32_t cwnd, std::uint32_t) {
        trace.emplace_back(sim::toSeconds(t), cwnd);
    };
    const BulkResult r0 = runBulkTransfer(o);

    // Print a decimated trace plus summary statistics.
    const std::uint32_t cap = std::uint32_t(4 * mss);
    std::size_t atCap = 0;
    for (const auto& [t, c] : trace) atCap += (c >= cap);
    std::printf("trace points=%zu, fraction at max window=%0.2f (paper: \"almost always "
                "maxed out\")\n",
                trace.size(), trace.empty() ? 0.0 : double(atCap) / double(trace.size()));
    for (std::size_t i = 0; i < trace.size(); i += std::max<std::size_t>(1, trace.size() / 24))
        std::printf("  t=%7.2fs cwnd=%5u\n", trace[i].first, trace[i].second);
    std::printf("(transfer: %.1f kb/s, fast rexmits=%llu, timeouts=%llu)\n", r0.goodputKbps,
                (unsigned long long)r0.fastRetransmissions, (unsigned long long)r0.timeouts);

    printHeader("Figure 7(b): loss recovery mix vs link-retry delay, 3 hops");
    std::printf("%-8s %18s %10s\n", "d(ms)", "FastRetransmits", "Timeouts");
    for (int d : {0, 10, 20, 40, 60, 100}) {
        std::uint64_t fast = 0, rto = 0;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            BulkOptions opt;
            opt.hops = 3;
            opt.totalBytes = 40000;
            opt.retryDelayMax = sim::fromMillis(d);
            opt.mss = mss;
            opt.seed = seed;
            const BulkResult r = runBulkTransfer(opt);
            fast += r.fastRetransmissions;
            rto += r.timeouts;
        }
        std::printf("%-8d %18llu %10llu\n", d, (unsigned long long)fast,
                    (unsigned long long)rto);
    }
    std::printf("\nPaper shape: fast retransmissions dominate at d=0 and fall with d;\n"
                "timeouts come from other loss sources and stay roughly constant.\n");
    return 0;
}
