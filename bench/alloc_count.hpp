// Shared counting allocator for bench binaries. One TU (alloc_count.cpp)
// replaces the global operator new with a counting shim — behaviorally
// identical to the default, one relaxed increment per allocation — so any
// driver can measure heap traffic without instrumenting the measured code.
// Linked into every bench/campaign binary; the counter is process-global, so
// two drivers in one combined binary share it (always read deltas).
#pragma once

#include <cstdint>

namespace bench {

/// Total allocations since process start. Monotonic; 0 forever under ASan
/// (which must interpose allocation itself — the shim is compiled out).
std::uint64_t allocCount();

}  // namespace bench
