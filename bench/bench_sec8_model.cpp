// §8 model validation: measured TCP goodput vs Equation 2 (paper) and
// Equation 1 (Mathis) under controlled, independently-set packet loss.
//
// Uses the in-memory pipe so the loss probability is exact: bandwidth and
// RTT emulate the one-hop LLN link (125 kb/s effective, ~100 ms RTT).
// Expected shape: Eq. 2 tracks measurements across the loss range; Eq. 1
// wildly overpredicts at low loss (it assumes cwnd is loss-limited).
#include "bench/common.hpp"
#include "tcplp/harness/pipe.hpp"

using namespace bench;

namespace {
struct PipeRun {
    double goodputKbps;
    double rttSeconds;
    double lossMeasured;
};

PipeRun runPipeTransfer(double loss, std::uint64_t seed) {
    sim::Simulator simulator(seed);
    harness::PipeConfig pc;
    pc.oneWayDelay = 50 * sim::kMillisecond;
    pc.bandwidthBps = 125000.0;
    pc.lossAtoB = loss;
    pc.lossBtoA = loss / 4;  // ACK path is lighter-loaded
    harness::Pipe pipe(simulator, pc);
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    app::GoodputMeter meter(simulator);
    serverStack.listen(80, serverTcpConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = clientStack.createSocket(moteTcpConfig());
    app::BulkSender sender(client, 400000);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(60 * sim::kMinute);

    PipeRun r;
    r.goodputKbps = meter.goodputKbps();
    r.rttSeconds = client.stats().rttSamples.median() / 1000.0;
    const auto sent = client.stats().segsSent;
    r.lossMeasured = sent ? double(client.stats().retransmissions) / double(sent) : 0.0;
    return r;
}
}  // namespace

int main() {
    printHeader("Sec. 8: measured goodput vs Equation 2 (paper) and Equation 1 (Mathis)");
    std::printf("%-8s %12s %12s %12s %10s\n", "p", "Measured", "Eq.2 kb/s", "Eq.1 kb/s",
                "RTT s");
    for (double p : {0.0, 0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16}) {
        double goodput = 0, rtt = 0, lossMeasured = 0;
        const int kSeeds = 3;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            const PipeRun r = runPipeTransfer(p, seed);
            goodput += r.goodputKbps;
            rtt += r.rttSeconds;
            lossMeasured += r.lossMeasured;
        }
        goodput /= kSeeds;
        rtt /= kSeeds;
        lossMeasured /= kSeeds;
        const double eq2 = model::llnGoodput(462.0, rtt, lossMeasured, 4.0) * 8 / 1000.0;
        const double eq1 =
            lossMeasured > 0 ? model::mathisGoodput(462.0, rtt, lossMeasured) * 8 / 1000.0 : -1;
        std::printf("%-8.3f %9.1f kb/s %12.1f %12.1f %10.3f\n", p, goodput, eq2, eq1, rtt);
    }
    std::printf("\nEq. 1 should overshoot hugely at small p (hundreds of kb/s);\n"
                "Eq. 2 should stay within ~25%% of the measurement (paper Fig. 6).\n");
    return 0;
}
