// §8 model validation: measured TCP goodput vs Equation 2 (paper) and
// Equation 1 (Mathis) under controlled, independently-set packet loss.
//
// Uses the in-memory pipe so the loss probability is exact: bandwidth and
// RTT emulate the one-hop LLN link (125 kb/s effective, ~100 ms RTT).
// Expected shape: Eq. 2 tracks measurements across the loss range; Eq. 1
// wildly overpredicts at low loss (it assumes cwnd is loss-limited).
#include "bench/driver.hpp"

#include "tcplp/model/models.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "sec8_model";
    d.title = "Sec. 8: measured goodput vs Equation 2 (paper) and Equation 1 (Mathis)";
    d.base.topology.kind = TopologyKind::kPipe;
    d.base.workload.totalBytes = 400000;
    d.base.workload.timeLimit = 60 * sim::kMinute;
    d.axes = {{"p", {0.0, 0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16}}};
    d.seeds = {1, 2, 3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.pipeLossForward = p.value("p");
        s.topology.pipeLossReverse = p.value("p") / 4;  // ACK path lighter-loaded
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-8s %12s %12s %12s %10s\n", "p", "Measured", "Eq.2 kb/s",
                    "Eq.1 kb/s", "RTT s");
        for (double p : {0.0, 0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16}) {
            const double goodput = r.mean("goodput_kbps", {{"p", p}});
            const double rtt = r.mean("rtt_s", {{"p", p}});
            const double lossMeasured = r.mean("loss_measured", {{"p", p}});
            const double eq2 = model::llnGoodput(462.0, rtt, lossMeasured, 4.0) * 8 / 1000.0;
            const double eq1 = lossMeasured > 0
                                   ? model::mathisGoodput(462.0, rtt, lossMeasured) * 8 / 1000.0
                                   : -1;
            std::printf("%-8.3f %9.1f kb/s %12.1f %12.1f %10.3f\n", p, goodput, eq2, eq1,
                        rtt);
        }
        std::printf("\nEq. 1 should overshoot hugely at small p (hundreds of kb/s);\n"
                    "Eq. 2 should stay within ~25%% of the measurement (paper Fig. 6).\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
