// Congestion-control shootout: the pluggable tcp::CongestionControl
// strategies (NewReno / CERL / Westwood, see src/tcplp/tcp/congestion.hpp)
// raced over the two regimes where they should differ:
//
//   fairness_cc_shootout    Table 9's two-flow sharing setup (3 hops,
//                           4-segment windows) per strategy — a sanity check
//                           that the wireless variants do not wreck fairness
//                           in the congestion-loss regime.
//   lossy_line_cc_shootout  The Fig. 9-style line with i.i.d. link loss and
//                           link-layer ARQ capped at one retry, so a
//                           residual stream of radio drops reaches TCP as
//                           noise losses. CERL's loss differentiation should
//                           keep the window open where stock NewReno halves
//                           it.
//
// The lossy presenter emits ONE line of JSON to stdout as its last line
// (the BENCH_cc.json trajectory file, refreshed with
// `./build/bench_cc_shootout | tail -n 1`), carrying the per-strategy
// goodput at the 5%-loss gate point and the cerl_vs_newreno ratio that CI
// asserts on. Keep lossy_line_cc_shootout registered LAST in this TU so its
// presenter prints last.
#include "bench/driver.hpp"
#include "tcplp/tcp/cc.hpp"

namespace {
using namespace bench;

constexpr double kGateLoss = 0.05;  // the CI acceptance point

ScenarioDef fairnessDef() {
    ScenarioDef d;
    d.name = "fairness_cc_shootout";
    d.title = "Two-flow fairness per congestion-control strategy";
    d.base.workload.kind = WorkloadKind::kTwoFlow;
    d.base.topology.hops = 3;
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.base.topology.queueCapacityPackets = 7;  // relay buffer limit
    d.base.topology.ccMetrics = true;
    d.base.workload.windowSegments = 4;
    d.base.workload.totalBytes = 10'000'000;  // saturating for the window
    d.base.workload.timeLimit = 5 * sim::kMinute;
    d.axes = {{"cc", {0, 1, 2}}};
    d.seeds = {2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.cc = scenario::ccFromAxis(p.value("cc"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %15s %6s %12s %12s\n", "CC", "Goodput kb/s", "Fair",
                    "cuts a/b", "skips a/b");
        for (const auto& record : r.records) {
            const auto& row = record.row;
            std::printf("%-10s %6.1f / %-6.1f %6.2f %5.0f /%-5.0f %5.0f /%-5.0f\n",
                        row.str("cc_name").c_str(), row.number("goodput_a_kbps"),
                        row.number("goodput_b_kbps"), row.number("fairness"),
                        row.number("loss_cuts_a"), row.number("loss_cuts_b"),
                        row.number("cuts_skipped_a"), row.number("cuts_skipped_b"));
        }
        std::printf("\nExpected shape: all three strategies share the 4-segment\n"
                    "regime fairly; the wireless variants must not starve a flow.\n");
    };
    return d;
}

ScenarioDef lossyDef() {
    ScenarioDef d;
    d.name = "lossy_line_cc_shootout";
    d.title = "Lossy line: NewReno vs CERL vs Westwood under i.i.d. link loss";
    d.base.topology.kind = TopologyKind::kLine;
    d.base.topology.hops = 3;
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.base.topology.queueCapacityPackets = 24;
    // A single link-layer retry: enough ARQ that the channel stays usable,
    // but a residual stream of i.i.d. radio drops still surfaces to TCP as
    // (non-congestion) segment losses — the regime CERL is built for.
    d.base.topology.maxFrameRetries = 1;
    d.base.topology.ccMetrics = true;
    d.base.workload.totalBytes = 100000;
    d.base.workload.windowSegments = 12;
    d.base.workload.mssFrames = 3;
    d.base.workload.timeLimit = 20 * sim::kMinute;
    d.axes = {{"cc", {0, 1, 2}}, {"loss", {0.0, 0.02, kGateLoss, 0.08}}};
    d.seeds = {7};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.cc = scenario::ccFromAxis(p.value("cc"));
        s.topology.linkLoss = p.value("loss");
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %6s %14s %9s %7s %7s\n", "CC", "loss", "Goodput kb/s",
                    "RTOs", "cuts", "skips");
        for (const auto& record : r.records) {
            const auto& row = record.row;
            std::printf("%-10s %5.0f%% %14.3f %9.0f %7.0f %7.0f\n",
                        row.str("cc_name").c_str(),
                        100.0 * record.point.value("loss"),
                        row.number("goodput_kbps"), row.number("timeouts"),
                        row.number("loss_cuts"), row.number("cuts_skipped"));
        }

        // Per-strategy goodput at the gate point, for the JSON line.
        double kbps[3] = {0.0, 0.0, 0.0};
        double gateCuts[3] = {0.0, 0.0, 0.0};
        double gateSkips[3] = {0.0, 0.0, 0.0};
        for (const auto& record : r.records) {
            if (record.point.value("loss") != kGateLoss) continue;
            const int cc = int(record.point.value("cc"));
            if (cc < 0 || cc > 2) continue;
            kbps[cc] = record.row.number("goodput_kbps");
            gateCuts[cc] = record.row.number("loss_cuts");
            gateSkips[cc] = record.row.number("cuts_skipped");
        }
        const double cerlVsNewReno = kbps[0] > 0.0 ? kbps[1] / kbps[0] : 0.0;
        std::printf("\nCERL vs NewReno goodput at %.0f%% i.i.d. link loss: %.2fx\n\n",
                    100.0 * kGateLoss, cerlVsNewReno);
        std::printf(
            "{\"bench\":\"cc_shootout\",\"gate_loss\":%.2f,"
            "\"newreno_kbps\":%.3f,\"cerl_kbps\":%.3f,\"westwood_kbps\":%.3f,"
            "\"cerl_vs_newreno\":%.3f,"
            "\"newreno_loss_cuts\":%.0f,\"cerl_loss_cuts\":%.0f,"
            "\"cerl_cuts_skipped\":%.0f,\"westwood_loss_cuts\":%.0f}\n",
            kGateLoss, kbps[0], kbps[1], kbps[2], cerlVsNewReno, gateCuts[0],
            gateCuts[1], gateSkips[1], gateCuts[2]);
    };
    return d;
}

Registration regFairness{fairnessDef()};
Registration regLossy{lossyDef()};
}  // namespace
