// Table 6: per-frame header overhead under 6LoWPAN fragmentation.
//
// Encodes a real mote->cloud TCP segment through the live IPHC +
// fragmentation codecs and reports the header bytes of the first and
// subsequent frames, mirroring Table 6's "first frame" vs "other frames"
// split.
#include <cstdio>

#include "bench/common.hpp"
#include "tcplp/lowpan/frag.hpp"

using namespace tcplp;

int main() {
    std::printf("=== Table 6: header overhead per frame ===\n");

    tcp::Segment seg;
    seg.srcPort = 49152;
    seg.dstPort = 80;
    seg.timestamps = tcp::Timestamps{1, 2};
    seg.flags.ack = true;
    seg.payload = patternBytes(0, 424);  // ~5-frame segment

    ip6::Packet p;
    p.src = ip6::Address::meshLocal(10);
    p.dst = ip6::Address::cloud(1000);
    p.nextHeader = ip6::kProtoTcp;
    p.payload = seg.encode();

    const auto iphc = lowpan::compressHeader(p, 10, 1);
    const auto frames = lowpan::encodeDatagram(p, 10, 1, 1, phy::kMaxMacPayloadBytes);

    std::printf("%-22s %12s %14s\n", "Header", "First Frame", "Other Frames");
    std::printf("%-22s %9zu B %11zu B\n", "IEEE 802.15.4", phy::kMacDataHeaderBytes,
                phy::kMacDataHeaderBytes);
    std::printf("%-22s %9zu B %11zu B\n", "6LoWPAN Frag.", lowpan::kFrag1HeaderBytes,
                lowpan::kFragNHeaderBytes);
    std::printf("%-22s %9zu B %11d B\n", "IPv6 (IPHC, to cloud)", iphc.size(), 0);
    std::printf("%-22s %9zu B %11d B\n", "TCP (w/ timestamps)", seg.headerBytes(), 0);
    const std::size_t firstTotal = phy::kMacDataHeaderBytes + lowpan::kFrag1HeaderBytes +
                                   iphc.size() + seg.headerBytes();
    const std::size_t otherTotal = phy::kMacDataHeaderBytes + lowpan::kFragNHeaderBytes;
    std::printf("%-22s %9zu B %11zu B   (paper: 50-107 B / 28-35 B)\n", "Total", firstTotal,
                otherTotal);

    // Also show the best-case IPHC (link-local mesh neighbors): the low end
    // of Table 6's 2-28 B IPv6 range.
    ip6::Packet local;
    local.src = ip6::Address::linkLocal(10);
    local.dst = ip6::Address::linkLocal(11);
    local.nextHeader = ip6::kProtoTcp;
    const auto iphcLocal = lowpan::compressHeader(local, 10, 11);
    std::printf("\nIPv6 compressed range: %zu B (link-local) to %zu B (off-mesh) "
                "[paper: 2-28 B]\n",
                iphcLocal.size(), iphc.size());
    std::printf("Segment occupies %zu frames at MSS %zu B.\n", frames.size(),
                seg.payload.size());
    return 0;
}
