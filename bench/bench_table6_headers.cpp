// Table 6: per-frame header overhead under 6LoWPAN fragmentation.
//
// Encodes a real mote->cloud TCP segment through the live IPHC +
// fragmentation codecs and reports the header bytes of the first and
// subsequent frames, mirroring Table 6's "first frame" vs "other frames"
// split.
#include "bench/driver.hpp"

#include "tcplp/lowpan/frag.hpp"
#include "tcplp/phy/frame.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "table6_headers";
    d.title = "Table 6: header overhead per frame";
    d.measure = [](const ScenarioSpec&, const Point&) {
        tcp::Segment seg;
        seg.srcPort = 49152;
        seg.dstPort = 80;
        seg.timestamps = tcp::Timestamps{1, 2};
        seg.flags.ack = true;
        seg.payload = patternBytes(0, 424);  // ~5-frame segment

        ip6::Packet p;
        p.src = ip6::Address::meshLocal(10);
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = seg.encode();

        const auto iphc = lowpan::compressHeader(p, 10, 1);
        const auto frames = lowpan::encodeDatagram(p, 10, 1, 1, phy::kMaxMacPayloadBytes);

        ip6::Packet local;
        local.src = ip6::Address::linkLocal(10);
        local.dst = ip6::Address::linkLocal(11);
        local.nextHeader = ip6::kProtoTcp;
        const auto iphcLocal = lowpan::compressHeader(local, 10, 11);

        scenario::MetricRow row;
        row.set("mac_header_bytes", std::uint64_t(phy::kMacDataHeaderBytes))
            .set("frag1_header_bytes", std::uint64_t(lowpan::kFrag1HeaderBytes))
            .set("fragn_header_bytes", std::uint64_t(lowpan::kFragNHeaderBytes))
            .set("iphc_cloud_bytes", std::uint64_t(iphc.size()))
            .set("iphc_local_bytes", std::uint64_t(iphcLocal.size()))
            .set("tcp_header_bytes", std::uint64_t(seg.headerBytes()))
            .set("frames", std::uint64_t(frames.size()))
            .set("payload_bytes", std::uint64_t(seg.payload.size()));
        return row;
    };
    d.present = [](const SweepResult& r) {
        const auto& row = r.records.front().row;
        const auto n = [&row](const char* key) { return std::size_t(row.number(key)); };
        std::printf("%-22s %12s %14s\n", "Header", "First Frame", "Other Frames");
        std::printf("%-22s %9zu B %11zu B\n", "IEEE 802.15.4", n("mac_header_bytes"),
                    n("mac_header_bytes"));
        std::printf("%-22s %9zu B %11zu B\n", "6LoWPAN Frag.", n("frag1_header_bytes"),
                    n("fragn_header_bytes"));
        std::printf("%-22s %9zu B %11d B\n", "IPv6 (IPHC, to cloud)", n("iphc_cloud_bytes"),
                    0);
        std::printf("%-22s %9zu B %11d B\n", "TCP (w/ timestamps)", n("tcp_header_bytes"),
                    0);
        const std::size_t firstTotal = n("mac_header_bytes") + n("frag1_header_bytes") +
                                       n("iphc_cloud_bytes") + n("tcp_header_bytes");
        const std::size_t otherTotal = n("mac_header_bytes") + n("fragn_header_bytes");
        std::printf("%-22s %9zu B %11zu B   (paper: 50-107 B / 28-35 B)\n", "Total",
                    firstTotal, otherTotal);
        std::printf("\nIPv6 compressed range: %zu B (link-local) to %zu B (off-mesh) "
                    "[paper: 2-28 B]\n",
                    n("iphc_local_bytes"), n("iphc_cloud_bytes"));
        std::printf("Segment occupies %zu frames at MSS %zu B.\n", n("frames"),
                    n("payload_bytes"));
    };
    return d;
}

Registration reg{def()};
}  // namespace
