// Figure 10 + Table 8: a full day in a lossy office environment.
//
// A diurnal ambient-interference profile (§9.5: low at night, high during
// working hours) runs for 24 simulated hours. Figure 10 is the per-hour
// radio duty cycle of TCPlp vs CoAP; Table 8 summarizes reliability and
// duty cycles, including the unreliable (non-confirmable) baselines.
//
// Expected shape: CoAP cheaper at night; TCPlp competitive (or slightly
// better) during high-interference hours; reliable protocols ~99%+ vs ~93-95%
// unreliable, at ~3x the duty cycle.
#include "bench/driver.hpp"

namespace {
using namespace bench;
using harness::SensorProtocol;

// cfg axis: protocol/batching combinations in Table 8 row order.
struct DayConfig {
    SensorProtocol proto;
    bool batching;
    const char* label;
    const char* paper;
};
constexpr DayConfig kConfigs[] = {
    {SensorProtocol::kTcp, true, "TCPlp", "(paper: 99.3 / 2.29 / 0.97)"},
    {SensorProtocol::kCoap, true, "CoAP", "(paper: 99.5 / 1.84 / 0.83)"},
    {SensorProtocol::kUnreliable, false, "Unrel., no batch", "(paper: 93.4 / 1.13 / 0.52)"},
    {SensorProtocol::kUnreliable, true, "Unrel., with batch", "(paper: 95.3 / 0.73 / 0.30)"},
};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig10_table8_day";
    d.title = "Figure 10 + Table 8: a full day in the lossy office";
    d.base.workload.kind = WorkloadKind::kAnemometer;
    d.base.workload.anemometer.diurnal = true;
    d.base.workload.anemometer.duration = 24 * sim::kHour;
    d.base.workload.anemometer.warmup = 2 * sim::kMinute;
    d.base.workload.anemometer.mssFrames = 3;  // §9.5: MSS reduced for daytime
    d.axes = {{"cfg", {0, 1, 2, 3}}};
    d.seeds = {7};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const DayConfig& c = kConfigs[std::size_t(p.value("cfg"))];
        s.workload.anemometer.protocol = c.proto;
        s.workload.anemometer.batching = c.batching;
    };
    d.present = [](const SweepResult& r) {
        // Key rows off the cfg axis, never off record position: --seeds can
        // add replications, multiplying the record count.
        const auto* tcpRec = r.first({{"cfg", 0}});
        const auto* coapRec = r.first({{"cfg", 1}});
        if (tcpRec != nullptr && coapRec != nullptr) {
            std::printf("%-6s %12s %12s\n", "Hour", "TCPlp DC%", "CoAP DC%");
            const std::vector<double> tcp = splitCsv(tcpRec->row.str("hourly_radio_dc"));
            const std::vector<double> coap = splitCsv(coapRec->row.str("hourly_radio_dc"));
            const std::size_t hours = std::min(tcp.size(), coap.size());
            for (std::size_t h = 0; h < hours; ++h)
                std::printf("%-6zu %12.2f %12.2f\n", h, tcp[h] * 100.0, coap[h] * 100.0);
        }

        printHeader("Table 8: full-day summary");
        std::printf("%-22s %12s %10s %10s\n", "Protocol", "Reliability", "RadioDC%",
                    "CpuDC%");
        for (std::size_t cfg = 0; cfg < 4; ++cfg) {
            const auto* rec = r.first({{"cfg", double(cfg)}});
            if (rec == nullptr) continue;
            const auto& row = rec->row;
            std::printf("%-22s %11.1f%% %10.2f %10.2f   %s\n", kConfigs[cfg].label,
                        row.number("reliability") * 100.0, row.number("radio_dc") * 100.0,
                        row.number("cpu_dc") * 100.0, kConfigs[cfg].paper);
        }
    };
    return d;
}

Registration reg{def()};
}  // namespace
