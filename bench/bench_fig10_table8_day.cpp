// Figure 10 + Table 8: a full day in a lossy office environment.
//
// A diurnal ambient-interference profile (§9.5: low at night, high during
// working hours) runs for 24 simulated hours. Figure 10 is the per-hour
// radio duty cycle of TCPlp vs CoAP; Table 8 summarizes reliability and
// duty cycles, including the unreliable (non-confirmable) baselines.
//
// Expected shape: CoAP cheaper at night; TCPlp competitive (or slightly
// better) during high-interference hours; reliable protocols ~99%+ vs ~93-95%
// unreliable, at ~3x the duty cycle.
#include "bench/common.hpp"
#include "tcplp/harness/anemometer.hpp"

using namespace bench;
using harness::SensorProtocol;

namespace {
harness::AnemometerResult runDay(SensorProtocol proto, bool batching) {
    harness::AnemometerOptions o;
    o.protocol = proto;
    o.batching = batching;
    o.diurnal = true;
    o.duration = 24 * sim::kHour;
    o.warmup = 2 * sim::kMinute;
    o.mssFrames = 3;  // §9.5: MSS reduced to 3 frames for the daytime study
    o.seed = 7;
    return harness::runAnemometer(o);
}
}  // namespace

int main() {
    printHeader("Figure 10: hourly radio duty cycle over a full day");
    const auto tcp = runDay(SensorProtocol::kTcp, true);
    const auto coap = runDay(SensorProtocol::kCoap, true);
    std::printf("%-6s %12s %12s\n", "Hour", "TCPlp DC%", "CoAP DC%");
    const std::size_t hours = std::min(tcp.hourlyRadioDutyCycle.size(),
                                       coap.hourlyRadioDutyCycle.size());
    for (std::size_t h = 0; h < hours; ++h) {
        std::printf("%-6zu %12.2f %12.2f\n", h, tcp.hourlyRadioDutyCycle[h] * 100.0,
                    coap.hourlyRadioDutyCycle[h] * 100.0);
    }

    printHeader("Table 8: full-day summary");
    std::printf("%-22s %12s %10s %10s\n", "Protocol", "Reliability", "RadioDC%", "CpuDC%");
    std::printf("%-22s %11.1f%% %10.2f %10.2f   (paper: 99.3 / 2.29 / 0.97)\n", "TCPlp",
                tcp.reliability * 100.0, tcp.radioDutyCycle * 100.0, tcp.cpuDutyCycle * 100.0);
    std::printf("%-22s %11.1f%% %10.2f %10.2f   (paper: 99.5 / 1.84 / 0.83)\n", "CoAP",
                coap.reliability * 100.0, coap.radioDutyCycle * 100.0,
                coap.cpuDutyCycle * 100.0);

    const auto unrelNoBatch = runDay(SensorProtocol::kUnreliable, false);
    std::printf("%-22s %11.1f%% %10.2f %10.2f   (paper: 93.4 / 1.13 / 0.52)\n",
                "Unrel., no batch", unrelNoBatch.reliability * 100.0,
                unrelNoBatch.radioDutyCycle * 100.0, unrelNoBatch.cpuDutyCycle * 100.0);
    const auto unrelBatch = runDay(SensorProtocol::kUnreliable, true);
    std::printf("%-22s %11.1f%% %10.2f %10.2f   (paper: 95.3 / 0.73 / 0.30)\n",
                "Unrel., with batch", unrelBatch.reliability * 100.0,
                unrelBatch.radioDutyCycle * 100.0, unrelBatch.cpuDutyCycle * 100.0);
    return 0;
}
