// High-BDP frontier: the RFC 7323 ceiling curves.
//
// The paper's Fig. 5 sweep shows goodput hard-capped at W/RTT once the
// static window binds; with a 16-bit advertised window that cap is 64 KiB
// per RTT no matter how fast the link gets. Two sweeps chart the frontier:
//
//   bdp_pipe  Rate x delay grid on the in-memory pipe, each point run with
//             the stock 16-bit window (wscale=0) and with RFC 7323 scaling
//             plus receive-buffer autotuning (wscale=1). Expected shape:
//             the unscaled rows go flat at ~64KiB/RTT while the scaled rows
//             keep tracking the link rate. The 24 Mb/s x 50 ms point is the
//             ESP32-class gate point CI asserts on.
//   bdp_line  A 2-hop radio line swept over the link preset (802.15.4 vs
//             ESP32-class), MAC aggregation burst size, and wscale — the
//             radio-path version of the same story, plus the A-MPDU-style
//             aggregation axis.
//
// The bdp_pipe presenter emits ONE line of JSON to stdout as its last line
// (the BENCH_bdp.json file, refreshed with `./build/bench_bdp | tail -n 1`),
// carrying scaled/unscaled goodput at the gate point and the ratio CI
// asserts on (>= 2x). Keep bdp_pipe registered LAST in this TU so its
// presenter prints last.
#include "bench/driver.hpp"

namespace {
using namespace bench;

constexpr double kGateRateMbps = 24.0;  // the ESP32-class gate point
constexpr double kGateDelayMs = 50.0;
constexpr std::size_t kBdpBudgetBytes = 512 * 1024;

ScenarioDef lineDef() {
    ScenarioDef d;
    d.name = "bdp_line";
    d.title = "ESP32-class radio line: link preset x MAC aggregation x wscale";
    d.base.topology.kind = TopologyKind::kLine;
    d.base.topology.hops = 2;
    d.base.topology.retryDelayMax = sim::fromMillis(40);  // §7.1 fix
    // Deep enough that a full scaled window fits in flight at the relay —
    // the sweep charts link-rate and MAC effects, not queue-overflow loss.
    d.base.topology.queueCapacityPackets = 64;
    d.base.workload.totalBytes = 2'000'000;
    d.base.workload.timeLimit = 20 * sim::kSecond;
    d.axes = {{"link", {0, 1}}, {"agg", {1, 4}}, {"wscale", {0, 1}}};
    d.seeds = {3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.linkPreset = scenario::linkPresetFromAxis(p.value("link"));
        s.topology.macAggFrames = scenario::aggFramesFromAxis(p.value("agg"));
        const bool ws = scenario::wscaleFromAxis(p.value("wscale"));
        s.workload.windowScaling = ws;
        if (s.topology.linkPreset == scenario::LinkPreset::kEsp32) {
            // Wire-sized segments and a window that can actually cover the
            // fast link; the mote-side autotune budget is clamped by the
            // preset's NodeConfig tcpRecvBudgetBytes (256 KiB).
            s.workload.mssFrames = 0;
            s.workload.mssBytes = 1220;
            s.workload.windowSegments = 32;
            s.workload.bdpBufferBytes = 128 * 1024;
            if (ws) s.workload.recvAutotuneBudgetBytes = kBdpBudgetBytes;
        } else if (ws) {
            s.workload.recvAutotuneBudgetBytes = 64 * 1024;
        }
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-9s %4s %7s %14s %9s %9s\n", "link", "agg", "wscale",
                    "Goodput kb/s", "RTT ms", "frames");
        for (const auto& record : r.records) {
            const auto& row = record.row;
            std::printf("%-9s %4.0f %7.0f %14.1f %9.1f %9.0f\n",
                        record.point.value("link") >= 0.5 ? "esp32" : "802.15.4",
                        record.point.value("agg"), record.point.value("wscale"),
                        row.number("goodput_kbps"), row.number("rtt_median_ms"),
                        row.number("frames_tx"));
        }
        std::printf("\nExpected shape: the ESP32-class rows run orders of magnitude\n"
                    "above 802.15.4, where the few-KB BDP makes wscale a no-op\n"
                    "(identical rows). On the fast link autotune trades a little\n"
                    "peak goodput for a fraction of the queueing RTT, and\n"
                    "aggregation buys back the CSMA ladder per burst.\n");
    };
    return d;
}

ScenarioDef pipeDef() {
    ScenarioDef d;
    d.name = "bdp_pipe";
    d.title = "BDP ceiling curve: rate x delay, 16-bit window vs RFC 7323 + autotune";
    d.base.topology.kind = TopologyKind::kPipe;
    d.base.workload.mssFrames = 0;
    d.base.workload.mssBytes = 1220;
    d.base.workload.bdpBufferBytes = kBdpBudgetBytes;
    // Rate-limited measurement window: the transfer never completes; the
    // meter reports steady goodput over the delivery interval.
    d.base.workload.totalBytes = 50'000'000;
    d.base.workload.timeLimit = 15 * sim::kSecond;
    d.axes = {{"rate_mbps", {2, 8, kGateRateMbps}},
              {"delay_ms", {10, kGateDelayMs}},
              {"wscale", {0, 1}}};
    d.seeds = {1};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.pipeBandwidthBps = p.value("rate_mbps") * 1e6;
        s.topology.pipeOneWayDelay = sim::fromMillis(sim::Time(p.value("delay_ms")));
        const bool ws = scenario::wscaleFromAxis(p.value("wscale"));
        s.workload.windowScaling = ws;
        s.workload.recvAutotuneBudgetBytes = ws ? kBdpBudgetBytes : 0;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %9s %7s %14s %12s %9s\n", "rate Mb/s", "delay ms",
                    "wscale", "Goodput kb/s", "BDP KiB", "RTT ms");
        for (const auto& record : r.records) {
            const double rate = record.point.value("rate_mbps");
            const double delay = record.point.value("delay_ms");
            const double bdpKib = rate * 1e6 / 8.0 * (2.0 * delay / 1000.0) / 1024.0;
            std::printf("%-10.0f %9.0f %7.0f %14.1f %12.1f %9.1f\n", rate, delay,
                        record.point.value("wscale"),
                        record.row.number("goodput_kbps"), bdpKib,
                        record.row.number("rtt_s") * 1000.0);
        }

        const auto kbpsAt = [&](double wscale) {
            const scenario::RunRecord* rec = r.first({{"rate_mbps", kGateRateMbps},
                                                      {"delay_ms", kGateDelayMs},
                                                      {"wscale", wscale}});
            return rec != nullptr ? rec->row.number("goodput_kbps") : 0.0;
        };
        const double unscaled = kbpsAt(0);
        const double scaled = kbpsAt(1);
        const double ratio = unscaled > 0.0 ? scaled / unscaled : 0.0;
        std::printf("\nScaled vs unscaled goodput at %.0f Mb/s x %.0f ms: %.2fx\n\n",
                    kGateRateMbps, kGateDelayMs, ratio);
        std::printf("{\"bench\":\"bdp\",\"gate_rate_mbps\":%.0f,\"gate_delay_ms\":%.0f,"
                    "\"unscaled_kbps\":%.3f,\"scaled_kbps\":%.3f,"
                    "\"scaled_vs_unscaled\":%.3f}\n",
                    kGateRateMbps, kGateDelayMs, unscaled, scaled, ratio);
    };
    return d;
}

Registration regLine{lineDef()};
Registration regPipe{pipeDef()};
}  // namespace
