// Shared conveniences for the bench driver translation units.
//
// Each driver registers one or more ScenarioDefs (a ~15-line declarative
// spec + an optional paper-style presenter) and contains no main();
// bench/bench_main.cpp provides the CLI (--list/--filter/--jobs/--json),
// and CMake links every driver both as its historical standalone binary and
// into the combined `tcplp_bench`.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "tcplp/scenario/registry.hpp"
#include "tcplp/scenario/sweep.hpp"
#include "tcplp/scenario/workloads.hpp"

namespace bench {

using namespace tcplp;
using scenario::Axis;
using scenario::Point;
using scenario::Registration;
using scenario::ScenarioDef;
using scenario::ScenarioSpec;
using scenario::SweepResult;
using scenario::TopologyKind;
using scenario::WorkloadKind;

inline void printHeader(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

/// Parses the comma-separated doubles a row stores for vector-valued
/// metrics (e.g. fig10's hourly duty cycles).
inline std::vector<double> splitCsv(const std::string& csv) {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!tok.empty()) out.push_back(std::strtod(tok.c_str(), nullptr));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

/// Sum of a numeric metric over the matching records (seed totals).
inline double sumAt(const SweepResult& r, const char* key,
                    std::initializer_list<std::pair<const char*, double>> match) {
    double sum = 0.0;
    for (const scenario::RunRecord* rec : r.select(match)) sum += rec->row.number(key);
    return sum;
}

}  // namespace bench
