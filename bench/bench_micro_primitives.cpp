// Microbenchmarks (google-benchmark) of the per-packet primitives on the
// TCPlp datapath: segment codec, IPHC compression, fragmentation, and the
// two specialized buffers. These bound the CPU cost per segment that §6.4
// argues is not the throughput bottleneck.
#include <benchmark/benchmark.h>

#include "tcplp/common/bytes.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/lowpan/iphc.hpp"
#include "tcplp/phy/frame.hpp"
#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/segment.hpp"
#include "tcplp/tcp/send_buffer.hpp"

using namespace tcplp;

namespace {

tcp::Segment makeSegment(std::size_t payload) {
    tcp::Segment s;
    s.srcPort = 49152;
    s.dstPort = 80;
    s.seq = 12345;
    s.ack = 67890;
    s.flags.ack = true;
    s.timestamps = tcp::Timestamps{111, 222};
    s.payload = patternBytes(0, payload);
    return s;
}

void BM_SegmentEncode(benchmark::State& state) {
    const tcp::Segment s = makeSegment(std::size_t(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(s.encode());
}
BENCHMARK(BM_SegmentEncode)->Arg(0)->Arg(462);

void BM_SegmentDecode(benchmark::State& state) {
    const PacketBuffer wire = makeSegment(std::size_t(state.range(0))).encode();
    for (auto _ : state) benchmark::DoNotOptimize(tcp::Segment::decode(wire));
}
BENCHMARK(BM_SegmentDecode)->Arg(0)->Arg(462);

void BM_IphcCompress(benchmark::State& state) {
    ip6::Packet p;
    p.src = ip6::Address::meshLocal(10);
    p.dst = ip6::Address::cloud(1000);
    p.nextHeader = ip6::kProtoTcp;
    for (auto _ : state) benchmark::DoNotOptimize(lowpan::compressHeader(p, 10, 1));
}
BENCHMARK(BM_IphcCompress);

void BM_Fragment5Frames(benchmark::State& state) {
    ip6::Packet p;
    p.src = ip6::Address::meshLocal(10);
    p.dst = ip6::Address::cloud(1000);
    p.nextHeader = ip6::kProtoTcp;
    p.payload = makeSegment(424).encode();
    for (auto _ : state)
        benchmark::DoNotOptimize(lowpan::encodeDatagram(p, 10, 1, 7, phy::kMaxMacPayloadBytes));
}
BENCHMARK(BM_Fragment5Frames);

void BM_RecvBufferInOrder(benchmark::State& state) {
    tcp::RecvBuffer rb(2048);
    const Bytes seg = patternBytes(0, 462);
    for (auto _ : state) {
        rb.insert(0, seg);
        rb.read(462);
    }
}
BENCHMARK(BM_RecvBufferInOrder);

void BM_RecvBufferOutOfOrderCommit(benchmark::State& state) {
    const Bytes seg = patternBytes(0, 462);
    for (auto _ : state) {
        tcp::RecvBuffer rb(2048);
        rb.insert(462, seg);  // hole
        rb.insert(0, seg);    // fill + commit both
        benchmark::DoNotOptimize(rb.read(924));
    }
}
BENCHMARK(BM_RecvBufferOutOfOrderCommit);

void BM_SendBufferZeroCopy(benchmark::State& state) {
    auto chunk = std::make_shared<const Bytes>(patternBytes(0, 462));
    for (auto _ : state) {
        tcp::SendBuffer sb(2048);
        sb.appendShared(chunk);
        benchmark::DoNotOptimize(sb.read(0, 462));
        sb.ack(462);
    }
}
BENCHMARK(BM_SendBufferZeroCopy);

}  // namespace

BENCHMARK_MAIN();
