// Table 5: frame transmission time of IEEE 802.15.4 vs traditional links.
#include <cstdio>

#include "tcplp/phy/frame.hpp"

int main() {
    std::printf("=== Table 5: link comparison ===\n");
    std::printf("%-18s %12s %10s %10s\n", "Physical Layer", "Bandwidth", "Frame", "Tx Time");
    struct Row {
        const char* name;
        double bitsPerSec;
        double frameBytes;
    };
    const Row rows[] = {
        {"Gigabit Ethernet", 1e9, 1500},
        {"Fast Ethernet", 100e6, 1500},
        {"WiFi", 54e6, 1500},
        {"Ethernet", 10e6, 1500},
    };
    for (const auto& r : rows) {
        std::printf("%-18s %9.0f Mb/s %7.0f B %7.3f ms\n", r.name, r.bitsPerSec / 1e6,
                    r.frameBytes, r.frameBytes * 8.0 / r.bitsPerSec * 1000.0);
    }
    // The 802.15.4 row comes from the live PHY model.
    std::printf("%-18s %9.0f kb/s %7zu B %7.3f ms  (from phy::maxFrameAirTime)\n",
                "IEEE 802.15.4", tcplp::phy::kBitsPerSecond / 1e3, tcplp::phy::kMaxFrameBytes,
                tcplp::sim::toMillis(tcplp::phy::maxFrameAirTime()));
    std::printf("\nPaper reports 4.1 ms for the 127 B frame; the model includes the\n"
                "6-byte PHY sync header, hence %.3f ms.\n",
                tcplp::sim::toMillis(tcplp::phy::maxFrameAirTime()));
    return 0;
}
