// Table 5: frame transmission time of IEEE 802.15.4 vs traditional links.
#include "bench/driver.hpp"

#include "tcplp/phy/frame.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "table5_linkcompare";
    d.title = "Table 5: link comparison";
    d.measure = [](const ScenarioSpec&, const Point&) {
        // The 802.15.4 row comes from the live PHY model.
        scenario::MetricRow row;
        row.set("lln_bandwidth_bps", phy::kBitsPerSecond)
            .set("lln_frame_bytes", std::uint64_t(phy::kMaxFrameBytes))
            .set("lln_tx_time_ms", sim::toMillis(phy::maxFrameAirTime()));
        return row;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-18s %12s %10s %10s\n", "Physical Layer", "Bandwidth", "Frame",
                    "Tx Time");
        struct Row {
            const char* name;
            double bitsPerSec;
            double frameBytes;
        };
        const Row rows[] = {
            {"Gigabit Ethernet", 1e9, 1500},
            {"Fast Ethernet", 100e6, 1500},
            {"WiFi", 54e6, 1500},
            {"Ethernet", 10e6, 1500},
        };
        for (const auto& row : rows) {
            std::printf("%-18s %9.0f Mb/s %7.0f B %7.3f ms\n", row.name,
                        row.bitsPerSec / 1e6, row.frameBytes,
                        row.frameBytes * 8.0 / row.bitsPerSec * 1000.0);
        }
        const auto& live = r.records.front().row;
        std::printf("%-18s %9.0f kb/s %7.0f B %7.3f ms  (from phy::maxFrameAirTime)\n",
                    "IEEE 802.15.4", live.number("lln_bandwidth_bps") / 1e3,
                    live.number("lln_frame_bytes"), live.number("lln_tx_time_ms"));
        std::printf("\nPaper reports 4.1 ms for the 127 B frame; the model includes the\n"
                    "6-byte PHY sync header, hence %.3f ms.\n",
                    live.number("lln_tx_time_ms"));
    };
    return d;
}

Registration reg{def()};
}  // namespace
