// Ablation: the value of the full-scale features (Table 1) one at a time —
// SACK, delayed ACKs, TCP timestamps, and the in-place reassembly queue —
// measured as bulk goodput over a 5%-lossy single hop.
#include "bench/driver.hpp"

namespace {
using namespace bench;

const char* kVariants[] = {"full TCPlp (baseline)", "no SACK", "no delayed ACKs",
                           "no timestamps", "drop out-of-order (uIP-style)"};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "ablation_features";
    d.title = "Ablation: full-scale TCP features under 5% frame loss";
    d.base.topology.hops = 1;
    d.base.topology.linkLoss = 0.05;
    d.base.topology.retryDelayMax = sim::fromMillis(20);
    d.base.topology.maxFrameRetries = 2;  // let TCP see the loss
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 60000;
    d.axes = {{"variant", {0, 1, 2, 3, 4}}};
    d.seeds = {1, 2, 3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        switch (int(p.value("variant"))) {
            case 1: s.workload.sack = false; break;
            case 2: s.workload.delayedAck = false; break;
            case 3: s.workload.timestamps = false; break;
            case 4: s.workload.dropOutOfOrder = true; break;
            default: break;
        }
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-34s %14s\n", "Configuration", "Goodput kb/s");
        for (double v : {0., 1., 2., 3., 4.}) {
            std::printf("%-34s %14.1f\n", kVariants[std::size_t(v)],
                        r.mean("goodput_kbps", {{"variant", v}}));
        }
        std::printf("\nShape: dropping reassembly costs the most under loss; SACK and\n"
                    "delayed ACKs contribute smaller but visible gains.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
