// Ablation: the value of the full-scale features (Table 1) one at a time —
// SACK, delayed ACKs, TCP timestamps, and the in-place reassembly queue —
// measured as bulk goodput over a 5%-lossy single hop.
#include "bench/common.hpp"

using namespace bench;

namespace {
double runWith(void (*tweak)(tcp::TcpConfig&), std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.linkLoss = 0.05;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(20);
    cfg.nodeDefaults.macConfig.maxFrameRetries = 2;  // let TCP see the loss
    cfg.nodeDefaults.queueConfig.capacityPackets = 24;
    auto tb = harness::Testbed::line(1, cfg);

    mesh::Node& mote = *tb->findNode(10);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());
    app::GoodputMeter meter(tb->simulator());

    tcp::TcpConfig clientCfg = moteTcpConfig(mssForFrames(5));
    tcp::TcpConfig servCfg = serverTcpConfig(mssForFrames(5));
    tweak(clientCfg);
    tweak(servCfg);

    cloudStack.listen(80, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = moteStack.createSocket(clientCfg);
    app::BulkSender sender(client, 60000);
    client.connect(tb->cloud().address(), 80);
    tb->simulator().runUntil(40 * sim::kMinute);
    return meter.goodputKbps();
}

double average(void (*tweak)(tcp::TcpConfig&)) {
    double sum = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) sum += runWith(tweak, seed);
    return sum / 3;
}
}  // namespace

int main() {
    printHeader("Ablation: full-scale TCP features under 5% frame loss");
    std::printf("%-34s %14s\n", "Configuration", "Goodput kb/s");
    std::printf("%-34s %14.1f\n", "full TCPlp (baseline)",
                average(+[](tcp::TcpConfig&) {}));
    std::printf("%-34s %14.1f\n", "no SACK",
                average(+[](tcp::TcpConfig& c) { c.sack = false; }));
    std::printf("%-34s %14.1f\n", "no delayed ACKs",
                average(+[](tcp::TcpConfig& c) { c.delayedAck = false; }));
    std::printf("%-34s %14.1f\n", "no timestamps",
                average(+[](tcp::TcpConfig& c) { c.timestamps = false; }));
    std::printf("%-34s %14.1f\n", "drop out-of-order (uIP-style)",
                average(+[](tcp::TcpConfig& c) { c.dropOutOfOrder = true; }));
    std::printf("\nShape: dropping reassembly costs the most under loss; SACK and\n"
                "delayed ACKs contribute smaller but visible gains.\n");
    return 0;
}
