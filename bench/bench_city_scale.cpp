// Megascale single-core datapath bench: the city_scale scenario (a 1,024-node
// grid with 24 saturating mixed-direction TCP flows) plus a current-vs-legacy
// engine comparison on grid200_dense.
//
// The presenter emits ONE line of JSON to stdout (the BENCH_city.json
// trajectory file, refreshed with `./build/bench_city_scale | tail -n 1`):
//
//   {"bench":"city_scale","nodes":1024,...,"engine_speedup":...}
//
// Three sweep points, bound from the `config` axis:
//   0  city_scale spec, current engine (slab pool + batched spatial delivery)
//   1  grid200_dense, current engine
//   2  grid200_dense, legacy engine (TopologySpec::legacyDatapath: seed-era
//      linear-scan delivery, no frame pooling — the pre-PR datapath)
// engine_speedup = delivered-frames/sec of 1 over 2. All switches are
// RNG-neutral, so configs 1 and 2 replay the identical simulation and the
// speedup measures the engine, not the workload.
//
// Heap discipline is measured with the shared counting operator new
// (bench/alloc_count.hpp): the
// steady-state window (past the TCP ramp, sampled via the channel delivery
// tap) must stay under ~0.05 allocations per delivered frame — the slab
// recycler serving every frame, segment and event from warm storage. The
// alloc and wall fields are timing fields (stripped from golden artifacts);
// the golden corpus pins this scenario's behavioral rows at reduced scale.
#include <chrono>
#include <memory>

#include "bench/alloc_count.hpp"
#include "bench/driver.hpp"
#include "tcplp/phy/channel.hpp"

namespace {
using namespace bench;

/// Steady-state window probe, fed by the channel delivery tap. Frames are
/// counted as (tick, transmitter) transitions — CSMA serializes a node's
/// transmissions, so consecutive per-listener tap calls of one frame share
/// both. Arms at `warmup` (past the TCP ramp) and tracks the allocation
/// counter at every tap, so the window excludes setup, ramp and teardown.
struct SteadyProbe {
    sim::Time warmup = 0;
    bool armed = false;
    std::uint64_t frames = 0;
    std::uint64_t allocsAtWarm = 0, framesAtWarm = 0, allocsLast = 0;
    sim::Time lastNow = -1;
    phy::NodeId lastSrc = 0;

    void onDelivery(sim::Time now, phy::NodeId src) {
        if (now != lastNow || src != lastSrc) {
            ++frames;
            lastNow = now;
            lastSrc = src;
        }
        allocsLast = bench::allocCount();
        if (!armed && now >= warmup) {
            armed = true;
            allocsAtWarm = allocsLast;
            framesAtWarm = frames;
        }
    }

    double steadyAllocsPerFrame() const {
        if (!armed || frames <= framesAtWarm) return 0.0;
        return double(allocsLast - allocsAtWarm) / double(frames - framesAtWarm);
    }
};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "city_scale";
    d.title = "City-scale grid: 1,024 nodes, 24 flows, one core";
    d.base = scenario::cityScaleSpec();
    d.axes = {{"config", {0, 1, 2}}};
    d.seeds = {1};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const int config = int(p.value("config"));
        if (config == 0) return;  // the city spec itself
        s = scenario::grid200DenseSpec(30 * sim::kSecond);
        s.topology.datapathCounters = true;
        s.topology.legacyDatapath = config == 2;
    };
    d.measure = [](const ScenarioSpec& spec, const Point& p) {
        // Best-of-5 wall: a 30 s sim here lands in tens of milliseconds of
        // wall, where one scheduler hiccup swings the grid200 engine A/B
        // ratio by ~10%. Each rep replays the identical simulation with its
        // own fresh simulator and pool (every non-timing field — and the
        // allocation counts — is rep-invariant), so the fastest wall is the
        // least-perturbed measurement of the same computation.
        scenario::MetricRow row;
        double bestWall = 0.0, steadyAllocsPerFrame = 0.0, totalAllocs = 0.0;
        for (int rep = 0; rep < 5; ++rep) {
            ScenarioSpec run = spec;
            // shared_ptr: the tap std::function must stay copyable.
            auto probe = std::make_shared<SteadyProbe>();
            probe->warmup = run.workload.multiFlowDuration / 3;
            run.workload.deliveryTap = [probe](sim::Time now, phy::NodeId src,
                                               phy::NodeId, std::size_t,
                                               bool) { probe->onDelivery(now, src); };
            const std::uint64_t allocs0 =
                bench::allocCount();
            const auto t0 = std::chrono::steady_clock::now();
            scenario::MetricRow r = scenario::runScenario(run, p.seed);
            const auto t1 = std::chrono::steady_clock::now();
            const std::uint64_t allocs1 =
                bench::allocCount();
            const double wallMs =
                double(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                           .count()) /
                1e6;
            if (rep == 0) {
                row = r;
                steadyAllocsPerFrame = probe->steadyAllocsPerFrame();
                totalAllocs = double(allocs1 - allocs0);
            }
            if (rep == 0 || wallMs < bestWall) bestWall = wallMs;
        }
        const double frames = row.number("frames_tx");
        row.set("wall_ms", bestWall)
            .set("frames_per_sec", frames * 1000.0 / std::max(bestWall, 1e-9))
            .set("total_allocs_per_frame", frames > 0 ? totalAllocs / frames : 0.0)
            .set("steady_allocs_per_frame", steadyAllocsPerFrame);
        return row;
    };
    d.present = [](const SweepResult& r) {
        // Rows by config value; golden-trimmed sweeps carry config 0 only.
        const scenario::MetricRow* rows[3] = {nullptr, nullptr, nullptr};
        for (const auto& record : r.records) {
            const int config = int(record.point.value("config"));
            if (config >= 0 && config <= 2) rows[config] = &record.row;
        }
        static const char* kLabels[3] = {"city_1024", "grid200", "grid200_legacy"};
        std::printf("%-16s %12s %10s %12s %12s %14s\n", "Config", "frames",
                    "wall ms", "frames/s", "allocs/frm", "pool recycled");
        for (int c = 0; c < 3; ++c) {
            if (rows[c] == nullptr) continue;
            const auto& row = *rows[c];
            const double recycled = row.number("pool_recycled");
            const double fresh = row.number("pool_fresh");
            std::printf("%-16s %12.0f %10.0f %12.0f %12.4f %13.1f%%\n", kLabels[c],
                        row.number("frames_tx"), row.number("wall_ms"),
                        row.number("frames_per_sec"),
                        row.number("steady_allocs_per_frame"),
                        100.0 * recycled / std::max(1.0, recycled + fresh));
        }
        const scenario::MetricRow* city = rows[0];
        const double gridFps = rows[1] ? rows[1]->number("frames_per_sec") : 0.0;
        const double legacyFps = rows[2] ? rows[2]->number("frames_per_sec") : 0.0;
        const double speedup = legacyFps > 0.0 ? gridFps / legacyFps : 0.0;
        std::printf("\nengine speedup on grid200_dense (current vs legacy "
                    "datapath): %.2fx\n\n",
                    speedup);
        const std::size_t nodes =
            r.def != nullptr ? r.def->base.topology.nodes : 0;
        std::printf(
            "{\"bench\":\"city_scale\",\"nodes\":%zu,\"flows\":24,"
            "\"city_frames\":%.0f,\"city_wall_ms\":%.0f,"
            "\"city_frames_per_sec\":%.0f,"
            "\"city_steady_allocs_per_frame\":%.4f,"
            "\"city_total_allocs_per_frame\":%.4f,"
            "\"pool_recycled\":%.0f,\"pool_fresh\":%.0f,"
            "\"neighbor_rebuilds\":%.0f,\"smallfn_heap_fallbacks\":%.0f,"
            "\"prepend_fallbacks\":%.0f,"
            "\"grid200_frames_per_sec\":%.0f,"
            "\"grid200_legacy_frames_per_sec\":%.0f,"
            "\"engine_speedup\":%.2f}\n",
            nodes, city ? city->number("frames_tx") : 0.0,
            city ? city->number("wall_ms") : 0.0,
            city ? city->number("frames_per_sec") : 0.0,
            city ? city->number("steady_allocs_per_frame") : 0.0,
            city ? city->number("total_allocs_per_frame") : 0.0,
            city ? city->number("pool_recycled") : 0.0,
            city ? city->number("pool_fresh") : 0.0,
            city ? city->number("neighbor_rebuilds") : 0.0,
            city ? city->number("smallfn_heap_fallbacks") : 0.0,
            city ? city->number("prepend_fallbacks") : 0.0, gridFps, legacyFps,
            speedup);
    };
    return d;
}

Registration reg{def()};
}  // namespace
