// Chaos: border-router restart mid-transfer (§9 robustness).
//
// The border router reboots 4 s into a 2-hop uplink transfer and stays
// down for 20 s — long enough that the mote's tightened R2 budget
// (maxRetransmits = 3) gives up on the connection while the path is dark.
// The app layer then reconnects with deterministic backoff and resumes at
// the acked offset. Expected shape: >= 1 completed reconnect, the full
// transfer delivered, and nonzero goodput after the router returns.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "border_router_restart";
    d.title = "Chaos: border-router restart under a 2-hop transfer";
    d.base.topology.kind = TopologyKind::kLine;
    d.base.topology.hops = 2;
    d.base.workload.totalBytes = 30000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.base.fault.chaos = true;
    // Border router (node 1) dark for [4 s, 24 s) — the ~8.5 s clean
    // transfer is mid-flight when the path dies.
    d.base.fault.plan.fixed = {
        {sim::FaultKind::kNodeReboot, 4 * sim::kSecond, 20 * sim::kSecond, 1, 0},
    };
    // Tight R2 so the give-up lands inside the outage and the reconnect
    // ladder — not a lucky late retransmit — re-establishes the flow.
    d.base.fault.maxRetransmits = 3;
    d.axes = {{"fault", {0, 1}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = scenario::faultFromAxis(p.value("fault"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %14s %12s %12s %12s %10s\n", "Fault", "Goodput kb/s",
                    "Reconnects", "Give-ups", "Recover s", "Complete");
        for (double fault : {0.0, 1.0}) {
            std::printf("%-10s %14.1f %12.1f %12.1f %12.1f %10.1f\n",
                        fault > 0.5 ? "restart" : "clean",
                        r.mean("goodput_kbps", {{"fault", fault}}),
                        r.mean("reconnects", {{"fault", fault}}),
                        r.mean("give_ups", {{"fault", fault}}),
                        r.mean("recover_s", {{"fault", fault}}),
                        r.mean("complete", {{"fault", fault}}));
        }
        std::printf("\nThe restart rows should show R2 giving up during the\n"
                    "outage and the app reconnecting to finish the transfer.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
