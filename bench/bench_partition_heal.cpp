// Chaos: a sensor is partitioned past R2, then the partition heals.
//
// Every link at sensor 15 goes dark for 60s while it streams uplink — longer
// than the lowered R2 budget (maxRetransmits=3), so the mote's TCP gives up
// mid-outage and the app falls back to the reconnect ladder. During the
// blackout the sensor's liveness tracker declares both candidate parents
// (10, then alternate 11) dead; once the partition heals its probes revive
// them and the default route *fails back* to the preferred parent. The
// transfer completes inside the backoff budget (2+4+8+16+30... > 60s).
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "partition_heal";
    d.title = "Chaos: sensor partition past R2, reconnect + route failback";
    d.base.topology.kind = TopologyKind::kOffice;
    d.base.topology.selfHealing = true;
    d.base.workload.totalBytes = 25000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.base.fault.chaos = true;
    d.base.fault.maxRetransmits = 3;  // give up well inside the 60s outage
    {
        sim::FaultEvent cut;
        cut.kind = sim::FaultKind::kLinkBlackout;
        cut.at = 5 * sim::kSecond;
        cut.duration = 60 * sim::kSecond;
        cut.target = 15;  // target == peer: every link at the sensor
        cut.peer = 15;
        d.base.fault.plan.fixed = {cut};
    }
    d.axes = {{"fault", {0, 1}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = scenario::faultFromAxis(p.value("fault"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %14s %10s %10s %12s %10s\n", "Fault", "Goodput kb/s",
                    "Complete", "GiveUps", "Reconnects", "Failbacks");
        for (double fault : {0.0, 1.0}) {
            std::printf("%-10s %14.1f %10.1f %10.1f %12.1f %10.1f\n",
                        fault > 0.5 ? "cut" : "clean",
                        r.mean("goodput_kbps", {{"fault", fault}}),
                        r.mean("complete", {{"fault", fault}}),
                        r.mean("give_ups", {{"fault", fault}}),
                        r.mean("reconnects", {{"fault", fault}}),
                        r.mean("failbacks", {{"fault", fault}}));
        }
        std::printf("\nThe give-up is expected (outage > R2); what matters is the\n"
                    "reconnect completing and the route failing back after the heal.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
