// Figure 4: goodput vs Maximum Segment Size (in frames), uplink & downlink.
//
// Expected shape (§6.1): poor at small MSS (header overhead dominates),
// diminishing returns past ~5 frames; the paper picks MSS = 5 frames.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig4_mss";
    d.title = "Figure 4: goodput vs MSS (single hop via border router)";
    d.base.topology.hops = 1;
    d.base.topology.retryDelayMax = sim::Time(0);  // no hidden terminals (§7.1)
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 120000;
    d.axes = {{"frames", {2, 3, 4, 5, 6, 7, 8}}, {"uplink", {1, 0}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.mssFrames = std::size_t(p.value("frames"));
        s.workload.uplink = p.value("uplink") != 0;
        const std::uint16_t mss = scenario::mssForFrames(s.workload.mssFrames);
        s.workload.windowSegments = std::max<std::size_t>(4, 1848 / mss);
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-14s %10s %14s %14s\n", "MSS(frames)", "MSS(bytes)", "Uplink kb/s",
                    "Downlink kb/s");
        for (double frames : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) {
            std::printf("%-14.0f %10u %14.1f %14.1f\n", frames,
                        scenario::mssForFrames(std::size_t(frames)),
                        r.mean("goodput_kbps", {{"frames", frames}, {"uplink", 1}}),
                        r.mean("goodput_kbps", {{"frames", frames}, {"uplink", 0}}));
        }
        std::printf("\nPaper: rises steeply to ~5 frames then levels off near 60-75 kb/s.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
