// Figure 4: goodput vs Maximum Segment Size (in frames), uplink & downlink.
//
// Expected shape (§6.1): poor at small MSS (header overhead dominates),
// diminishing returns past ~5 frames; the paper picks MSS = 5 frames.
#include "bench/common.hpp"

using namespace bench;

int main() {
    printHeader("Figure 4: goodput vs MSS (single hop via border router)");
    std::printf("%-14s %10s %14s %14s\n", "MSS(frames)", "MSS(bytes)", "Uplink kb/s",
                "Downlink kb/s");
    for (std::size_t frames = 2; frames <= 8; ++frames) {
        const std::uint16_t mss = mssForFrames(frames);
        double up = 0.0, down = 0.0;
        const int kSeeds = 2;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            BulkOptions o;
            o.hops = 1;
            o.totalBytes = 120000;
            o.retryDelayMax = 0;  // single hop: no hidden terminals (§7.1)
            o.mss = mss;
            o.windowSegments = std::max<std::size_t>(4, 1848 / mss);
            o.seed = seed;
            o.uplink = true;
            up += runBulkTransfer(o).goodputKbps;
            o.uplink = false;
            down += runBulkTransfer(o).goodputKbps;
        }
        std::printf("%-14zu %10u %14.1f %14.1f\n", frames, mss, up / kSeeds, down / kSeeds);
    }
    std::printf("\nPaper: rises steeply to ~5 frames then levels off near 60-75 kb/s.\n");
    return 0;
}
