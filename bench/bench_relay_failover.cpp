// Chaos: permanent death of the sensor's first-hop relay, self-healing on.
//
// Sensor 15 streams uplink over the Fig. 3 office tree when its only parent,
// relay 10, dies for good at t=4s (sim::FaultKind::kNodeFailure — no reboot
// ever comes). With self-healing routing enabled the mesh repairs around the
// corpse: node 15 fails its default route over to sibling relay 11, and node
// 8 fails the downlink (ACK) route to 15 over to 11 as well, so the flow
// completes without a single TCP give-up. The fault=0 baseline pins that the
// liveness machinery costs nothing when nothing fails.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "relay_failover";
    d.title = "Chaos: permanent first-hop relay death, alternate-parent failover";
    d.base.topology.kind = TopologyKind::kOffice;
    d.base.topology.selfHealing = true;
    d.base.workload.totalBytes = 25000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.base.fault.chaos = true;
    {
        sim::FaultEvent death;
        death.kind = sim::FaultKind::kNodeFailure;
        death.at = 4 * sim::kSecond;
        death.target = 10;  // sensor 15's first-hop relay
        d.base.fault.plan.fixed = {death};
    }
    d.axes = {{"fault", {0, 1}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = scenario::faultFromAxis(p.value("fault"));
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %14s %10s %10s %10s %12s\n", "Fault", "Goodput kb/s",
                    "Complete", "Reroutes", "GiveUps", "Blackholes");
        for (double fault : {0.0, 1.0}) {
            std::printf("%-10s %14.1f %10.1f %10.1f %10.1f %12.1f\n",
                        fault > 0.5 ? "death" : "clean",
                        r.mean("goodput_kbps", {{"fault", fault}}),
                        r.mean("complete", {{"fault", fault}}),
                        r.mean("reroutes", {{"fault", fault}}),
                        r.mean("give_ups", {{"fault", fault}}),
                        r.mean("blackhole_drops", {{"fault", fault}}));
        }
        std::printf("\nThe relay never comes back; the flow must finish over the\n"
                    "alternate parent with zero TCP give-ups.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
