// Figure 5: goodput and RTT vs window (receive-buffer) size, downlink.
//
// Expected shape (§6.2): goodput rises with the window and levels off once
// the window exceeds the bandwidth-delay product (~1.5 KiB); RTT grows with
// window as self-queueing sets in.
#include "bench/common.hpp"

using namespace bench;

int main() {
    printHeader("Figure 5: effect of window (buffer) size, single hop downlink");
    const std::uint16_t mss = mssForFrames(5);
    std::printf("(MSS = %u bytes = 5 frames)\n", mss);
    std::printf("%-10s %12s %14s %12s\n", "Segments", "Window(B)", "Goodput kb/s", "RTT ms");
    for (std::size_t segments = 1; segments <= 6; ++segments) {
        double goodput = 0.0, rtt = 0.0;
        const int kSeeds = 2;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            BulkOptions o;
            o.hops = 1;
            o.totalBytes = 100000;
            o.retryDelayMax = 0;
            o.mss = mss;
            o.windowSegments = segments;
            o.uplink = false;  // paper's Fig. 5 is downlink
            o.seed = seed;
            const BulkResult r = runBulkTransfer(o);
            goodput += r.goodputKbps;
            rtt += r.rttMedianMs;
        }
        std::printf("%-10zu %12zu %14.1f %12.0f\n", segments, segments * std::size_t(mss),
                    goodput / kSeeds, rtt / kSeeds);
    }
    std::printf("\nPaper: goodput levels off at ~1.5 KiB (about 4 segments) — the BDP\n"
                "of a ~125 kb/s effective link with ~100 ms RTT (%.0f bytes).\n",
                model::bdpBytes(125000.0, 0.1));
    return 0;
}
