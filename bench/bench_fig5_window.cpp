// Figure 5: goodput and RTT vs window (receive-buffer) size, downlink.
//
// Expected shape (§6.2): goodput rises with the window and levels off once
// the window exceeds the bandwidth-delay product (~1.5 KiB); RTT grows with
// window as self-queueing sets in.
#include "bench/driver.hpp"

#include "tcplp/model/models.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig5_window";
    d.title = "Figure 5: effect of window (buffer) size, single hop downlink";
    d.base.topology.hops = 1;
    d.base.topology.retryDelayMax = sim::Time(0);
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 100000;
    d.base.workload.uplink = false;  // paper's Fig. 5 is downlink
    d.axes = {{"segments", {1, 2, 3, 4, 5, 6}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.windowSegments = std::size_t(p.value("segments"));
    };
    d.present = [](const SweepResult& r) {
        const std::uint16_t mss = scenario::mssForFrames(5);
        std::printf("(MSS = %u bytes = 5 frames)\n", mss);
        std::printf("%-10s %12s %14s %12s\n", "Segments", "Window(B)", "Goodput kb/s",
                    "RTT ms");
        for (double segments : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
            std::printf("%-10.0f %12zu %14.1f %12.0f\n", segments,
                        std::size_t(segments) * std::size_t(mss),
                        r.mean("goodput_kbps", {{"segments", segments}}),
                        r.mean("rtt_median_ms", {{"segments", segments}}));
        }
        std::printf("\nPaper: goodput levels off at ~1.5 KiB (about 4 segments) — the BDP\n"
                    "of a ~125 kb/s effective link with ~100 ms RTT (%.0f bytes).\n",
                    model::bdpBytes(125000.0, 0.1));
    };
    return d;
}

Registration reg{def()};
}  // namespace
