// A small registered scenario grid used as the parallel-sweep smoke test:
// cheap enough for CI to run at --jobs 4, real enough to exercise the full
// line-topology bulk path on every worker. CI runs
//
//   tcplp_bench --filter sweep_smoke --jobs 4 --json
//
// and fails on any worker nonzero exit or malformed JSON line; the
// determinism tests and bench_sweep_scaling reuse the same definition.
#include "bench/driver.hpp"

namespace {
using namespace bench;

ScenarioDef def() {
    ScenarioDef d;
    d.name = "sweep_smoke";
    d.title = "Sweep smoke: 2x2 bulk grid x seeds (parallel-runner exerciser)";
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.base.topology.queueCapacityPackets = 24;
    d.base.workload.totalBytes = 20000;
    d.base.workload.timeLimit = 10 * sim::kMinute;
    d.axes = {{"hops", {1, 2}}, {"uplink", {1, 0}}};
    d.seeds = {1, 2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.hops = std::size_t(p.value("hops"));
        s.workload.uplink = p.value("uplink") != 0;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-6s %-8s %-6s %14s %12s\n", "Hops", "Uplink", "Seed", "Goodput kb/s",
                    "ContentOK");
        for (const auto& record : r.records) {
            std::printf("%-6.0f %-8.0f %-6llu %14.1f %12s\n", record.point.value("hops"),
                        record.point.value("uplink"),
                        static_cast<unsigned long long>(record.point.seed),
                        record.row.number("goodput_kbps"),
                        record.row.number("content_ok") != 0 ? "yes" : "NO");
        }
    };
    return d;
}

Registration reg{def()};
}  // namespace
