// Table 7: TCPlp vs simplified embedded TCP stacks (uIP/BLIP profiles),
// one-hop and multi-hop goodput.
//
// Expected shape: TCPlp 5-40x the single-outstanding-segment stacks.
#include "bench/driver.hpp"

namespace {
using namespace bench;

// stack axis: 0 = uIP profile, 1 = BLIP profile, 2 = full-scale TCPlp.
ScenarioDef def() {
    ScenarioDef d;
    d.name = "table7_stacks";
    d.title = "Table 7: goodput across TCP stacks (kb/s)";
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.axes = {{"stack", {0, 1, 2}}, {"hops", {1, 3}}};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const int stack = int(p.value("stack"));
        s.topology.hops = std::size_t(p.value("hops"));
        if (stack < 2) {
            // uIP negotiates 4-frame segments in some studies; classic
            // deployments used 1 frame. Table 7's headline rows: 1-frame MSS.
            s.workload.kind = WorkloadKind::kEmbeddedBulk;
            s.workload.embeddedProfile = stack == 0 ? transport::EmbeddedProfile::kUip
                                                    : transport::EmbeddedProfile::kBlip;
            s.workload.embeddedMss = 60;
            s.workload.totalBytes = s.topology.hops == 1 ? 20000 : 8000;
            s.workload.timeLimit = 60 * sim::kMinute;
        } else {
            s.topology.queueCapacityPackets = 24;
            s.workload.totalBytes = s.topology.hops == 1 ? 150000 : 60000;
        }
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-28s %12s %12s\n", "Stack", "One hop", "Three hops");
        const double uip1 = r.mean("goodput_kbps", {{"stack", 0}, {"hops", 1}});
        const double uip3 = r.mean("goodput_kbps", {{"stack", 0}, {"hops", 3}});
        const double blip1 = r.mean("goodput_kbps", {{"stack", 1}, {"hops", 1}});
        const double blip3 = r.mean("goodput_kbps", {{"stack", 1}, {"hops", 3}});
        const double full1 = r.mean("goodput_kbps", {{"stack", 2}, {"hops", 1}});
        const double full3 = r.mean("goodput_kbps", {{"stack", 2}, {"hops", 3}});
        std::printf("%-28s %12.2f %12.2f   (paper: 1.5-12 / 0.55-12)\n",
                    "uIP profile (1 seg, 1 frame)", uip1, uip3);
        std::printf("%-28s %12.2f %12.2f   (paper: 4.8 / 2.4)\n",
                    "BLIP profile (1 seg, no RTT)", blip1, blip3);
        std::printf("%-28s %12.2f %12.2f   (paper: 75 / 20)\n", "TCPlp (full-scale)",
                    full1, full3);
        std::printf("\nImprovement factors: one hop %.0fx over uIP, %.0fx over BLIP;\n",
                    full1 / uip1, full1 / blip1);
        std::printf("three hops %.0fx over uIP, %.0fx over BLIP (paper: 5-40x).\n",
                    full3 / uip3, full3 / blip3);
    };
    return d;
}

Registration reg{def()};
}  // namespace
