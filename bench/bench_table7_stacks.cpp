// Table 7: TCPlp vs simplified embedded TCP stacks (uIP/BLIP profiles),
// one-hop and multi-hop goodput.
//
// Expected shape: TCPlp 5-40x the single-outstanding-segment stacks.
#include "bench/common.hpp"

using namespace bench;

namespace {

double runEmbedded(transport::EmbeddedProfile profile, std::size_t hops,
                   std::size_t totalBytes, std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(40);
    auto tb = harness::Testbed::line(hops, cfg);

    mesh::Node& mote = *tb->findNode(phy::NodeId(9 + hops));
    transport::EmbeddedTcpConfig ec;
    ec.profile = profile;
    // uIP negotiates 4-frame segments in some studies; classic deployments
    // used 1 frame. We follow Table 7's headline rows: 1-frame MSS.
    ec.mss = 60;
    transport::EmbeddedTcpSocket client(mote, ec);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    cloudStack.listen(80, serverTcpConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
    });
    app::EmbeddedBulkSender sender(client, totalBytes);
    client.connect(tb->cloud().address(), 80);
    // The stop-and-wait stack has no send-space callback; poll it.
    std::function<void()> poll = [&] {
        sender.pump();
        if (sender.offered() < totalBytes || client.backlog() > 0)
            tb->simulator().schedule(sim::kSecond, poll);
    };
    tb->simulator().schedule(sim::kSecond, poll);
    tb->simulator().runUntil(60 * sim::kMinute);
    return meter.goodputKbps();
}

double runFull(std::size_t hops, std::uint64_t seed) {
    BulkOptions o;
    o.hops = hops;
    o.totalBytes = hops == 1 ? 150000 : 60000;
    o.retryDelayMax = sim::fromMillis(40);
    o.mss = mssForFrames(5);
    o.seed = seed;
    return runBulkTransfer(o).goodputKbps;
}

}  // namespace

int main() {
    printHeader("Table 7: goodput across TCP stacks (kb/s)");
    std::printf("%-28s %12s %12s\n", "Stack", "One hop", "Three hops");

    const double uip1 = runEmbedded(transport::EmbeddedProfile::kUip, 1, 20000, 1);
    const double uip3 = runEmbedded(transport::EmbeddedProfile::kUip, 3, 8000, 1);
    std::printf("%-28s %12.2f %12.2f   (paper: 1.5-12 / 0.55-12)\n",
                "uIP profile (1 seg, 1 frame)", uip1, uip3);

    const double blip1 = runEmbedded(transport::EmbeddedProfile::kBlip, 1, 20000, 1);
    const double blip3 = runEmbedded(transport::EmbeddedProfile::kBlip, 3, 8000, 1);
    std::printf("%-28s %12.2f %12.2f   (paper: 4.8 / 2.4)\n",
                "BLIP profile (1 seg, no RTT)", blip1, blip3);

    const double full1 = runFull(1, 1);
    const double full3 = runFull(3, 1);
    std::printf("%-28s %12.2f %12.2f   (paper: 75 / 20)\n", "TCPlp (full-scale)", full1,
                full3);

    std::printf("\nImprovement factors: one hop %.0fx over uIP, %.0fx over BLIP;\n",
                full1 / uip1, full1 / blip1);
    std::printf("three hops %.0fx over uIP, %.0fx over BLIP (paper: 5-40x).\n",
                full3 / uip3, full3 / blip3);
    return 0;
}
