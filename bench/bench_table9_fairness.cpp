// Table 9 / Appendix A: two simultaneous TCP flows sharing the path to the
// border router — fairness and efficiency, plus the RED/ECN fix for the
// larger-buffer regime.
//
// Expected shape: with 4-segment buffers, the two flows share goodput
// roughly evenly at one and three hops. With 7-segment buffers, tail drops
// at the relay skew sharing; per-hop reassembly + RED + ECN restores it.
#include "bench/common.hpp"

using namespace bench;

namespace {
struct TwoFlowResult {
    double goodputA = 0.0;
    double goodputB = 0.0;
    double rttA = 0.0;
    double rttB = 0.0;
    double lossA = 0.0;
    double lossB = 0.0;
};

// Two sources, both `hops` away from the border router, sharing all but the
// first hop (the Appendix A setup). For one hop, both attach directly.
TwoFlowResult runTwoFlows(std::size_t hops, std::size_t windowSegments, bool redEcn,
                          std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.nodeDefaults.macConfig.retryDelayMax = sim::fromMillis(40);
    cfg.nodeDefaults.queueConfig.capacityPackets = 7;  // relay buffer limit
    if (redEcn) {
        cfg.nodeDefaults.perHopReassembly = true;  // the Appendix A change
        cfg.nodeDefaults.queueConfig.discipline = ip6::QueueDiscipline::kRed;
        cfg.nodeDefaults.queueConfig.ecnMarking = true;
    }
    auto tb = harness::Testbed::line(hops, cfg);

    // Second source: a sibling of the last node, attached to the same relay
    // (or to the border router for one hop).
    const phy::NodeId firstSrc = phy::NodeId(9 + hops);
    const phy::NodeId attach = hops == 1 ? 1 : phy::NodeId(9 + hops - 1);
    mesh::NodeConfig nc = cfg.nodeDefaults;
    nc.role = mesh::Role::kRouter;
    mesh::Node* relay = tb->findNode(attach);
    mesh::Node& second =
        tb->addNode(99, {relay->radio()->position().x + 8.0,
                         relay->radio()->position().y + 6.0},
                    nc);
    second.setDefaultRoute(attach);
    relay->addRoute(99, 99);
    // Downlink routes toward the new node at every upstream hop.
    tb->borderRouter().addRoute(99, hops == 1 ? phy::NodeId(99) : phy::NodeId(10));
    for (std::size_t i = 1; i + 1 < hops; ++i)
        tb->findNode(phy::NodeId(9 + i))->addRoute(99, phy::NodeId(9 + i + 1));
    if (hops > 1) tb->findNode(attach)->addRoute(99, 99);

    const std::uint16_t mss = mssForFrames(5);
    tcp::TcpConfig moteCfg = moteTcpConfig(mss, windowSegments);
    moteCfg.ecn = redEcn;
    tcp::TcpConfig servCfg = serverTcpConfig(mss);
    servCfg.ecn = redEcn;

    tcp::TcpStack stackA(*tb->findNode(firstSrc));
    tcp::TcpStack stackB(second);
    tcp::TcpStack cloud(tb->cloud());

    app::GoodputMeter meterA(tb->simulator()), meterB(tb->simulator());
    cloud.listen(80, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterA.onData(d); });
    });
    cloud.listen(81, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterB.onData(d); });
    });

    tcp::TcpSocket& a = stackA.createSocket(moteCfg);
    tcp::TcpSocket& b = stackB.createSocket(moteCfg);
    // Five-minute simultaneous transfer, per Appendix A.
    app::BulkSender sendA(a, 10'000'000);
    app::BulkSender sendB(b, 10'000'000);
    a.connect(tb->cloud().address(), 80);
    b.connect(tb->cloud().address(), 81);
    tb->simulator().runUntil(5 * sim::kMinute);

    TwoFlowResult r;
    const double secs = sim::toSeconds(5 * sim::kMinute);
    r.goodputA = double(meterA.bytes()) * 8.0 / 1000.0 / secs;
    r.goodputB = double(meterB.bytes()) * 8.0 / 1000.0 / secs;
    r.rttA = a.stats().rttSamples.median();
    r.rttB = b.stats().rttSamples.median();
    r.lossA = a.stats().segsSent ? 100.0 * double(a.stats().retransmissions) /
                                       double(a.stats().segsSent)
                                 : 0.0;
    r.lossB = b.stats().segsSent ? 100.0 * double(b.stats().retransmissions) /
                                       double(b.stats().segsSent)
                                 : 0.0;
    return r;
}

void report(const char* label, const TwoFlowResult& r) {
    const double fairness = std::min(r.goodputA, r.goodputB) /
                            std::max(1e-9, std::max(r.goodputA, r.goodputB));
    std::printf("%-34s %6.1f / %-6.1f %6.2f %7.0f/%-6.0f %5.2f/%-5.2f\n", label, r.goodputA,
                r.goodputB, fairness, r.rttA, r.rttB, r.lossA, r.lossB);
}
}  // namespace

int main() {
    printHeader("Table 9 / Appendix A: two-flow fairness");
    std::printf("%-34s %15s %6s %14s %11s\n", "Scenario", "Goodput kb/s", "Fair", "RTT ms",
                "Rexmit %");
    report("1 hop, 4-seg buffers", runTwoFlows(1, 4, false, 2));
    report("3 hops, 4-seg buffers", runTwoFlows(3, 4, false, 2));
    report("3 hops, 7-seg buffers", runTwoFlows(3, 7, false, 2));
    report("3 hops, 7-seg + RED/ECN", runTwoFlows(3, 7, true, 2));
    std::printf("\nPaper shape: 4-segment buffers share fairly (41.7/35.2 one hop,\n"
                "10.9/9.4 three hops); 7-segment buffers degrade without RED/ECN.\n");
    return 0;
}
