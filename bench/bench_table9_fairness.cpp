// Table 9 / Appendix A: two simultaneous TCP flows sharing the path to the
// border router — fairness and efficiency, plus the RED/ECN fix for the
// larger-buffer regime.
//
// Expected shape: with 4-segment buffers, the two flows share goodput
// roughly evenly at one and three hops. With 7-segment buffers, tail drops
// at the relay skew sharing; per-hop reassembly + RED + ECN restores it.
#include "bench/driver.hpp"

namespace {
using namespace bench;

struct FairnessConfig {
    const char* label;
    std::size_t hops;
    std::size_t windowSegments;
    bool redEcn;
};
const FairnessConfig kConfigs[] = {
    {"1 hop, 4-seg buffers", 1, 4, false},
    {"3 hops, 4-seg buffers", 3, 4, false},
    {"3 hops, 7-seg buffers", 3, 7, false},
    {"3 hops, 7-seg + RED/ECN", 3, 7, true},
};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "table9_fairness";
    d.title = "Table 9 / Appendix A: two-flow fairness";
    d.base.workload.kind = WorkloadKind::kTwoFlow;
    d.base.topology.retryDelayMax = sim::fromMillis(40);
    d.base.topology.queueCapacityPackets = 7;  // relay buffer limit
    d.base.workload.totalBytes = 10'000'000;   // saturating for the window
    d.base.workload.timeLimit = 5 * sim::kMinute;  // per Appendix A
    d.axes = {{"cfg", {0, 1, 2, 3}}};
    d.seeds = {2};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        const FairnessConfig& c = kConfigs[std::size_t(p.value("cfg"))];
        s.topology.hops = c.hops;
        s.workload.windowSegments = c.windowSegments;
        if (c.redEcn) {
            s.topology.perHopReassembly = true;  // the Appendix A change
            s.topology.redQueue = true;
            s.topology.ecnMarking = true;
            s.workload.ecn = true;
        }
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-34s %15s %6s %14s %11s\n", "Scenario", "Goodput kb/s", "Fair",
                    "RTT ms", "Rexmit %");
        for (const auto& record : r.records) {
            const FairnessConfig& c = kConfigs[std::size_t(record.point.value("cfg"))];
            const auto& row = record.row;
            std::printf("%-34s %6.1f / %-6.1f %6.2f %7.0f/%-6.0f %5.2f/%-5.2f\n", c.label,
                        row.number("goodput_a_kbps"), row.number("goodput_b_kbps"),
                        row.number("fairness"), row.number("rtt_a_ms"),
                        row.number("rtt_b_ms"), row.number("rexmit_a_pct"),
                        row.number("rexmit_b_pct"));
        }
        std::printf("\nPaper shape: 4-segment buffers share fairly (41.7/35.2 one hop,\n"
                    "10.9/9.4 three hops); 7-segment buffers degrade without RED/ECN.\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
