// Shared experiment runners for the bench binaries. Each bench regenerates
// one table or figure from the paper (see DESIGN.md §3); the helpers here
// encapsulate the recurring setups: bulk transfers over line topologies and
// the anemometer application over the office testbed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "tcplp/app/bulk.hpp"
#include "tcplp/app/sensor.hpp"
#include "tcplp/coap/coap.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/model/models.hpp"
#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/embedded_tcp.hpp"

namespace bench {

using namespace tcplp;

inline tcp::TcpConfig moteTcpConfig(std::uint16_t mss = 462, std::size_t segments = 4) {
    tcp::TcpConfig c;
    c.mss = mss;
    c.sendBufferBytes = segments * mss;
    c.recvBufferBytes = segments * mss;
    return c;
}

inline tcp::TcpConfig serverTcpConfig(std::uint16_t mss = 462) {
    tcp::TcpConfig c;
    c.mss = mss;
    c.sendBufferBytes = 16384;
    c.recvBufferBytes = 16384;
    return c;
}

struct BulkResult {
    double goodputKbps = 0.0;
    double rttMedianMs = 0.0;
    double segmentLoss = 0.0;  // TCP-level loss (not masked by link retries)
    std::uint64_t framesTransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fastRetransmissions = 0;
    std::size_t bytes = 0;
    bool contentOk = false;
};

struct BulkOptions {
    std::size_t hops = 1;
    std::size_t totalBytes = 150000;
    sim::Time retryDelayMax = sim::fromMillis(40);
    std::uint16_t mss = 462;
    std::size_t windowSegments = 4;
    bool uplink = true;  // mote -> cloud, else cloud -> mote
    std::uint64_t seed = 1;
    double linkLoss = 0.0;
    sim::Time timeLimit = 40 * sim::kMinute;
    tcp::TcpSocket::CwndTracer cwndTracer;
};

/// Bulk TCP transfer over a line topology; the workhorse of §6/§7 benches.
inline BulkResult runBulkTransfer(const BulkOptions& opt) {
    harness::TestbedConfig cfg;
    cfg.seed = opt.seed;
    cfg.linkLoss = opt.linkLoss;
    cfg.nodeDefaults.macConfig.retryDelayMax = opt.retryDelayMax;
    // Small-MSS sweeps put more packets than the default queue depth in
    // flight; size the forwarding queues to the largest window used.
    cfg.nodeDefaults.queueConfig.capacityPackets = 24;
    auto tb = harness::Testbed::line(opt.hops, cfg);

    mesh::Node& mote = *tb->findNode(phy::NodeId(9 + opt.hops));
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    tcp::TcpStack& senderStack = opt.uplink ? moteStack : cloudStack;
    tcp::TcpStack& receiverStack = opt.uplink ? cloudStack : moteStack;
    const tcp::TcpConfig senderCfg =
        opt.uplink ? moteTcpConfig(opt.mss, opt.windowSegments) : serverTcpConfig(opt.mss);
    const tcp::TcpConfig receiverCfg =
        opt.uplink ? serverTcpConfig(opt.mss) : moteTcpConfig(opt.mss, opt.windowSegments);

    receiverStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& sender = senderStack.createSocket(senderCfg);
    if (opt.cwndTracer) sender.setCwndTracer(opt.cwndTracer);
    app::BulkSender bulk(sender, opt.totalBytes);
    const ip6::Address dst = opt.uplink ? tb->cloud().address() : mote.address();
    sender.connect(dst, 80);
    tb->simulator().runUntil(opt.timeLimit);

    BulkResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.contentOk = meter.contentOk();
    r.rttMedianMs = sender.stats().rttSamples.median();
    r.framesTransmitted = tb->channel().framesTransmitted();
    r.timeouts = sender.stats().timeouts;
    r.fastRetransmissions = sender.stats().fastRetransmissions;
    const auto sent = sender.stats().segsSent;
    const auto rexmit = sender.stats().retransmissions;
    r.segmentLoss = sent > 0 ? double(rexmit) / double(sent) : 0.0;
    return r;
}

/// Computes the MSS (payload bytes) that makes a mote->cloud TCP segment
/// occupy exactly `frames` 802.15.4 frames (§6.1's sweep axis).
inline std::uint16_t mssForFrames(std::size_t frames) {
    for (std::uint16_t mss = 1400; mss >= 16; --mss) {
        tcp::Segment seg;
        seg.timestamps = tcp::Timestamps{1, 2};
        seg.payload = patternBytes(0, mss);
        ip6::Packet p;
        p.src = ip6::Address::meshLocal(10);
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = seg.encode();
        if (lowpan::frameCountFor(p, 10, 1, phy::kMaxMacPayloadBytes) <= frames) return mss;
    }
    return 16;
}

inline void printHeader(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
