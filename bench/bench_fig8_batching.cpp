// Figure 8: effect of batching on power consumption in favorable (night)
// conditions — radio and CPU duty cycle for CoAP, CoCoA, TCPlp.
//
// Expected shape: all three protocols comparable; batching markedly cheaper
// than per-reading sends; reliability 100% everywhere.
#include "bench/driver.hpp"

namespace {
using namespace bench;
using harness::SensorProtocol;

constexpr SensorProtocol kProtoOrder[] = {SensorProtocol::kCoap, SensorProtocol::kCocoa,
                                          SensorProtocol::kTcp};

ScenarioDef def() {
    ScenarioDef d;
    d.name = "fig8_batching";
    d.title = "Figure 8: batching vs no batching (night conditions)";
    d.base.workload.kind = WorkloadKind::kAnemometer;
    d.base.workload.anemometer.duration = 20 * sim::kMinute;
    d.axes = {{"proto", {0, 1, 2}}, {"batching", {0, 1}}};
    d.seeds = {3};
    d.bind = [](ScenarioSpec& s, const Point& p) {
        s.workload.anemometer.protocol = kProtoOrder[std::size_t(p.value("proto"))];
        s.workload.anemometer.batching = p.value("batching") != 0;
    };
    d.present = [](const SweepResult& r) {
        std::printf("%-10s %-12s %12s %12s %12s\n", "Protocol", "Batching", "Radio DC %",
                    "CPU DC %", "Reliability");
        for (const auto& record : r.records) {
            const SensorProtocol proto =
                kProtoOrder[std::size_t(record.point.value("proto"))];
            std::printf("%-10s %-12s %12.2f %12.2f %11.1f%%\n",
                        harness::protocolName(proto),
                        record.point.value("batching") != 0 ? "Batching" : "No Batching",
                        record.row.number("radio_dc") * 100.0,
                        record.row.number("cpu_dc") * 100.0,
                        record.row.number("reliability") * 100.0);
        }
        std::printf("\nPaper shape: every protocol 100%% reliable; batching roughly halves\n"
                    "the duty cycles; the three protocols are comparable (within ~3x).\n");
    };
    return d;
}

Registration reg{def()};
}  // namespace
