// Figure 8: effect of batching on power consumption in favorable (night)
// conditions — radio and CPU duty cycle for CoAP, CoCoA, TCPlp.
//
// Expected shape: all three protocols comparable; batching markedly cheaper
// than per-reading sends; reliability 100% everywhere.
#include "bench/common.hpp"
#include "tcplp/harness/anemometer.hpp"

using namespace bench;
using harness::SensorProtocol;

int main() {
    printHeader("Figure 8: batching vs no batching (night conditions)");
    std::printf("%-10s %-12s %12s %12s %12s\n", "Protocol", "Batching", "Radio DC %",
                "CPU DC %", "Reliability");
    for (SensorProtocol proto :
         {SensorProtocol::kCoap, SensorProtocol::kCocoa, SensorProtocol::kTcp}) {
        for (bool batching : {false, true}) {
            harness::AnemometerOptions o;
            o.protocol = proto;
            o.batching = batching;
            o.duration = 20 * sim::kMinute;
            o.seed = 3;
            const auto r = harness::runAnemometer(o);
            std::printf("%-10s %-12s %12.2f %12.2f %11.1f%%\n", harness::protocolName(proto),
                        batching ? "Batching" : "No Batching", r.radioDutyCycle * 100.0,
                        r.cpuDutyCycle * 100.0, r.reliability * 100.0);
        }
    }
    std::printf("\nPaper shape: every protocol 100%% reliable; batching roughly halves\n"
                "the duty cycles; the three protocols are comparable (within ~3x).\n");
    return 0;
}
