#include "tcplp/scenario/registry.hpp"

#include "tcplp/common/assert.hpp"

namespace tcplp::scenario {

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

void Registry::add(ScenarioDef def) {
    TCPLP_ASSERT(!def.name.empty());
    TCPLP_ASSERT(find(def.name) == nullptr && "duplicate scenario name");
    defs_.push_back(std::move(def));
}

const ScenarioDef* Registry::find(const std::string& name) const {
    for (const ScenarioDef& d : defs_)
        if (d.name == name) return &d;
    return nullptr;
}

Registration::Registration(ScenarioDef def) {
    Registry::instance().add(std::move(def));
}

}  // namespace tcplp::scenario
