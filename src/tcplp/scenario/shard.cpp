#include "tcplp/scenario/shard.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>

namespace tcplp::scenario {

namespace {

constexpr std::size_t kStderrTailBytes = 4096;

void writeAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0) _exit(3);  // parent gone; nothing sensible left to do
        off += std::size_t(n);
    }
}

void keepTail(std::string& tail, const char* data, std::size_t n) {
    tail.append(data, n);
    if (tail.size() > kStderrTailBytes)
        tail.erase(0, tail.size() - kStderrTailBytes);
}

}  // namespace

std::string ShardFailure::message() const {
    std::string out = "worker " + std::to_string(worker);
    if (WIFSIGNALED(waitStatus)) {
        const int sig = WTERMSIG(waitStatus);
        out += " killed by signal " + std::to_string(sig);
        if (const char* name = strsignal(sig)) out += std::string(" (") + name + ")";
    } else if (WIFEXITED(waitStatus)) {
        out += " exited with status " + std::to_string(WEXITSTATUS(waitStatus));
    } else {
        out += " died (status " + std::to_string(waitStatus) + ")";
    }
    if (taskKnown) {
        out += " while running " + taskDescription;
    } else {
        out += " between run points";
    }
    if (!stderrTail.empty()) {
        std::string tail = stderrTail;
        while (!tail.empty() && tail.back() == '\n') tail.pop_back();
        out += "; stderr tail: " + tail;
    }
    return out;
}

ShardOutcome runShardedTasks(std::size_t taskCount,
                             const std::function<MetricRow(std::size_t)>& run,
                             const std::function<std::string(std::size_t)>& describe,
                             const ShardOptions& options) {
    ShardOutcome outcome;
    outcome.rows.resize(taskCount);
    outcome.produced.assign(taskCount, false);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < taskCount; ++i) {
        if (i < options.skip.size() && options.skip[i]) continue;
        pending.push_back(i);
    }

    int jobs = options.jobs <= 1 ? 1 : options.jobs;
    jobs = int(std::min<std::size_t>(std::size_t(jobs),
                                     std::max<std::size_t>(pending.size(), 1)));

    if (jobs <= 1) {
        for (const std::size_t i : pending) {
            try {
                outcome.rows[i] = run(i);
            } catch (const std::exception& e) {
                outcome.error = "task failed in-process while running " +
                                (describe ? describe(i) : std::to_string(i)) + ": " +
                                e.what();
                return outcome;
            } catch (...) {
                outcome.error = "task failed in-process while running " +
                                (describe ? describe(i) : std::to_string(i)) +
                                ": non-standard exception";
                return outcome;
            }
            outcome.produced[i] = true;
            if (options.onRow) options.onRow(i, outcome.rows[i]);
        }
        outcome.ok = true;
        return outcome;
    }

    struct Worker {
        pid_t pid = -1;
        int rowFd = -1;   // row/control frames
        int errFd = -1;   // captured stderr
        std::string buffer;
        std::string stderrTail;
        bool rowEof = false;
        bool errEof = false;
        bool taskInFlight = false;
        std::size_t inFlight = 0;
    };
    std::vector<Worker> workers(static_cast<std::size_t>(jobs));
    // Error-path teardown: kill and reap every spawned worker and close its
    // pipes, so a pipe()/fork()/poll() failure never leaks children stuck in
    // write() against a full, never-drained pipe.
    const auto abandonWorkers = [&workers] {
        for (Worker& w : workers) {
            if (w.rowFd >= 0 && !w.rowEof) ::close(w.rowFd);
            if (w.errFd >= 0 && !w.errEof) ::close(w.errFd);
            w.rowEof = w.errEof = true;
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, nullptr, 0);
                w.pid = -1;
            }
        }
    };

    for (int w = 0; w < jobs; ++w) {
        int rowFds[2];
        int errFds[2];
        if (::pipe(rowFds) != 0) {
            outcome.error = "pipe() failed";
            abandonWorkers();
            return outcome;
        }
        if (::pipe(errFds) != 0) {
            ::close(rowFds[0]);
            ::close(rowFds[1]);
            outcome.error = "pipe() failed";
            abandonWorkers();
            return outcome;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(rowFds[0]);
            ::close(rowFds[1]);
            ::close(errFds[0]);
            ::close(errFds[1]);
            outcome.error = "fork() failed";
            abandonWorkers();
            return outcome;
        }
        if (pid == 0) {
            // Worker w: run every pending task with position % jobs == w,
            // announcing each before starting and streaming its row back,
            // then _exit without running atexit/static teardown (the parent
            // owns stdio). stderr is redirected into the capture pipe so a
            // dying task's last words reach the parent's diagnostic.
            ::close(rowFds[0]);
            ::close(errFds[0]);
            for (Worker& other : workers) {
                if (other.rowFd >= 0) ::close(other.rowFd);
                if (other.errFd >= 0) ::close(other.errFd);
            }
            ::dup2(errFds[1], STDERR_FILENO);
            ::close(errFds[1]);
            int status = 0;
            try {
                for (std::size_t p = std::size_t(w); p < pending.size();
                     p += std::size_t(jobs)) {
                    const std::size_t task = pending[p];
                    writeAll(rowFds[1], "BEGIN " + std::to_string(task) + '\n');
                    const MetricRow row = run(task);
                    writeAll(rowFds[1], encodeRowFrame(task, row));
                }
            } catch (const std::exception& e) {
                std::fprintf(stderr, "uncaught exception: %s\n", e.what());
                status = 2;
            } catch (...) {
                std::fprintf(stderr, "uncaught non-standard exception\n");
                status = 2;
            }
            ::close(rowFds[1]);
            ::fflush(stderr);
            _exit(status);
        }
        ::close(rowFds[1]);
        ::close(errFds[1]);
        workers[std::size_t(w)].pid = pid;
        workers[std::size_t(w)].rowFd = rowFds[0];
        workers[std::size_t(w)].errFd = errFds[0];
    }

    // Drain all worker pipes concurrently (a worker must never block on a
    // full pipe because the parent is busy with another one).
    std::vector<std::pair<std::size_t, MetricRow>> rows;
    bool malformed = false;
    for (;;) {
        std::vector<pollfd> pfds;
        for (const Worker& w : workers) {
            if (!w.rowEof) pfds.push_back({w.rowFd, POLLIN, 0});
            if (!w.errEof) pfds.push_back({w.errFd, POLLIN, 0});
        }
        if (pfds.empty()) break;
        if (::poll(pfds.data(), nfds_t(pfds.size()), -1) < 0) {
            if (errno == EINTR) continue;
            outcome.error = "poll() failed";
            abandonWorkers();
            return outcome;
        }
        for (const pollfd& p : pfds) {
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR))) continue;
            Worker* w = nullptr;
            bool isRowFd = false;
            for (Worker& cand : workers) {
                if (cand.rowFd == p.fd && !cand.rowEof) {
                    w = &cand;
                    isRowFd = true;
                } else if (cand.errFd == p.fd && !cand.errEof) {
                    w = &cand;
                }
            }
            if (w == nullptr) continue;
            char buf[4096];
            const ssize_t n = ::read(p.fd, buf, sizeof buf);
            if (n < 0 && errno == EINTR) continue;
            if (n > 0) {
                if (isRowFd) {
                    w->buffer.append(buf, std::size_t(n));
                    const std::size_t before = rows.size();
                    const auto onBegin = [w](std::size_t task) {
                        w->taskInFlight = true;
                        w->inFlight = task;
                    };
                    // In-stream: one read may hold several BEGIN/ROW pairs
                    // plus a trailing unanswered BEGIN — only a ROW arriving
                    // AFTER a BEGIN clears the in-flight marker.
                    const auto onRowParsed = [w](std::size_t) {
                        w->taskInFlight = false;
                    };
                    if (!drainRowFrames(w->buffer, rows, onBegin, onRowParsed))
                        malformed = true;
                    for (std::size_t r = before; r < rows.size(); ++r) {
                        if (options.onRow) options.onRow(rows[r].first, rows[r].second);
                    }
                } else {
                    keepTail(w->stderrTail, buf, std::size_t(n));
                }
            } else {
                ::close(p.fd);
                (isRowFd ? w->rowEof : w->errEof) = true;
            }
        }
    }

    for (std::size_t wi = 0; wi < workers.size(); ++wi) {
        Worker& w = workers[wi];
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
        ShardFailure failure;
        failure.worker = int(wi);
        failure.waitStatus = status;
        failure.taskKnown = w.taskInFlight;
        if (failure.taskKnown) {
            failure.taskIndex = w.inFlight;
            failure.taskDescription =
                describe ? describe(w.inFlight) : "task " + std::to_string(w.inFlight);
        }
        failure.stderrTail = w.stderrTail;
        outcome.failures.push_back(std::move(failure));
    }
    if (!outcome.failures.empty()) {
        outcome.error = outcome.failures.front().message();
        return outcome;
    }
    if (malformed) {
        outcome.error = "malformed row frame on a worker pipe";
        return outcome;
    }
    if (rows.size() != pending.size()) {
        outcome.error = "sharded run lost rows: got " + std::to_string(rows.size()) +
                        " of " + std::to_string(pending.size());
        return outcome;
    }

    // Deterministic merge: task order, independent of worker interleaving.
    for (auto& [index, row] : rows) {
        if (index >= taskCount || outcome.produced[index]) {
            outcome.error = "duplicate or out-of-range row index";
            return outcome;
        }
        outcome.produced[index] = true;
        outcome.rows[index] = std::move(row);
    }
    outcome.ok = true;
    return outcome;
}

}  // namespace tcplp::scenario
