// Chaos-campaign machinery: installs an expanded FaultPlan onto a testbed
// and runs the fault-aware bulk workload with recovery metrics.
//
// Determinism contract (same as every other runner): the expanded schedule
// depends only on (plan, seed) — sim::expandFaultPlan draws from a dedicated
// derived stream, never from the simulation's own Rng — and the reconnect
// policy draws no randomness at all, so a chaos (spec, seed) replays the
// identical byte stream serial or sharded, and its canonical rows join the
// golden corpus.
#pragma once

#include "tcplp/harness/testbed.hpp"
#include "tcplp/scenario/metrics.hpp"
#include "tcplp/scenario/spec.hpp"
#include "tcplp/sim/fault.hpp"

namespace tcplp::scenario {

/// The expanded, installed fault schedule of one run — consulted by the
/// watchdog (an outage is not a stall) and the recovery metrics.
struct FaultTimeline {
    std::vector<sim::FaultEvent> events;

    bool any() const { return !events.empty(); }
    /// True while at least one injected outage window covers `t`.
    bool outageActive(sim::Time t) const;
    /// End of the latest outage window that has fully ended by `t`
    /// (0 when none has) — the watchdog's stall anchor.
    sim::Time lastOutageEndBefore(sim::Time t) const;
    /// End of the final outage window of the whole schedule.
    sim::Time lastOutageEnd() const;
    /// Union of the outage windows, in seconds (overlaps counted once).
    double outageSeconds() const;
};

/// Expands `plan` with the run seed and schedules every event onto the
/// testbed: node reboots call mesh::Node::reboot, blackout windows toggle
/// the channel's blackout counters at both edges (target==peer==0 = global,
/// target==peer = every link at that node, else the one link), and
/// corruption bursts map to global blackouts (see sim/fault.hpp). Call
/// before runUntil, at simulated time 0.
FaultTimeline installFaults(harness::Testbed& testbed, const sim::FaultPlan& plan,
                            std::uint64_t seed);

/// One fault-aware bulk run's structured result.
struct ChaosBulkResult {
    double goodputKbps = 0.0;   // over unique delivered bytes
    std::uint64_t bytes = 0;    // unique delivered (high-water mark)
    bool contentOk = true;
    bool complete = false;      // every requested byte delivered
    int reconnects = 0;         // completed re-establishments
    int reconnectAttempts = 0;
    std::uint64_t giveUps = 0;  // R2 + persist + keep-alive aborts
    std::uint64_t timeouts = 0;
    std::uint64_t faultEvents = 0;
    double outageSeconds = 0.0;
    std::uint64_t faultBytes = 0;       // fresh bytes landed inside outages
    double faultGoodputKbps = 0.0;      // faultBytes over the outage union
    /// Last outage end -> first fresh byte after it; -1 = never recovered
    /// (or no progress was pending), 0-ish = the flow never stalled.
    double timeToRecoverS = -1.0;
    std::uint64_t framesTransmitted = 0;
    /// Mesh routing-repair totals (all zero without topology.selfHealing).
    std::uint64_t reroutes = 0;
    std::uint64_t failbacks = 0;
    std::uint64_t blackholeDrops = 0;
    std::uint64_t noRouteDrops = 0;
    std::uint64_t forwardDrops = 0;
    std::uint64_t rngDigest = 0;
};

/// The chaos bulk runner: uplink mote -> cloud transfer with the spec's
/// FaultSpec installed (when enabled), app-level reconnect, and the progress
/// watchdog. A stalled flow throws std::runtime_error, which the sweep and
/// campaign machinery convert into an attributed failure.
ChaosBulkResult runChaosBulk(const ScenarioSpec& spec, std::uint64_t seed);

/// runChaosBulk flattened into the standardized chaos metric keys.
MetricRow chaosBulkRow(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace tcplp::scenario
