// The scenario engine: turns a ScenarioSpec + seed into a deterministic run.
//
// These functions absorb the recurring setup that bench/common.hpp,
// bench/sleepy_common.hpp and the per-figure drivers each hand-rolled: mote
// and server TCP profiles, the frames->MSS computation, testbed construction
// from a TopologySpec, and one runner per workload kind. Each runner
// replicates the exact construction and event-scheduling order of the
// pre-refactor bench path, so a given (spec, seed) replays the identical
// RNG stream — tests/test_scenario_sweep.cpp pins this with
// Rng::stateDigest against frozen inline copies of the old code.
#pragma once

#include <memory>

#include "tcplp/common/stats.hpp"
#include "tcplp/scenario/metrics.hpp"
#include "tcplp/scenario/spec.hpp"

namespace tcplp::scenario {

/// Mote-side TCP profile: small symmetric buffers of `segments` segments.
tcp::TcpConfig moteTcpConfig(std::uint16_t mss = 462, std::size_t segments = 4);
/// Cloud/server profile: 16 KiB buffers.
tcp::TcpConfig serverTcpConfig(std::uint16_t mss = 462);

/// MSS (payload bytes) that makes a mote->cloud TCP segment occupy exactly
/// `frames` 802.15.4 frames (§6.1's sweep axis).
std::uint16_t mssForFrames(std::size_t frames);

/// Resolves the spec's MSS knobs (mssFrames wins over mssBytes).
std::uint16_t resolveMss(const WorkloadSpec& w);

/// Builds the testbed a TopologySpec describes (kPipe has no testbed).
std::unique_ptr<harness::Testbed> buildTestbed(const TopologySpec& t,
                                               std::uint64_t seed);

/// The mote endpoint of a single-flow workload: the far end of the line,
/// one of the pair, or the farthest grid/star/office node from the border
/// router. Shared with the chaos runner (scenario/chaos.cpp).
mesh::Node& senderMote(harness::Testbed& tb, const TopologySpec& t);

// --- Shared scenario presets ---------------------------------------------
// The canonical multiflow workloads, used by the registered drivers
// (bench_office_multiflow, bench_grid200), the scheduler A/B bench
// (bench_timer_wheel) and the backend-equivalence tests — one definition,
// so a tuning change propagates to every consumer. Only the run duration
// varies per consumer.

/// Mixed uplink/downlink over the Fig. 3 office tree: sensors 12/14 stream
/// up while 13/15 receive bulk downlink (3-5 hops out), all saturating.
ScenarioSpec officeMultiflowSpec(sim::Time duration = 3 * sim::kMinute);

/// 200-node dense grid, six saturating mixed-direction flows spread across
/// the grid (the PR 2 spatial-index stress).
ScenarioSpec grid200DenseSpec(sim::Time duration = 90 * sim::kSecond);

/// City-scale grid: `nodes` mesh nodes (default 1,024) with 24 saturating
/// mixed-direction flows spread evenly across the grid — the megascale
/// single-core stress the slab-pooled datapath was built for. Emits the
/// datapath counter row keys (datapathCounters=true).
ScenarioSpec cityScaleSpec(sim::Time duration = 30 * sim::kSecond,
                           std::size_t nodes = 1024);

// --- Structured per-workload results (custom measures/presenters use the
// --- raw forms; runScenario flattens them into a MetricRow) --------------

/// Mesh-layer routing/repair counters summed over every mesh node of a
/// testbed. Self-healing scenario rows surface these; counters stay zero
/// under the legacy static-route regime.
struct MeshRouteTotals {
    std::uint64_t noRouteDrops = 0;
    std::uint64_t forwardDrops = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t failbacks = 0;
    std::uint64_t blackholeDrops = 0;
};
MeshRouteTotals meshRouteTotals(const harness::Testbed& tb);

/// Congestion-window dynamics of one sender over a run: summary stats from
/// the cwnd tracer hook plus the strategy's loss-response counters.
/// Collected (and surfaced as row keys) only when TopologySpec::ccMetrics,
/// so legacy rows and their golden artifacts are unchanged.
struct CcDynamics {
    std::uint32_t cwndMin = 0;
    std::uint32_t cwndMax = 0;
    double cwndMean = 0.0;
    std::uint32_t ssthreshFinal = 0;
    std::uint64_t lossCuts = 0;      // multiplicative decreases taken
    std::uint64_t cutsSkipped = 0;   // noise-classified losses (CERL)
};

struct BulkRunResult {
    double goodputKbps = 0.0;
    double rttMedianMs = 0.0;
    double segmentLoss = 0.0;  // TCP-level loss (not masked by link retries)
    std::uint64_t framesTransmitted = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fastRetransmissions = 0;
    std::size_t bytes = 0;
    bool contentOk = false;
    MeshRouteTotals mesh{};
    CcDynamics cc{};
    std::uint64_t rngDigest = 0;
};

struct SleepyRunResult {
    double goodputKbps = 0.0;
    std::size_t bytes = 0;
    Summary rttMs;             // sender-side RTT samples
    double idleRadioDc = 0.0;  // duty cycle over the quiet tail
    std::uint64_t rngDigest = 0;
};

struct TwoFlowResult {
    double goodputA = 0.0, goodputB = 0.0;
    double rttA = 0.0, rttB = 0.0;
    double lossA = 0.0, lossB = 0.0;  // rexmit %
    CcDynamics ccA{}, ccB{};
    std::uint64_t rngDigest = 0;
};

/// Datapath perf counters collected over one run (deltas for the
/// process-wide counters, so sequential runs in one process don't bleed
/// into each other). Surfaced as row keys when datapathCounters is set.
struct DatapathCounters {
    std::uint64_t poolRecycled = 0;        // storage blocks served from free lists
    std::uint64_t poolFresh = 0;           // storage blocks that hit the heap
    std::uint64_t poolBytesRecycled = 0;
    std::uint64_t poolBytesFresh = 0;
    std::uint64_t smallFnHeapFallbacks = 0;  // event closures too big to inline
    std::uint64_t prependFallbacks = 0;      // PacketBuffer::prepend slow paths
    std::uint64_t neighborRebuilds = 0;      // candidate-cache full rebuilds
    std::uint64_t neighborRevalidations = 0; // epoch-diff hits (no rebuild)
};

struct MultiFlowResult {
    struct Flow {
        phy::NodeId node = 0;
        bool uplink = true;
        double goodputKbps = 0.0;
        double rttMedianMs = 0.0;
    };
    std::vector<Flow> flows;
    double aggregateKbps = 0.0;
    double jainFairness = 0.0;
    std::uint64_t framesTransmitted = 0;
    std::uint64_t listenerVisits = 0;
    DatapathCounters datapath{};
    std::uint64_t rngDigest = 0;
};

struct PipeRunResult {
    double goodputKbps = 0.0;
    double rttSeconds = 0.0;
    double lossMeasured = 0.0;
    std::uint64_t rngDigest = 0;
};

BulkRunResult runBulk(const ScenarioSpec& spec, std::uint64_t seed);
SleepyRunResult runSleepyBulk(const ScenarioSpec& spec, std::uint64_t seed);
TwoFlowResult runTwoFlow(const ScenarioSpec& spec, std::uint64_t seed);
MultiFlowResult runMultiFlow(const ScenarioSpec& spec, std::uint64_t seed);
BulkRunResult runEmbeddedBulk(const ScenarioSpec& spec, std::uint64_t seed);
PipeRunResult runPipeBulk(const ScenarioSpec& spec, std::uint64_t seed);
harness::AnemometerResult runAnemometerSpec(const ScenarioSpec& spec,
                                            std::uint64_t seed);

/// Runs the spec's workload and flattens the result into standardized
/// metric keys (goodput_kbps, reliability, ..., rng_digest).
MetricRow runScenario(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace tcplp::scenario
