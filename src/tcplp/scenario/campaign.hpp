// Cross-scenario campaign orchestrator + golden-run regression corpus.
//
// runSweep (PR 3) parallelizes *within* one scenario; a Campaign flattens
// EVERY selected scenario's axis grid x seeds into one global run-point
// list and shards that across a single pool of forked workers — a worker
// executes points from different scenarios back-to-back, so a registry full
// of small grids keeps all cores busy instead of draining one scenario at a
// time. The merge is deterministic (registry order across scenarios, grid
// order within), so campaign output is byte-identical for any --jobs N.
//
// Canonical output: campaign artifacts render rows through
// toCanonicalJsonLine — the timing fields (wall_ms, backend, *_per_sec,
// ...; see metrics.hpp) are stripped, leaving exactly the fields that are
// deterministic functions of (spec, seed). This is what makes the output a
// cross-refactor determinism oracle:
//
//  * --golden DIR writes one canonical JSON-lines artifact per scenario
//    (every MetricRow, including each point's rng_digest).
//  * --check re-runs the campaign and diffs against the corpus; any
//    non-timing drift — a changed goodput, a shifted RNG stream, a
//    reordered merge — fails loudly with the first diverging line.
//  * The checked-in golden/ corpus pins a curated fast subset
//    (goldenSubset()), which CI re-checks on every push.
//
// Resumability: with an output directory configured, every completed point
// is appended to MANIFEST (the exact row-frame encoding) as it lands.
// Resuming skips completed points and merges their recorded rows — the
// final output is byte-identical to an uninterrupted run.
#pragma once

#include "tcplp/scenario/sweep.hpp"

namespace tcplp::scenario {

struct CampaignOptions {
    int jobs = 1;
    /// Directory for artifacts + the resume manifest ("" = keep in memory).
    std::string outDir{};
    bool resume = false;
    /// Non-empty: replaces every scenario's seed list.
    std::vector<std::uint64_t> seedOverride{};
    /// Per-scenario progress lines on stderr.
    bool progress = false;
};

struct CampaignScenario {
    ScenarioDef def;                 // the def the campaign ran (incl. trims)
    std::vector<RunRecord> records;  // grid order
    /// One canonical JSON object per record, timing fields stripped,
    /// trailing newline each — the artifact/golden rendering.
    std::string canonicalLines() const;
};

struct CampaignResult {
    bool ok = false;
    std::string error;
    std::vector<ShardFailure> failures;   // dead workers, attributed to points
    std::vector<CampaignScenario> scenarios;  // selection order
    std::size_t pointsRun = 0;
    std::size_t pointsResumed = 0;  // skipped via the manifest

    /// All scenarios' canonicalLines() concatenated in selection order —
    /// the campaign's stdout rendering.
    std::string canonicalLines() const;
};

/// Runs every def's full grid through one shared worker pool. Defs are
/// copied in (the golden subset trims registered defs); selection order is
/// preserved in the result.
CampaignResult runCampaign(const std::vector<ScenarioDef>& defs,
                           const CampaignOptions& options = {});

/// Registered defs whose name contains `filter` (all, when empty), in
/// registry order.
std::vector<ScenarioDef> registryDefs(const std::string& filter = {});

/// The curated golden-corpus subset: sweep_smoke, sec72_hops,
/// office_multiflow, grid200_dense, fig10_table8_day trimmed from 24 to
/// 1 simulated hour, city_scale trimmed to a 120-node grid on the current
/// engine, the self-healing scenarios, and the three chaos scenarios
/// (line_blackout, office_reboot_storm, border_router_restart) — fast
/// enough for CI, wide
/// enough to cover the bulk line path, the office tree, the dense grid, the
/// sweep machinery, the anemometer application study, and the
/// fault-injection layer. Regenerate golden/ with this exact subset
/// (see docs/SCENARIOS.md). Curated names missing from the registry are
/// skipped here (a test binary links no drivers); the campaign CLI compares
/// against goldenSubsetNames() and fails loudly, so a dropped driver cannot
/// silently shrink the corpus check.
std::vector<ScenarioDef> goldenSubset();

/// Every curated scenario name, whether or not it is linked/registered.
std::vector<std::string> goldenSubsetNames();

// --- Golden corpus ----------------------------------------------------------

/// DIR/<scenario>.jsonl
std::string goldenArtifactPath(const std::string& dir, const std::string& scenario);

/// Writes one canonical artifact per scenario into `dir` (created if
/// needed). Returns false with `error` set on I/O failure.
bool writeGoldenCorpus(const CampaignResult& result, const std::string& dir,
                       std::string& error);

struct GoldenDiff {
    std::string scenario;
    std::string detail;  // first diverging line (expected vs got), or a
                         // missing/short-artifact explanation
};

/// Diffs the result against the corpus in `dir`; empty = clean.
std::vector<GoldenDiff> checkGoldenCorpus(const CampaignResult& result,
                                          const std::string& dir);

}  // namespace tcplp::scenario
