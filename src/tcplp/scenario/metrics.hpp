// Standardized metric rows for the scenario engine.
//
// Every run point of every scenario produces one MetricRow — an ordered list
// of (key, value) pairs — and every consumer reads the same rendering: the
// per-figure presenters, the BENCH_*.json perf trackers, and the CI sweep
// smoke all see exactly one JSON object per line, keys in insertion order.
// The 23 bench binaries used to hand-roll this formatting ad hoc; this is
// the one shared implementation.
//
// Determinism contract: doubles are rendered shortest-round-trip
// (std::to_chars), so a row that crosses the sweep worker pipe as text
// reparses to the bit-identical value and re-renders to the same bytes.
// This is what makes `--jobs N` output byte-identical to `--jobs 1`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tcplp::scenario {

class MetricValue {
public:
    enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };

    MetricValue() = default;
    MetricValue(std::int64_t v) : kind_(Kind::kInt), i_(v) {}           // NOLINT
    MetricValue(int v) : kind_(Kind::kInt), i_(v) {}                    // NOLINT
    MetricValue(std::uint64_t v) : kind_(Kind::kUint), u_(v) {}         // NOLINT
    MetricValue(double v) : kind_(Kind::kDouble), d_(v) {}              // NOLINT
    MetricValue(bool v) : kind_(Kind::kBool), b_(v) {}                  // NOLINT
    MetricValue(std::string v) : kind_(Kind::kString), s_(std::move(v)) {}  // NOLINT
    MetricValue(const char* v) : kind_(Kind::kString), s_(v) {}         // NOLINT

    Kind kind() const { return kind_; }
    std::int64_t asInt() const { return i_; }
    std::uint64_t asUint() const { return u_; }
    double asDouble() const { return d_; }
    bool asBool() const { return b_; }
    const std::string& asString() const { return s_; }

    /// Numeric coercion for presenters (string -> 0).
    double number() const;

    bool operator==(const MetricValue& o) const;

private:
    // Plain members (not a union): rows are small and short-lived, and the
    // worker-pipe decode path copies values type-agnostically.
    Kind kind_ = Kind::kInt;
    std::int64_t i_ = 0;
    std::uint64_t u_ = 0;
    double d_ = 0.0;
    bool b_ = false;
    std::string s_;
};

/// One run point's metrics, in insertion order.
class MetricRow {
public:
    /// Sets `key`; an existing key is overwritten in place (order kept).
    MetricRow& set(const std::string& key, MetricValue value);

    const MetricValue* find(const std::string& key) const;
    /// Numeric value of `key`, or `fallback` when absent.
    double number(const std::string& key, double fallback = 0.0) const;
    const std::string& str(const std::string& key) const;

    const std::vector<std::pair<std::string, MetricValue>>& fields() const {
        return fields_;
    }
    bool operator==(const MetricRow& o) const { return fields_ == o.fields_; }

private:
    std::vector<std::pair<std::string, MetricValue>> fields_;
};

/// Shortest-round-trip double rendering (std::to_chars); non-finite values
/// render as "null" to keep the JSON valid.
std::string formatDouble(double v);

/// One JSON object, no trailing newline, keys in row order.
std::string toJsonLine(const MetricRow& row);

/// Writes `rows` as JSON lines to `path` (one object per line).
bool writeJsonLines(const std::string& path, const std::vector<MetricRow>& rows);

}  // namespace tcplp::scenario
