// Standardized metric rows for the scenario engine.
//
// Every run point of every scenario produces one MetricRow — an ordered list
// of (key, value) pairs — and every consumer reads the same rendering: the
// per-figure presenters, the BENCH_*.json perf trackers, and the CI sweep
// smoke all see exactly one JSON object per line, keys in insertion order.
// The 23 bench binaries used to hand-roll this formatting ad hoc; this is
// the one shared implementation.
//
// Determinism contract: doubles are rendered shortest-round-trip
// (std::to_chars), so a row that crosses the sweep worker pipe as text
// reparses to the bit-identical value and re-renders to the same bytes.
// This is what makes `--jobs N` output byte-identical to `--jobs 1`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tcplp::scenario {

class MetricValue {
public:
    enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };

    MetricValue() = default;
    MetricValue(std::int64_t v) : kind_(Kind::kInt), i_(v) {}           // NOLINT
    MetricValue(int v) : kind_(Kind::kInt), i_(v) {}                    // NOLINT
    MetricValue(std::uint64_t v) : kind_(Kind::kUint), u_(v) {}         // NOLINT
    MetricValue(double v) : kind_(Kind::kDouble), d_(v) {}              // NOLINT
    MetricValue(bool v) : kind_(Kind::kBool), b_(v) {}                  // NOLINT
    MetricValue(std::string v) : kind_(Kind::kString), s_(std::move(v)) {}  // NOLINT
    MetricValue(const char* v) : kind_(Kind::kString), s_(v) {}         // NOLINT

    Kind kind() const { return kind_; }
    std::int64_t asInt() const { return i_; }
    std::uint64_t asUint() const { return u_; }
    double asDouble() const { return d_; }
    bool asBool() const { return b_; }
    const std::string& asString() const { return s_; }

    /// Numeric coercion for presenters (string -> 0).
    double number() const;

    bool operator==(const MetricValue& o) const;

private:
    // Plain members (not a union): rows are small and short-lived, and the
    // worker-pipe decode path copies values type-agnostically.
    Kind kind_ = Kind::kInt;
    std::int64_t i_ = 0;
    std::uint64_t u_ = 0;
    double d_ = 0.0;
    bool b_ = false;
    std::string s_;
};

/// One run point's metrics, in insertion order.
class MetricRow {
public:
    /// Sets `key`; an existing key is overwritten in place (order kept).
    MetricRow& set(const std::string& key, MetricValue value);

    const MetricValue* find(const std::string& key) const;
    /// Numeric value of `key`, or `fallback` when absent.
    double number(const std::string& key, double fallback = 0.0) const;
    const std::string& str(const std::string& key) const;

    const std::vector<std::pair<std::string, MetricValue>>& fields() const {
        return fields_;
    }
    bool operator==(const MetricRow& o) const { return fields_ == o.fields_; }

private:
    std::vector<std::pair<std::string, MetricValue>> fields_;
};

/// Shortest-round-trip double rendering (std::to_chars); non-finite values
/// render as "null" to keep the JSON valid.
std::string formatDouble(double v);

/// One JSON object, no trailing newline, keys in row order.
std::string toJsonLine(const MetricRow& row);

/// Writes `rows` as JSON lines to `path` (one object per line).
bool writeJsonLines(const std::string& path, const std::vector<MetricRow>& rows);

// --- Timing-field canonicalization ----------------------------------------
//
// A handful of metric keys record *wall-clock* observations (worker-process
// timings, throughput rates) or pure perf-knob labels. They are the only
// fields of a row that legitimately differ between two runs of the same
// (spec, seed), so every determinism consumer — campaign output, the golden
// regression corpus, the jobs-N-vs-serial identity checks — strips them
// before comparing or persisting. The list is a fixed convention (documented
// in docs/SCENARIOS.md):
//
//   exact:  wall_ms, backend, cores, speedup, auto_speedup,
//           wheel_vs_heap_speedup
//   suffix: *_per_sec, *_ns_per_event, *_wall_ms
//
// Simulated-time metrics (rtt_median_ms, ...) are NOT timing fields: they
// are deterministic outputs of the simulation and must be pinned.

/// True if `key` names a wall-clock/timing field per the list above.
bool isTimingField(const std::string& key);

/// Copy of `row` with every timing field removed (insertion order kept).
MetricRow stripTimingFields(const MetricRow& row);

/// toJsonLine(stripTimingFields(row)) — the canonical rendering used by the
/// campaign artifacts and the golden corpus.
std::string toCanonicalJsonLine(const MetricRow& row);

// --- Row frame codec --------------------------------------------------------
//
// The exact line-based text encoding a MetricRow uses to cross a sweep
// worker's pipe, and (unchanged) the campaign manifest's completed-point
// record:
//
//   ROW <index> <nfields>\n
//   <kind> <key> <value>\n        (kind in {i,u,d,b,s}; value to end of line)
//
// Doubles are encoded shortest-round-trip and non-finite values survive
// exactly (JSON folds them to null), so a decoded row compares equal to the
// in-process original, bit for bit.

/// Encodes one row as a complete frame (trailing newline included).
std::string encodeRowFrame(std::size_t index, const MetricRow& row);

/// Parses complete frames out of `buffer` (consuming them) into `rows`;
/// leaves any trailing incomplete frame in place. Lines of the form
/// "BEGIN <index>" are reported through `onBegin` (when non-null) and
/// consumed — the worker protocol writes one before each run point so the
/// parent can name the in-flight point of a crashed worker. `onRowParsed`
/// fires as each complete ROW frame lands, IN STREAM ORDER relative to
/// onBegin (one drain call may contain several BEGIN/ROW pairs plus a
/// trailing unanswered BEGIN). Returns false on a malformed frame.
bool drainRowFrames(std::string& buffer,
                    std::vector<std::pair<std::size_t, MetricRow>>& rows,
                    const std::function<void(std::size_t)>& onBegin = nullptr,
                    const std::function<void(std::size_t)>& onRowParsed = nullptr);

}  // namespace tcplp::scenario
