#include "tcplp/scenario/campaign.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tcplp/common/assert.hpp"
#include "tcplp/scenario/shard.hpp"
#include "tcplp/scenario/workloads.hpp"

namespace tcplp::scenario {

namespace {

/// One expanded cross-scenario run point: which def, which grid point, and
/// its position in the campaign's flat task list.
struct FlatPoint {
    std::size_t defIndex = 0;
    Point point;
};

struct FlatPlan {
    std::vector<FlatPoint> points;            // global task order
    std::vector<std::size_t> defOffsets;      // first global index per def
    std::vector<std::size_t> defPointCounts;  // points per def
};

FlatPlan expandPlan(const std::vector<ScenarioDef>& defs,
                    const std::vector<std::uint64_t>& seedOverride) {
    FlatPlan plan;
    for (std::size_t d = 0; d < defs.size(); ++d) {
        const std::vector<std::uint64_t>& seeds =
            seedOverride.empty() ? defs[d].seeds : seedOverride;
        std::vector<Point> points = expandPoints(defs[d], seeds);
        plan.defOffsets.push_back(plan.points.size());
        plan.defPointCounts.push_back(points.size());
        for (Point& p : points) plan.points.push_back({d, std::move(p)});
    }
    return plan;
}

constexpr const char* kManifestName = "MANIFEST";

std::string manifestHeader(const std::vector<ScenarioDef>& defs, const FlatPlan& plan) {
    std::string out = "CAMPAIGN v1 " + std::to_string(plan.points.size()) + "\n";
    for (std::size_t d = 0; d < defs.size(); ++d)
        out += "SCEN " + defs[d].name + ' ' + std::to_string(plan.defPointCounts[d]) + "\n";
    out += "PLAN-END\n";
    return out;
}

/// Completed rows recorded by an interrupted run whose plan header matches
/// the current one; an unreadable or mismatching manifest yields an empty
/// result (the campaign then starts fresh). The file tail may hold a
/// partial or malformed frame (the recording process died mid-write) —
/// every complete frame before it is salvaged; the campaign rewrites the
/// manifest from the salvage on resume, so corruption never compounds.
std::vector<std::pair<std::size_t, MetricRow>> loadManifestRows(
    const std::string& path, const std::string& expectedHeader) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    std::stringstream ss;
    ss << in.rdbuf();
    std::string content = ss.str();
    if (content.rfind(expectedHeader, 0) != 0) return {};
    content.erase(0, expectedHeader.size());
    std::vector<std::pair<std::size_t, MetricRow>> rows;
    drainRowFrames(content, rows);  // malformed tail: keep the salvage
    return rows;
}

}  // namespace

std::string CampaignScenario::canonicalLines() const {
    std::string out;
    for (const RunRecord& r : records) {
        out += toCanonicalJsonLine(r.row);
        out += '\n';
    }
    return out;
}

std::string CampaignResult::canonicalLines() const {
    std::string out;
    for (const CampaignScenario& s : scenarios) out += s.canonicalLines();
    return out;
}

CampaignResult runCampaign(const std::vector<ScenarioDef>& defs,
                           const CampaignOptions& options) {
    CampaignResult result;
    const FlatPlan plan = expandPlan(defs, options.seedOverride);

    // --- Resume manifest -------------------------------------------------
    ShardOptions shardOptions;
    shardOptions.jobs = options.jobs;
    FILE* manifest = nullptr;
    std::vector<std::pair<std::size_t, MetricRow>> resumedRows;
    if (!options.outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.outDir, ec);
        if (ec) {
            result.error = "cannot create output directory '" + options.outDir +
                           "': " + ec.message();
            return result;
        }
        const std::string path = options.outDir + "/" + kManifestName;
        const std::string header = manifestHeader(defs, plan);
        if (options.resume) {
            resumedRows = loadManifestRows(path, header);
            shardOptions.skip.assign(plan.points.size(), false);
            for (const auto& [index, row] : resumedRows) {
                if (index < plan.points.size()) shardOptions.skip[index] = true;
            }
        }
        // Always rewrite header + salvaged rows from scratch: this
        // normalizes a manifest whose tail holds a partial frame (the
        // recorder died mid-write), so a later resume never trips over it.
        manifest = std::fopen(path.c_str(), "wb");
        if (manifest == nullptr) {
            result.error = "cannot open campaign manifest '" + path + "'";
            return result;
        }
        std::fwrite(header.data(), 1, header.size(), manifest);
        for (const auto& [index, row] : resumedRows) {
            const std::string frame = encodeRowFrame(index, row);
            std::fwrite(frame.data(), 1, frame.size(), manifest);
        }
        std::fflush(manifest);
    }

    // --- Per-scenario progress -------------------------------------------
    std::vector<std::size_t> done(defs.size(), 0);
    for (const auto& [index, row] : resumedRows) {
        if (index < plan.points.size()) ++done[plan.points[index].defIndex];
    }
    result.pointsResumed = resumedRows.size();

    shardOptions.onRow = [&](std::size_t index, const MetricRow& row) {
        if (manifest != nullptr) {
            const std::string frame = encodeRowFrame(index, row);
            std::fwrite(frame.data(), 1, frame.size(), manifest);
            std::fflush(manifest);  // crash-durable: resume picks it up
        }
        const std::size_t d = plan.points[index].defIndex;
        ++done[d];
        ++result.pointsRun;
        if (options.progress && done[d] == plan.defPointCounts[d]) {
            std::fprintf(stderr, "[campaign] %-24s done (%zu points)\n",
                         defs[d].name.c_str(), plan.defPointCounts[d]);
        }
    };

    ShardOutcome outcome = runShardedTasks(
        plan.points.size(),
        [&](std::size_t i) {
            return runPointRow(defs[plan.points[i].defIndex], plan.points[i].point);
        },
        [&](std::size_t i) {
            const FlatPoint& fp = plan.points[i];
            return describePoint(defs[fp.defIndex], fp.point,
                                 plan.defPointCounts[fp.defIndex]);
        },
        shardOptions);
    if (manifest != nullptr) std::fclose(manifest);
    result.failures = std::move(outcome.failures);
    if (!outcome.ok) {
        result.error = outcome.error;
        if (options.progress)
            std::fprintf(stderr, "[campaign] FAILED: %s\n", result.error.c_str());
        return result;
    }

    // Merge resumed rows into the gaps the shard pool skipped.
    for (auto& [index, row] : resumedRows) {
        if (index < plan.points.size() && !outcome.produced[index])
            outcome.rows[index] = std::move(row);
    }

    // --- Registry-order scenario assembly --------------------------------
    for (std::size_t d = 0; d < defs.size(); ++d) {
        CampaignScenario scenario;
        scenario.def = defs[d];
        scenario.records.reserve(plan.defPointCounts[d]);
        for (std::size_t k = 0; k < plan.defPointCounts[d]; ++k) {
            const std::size_t global = plan.defOffsets[d] + k;
            scenario.records.push_back(
                RunRecord{plan.points[global].point, std::move(outcome.rows[global])});
        }
        result.scenarios.push_back(std::move(scenario));
    }

    // Per-scenario artifacts next to the manifest (same rendering as the
    // golden corpus, on purpose: an --out tree can serve as a corpus).
    if (!options.outDir.empty() &&
        !writeGoldenCorpus(result, options.outDir, result.error)) {
        return result;
    }

    result.ok = true;
    return result;
}

std::vector<ScenarioDef> registryDefs(const std::string& filter) {
    std::vector<ScenarioDef> defs;
    for (const ScenarioDef& def : Registry::instance().all()) {
        if (filter.empty() || def.name.find(filter) != std::string::npos)
            defs.push_back(def);
    }
    return defs;
}

namespace {

struct GoldenEntry {
    const char* name;
    void (*trim)(ScenarioDef&);
};

constexpr GoldenEntry kGoldenEntries[] = {
    {"sweep_smoke", nullptr},
    {"sec72_hops", nullptr},
    {"office_multiflow", nullptr},
    {"grid200_dense", nullptr},
    {"fig10_table8_day",
     +[](ScenarioDef& d) {
         // The full figure simulates 24 hours (~50 s wall); one diurnal
         // hour exercises the identical code paths and keeps the CI
         // check fast. The corpus pins this trimmed variant.
         d.base.workload.anemometer.duration = 1 * sim::kHour;
     }},
    // Chaos scenarios: pinning these proves fault expansion, reboot/blackout
    // scheduling, reconnect backoff and the recovery metrics are all
    // deterministic functions of (spec, seed).
    {"line_blackout", nullptr},
    {"office_reboot_storm", nullptr},
    {"border_router_restart", nullptr},
    // Self-healing routing scenarios: pin liveness detection, alternate
    // failover/failback and permanent-failure injection end to end.
    {"relay_failover", nullptr},
    {"partition_heal", nullptr},
    // Congestion-control shootout scenarios: pin the pluggable-CC strategy
    // rows (per-cc goodput, loss_cuts / cuts_skipped, cwnd dynamics) so a
    // behavior change in any strategy — or in the ccMetrics schema — is a
    // deliberate golden update.
    {"fairness_cc_shootout", nullptr},
    {"lossy_line_cc_shootout", nullptr},
    {"city_scale",
     +[](ScenarioDef& d) {
         // The full scenario is a 1,024-node grid plus a legacy-engine
         // comparison sweep; the corpus pins a 120-node, 15-second run of
         // the current engine only — same code paths (slab pool, batched
         // delivery, datapath counter rows), CI-sized wall cost.
         d.base = cityScaleSpec(15 * sim::kSecond, 120);
         d.axes = {{"config", {0}}};
     }},
    // High-BDP frontier scenarios: pin RFC 7323 negotiation, shift-aware
    // window codec, receive-buffer autotuning, the ESP32-class link preset
    // and MAC frame aggregation end to end — a byte change in any of them
    // is a deliberate golden update.
    {"bdp_pipe",
     +[](ScenarioDef& d) {
         // The full ceiling curve runs 15 s per point; the corpus pins a
         // 5-second slice of the same grid — identical code paths
         // (negotiation, autotune growth, scaled adverts), CI-sized cost.
         d.base.workload.timeLimit = 5 * sim::kSecond;
     }},
    {"bdp_line",
     +[](ScenarioDef& d) { d.base.workload.timeLimit = 8 * sim::kSecond; }},
};

}  // namespace

std::vector<ScenarioDef> goldenSubset() {
    std::vector<ScenarioDef> defs;
    for (const GoldenEntry& entry : kGoldenEntries) {
        const ScenarioDef* def = Registry::instance().find(entry.name);
        if (def == nullptr) continue;  // binary without that driver linked
        defs.push_back(*def);
        if (entry.trim != nullptr) entry.trim(defs.back());
    }
    return defs;
}

std::vector<std::string> goldenSubsetNames() {
    std::vector<std::string> names;
    for (const GoldenEntry& entry : kGoldenEntries) names.emplace_back(entry.name);
    return names;
}

// --- Golden corpus ----------------------------------------------------------

std::string goldenArtifactPath(const std::string& dir, const std::string& scenario) {
    return dir + "/" + scenario + ".jsonl";
}

bool writeGoldenCorpus(const CampaignResult& result, const std::string& dir,
                       std::string& error) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        error = "cannot create golden directory '" + dir + "': " + ec.message();
        return false;
    }
    for (const CampaignScenario& s : result.scenarios) {
        const std::string path = goldenArtifactPath(dir, s.def.name);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot write golden artifact '" + path + "'";
            return false;
        }
        out << s.canonicalLines();
    }
    return true;
}

std::vector<GoldenDiff> checkGoldenCorpus(const CampaignResult& result,
                                          const std::string& dir) {
    std::vector<GoldenDiff> diffs;
    const auto splitLines = [](const std::string& text) {
        std::vector<std::string> lines;
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t end = text.find('\n', pos);
            if (end == std::string::npos) end = text.size();
            lines.push_back(text.substr(pos, end - pos));
            pos = end + 1;
        }
        return lines;
    };
    for (const CampaignScenario& s : result.scenarios) {
        const std::string path = goldenArtifactPath(dir, s.def.name);
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            diffs.push_back({s.def.name, "missing golden artifact " + path});
            continue;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        const std::vector<std::string> expected = splitLines(ss.str());
        const std::vector<std::string> actual = splitLines(s.canonicalLines());
        if (expected.size() != actual.size()) {
            diffs.push_back({s.def.name,
                             "point count changed: golden has " +
                                 std::to_string(expected.size()) + " rows, run produced " +
                                 std::to_string(actual.size())});
            continue;
        }
        for (std::size_t i = 0; i < expected.size(); ++i) {
            if (expected[i] == actual[i]) continue;
            diffs.push_back({s.def.name, "row " + std::to_string(i) +
                                             " diverged\n  golden: " + expected[i] +
                                             "\n  run:    " + actual[i]});
            break;  // first diverging row per scenario is enough
        }
    }
    return diffs;
}

}  // namespace tcplp::scenario
