// Named scenario registry.
//
// Every paper figure/table is registered here as a ScenarioDef: a base
// ScenarioSpec, the axis grid the figure sweeps, the seed list, a `bind`
// hook mapping one grid point onto the spec, and an optional presenter that
// renders the paper-style table from the collected rows. The bench drivers
// are thin translation units that construct one static Registration each;
// bench_main links any subset of them against the shared CLI
// (--list/--filter/--jobs/--json).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tcplp/scenario/metrics.hpp"
#include "tcplp/scenario/spec.hpp"

namespace tcplp::scenario {

/// One knob the scenario sweeps; values are doubles (integral knobs store
/// exactly up to 2^53).
struct Axis {
    std::string name;
    std::vector<double> values;
};

/// One expanded run point: the axis values (parallel to ScenarioDef::axes),
/// the seed, and the point's position in the expanded grid.
struct Point {
    std::size_t index = 0;
    std::uint64_t seed = 1;
    std::vector<std::pair<std::string, double>> values;

    double value(const std::string& axis) const {
        for (const auto& [name, v] : values)
            if (name == axis) return v;
        return 0.0;
    }
};

struct RunRecord {
    Point point;
    MetricRow row;
};

struct SweepResult;

struct ScenarioDef {
    std::string name;   // registry key, e.g. "fig4_mss"
    std::string title;  // human header, e.g. "Figure 4: goodput vs MSS"
    ScenarioSpec base{};
    std::vector<Axis> axes{};
    std::vector<std::uint64_t> seeds{1};
    /// When true, the seed list is interpreted as stream ids and each
    /// point's effective seed is Rng::deriveStream(baseSeed, point.index) —
    /// used by scenarios that want independent streams per grid point.
    bool deriveSeeds = false;
    std::uint64_t baseSeed = 1;

    /// Applies one grid point's axis values onto a copy of `base`.
    std::function<void(ScenarioSpec&, const Point&)> bind;
    /// Custom runner; defaults to runScenario(spec, point.seed).
    std::function<MetricRow(const ScenarioSpec&, const Point&)> measure;
    /// Renders the human-readable paper table from the merged records.
    std::function<void(const SweepResult&)> present;
};

class Registry {
public:
    static Registry& instance();

    void add(ScenarioDef def);
    const ScenarioDef* find(const std::string& name) const;
    const std::vector<ScenarioDef>& all() const { return defs_; }

private:
    std::vector<ScenarioDef> defs_;
};

/// Static registrar: `static Registration r{def};` in a driver TU.
struct Registration {
    explicit Registration(ScenarioDef def);
};

}  // namespace tcplp::scenario
