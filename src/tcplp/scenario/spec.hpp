// Declarative scenario descriptions.
//
// A ScenarioSpec names everything the 23 bench drivers used to hand-roll:
// the topology (line / pair / office / grid / star / pipe, with link loss,
// spacing and queue knobs), the workload (bulk transfer, duty-cycled sleepy
// transfer, two-flow fairness, embedded-stack baseline, in-memory pipe,
// anemometer fleet, multi-flow mix), and the TCP-level knobs the paper
// sweeps (segment size, window, feature ablations). The engine in
// workloads.cpp turns a spec + seed into a deterministic run; the sweep
// runner (sweep.hpp) expands axis grids over specs and shards the points
// across worker processes.
//
// Adding a paper figure used to mean a ~150-line driver; with a spec it is
// a ~15-line registration (see bench/bench_*.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tcplp/harness/anemometer.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/sim/fault.hpp"
#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/embedded_tcp.hpp"

namespace tcplp::scenario {

enum class TopologyKind : std::uint8_t {
    kPair,        // two motes one hop apart (§6.3)
    kLine,        // mote — relays — border router — cloud (§6/§7)
    kOffice,      // 15-node Fig. 3 tree (§9)
    kGrid,        // n-node dense grid, border router in the corner
    kStar,        // border router + n leaves one hop out
    kSleepyLeaf,  // one duty-cycled leaf on the border router (Appendix C)
    kPipe,        // in-memory lossy pipe, no radio (§8 model validation)
};

/// Radio-link class for radio topologies. k802154 is the paper's stock
/// 250 kb/s AT86RF233 profile; kEsp32 models an ESP32-class high-rate SoC
/// link (tens of Mb/s air rate, microsecond CSMA slots, fast frame bus,
/// 1.5 KiB frames) — the regime where the static 16-bit window binds and
/// RFC 7323 scaling starts to matter. Bound from the `link` sweep axis
/// (see linkPresetFromAxis).
enum class LinkPreset : std::uint8_t {
    k802154,
    kEsp32,
};

struct TopologySpec {
    TopologyKind kind = TopologyKind::kLine;
    /// Simulator ready-queue backend (binary heap or hierarchical timer
    /// wheel). Both fire events in the identical (when, seq) order, so this
    /// is a pure perf axis — sweeps grid over it via the `scheduler` axis
    /// (0 = heap, 1 = wheel; see schedulerFromAxis).
    sim::SchedulerKind scheduler = sim::SchedulerKind::kBinaryHeap;
    std::size_t hops = 1;    // kLine
    std::size_t nodes = 16;  // kGrid / kStar: mesh nodes incl. border router
    double spacingMeters = 10.0;
    double rangeMeters = 12.0;
    double linkLoss = 0.0;
    std::optional<sim::Time> wiredOneWayDelay;  // default: TestbedConfig's

    // Node knobs (applied to every mesh node; nullopt = NodeConfig default).
    std::optional<sim::Time> retryDelayMax;
    std::optional<std::size_t> queueCapacityPackets;
    std::optional<bool> softwareCsma;
    std::optional<int> maxFrameRetries;
    std::optional<std::size_t> macPayloadBudget;  // §6.3 stack profiles
    std::optional<sim::Time> txProcessingDelay;
    bool perHopReassembly = false;  // Appendix A RED/ECN regime
    bool redQueue = false;
    bool ecnMarking = false;
    /// Self-healing mesh routing: link-liveness tracking on every router
    /// plus ranked loop-free alternate next hops (tree topologies). Off by
    /// default so legacy scenarios keep their static-route byte streams;
    /// rows of self-healing scenarios additionally carry the routing-repair
    /// metric keys (reroutes / failbacks / blackhole and route drops).
    bool selfHealing = false;
    /// Dead-neighbor probe cadence override (selfHealing only; nullopt =
    /// mesh::NeighborConfig's default, 0 = probing off — then only organic
    /// traffic revives a dead neighbor).
    std::optional<sim::Time> probeInterval;
    /// Emit datapath perf counters (slab-pool recycle/fresh split, SmallFn
    /// and prepend heap-fallbacks, neighbor-cache rebuild/revalidation) as
    /// extra row keys. Off by default so legacy rows — and their golden
    /// artifacts — are unchanged (same pattern as selfHealing).
    bool datapathCounters = false;
    /// Surface congestion-control dynamics as extra row keys (cwnd summary
    /// stats from the tracer hook plus the strategy's loss_cuts /
    /// cuts_skipped counters). Off by default so legacy rows — and their
    /// golden artifacts — are unchanged (same pattern as selfHealing).
    bool ccMetrics = false;
    /// Run on the pre-slab/pre-batching engine: linear-scan channel
    /// delivery (one event per transmission) and no frame-storage pooling.
    /// Both switches are RNG-neutral — listeners are visited in ascending
    /// NodeId order in every delivery mode and the pool never draws — so a
    /// legacy run replays the identical byte stream; only the wall clock
    /// (and the datapath counters) differ. The city_scale bench sweeps this
    /// to report the engine speedup.
    bool legacyDatapath = false;
    /// Radio-link class (air rate, CSMA slot timings, frame bus, MAC
    /// payload budget). k802154 keeps every legacy byte stream.
    LinkPreset linkPreset = LinkPreset::k802154;
    /// A-MPDU-style MAC aggregation: frames per channel acquisition (the
    /// `agg` sweep axis; see aggFramesFromAxis). nullopt/1 = stock
    /// 802.15.4 one-ladder-per-frame behavior, byte-identical.
    std::optional<int> macAggFrames;
    /// Per-node TCP receive-memory budget (mesh::NodeConfig's
    /// tcpRecvBudgetBytes): caps how far autotuning may grow a mote-side
    /// receive buffer. nullopt = the preset's default (0 = unbudgeted).
    std::optional<std::size_t> tcpRecvBudgetBytes;

    // kPipe parameters (§8).
    sim::Time pipeOneWayDelay = 50 * sim::kMillisecond;
    double pipeBandwidthBps = 125000.0;
    double pipeLossForward = 0.0;
    double pipeLossReverse = 0.0;
};

enum class WorkloadKind : std::uint8_t {
    kBulk,          // single saturating TCP transfer (the §6/§7 workhorse)
    kTwoFlow,       // two simultaneous flows sharing the path (Table 9)
    kMultiFlow,     // n concurrent flows, mixed directions (office/grid)
    kSleepyBulk,    // bulk over a duty-cycled link (Appendix C)
    kEmbeddedBulk,  // uIP/BLIP stop-and-wait baseline (Table 7)
    kAnemometer,    // §9 sensor application study
};

/// One flow of a kMultiFlow workload.
struct FlowSpec {
    phy::NodeId node = 0;  // mesh endpoint; the peer is the cloud host
    bool uplink = true;    // node -> cloud, else cloud -> node
    std::size_t totalBytes = 50000;
};

struct WorkloadSpec {
    WorkloadKind kind = WorkloadKind::kBulk;

    std::size_t totalBytes = 150000;
    bool uplink = true;
    /// MSS as a 6LoWPAN frame count (§6.1's sweep axis); 0 = use mssBytes.
    std::size_t mssFrames = 5;
    std::uint16_t mssBytes = 0;
    std::size_t windowSegments = 4;
    /// kPair receiver window; 0 = same as windowSegments.
    std::size_t recvWindowSegments = 0;
    sim::Time timeLimit = 40 * sim::kMinute;

    // TCP feature ablations (Table 1 features).
    bool sack = true;
    bool delayedAck = true;
    bool timestamps = true;
    bool dropOutOfOrder = false;
    bool ecn = false;
    /// Congestion-control strategy for every TCP endpoint of the workload
    /// (the `cc` shootout axis; see ccFromAxis). kNewReno is the paper's
    /// stock behavior and keeps legacy scenarios byte-identical.
    tcp::CcKind cc = tcp::CcKind::kNewReno;

    // High-BDP knobs (RFC 7323). All default off: legacy scenarios keep
    // their 16-bit adverts, fixed buffers and golden byte streams.
    /// RFC 7323 window scaling on every TCP endpoint of the workload (the
    /// `wscale` sweep axis; see wscaleFromAxis).
    bool windowScaling = false;
    /// Receive-buffer autotuning budget for the receiving endpoint
    /// (TcpConfig::recvBufferMaxBytes): the buffer starts at its profile
    /// size and grows toward the measured delivered x RTT product, never
    /// past this. 0 = fixed buffer (the `rcvAutotune` axis). Clamped by the
    /// receiving node's NodeConfig::tcpRecvBudgetBytes when that is set.
    std::size_t recvAutotuneBudgetBytes = 0;
    /// Static buffer override for the BDP ceiling sweeps: the sender's send
    /// buffer (and, when autotuning is off, the receiver's receive buffer)
    /// in bytes. 0 = the legacy mote/server profile sizes.
    std::size_t bdpBufferBytes = 0;

    /// Non-declarative escape hatch for the Fig. 7 cwnd trace.
    tcp::TcpSocket::CwndTracer cwndTracer;
    /// Non-declarative escape hatch: installed on the testbed's channel for
    /// radio workloads. The scheduler A/B suite hashes the delivery log with
    /// it to prove heap- and wheel-backed runs are bit-identical.
    phy::Channel::DeliveryTap deliveryTap;

    // kEmbeddedBulk (Table 7).
    transport::EmbeddedProfile embeddedProfile = transport::EmbeddedProfile::kUip;
    std::uint16_t embeddedMss = 60;

    // kSleepyBulk (Appendix C).
    mac::SleepyConfig sleepy{};
    sim::Time idleTail = 0;  // quiet tail to measure idle duty cycle

    // kAnemometer (§9): the full option block, seed overridden per point.
    harness::AnemometerOptions anemometer{};

    // kMultiFlow.
    std::vector<FlowSpec> flows{};
    sim::Time multiFlowDuration = 5 * sim::kMinute;
};

/// Fault-injection layer of a scenario (the chaos campaigns).
///
/// `chaos` marks the scenario as a chaos scenario: bulk runs go through the
/// fault-aware runner (scenario/chaos.hpp) — recovery metrics, reconnect
/// policy, progress watchdog — even when no faults are injected, so the
/// fault=0 baseline rows share the chaos schema. `enabled` arms the plan and
/// is bound from the canonical `fault` sweep axis (0 = clean baseline,
/// 1 = faults injected; see faultFromAxis).
struct FaultSpec {
    bool chaos = false;
    bool enabled = false;
    sim::FaultPlan plan{};

    /// App-level reconnect-with-backoff: when the sender's connection fails
    /// (R2/persist/keep-alive give-up, or an endpoint crash), open a fresh
    /// connection after a deterministic exponential backoff and resume the
    /// transfer at the acked high-water mark. No RNG draws — backoff is
    /// initial, 2x, 4x, ... capped at `reconnectBackoffMax`.
    bool reconnect = true;
    sim::Time reconnectBackoffInitial = 2 * sim::kSecond;
    sim::Time reconnectBackoffMax = 30 * sim::kSecond;
    int maxReconnects = 8;

    /// Mote-side TCP survival overrides (applied whenever `chaos` is set, so
    /// the fault axis toggles only the injection, never the TCP config).
    std::optional<int> maxRetransmits;       // lower R2 = faster dead-peer detection
    std::optional<sim::Time> keepAliveIdle;  // nonzero enables keep-alive probes

    /// Progress watchdog: fail the run (std::runtime_error, attributed by
    /// the sweep/campaign machinery) if the flow delivers nothing fresh for
    /// this long while no injected outage is active. 0 disables — but every
    /// registered chaos scenario keeps it on, so no chaos run can hang.
    sim::Time watchdogStall = 2 * sim::kMinute;
};

struct ScenarioSpec {
    TopologySpec topology{};
    WorkloadSpec workload{};
    FaultSpec fault{};
};

/// Canonical mapping of the `fault` sweep axis: 0 = clean baseline,
/// 1 = inject the plan. Bind hooks use this so every chaos scenario spells
/// the axis the same way.
inline bool faultFromAxis(double value) { return value >= 0.5; }

/// Canonical mapping of the `scheduler` sweep axis onto the backend enum:
/// 0 = indexed binary heap, 1 = hierarchical timer wheel. Bind hooks use
/// this so every scenario spells the axis the same way.
inline sim::SchedulerKind schedulerFromAxis(double value) {
    return value >= 0.5 ? sim::SchedulerKind::kTimerWheel
                        : sim::SchedulerKind::kBinaryHeap;
}

/// Canonical mapping of the `cc` sweep axis onto the strategy enum:
/// 0 = NewReno (the paper's stock behavior), 1 = CERL-style loss
/// differentiation, 2 = Westwood-style bandwidth estimation. Bind hooks use
/// this so every shootout scenario spells the axis the same way.
inline tcp::CcKind ccFromAxis(double value) {
    if (value >= 1.5) return tcp::CcKind::kWestwood;
    if (value >= 0.5) return tcp::CcKind::kCerl;
    return tcp::CcKind::kNewReno;
}

/// Canonical mapping of the `wscale` sweep axis: 0 = 16-bit adverts (the
/// paper's stock stack), 1 = RFC 7323 window scaling negotiated on both
/// ends. Bind hooks use this so every BDP scenario spells the axis the
/// same way.
inline bool wscaleFromAxis(double value) { return value >= 0.5; }

/// Canonical mapping of the `agg` sweep axis onto CsmaConfig::aggFrames:
/// the axis value IS the burst size (1 = stock one-CSMA-ladder-per-frame).
inline int aggFramesFromAxis(double value) {
    return value >= 1.5 ? int(value + 0.5) : 1;
}

/// Canonical mapping of the `link` sweep axis onto the radio-link preset:
/// 0 = 802.15.4 (stock), 1 = ESP32-class high-rate link.
inline LinkPreset linkPresetFromAxis(double value) {
    return value >= 0.5 ? LinkPreset::kEsp32 : LinkPreset::k802154;
}

}  // namespace tcplp::scenario
