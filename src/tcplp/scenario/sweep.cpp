#include "tcplp/scenario/sweep.hpp"

#include <algorithm>

#include "tcplp/common/assert.hpp"
#include "tcplp/scenario/shard.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/rng.hpp"

namespace tcplp::scenario {

std::vector<const RunRecord*> SweepResult::select(
    std::initializer_list<std::pair<const char*, double>> match) const {
    std::vector<const RunRecord*> out;
    for (const RunRecord& r : records) {
        bool ok = true;
        for (const auto& [axis, value] : match) {
            if (r.point.value(axis) != value) {
                ok = false;
                break;
            }
        }
        if (ok) out.push_back(&r);
    }
    return out;
}

const RunRecord* SweepResult::first(
    std::initializer_list<std::pair<const char*, double>> match) const {
    const auto matches = select(match);
    return matches.empty() ? nullptr : matches.front();
}

double SweepResult::mean(
    const char* key,
    std::initializer_list<std::pair<const char*, double>> match) const {
    const auto matches = select(match);
    if (matches.empty()) return 0.0;
    double sum = 0.0;
    for (const RunRecord* r : matches) sum += r->row.number(key);
    return sum / double(matches.size());
}

std::string SweepResult::jsonLines() const {
    std::string out;
    for (const RunRecord& r : records) {
        out += toJsonLine(r.row);
        out += '\n';
    }
    return out;
}

std::vector<Point> expandPoints(const ScenarioDef& def,
                                const std::vector<std::uint64_t>& seeds) {
    TCPLP_ASSERT(!seeds.empty());
    std::size_t total = seeds.size();
    for (const Axis& a : def.axes) {
        TCPLP_ASSERT(!a.values.empty());
        total *= a.values.size();
    }
    // Stride of axis k = product of all sizes to its right (seeds innermost).
    std::vector<std::size_t> strides(def.axes.size());
    std::size_t stride = seeds.size();
    for (std::size_t k = def.axes.size(); k-- > 0;) {
        strides[k] = stride;
        stride *= def.axes[k].values.size();
    }
    std::vector<Point> points;
    points.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        Point p;
        p.index = i;
        for (std::size_t k = 0; k < def.axes.size(); ++k) {
            const std::size_t vi = (i / strides[k]) % def.axes[k].values.size();
            p.values.emplace_back(def.axes[k].name, def.axes[k].values[vi]);
        }
        p.seed = def.deriveSeeds ? sim::Rng::deriveStream(def.baseSeed, i)
                                 : seeds[i % seeds.size()];
        points.push_back(std::move(p));
    }
    return points;
}

MetricRow runPointRow(const ScenarioDef& def, const Point& point) {
    ScenarioSpec spec = def.base;
    if (def.bind) def.bind(spec, point);
    const MetricRow metrics =
        def.measure ? def.measure(spec, point) : runScenario(spec, point.seed);
    MetricRow row;
    row.set("scenario", def.name)
        .set("index", std::uint64_t(point.index))
        .set("seed", point.seed);
    for (const auto& [axis, value] : point.values) row.set(axis, value);
    for (const auto& [key, value] : metrics.fields()) row.set(key, value);
    return row;
}

std::string describePoint(const ScenarioDef& def, const Point& point,
                          std::size_t totalPoints) {
    std::string out = "scenario '" + def.name + "' point " +
                      std::to_string(point.index) + "/" + std::to_string(totalPoints) +
                      " (";
    for (const auto& [axis, value] : point.values)
        out += axis + "=" + formatDouble(value) + ", ";
    out += "seed=" + std::to_string(point.seed) + ")";
    return out;
}

SweepResult runSweep(const ScenarioDef& def, const SweepOptions& options) {
    SweepResult result;
    result.def = &def;
    const std::vector<std::uint64_t>& seeds =
        options.seedOverride.empty() ? def.seeds : options.seedOverride;
    const std::vector<Point> points = expandPoints(def, seeds);

    ShardOptions shardOptions;
    shardOptions.jobs = options.jobs;
    ShardOutcome outcome = runShardedTasks(
        points.size(), [&](std::size_t i) { return runPointRow(def, points[i]); },
        [&](std::size_t i) { return describePoint(def, points[i], points.size()); },
        shardOptions);
    result.failures = std::move(outcome.failures);
    if (!outcome.ok) {
        result.error = outcome.error;
        return result;
    }

    result.records.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        result.records[i] = RunRecord{points[i], std::move(outcome.rows[i])};
    result.ok = true;
    return result;
}

}  // namespace tcplp::scenario
