#include "tcplp/scenario/sweep.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>

#include "tcplp/common/assert.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/rng.hpp"

namespace tcplp::scenario {

std::vector<const RunRecord*> SweepResult::select(
    std::initializer_list<std::pair<const char*, double>> match) const {
    std::vector<const RunRecord*> out;
    for (const RunRecord& r : records) {
        bool ok = true;
        for (const auto& [axis, value] : match) {
            if (r.point.value(axis) != value) {
                ok = false;
                break;
            }
        }
        if (ok) out.push_back(&r);
    }
    return out;
}

const RunRecord* SweepResult::first(
    std::initializer_list<std::pair<const char*, double>> match) const {
    const auto matches = select(match);
    return matches.empty() ? nullptr : matches.front();
}

double SweepResult::mean(
    const char* key,
    std::initializer_list<std::pair<const char*, double>> match) const {
    const auto matches = select(match);
    if (matches.empty()) return 0.0;
    double sum = 0.0;
    for (const RunRecord* r : matches) sum += r->row.number(key);
    return sum / double(matches.size());
}

std::string SweepResult::jsonLines() const {
    std::string out;
    for (const RunRecord& r : records) {
        out += toJsonLine(r.row);
        out += '\n';
    }
    return out;
}

std::vector<Point> expandPoints(const ScenarioDef& def,
                                const std::vector<std::uint64_t>& seeds) {
    TCPLP_ASSERT(!seeds.empty());
    std::size_t total = seeds.size();
    for (const Axis& a : def.axes) {
        TCPLP_ASSERT(!a.values.empty());
        total *= a.values.size();
    }
    // Stride of axis k = product of all sizes to its right (seeds innermost).
    std::vector<std::size_t> strides(def.axes.size());
    std::size_t stride = seeds.size();
    for (std::size_t k = def.axes.size(); k-- > 0;) {
        strides[k] = stride;
        stride *= def.axes[k].values.size();
    }
    std::vector<Point> points;
    points.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        Point p;
        p.index = i;
        for (std::size_t k = 0; k < def.axes.size(); ++k) {
            const std::size_t vi = (i / strides[k]) % def.axes[k].values.size();
            p.values.emplace_back(def.axes[k].name, def.axes[k].values[vi]);
        }
        p.seed = def.deriveSeeds ? sim::Rng::deriveStream(def.baseSeed, i)
                                 : seeds[i % seeds.size()];
        points.push_back(std::move(p));
    }
    return points;
}

namespace {

MetricRow runPointRow(const ScenarioDef& def, const Point& point) {
    ScenarioSpec spec = def.base;
    if (def.bind) def.bind(spec, point);
    const MetricRow metrics =
        def.measure ? def.measure(spec, point) : runScenario(spec, point.seed);
    MetricRow row;
    row.set("scenario", def.name)
        .set("index", std::uint64_t(point.index))
        .set("seed", point.seed);
    for (const auto& [axis, value] : point.values) row.set(axis, value);
    for (const auto& [key, value] : metrics.fields()) row.set(key, value);
    return row;
}

// --- Worker pipe protocol (line-based text) ------------------------------
//
//   ROW <index> <nfields>\n
//   <kind> <key> <value>\n        (kind in {i,u,d,b,s}; value to end of line)
//
// Doubles cross the pipe shortest-round-trip (formatDouble / from_chars),
// so a reassembled row renders byte-identically to the in-process one.

void appendField(std::string& out, const std::string& key, const MetricValue& v) {
    TCPLP_ASSERT(key.find(' ') == std::string::npos &&
                 key.find('\n') == std::string::npos);
    switch (v.kind()) {
        case MetricValue::Kind::kInt:
            out += "i " + key + ' ' + std::to_string(v.asInt());
            break;
        case MetricValue::Kind::kUint:
            out += "u " + key + ' ' + std::to_string(v.asUint());
            break;
        case MetricValue::Kind::kDouble: {
            // Pipe encoding is distinct from the JSON rendering: non-finite
            // values must survive the round trip exactly (JSON folds them
            // all to null), or sharded presenter arithmetic would diverge
            // from the serial run.
            const double d = v.asDouble();
            out += "d " + key + ' ';
            if (std::isnan(d)) {
                out += "nan";
            } else if (std::isinf(d)) {
                out += d > 0 ? "inf" : "-inf";
            } else {
                out += formatDouble(d);
            }
            break;
        }
        case MetricValue::Kind::kBool:
            out += std::string("b ") + key + ' ' + (v.asBool() ? "1" : "0");
            break;
        case MetricValue::Kind::kString:
            TCPLP_ASSERT(v.asString().find('\n') == std::string::npos);
            out += "s " + key + ' ' + v.asString();
            break;
    }
    out += '\n';
}

std::string encodeRow(std::size_t index, const MetricRow& row) {
    std::string out = "ROW " + std::to_string(index) + ' ' +
                      std::to_string(row.fields().size()) + '\n';
    for (const auto& [key, value] : row.fields()) appendField(out, key, value);
    return out;
}

bool parseValue(char kind, const std::string& text, MetricValue& out) {
    switch (kind) {
        case 'i': {
            std::int64_t v = 0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'u': {
            std::uint64_t v = 0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'd': {
            if (text == "nan") {
                out = MetricValue(std::nan(""));
                return true;
            }
            if (text == "inf" || text == "-inf") {
                const double inf = std::numeric_limits<double>::infinity();
                out = MetricValue(text[0] == '-' ? -inf : inf);
                return true;
            }
            double v = 0.0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'b':
            out = MetricValue(text == "1");
            return true;
        case 's':
            out = MetricValue(text);
            return true;
        default: return false;
    }
}

/// Parses complete "ROW ..." frames out of `buffer` (consuming them) into
/// `rows`; returns false on a malformed frame.
bool drainFrames(std::string& buffer,
                 std::vector<std::pair<std::size_t, MetricRow>>& rows) {
    for (;;) {
        // A frame is (1 + nfields) lines; wait until all of them arrived.
        const std::size_t headerEnd = buffer.find('\n');
        if (headerEnd == std::string::npos) return true;
        const std::string header = buffer.substr(0, headerEnd);
        if (header.rfind("ROW ", 0) != 0) return false;
        std::size_t index = 0, nfields = 0;
        if (std::sscanf(header.c_str(), "ROW %zu %zu", &index, &nfields) != 2)
            return false;

        std::size_t pos = headerEnd + 1;
        std::vector<std::pair<std::size_t, std::size_t>> lines;  // (start, end)
        for (std::size_t f = 0; f < nfields; ++f) {
            const std::size_t end = buffer.find('\n', pos);
            if (end == std::string::npos) return true;  // incomplete: wait
            lines.emplace_back(pos, end);
            pos = end + 1;
        }

        MetricRow row;
        for (const auto& [start, end] : lines) {
            const std::string line = buffer.substr(start, end - start);
            if (line.size() < 3 || line[1] != ' ') return false;
            const char kind = line[0];
            const std::size_t keyEnd = line.find(' ', 2);
            if (keyEnd == std::string::npos) return false;
            const std::string key = line.substr(2, keyEnd - 2);
            MetricValue value;
            if (!parseValue(kind, line.substr(keyEnd + 1), value)) return false;
            row.set(key, value);
        }
        rows.emplace_back(index, std::move(row));
        buffer.erase(0, pos);
    }
}

void writeAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n <= 0) _exit(3);  // parent gone; nothing sensible left to do
        off += std::size_t(n);
    }
}

}  // namespace

SweepResult runSweep(const ScenarioDef& def, const SweepOptions& options) {
    SweepResult result;
    result.def = &def;
    const std::vector<std::uint64_t>& seeds =
        options.seedOverride.empty() ? def.seeds : options.seedOverride;
    const std::vector<Point> points = expandPoints(def, seeds);

    int jobs = options.jobs <= 1 ? 1 : options.jobs;
    jobs = int(std::min<std::size_t>(std::size_t(jobs), points.size()));

    if (jobs <= 1) {
        for (const Point& p : points) result.records.push_back({p, runPointRow(def, p)});
        result.ok = true;
        return result;
    }

    struct Worker {
        pid_t pid = -1;
        int fd = -1;
        std::string buffer;
        bool eof = false;
    };
    std::vector<Worker> workers(static_cast<std::size_t>(jobs));
    // Error-path teardown: kill and reap every spawned worker and close its
    // pipe, so a pipe()/fork()/poll() failure never leaks children stuck in
    // write() against a full, never-drained pipe.
    const auto abandonWorkers = [&workers] {
        for (Worker& w : workers) {
            if (w.fd >= 0 && !w.eof) {
                ::close(w.fd);
                w.eof = true;
            }
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, nullptr, 0);
                w.pid = -1;
            }
        }
    };
    for (int w = 0; w < jobs; ++w) {
        int fds[2];
        if (::pipe(fds) != 0) {
            result.error = "pipe() failed";
            abandonWorkers();
            return result;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            result.error = "fork() failed";
            abandonWorkers();
            return result;
        }
        if (pid == 0) {
            // Worker w: run every point with index % jobs == w, stream rows
            // back, and _exit without running atexit/static teardown (the
            // parent owns stdio).
            ::close(fds[0]);
            for (Worker& other : workers)
                if (other.fd >= 0) ::close(other.fd);
            int status = 0;
            try {
                for (std::size_t i = std::size_t(w); i < points.size();
                     i += std::size_t(jobs)) {
                    const MetricRow row = runPointRow(def, points[i]);
                    writeAll(fds[1], encodeRow(i, row));
                }
            } catch (const std::exception&) {
                status = 2;
            } catch (...) {
                status = 2;
            }
            ::close(fds[1]);
            _exit(status);
        }
        ::close(fds[1]);
        workers[std::size_t(w)].pid = pid;
        workers[std::size_t(w)].fd = fds[0];
    }

    // Drain all worker pipes concurrently (a worker must never block on a
    // full pipe because the parent is busy with another one).
    std::vector<std::pair<std::size_t, MetricRow>> rows;
    bool malformed = false;
    for (;;) {
        std::vector<pollfd> pfds;
        for (const Worker& w : workers) {
            if (!w.eof) pfds.push_back({w.fd, POLLIN, 0});
        }
        if (pfds.empty()) break;
        if (::poll(pfds.data(), nfds_t(pfds.size()), -1) < 0) {
            if (errno == EINTR) continue;
            result.error = "poll() failed";
            abandonWorkers();
            return result;
        }
        for (const pollfd& p : pfds) {
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR))) continue;
            Worker* w = nullptr;
            for (Worker& cand : workers)
                if (cand.fd == p.fd) w = &cand;
            char buf[4096];
            const ssize_t n = ::read(p.fd, buf, sizeof buf);
            if (n > 0) {
                w->buffer.append(buf, std::size_t(n));
                if (!drainFrames(w->buffer, rows)) malformed = true;
            } else {
                w->eof = true;
                ::close(w->fd);
            }
        }
    }

    bool workerFailed = false;
    for (Worker& w : workers) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) workerFailed = true;
    }
    if (workerFailed) {
        result.error = "a sweep worker exited abnormally";
        return result;
    }
    if (malformed) {
        result.error = "malformed row frame on a worker pipe";
        return result;
    }
    if (rows.size() != points.size()) {
        result.error = "sweep lost rows: got " + std::to_string(rows.size()) +
                       " of " + std::to_string(points.size());
        return result;
    }

    // Deterministic merge: grid order, independent of worker interleaving.
    result.records.resize(points.size());
    std::vector<bool> seen(points.size(), false);
    for (auto& [index, row] : rows) {
        if (index >= points.size() || seen[index]) {
            result.error = "duplicate or out-of-range row index";
            return result;
        }
        seen[index] = true;
        result.records[index] = RunRecord{points[index], std::move(row)};
    }
    result.ok = true;
    return result;
}

}  // namespace tcplp::scenario
