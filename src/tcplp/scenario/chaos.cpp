#include "tcplp/scenario/chaos.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "tcplp/app/reconnect.hpp"
#include "tcplp/common/assert.hpp"
#include "tcplp/scenario/workloads.hpp"

namespace tcplp::scenario {

namespace {

/// Outage window of one expanded event: a reboot keeps the node dark for its
/// downtime; blackout/corruption windows are dark by definition.
bool covers(const sim::FaultEvent& e, sim::Time t) {
    return t >= e.at && t < e.at + e.duration;
}

}  // namespace

bool FaultTimeline::outageActive(sim::Time t) const {
    for (const sim::FaultEvent& e : events)
        if (covers(e, t)) return true;
    return false;
}

sim::Time FaultTimeline::lastOutageEndBefore(sim::Time t) const {
    sim::Time end = 0;
    for (const sim::FaultEvent& e : events) {
        const sim::Time e2 = e.at + e.duration;
        if (e2 <= t) end = std::max(end, e2);
    }
    return end;
}

sim::Time FaultTimeline::lastOutageEnd() const {
    sim::Time end = 0;
    for (const sim::FaultEvent& e : events) end = std::max(end, e.at + e.duration);
    return end;
}

double FaultTimeline::outageSeconds() const {
    // Union of [at, at+duration) windows; events are sorted by `at`.
    sim::Time total = 0;
    sim::Time curStart = 0, curEnd = -1;
    for (const sim::FaultEvent& e : events) {
        const sim::Time s = e.at, f = e.at + e.duration;
        if (curEnd < 0 || s > curEnd) {
            if (curEnd >= 0) total += curEnd - curStart;
            curStart = s;
            curEnd = f;
        } else {
            curEnd = std::max(curEnd, f);
        }
    }
    if (curEnd >= 0) total += curEnd - curStart;
    return sim::toSeconds(total);
}

FaultTimeline installFaults(harness::Testbed& testbed, const sim::FaultPlan& plan,
                            std::uint64_t seed) {
    FaultTimeline timeline;
    timeline.events = sim::expandFaultPlan(plan, seed);
    sim::Simulator& simulator = testbed.simulator();
    phy::Channel& channel = testbed.channel();

    for (const sim::FaultEvent& e : timeline.events) {
        switch (e.kind) {
            case sim::FaultKind::kNodeReboot: {
                mesh::Node* node = testbed.findNode(phy::NodeId(e.target));
                TCPLP_ASSERT(node != nullptr && "fault plan reboots an unknown node");
                simulator.schedule(e.at,
                                   [node, d = e.duration] { node->reboot(d); });
                break;
            }
            case sim::FaultKind::kLinkBlackout: {
                const phy::NodeId a = phy::NodeId(e.target);
                const phy::NodeId b = phy::NodeId(e.peer);
                if (e.target == 0 && e.peer == 0) {
                    simulator.schedule(e.at,
                                       [&channel] { channel.setGlobalBlackout(true); });
                    simulator.schedule(e.at + e.duration, [&channel] {
                        channel.setGlobalBlackout(false);
                    });
                } else if (e.target == e.peer) {
                    simulator.schedule(
                        e.at, [&channel, a] { channel.setNodeBlackout(a, true); });
                    simulator.schedule(e.at + e.duration, [&channel, a] {
                        channel.setNodeBlackout(a, false);
                    });
                } else {
                    simulator.schedule(e.at, [&channel, a, b] {
                        channel.setLinkBlackout(a, b, true);
                    });
                    simulator.schedule(e.at + e.duration, [&channel, a, b] {
                        channel.setLinkBlackout(a, b, false);
                    });
                }
                break;
            }
            case sim::FaultKind::kCorruptionBurst:
                // Corrupted frames fail FCS and are discarded at the MAC —
                // observationally a global blackout in this PHY model.
                simulator.schedule(e.at,
                                   [&channel] { channel.setGlobalBlackout(true); });
                simulator.schedule(e.at + e.duration,
                                   [&channel] { channel.setGlobalBlackout(false); });
                break;
            case sim::FaultKind::kNodeFailure: {
                mesh::Node* node = testbed.findNode(phy::NodeId(e.target));
                TCPLP_ASSERT(node != nullptr && "fault plan kills an unknown node");
                simulator.schedule(e.at, [node] { node->failPermanently(); });
                break;
            }
        }
    }
    return timeline;
}

ChaosBulkResult runChaosBulk(const ScenarioSpec& spec, std::uint64_t seed) {
    const TopologySpec& t = spec.topology;
    const WorkloadSpec& w = spec.workload;
    const FaultSpec& f = spec.fault;
    TCPLP_ASSERT(t.kind != TopologyKind::kPipe && t.kind != TopologyKind::kPair &&
                 t.kind != TopologyKind::kSleepyLeaf &&
                 "chaos bulk needs a mote->cloud radio topology");
    TCPLP_ASSERT(w.uplink && "chaos bulk models the uplink deployment flow");

    auto tb = buildTestbed(t, seed);
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);
    sim::Simulator& simulator = tb->simulator();
    const std::uint16_t mss = resolveMss(w);

    // Faults are installed before any workload object is constructed, so the
    // schedule occupies a fixed prefix of the event space regardless of plan
    // size. The expansion draws only from the derived fault stream.
    FaultTimeline timeline;
    if (f.enabled) timeline = installFaults(*tb, f.plan, seed);

    mesh::Node& mote = senderMote(*tb, t);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    tcp::TcpConfig senderCfg = moteTcpConfig(mss, w.windowSegments);
    tcp::TcpConfig receiverCfg = serverTcpConfig(mss);
    for (tcp::TcpConfig* c : {&senderCfg, &receiverCfg}) {
        c->sack = w.sack;
        c->delayedAck = w.delayedAck;
        c->timestamps = w.timestamps;
        c->dropOutOfOrder = w.dropOutOfOrder;
        c->ecn = w.ecn;
        c->cc = w.cc;
    }
    if (f.maxRetransmits) senderCfg.maxRetransmits = *f.maxRetransmits;
    if (f.keepAliveIdle) senderCfg.keepAliveIdle = *f.keepAliveIdle;

    app::ResumableGoodputMeter meter(simulator);
    cloudStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    app::ReconnectingBulkSender::Policy policy;
    policy.reconnect = f.reconnect;
    policy.backoffInitial = f.reconnectBackoffInitial;
    policy.backoffMax = f.reconnectBackoffMax;
    policy.maxReconnects = f.maxReconnects;
    app::ReconnectingBulkSender sender(moteStack, senderCfg, tb->cloud().address(),
                                       80, w.totalBytes, policy);
    sender.setOnSession([&](std::size_t offset) { meter.beginSession(offset); });

    // Endpoint crash semantics: if the plan ever reboots the sender mote,
    // its TCP state dies with the power rail and the app reconnects once the
    // node is back up (the deployed app resumes from its durable log).
    mote.addRebootListener([&](bool isDown) {
        if (isDown)
            moteStack.dropAllConnectionsSilently();
        else
            sender.noteCrash();
    });

    // --- Recovery metrics ------------------------------------------------
    std::uint64_t faultBytes = 0;
    sim::Time lastProgressAt = 0;
    const sim::Time lastOutageEnd = timeline.lastOutageEnd();
    sim::Time recoveredAt = -1;
    meter.setOnProgress([&](std::size_t fresh) {
        const sim::Time now = simulator.now();
        lastProgressAt = now;
        if (timeline.outageActive(now)) faultBytes += fresh;
        if (timeline.any() && recoveredAt < 0 && now >= lastOutageEnd)
            recoveredAt = now;
    });

    // --- Progress watchdog ------------------------------------------------
    // Periodic stall check: anchored at the later of the last fresh byte and
    // the end of the latest completed outage, so an intentional blackout is
    // never a stall but a flow that fails to resume after one is. The check
    // re-schedules itself through this by-reference capture, so the function
    // object must live at function scope — it has to outlive runUntil(), not
    // just the arming block.
    std::function<void()> check;
    if (f.watchdogStall > 0) {
        const sim::Time tick =
            std::max<sim::Time>(f.watchdogStall / 4, sim::kSecond);
        check = [&, tick] {
            if (meter.bytes() >= w.totalBytes) return;  // done; watchdog retires
            const sim::Time now = simulator.now();
            if (!timeline.outageActive(now)) {
                const sim::Time anchor =
                    std::max(lastProgressAt, timeline.lastOutageEndBefore(now));
                if (now - anchor > f.watchdogStall) {
                    throw std::runtime_error(
                        "chaos watchdog: no progress for " +
                        std::to_string(sim::Time(sim::toSeconds(now - anchor))) +
                        " s at t=" + std::to_string(sim::Time(sim::toSeconds(now))) +
                        " s (" + std::to_string(meter.bytes()) + "/" +
                        std::to_string(w.totalBytes) + " bytes delivered)");
                }
            }
            simulator.schedule(tick, check);
        };
        simulator.schedule(tick, check);
    }

    sender.start();
    simulator.runUntil(w.timeLimit);

    ChaosBulkResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.contentOk = meter.contentOk();
    r.complete = meter.bytes() >= w.totalBytes;
    r.reconnects = sender.reconnects();
    r.reconnectAttempts = sender.reconnectAttempts();
    const tcp::TcpStats agg = sender.aggregateStats();
    r.giveUps = agg.rexmitGiveUps + agg.persistGiveUps + agg.keepAliveGiveUps;
    r.timeouts = agg.timeouts;
    r.faultEvents = timeline.events.size();
    r.outageSeconds = timeline.outageSeconds();
    r.faultBytes = faultBytes;
    r.faultGoodputKbps = r.outageSeconds > 0.0
                             ? double(faultBytes) * 8.0 / 1000.0 / r.outageSeconds
                             : 0.0;
    r.timeToRecoverS = (timeline.any() && recoveredAt >= 0)
                           ? sim::toSeconds(recoveredAt - lastOutageEnd)
                           : -1.0;
    r.framesTransmitted = tb->channel().framesTransmitted();
    const MeshRouteTotals mesh = meshRouteTotals(*tb);
    r.reroutes = mesh.reroutes;
    r.failbacks = mesh.failbacks;
    r.blackholeDrops = mesh.blackholeDrops;
    r.noRouteDrops = mesh.noRouteDrops;
    r.forwardDrops = mesh.forwardDrops;
    r.rngDigest = simulator.rng().stateDigest();
    return r;
}

MetricRow chaosBulkRow(const ScenarioSpec& spec, std::uint64_t seed) {
    const ChaosBulkResult r = runChaosBulk(spec, seed);
    MetricRow row;
    row.set("goodput_kbps", r.goodputKbps)
        .set("bytes", std::uint64_t(r.bytes))
        .set("content_ok", r.contentOk)
        .set("complete", r.complete)
        .set("reconnects", std::int64_t(r.reconnects))
        .set("reconnect_attempts", std::int64_t(r.reconnectAttempts))
        .set("give_ups", r.giveUps)
        .set("timeouts", r.timeouts)
        .set("fault_events", r.faultEvents)
        .set("outage_s", r.outageSeconds)
        .set("fault_bytes", r.faultBytes)
        .set("fault_goodput_kbps", r.faultGoodputKbps)
        .set("recover_s", r.timeToRecoverS)
        .set("frames_tx", r.framesTransmitted);
    // Routing-repair keys exist only under self-healing, so the legacy chaos
    // rows (and their golden artifacts) keep their exact schema.
    if (spec.topology.selfHealing) {
        row.set("reroutes", r.reroutes)
            .set("failbacks", r.failbacks)
            .set("blackhole_drops", r.blackholeDrops)
            .set("no_route_drops", r.noRouteDrops)
            .set("forward_drops", r.forwardDrops);
    }
    row.set("rng_digest", r.rngDigest);
    return row;
}

}  // namespace tcplp::scenario
