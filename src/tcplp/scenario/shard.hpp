// Generalized fork+pipe worker pool for sharded run-point execution.
//
// This is the PR 3 sweep machinery, extracted and generalized: the caller
// hands over an *indexed task list* (any mix of scenarios — runSweep shards
// one scenario's grid, Campaign shards the whole registry's flattened grid)
// and a pool of forked workers executes the tasks round-robin, streaming
// each finished MetricRow back over a pipe. The parent reassembles rows by
// task index, so the merged result is byte-identical to a serial run: a
// worker's identity never reaches a row, and tasks must derive any
// randomness from their index, never from execution order.
//
// Diagnostics: each worker announces the task it is about to run (a
// "BEGIN <index>" control line) and carries a dedicated stderr pipe. When a
// worker dies — nonzero exit, uncaught exception, or a signal mid-point —
// the parent reports *which* task was in flight (via the caller's describe
// hook, e.g. "scenario 'fig4_mss' point 12 (mss_frames=3, seed=2)") plus
// the tail of everything the worker wrote to stderr, instead of the bare
// "a worker exited abnormally" of PR 3.
//
// Resumability: `skip[i]` marks tasks whose rows the caller already has
// (e.g. from a campaign manifest); they are never assigned to a worker.
// `onRow` fires in the parent as each row lands — the campaign manifest
// appends completed points through it, so an interrupted run can resume.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tcplp/scenario/metrics.hpp"

namespace tcplp::scenario {

/// One worker death, attributed to the task it was executing.
struct ShardFailure {
    int worker = -1;       // worker slot (0-based)
    int waitStatus = 0;    // raw waitpid() status
    bool taskKnown = false;
    std::size_t taskIndex = 0;   // valid when taskKnown
    std::string taskDescription; // describe(taskIndex), when known
    std::string stderrTail;      // last bytes the worker wrote to stderr

    /// "worker 2 killed by signal 9 while running scenario 'x' point 3
    ///  (hops=2, seed=1); stderr tail: ..." — the one-line diagnostic.
    std::string message() const;
};

struct ShardOptions {
    int jobs = 1;  // <=1: serial in-process
    /// Tasks to skip (already done); empty = run everything.
    std::vector<bool> skip{};
    /// Parent-side hook, called as each row lands (serial path: after each
    /// task). NOT called for skipped tasks.
    std::function<void(std::size_t, const MetricRow&)> onRow;
};

struct ShardOutcome {
    bool ok = false;
    std::string error;                    // first failure's message
    std::vector<ShardFailure> failures;   // every dead worker, attributed
    std::vector<MetricRow> rows;          // indexed by task; skipped = empty
    std::vector<bool> produced;           // rows[i] holds a fresh row
};

/// Executes tasks 0..taskCount-1 (minus skipped ones). `run(i)` computes
/// task i's row — it executes inside a forked worker when jobs > 1 and must
/// not print to stdout; exceptions it throws fail that worker with the
/// what() captured in the stderr tail. `describe(i)` renders a short
/// human-readable name for task i, used only in failure diagnostics.
ShardOutcome runShardedTasks(std::size_t taskCount,
                             const std::function<MetricRow(std::size_t)>& run,
                             const std::function<std::string(std::size_t)>& describe,
                             const ShardOptions& options = {});

}  // namespace tcplp::scenario
