#include "tcplp/scenario/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "tcplp/common/assert.hpp"

namespace tcplp::scenario {

double MetricValue::number() const {
    switch (kind_) {
        case Kind::kInt: return double(i_);
        case Kind::kUint: return double(u_);
        case Kind::kDouble: return d_;
        case Kind::kBool: return b_ ? 1.0 : 0.0;
        case Kind::kString: return 0.0;
    }
    return 0.0;
}

bool MetricValue::operator==(const MetricValue& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
        case Kind::kInt: return i_ == o.i_;
        case Kind::kUint: return u_ == o.u_;
        case Kind::kDouble:
            // Bitwise comparison: the determinism tests compare rows that
            // crossed the worker pipe against rows computed in-process.
            return (std::isnan(d_) && std::isnan(o.d_)) || d_ == o.d_;
        case Kind::kBool: return b_ == o.b_;
        case Kind::kString: return s_ == o.s_;
    }
    return false;
}

MetricRow& MetricRow::set(const std::string& key, MetricValue value) {
    for (auto& [k, v] : fields_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    fields_.emplace_back(key, std::move(value));
    return *this;
}

const MetricValue* MetricRow::find(const std::string& key) const {
    for (const auto& [k, v] : fields_) {
        if (k == key) return &v;
    }
    return nullptr;
}

double MetricRow::number(const std::string& key, double fallback) const {
    const MetricValue* v = find(key);
    return v ? v->number() : fallback;
}

const std::string& MetricRow::str(const std::string& key) const {
    static const std::string kEmpty;
    const MetricValue* v = find(key);
    return v && v->kind() == MetricValue::Kind::kString ? v->asString() : kEmpty;
}

std::string formatDouble(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

namespace {
void appendEscaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}
}  // namespace

std::string toJsonLine(const MetricRow& row) {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : row.fields()) {
        if (!first) out += ',';
        first = false;
        appendEscaped(out, key);
        out += ':';
        switch (value.kind()) {
            case MetricValue::Kind::kInt:
                out += std::to_string(value.asInt());
                break;
            case MetricValue::Kind::kUint:
                out += std::to_string(value.asUint());
                break;
            case MetricValue::Kind::kDouble:
                out += formatDouble(value.asDouble());
                break;
            case MetricValue::Kind::kBool:
                out += value.asBool() ? "true" : "false";
                break;
            case MetricValue::Kind::kString:
                appendEscaped(out, value.asString());
                break;
        }
    }
    out += '}';
    return out;
}

bool writeJsonLines(const std::string& path, const std::vector<MetricRow>& rows) {
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    for (const MetricRow& row : rows) {
        const std::string line = toJsonLine(row);
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

// --- Timing-field canonicalization ----------------------------------------

bool isTimingField(const std::string& key) {
    static const char* kExact[] = {"wall_ms",      "backend",
                                   "cores",        "speedup",
                                   "auto_speedup", "wheel_vs_heap_speedup"};
    for (const char* name : kExact) {
        if (key == name) return true;
    }
    // "_allocs_per_frame" counts global operator-new calls, which are a
    // perf observable of the build (stdlib growth policies, inlining), not
    // of the simulated behavior — stripped like the wall-clock fields.
    static const char* kSuffixes[] = {"_per_sec", "_ns_per_event", "_wall_ms",
                                      "_allocs_per_frame"};
    for (const char* suffix : kSuffixes) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        if (key.size() > n && key.compare(key.size() - n, n, suffix) == 0) return true;
    }
    return false;
}

MetricRow stripTimingFields(const MetricRow& row) {
    MetricRow out;
    for (const auto& [key, value] : row.fields()) {
        if (!isTimingField(key)) out.set(key, value);
    }
    return out;
}

std::string toCanonicalJsonLine(const MetricRow& row) {
    return toJsonLine(stripTimingFields(row));
}

// --- Row frame codec --------------------------------------------------------

namespace {

void appendFrameField(std::string& out, const std::string& key, const MetricValue& v) {
    TCPLP_ASSERT(key.find(' ') == std::string::npos &&
                 key.find('\n') == std::string::npos);
    switch (v.kind()) {
        case MetricValue::Kind::kInt:
            out += "i " + key + ' ' + std::to_string(v.asInt());
            break;
        case MetricValue::Kind::kUint:
            out += "u " + key + ' ' + std::to_string(v.asUint());
            break;
        case MetricValue::Kind::kDouble: {
            // The frame encoding is distinct from the JSON rendering:
            // non-finite values must survive the round trip exactly (JSON
            // folds them all to null), or sharded presenter arithmetic would
            // diverge from the serial run.
            const double d = v.asDouble();
            out += "d " + key + ' ';
            if (std::isnan(d)) {
                out += "nan";
            } else if (std::isinf(d)) {
                out += d > 0 ? "inf" : "-inf";
            } else {
                out += formatDouble(d);
            }
            break;
        }
        case MetricValue::Kind::kBool:
            out += std::string("b ") + key + ' ' + (v.asBool() ? "1" : "0");
            break;
        case MetricValue::Kind::kString:
            TCPLP_ASSERT(v.asString().find('\n') == std::string::npos);
            out += "s " + key + ' ' + v.asString();
            break;
    }
    out += '\n';
}

bool parseFrameValue(char kind, const std::string& text, MetricValue& out) {
    switch (kind) {
        case 'i': {
            std::int64_t v = 0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'u': {
            std::uint64_t v = 0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'd': {
            if (text == "nan") {
                out = MetricValue(std::nan(""));
                return true;
            }
            if (text == "inf" || text == "-inf") {
                const double inf = std::numeric_limits<double>::infinity();
                out = MetricValue(text[0] == '-' ? -inf : inf);
                return true;
            }
            double v = 0.0;
            const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
            if (res.ec != std::errc()) return false;
            out = MetricValue(v);
            return true;
        }
        case 'b':
            out = MetricValue(text == "1");
            return true;
        case 's':
            out = MetricValue(text);
            return true;
        default: return false;
    }
}

}  // namespace

std::string encodeRowFrame(std::size_t index, const MetricRow& row) {
    std::string out = "ROW " + std::to_string(index) + ' ' +
                      std::to_string(row.fields().size()) + '\n';
    for (const auto& [key, value] : row.fields()) appendFrameField(out, key, value);
    return out;
}

bool drainRowFrames(std::string& buffer,
                    std::vector<std::pair<std::size_t, MetricRow>>& rows,
                    const std::function<void(std::size_t)>& onBegin,
                    const std::function<void(std::size_t)>& onRowParsed) {
    for (;;) {
        // A frame is (1 + nfields) lines; wait until all of them arrived.
        const std::size_t headerEnd = buffer.find('\n');
        if (headerEnd == std::string::npos) return true;
        const std::string header = buffer.substr(0, headerEnd);
        if (header.rfind("BEGIN ", 0) == 0) {
            std::size_t index = 0;
            if (std::sscanf(header.c_str(), "BEGIN %zu", &index) != 1) return false;
            if (onBegin) onBegin(index);
            buffer.erase(0, headerEnd + 1);
            continue;
        }
        if (header.rfind("ROW ", 0) != 0) return false;
        std::size_t index = 0, nfields = 0;
        if (std::sscanf(header.c_str(), "ROW %zu %zu", &index, &nfields) != 2)
            return false;

        std::size_t pos = headerEnd + 1;
        std::vector<std::pair<std::size_t, std::size_t>> lines;  // (start, end)
        for (std::size_t f = 0; f < nfields; ++f) {
            const std::size_t end = buffer.find('\n', pos);
            if (end == std::string::npos) return true;  // incomplete: wait
            lines.emplace_back(pos, end);
            pos = end + 1;
        }

        MetricRow row;
        for (const auto& [start, end] : lines) {
            const std::string line = buffer.substr(start, end - start);
            if (line.size() < 3 || line[1] != ' ') return false;
            const char kind = line[0];
            const std::size_t keyEnd = line.find(' ', 2);
            if (keyEnd == std::string::npos) return false;
            const std::string key = line.substr(2, keyEnd - 2);
            MetricValue value;
            if (!parseFrameValue(kind, line.substr(keyEnd + 1), value)) return false;
            row.set(key, value);
        }
        rows.emplace_back(index, std::move(row));
        buffer.erase(0, pos);
        if (onRowParsed) onRowParsed(index);
    }
}

}  // namespace tcplp::scenario
