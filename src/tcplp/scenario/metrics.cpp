#include "tcplp/scenario/metrics.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace tcplp::scenario {

double MetricValue::number() const {
    switch (kind_) {
        case Kind::kInt: return double(i_);
        case Kind::kUint: return double(u_);
        case Kind::kDouble: return d_;
        case Kind::kBool: return b_ ? 1.0 : 0.0;
        case Kind::kString: return 0.0;
    }
    return 0.0;
}

bool MetricValue::operator==(const MetricValue& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
        case Kind::kInt: return i_ == o.i_;
        case Kind::kUint: return u_ == o.u_;
        case Kind::kDouble:
            // Bitwise comparison: the determinism tests compare rows that
            // crossed the worker pipe against rows computed in-process.
            return (std::isnan(d_) && std::isnan(o.d_)) || d_ == o.d_;
        case Kind::kBool: return b_ == o.b_;
        case Kind::kString: return s_ == o.s_;
    }
    return false;
}

MetricRow& MetricRow::set(const std::string& key, MetricValue value) {
    for (auto& [k, v] : fields_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    fields_.emplace_back(key, std::move(value));
    return *this;
}

const MetricValue* MetricRow::find(const std::string& key) const {
    for (const auto& [k, v] : fields_) {
        if (k == key) return &v;
    }
    return nullptr;
}

double MetricRow::number(const std::string& key, double fallback) const {
    const MetricValue* v = find(key);
    return v ? v->number() : fallback;
}

const std::string& MetricRow::str(const std::string& key) const {
    static const std::string kEmpty;
    const MetricValue* v = find(key);
    return v && v->kind() == MetricValue::Kind::kString ? v->asString() : kEmpty;
}

std::string formatDouble(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

namespace {
void appendEscaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}
}  // namespace

std::string toJsonLine(const MetricRow& row) {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : row.fields()) {
        if (!first) out += ',';
        first = false;
        appendEscaped(out, key);
        out += ':';
        switch (value.kind()) {
            case MetricValue::Kind::kInt:
                out += std::to_string(value.asInt());
                break;
            case MetricValue::Kind::kUint:
                out += std::to_string(value.asUint());
                break;
            case MetricValue::Kind::kDouble:
                out += formatDouble(value.asDouble());
                break;
            case MetricValue::Kind::kBool:
                out += value.asBool() ? "true" : "false";
                break;
            case MetricValue::Kind::kString:
                appendEscaped(out, value.asString());
                break;
        }
    }
    out += '}';
    return out;
}

bool writeJsonLines(const std::string& path, const std::vector<MetricRow>& rows) {
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    for (const MetricRow& row : rows) {
        const std::string line = toJsonLine(row);
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
    return true;
}

}  // namespace tcplp::scenario
