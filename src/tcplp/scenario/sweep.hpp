// Sharded parallel sweep runner.
//
// A sweep expands a ScenarioDef's axis grid × seed list into run points and
// executes every point, either serially in-process (`jobs == 1`) or sharded
// round-robin across `jobs` forked worker processes, each streaming its
// finished rows back over a pipe. The parent reassembles rows in grid order,
// so the merged output is byte-identical to the serial run — a worker's
// identity never reaches a row, and each point's RNG stream is keyed on its
// grid position (sim::Rng::deriveStream), never on the worker that ran it.
//
// Determinism contract (pinned by tests/test_scenario_sweep.cpp):
//   jsonLines(runSweep(def, {jobs: N})) == jsonLines(runSweep(def, {jobs: 1}))
// for every N, byte for byte.
#pragma once

#include "tcplp/scenario/registry.hpp"
#include "tcplp/scenario/shard.hpp"

namespace tcplp::scenario {

struct SweepOptions {
    int jobs = 1;  // <=1: serial in-process
    /// Non-empty: replaces the def's seed list (the CLI's --seeds).
    std::vector<std::uint64_t> seedOverride{};
};

struct SweepResult {
    const ScenarioDef* def = nullptr;
    std::vector<RunRecord> records;  // grid order
    bool ok = false;
    std::string error;
    /// Every worker death, attributed to the run point it was executing
    /// (scenario name + grid point + stderr tail); error holds the first
    /// failure's rendered message.
    std::vector<ShardFailure> failures;

    /// Records whose point matches every (axis, value) pair.
    std::vector<const RunRecord*> select(
        std::initializer_list<std::pair<const char*, double>> match) const;
    const RunRecord* first(
        std::initializer_list<std::pair<const char*, double>> match) const;
    /// Mean of a numeric metric over the matching records (e.g. seed-mean
    /// at one axis point).
    double mean(const char* key,
                std::initializer_list<std::pair<const char*, double>> match) const;
    /// One JSON object per record, grid order, trailing newline each.
    std::string jsonLines() const;
};

/// Expands the def's grid (axes outermost in declaration order, seeds
/// innermost — the loop nesting of the pre-refactor drivers).
std::vector<Point> expandPoints(const ScenarioDef& def,
                                const std::vector<std::uint64_t>& seeds);

/// Executes one expanded run point: bind -> measure (or runScenario) ->
/// standard row prefix (scenario/index/seed/axes) + the measured fields.
/// Shared by runSweep and the cross-scenario Campaign.
MetricRow runPointRow(const ScenarioDef& def, const Point& point);

/// "scenario 'name' point 3/8 (hops=2, seed=1)" — used in diagnostics.
std::string describePoint(const ScenarioDef& def, const Point& point,
                          std::size_t totalPoints);

SweepResult runSweep(const ScenarioDef& def, const SweepOptions& options = {});

}  // namespace tcplp::scenario
