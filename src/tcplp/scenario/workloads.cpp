#include "tcplp/scenario/workloads.hpp"

#include <algorithm>
#include <functional>

#include "tcplp/app/bulk.hpp"
#include "tcplp/common/assert.hpp"
#include "tcplp/harness/pipe.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/scenario/chaos.hpp"

namespace tcplp::scenario {

tcp::TcpConfig moteTcpConfig(std::uint16_t mss, std::size_t segments) {
    tcp::TcpConfig c;
    c.mss = mss;
    c.sendBufferBytes = segments * mss;
    c.recvBufferBytes = segments * mss;
    return c;
}

tcp::TcpConfig serverTcpConfig(std::uint16_t mss) {
    tcp::TcpConfig c;
    c.mss = mss;
    c.sendBufferBytes = 16384;
    c.recvBufferBytes = 16384;
    return c;
}

std::uint16_t mssForFrames(std::size_t frames) {
    for (std::uint16_t mss = 1400; mss >= 16; --mss) {
        tcp::Segment seg;
        seg.timestamps = tcp::Timestamps{1, 2};
        seg.payload = patternBytes(0, mss);
        ip6::Packet p;
        p.src = ip6::Address::meshLocal(10);
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = seg.encode();
        if (lowpan::frameCountFor(p, 10, 1, phy::kMaxMacPayloadBytes) <= frames) return mss;
    }
    return 16;
}

std::uint16_t resolveMss(const WorkloadSpec& w) {
    if (w.mssFrames > 0) return mssForFrames(w.mssFrames);
    return w.mssBytes > 0 ? w.mssBytes : 462;
}

namespace {

/// ESP32-class high-rate link (the `link` axis): tens of Mb/s air rate,
/// Wi-Fi-style microsecond CSMA slots, a fast frame bus instead of the
/// 21 us/B mote SPI, 1.5 KiB frames, and a real (but finite) receive-memory
/// budget. The regime where BDP outgrows the 16-bit window.
void applyEsp32Preset(harness::TestbedConfig& cfg) {
    cfg.airBitsPerSecond = 24e6;
    cfg.busMicrosPerByte = 0.4;
    cfg.nodeDefaults.macConfig.backoffUnit = 9;  // Wi-Fi slot time
    cfg.nodeDefaults.macConfig.ccaTime = 4;
    cfg.nodeDefaults.macPayloadBudget = 1500;
    cfg.nodeDefaults.macConfig.maxPayloadBytes = 1500;
    cfg.nodeDefaults.tcpRecvBudgetBytes = 256 * 1024;
}

harness::TestbedConfig testbedConfigFor(const TopologySpec& t, std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.scheduler = t.scheduler;
    if (t.linkPreset == LinkPreset::kEsp32) applyEsp32Preset(cfg);
    if (t.macAggFrames) cfg.nodeDefaults.macConfig.aggFrames = *t.macAggFrames;
    if (t.tcpRecvBudgetBytes) cfg.nodeDefaults.tcpRecvBudgetBytes = *t.tcpRecvBudgetBytes;
    cfg.linkLoss = t.linkLoss;
    cfg.nodeSpacingMeters = t.spacingMeters;
    cfg.radioRangeMeters = t.rangeMeters;
    if (t.wiredOneWayDelay) cfg.wiredOneWayDelay = *t.wiredOneWayDelay;
    if (t.retryDelayMax) cfg.nodeDefaults.macConfig.retryDelayMax = *t.retryDelayMax;
    if (t.queueCapacityPackets)
        cfg.nodeDefaults.queueConfig.capacityPackets = *t.queueCapacityPackets;
    if (t.softwareCsma) cfg.nodeDefaults.macConfig.softwareCsma = *t.softwareCsma;
    if (t.maxFrameRetries) cfg.nodeDefaults.macConfig.maxFrameRetries = *t.maxFrameRetries;
    if (t.macPayloadBudget) cfg.nodeDefaults.macPayloadBudget = *t.macPayloadBudget;
    if (t.txProcessingDelay) cfg.nodeDefaults.txProcessingDelay = *t.txProcessingDelay;
    if (t.perHopReassembly) cfg.nodeDefaults.perHopReassembly = true;
    cfg.selfHealing = t.selfHealing;
    if (t.probeInterval) cfg.neighborDefaults.probeInterval = *t.probeInterval;
    if (t.redQueue) cfg.nodeDefaults.queueConfig.discipline = ip6::QueueDiscipline::kRed;
    if (t.ecnMarking) cfg.nodeDefaults.queueConfig.ecnMarking = true;
    return cfg;
}

/// Applies the workload's high-BDP knobs (RFC 7323 scaling, static buffer
/// override, receive autotuning) to a sender/receiver config pair.
/// `nodeBudgetBytes` is the receiving node's NodeConfig::tcpRecvBudgetBytes;
/// when set it clamps the workload-requested autotune budget. All three
/// knobs default off, leaving every legacy config byte-identical.
void applyHighBdp(const WorkloadSpec& w, tcp::TcpConfig& sender,
                  tcp::TcpConfig& receiver, std::size_t nodeBudgetBytes) {
    if (w.bdpBufferBytes > 0) {
        sender.sendBufferBytes = w.bdpBufferBytes;
        // With autotuning the receive buffer starts at its profile size and
        // earns its way up; without it the override opens it statically.
        if (w.recvAutotuneBudgetBytes == 0) receiver.recvBufferBytes = w.bdpBufferBytes;
    }
    if (w.windowScaling) sender.windowScaling = receiver.windowScaling = true;
    if (w.recvAutotuneBudgetBytes > 0) {
        std::size_t budget = w.recvAutotuneBudgetBytes;
        if (nodeBudgetBytes > 0) budget = std::min(budget, nodeBudgetBytes);
        receiver.recvBufferMaxBytes = budget;
    }
}

/// Streams the cwnd tracer's samples into the summary stats CcDynamics
/// wants. Installed only when TopologySpec::ccMetrics, chained after any
/// user-supplied tracer so the Fig. 7 escape hatch keeps working.
struct CwndProbe {
    std::uint32_t min = 0, max = 0;
    double sum = 0.0;
    std::uint64_t count = 0;

    void sample(std::uint32_t cwnd) {
        if (count == 0 || cwnd < min) min = cwnd;
        if (cwnd > max) max = cwnd;
        sum += double(cwnd);
        ++count;
    }

    /// Installs the probe on `s`, wrapping (and preserving) `inner`.
    void attach(tcp::TcpSocket& s, tcp::TcpSocket::CwndTracer inner) {
        s.setCwndTracer([this, inner = std::move(inner)](
                            sim::Time now, std::uint32_t cwnd, std::uint32_t ssthresh) {
            sample(cwnd);
            if (inner) inner(now, cwnd, ssthresh);
        });
    }

    /// Folds the probe's samples and the socket's final CC state into the
    /// row-facing summary. A run with no trace events (no cwnd change ever)
    /// degenerates to the socket's final window.
    CcDynamics finish(const tcp::TcpSocket& s) const {
        CcDynamics d;
        const std::uint32_t cwnd = s.tcb().cwnd;
        d.cwndMin = count ? min : cwnd;
        d.cwndMax = count ? max : cwnd;
        d.cwndMean = count ? sum / double(count) : double(cwnd);
        d.ssthreshFinal = s.tcb().ssthresh;
        d.lossCuts = s.ccStats().lossCuts;
        d.cutsSkipped = s.ccStats().cutsSkipped;
        return d;
    }
};

double jainIndex(const std::vector<double>& xs) {
    double sum = 0.0, sumSq = 0.0;
    for (double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0) return 0.0;
    return sum * sum / (double(xs.size()) * sumSq);
}

}  // namespace

mesh::Node& senderMote(harness::Testbed& tb, const TopologySpec& t) {
    switch (t.kind) {
        case TopologyKind::kLine: return *tb.findNode(phy::NodeId(9 + t.hops));
        case TopologyKind::kPair: return tb.node(0);
        case TopologyKind::kGrid:
        case TopologyKind::kStar: return *tb.findNode(phy::NodeId(t.nodes));
        case TopologyKind::kOffice: return *tb.findNode(15);
        default: TCPLP_ASSERT(false && "no mote endpoint for this topology");
    }
    return tb.node(0);
}

ScenarioSpec officeMultiflowSpec(sim::Time duration) {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kOffice;
    s.topology.retryDelayMax = sim::fromMillis(40);  // §7.1 fix
    s.topology.queueCapacityPackets = 16;
    s.workload.kind = WorkloadKind::kMultiFlow;
    s.workload.multiFlowDuration = duration;
    // Sensors 12/14 stream up; 13/15 receive bulk downlink (3-5 hops out).
    // Saturating transfers: all four flows contend for the full window.
    s.workload.flows = {
        {12, true, 2000000}, {13, false, 2000000}, {14, true, 2000000}, {15, false, 2000000}};
    return s;
}

ScenarioSpec grid200DenseSpec(sim::Time duration) {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kGrid;
    s.topology.nodes = 200;
    s.topology.retryDelayMax = sim::fromMillis(40);  // §7.1 fix
    s.topology.queueCapacityPackets = 24;
    s.workload.kind = WorkloadKind::kMultiFlow;
    s.workload.multiFlowDuration = duration;
    // Flow endpoints spread across the grid (ids 2..200, 15 columns):
    // near, mid and far nodes, alternating direction, all saturating.
    s.workload.flows = {{31, true, 2000000},  {61, false, 2000000}, {91, true, 2000000},
                        {121, false, 2000000}, {151, true, 2000000}, {181, false, 2000000}};
    return s;
}

ScenarioSpec cityScaleSpec(sim::Time duration, std::size_t nodes) {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kGrid;
    s.topology.nodes = nodes;
    s.topology.retryDelayMax = sim::fromMillis(40);  // §7.1 fix
    s.topology.queueCapacityPackets = 24;
    s.topology.datapathCounters = true;
    s.workload.kind = WorkloadKind::kMultiFlow;
    s.workload.multiFlowDuration = duration;
    // 24 saturating flows, endpoints spread evenly across the grid interior
    // (ids 2..nodes), alternating direction — dozens of concurrent TCP
    // connections criss-crossing a four-digit-node mesh on one core.
    for (std::size_t i = 0; i < 24; ++i) {
        FlowSpec f;
        f.node = phy::NodeId(2 + (i * (nodes - 2)) / 24);
        f.uplink = (i % 2) == 0;
        f.totalBytes = 2000000;
        s.workload.flows.push_back(f);
    }
    return s;
}

std::unique_ptr<harness::Testbed> buildTestbed(const TopologySpec& t,
                                               std::uint64_t seed) {
    const harness::TestbedConfig cfg = testbedConfigFor(t, seed);
    std::unique_ptr<harness::Testbed> tb;
    switch (t.kind) {
        case TopologyKind::kPair: tb = harness::Testbed::pair(cfg); break;
        case TopologyKind::kLine: tb = harness::Testbed::line(t.hops, cfg); break;
        case TopologyKind::kOffice: tb = harness::Testbed::office(cfg); break;
        case TopologyKind::kGrid: tb = harness::Testbed::grid(t.nodes, cfg); break;
        case TopologyKind::kStar: tb = harness::Testbed::star(t.nodes, cfg); break;
        case TopologyKind::kSleepyLeaf:
        case TopologyKind::kPipe:
            TCPLP_ASSERT(false && "topology built by its workload runner");
    }
    if (tb != nullptr && t.legacyDatapath) {
        // Pre-PR engine, for A/B speedup rows: seed-era linear-scan delivery
        // and every frame allocation straight from the heap. RNG-neutral —
        // see TopologySpec::legacyDatapath.
        tb->channel().setDeliveryMode(phy::Channel::DeliveryMode::kLinearScan);
        tb->simulator().framePool().uninstall();
    }
    return tb;
}

MeshRouteTotals meshRouteTotals(const harness::Testbed& tb) {
    MeshRouteTotals m;
    for (std::size_t i = 0; i < tb.nodeCount(); ++i) {
        const mesh::NodeStats& s = tb.node(i).stats();
        m.noRouteDrops += s.noRouteDrops;
        m.forwardDrops += s.forwardDrops;
        m.reroutes += s.reroutes;
        m.failbacks += s.failbacks;
        m.blackholeDrops += s.blackholeDrops;
    }
    return m;
}

BulkRunResult runBulk(const ScenarioSpec& spec, std::uint64_t seed) {
    const TopologySpec& t = spec.topology;
    const WorkloadSpec& w = spec.workload;
    auto tb = buildTestbed(t, seed);
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);
    const std::uint16_t mss = resolveMss(w);

    const bool pair = t.kind == TopologyKind::kPair;
    mesh::Node& mote = senderMote(*tb, t);
    mesh::Node& peer = pair ? tb->node(1) : tb->cloud();
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack peerStack(peer);

    app::GoodputMeter meter(tb->simulator());
    tcp::TcpStack& senderStack = w.uplink || pair ? moteStack : peerStack;
    tcp::TcpStack& receiverStack = w.uplink || pair ? peerStack : moteStack;
    tcp::TcpConfig senderCfg, receiverCfg;
    if (pair) {
        // §6.3 node-to-node: mote profiles on both ends, receiver window
        // independently sized.
        senderCfg = moteTcpConfig(mss, w.windowSegments);
        receiverCfg = moteTcpConfig(
            mss, w.recvWindowSegments ? w.recvWindowSegments : w.windowSegments);
    } else {
        senderCfg = w.uplink ? moteTcpConfig(mss, w.windowSegments) : serverTcpConfig(mss);
        receiverCfg = w.uplink ? serverTcpConfig(mss) : moteTcpConfig(mss, w.windowSegments);
    }
    for (tcp::TcpConfig* c : {&senderCfg, &receiverCfg}) {
        c->sack = w.sack;
        c->delayedAck = w.delayedAck;
        c->timestamps = w.timestamps;
        c->dropOutOfOrder = w.dropOutOfOrder;
        c->ecn = w.ecn;
        c->cc = w.cc;
    }
    mesh::Node& receiverNode = w.uplink || pair ? peer : mote;
    applyHighBdp(w, senderCfg, receiverCfg, receiverNode.config().tcpRecvBudgetBytes);

    receiverStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& sender = senderStack.createSocket(senderCfg);
    CwndProbe probe;
    if (t.ccMetrics) {
        probe.attach(sender, w.cwndTracer);
    } else if (w.cwndTracer) {
        sender.setCwndTracer(w.cwndTracer);
    }
    app::BulkSender bulk(sender, w.totalBytes);
    const ip6::Address dst = w.uplink || pair ? peer.address() : mote.address();
    sender.connect(dst, 80);
    tb->simulator().runUntil(w.timeLimit);

    BulkRunResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.contentOk = meter.contentOk();
    r.rttMedianMs = sender.stats().rttSamples.median();
    r.framesTransmitted = tb->channel().framesTransmitted();
    r.timeouts = sender.stats().timeouts;
    r.fastRetransmissions = sender.stats().fastRetransmissions;
    const auto sent = sender.stats().segsSent;
    const auto rexmit = sender.stats().retransmissions;
    r.segmentLoss = sent > 0 ? double(rexmit) / double(sent) : 0.0;
    r.mesh = meshRouteTotals(*tb);
    if (t.ccMetrics) r.cc = probe.finish(sender);
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

SleepyRunResult runSleepyBulk(const ScenarioSpec& spec, std::uint64_t seed) {
    const WorkloadSpec& w = spec.workload;
    // Appendix C rig: one duty-cycled leaf on the border router. Built
    // inline (not via buildTestbed) because the leaf's sleepy policy is a
    // workload knob; construction order matches the pre-refactor path.
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.scheduler = spec.topology.scheduler;
    auto tb = std::make_unique<harness::Testbed>(cfg);

    mesh::NodeConfig rc = cfg.nodeDefaults;
    tb->addBorderRouterAndCloud(1, {0.0, 0.0}, rc);

    mesh::NodeConfig lc = cfg.nodeDefaults;
    lc.role = mesh::Role::kLeaf;
    lc.sleepyConfig = w.sleepy;
    lc.macConfig.sleepDuringRetryDelay = true;
    mesh::Node& leaf = tb->addNode(10, {10.0, 0.0}, lc);
    leaf.setParent(1);
    tb->borderRouter().adoptSleepyChild(10);
    tb->borderRouter().addRoute(10, 10);
    leaf.start();
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);

    const std::uint16_t mss = resolveMss(w);
    tcp::TcpStack leafStack(leaf);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    tcp::TcpStack& senderStack = w.uplink ? leafStack : cloudStack;
    tcp::TcpStack& receiverStack = w.uplink ? cloudStack : leafStack;
    tcp::TcpConfig senderCfg =
        w.uplink ? moteTcpConfig(mss, w.windowSegments) : serverTcpConfig(mss);
    tcp::TcpConfig receiverCfg =
        w.uplink ? serverTcpConfig(mss) : moteTcpConfig(mss, w.windowSegments);
    senderCfg.cc = receiverCfg.cc = w.cc;

    receiverStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& sender = senderStack.createSocket(senderCfg);
    app::BulkSender bulk(sender, w.totalBytes);
    sender.connect(w.uplink ? tb->cloud().address() : leaf.address(), 80);
    tb->simulator().runUntil(w.timeLimit);

    SleepyRunResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.rttMs = sender.stats().rttSamples;

    if (w.idleTail > 0) {
        phy::Radio* radio = leaf.radio();
        radio->energy().resetWindow(radio->state(), tb->simulator().now());
        tb->simulator().runUntil(tb->simulator().now() + w.idleTail);
        r.idleRadioDc =
            radio->energy().radioDutyCycle(radio->state(), tb->simulator().now());
    }
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

TwoFlowResult runTwoFlow(const ScenarioSpec& spec, std::uint64_t seed) {
    const TopologySpec& t = spec.topology;
    const WorkloadSpec& w = spec.workload;
    const std::size_t hops = t.hops;
    auto tb = buildTestbed(t, seed);
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);

    // Second source: a sibling of the last node, attached to the same relay
    // (or to the border router for one hop) — the Appendix A setup.
    const phy::NodeId firstSrc = phy::NodeId(9 + hops);
    const phy::NodeId attach = hops == 1 ? 1 : phy::NodeId(9 + hops - 1);
    mesh::NodeConfig nc = testbedConfigFor(t, seed).nodeDefaults;
    nc.role = mesh::Role::kRouter;
    mesh::Node* relay = tb->findNode(attach);
    mesh::Node& second =
        tb->addNode(99, {relay->radio()->position().x + 8.0,
                         relay->radio()->position().y + 6.0},
                    nc);
    second.setDefaultRoute(attach);
    relay->addRoute(99, 99);
    tb->borderRouter().addRoute(99, hops == 1 ? phy::NodeId(99) : phy::NodeId(10));
    for (std::size_t i = 1; i + 1 < hops; ++i)
        tb->findNode(phy::NodeId(9 + i))->addRoute(99, phy::NodeId(9 + i + 1));
    if (hops > 1) tb->findNode(attach)->addRoute(99, 99);

    const std::uint16_t mss = resolveMss(w);
    tcp::TcpConfig moteCfg = moteTcpConfig(mss, w.windowSegments);
    moteCfg.ecn = w.ecn;
    moteCfg.cc = w.cc;
    tcp::TcpConfig servCfg = serverTcpConfig(mss);
    servCfg.ecn = w.ecn;
    servCfg.cc = w.cc;

    tcp::TcpStack stackA(*tb->findNode(firstSrc));
    tcp::TcpStack stackB(second);
    tcp::TcpStack cloud(tb->cloud());

    app::GoodputMeter meterA(tb->simulator()), meterB(tb->simulator());
    cloud.listen(80, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterA.onData(d); });
    });
    cloud.listen(81, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meterB.onData(d); });
    });

    tcp::TcpSocket& a = stackA.createSocket(moteCfg);
    tcp::TcpSocket& b = stackB.createSocket(moteCfg);
    CwndProbe probeA, probeB;
    if (t.ccMetrics) {
        probeA.attach(a, {});
        probeB.attach(b, {});
    }
    app::BulkSender sendA(a, w.totalBytes);
    app::BulkSender sendB(b, w.totalBytes);
    a.connect(tb->cloud().address(), 80);
    b.connect(tb->cloud().address(), 81);
    tb->simulator().runUntil(w.timeLimit);

    TwoFlowResult r;
    const double secs = sim::toSeconds(w.timeLimit);
    r.goodputA = double(meterA.bytes()) * 8.0 / 1000.0 / secs;
    r.goodputB = double(meterB.bytes()) * 8.0 / 1000.0 / secs;
    r.rttA = a.stats().rttSamples.median();
    r.rttB = b.stats().rttSamples.median();
    r.lossA = a.stats().segsSent ? 100.0 * double(a.stats().retransmissions) /
                                       double(a.stats().segsSent)
                                 : 0.0;
    r.lossB = b.stats().segsSent ? 100.0 * double(b.stats().retransmissions) /
                                       double(b.stats().segsSent)
                                 : 0.0;
    if (t.ccMetrics) {
        r.ccA = probeA.finish(a);
        r.ccB = probeB.finish(b);
    }
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

MultiFlowResult runMultiFlow(const ScenarioSpec& spec, std::uint64_t seed) {
    const WorkloadSpec& w = spec.workload;
    TCPLP_ASSERT(!w.flows.empty() && "kMultiFlow needs explicit FlowSpecs");
    // Process-wide counter baselines (SmallFn / PacketBuffer statics), taken
    // before the testbed exists so the deltas cover the whole run.
    const std::uint64_t smallFnBase = sim::SmallFn::heapFallbacks();
    const std::uint64_t prependBase = PacketBuffer::stats().prependFallbacks;
    auto tb = buildTestbed(spec.topology, seed);
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);
    const std::uint16_t mss = resolveMss(w);

    struct Rig {
        std::unique_ptr<tcp::TcpStack> moteStack;
        std::unique_ptr<app::GoodputMeter> meter;
        std::unique_ptr<app::BulkSender> bulk;
        tcp::TcpSocket* sender = nullptr;
    };
    tcp::TcpStack cloudStack(tb->cloud());
    std::vector<Rig> rigs;
    rigs.reserve(w.flows.size());

    for (std::size_t i = 0; i < w.flows.size(); ++i) {
        const FlowSpec& f = w.flows[i];
        mesh::Node* node = tb->findNode(f.node);
        TCPLP_ASSERT(node != nullptr && "FlowSpec names an unknown node");
        Rig rig;
        rig.moteStack = std::make_unique<tcp::TcpStack>(*node);
        rig.meter = std::make_unique<app::GoodputMeter>(tb->simulator());
        const std::uint16_t port = std::uint16_t(80 + i);
        tcp::TcpStack& senderStack = f.uplink ? *rig.moteStack : cloudStack;
        tcp::TcpStack& receiverStack = f.uplink ? cloudStack : *rig.moteStack;
        tcp::TcpConfig senderCfg =
            f.uplink ? moteTcpConfig(mss, w.windowSegments) : serverTcpConfig(mss);
        tcp::TcpConfig receiverCfg =
            f.uplink ? serverTcpConfig(mss) : moteTcpConfig(mss, w.windowSegments);
        senderCfg.cc = receiverCfg.cc = w.cc;
        app::GoodputMeter* meter = rig.meter.get();
        receiverStack.listen(port, receiverCfg, [meter](tcp::TcpSocket& s) {
            s.setOnData([meter](BytesView d) { meter->onData(d); });
            s.setOnPeerFin([&s] { s.close(); });
        });
        rig.sender = &senderStack.createSocket(senderCfg);
        rig.bulk = std::make_unique<app::BulkSender>(*rig.sender, f.totalBytes);
        const ip6::Address dst = f.uplink ? tb->cloud().address() : node->address();
        rig.sender->connect(dst, port);
        rigs.push_back(std::move(rig));
    }

    tb->simulator().runUntil(w.multiFlowDuration);

    MultiFlowResult r;
    const double secs = sim::toSeconds(w.multiFlowDuration);
    std::vector<double> goodputs;
    for (std::size_t i = 0; i < w.flows.size(); ++i) {
        MultiFlowResult::Flow flow;
        flow.node = w.flows[i].node;
        flow.uplink = w.flows[i].uplink;
        flow.goodputKbps = double(rigs[i].meter->bytes()) * 8.0 / 1000.0 / secs;
        flow.rttMedianMs = rigs[i].sender->stats().rttSamples.median();
        r.aggregateKbps += flow.goodputKbps;
        goodputs.push_back(flow.goodputKbps);
        r.flows.push_back(flow);
    }
    r.jainFairness = jainIndex(goodputs);
    r.framesTransmitted = tb->channel().framesTransmitted();
    r.listenerVisits = tb->channel().channelStats().listenerVisits;
    const SlabPoolStats& pool = tb->simulator().framePool().stats();
    r.datapath.poolRecycled = pool.recycled;
    r.datapath.poolFresh = pool.fresh;
    r.datapath.poolBytesRecycled = pool.bytesRecycled;
    r.datapath.poolBytesFresh = pool.bytesFresh;
    r.datapath.smallFnHeapFallbacks = sim::SmallFn::heapFallbacks() - smallFnBase;
    r.datapath.prependFallbacks = PacketBuffer::stats().prependFallbacks - prependBase;
    r.datapath.neighborRebuilds = tb->channel().channelStats().neighborRebuilds;
    r.datapath.neighborRevalidations = tb->channel().channelStats().neighborRevalidations;
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

BulkRunResult runEmbeddedBulk(const ScenarioSpec& spec, std::uint64_t seed) {
    const TopologySpec& t = spec.topology;
    const WorkloadSpec& w = spec.workload;
    auto tb = buildTestbed(t, seed);
    if (w.deliveryTap) tb->channel().setDeliveryTap(w.deliveryTap);

    mesh::Node& mote = *tb->findNode(phy::NodeId(9 + t.hops));
    transport::EmbeddedTcpConfig ec;
    ec.profile = w.embeddedProfile;
    ec.mss = w.embeddedMss;
    transport::EmbeddedTcpSocket client(mote, ec);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    cloudStack.listen(80, serverTcpConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
    });
    app::EmbeddedBulkSender sender(client, w.totalBytes);
    client.connect(tb->cloud().address(), 80);
    // The stop-and-wait stack has no send-space callback; poll it.
    std::function<void()> poll = [&] {
        sender.pump();
        if (sender.offered() < w.totalBytes || client.backlog() > 0)
            tb->simulator().schedule(sim::kSecond, poll);
    };
    tb->simulator().schedule(sim::kSecond, poll);
    tb->simulator().runUntil(w.timeLimit);

    BulkRunResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.contentOk = meter.contentOk();
    r.framesTransmitted = tb->channel().framesTransmitted();
    r.mesh = meshRouteTotals(*tb);
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

PipeRunResult runPipeBulk(const ScenarioSpec& spec, std::uint64_t seed) {
    const TopologySpec& t = spec.topology;
    const WorkloadSpec& w = spec.workload;
    sim::Simulator simulator(sim::SimConfig{seed, t.scheduler});
    harness::PipeConfig pc;
    pc.oneWayDelay = t.pipeOneWayDelay;
    pc.bandwidthBps = t.pipeBandwidthBps;
    pc.lossAtoB = t.pipeLossForward;
    pc.lossBtoA = t.pipeLossReverse;
    harness::Pipe pipe(simulator, pc);
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    app::GoodputMeter meter(simulator);
    tcp::TcpConfig clientCfg = moteTcpConfig();
    tcp::TcpConfig servCfg = serverTcpConfig();
    // Legacy pipe runs ignore the MSS knobs (the §8 model pins 462); an
    // explicit mssBytes with the frame-count sweep disabled opts in — the
    // bdp sweeps use wire-sized segments to keep event counts sane.
    if (w.mssFrames == 0 && w.mssBytes > 0) {
        clientCfg = moteTcpConfig(w.mssBytes);
        servCfg = serverTcpConfig(w.mssBytes);
    }
    // No mesh node behind a pipe endpoint: the workload budget applies
    // unclamped (the bdp scenarios model an unconstrained wired receiver).
    applyHighBdp(w, clientCfg, servCfg, 0);
    serverStack.listen(80, servCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = clientStack.createSocket(clientCfg);
    app::BulkSender sender(client, w.totalBytes);
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(w.timeLimit);

    PipeRunResult r;
    r.goodputKbps = meter.goodputKbps();
    r.rttSeconds = client.stats().rttSamples.median() / 1000.0;
    const auto sent = client.stats().segsSent;
    r.lossMeasured = sent ? double(client.stats().retransmissions) / double(sent) : 0.0;
    r.rngDigest = simulator.rng().stateDigest();
    return r;
}

harness::AnemometerResult runAnemometerSpec(const ScenarioSpec& spec,
                                            std::uint64_t seed) {
    harness::AnemometerOptions o = spec.workload.anemometer;
    o.seed = seed;
    o.scheduler = spec.topology.scheduler;
    o.cc = spec.workload.cc;
    if (spec.workload.deliveryTap) o.deliveryTap = spec.workload.deliveryTap;
    return harness::runAnemometer(o);
}

MetricRow runScenario(const ScenarioSpec& spec, std::uint64_t seed) {
    MetricRow row;
    // Chaos scenarios route their bulk workload through the fault-aware
    // runner even at the fault=0 baseline, so every row of the `fault` axis
    // shares the chaos schema (reconnects, recover_s, ...).
    if (spec.fault.chaos && spec.workload.kind == WorkloadKind::kBulk &&
        spec.topology.kind != TopologyKind::kPipe) {
        return chaosBulkRow(spec, seed);
    }
    if (spec.topology.kind == TopologyKind::kPipe) {
        const PipeRunResult r = runPipeBulk(spec, seed);
        row.set("goodput_kbps", r.goodputKbps)
            .set("rtt_s", r.rttSeconds)
            .set("loss_measured", r.lossMeasured)
            .set("rng_digest", r.rngDigest);
        return row;
    }
    switch (spec.workload.kind) {
        case WorkloadKind::kBulk:
        case WorkloadKind::kEmbeddedBulk: {
            const BulkRunResult r = spec.workload.kind == WorkloadKind::kBulk
                                        ? runBulk(spec, seed)
                                        : runEmbeddedBulk(spec, seed);
            row.set("goodput_kbps", r.goodputKbps)
                .set("rtt_median_ms", r.rttMedianMs)
                .set("segment_loss", r.segmentLoss)
                .set("frames_tx", r.framesTransmitted)
                .set("timeouts", r.timeouts)
                .set("fast_rexmits", r.fastRetransmissions)
                .set("bytes", r.bytes)
                .set("content_ok", r.contentOk);
            // Routing-repair keys exist only under self-healing, so legacy
            // scenario rows (and their golden artifacts) are unchanged.
            if (spec.topology.selfHealing) {
                row.set("no_route_drops", r.mesh.noRouteDrops)
                    .set("forward_drops", r.mesh.forwardDrops)
                    .set("reroutes", r.mesh.reroutes)
                    .set("failbacks", r.mesh.failbacks)
                    .set("blackhole_drops", r.mesh.blackholeDrops);
            }
            // CC-dynamics keys exist only when the spec opts in, so legacy
            // scenario rows (and their golden artifacts) are unchanged.
            if (spec.topology.ccMetrics) {
                row.set("cc_name", tcp::ccName(spec.workload.cc))
                    .set("cwnd_min", std::uint64_t(r.cc.cwndMin))
                    .set("cwnd_max", std::uint64_t(r.cc.cwndMax))
                    .set("cwnd_mean", r.cc.cwndMean)
                    .set("ssthresh_final", std::uint64_t(r.cc.ssthreshFinal))
                    .set("loss_cuts", r.cc.lossCuts)
                    .set("cuts_skipped", r.cc.cutsSkipped);
            }
            row.set("rng_digest", r.rngDigest);
            break;
        }
        case WorkloadKind::kTwoFlow: {
            const TwoFlowResult r = runTwoFlow(spec, seed);
            const double fairness = std::min(r.goodputA, r.goodputB) /
                                    std::max(1e-9, std::max(r.goodputA, r.goodputB));
            row.set("goodput_a_kbps", r.goodputA)
                .set("goodput_b_kbps", r.goodputB)
                .set("fairness", fairness)
                .set("rtt_a_ms", r.rttA)
                .set("rtt_b_ms", r.rttB)
                .set("rexmit_a_pct", r.lossA)
                .set("rexmit_b_pct", r.lossB);
            if (spec.topology.ccMetrics) {
                row.set("cc_name", tcp::ccName(spec.workload.cc));
                const struct {
                    const char* suffix;
                    const CcDynamics* d;
                } sides[] = {{"_a", &r.ccA}, {"_b", &r.ccB}};
                for (const auto& side : sides) {
                    const std::string s = side.suffix;
                    row.set("cwnd_min" + s, std::uint64_t(side.d->cwndMin))
                        .set("cwnd_max" + s, std::uint64_t(side.d->cwndMax))
                        .set("cwnd_mean" + s, side.d->cwndMean)
                        .set("ssthresh_final" + s, std::uint64_t(side.d->ssthreshFinal))
                        .set("loss_cuts" + s, side.d->lossCuts)
                        .set("cuts_skipped" + s, side.d->cutsSkipped);
                }
            }
            row.set("rng_digest", r.rngDigest);
            break;
        }
        case WorkloadKind::kMultiFlow: {
            const MultiFlowResult r = runMultiFlow(spec, seed);
            for (std::size_t i = 0; i < r.flows.size(); ++i) {
                const std::string p = "flow" + std::to_string(i);
                row.set(p + "_node", std::uint64_t(r.flows[i].node))
                    .set(p + "_dir", r.flows[i].uplink ? "up" : "down")
                    .set(p + "_kbps", r.flows[i].goodputKbps)
                    .set(p + "_rtt_ms", r.flows[i].rttMedianMs);
            }
            row.set("aggregate_kbps", r.aggregateKbps)
                .set("jain_fairness", r.jainFairness)
                .set("frames_tx", r.framesTransmitted)
                .set("listener_visits", r.listenerVisits);
            // Datapath keys exist only when the spec opts in, so legacy
            // scenario rows (and their golden artifacts) are unchanged.
            if (spec.topology.datapathCounters) {
                const DatapathCounters& d = r.datapath;
                row.set("pool_recycled", d.poolRecycled)
                    .set("pool_fresh", d.poolFresh)
                    .set("pool_bytes_recycled", d.poolBytesRecycled)
                    .set("pool_bytes_fresh", d.poolBytesFresh)
                    .set("smallfn_heap_fallbacks", d.smallFnHeapFallbacks)
                    .set("prepend_fallbacks", d.prependFallbacks)
                    .set("neighbor_rebuilds", d.neighborRebuilds)
                    .set("neighbor_revalidations", d.neighborRevalidations);
            }
            row.set("rng_digest", r.rngDigest);
            break;
        }
        case WorkloadKind::kSleepyBulk: {
            const SleepyRunResult r = runSleepyBulk(spec, seed);
            row.set("goodput_kbps", r.goodputKbps)
                .set("bytes", r.bytes)
                .set("rtt_n", r.rttMs.count())
                .set("rtt_median_ms", r.rttMs.median())
                .set("rtt_p10_ms", r.rttMs.percentile(10))
                .set("rtt_p90_ms", r.rttMs.percentile(90))
                .set("rtt_max_ms", r.rttMs.max())
                .set("idle_radio_dc", r.idleRadioDc)
                .set("rng_digest", r.rngDigest);
            break;
        }
        case WorkloadKind::kAnemometer: {
            const harness::AnemometerResult r = runAnemometerSpec(spec, seed);
            row.set("generated", r.generated)
                .set("delivered", r.delivered)
                .set("reliability", r.reliability)
                .set("radio_dc", r.radioDutyCycle)
                .set("cpu_dc", r.cpuDutyCycle)
                .set("rexmits", r.transportRetransmissions)
                .set("tcp_rtos", r.tcpTimeouts)
                .set("rng_digest", r.rngDigest);
            if (!r.hourlyRadioDutyCycle.empty()) {
                std::string hourly;
                for (double v : r.hourlyRadioDutyCycle) {
                    if (!hourly.empty()) hourly += ',';
                    hourly += formatDouble(v);
                }
                row.set("hourly_radio_dc", hourly);
            }
            break;
        }
    }
    return row;
}

}  // namespace tcplp::scenario
