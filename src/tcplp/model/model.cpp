// Anchor translation unit for the model library.
