// Analytical models from the paper.
//
//  * Equation 1 (§8): the classic Mathis et al. macroscopic model,
//        B = MSS/RTT * sqrt(3/(2p)),
//    which assumes cwnd is loss-limited — the assumption §7.3 shows fails
//    in LLNs.
//  * Equation 2 (§8, derived in Appendix B): the paper's LLN model,
//        B = MSS/RTT * 1/(1/w + 2p),
//    where w is the window size in segments (sized to the BDP) and p the
//    segment loss rate. Robustness to small p comes from the 1/w term.
//  * §6.4's single-hop goodput upper bound and §7.2's 1/min(h,3) multihop
//    scheduling bound.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace tcplp::model {

/// Equation 1 (Mathis): goodput in bytes/second.
inline double mathisGoodput(double mssBytes, double rttSeconds, double lossRate) {
    if (rttSeconds <= 0.0 || lossRate <= 0.0) return 0.0;
    return mssBytes / rttSeconds * std::sqrt(3.0 / (2.0 * lossRate));
}

/// Equation 2 (paper): goodput in bytes/second, window `w` in segments.
inline double llnGoodput(double mssBytes, double rttSeconds, double lossRate, double w) {
    if (rttSeconds <= 0.0 || w <= 0.0) return 0.0;
    return mssBytes / rttSeconds * (1.0 / (1.0 / w + 2.0 * lossRate));
}

/// Appendix B, Equation 3 (pre-simplification): burst-based derivation with
/// recovery time trec and per-window loss probability pwin = w*p, b = 1/pwin.
inline double llnGoodputBurst(double mssBytes, double rttSeconds, double lossRate, double w,
                              double trecSeconds) {
    if (rttSeconds <= 0.0 || w <= 0.0) return 0.0;
    const double pwin = std::min(1.0, w * lossRate);
    if (pwin <= 0.0) return w * mssBytes / rttSeconds;
    const double b = 1.0 / pwin;
    return (w * b * mssBytes) / (b * rttSeconds + trecSeconds);
}

struct LinkTiming {
    double frameAirSeconds = 0.004256;     // 133 B at 250 kb/s
    double frameEffectiveSeconds = 0.0085; // incl. SPI overhead (§6.4)
};

/// §6.4 upper bound on single-hop TCP goodput in bytes/second:
/// segmentBytes of app data cost `framesPerSegment` effective frame times,
/// plus half a frame of delayed-ACK overhead per segment.
inline double singleHopUpperBound(double segmentBytes, double framesPerSegment,
                                  LinkTiming timing = {}) {
    const double perSegment =
        framesPerSegment * timing.frameEffectiveSeconds + 0.5 * timing.frameEffectiveSeconds;
    return segmentBytes / perSegment;
}

/// §7.2: radio scheduling limits h-hop bandwidth to B / min(h, 3).
inline double multihopFactor(std::size_t hops) {
    if (hops == 0) return 0.0;
    return 1.0 / double(std::min<std::size_t>(hops, 3));
}

/// Bandwidth-delay product in bytes (§6.2's ~1.6 KiB for one hop).
inline double bdpBytes(double bandwidthBitsPerSec, double rttSeconds) {
    return bandwidthBitsPerSec / 8.0 * rttSeconds;
}

}  // namespace tcplp::model
