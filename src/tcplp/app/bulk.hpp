// Bulk-transfer workloads for the throughput studies (§6, §7): a sender that
// keeps the TCP send buffer full of pattern bytes, and a receiver that
// verifies content and measures goodput.
#pragma once

#include <cstdint>

#include "tcplp/common/bytes.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/embedded_tcp.hpp"

namespace tcplp::app {

/// Saturating sender over full-scale TCP.
class BulkSender {
public:
    BulkSender(tcp::TcpSocket& socket, std::size_t totalBytes)
        : socket_(socket), total_(totalBytes) {
        socket_.setOnSendSpace([this] { pump(); });
        socket_.setOnConnected([this] { pump(); });
    }

    void pump() {
        while (offset_ < total_) {
            const std::size_t chunk = std::min<std::size_t>(512, total_ - offset_);
            std::uint8_t data[512];
            patternBytesInto(offset_, chunk, data);
            const std::size_t n = socket_.send(BytesView(data, chunk));
            if (n == 0) return;
            offset_ += n;
        }
        if (offset_ >= total_ && !closed_) {
            closed_ = true;
            socket_.close();
        }
    }

    std::size_t offered() const { return offset_; }

private:
    tcp::TcpSocket& socket_;
    std::size_t total_;
    std::size_t offset_ = 0;
    bool closed_ = false;
};

/// Saturating sender over the stop-and-wait embedded baselines.
class EmbeddedBulkSender {
public:
    EmbeddedBulkSender(transport::EmbeddedTcpSocket& socket, std::size_t totalBytes)
        : socket_(socket), total_(totalBytes) {
        socket_.setOnConnected([this] { pump(); });
    }

    /// Must be called periodically (the simple stack has no space callback).
    void pump() {
        while (offset_ < total_) {
            const std::size_t chunk = std::min<std::size_t>(256, total_ - offset_);
            std::uint8_t data[256];
            patternBytesInto(offset_, chunk, data);
            const std::size_t n = socket_.send(BytesView(data, chunk));
            if (n == 0) return;
            offset_ += n;
        }
    }

    std::size_t offered() const { return offset_; }

private:
    transport::EmbeddedTcpSocket& socket_;
    std::size_t total_;
    std::size_t offset_ = 0;
};

/// Receiver-side goodput meter: counts verified application bytes between
/// the first and last delivery.
class GoodputMeter {
public:
    explicit GoodputMeter(sim::Simulator& simulator) : simulator_(simulator) {}

    void onData(BytesView data) {
        if (bytes_ == 0) first_ = simulator_.now();
        contentOk_ = contentOk_ && matchesPattern(bytes_, data);
        bytes_ += data.size();
        last_ = simulator_.now();
    }

    std::size_t bytes() const { return bytes_; }
    bool contentOk() const { return contentOk_; }
    sim::Time firstAt() const { return first_; }
    sim::Time lastAt() const { return last_; }

    /// Goodput in kb/s over the delivery interval.
    double goodputKbps() const {
        const sim::Time span = last_ - first_;
        if (span <= 0) return 0.0;
        return double(bytes_) * 8.0 / 1000.0 / sim::toSeconds(span);
    }

private:
    sim::Simulator& simulator_;
    std::size_t bytes_ = 0;
    bool contentOk_ = true;
    sim::Time first_ = 0;
    sim::Time last_ = 0;
};

}  // namespace tcplp::app
