// Anemometer application (paper §3, §9).
//
// Each sensor node produces one 82-byte reading per second. Readings are
// buffered in an application-layer queue (64 readings for TCP, 104 for CoAP
// in the paper — the CoAP queue is deeper because TCP's send buffer holds
// another 40). A reading is lost only if this queue overflows while the
// transport is backed off — that is what "reliability" measures (§9.2).
//
// Two sending modes (§9.3): "no batching" pushes each reading to the
// transport immediately; "batching" waits until `batchThreshold` readings
// accumulate and drains the queue at once, amortizing radio wakeups.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "tcplp/coap/coap.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/tcp.hpp"

namespace tcplp::app {

constexpr std::size_t kReadingBytes = 82;

/// Builds one self-describing reading: [nodeId u16][seq u32][pattern fill].
Bytes makeReading(std::uint16_t nodeId, std::uint32_t seq);

struct SensorConfig {
    sim::Time sampleInterval = 1 * sim::kSecond;
    std::size_t queueCapacity = 64;    // readings (104 for CoAP per §9.2)
    bool batching = true;
    std::size_t batchThreshold = 64;   // readings per batch (§9.3)
    std::size_t coapBlockBytes = 410;  // ~5 frames, sized like TCP segments
};

struct SensorStats {
    std::uint64_t generated = 0;
    std::uint64_t queueDrops = 0;   // overflow: the only loss source for TCP
    std::uint64_t submitted = 0;    // handed to the transport
    std::uint64_t transportDrops = 0;  // CoAP gave up / UDP (unknowable) = 0
};

/// Application-layer reading queue.
class ReadingQueue {
public:
    explicit ReadingQueue(std::size_t capacity) : capacity_(capacity) {}

    bool push(Bytes reading) {
        if (queue_.size() >= capacity_) return false;
        queue_.push_back(std::move(reading));
        return true;
    }
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    Bytes pop() {
        Bytes r = std::move(queue_.front());
        queue_.pop_front();
        return r;
    }
    const Bytes& front() const { return queue_.front(); }

private:
    std::size_t capacity_;
    std::deque<Bytes> queue_;
};

/// Abstract transport adapter the sensor drives.
class SensorTransport {
public:
    virtual ~SensorTransport() = default;
    /// Try to move queued readings into the transport. Called on every new
    /// sample and whenever the transport reports progress.
    virtual void pump(ReadingQueue& queue, SensorStats& stats) = 0;
    /// Batching adapters should ignore the batch threshold from now on
    /// (sampling stopped; drain what remains).
    virtual void setFlushing(bool) {}
};

/// Periodic sampling loop: generate -> queue -> pump.
class SensorNode {
public:
    SensorNode(sim::Simulator& simulator, std::uint16_t nodeId, SensorTransport& transport,
               SensorConfig config = {});

    void start();
    /// Stops sampling and flushes partial batches through the transport.
    void stop();
    const SensorStats& stats() const { return stats_; }
    const SensorConfig& config() const { return config_; }
    ReadingQueue& queue() { return queue_; }
    /// Re-pump after transport progress (wired by the adapters).
    void kick() { transport_.pump(queue_, stats_); }

private:
    void sample();

    sim::Simulator& simulator_;
    std::uint16_t nodeId_;
    SensorTransport& transport_;
    SensorConfig config_;
    SensorStats stats_;
    ReadingQueue queue_;
    std::uint32_t nextSeq_ = 0;
    sim::EventHandle timer_;
    bool running_ = false;
};

/// TCP adapter: drains readings into the socket's send buffer. In batching
/// mode waits for a full batch, then hands the whole batch over zero-copy.
class TcpSensorTransport : public SensorTransport {
public:
    TcpSensorTransport(tcp::TcpSocket& socket, const SensorConfig& config)
        : socket_(&socket), config_(config) {}

    /// Swap in a fresh socket after a reconnect.
    void setSocket(tcp::TcpSocket& socket) { socket_ = &socket; }

    void pump(ReadingQueue& queue, SensorStats& stats) override;
    void setFlushing(bool f) override { flushing_ = f; }

private:
    tcp::TcpSocket* socket_;
    SensorConfig config_;
    bool flushing_ = false;
};

/// CoAP adapter: batching mode assembles blockwise batches whose packets
/// match TCP segment size (§9.3); per-reading mode sends one confirmable
/// POST per reading. A block whose exchange fails is lost (§9.4).
class CoapSensorTransport : public SensorTransport {
public:
    CoapSensorTransport(coap::CoapClient& client, const SensorConfig& config)
        : client_(client), config_(config) {}

    void pump(ReadingQueue& queue, SensorStats& stats) override;
    void setFlushing(bool f) override { flushing_ = f; }

private:
    coap::CoapClient& client_;
    SensorConfig config_;
    std::uint32_t nextBlockNum_ = 0;
    std::size_t inFlightBlocks_ = 0;
    bool flushing_ = false;
    // Continuation plumbing: completed exchanges re-pump the queue they
    // were drawn from (SensorNode owns both; their lifetime spans the run).
    ReadingQueue* queue_ = nullptr;
    SensorStats* stats_ = nullptr;
};

/// Unreliable adapter (§9.6): non-confirmable CoAP messages, no ARQ.
class UnreliableSensorTransport : public SensorTransport {
public:
    UnreliableSensorTransport(coap::CoapClient& client, const SensorConfig& config)
        : client_(client), config_(config) {}

    void pump(ReadingQueue& queue, SensorStats& stats) override;
    void setFlushing(bool f) override { flushing_ = f; }

private:
    void sendNextBlock();

    coap::CoapClient& client_;
    SensorConfig config_;
    bool flushing_ = false;
    bool sending_ = false;  // a paced batch drain is in progress
    ReadingQueue* queue_ = nullptr;
    SensorStats* stats_ = nullptr;
};

/// Server-side accounting: how many distinct readings arrived per node.
class ReadingCollector {
public:
    /// Feed a contiguous byte stream (TCP) — readings are fixed-size.
    void feedStream(BytesView data);
    /// Feed one message payload (CoAP/UDP) containing whole readings.
    void feedMessage(BytesView payload);

    std::uint64_t total() const { return total_; }
    std::uint64_t forNode(std::uint16_t nodeId) const {
        auto it = perNode_.find(nodeId);
        return it == perNode_.end() ? 0 : it->second;
    }

private:
    void consumeReading(BytesView reading);

    Bytes partial_;  // stream remainder smaller than one reading
    std::uint64_t total_ = 0;
    std::map<std::uint16_t, std::uint64_t> perNode_;
};

}  // namespace tcplp::app
