// App-level connection survival for the chaos workloads: a bulk sender that
// reconnects with deterministic exponential backoff when its connection
// fails, and a goodput meter that tolerates the resulting resumed sessions.
//
// The paper's deployment argument (§9) is that TCP's failure handling plus a
// thin application layer is enough for multi-week LLN lifetimes: when R2
// gives up on a dead path the application reopens the connection and resumes
// from its durable log. ReconnectingBulkSender models exactly that — resume
// offset is the acked high-water mark across all previous sessions (bytes
// the peer's TCP provably delivered; anything offered-but-unacked is re-sent
// on the new connection, so the receiver may see an overlapping prefix).
// Backoff draws no RNG: fault-injection policy must never perturb the
// simulation's own random stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "tcplp/common/bytes.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/tcp.hpp"

namespace tcplp::app {

/// Saturating pattern-byte sender that survives connection failures.
class ReconnectingBulkSender {
public:
    struct Policy {
        bool reconnect = true;
        sim::Time backoffInitial = 2 * sim::kSecond;
        sim::Time backoffMax = 30 * sim::kSecond;
        int maxReconnects = 8;
    };

    /// Fires just before each (re)connect with the absolute stream offset
    /// the new session resumes at — the receiver-side meter aligns its
    /// pattern check through this (the rigs run in one process, standing in
    /// for an app-level resume header).
    using SessionHook = std::function<void(std::size_t resumeOffset)>;

    ReconnectingBulkSender(tcp::TcpStack& stack, tcp::TcpConfig config,
                           ip6::Address dst, std::uint16_t port,
                           std::size_t totalBytes, Policy policy)
        : stack_(stack),
          config_(config),
          dst_(dst),
          port_(port),
          total_(totalBytes),
          policy_(policy) {}

    void setOnSession(SessionHook hook) { onSession_ = std::move(hook); }

    void start() { open(); }

    /// Crash notification (reboot listener recovery edge): the stack dropped
    /// every socket silently, so no onError ever fires — treat the in-flight
    /// session as dead and start the reconnect ladder.
    void noteCrash() {
        if (socket_ == nullptr) return;
        const tcp::State s = socket_->state();
        if (s == tcp::State::kClosed || s == tcp::State::kFailed) onDead();
    }

    /// Completed re-establishments (a replacement connection that reached
    /// ESTABLISHED); the acceptance metric for the chaos scenarios.
    int reconnects() const { return reconnects_; }
    /// Replacement connections opened (a SYN that dies during an outage
    /// counts here but not in reconnects()).
    int reconnectAttempts() const { return attempts_; }
    bool gaveUp() const { return gaveUp_; }

    /// Bytes the peer's TCP has acknowledged across every session.
    std::size_t ackedBytes() const {
        return base_ + (socket_ != nullptr ? socket_->stats().bytesAcked : 0);
    }

    const tcp::TcpSocket* socket() const { return socket_; }

    /// Transport stats summed over every dead session plus the live one.
    tcp::TcpStats aggregateStats() const {
        tcp::TcpStats out = dead_;
        if (socket_ != nullptr) accumulate(out, socket_->stats());
        return out;
    }

private:
    void open() {
        if (onSession_) onSession_(base_);
        offered_ = 0;
        closed_ = false;
        const bool isReconnect = attempts_ > 0;
        socket_ = &stack_.createSocket(config_);
        socket_->setOnConnected([this, isReconnect] {
            if (isReconnect) ++reconnects_;
            pump();
        });
        socket_->setOnSendSpace([this] { pump(); });
        socket_->setOnError([this] { onDead(); });
        socket_->connect(dst_, port_);
    }

    void pump() {
        while (base_ + offered_ < total_) {
            const std::size_t chunk =
                std::min<std::size_t>(512, total_ - base_ - offered_);
            const Bytes data = patternBytes(base_ + offered_, chunk);
            const std::size_t n = socket_->send(data);
            if (n == 0) return;
            offered_ += n;
        }
        if (!closed_) {
            closed_ = true;
            socket_->close();
        }
    }

    void onDead() {
        if (socket_ == nullptr) return;
        accumulate(dead_, socket_->stats());
        base_ += socket_->stats().bytesAcked;
        // The failed socket stays parked in the stack (kClosed/kFailed is
        // ignored by demux); destroying it here would free the object whose
        // callback frame we may be inside.
        socket_ = nullptr;
        if (!policy_.reconnect || attempts_ >= policy_.maxReconnects ||
            base_ >= total_) {
            gaveUp_ = base_ < total_;
            return;
        }
        ++attempts_;
        sim::Time backoff = policy_.backoffInitial;
        for (int i = 1; i < attempts_ && backoff < policy_.backoffMax; ++i)
            backoff = std::min(backoff * 2, policy_.backoffMax);
        stack_.simulator().schedule(backoff, [this] {
            if (socket_ == nullptr) open();
        });
    }

    static void accumulate(tcp::TcpStats& into, const tcp::TcpStats& s) {
        into.segsSent += s.segsSent;
        into.segsReceived += s.segsReceived;
        into.bytesSent += s.bytesSent;
        into.bytesAcked += s.bytesAcked;
        into.retransmissions += s.retransmissions;
        into.fastRetransmissions += s.fastRetransmissions;
        into.sackRetransmissions += s.sackRetransmissions;
        into.timeouts += s.timeouts;
        into.dupAcksReceived += s.dupAcksReceived;
        into.zeroWindowProbes += s.zeroWindowProbes;
        into.rexmitNotifications += s.rexmitNotifications;
        into.rexmitGiveUps += s.rexmitGiveUps;
        into.persistGiveUps += s.persistGiveUps;
        into.keepAliveProbesSent += s.keepAliveProbesSent;
        into.keepAliveGiveUps += s.keepAliveGiveUps;
    }

    tcp::TcpStack& stack_;
    tcp::TcpConfig config_;
    ip6::Address dst_;
    std::uint16_t port_;
    std::size_t total_;
    Policy policy_;
    SessionHook onSession_;

    tcp::TcpSocket* socket_ = nullptr;
    std::size_t base_ = 0;     // absolute offset the current session starts at
    std::size_t offered_ = 0;  // bytes queued into the current session
    bool closed_ = false;
    int attempts_ = 0;
    int reconnects_ = 0;
    bool gaveUp_ = false;
    tcp::TcpStats dead_;  // summed stats of every failed session
};

/// Receiver-side meter for reconnecting transfers. Each session resumes the
/// pattern stream at the sender's acked offset, which may sit below bytes
/// already delivered (delivered-but-unacked data is re-sent) — content is
/// verified against the absolute pattern offset, and only bytes above the
/// high-water mark count as fresh progress.
class ResumableGoodputMeter {
public:
    explicit ResumableGoodputMeter(sim::Simulator& simulator)
        : simulator_(simulator) {}

    /// Next session's data starts at absolute stream offset `offset`.
    void beginSession(std::size_t offset) { at_ = offset; }

    /// Fires whenever the high-water mark advances, with the fresh byte
    /// count (drives the chaos runner's recovery metrics and watchdog).
    void setOnProgress(std::function<void(std::size_t freshBytes)> cb) {
        onProgress_ = std::move(cb);
    }

    void onData(BytesView data) {
        if (!started_) {
            started_ = true;
            first_ = simulator_.now();
        }
        contentOk_ = contentOk_ && matchesPattern(at_, data);
        at_ += data.size();
        if (at_ > highWater_) {
            const std::size_t fresh = at_ - highWater_;
            highWater_ = at_;
            last_ = simulator_.now();
            if (onProgress_) onProgress_(fresh);
        }
    }

    /// Unique application bytes delivered (the high-water mark).
    std::size_t bytes() const { return highWater_; }
    bool contentOk() const { return contentOk_; }
    sim::Time firstAt() const { return first_; }
    sim::Time lastAt() const { return last_; }

    double goodputKbps() const {
        const sim::Time span = last_ - first_;
        if (span <= 0) return 0.0;
        return double(highWater_) * 8.0 / 1000.0 / sim::toSeconds(span);
    }

private:
    sim::Simulator& simulator_;
    std::function<void(std::size_t)> onProgress_;
    std::size_t at_ = 0;         // absolute offset of the next expected byte
    std::size_t highWater_ = 0;  // unique bytes delivered
    bool contentOk_ = true;
    bool started_ = false;
    sim::Time first_ = 0;
    sim::Time last_ = 0;
};

}  // namespace tcplp::app
