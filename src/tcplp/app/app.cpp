// Anchor translation unit for the app library.
