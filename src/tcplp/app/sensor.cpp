#include "tcplp/app/sensor.hpp"

#include "tcplp/common/assert.hpp"

namespace tcplp::app {

Bytes makeReading(std::uint16_t nodeId, std::uint32_t seq) {
    Bytes r;
    r.reserve(kReadingBytes);
    putU16(r, nodeId);
    putU32(r, seq);
    const Bytes fill = patternBytes(seq * kReadingBytes, kReadingBytes - r.size());
    append(r, fill);
    TCPLP_ASSERT(r.size() == kReadingBytes);
    return r;
}

SensorNode::SensorNode(sim::Simulator& simulator, std::uint16_t nodeId,
                       SensorTransport& transport, SensorConfig config)
    : simulator_(simulator),
      nodeId_(nodeId),
      transport_(transport),
      config_(config),
      queue_(config.queueCapacity) {}

void SensorNode::start() {
    running_ = true;
    timer_ = simulator_.schedule(config_.sampleInterval, [this] { sample(); });
}

void SensorNode::stop() {
    running_ = false;
    timer_.cancel();
    transport_.setFlushing(true);
    transport_.pump(queue_, stats_);
}

void SensorNode::sample() {
    if (!running_) return;
    ++stats_.generated;
    if (!queue_.push(makeReading(nodeId_, nextSeq_++))) ++stats_.queueDrops;
    transport_.pump(queue_, stats_);
    timer_ = simulator_.schedule(config_.sampleInterval, [this] { sample(); });
}

// --- TCP adapter -----------------------------------------------------------

void TcpSensorTransport::pump(ReadingQueue& queue, SensorStats& stats) {
    if (socket_->state() != tcp::State::kEstablished) return;
    if (!flushing_ && config_.batching && queue.size() < config_.batchThreshold &&
        queue.size() < config_.queueCapacity) {
        return;  // wait for a full batch
    }
    while (!queue.empty()) {
        if (socket_->sendFree() < kReadingBytes) break;  // send buffer full
        const std::size_t n = socket_->send(queue.front());
        if (n == 0) break;
        TCPLP_ASSERT(n == kReadingBytes);
        queue.pop();
        ++stats.submitted;
    }
}

// --- CoAP adapter ----------------------------------------------------------

void CoapSensorTransport::pump(ReadingQueue& queue, SensorStats& stats) {
    queue_ = &queue;
    stats_ = &stats;
    if (config_.batching) {
        if (!flushing_ && queue.size() < config_.batchThreshold && inFlightBlocks_ == 0)
            return;
        // Assemble blocks of ~coapBlockBytes (whole readings per block) and
        // submit each as a confirmable POST. Limit transport backlog so the
        // queue keeps absorbing new samples while CoAP is backed off.
        const std::size_t readingsPerBlock =
            std::max<std::size_t>(1, config_.coapBlockBytes / kReadingBytes);
        while (!queue.empty() && client_.pendingExchanges() < 4) {
            Bytes block;
            std::size_t count = 0;
            while (!queue.empty() && count < readingsPerBlock) {
                append(block, queue.front());
                queue.pop();
                ++count;
            }
            stats.submitted += count;
            ++inFlightBlocks_;
            const bool more = !queue.empty();
            client_.postConfirmable(
                std::move(block),
                [this, count](bool delivered) {
                    --inFlightBlocks_;
                    if (!delivered) stats_->transportDrops += count;
                    if (queue_ && !queue_->empty()) pump(*queue_, *stats_);
                },
                coap::Block{nextBlockNum_++, more, 5});
        }
    } else {
        while (!queue.empty() && client_.pendingExchanges() < 2) {
            Bytes reading = queue.pop();
            ++stats.submitted;
            client_.postConfirmable(std::move(reading), [&stats](bool delivered) {
                if (!delivered) ++stats.transportDrops;
            });
        }
    }
}

// --- Unreliable adapter ------------------------------------------------------

void UnreliableSensorTransport::pump(ReadingQueue& queue, SensorStats& stats) {
    queue_ = &queue;
    stats_ = &stats;
    if (config_.batching) {
        if (!flushing_ && queue.size() < config_.batchThreshold) return;
        // Non-confirmable messages have no transport backpressure; pace the
        // batch so it does not overrun the node's forwarding queue.
        if (!sending_) {
            sending_ = true;
            sendNextBlock();
        }
    } else {
        while (!queue.empty()) {
            Bytes reading = queue.pop();
            ++stats.submitted;
            client_.postNonConfirmable(std::move(reading));
        }
    }
}

void UnreliableSensorTransport::sendNextBlock() {
    if (!queue_ || queue_->empty()) {
        sending_ = false;
        return;
    }
    const std::size_t readingsPerBlock =
        std::max<std::size_t>(1, config_.coapBlockBytes / kReadingBytes);
    Bytes block;
    std::size_t count = 0;
    while (!queue_->empty() && count < readingsPerBlock) {
        append(block, queue_->front());
        queue_->pop();
        ++count;
    }
    stats_->submitted += count;
    client_.postNonConfirmable(std::move(block));
    // ~Transmission time of one multi-frame datagram.
    client_.simulator().schedule(80 * sim::kMillisecond, [this] { sendNextBlock(); });
}

// --- Server-side collector ----------------------------------------------------

void ReadingCollector::feedStream(BytesView data) {
    append(partial_, data);
    std::size_t off = 0;
    while (partial_.size() - off >= kReadingBytes) {
        consumeReading(BytesView(partial_.data() + off, kReadingBytes));
        off += kReadingBytes;
    }
    partial_.erase(partial_.begin(), partial_.begin() + long(off));
}

void ReadingCollector::feedMessage(BytesView payload) {
    std::size_t off = 0;
    while (payload.size() - off >= kReadingBytes) {
        consumeReading(payload.subspan(off, kReadingBytes));
        off += kReadingBytes;
    }
}

void ReadingCollector::consumeReading(BytesView reading) {
    const std::uint16_t nodeId = getU16(reading, 0);
    ++total_;
    ++perNode_[nodeId];
}

}  // namespace tcplp::app
