#include "tcplp/tcp/tcb.hpp"

namespace tcplp::tcp {

const char* stateName(State s) {
    switch (s) {
        case State::kClosed: return "CLOSED";
        case State::kListen: return "LISTEN";
        case State::kSynSent: return "SYN_SENT";
        case State::kSynReceived: return "SYN_RCVD";
        case State::kEstablished: return "ESTABLISHED";
        case State::kFinWait1: return "FIN_WAIT_1";
        case State::kFinWait2: return "FIN_WAIT_2";
        case State::kCloseWait: return "CLOSE_WAIT";
        case State::kClosing: return "CLOSING";
        case State::kLastAck: return "LAST_ACK";
        case State::kTimeWait: return "TIME_WAIT";
        case State::kFailed: return "FAILED";
    }
    return "?";
}

}  // namespace tcplp::tcp
