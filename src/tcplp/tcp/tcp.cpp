#include "tcplp/tcp/tcp.hpp"

#include <algorithm>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"
#include "tcplp/tcp/congestion.hpp"

namespace tcplp::tcp {

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::TcpSocket(TcpStack& stack, TcpConfig config)
    : stack_(stack),
      config_(config),
      sendBuf_(config.sendBufferBytes),
      recvBuf_(config.recvBufferBytes),
      rexmitTimer_(stack.simulator(), [this] { rexmitTimeout(); }),
      persistTimer_(stack.simulator(), [this] { persistTimeout(); }),
      delackTimer_(stack.simulator(), [this] { sendAckNow(); }),
      timeWaitTimer_(stack.simulator(), [this] {
          setState(State::kClosed);
          if (onClosed_) onClosed_();
      }),
      keepAliveTimer_(stack.simulator(), [this] { keepAliveTimeout(); }) {
    tcb_.mss = config.mss;
    tcb_.rto = config.initialRto;
    // The cap is constant for the socket's lifetime (the send buffer never
    // resizes; only the receive buffer can autotune, and that side has no
    // cwnd), so the strategy captures it once instead of reaching into the
    // socket.
    cc_ = makeCongestionControl(config_.cc, tcb_,
                                CcEnv{cwndCap(), config_.initialCwndSegments});
}

TcpSocket::~TcpSocket() = default;

const CcStats& TcpSocket::ccStats() const { return cc_->stats(); }

std::uint32_t TcpSocket::tsNow() const {
    return std::uint32_t(stack_.simulator().now() / sim::kMillisecond);
}

void TcpSocket::setState(State s) {
    tcb_.state = s;
}

void TcpSocket::traceCwnd() {
    if (cwndTracer_) cwndTracer_(stack_.simulator().now(), tcb_.cwnd, tcb_.ssthresh);
}

std::uint32_t TcpSocket::cwndCap() const {
    // Without RFC 7323 scaling the peer can never advertise past the 16-bit
    // field, so capping cwnd there too is free; with scaling enabled the
    // send buffer alone bounds the window.
    std::uint32_t cap = std::uint32_t(
        std::min<std::size_t>(sendBuf_.capacity(), std::size_t(0xffffffffu)));
    if (!config_.windowScaling) cap = std::min(cap, kMaxWindow);
    if (config_.cwndCapBytes > 0) cap = std::min(cap, config_.cwndCapBytes);
    return cap;
}

std::uint8_t TcpSocket::desiredRcvShift() const {
    // Cover the largest window this socket could ever advertise: the
    // autotune ceiling when set, the fixed buffer otherwise.
    const std::size_t maxBuf =
        std::max(config_.recvBufferBytes, config_.recvBufferMaxBytes);
    std::uint8_t shift = 0;
    while (shift < kMaxWindowShift && (maxBuf >> shift) > 0xffff) ++shift;
    return shift;
}

std::uint32_t TcpSocket::swsThreshold() const {
    return std::min<std::uint32_t>(tcb_.mss,
                                   std::uint32_t(recvBuf_.capacity() / 2));
}

// --- Application interface --------------------------------------------------

void TcpSocket::connect(const ip6::Address& dst, std::uint16_t dstPort) {
    // kFailed is terminal: the app observes the failure via state() and
    // opens a *fresh* socket to retry (see app::ReconnectingBulkSender).
    // Rejecting the call keeps a dead TCB from being half-reinitialized.
    if (tcb_.state == State::kFailed) return;
    TCPLP_ASSERT(tcb_.state == State::kClosed);
    remoteAddr_ = dst;
    remotePort_ = dstPort;
    if (localPort_ == 0) localPort_ = stack_.allocatePort();
    stack_.bind(*this);

    tcb_.iss = stack_.nextIss();
    tcb_.sndUna = tcb_.iss;
    tcb_.sndNxt = tcb_.iss;
    tcb_.sndMax = tcb_.iss;
    cc_->onOpen();
    setState(State::kSynSent);
    output();
}

std::size_t TcpSocket::send(BytesView data) {
    if (tcb_.finQueued || tcb_.state == State::kFailed) return 0;
    const std::size_t n = sendBuf_.append(data);
    if (n > 0 && (tcb_.state == State::kEstablished || tcb_.state == State::kCloseWait))
        output();
    return n;
}

std::size_t TcpSocket::sendZeroCopy(std::shared_ptr<const Bytes> data) {
    if (tcb_.finQueued || tcb_.state == State::kFailed) return 0;
    const std::size_t n = sendBuf_.appendShared(std::move(data));
    if (n > 0 && (tcb_.state == State::kEstablished || tcb_.state == State::kCloseWait))
        output();
    return n;
}

void TcpSocket::close() {
    switch (tcb_.state) {
        case State::kClosed:
        case State::kListen:
            setState(State::kClosed);
            return;
        case State::kSynSent:
            setState(State::kClosed);
            rexmitTimer_.stop();
            return;
        case State::kSynReceived:
        case State::kEstablished:
            tcb_.finQueued = true;
            setState(State::kFinWait1);
            output();
            return;
        case State::kCloseWait:
            tcb_.finQueued = true;
            setState(State::kLastAck);
            output();
            return;
        default:
            return;  // already closing
    }
}

void TcpSocket::abort() {
    if (tcb_.state != State::kClosed && tcb_.state != State::kListen &&
        tcb_.state != State::kSynSent && tcb_.state != State::kFailed) {
        Segment rst;
        rst.flags.rst = true;
        rst.flags.ack = true;
        rst.seq = tcb_.sndNxt;
        rst.ack = tcb_.rcvNxt;
        emit(rst);
    }
    rexmitTimer_.stop();
    persistTimer_.stop();
    delackTimer_.stop();
    keepAliveTimer_.stop();
    setState(State::kClosed);
}

void TcpSocket::dropSilently() {
    rexmitTimer_.stop();
    persistTimer_.stop();
    delackTimer_.stop();
    timeWaitTimer_.stop();
    keepAliveTimer_.stop();
    setState(State::kClosed);
}

// --- Output path -------------------------------------------------------------

std::uint32_t TcpSocket::effSndWindow() const {
    return std::min<std::uint32_t>(tcb_.cwnd, tcb_.sndWnd);
}

std::size_t TcpSocket::unsentBytes() const {
    const std::uint32_t offset = std::uint32_t(tcb_.sndNxt - tcb_.sndUna);
    // The FIN, once sent, occupies sequence space past the buffer; clamp.
    const std::size_t dataOffset = std::min<std::size_t>(offset, sendBuf_.size());
    return sendBuf_.size() - dataOffset;
}

void TcpSocket::output() {
    switch (tcb_.state) {
        case State::kSynSent: {
            sendSegment(tcb_.iss, 0, false, true);
            if (seqLe(tcb_.sndNxt, tcb_.iss)) tcb_.sndNxt = tcb_.iss + 1;
            tcb_.sndMax = seqMax(tcb_.sndMax, tcb_.sndNxt);
            armRexmit();
            // A SYN-ACK is expected: a duty-cycled MAC must poll rapidly.
            stack_.netif().setExpectingResponse(true);
            return;
        }
        case State::kSynReceived: {
            sendSegment(tcb_.iss, 0, false, true);  // SYN+ACK (ACK added in emit)
            if (seqLe(tcb_.sndNxt, tcb_.iss)) tcb_.sndNxt = tcb_.iss + 1;
            tcb_.sndMax = seqMax(tcb_.sndMax, tcb_.sndNxt);
            armRexmit();
            stack_.netif().setExpectingResponse(true);
            return;
        }
        case State::kEstablished:
        case State::kCloseWait:
        case State::kFinWait1:
        case State::kClosing:
        case State::kLastAck:
            break;
        default:
            return;
    }

    const std::uint32_t wnd = effSndWindow();
    bool sentSomething = false;

    for (;;) {
        const std::uint32_t flight = std::uint32_t(tcb_.sndNxt - tcb_.sndUna);
        const std::size_t available = unsentBytes();
        const std::uint32_t usable = wnd > flight ? wnd - flight : 0;
        std::size_t len = std::min<std::size_t>({tcb_.mss, available, usable});

        const bool wantFin = tcb_.finQueued && !tcb_.finSent && available == len;
        if (len == 0 && !wantFin) break;
        if (len == 0 && wantFin && flight >= wnd && flight > 0) break;

        const Seq seq = tcb_.sndNxt;
        sendSegment(seq, len, wantFin && len == available, false);
        tcb_.sndNxt += std::uint32_t(len);
        if (wantFin && len == available) {
            finSeq_ = tcb_.sndNxt;
            tcb_.finSent = true;
            tcb_.sndNxt += 1;
        }
        tcb_.sndMax = seqMax(tcb_.sndMax, tcb_.sndNxt);
        sentSomething = true;
        if (len == 0) break;  // bare FIN
    }

    // Zero-window handling: data waiting, nothing in flight, window shut.
    if (!sentSomething && unsentBytes() > 0 && tcb_.sndWnd == 0 &&
        tcb_.sndNxt == tcb_.sndUna && !persistTimer_.running()) {
        tcb_.persisting = true;
        // Snapshot the un-backed-off RTO as the probe-backoff base. `rto`
        // itself may already be doubled by retransmit backoff (entering
        // persist from rexmitTimeout -> output), and shifting that doubled
        // value double-scaled the probe schedule.
        if (tcb_.persistRtoBase == 0) tcb_.persistRtoBase = baseRto();
        rexmitTimer_.stop();  // persist replaces the retransmit timer
        persistTimer_.start(persistDelay());
    }

    if (tcb_.sndNxt != tcb_.sndUna) armRexmit();
    stack_.netif().setExpectingResponse(tcb_.sndNxt != tcb_.sndUna);
}

void TcpSocket::sendSegment(Seq seq, std::size_t len, bool fin, bool syn) {
    Segment seg;
    seg.seq = seq;
    seg.flags.syn = syn;
    seg.flags.fin = fin;
    if (syn) {
        seg.mssOption = config_.mss;
        // WSopt (RFC 7323 §2.2): offered on our SYN when configured; echoed
        // on a SYN-ACK only if the peer's SYN carried it (tcb_.wsEnabled was
        // decided in beginPassiveOpen).
        if (tcb_.state == State::kSynSent ? config_.windowScaling : tcb_.wsEnabled)
            seg.windowScale = desiredRcvShift();
        seg.sackPermitted = config_.sack;
        if (config_.timestamps) seg.timestamps = Timestamps{tsNow(), 0};
        if (config_.ecn && tcb_.state == State::kSynSent) {
            // RFC 3168 negotiation: SYN carries ECE+CWR.
            seg.flags.ece = true;
            seg.flags.cwr = true;
        }
        if (config_.ecn && tcb_.state == State::kSynReceived && tcb_.ecnEnabled)
            seg.flags.ece = true;
    }
    if (len > 0) {
        const std::uint32_t offset = std::uint32_t(seq - tcb_.sndUna);
        seg.payload = sendBuf_.readSegment(offset, len);
        TCPLP_ASSERT(seg.payload.size() == len);
        if (offset + len >= sendBuf_.size()) seg.flags.psh = true;
        if (seqLt(seq, tcb_.sndMax)) ++stats_.retransmissions;
    }
    emit(seg);
}

void TcpSocket::emit(Segment& seg) {
    seg.srcPort = localPort_;
    seg.dstPort = remotePort_;
    // Everything after the initial SYN carries an ACK.
    if (!(seg.flags.syn && tcb_.state == State::kSynSent)) {
        seg.flags.ack = true;
        seg.ack = tcb_.rcvNxt;
    }
    const std::uint32_t maxAdv = std::uint32_t(
        std::min<std::uint64_t>(std::uint64_t(kMaxWindow) << tcb_.rcvWndShift, 0xffffffffu));
    std::uint32_t advWnd = std::uint32_t(std::min<std::size_t>(recvBuf_.window(), maxAdv));
    // Receiver-side SWS avoidance (RFC 1122 §4.2.3.3): once a zero window
    // was advertised, keep it shut until at least min(MSS, capacity/2) has
    // opened — a trickle-reading application must not pull the peer into
    // a 1-byte probe/ACK oscillation.
    if (sentAdvWndZero_ && !seg.flags.syn && advWnd < swsThreshold()) advWnd = 0;
    seg.setWindowBytes(advWnd, tcb_.rcvWndShift);
    sentAdvWndZero_ = (advWnd == 0);

    if (tcb_.tsEnabled && !seg.timestamps)
        seg.timestamps = Timestamps{tsNow(), tcb_.tsRecent};
    if (tcb_.sackEnabled && !seg.flags.syn) {
        const auto ranges = recvBuf_.sackRanges();
        for (const RecvRange& r : ranges)
            seg.sackBlocks.push_back(
                SackBlock{tcb_.rcvNxt + std::uint32_t(r.begin), tcb_.rcvNxt + std::uint32_t(r.end)});
    }
    if (tcb_.ecnEnabled) {
        if (tcb_.ecnEchoPending) seg.flags.ece = true;
        if (tcb_.cwrPending && !seg.payload.empty()) {
            seg.flags.cwr = true;
            tcb_.cwrPending = false;
        }
    }

    // Sending any ACK quashes the delayed-ACK state.
    if (seg.flags.ack) {
        tcb_.delAckPending = 0;
        delackTimer_.stop();
    }

    ++stats_.segsSent;
    stats_.bytesSent += seg.payload.size();
    stack_.transmit(*this, seg);
}

void TcpSocket::sendAckNow() {
    Segment seg;
    seg.seq = tcb_.sndNxt;
    emit(seg);
}

Bytes TcpSocket::read(std::size_t n) {
    Bytes out = recvBuf_.read(n);
    // If the last advertised window was zero and enough space opened (the
    // SWS threshold — not just one byte), send a window update so the
    // peer's persist timer can stand down.
    if (!out.empty() && sentAdvWndZero_ && recvBuf_.window() >= swsThreshold())
        sendAckNow();
    return out;
}

void TcpSocket::scheduleDelack() {
    if (!delackTimer_.running()) delackTimer_.start(config_.delAckTimeout);
}

// --- Timers -------------------------------------------------------------------

sim::Time TcpSocket::baseRto() const {
    if (tcb_.srtt == 0) return config_.initialRto;
    return std::clamp<sim::Time>(
        tcb_.srtt + std::max<sim::Time>(4 * tcb_.rttvar, 10 * sim::kMillisecond),
        config_.minRto, config_.maxRto);
}

sim::Time TcpSocket::persistDelay() const {
    const sim::Time base = std::max<sim::Time>(tcb_.persistRtoBase, 1);
    // Clamp before shifting: once base << shift would pass persistMax the
    // exact product no longer matters (and must not overflow).
    if (base > (config_.persistMax >> tcb_.persistShift)) return config_.persistMax;
    return std::clamp<sim::Time>(base << tcb_.persistShift, config_.persistMin,
                                 config_.persistMax);
}

void TcpSocket::armRexmit() {
    // Persist mode owns the timer slot: window probes are paced by the
    // persist timer and must not count against the retransmission limit
    // (a peer is allowed to advertise a zero window indefinitely).
    if (tcb_.persisting) return;
    if (!rexmitTimer_.running()) rexmitTimer_.start(tcb_.rto);
}

void TcpSocket::rexmitTimeout() {
    if (tcb_.state == State::kClosed || tcb_.state == State::kTimeWait ||
        tcb_.state == State::kFailed)
        return;

    ++stats_.timeouts;
    ++tcb_.rxtShift;
    // RFC 1122 §4.2.3.5 R1: warn the application that delivery is in
    // trouble, but keep trying until R2.
    if (config_.rexmitNotifyThreshold > 0 &&
        int(tcb_.rxtShift) == config_.rexmitNotifyThreshold) {
        ++stats_.rexmitNotifications;
        if (onRexmitTrouble_) onRexmitTrouble_();
        if (tcb_.state == State::kClosed || tcb_.state == State::kFailed)
            return;  // callback tore the connection down
    }
    // R2: give up. kFailed is terminal and visibly distinct from a close.
    if (tcb_.rxtShift > config_.maxRetransmits) {
        ++stats_.rexmitGiveUps;
        connectionFailed();
        return;
    }
    tcb_.rto = std::min<sim::Time>(tcb_.rto * 2, config_.maxRto);

    if (tcb_.state == State::kSynSent || tcb_.state == State::kSynReceived) {
        output();  // retransmit SYN / SYN+ACK
        rexmitTimer_.start(tcb_.rto);
        return;
    }

    // Loss response (RFC 5681 §3.1 on timeout): the strategy decides the
    // ssthresh, the cwnd collapse to one segment is protocol-mandated.
    cc_->onRtoFire(stack_.simulator().now());
    traceCwnd();

    // Rewind and retransmit from the oldest unacknowledged byte.
    tcb_.sndNxt = tcb_.sndUna;
    if (tcb_.finSent && seqLe(tcb_.sndNxt, finSeq_)) tcb_.finSent = false;
    output();
    // output() may have handed the connection to the persist machinery
    // (zero window): probes are not retransmissions and must not expire it.
    if (!tcb_.persisting) rexmitTimer_.start(tcb_.rto);
}

void TcpSocket::persistTimeout() {
    if (unsentBytes() == 0 || tcb_.sndWnd > 0) {
        tcb_.persisting = false;
        tcb_.persistShift = 0;
        tcb_.persistRtoBase = 0;
        return;
    }
    // Collapse the probe path into the same give-up logic as R2: a live peer
    // answering probes resets the count (notePeerActivity), so only an
    // unreachable one accumulates unanswered probes.
    if (config_.maxPersistProbes > 0 &&
        persistProbesUnanswered_ >= config_.maxPersistProbes) {
        ++stats_.persistGiveUps;
        connectionFailed();
        return;
    }
    // Send a one-byte window probe past the advertised window. The probe is
    // re-sent by the persist timer itself, never by the retransmit timer.
    ++stats_.zeroWindowProbes;
    ++persistProbesUnanswered_;
    sendSegment(tcb_.sndUna, 1, false, false);
    if (tcb_.persistShift < 10) ++tcb_.persistShift;
    persistTimer_.start(persistDelay());
}

void TcpSocket::armKeepAlive() {
    if (config_.keepAliveIdle == 0) return;
    keepAliveUnanswered_ = 0;
    keepAliveTimer_.stop();
    keepAliveTimer_.start(config_.keepAliveIdle);
}

void TcpSocket::keepAliveTimeout() {
    if (tcb_.state != State::kEstablished && tcb_.state != State::kCloseWait) return;
    const sim::Time idle = stack_.simulator().now() - lastRecvAt_;
    if (idle < config_.keepAliveIdle) {
        // The peer spoke since the timer was armed; re-arm for the remainder.
        keepAliveTimer_.start(config_.keepAliveIdle - idle);
        return;
    }
    if (keepAliveUnanswered_ >= config_.keepAliveProbes) {
        ++stats_.keepAliveGiveUps;
        connectionFailed();
        return;
    }
    sendKeepAliveProbe();
    ++keepAliveUnanswered_;
    keepAliveTimer_.start(config_.keepAliveInterval);
}

void TcpSocket::sendKeepAliveProbe() {
    // BSD-style probe: zero-length segment at sndNxt-1. The sequence number
    // is below the peer's rcvNxt, so the acceptability test rejects it and
    // the peer answers with a bare ACK — exactly the liveness signal needed.
    ++stats_.keepAliveProbesSent;
    Segment seg;
    seg.seq = tcb_.sndNxt - 1;
    emit(seg);
}

void TcpSocket::notePeerActivity() {
    lastRecvAt_ = stack_.simulator().now();
    keepAliveUnanswered_ = 0;
    persistProbesUnanswered_ = 0;
}

void TcpSocket::enterTimeWait() {
    setState(State::kTimeWait);
    rexmitTimer_.stop();
    persistTimer_.stop();
    keepAliveTimer_.stop();
    timeWaitTimer_.start(2 * config_.msl);
}

void TcpSocket::connectionDropped() {
    rexmitTimer_.stop();
    persistTimer_.stop();
    delackTimer_.stop();
    keepAliveTimer_.stop();
    setState(State::kClosed);
    stack_.netif().setExpectingResponse(false);
    if (onError_) onError_();
}

void TcpSocket::connectionFailed() {
    rexmitTimer_.stop();
    persistTimer_.stop();
    delackTimer_.stop();
    keepAliveTimer_.stop();
    setState(State::kFailed);
    stack_.netif().setExpectingResponse(false);
    if (onError_) onError_();
}

// --- Input path ----------------------------------------------------------------

void TcpSocket::beginPassiveOpen(const Segment& syn, const ip6::Address& peer) {
    remoteAddr_ = peer;
    remotePort_ = syn.srcPort;
    stack_.bind(*this);

    tcb_.irs = syn.seq;
    tcb_.rcvNxt = syn.seq + 1;
    tcb_.iss = stack_.nextIss();
    tcb_.sndUna = tcb_.iss;
    tcb_.sndNxt = tcb_.iss;
    tcb_.sndMax = tcb_.iss;
    tcb_.sndWnd = syn.windowBytes(0);  // a SYN's window is never scaled
    tcb_.sndWl1 = syn.seq;
    tcb_.sndWl2 = 0;

    if (syn.mssOption) tcb_.mss = std::min(config_.mss, *syn.mssOption);
    if (config_.windowScaling && syn.windowScale) {
        // RFC 7323 §2.2: scaling is on only when both SYNs carry WSopt; a
        // peer shift above 14 is clamped, not rejected.
        tcb_.wsEnabled = true;
        tcb_.sndWndShift = std::min(*syn.windowScale, kMaxWindowShift);
        tcb_.rcvWndShift = desiredRcvShift();
    }
    tcb_.sackEnabled = config_.sack && syn.sackPermitted;
    if (config_.timestamps && syn.timestamps) {
        tcb_.tsEnabled = true;
        tcb_.tsRecent = syn.timestamps->value;
    }
    tcb_.ecnEnabled = config_.ecn && syn.flags.ece && syn.flags.cwr;
    cc_->onOpen();

    setState(State::kSynReceived);
    output();
}

void TcpSocket::input(const Segment& seg, ip6::Ecn ipEcn) {
    ++stats_.segsReceived;
    if (tcb_.state == State::kClosed || tcb_.state == State::kFailed) return;
    notePeerActivity();

    // ECN: remember congestion marks to echo (receiver role).
    if (tcb_.ecnEnabled && ipEcn == ip6::Ecn::kCongestionExperienced)
        tcb_.ecnEchoPending = true;
    if (tcb_.ecnEnabled && seg.flags.cwr) tcb_.ecnEchoPending = false;

    if (tcb_.state == State::kSynSent) {
        if (seg.flags.rst) {
            if (seg.flags.ack && seg.ack == tcb_.iss + 1) connectionDropped();
            return;
        }
        if (seg.flags.syn && seg.flags.ack) {
            if (seg.ack != tcb_.iss + 1) {
                sendChallengeAck();
                return;
            }
            tcb_.irs = seg.seq;
            tcb_.rcvNxt = seg.seq + 1;
            tcb_.sndUna = seg.ack;
            tcb_.sndWnd = seg.windowBytes(0);  // SYN-ACK window is unscaled
            tcb_.sndWl1 = seg.seq;
            tcb_.sndWl2 = seg.ack;
            if (seg.mssOption) tcb_.mss = std::min(config_.mss, *seg.mssOption);
            if (config_.windowScaling && seg.windowScale) {
                tcb_.wsEnabled = true;
                tcb_.sndWndShift = std::min(*seg.windowScale, kMaxWindowShift);
                tcb_.rcvWndShift = desiredRcvShift();
            }
            tcb_.sackEnabled = config_.sack && seg.sackPermitted;
            if (config_.timestamps && seg.timestamps) {
                tcb_.tsEnabled = true;
                tcb_.tsRecent = seg.timestamps->value;
            }
            tcb_.ecnEnabled = config_.ecn && seg.flags.ece;
            cc_->onIdleRestart();  // MSS renegotiated: restart the window
            rexmitTimer_.stop();
            tcb_.rxtShift = 0;
            setState(State::kEstablished);
            armKeepAlive();
            sendAckNow();
            if (onConnected_) onConnected_();
            output();
            return;
        }
        if (seg.flags.syn) {
            // Simultaneous open.
            tcb_.irs = seg.seq;
            tcb_.rcvNxt = seg.seq + 1;
            if (seg.mssOption) tcb_.mss = std::min(config_.mss, *seg.mssOption);
            setState(State::kSynReceived);
            output();
        }
        return;
    }

    // --- Sequence acceptability (RFC 793 p.69) -------------------------
    const std::uint32_t segLen =
        std::uint32_t(seg.payload.size()) + (seg.flags.syn ? 1 : 0) + (seg.flags.fin ? 1 : 0);
    const std::uint32_t rcvWnd = std::uint32_t(recvBuf_.window());
    const bool okStart = seqGe(seg.seq, tcb_.rcvNxt) && seqLt(seg.seq, tcb_.rcvNxt + rcvWnd);
    const bool okEnd = segLen > 0 && seqGt(seg.seq + segLen, tcb_.rcvNxt) &&
                       seqLe(seg.seq + segLen, tcb_.rcvNxt + rcvWnd + tcb_.mss);
    const bool zeroLenOk = segLen == 0 && (rcvWnd > 0 ? okStart : seg.seq == tcb_.rcvNxt);
    const bool overlapsWindow =
        okStart || okEnd || zeroLenOk ||
        (segLen > 0 && seqLe(seg.seq, tcb_.rcvNxt) && seqGt(seg.seq + segLen, tcb_.rcvNxt));
    if (!overlapsWindow) {
        // RFC 7323: even an unacceptable segment (e.g. a fully duplicate
        // retransmission) refreshes the timestamp echo state when it covers
        // rcvNxt and its TSval is not older than the current one (R4's
        // monotonicity guard — reordered duplicates must not move the echo
        // backwards). Skipping this left tsRecent frozen at the pre-loss
        // value, and the eventual ACK's stale echo injected a multi-second
        // RTT sample that blew up srtt/rttvar (and with them RTO and the
        // persist-probe base) right when the path healed.
        if (tcb_.tsEnabled && seg.timestamps && seqLe(seg.seq, tcb_.rcvNxt) &&
            seqGe(seg.timestamps->value, tcb_.tsRecent))
            tcb_.tsRecent = seg.timestamps->value;
        if (!seg.flags.rst) sendAckNow();  // keep the peer synchronized
        return;
    }

    if (seg.flags.rst) {
        // RFC 5961: only an exact-match RST kills the connection; in-window
        // but inexact elicits a challenge ACK.
        if (seg.seq == tcb_.rcvNxt) {
            handleRst();
        } else {
            sendChallengeAck();
        }
        return;
    }

    if (seg.flags.syn) {
        // SYN on a synchronized connection: challenge ACK (RFC 5961).
        sendChallengeAck();
        return;
    }

    if (!seg.flags.ack) return;

    // Timestamp bookkeeping (RFC 7323): echo the most recent in-window TSval.
    // R4's monotonicity guard keeps a reordered old duplicate from moving
    // the echo backwards (a stale echo becomes an inflated RTT sample).
    if (tcb_.tsEnabled && seg.timestamps && seqLe(seg.seq, tcb_.rcvNxt) &&
        seqGe(seg.timestamps->value, tcb_.tsRecent))
        tcb_.tsRecent = seg.timestamps->value;

    if (config_.headerPrediction) tryHeaderPrediction(seg);

    if (tcb_.state == State::kSynReceived) {
        if (seqGt(seg.ack, tcb_.sndUna) && seqLe(seg.ack, tcb_.sndMax)) {
            tcb_.sndUna = seg.ack;
            tcb_.sndWnd = seg.windowBytes(tcb_.sndWndShift);
            tcb_.sndWl1 = seg.seq;
            tcb_.sndWl2 = seg.ack;
            rexmitTimer_.stop();
            tcb_.rxtShift = 0;
            setState(State::kEstablished);
            armKeepAlive();
            if (onConnected_) onConnected_();
        } else {
            return;
        }
    }

    if (tcb_.sackEnabled) processSackBlocks(seg.sackBlocks);
    if (tcb_.ecnEnabled && seg.flags.ece && cc_->onEce()) {
        ++stats_.ecnResponses;
        traceCwnd();
    }
    processAck(seg);
    updateWindow(seg);
    if (!seg.payload.empty()) processData(seg);
    if (seg.flags.fin) processFin(seg);
}

bool TcpSocket::tryHeaderPrediction(const Segment& seg) {
    // FreeBSD-style fast path check (§4.1 "header prediction"): established
    // state, no exotic flags, in-order, window unchanged. The slow path is
    // always taken afterwards for correctness; this counter documents how
    // often the fast path would short-circuit processing.
    if (tcb_.state != State::kEstablished) return false;
    if (seg.flags.syn || seg.flags.fin || seg.flags.rst || seg.flags.ece) return false;
    if (seg.seq != tcb_.rcvNxt) return false;
    // "Window unchanged": compare in bytes through the shift-aware decode —
    // the raw 16-bit field must never be compared against the 32-bit
    // tcb_.sndWnd directly (it silently truncates once scaling is on).
    if (seg.windowBytes(tcb_.sndWndShift) != tcb_.sndWnd) return false;
    const bool pureAck = seg.payload.empty() && seqGt(seg.ack, tcb_.sndUna) &&
                         seqLe(seg.ack, tcb_.sndMax) && !tcb_.inFastRecovery;
    const bool pureData = !seg.payload.empty() && seg.ack == tcb_.sndUna &&
                          recvBuf_.outOfOrderBytes() == 0;
    if (pureAck || pureData) {
        ++stats_.headerPredictions;
        return true;
    }
    return false;
}

void TcpSocket::processAck(const Segment& seg) {
    if (seqGt(seg.ack, tcb_.sndMax)) {
        // Acking data we never sent.
        sendChallengeAck();
        return;
    }

    if (seqLe(seg.ack, tcb_.sndUna)) {
        // Duplicate ACK detection (RFC 5681): no payload, no window change,
        // outstanding data.
        const bool dup = seg.payload.empty() && seg.ack == tcb_.sndUna &&
                         seg.windowBytes(tcb_.sndWndShift) == tcb_.sndWnd &&
                         tcb_.sndNxt != tcb_.sndUna && !seg.flags.fin;
        if (!dup) return;
        ++stats_.dupAcksReceived;
        ++tcb_.dupAcks;
        if (config_.limitedTransmit && tcb_.dupAcks <= 2 && unsentBytes() > 0) {
            // RFC 3042: each of the first two dup ACKs releases one new
            // segment (within the receiver window), keeping the ACK clock
            // alive so fast retransmit can trigger.
            const std::uint32_t flight = std::uint32_t(tcb_.sndNxt - tcb_.sndUna);
            const std::size_t len = std::min<std::size_t>(tcb_.mss, unsentBytes());
            if (flight + len <= tcb_.sndWnd) {
                sendSegment(tcb_.sndNxt, len, false, false);
                tcb_.sndNxt += std::uint32_t(len);
                tcb_.sndMax = seqMax(tcb_.sndMax, tcb_.sndNxt);
            }
        }
        if (tcb_.dupAcks == 3) {
            enterFastRecovery();
        } else if (tcb_.dupAcks > 3 && tcb_.inFastRecovery) {
            cc_->onDupAckInflate();  // window inflation (RFC 5681)
            traceCwnd();
            // SACK-driven hole filling (Table 1: Selective ACKs).
            if (tcb_.sackEnabled) {
                if (auto hole = nextSackHole()) {
                    const std::size_t len = std::min<std::size_t>(
                        tcb_.mss, sendBuf_.size() - std::uint32_t(*hole - tcb_.sndUna));
                    if (len > 0) {
                        ++stats_.sackRetransmissions;
                        sendSegment(*hole, len, false, false);
                    }
                }
            }
            output();
        }
        return;
    }

    // Forward ACK.
    const std::uint32_t acked = std::uint32_t(seg.ack - tcb_.sndUna);
    const std::size_t bufferedAcked = std::min<std::size_t>(acked, sendBuf_.size());
    sendBuf_.ack(bufferedAcked);
    stats_.bytesAcked += bufferedAcked;

    // RTT sampling: timestamps make retransmitted segments measurable —
    // the property §9.4 contrasts with CoCoA's inflated estimates.
    if (tcb_.tsEnabled && seg.timestamps && seg.timestamps->echo != 0) {
        const std::uint32_t nowMs = tsNow();
        const std::uint32_t rttMs = nowMs - seg.timestamps->echo;
        if (std::int32_t(rttMs) >= 0 && rttMs < 120000) updateRtt(sim::Time(rttMs) * sim::kMillisecond);
    }
    // RFC 6298 §5.7: a fresh ACK after a retransmit backoff re-initializes
    // the RTO from srtt/rttvar instead of leaving it at the doubled value —
    // without timestamps no RTT sample would ever repair it (Karn's rule
    // forbids sampling retransmitted segments).
    if (tcb_.rxtShift > 0) tcb_.rto = baseRto();
    tcb_.rxtShift = 0;

    const bool finWasAcked = tcb_.finSent && seqGe(seg.ack, finSeq_ + 1);
    bool partialAck = false;

    if (tcb_.inFastRecovery) {
        if (seqGe(seg.ack, tcb_.recover)) {
            exitFastRecovery(seg.ack);
        } else {
            // NewReno partial ACK (RFC 6582): retransmit the next hole,
            // deflate by the amount acked, stay in recovery.
            partialAck = true;
            tcb_.sndUna = seg.ack;
            if (seqLt(tcb_.sndNxt, tcb_.sndUna)) tcb_.sndNxt = tcb_.sndUna;
            dropSackedBelow(seg.ack);
            Seq rexmitFrom = seg.ack;
            if (tcb_.sackEnabled) {
                if (auto hole = nextSackHole()) rexmitFrom = *hole;
            }
            const std::uint32_t off = std::uint32_t(rexmitFrom - tcb_.sndUna);
            if (sendBuf_.size() > off) {
                const std::size_t holeLen =
                    std::min<std::size_t>(tcb_.mss, sendBuf_.size() - off);
                sendSegment(rexmitFrom, holeLen, false, false);
            }
            cc_->onPartialAck(stack_.simulator().now(), acked);
            traceCwnd();
        }
    } else if (acked > 0) {
        cc_->onAck(stack_.simulator().now(), acked);
        traceCwnd();
    }

    if (!partialAck) {
        tcb_.sndUna = seg.ack;
        if (seqLt(tcb_.sndNxt, tcb_.sndUna)) tcb_.sndNxt = tcb_.sndUna;
        dropSackedBelow(seg.ack);
        tcb_.dupAcks = 0;
    }

    rexmitTimer_.stop();
    if (tcb_.sndNxt != tcb_.sndUna) armRexmit();
    stack_.netif().setExpectingResponse(tcb_.sndNxt != tcb_.sndUna);

    if (finWasAcked) tcb_.ourFinAcked = true;
    maybeFinishClose(finWasAcked);

    if (onSendSpace_ && bufferedAcked > 0) onSendSpace_();
    output();
}

void TcpSocket::maybeFinishClose(bool finAcked) {
    (void)finAcked;
    if (!tcb_.ourFinAcked) return;
    switch (tcb_.state) {
        case State::kFinWait1:
            setState(State::kFinWait2);
            break;
        case State::kClosing:
            enterTimeWait();
            break;
        case State::kLastAck:
            rexmitTimer_.stop();
            persistTimer_.stop();
            setState(State::kClosed);
            if (onClosed_) onClosed_();
            break;
        default:
            break;
    }
}

void TcpSocket::updateWindow(const Segment& seg) {
    // A segment acking data we never sent already drew a challenge ACK in
    // processAck; its window field is just as untrustworthy. Without this
    // guard it would pass the WL1/WL2 check below (its bogus future ack
    // exceeds sndWl2), overwrite sndWnd, AND park sndWl2 at the bogus ack —
    // blocking every legitimate window update until sndUna catches up.
    if (seqGt(seg.ack, tcb_.sndMax)) return;
    // RFC 793 SND.WL1/SND.WL2 ordering: only a segment at least as recent
    // as the last window update may change the window — a reordered old
    // segment must not overwrite sndWnd with its stale value.
    if (seqLt(tcb_.sndWl1, seg.seq) ||
        (tcb_.sndWl1 == seg.seq && seqLe(tcb_.sndWl2, seg.ack))) {
        const std::uint32_t oldWnd = tcb_.sndWnd;
        tcb_.sndWnd = seg.windowBytes(tcb_.sndWndShift);
        tcb_.sndWl1 = seg.seq;
        tcb_.sndWl2 = seg.ack;
        if (oldWnd == 0 && tcb_.sndWnd > 0) {
            // Window opened: cancel persist mode and push data.
            persistTimer_.stop();
            tcb_.persisting = false;
            tcb_.persistShift = 0;
            tcb_.persistRtoBase = 0;
            output();
        }
    }
}

void TcpSocket::processData(const Segment& seg) {
    const std::int32_t rel = seqDiff(seg.seq, tcb_.rcvNxt);
    BytesView data(seg.payload);
    std::size_t offset = 0;
    if (rel < 0) {
        const std::size_t skip = std::size_t(-rel);
        if (skip >= data.size()) {
            // Entirely duplicate data: ACK immediately to repair peer state.
            sendAckNow();
            return;
        }
        data = data.subspan(skip);
    } else {
        offset = std::size_t(rel);
    }

    if (config_.dropOutOfOrder && offset != 0) {
        sendAckNow();  // dup ACK; the data itself is discarded
        return;
    }

    // Receiver-side RTT for the autotune stop condition. A pure receiver
    // never ACK-clocks its own data, so srtt stays 0 here; but with RFC 7323
    // timestamps the peer echoes the tsval of our latest ACK, making
    // now - echo a round-trip sample. Min-tracked so the early, unbloated
    // segments pin the *base* RTT before autotune growth can fill queues.
    if (config_.recvBufferMaxBytes > recvBuf_.capacity() && tcb_.tsEnabled &&
        seg.timestamps && seg.timestamps->echo != 0) {
        const std::uint32_t rttMs = tsNow() - seg.timestamps->echo;
        if (std::int32_t(rttMs) >= 0 && rttMs < 120000) {
            const sim::Time sample = sim::Time(rttMs) * sim::kMillisecond;
            if (autotuneBaseRtt_ == 0 || sample < autotuneBaseRtt_)
                autotuneBaseRtt_ = sample;
        }
    }

    const std::size_t advanced = recvBuf_.insert(offset, data);
    tcb_.rcvNxt += std::uint32_t(advanced);
    if (advanced > 0) maybeAutotune();

    // Deliver in-sequence bytes to the application (auto-drain). The scratch
    // vector is a member so its capacity is reused delivery after delivery.
    if (advanced > 0 && onData_) {
        recvBuf_.readInto(recvBuf_.readable(), drainScratch_);
        onData_(drainScratch_);
    }

    const bool outOfOrder = offset != 0 || recvBuf_.outOfOrderBytes() > 0;
    if (outOfOrder) {
        // Immediate duplicate ACK carrying SACK blocks.
        sendAckNow();
    } else if (!config_.delayedAck) {
        sendAckNow();
    } else {
        ++tcb_.delAckPending;
        if (tcb_.delAckPending >= 2) {
            sendAckNow();  // ACK every other full-sized segment (RFC 1122)
        } else {
            scheduleDelack();
        }
    }
}

void TcpSocket::maybeAutotune() {
    // DRS-style receive-buffer autotuning (Fisk & Feng): a sender limited by
    // our advertised window delivers exactly one buffer's worth per RTT, so
    // the time for rcvNxt to advance one capacity past the mark *is* the
    // RTT whenever the buffer binds. Target twice the bytes delivered per
    // measured interval — a buffer-limited flow doubles each round until
    // the buffer stops binding or the budget is reached.
    if (config_.recvBufferMaxBytes <= recvBuf_.capacity()) return;
    const sim::Time now = stack_.simulator().now();
    if (!autotuneArmed_) {
        autotuneArmed_ = true;
        autotuneMark_ = tcb_.rcvNxt;
        autotuneMarkAt_ = now;
        return;
    }
    const std::uint32_t delivered = std::uint32_t(tcb_.rcvNxt - autotuneMark_);
    if (delivered < recvBuf_.capacity()) return;  // buffer has not turned over
    const sim::Time interval = now - autotuneMarkAt_;
    autotuneLastRtt_ = interval;
    autotuneMark_ = tcb_.rcvNxt;
    autotuneMarkAt_ = now;
    // DRS's stop condition: growth helps only while the buffer *binds* —
    // the sender then turns the whole buffer over in about one RTT. Slower
    // turnover means the flow is cwnd- or loss-limited, and growing the
    // window further would only bloat queues. The comparison must use the
    // *base* (minimum-seen) RTT — sampled passively from timestamp echoes
    // in processData — not a smoothed current estimate: once queues build,
    // a smoothed RTT inflates in lockstep with the turnover interval and
    // the bound would chase its own tail, growing to the budget regardless
    // of path BDP (the trap the bdp_line radio sweep pins against the
    // genuinely window-starved bdp_pipe grid).
    if (autotuneBaseRtt_ > 0 && interval > 2 * autotuneBaseRtt_) return;
    const std::size_t target = std::min<std::size_t>(
        2 * std::size_t(delivered), config_.recvBufferMaxBytes);
    if (target > recvBuf_.capacity()) recvBuf_.grow(target);
}

void TcpSocket::processFin(const Segment& seg) {
    const Seq finSeq = seg.seq + std::uint32_t(seg.payload.size());
    if (finSeq != tcb_.rcvNxt) return;  // data before the FIN still missing
    tcb_.rcvNxt += 1;
    sendAckNow();
    switch (tcb_.state) {
        case State::kEstablished:
            setState(State::kCloseWait);
            if (onPeerFin_) onPeerFin_();
            break;
        case State::kFinWait1:
            if (tcb_.ourFinAcked) {
                enterTimeWait();
            } else {
                setState(State::kClosing);
            }
            if (onPeerFin_) onPeerFin_();
            break;
        case State::kFinWait2:
            enterTimeWait();
            if (onPeerFin_) onPeerFin_();
            break;
        default:
            break;
    }
}

void TcpSocket::handleRst() {
    connectionDropped();
}

void TcpSocket::sendChallengeAck() {
    ++stats_.challengeAcks;
    sendAckNow();
}

void TcpSocket::updateRtt(sim::Time sample) {
    stats_.rttSamples.add(sim::toMillis(sample));
    if (tcb_.srtt == 0) {
        tcb_.srtt = sample;
        tcb_.rttvar = sample / 2;
    } else {
        const sim::Time err = sample - tcb_.srtt;
        tcb_.srtt += err / 8;
        tcb_.rttvar += ((err < 0 ? -err : err) - tcb_.rttvar) / 4;
    }
    tcb_.rto = baseRto();
    cc_->onRttSample(sample);
}

// --- Congestion control ---------------------------------------------------
// Window policy lives in the strategy (tcp/congestion.hpp); the socket keeps
// the protocol side — what to retransmit and when to restart the timer.

void TcpSocket::enterFastRecovery() {
    if (tcb_.inFastRecovery) return;
    // The strategy cuts (or holds) ssthresh, arms the recovery point and
    // inflates cwnd; retransmission below never reads cwnd/ssthresh.
    cc_->onEnterRecovery(stack_.simulator().now());
    ++stats_.fastRetransmissions;

    // Retransmit the presumed-lost segment (first SACK hole if known).
    Seq from = tcb_.sndUna;
    if (tcb_.sackEnabled) {
        if (auto hole = nextSackHole()) from = *hole;
    }
    const std::uint32_t off = std::uint32_t(from - tcb_.sndUna);
    const std::size_t len =
        std::min<std::size_t>(tcb_.mss, sendBuf_.size() > off ? sendBuf_.size() - off : 0);
    if (len > 0) {
        sendSegment(from, len, false, false);
    } else if (tcb_.finSent) {
        sendSegment(finSeq_, 0, true, false);  // lost FIN
    }

    traceCwnd();
    rexmitTimer_.stop();
    armRexmit();
}

void TcpSocket::exitFastRecovery(Seq ack) {
    (void)ack;
    cc_->onExitRecovery(stack_.simulator().now());
    traceCwnd();
}

// --- SACK scoreboard --------------------------------------------------------

void TcpSocket::mergeSack(SackBlock block) {
    if (seqGe(block.begin, block.end)) return;
    if (seqLe(block.end, tcb_.sndUna)) return;
    if (seqLt(block.begin, tcb_.sndUna)) block.begin = tcb_.sndUna;

    scoreboard_.push_back(block);
    std::sort(scoreboard_.begin(), scoreboard_.end(),
              [](const SackBlock& a, const SackBlock& b) { return seqLt(a.begin, b.begin); });
    std::vector<SackBlock> merged;
    for (const SackBlock& b : scoreboard_) {
        if (!merged.empty() && seqGe(merged.back().end, b.begin)) {
            merged.back().end = seqMax(merged.back().end, b.end);
        } else {
            merged.push_back(b);
        }
    }
    scoreboard_ = std::move(merged);
}

void TcpSocket::processSackBlocks(const std::vector<SackBlock>& blocks) {
    for (const SackBlock& b : blocks) mergeSack(b);
}

bool TcpSocket::isSacked(Seq from, Seq to) const {
    for (const SackBlock& b : scoreboard_) {
        if (seqLe(b.begin, from) && seqGe(b.end, to)) return true;
    }
    return false;
}

std::optional<Seq> TcpSocket::nextSackHole() const {
    if (scoreboard_.empty()) return std::nullopt;
    Seq cursor = tcb_.sndUna;
    for (const SackBlock& b : scoreboard_) {
        if (seqLt(cursor, b.begin)) return cursor;  // hole before this block
        cursor = seqMax(cursor, b.end);
    }
    if (seqLt(cursor, tcb_.sndNxt)) return cursor;  // hole after last block
    return std::nullopt;
}

void TcpSocket::dropSackedBelow(Seq seq) {
    for (auto it = scoreboard_.begin(); it != scoreboard_.end();) {
        if (seqLe(it->end, seq)) {
            it = scoreboard_.erase(it);
        } else {
            if (seqLt(it->begin, seq)) it->begin = seq;
            ++it;
        }
    }
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(ip6::NetIf& netif) : netif_(netif) {
    netif_.registerProtocol(ip6::kProtoTcp,
                            [this](const ip6::Packet& p) { packetInput(p); });
}

TcpSocket& TcpStack::createSocket(TcpConfig config) {
    sockets_.push_back(std::make_unique<TcpSocket>(*this, config));
    return *sockets_.back();
}

PassiveSocket& TcpStack::listen(std::uint16_t port, TcpConfig config,
                                PassiveSocket::AcceptCallback cb) {
    listeners_.push_back(
        std::make_unique<PassiveSocket>(*this, port, config, std::move(cb)));
    return *listeners_.back();
}

void TcpStack::destroySocket(TcpSocket& socket) {
    for (auto it = sockets_.begin(); it != sockets_.end(); ++it) {
        if (it->get() == &socket) {
            sockets_.erase(it);
            return;
        }
    }
}

void TcpStack::dropAllConnectionsSilently() {
    for (auto& s : sockets_) s->dropSilently();
}

void TcpStack::bind(TcpSocket&) {}
void TcpStack::unbind(TcpSocket&) {}

void TcpStack::transmit(TcpSocket& socket, Segment& seg) {
    ip6::Packet packet;
    packet.src = netif_.address();
    packet.dst = socket.remoteAddr_;
    packet.nextHeader = ip6::kProtoTcp;
    if (socket.tcb_.ecnEnabled && !seg.payload.empty())
        packet.setEcn(ip6::Ecn::kCapable0);
    packet.payload = seg.encode();
    netif_.sendPacket(std::move(packet));
}

void TcpStack::packetInput(const ip6::Packet& packet) {
    const auto seg = Segment::decode(packet.payload);
    if (!seg) return;

    // Exact four-tuple match.
    for (auto& s : sockets_) {
        if (s->tcb_.state == State::kClosed || s->tcb_.state == State::kFailed) continue;
        if (s->localPort_ == seg->dstPort && s->remotePort_ == seg->srcPort &&
            s->remoteAddr_ == packet.src) {
            s->input(*seg, packet.ecn());
            return;
        }
    }
    // Listener match: new connection.
    if (seg->flags.syn && !seg->flags.ack) {
        for (auto& l : listeners_) {
            if (l->port_ == seg->dstPort) {
                TcpSocket& child = createSocket(l->config_);
                child.localPort_ = seg->dstPort;
                if (l->accept_) l->accept_(child);
                child.beginPassiveOpen(*seg, packet.src);
                return;
            }
        }
    }
    sendRst(*seg, packet.src);
}

void TcpStack::sendRst(const Segment& toSeg, const ip6::Address& dst) {
    if (toSeg.flags.rst) return;
    Segment rst;
    rst.srcPort = toSeg.dstPort;
    rst.dstPort = toSeg.srcPort;
    rst.flags.rst = true;
    if (toSeg.flags.ack) {
        rst.seq = toSeg.ack;
    } else {
        rst.flags.ack = true;
        rst.ack = toSeg.seq + std::uint32_t(toSeg.payload.size()) + (toSeg.flags.syn ? 1 : 0) +
                  (toSeg.flags.fin ? 1 : 0);
    }
    ip6::Packet packet;
    packet.src = netif_.address();
    packet.dst = dst;
    packet.nextHeader = ip6::kProtoTcp;
    packet.payload = rst.encode();
    netif_.sendPacket(std::move(packet));
}

}  // namespace tcplp::tcp
