#include "tcplp/tcp/congestion.hpp"

namespace tcplp::tcp {

std::unique_ptr<CongestionControl> makeCongestionControl(CcKind kind, Tcb& tcb,
                                                         const CcEnv& env) {
    switch (kind) {
        case CcKind::kCerl: return std::make_unique<CerlCc>(tcb, env);
        case CcKind::kWestwood: return std::make_unique<WestwoodCc>(tcb, env);
        case CcKind::kNewReno: break;
    }
    return std::make_unique<NewRenoCc>(tcb, env);
}

}  // namespace tcplp::tcp
