// 32-bit TCP sequence-number arithmetic (wraps modulo 2^32).
#pragma once

#include <cstdint>

namespace tcplp::tcp {

using Seq = std::uint32_t;

inline bool seqLt(Seq a, Seq b) { return std::int32_t(a - b) < 0; }
inline bool seqLe(Seq a, Seq b) { return std::int32_t(a - b) <= 0; }
inline bool seqGt(Seq a, Seq b) { return std::int32_t(a - b) > 0; }
inline bool seqGe(Seq a, Seq b) { return std::int32_t(a - b) >= 0; }
inline Seq seqMax(Seq a, Seq b) { return seqGt(a, b) ? a : b; }
inline Seq seqMin(Seq a, Seq b) { return seqLt(a, b) ? a : b; }

/// Signed distance b - a (valid when |b-a| < 2^31).
inline std::int32_t seqDiff(Seq b, Seq a) { return std::int32_t(b - a); }

}  // namespace tcplp::tcp
