// Receive buffer with in-place reassembly queue (paper §4.3.2, Figure 1b).
//
// A flat circular buffer sized at compile/construct time holds the
// in-sequence stream; out-of-order segments are written directly into the
// space past the received data — their eventual position — and a bitmap
// records which of those bytes are valid. When the gap fills, the contiguous
// run is "committed" into the in-sequence region without any copying.
//
// This gives deterministic memory use (the paper's motivation for rejecting
// FreeBSD's mbuf-chain buffers): buffer space is reserved up front and no
// packet-heap allocation happens on the receive path.
#pragma once

#include <cstdint>
#include <vector>

#include "tcplp/common/bitmap.hpp"
#include "tcplp/common/ring_buffer.hpp"

namespace tcplp::tcp {

struct RecvRange {
    std::size_t begin;  // offset past rcv_nxt
    std::size_t end;
};

class RecvBuffer {
public:
    explicit RecvBuffer(std::size_t capacity) : ring_(capacity), oooMap_(capacity) {}

    std::size_t capacity() const { return ring_.capacity(); }
    /// In-sequence bytes awaiting the application.
    std::size_t readable() const { return ring_.size(); }
    /// Advertisable receive window: free space not holding in-seq data.
    std::size_t window() const { return ring_.capacity() - ring_.size(); }

    /// Inserts segment data whose first byte is `offset` bytes past rcv_nxt
    /// (offset 0 = exactly the next expected byte). Data beyond the window
    /// is trimmed. Returns the number of bytes newly in sequence (the amount
    /// rcv_nxt advances).
    std::size_t insert(std::size_t offset, BytesView data) {
        const std::size_t win = window();
        if (offset >= win) return 0;
        const std::size_t n = std::min(data.size(), win - offset);
        if (n == 0) return 0;

        ring_.writeAt(offset, BytesView(data.data(), n));
        oooMap_.setRange(offset, offset + n);

        const std::size_t run = oooMap_.countContiguousFrom(0);
        if (run == 0) return 0;
        ring_.commit(run);
        shiftMap(run);
        return run;
    }

    /// Application read: removes up to `n` in-sequence bytes.
    Bytes read(std::size_t n) { return ring_.read(n); }

    /// read() into a reusable scratch vector (allocation-free once warm).
    std::size_t readInto(std::size_t n, Bytes& out) { return ring_.readInto(n, out); }

    /// SACK blocks describing buffered out-of-order data, as offsets past
    /// rcv_nxt, at most `maxBlocks` ranges (most recently useful first is
    /// approximated by lowest-offset first).
    std::vector<RecvRange> sackRanges(std::size_t maxBlocks = 3) const {
        std::vector<RecvRange> out;
        std::size_t i = 0;
        const std::size_t limit = window();
        while (i < limit && out.size() < maxBlocks) {
            while (i < limit && !oooMap_.test(i)) ++i;
            if (i >= limit) break;
            std::size_t j = i;
            while (j < limit && oooMap_.test(j)) ++j;
            out.push_back(RecvRange{i, j});
            i = j;
        }
        return out;
    }

    /// Total out-of-order bytes currently parked past the in-seq data.
    std::size_t outOfOrderBytes() const { return oooMap_.popcount(); }

    /// Grows the buffer in place (receive-buffer autotuning). In-sequence
    /// bytes, parked out-of-order bytes, and their bitmap offsets are all
    /// preserved; only the advertisable window gets larger. No-op if
    /// `newCapacity` does not exceed the current capacity.
    void grow(std::size_t newCapacity) {
        if (newCapacity <= capacity()) return;
        ring_.grow(newCapacity);
        oooMap_.grow(newCapacity);
    }

private:
    void shiftMap(std::size_t by) {
        // The bitmap is indexed relative to rcv_nxt; advance the origin.
        oooMap_.shiftDown(by);
    }

    RingBuffer ring_;
    Bitmap oooMap_;
};

}  // namespace tcplp::tcp
