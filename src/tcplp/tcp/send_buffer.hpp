// Zero-copy send buffer (paper §4.3.1).
//
// The buffer is a linked list of nodes, each referencing a span of
// application data. When the application hands over an immutable chunk
// (`appendShared`, the paper's Lua-string case), the node simply points at
// the caller's storage — no copy, so "the memory allocated to the send
// buffer can be very small: it only needs to contain a few nodes of a linked
// list". Mutable writes (`append`, the C-API case on RIOT/OpenThread) are
// copied into owned chunks, costing the "few kilobytes of additional memory"
// the paper reports for that platform. Owned chunks live in slab-pooled
// PacketBuffer storage and the node FIFO is a RingDeque, so a steady-state
// send/ack cycle recycles storage instead of hitting the heap.
//
// Byte addressing is stream-relative: offset 0 is the first unacknowledged
// byte (snd_una). ack() slides the origin forward and releases whole nodes.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/bytes.hpp"
#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/common/ring_deque.hpp"

namespace tcplp::tcp {

class SendBuffer {
public:
    explicit SendBuffer(std::size_t capacity) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    std::size_t free() const { return capacity_ - size_; }

    /// Copies as much of `data` as fits; returns bytes accepted.
    std::size_t append(BytesView data) {
        const std::size_t n = std::min(data.size(), free());
        if (n == 0) return 0;
        Node node;
        node.owned = PacketBuffer::copyOf(BytesView(data.data(), n), /*headroom=*/0);
        node.len = n;
        nodes_.push_back(std::move(node));
        size_ += n;
        return n;
    }

    /// Zero-copy append: the node aliases `data` (which the caller promises
    /// not to mutate, mirroring immutable Lua strings). Returns bytes
    /// accepted (0 if the chunk does not fit entirely — aliased chunks are
    /// not split so the zero-copy property is preserved).
    std::size_t appendShared(std::shared_ptr<const Bytes> data) {
        const std::size_t n = data->size();
        if (n > free()) return 0;
        Node node;
        node.shared = std::move(data);
        node.len = n;
        nodes_.push_back(std::move(node));
        size_ += n;
        return n;
    }

    /// Assembles `len` bytes starting `offset` past the first unacked byte
    /// (for [re]transmission). Clamps to available data.
    Bytes read(std::size_t offset, std::size_t len) const {
        Bytes out;
        if (offset >= size_) return out;
        len = std::min(len, size_ - offset);
        out.resize(len);
        gather(offset, len, out.data());
        return out;
    }

    /// read() into slab-pooled PacketBuffer storage — the transmission path
    /// uses this so segment payload assembly allocates nothing once the
    /// per-simulation pool is warm.
    PacketBuffer readSegment(std::size_t offset, std::size_t len) const {
        if (offset >= size_) return PacketBuffer::allocate(0);
        len = std::min(len, size_ - offset);
        PacketBuffer out = PacketBuffer::allocate(len);
        gather(offset, len, out.mutableData());
        return out;
    }

    /// Releases `n` acknowledged bytes from the front.
    void ack(std::size_t n) {
        TCPLP_ASSERT(n <= size_);
        size_ -= n;
        while (n > 0 && !nodes_.empty()) {
            Node& head = nodes_.front();
            if (head.len <= n) {
                n -= head.len;
                nodes_.pop_front();
            } else {
                head.off += n;
                head.len -= n;
                n = 0;
            }
        }
    }

    std::size_t nodeCount() const { return nodes_.size(); }

    /// Bytes of storage owned by the buffer itself (copied chunks only) —
    /// the quantity the zero-copy design minimizes.
    std::size_t ownedBytes() const {
        std::size_t n = 0;
        for (const Node& node : nodes_)
            if (node.owned.valid()) n += node.owned.size();
        return n;
    }

private:
    struct Node {
        // Exactly one of these holds the chunk: `owned` for copied data
        // (slab-pooled), `shared` for aliased application storage.
        PacketBuffer owned;
        std::shared_ptr<const Bytes> shared;
        std::size_t off = 0;
        std::size_t len = 0;
        const std::uint8_t* bytes() const {
            return owned.valid() ? owned.data() : shared->data();
        }
    };

    void gather(std::size_t offset, std::size_t len, std::uint8_t* dst) const {
        std::size_t written = 0;
        std::size_t pos = 0;
        for (const Node& node : nodes_) {
            if (written == len) break;
            const std::size_t nodeEnd = pos + node.len;
            if (nodeEnd > offset) {
                const std::size_t start = (offset > pos) ? offset - pos : 0;
                const std::size_t want = std::min(node.len - start, len - written);
                std::memcpy(dst + written, node.bytes() + node.off + start, want);
                written += want;
            }
            pos = nodeEnd;
            if (pos >= offset + len) break;
        }
        TCPLP_ASSERT(written == len);
    }

    std::size_t capacity_;
    std::size_t size_ = 0;
    RingDeque<Node> nodes_;
};

}  // namespace tcplp::tcp
