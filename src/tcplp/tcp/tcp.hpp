// TCPlp: a full-scale TCP engine for low-power networks.
//
// Protocol logic modeled on the feature set TCPlp keeps from FreeBSD
// (paper Table 1 and §4.1): sliding window, New Reno congestion control,
// RTT estimation with TCP timestamps, MSS negotiation, out-of-order
// reassembly, selective ACKs, delayed ACKs, zero-window probes, header
// prediction, and challenge ACKs. Deliberately omitted, as in the paper:
// dynamic window scaling (buffers that would need it cannot fit in mote
// RAM), the urgent pointer, and the SYN-cache/security machinery.
//
// The engine is host-independent (§4.1's portability argument): it touches
// the outside world only through ip6::NetIf (packets) and sim::Simulator
// (timers), so the same code runs as the mote endpoint (small buffers), the
// "Linux server" endpoint (large buffers), and under direct unit test over
// a loopback pipe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "tcplp/common/stats.hpp"
#include "tcplp/ip6/netif.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/cc.hpp"
#include "tcplp/tcp/recv_buffer.hpp"
#include "tcplp/tcp/segment.hpp"
#include "tcplp/tcp/send_buffer.hpp"
#include "tcplp/tcp/tcb.hpp"

namespace tcplp::tcp {

class CongestionControl;

struct TcpConfig {
    std::size_t sendBufferBytes = 2048;   // ~4 segments at MSS 462 (§6.2)
    std::size_t recvBufferBytes = 2048;
    std::uint16_t mss = 462;              // 5 frames worth of payload (§6.1)
    bool delayedAck = true;
    bool sack = true;
    bool timestamps = true;
    bool ecn = false;
    bool headerPrediction = true;
    /// Ablation: discard out-of-order segments instead of holding them in
    /// the in-place reassembly queue (how uIP/BLIP behave, Table 1).
    bool dropOutOfOrder = false;
    sim::Time delAckTimeout = 100 * sim::kMillisecond;
    sim::Time minRto = 1 * sim::kSecond;      // RFC 6298 floor
    sim::Time maxRto = 60 * sim::kSecond;
    sim::Time initialRto = 3 * sim::kSecond;
    sim::Time persistMin = 5 * sim::kSecond;
    sim::Time persistMax = 60 * sim::kSecond;
    sim::Time msl = 5 * sim::kSecond;         // TIME_WAIT = 2*MSL
    int maxRetransmits = 12;                  // §9.4: "up to 12 retransmissions"
    /// RFC 1122 §4.2.3.5 R1: after this many consecutive retransmissions of
    /// the same data the application is notified (setOnRexmitTrouble) that
    /// the path may be down — delivery is still attempted until R2
    /// (maxRetransmits) aborts. 0 disables the notification.
    int rexmitNotifyThreshold = 4;
    /// Zero-window probes are exempt from R2 while the peer answers them
    /// (RFC 1122 explicitly allows a zero window to persist indefinitely),
    /// but a peer that stops answering probes is just as dead as one that
    /// stops ACKing data: give up after this many consecutive *unanswered*
    /// probes. 0 = probe forever (pre-fault-injection behavior).
    int maxPersistProbes = 12;
    /// Keep-alive (RFC 1122 §4.2.3.6): after `keepAliveIdle` with no segment
    /// from the peer, send a probe every `keepAliveInterval`; give up after
    /// `keepAliveProbes` consecutive unanswered probes. Idle 0 = disabled
    /// (the default — idle connections are free in the paper's deployments).
    sim::Time keepAliveIdle = 0;
    sim::Time keepAliveInterval = 10 * sim::kSecond;
    int keepAliveProbes = 6;
    std::uint32_t initialCwndSegments = 2;
    /// Congestion-window ceiling in bytes; 0 = the send buffer capacity.
    /// Lets the send buffer hold application backlog (§9.2: "an additional
    /// 40 readings fit in TCP's send buffer") beyond the window.
    std::uint32_t cwndCapBytes = 0;
    /// RFC 3042 limited transmit: send one new segment on each of the first
    /// two duplicate ACKs. Helps fast retransmit trigger with small windows
    /// on clean paths, but adds traffic during recovery — off by default in
    /// the LLN configuration (the extra frames worsen self-interference on
    /// multihop 802.15.4 paths).
    bool limitedTransmit = false;
    /// Congestion-control strategy (tcp/congestion.hpp). kNewReno is the
    /// paper's stock behavior and replays the pre-strategy engine
    /// byte-for-byte; the wireless variants change only the loss response.
    CcKind cc = CcKind::kNewReno;
    /// RFC 7323 window scaling. Off by default: the paper's mote buffers
    /// never need more than 16 bits of window, and the option must not
    /// appear on the wire in any golden-pinned scenario. When on, WSopt is
    /// offered on the SYN/SYN-ACK and the negotiated shifts (clamped to 14)
    /// scale every non-SYN window field through Segment::setWindowBytes /
    /// windowBytes.
    bool windowScaling = false;
    /// Receive-buffer autotuning budget (bytes); 0 = fixed buffer. When set,
    /// the receive buffer starts at recvBufferBytes and grows toward the
    /// measured delivered-bytes-per-RTT (DRS-style) up to this ceiling — the
    /// adaptive analog of Fig. 5's static window sweep. The advertised
    /// window scale is derived from this ceiling so growth never outruns
    /// what the handshake promised.
    std::size_t recvBufferMaxBytes = 0;
};

struct TcpStats {
    std::uint64_t segsSent = 0;
    std::uint64_t segsReceived = 0;
    std::uint64_t bytesSent = 0;          // payload bytes, incl. rexmits
    std::uint64_t bytesAcked = 0;
    std::uint64_t retransmissions = 0;    // data segments re-sent (all causes)
    std::uint64_t fastRetransmissions = 0;
    std::uint64_t sackRetransmissions = 0;
    std::uint64_t timeouts = 0;           // RTO expirations
    std::uint64_t dupAcksReceived = 0;
    std::uint64_t headerPredictions = 0;  // fast-path hits
    std::uint64_t challengeAcks = 0;
    std::uint64_t zeroWindowProbes = 0;
    std::uint64_t ecnResponses = 0;
    std::uint64_t rexmitNotifications = 0;  // R1 threshold crossings
    std::uint64_t rexmitGiveUps = 0;        // R2 aborts (-> kFailed)
    std::uint64_t persistGiveUps = 0;       // unanswered-probe aborts
    std::uint64_t keepAliveProbesSent = 0;
    std::uint64_t keepAliveGiveUps = 0;
    Summary rttSamples;                   // milliseconds
};

class TcpStack;

/// An active TCP endpoint (the paper's "active socket", §4.1).
class TcpSocket {
public:
    using DataCallback = std::function<void(BytesView)>;
    using EventCallback = std::function<void()>;
    /// (time, cwnd, ssthresh) — drives Fig. 7(a).
    using CwndTracer = std::function<void(sim::Time, std::uint32_t, std::uint32_t)>;

    TcpSocket(TcpStack& stack, TcpConfig config);
    ~TcpSocket();
    TcpSocket(const TcpSocket&) = delete;
    TcpSocket& operator=(const TcpSocket&) = delete;

    // --- Application interface ----------------------------------------
    void connect(const ip6::Address& dst, std::uint16_t dstPort);
    /// Queues data (copied into the send buffer); returns bytes accepted.
    std::size_t send(BytesView data);
    /// Zero-copy queueing of an immutable chunk (§4.3.1); all-or-nothing.
    std::size_t sendZeroCopy(std::shared_ptr<const Bytes> data);
    std::size_t sendFree() const { return sendBuf_.free(); }
    /// Closes the write side (FIN); the socket drains in the background.
    void close();
    /// Hard drop: RST to peer, socket immediately closed.
    void abort();
    /// Crash semantics: all timers stopped, state cleared to kClosed, no RST
    /// and no callbacks — as if the host lost power (fault injection).
    void dropSilently();

    void setOnConnected(EventCallback cb) { onConnected_ = std::move(cb); }
    void setOnData(DataCallback cb) { onData_ = std::move(cb); }
    void setOnClosed(EventCallback cb) { onClosed_ = std::move(cb); }
    /// Peer sent FIN (read side closed); a typical app responds with close().
    void setOnPeerFin(EventCallback cb) { onPeerFin_ = std::move(cb); }
    /// Manual read mode (no onData callback): pull up to n buffered bytes.
    Bytes read(std::size_t n);
    std::size_t readable() const { return recvBuf_.readable(); }
    /// Current receive-buffer capacity (grows under autotuning).
    std::size_t recvBufferCapacity() const { return recvBuf_.capacity(); }
    /// Last buffer-turnover interval the autotuner measured (~RTT when the
    /// buffer binds); 0 until the first growth decision.
    sim::Time autotuneLastRtt() const { return autotuneLastRtt_; }
    /// Connection failed/reset/timed out.
    void setOnError(EventCallback cb) { onError_ = std::move(cb); }
    /// R1 notification (RFC 1122 §4.2.3.5): retransmissions are piling up
    /// but the connection has not yet been aborted.
    void setOnRexmitTrouble(EventCallback cb) { onRexmitTrouble_ = std::move(cb); }
    void setCwndTracer(CwndTracer cb) { cwndTracer_ = std::move(cb); }
    /// Fires whenever send-buffer space becomes available.
    void setOnSendSpace(EventCallback cb) { onSendSpace_ = std::move(cb); }

    // --- Introspection -------------------------------------------------
    State state() const { return tcb_.state; }
    const Tcb& tcb() const { return tcb_; }
    const TcpConfig& config() const { return config_; }
    const TcpStats& stats() const { return stats_; }
    /// Congestion-response counters of the active strategy (loss_cuts /
    /// cuts_skipped in the shootout rows).
    const CcStats& ccStats() const;
    std::uint16_t localPort() const { return localPort_; }
    std::uint32_t flightSize() const { return std::uint32_t(tcb_.sndNxt - tcb_.sndUna); }
    sim::Time currentRto() const { return tcb_.rto; }

    // --- Stack-internal ------------------------------------------------
    void input(const Segment& seg, ip6::Ecn ipEcn);
    void beginPassiveOpen(const Segment& syn, const ip6::Address& peer);

private:
    friend class TcpStack;

    // Output path.
    void output();
    void sendSegment(Seq seq, std::size_t len, bool fin, bool syn);
    void emit(Segment& seg);
    void sendAckNow();
    void scheduleDelack();
    std::uint32_t effSndWindow() const;
    std::size_t unsentBytes() const;

    // Input helpers.
    bool tryHeaderPrediction(const Segment& seg);
    void processAck(const Segment& seg);
    void processSackBlocks(const std::vector<SackBlock>& blocks);
    void processData(const Segment& seg);
    void processFin(const Segment& seg);
    void handleRst();
    void sendChallengeAck();
    void updateRtt(sim::Time sample);
    void updateWindow(const Segment& seg);
    void enterFastRecovery();
    void exitFastRecovery(Seq ack);
    void traceCwnd();
    std::uint32_t cwndCap() const;

    // Window scaling + receiver-side SWS avoidance + autotuning.
    /// The shift we offer in WSopt: smallest shift whose 16-bit window can
    /// cover the largest buffer this socket may ever advertise.
    std::uint8_t desiredRcvShift() const;
    /// RFC 1122 §4.2.3.3: after a zero-window episode the window stays shut
    /// until at least min(MSS, capacity/2) has opened up.
    std::uint32_t swsThreshold() const;
    /// DRS-style receive-buffer autotuning: grow toward delivered-per-RTT.
    void maybeAutotune();

    // SACK scoreboard (sender side).
    void mergeSack(SackBlock block);
    bool isSacked(Seq from, Seq to) const;
    std::optional<Seq> nextSackHole() const;
    void dropSackedBelow(Seq seq);

    // Timers.
    /// RTO from the current srtt/rttvar estimate with no retransmit backoff
    /// applied (RFC 6298 §2.2-2.4; initialRto while unmeasured).
    sim::Time baseRto() const;
    sim::Time persistDelay() const;
    void armRexmit();
    void rexmitTimeout();
    void persistTimeout();
    void keepAliveTimeout();
    void sendKeepAliveProbe();
    void armKeepAlive();
    void notePeerActivity();
    void enterTimeWait();
    void connectionDropped();
    void connectionFailed();
    void setState(State s);
    void maybeFinishClose(bool finAcked);

    std::uint32_t tsNow() const;

    TcpStack& stack_;
    TcpConfig config_;
    Tcb tcb_;
    TcpStats stats_;
    /// The congestion-control strategy (tcp/congestion.hpp); owns every
    /// cwnd/ssthresh mutation and clamps them all through one capped setter.
    std::unique_ptr<CongestionControl> cc_;

    std::uint16_t localPort_ = 0;
    std::uint16_t remotePort_ = 0;
    ip6::Address remoteAddr_{};

    SendBuffer sendBuf_;
    RecvBuffer recvBuf_;
    Bytes drainScratch_;  // reused by the auto-drain delivery path
    std::vector<SackBlock> scoreboard_;  // peer-SACKed ranges

    sim::Timer rexmitTimer_;
    sim::Timer persistTimer_;
    sim::Timer delackTimer_;
    sim::Timer timeWaitTimer_;
    sim::Timer keepAliveTimer_;

    // Survival bookkeeping (outside Tcb: sizeof(Tcb) stays paper-comparable).
    sim::Time lastRecvAt_ = 0;           // last segment from the peer
    int persistProbesUnanswered_ = 0;
    int keepAliveUnanswered_ = 0;

    // Receive-buffer autotuning state (outside Tcb for the same reason).
    // The self-clocking DRS estimate: a window-limited sender delivers one
    // full buffer per RTT, so the time for rcvNxt to advance one buffer
    // capacity past the mark *is* the RTT whenever the buffer binds.
    bool autotuneArmed_ = false;
    Seq autotuneMark_ = 0;               // rcvNxt when the mark was planted
    sim::Time autotuneMarkAt_ = 0;       // when the mark was planted
    sim::Time autotuneLastRtt_ = 0;      // last measured turn-over interval
    sim::Time autotuneBaseRtt_ = 0;      // min srtt seen at turn-over checks

    DataCallback onData_;
    EventCallback onConnected_;
    EventCallback onClosed_;
    EventCallback onError_;
    EventCallback onSendSpace_;
    EventCallback onPeerFin_;
    EventCallback onRexmitTrouble_;
    CwndTracer cwndTracer_;
    Seq finSeq_ = 0;  // sequence number consumed by our FIN
    bool sentAdvWndZero_ = false;
};

/// Listening endpoint (the paper's "passive socket": deliberately tiny,
/// §4.1 — it holds a port, a config template, and a callback).
class PassiveSocket {
public:
    using AcceptCallback = std::function<void(TcpSocket&)>;

    PassiveSocket(TcpStack& stack, std::uint16_t port, TcpConfig config, AcceptCallback cb)
        : stack_(stack), port_(port), config_(config), accept_(std::move(cb)) {}

    std::uint16_t port() const { return port_; }
    const TcpConfig& config() const { return config_; }

private:
    friend class TcpStack;
    TcpStack& stack_;
    std::uint16_t port_;
    TcpConfig config_;
    AcceptCallback accept_;
};

/// Per-node TCP instance: demultiplexes segments to sockets.
class TcpStack {
public:
    explicit TcpStack(ip6::NetIf& netif);

    ip6::NetIf& netif() { return netif_; }
    sim::Simulator& simulator() { return netif_.simulator(); }

    /// Creates an unbound active socket.
    TcpSocket& createSocket(TcpConfig config = {});
    /// Listens on `port`; accepted connections inherit `config`.
    PassiveSocket& listen(std::uint16_t port, TcpConfig config, PassiveSocket::AcceptCallback cb);

    void destroySocket(TcpSocket& socket);
    /// Crash semantics for every socket at once (node reboot): timers
    /// stopped, states cleared, no RSTs, no callbacks.
    void dropAllConnectionsSilently();

    // Internal.
    void transmit(TcpSocket& socket, Segment& seg);
    std::uint16_t allocatePort() { return nextEphemeral_++; }
    void bind(TcpSocket& socket);
    void unbind(TcpSocket& socket);

private:
    void packetInput(const ip6::Packet& packet);
    void sendRst(const Segment& toSeg, const ip6::Address& dst);

    ip6::NetIf& netif_;
    std::vector<std::unique_ptr<TcpSocket>> sockets_;
    std::vector<std::unique_ptr<PassiveSocket>> listeners_;
    std::uint16_t nextEphemeral_ = 49152;
    std::uint32_t issCounter_ = 1000;

public:
    std::uint32_t nextIss() { return issCounter_ += 64000; }
};

}  // namespace tcplp::tcp
