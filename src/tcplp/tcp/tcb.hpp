// TCP connection control block: the scalar protocol state of one connection.
//
// Kept as a standalone packed struct so `sizeof(Tcb)` is a faithful analogue
// of the paper's Tables 3/4 (RAM per active socket: a few hundred bytes).
// Buffers are accounted separately, as in the paper (§4.2 vs §4.3).
#pragma once

#include <cstdint>

#include "tcplp/sim/time.hpp"
#include "tcplp/tcp/seq.hpp"

namespace tcplp::tcp {

enum class State : std::uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kClosing,
    kLastAck,
    kTimeWait,
    /// Terminal: the connection gave up (R2 retransmission limit, persist
    /// give-up, or keep-alive exhaustion — RFC 1122 §4.2.3.5/§4.2.3.6).
    /// Unlike kClosed-via-drop, the state survives so the application can
    /// distinguish "peer unreachable" from a clean close.
    kFailed,
};

const char* stateName(State s);

struct Tcb {
    State state = State::kClosed;

    // Send sequence space (RFC 793 names).
    Seq iss = 0;       // initial send sequence
    Seq sndUna = 0;    // oldest unacknowledged
    Seq sndNxt = 0;    // next to send
    Seq sndMax = 0;    // highest ever sent (for rexmit vs new data)
    Seq sndWl1 = 0;    // seq of last window update
    Seq sndWl2 = 0;    // ack of last window update
    std::uint32_t sndWnd = 0;  // peer-advertised window (bytes)

    // Receive sequence space.
    Seq irs = 0;
    Seq rcvNxt = 0;

    // Congestion control (New Reno).
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    std::uint16_t dupAcks = 0;
    Seq recover = 0;          // NewReno recovery point
    bool inFastRecovery = false;

    // RTT estimation (RFC 6298) in microseconds.
    std::int64_t srtt = 0;
    std::int64_t rttvar = 0;
    std::int64_t rto = 0;
    std::uint8_t rxtShift = 0;  // exponential backoff count

    // Timestamps (RFC 7323).
    std::uint32_t tsRecent = 0;  // peer TSval to echo
    bool tsEnabled = false;

    // Window scaling (RFC 7323 §2). Shifts stay 0 unless BOTH sides offered
    // WSopt on their SYN; the shifts apply to every non-SYN segment.
    bool wsEnabled = false;
    std::uint8_t sndWndShift = 0;  // peer's shift: applied when reading seg.window
    std::uint8_t rcvWndShift = 0;  // our shift: applied when advertising

    // SACK negotiation.
    bool sackEnabled = false;

    // ECN (RFC 3168).
    bool ecnEnabled = false;
    bool ecnEchoPending = false;   // receiver saw CE, echo ECE
    bool cwrPending = false;       // sender must emit CWR
    Seq ecnRecover = 0;            // one cwnd reduction per window

    // Delayed ACK bookkeeping.
    std::uint8_t delAckPending = 0;

    // FIN bookkeeping.
    bool finQueued = false;   // application closed the write side
    bool finSent = false;
    bool ourFinAcked = false;

    // Persist (zero-window probe) state. The probe interval backs off from
    // persistRtoBase — the un-backed-off RTO snapshotted when persist mode
    // was entered — NOT from `rto`, which may itself already be doubled by
    // retransmit backoff (shifting a backed-off RTO double-scales probes).
    std::uint8_t persistShift = 0;
    bool persisting = false;
    std::int64_t persistRtoBase = 0;

    std::uint16_t mss = 536;
};

}  // namespace tcplp::tcp
