// Congestion-control selection and summary counters.
//
// Kept separate from congestion.hpp (the strategy interface) so that config
// structs in other layers — mesh::NodeConfig, the scenario specs — can name
// a variant without pulling in the TCP engine headers. This header depends
// on nothing but <cstdint>.
#pragma once

#include <cstdint>

namespace tcplp::tcp {

/// Which congestion-control strategy a socket runs (TcpConfig::cc).
///
///  * kNewReno  — the paper's stock behavior (RFC 5681/6582), extracted
///                verbatim from the pre-refactor engine; the default
///                everywhere, byte-identical to the hardcoded path.
///  * kCerl     — CERL-style loss differentiation: estimate the bottleneck
///                queue from RTT - baseRTT and skip the window cut when a
///                loss is classified as link noise rather than congestion.
///  * kWestwood — Westwood-style bandwidth estimation: an EWMA-filtered
///                ACK-rate estimate sets ssthresh = BWE x RTTmin on loss
///                instead of flight/2.
enum class CcKind : std::uint8_t { kNewReno = 0, kCerl = 1, kWestwood = 2 };

inline const char* ccName(CcKind k) {
    switch (k) {
        case CcKind::kNewReno: return "newreno";
        case CcKind::kCerl: return "cerl";
        case CcKind::kWestwood: return "westwood";
    }
    return "?";
}

/// Per-connection congestion-response counters, surfaced by the shootout
/// rows (loss_cuts / cuts_skipped) to explain *why* a variant wins.
struct CcStats {
    /// Multiplicative decreases taken: fast-retransmit entries, RTO fires
    /// and ECE responses that actually cut ssthresh/cwnd.
    std::uint64_t lossCuts = 0;
    /// Losses classified as link noise where the cut was skipped (kCerl).
    std::uint64_t cutsSkipped = 0;
};

}  // namespace tcplp::tcp
