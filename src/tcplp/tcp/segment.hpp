// TCP segment representation and wire codec.
//
// Segments are encoded to real header bytes (20-byte base header + options,
// padded to 4-byte words) so that header-overhead numbers (Table 6) and the
// MSS-vs-frame-count trade-off (§6.1) fall out of actual encodings rather
// than constants. Option kinds follow the RFCs: MSS (2), Window Scale (3),
// SACK-permitted (4), SACK (5), Timestamps (8).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "tcplp/common/bytes.hpp"
#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/tcp/seq.hpp"

namespace tcplp::tcp {

struct Flags {
    bool fin = false;
    bool syn = false;
    bool rst = false;
    bool psh = false;
    bool ack = false;
    bool ece = false;  // ECN-Echo (RFC 3168)
    bool cwr = false;  // Congestion Window Reduced

    std::uint8_t encode() const {
        return std::uint8_t((fin << 0) | (syn << 1) | (rst << 2) | (psh << 3) | (ack << 4) |
                            (ece << 6) | (cwr << 7));
    }
    static Flags decode(std::uint8_t b) {
        Flags f;
        f.fin = b & 0x01;
        f.syn = b & 0x02;
        f.rst = b & 0x04;
        f.psh = b & 0x08;
        f.ack = b & 0x10;
        f.ece = b & 0x40;
        f.cwr = b & 0x80;
        return f;
    }
};

struct SackBlock {
    Seq begin = 0;  // first sequence number of the block
    Seq end = 0;    // one past the last
    bool operator==(const SackBlock&) const = default;
};

struct Timestamps {
    std::uint32_t value = 0;  // sender's clock (TSval)
    std::uint32_t echo = 0;   // echoed peer clock (TSecr)
};

/// Largest window-scale shift either side may use (RFC 7323 §2.3); peers
/// offering more are clamped here, never rejected.
inline constexpr std::uint8_t kMaxWindowShift = 14;

struct Segment {
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    Seq seq = 0;
    Seq ack = 0;
    std::uint16_t window = 0;
    Flags flags;

    // Options.
    std::optional<std::uint16_t> mssOption;          // SYN only
    std::optional<std::uint8_t> windowScale;          // SYN only (RFC 7323)
    bool sackPermitted = false;                       // SYN only
    std::vector<SackBlock> sackBlocks;                // up to 3 with timestamps
    std::optional<Timestamps> timestamps;

    PacketBuffer payload;

    /// Shift-aware window codec (RFC 7323 §2.2/§2.3). Every read or write of
    /// the 16-bit `window` field outside the wire codec must go through this
    /// pair — a grep-lint test enforces it — so no call-site can truncate a
    /// scaled window through std::uint16_t on its own. The window field of a
    /// SYN is never scaled, so both functions ignore `shift` when flags.syn.
    void setWindowBytes(std::uint32_t bytes, std::uint8_t shift) {
        const std::uint8_t s = flags.syn ? std::uint8_t(0) : shift;
        window = std::uint16_t(std::min<std::uint32_t>(bytes >> s, 0xffff));
    }
    std::uint32_t windowBytes(std::uint8_t shift) const {
        const std::uint8_t s = flags.syn ? std::uint8_t(0) : shift;
        return std::uint32_t(window) << s;
    }

    std::size_t optionBytes() const;
    /// Full header size: 20 + padded options (20–44 B per paper Table 6).
    std::size_t headerBytes() const { return 20 + optionBytes(); }
    std::size_t totalBytes() const { return headerBytes() + payload.size(); }

    /// Encodes header + payload into one buffer with lower-layer headroom
    /// (the single deliberate materialization on the TX path).
    PacketBuffer encode() const;
    /// Zero-copy decode: the returned segment's payload is a subview of `in`.
    static std::optional<Segment> decode(const PacketBuffer& in);
    /// Decode from a raw view (payload is copied; used by codec tests).
    static std::optional<Segment> decode(BytesView in);
};

}  // namespace tcplp::tcp
