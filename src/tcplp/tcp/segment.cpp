#include "tcplp/tcp/segment.hpp"

#include "tcplp/common/assert.hpp"

namespace tcplp::tcp {
namespace {
constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptWindowScale = 3;
constexpr std::uint8_t kOptSackPermitted = 4;
constexpr std::uint8_t kOptSack = 5;
constexpr std::uint8_t kOptTimestamps = 8;
}  // namespace

std::size_t Segment::optionBytes() const {
    std::size_t n = 0;
    if (mssOption) n += 4;
    if (windowScale) n += 3;
    if (sackPermitted) n += 2;
    if (timestamps) n += 10;
    if (!sackBlocks.empty()) n += 2 + sackBlocks.size() * 8;
    return (n + 3) & ~std::size_t(3);  // pad to 32-bit boundary
}

PacketBuffer Segment::encode() const {
    // The wire header is at most 60 bytes (headerWords <= 15, asserted
    // below), so stage it on the stack: segment encode runs once per TCP
    // transmission and must not allocate on the datapath. The buffer is
    // sized for the raw sum of every option (64) so its bound holds even on
    // the option combinations the assert rejects.
    std::uint8_t out[64];
    std::size_t n = 0;
    auto put8 = [&](std::uint8_t v) { out[n++] = v; };
    auto put16 = [&](std::uint16_t v) {
        put8(std::uint8_t(v >> 8));
        put8(std::uint8_t(v));
    };
    auto put32 = [&](std::uint32_t v) {
        put16(std::uint16_t(v >> 16));
        put16(std::uint16_t(v));
    };
    put16(srcPort);
    put16(dstPort);
    put32(seq);
    put32(ack);
    const std::size_t headerWords = headerBytes() / 4;
    TCPLP_ASSERT(headerWords <= 15);
    put8(std::uint8_t(headerWords << 4));
    put8(flags.encode());
    put16(window);
    put16(0);  // checksum: the simulated medium models corruption as loss
    put16(0);  // urgent pointer: unsupported, as in TCPlp (§4.1)

    const std::size_t optStart = n;
    if (mssOption) {
        put8(kOptMss);
        put8(4);
        put16(*mssOption);
    }
    if (windowScale) {
        put8(kOptWindowScale);
        put8(3);
        put8(*windowScale);
    }
    if (sackPermitted) {
        put8(kOptSackPermitted);
        put8(2);
    }
    if (timestamps) {
        put8(kOptTimestamps);
        put8(10);
        put32(timestamps->value);
        put32(timestamps->echo);
    }
    if (!sackBlocks.empty()) {
        TCPLP_ASSERT(sackBlocks.size() <= 3);
        put8(kOptSack);
        put8(std::uint8_t(2 + sackBlocks.size() * 8));
        for (const SackBlock& b : sackBlocks) {
            put32(b.begin);
            put32(b.end);
        }
    }
    while ((n - optStart) % 4 != 0) put8(kOptNop);
    TCPLP_ASSERT(n == headerBytes());
    return PacketBuffer::compose(BytesView(out, n), payload.view());
}

namespace {
/// Parses header fields into `s`; returns the header length, or 0 on a
/// malformed header. Payload handling is left to the caller.
std::size_t decodeHeader(BytesView in, Segment& s) {
    if (in.size() < 20) return 0;
    s.srcPort = getU16(in, 0);
    s.dstPort = getU16(in, 2);
    s.seq = getU32(in, 4);
    s.ack = getU32(in, 8);
    const std::size_t headerLen = std::size_t(in[12] >> 4) * 4;
    if (headerLen < 20 || headerLen > in.size()) return 0;
    s.flags = Flags::decode(in[13]);
    s.window = getU16(in, 14);

    std::size_t off = 20;
    while (off < headerLen) {
        const std::uint8_t kind = in[off];
        if (kind == kOptEnd) break;
        if (kind == kOptNop) {
            ++off;
            continue;
        }
        if (off + 1 >= headerLen) return 0;
        const std::uint8_t len = in[off + 1];
        if (len < 2 || off + len > headerLen) return 0;
        switch (kind) {
            case kOptMss:
                if (len != 4) return 0;
                s.mssOption = getU16(in, off + 2);
                break;
            case kOptWindowScale:
                if (len != 3) return 0;
                s.windowScale = in[off + 2];
                break;
            case kOptSackPermitted:
                if (len != 2) return 0;
                s.sackPermitted = true;
                break;
            case kOptTimestamps:
                if (len != 10) return 0;
                s.timestamps = Timestamps{getU32(in, off + 2), getU32(in, off + 6)};
                break;
            case kOptSack: {
                if ((len - 2) % 8 != 0) return 0;
                const std::size_t count = (len - 2u) / 8;
                for (std::size_t i = 0; i < count; ++i) {
                    s.sackBlocks.push_back(SackBlock{getU32(in, off + 2 + i * 8),
                                                     getU32(in, off + 6 + i * 8)});
                }
                break;
            }
            default:
                break;  // unknown option: skip
        }
        off += len;
    }
    return headerLen;
}
}  // namespace

std::optional<Segment> Segment::decode(const PacketBuffer& in) {
    Segment s;
    const std::size_t headerLen = decodeHeader(in.view(), s);
    if (headerLen == 0) return std::nullopt;
    s.payload = in.subview(headerLen);
    return s;
}

std::optional<Segment> Segment::decode(BytesView in) {
    Segment s;
    const std::size_t headerLen = decodeHeader(in, s);
    if (headerLen == 0) return std::nullopt;
    s.payload = PacketBuffer::copyOf(in.subspan(headerLen));
    return s;
}

}  // namespace tcplp::tcp
