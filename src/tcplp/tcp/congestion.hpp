// tcp::CongestionControl: the strategy interface behind every cwnd/ssthresh
// mutation in the TCP engine.
//
// The socket owns protocol correctness (what to retransmit, when to rewind
// sndNxt, recovery-point bookkeeping); the strategy owns the *window
// response* — how much to send after each ACK, duplicate ACK, recovery
// entry/exit, RTO and ECN echo. Every hook mutates the shared Tcb through
// setCwnd(), the single capped setter: no strategy can push cwnd past
// min(send-buffer capacity, 64 KiB, TcpConfig::cwndCapBytes), which on a
// multihop 802.15.4 path is the difference between one loss and a burst.
//
// Deliberately not included from tcp.hpp (only the socket's .cpp needs the
// concrete hooks); depends on the Tcb and the simulated clock only, so the
// variants are unit-testable without a socket (tests/test_congestion.cpp
// drives them with scripted hook sequences).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "tcplp/sim/time.hpp"
#include "tcplp/tcp/cc.hpp"
#include "tcplp/tcp/tcb.hpp"

namespace tcplp::tcp {

/// The 16-bit window-field limit. Without RFC 7323 window scaling (the
/// paper's §4.1 configuration, and the default) the advertised and
/// congestion windows both top out here; with scaling negotiated the cwnd
/// cap comes from the send buffer instead (TcpSocket::cwndCap).
constexpr std::uint32_t kMaxWindow = 65535;

/// Per-socket constants handed to a strategy at construction. The cap is
/// fixed for the socket's lifetime (the send buffer never resizes), so
/// strategies need no back-reference into the socket.
struct CcEnv {
    std::uint32_t cwndCap = kMaxWindow;
    std::uint32_t initialCwndSegments = 2;
};

class CongestionControl {
public:
    CongestionControl(Tcb& tcb, const CcEnv& env) : tcb_(tcb), env_(env) {}
    virtual ~CongestionControl() = default;
    CongestionControl(const CongestionControl&) = delete;
    CongestionControl& operator=(const CongestionControl&) = delete;

    virtual CcKind kind() const = 0;
    const char* name() const { return ccName(kind()); }
    const CcStats& stats() const { return ccStats_; }
    std::uint32_t cwndCap() const { return env_.cwndCap; }

    // --- Event hooks, called by TcpSocket at the historical mutation
    // --- sites (cwnd tracing stays socket-side, after each hook) ---------

    /// Connection opened (active or passive): initial window, ssthresh
    /// cleared to the maximum. tcb.mss is final (MSS option applied).
    virtual void onOpen() {
        setCwnd(env_.initialCwndSegments * tcb_.mss);
        // "Cleared to the maximum": the cap when it exceeds 64 KiB (window
        // scaling), the historical 16-bit limit otherwise — identical for
        // every unscaled socket.
        tcb_.ssthresh = std::max(kMaxWindow, env_.cwndCap);
    }

    /// SYN-ACK receipt after MSS renegotiation: the window restarts from
    /// the initial value but ssthresh survives.
    virtual void onIdleRestart() { setCwnd(env_.initialCwndSegments * tcb_.mss); }

    /// One RTT measurement (already fed into srtt/rttvar).
    virtual void onRttSample(sim::Time sample) { (void)sample; }

    /// Forward ACK of `acked` bytes outside fast recovery (acked > 0).
    virtual void onAck(sim::Time now, std::uint32_t acked) = 0;

    /// Fourth-and-later duplicate ACK while in fast recovery: window
    /// inflation (RFC 5681 step 4).
    virtual void onDupAckInflate() { setCwnd(tcb_.cwnd + tcb_.mss); }

    /// Third duplicate ACK: decide the ssthresh cut, arm the NewReno
    /// recovery point and inflate for the three segments that left the
    /// network. The socket retransmits the presumed-lost segment after
    /// this returns (retransmission never reads cwnd/ssthresh).
    virtual void onEnterRecovery(sim::Time now) = 0;

    /// NewReno partial ACK (RFC 6582): deflate by the amount acked, then
    /// re-inflate by one MSS for the retransmitted segment.
    virtual void onPartialAck(sim::Time now, std::uint32_t acked) {
        (void)now;
        setCwnd((tcb_.cwnd > acked ? tcb_.cwnd - acked : std::uint32_t(tcb_.mss)) +
                tcb_.mss);
    }

    /// ACK covering the recovery point: leave fast recovery.
    virtual void onExitRecovery(sim::Time now) {
        (void)now;
        tcb_.inFastRecovery = false;
        tcb_.dupAcks = 0;
        setCwnd(tcb_.ssthresh);
    }

    /// Retransmission timeout (RFC 5681 §3.1): collapse to one segment.
    virtual void onRtoFire(sim::Time now) = 0;

    /// ECE echo from the peer (RFC 3168). Returns true when a reduction was
    /// taken (at most one per window of data); the socket counts and traces
    /// only then.
    virtual bool onEce() {
        if (!seqGt(tcb_.sndUna, tcb_.ecnRecover)) return false;
        tcb_.ssthresh = std::max(flight() / 2, std::uint32_t(2 * tcb_.mss));
        setCwnd(tcb_.ssthresh);
        tcb_.ecnRecover = tcb_.sndMax;
        tcb_.cwrPending = true;
        ++ccStats_.lossCuts;
        return true;
    }

protected:
    /// THE cwnd setter: every strategy mutation funnels through this clamp.
    void setCwnd(std::uint32_t value) { tcb_.cwnd = std::min(value, env_.cwndCap); }

    std::uint32_t flight() const { return std::uint32_t(tcb_.sndNxt - tcb_.sndUna); }

    /// The stock NewReno additive increase (slow start below ssthresh,
    /// +MSS per RTT above), shared by every variant's steady state.
    void additiveIncrease(std::uint32_t acked) {
        if (tcb_.cwnd < tcb_.ssthresh) {
            setCwnd(tcb_.cwnd + std::min(acked, std::uint32_t(tcb_.mss)));
        } else {
            const std::uint32_t add = std::max<std::uint32_t>(
                1, std::uint32_t(tcb_.mss) * tcb_.mss /
                       std::max<std::uint32_t>(tcb_.cwnd, 1));
            setCwnd(tcb_.cwnd + add);
        }
    }

    /// The stock multiplicative-decrease recovery entry, shared shape for
    /// every variant (they differ only in the ssthresh they pick first).
    void armRecovery() {
        tcb_.recover = tcb_.sndMax;
        tcb_.inFastRecovery = true;
        setCwnd(tcb_.ssthresh + 3 * tcb_.mss);
    }

    Tcb& tcb_;
    CcEnv env_;
    CcStats ccStats_;
};

// --- NewReno (RFC 5681/6582): the paper's stock behavior -------------------

class NewRenoCc final : public CongestionControl {
public:
    using CongestionControl::CongestionControl;
    CcKind kind() const override { return CcKind::kNewReno; }

    void onAck(sim::Time, std::uint32_t acked) override { additiveIncrease(acked); }

    void onEnterRecovery(sim::Time) override {
        tcb_.ssthresh = std::max(flight() / 2, std::uint32_t(2 * tcb_.mss));
        ++ccStats_.lossCuts;
        armRecovery();
    }

    void onRtoFire(sim::Time) override {
        tcb_.ssthresh = std::max(flight() / 2, std::uint32_t(2 * tcb_.mss));
        setCwnd(tcb_.mss);
        tcb_.inFastRecovery = false;
        tcb_.dupAcks = 0;
        ++ccStats_.lossCuts;
    }
};

// --- CERL-style loss differentiation ---------------------------------------
//
// LLN losses are mostly link noise, not queue overflow (the PAPERS.md lane:
// energy-efficient WSN transport). CERL keeps a running baseRTT (the
// propagation floor) and, at each loss, estimates the bottleneck backlog
//
//     queued = flight x (1 - baseRTT / RTT)
//
// — the fraction of the flight that is sitting in queues rather than on the
// wire. A loss with an empty queue cannot be congestion: the cut is skipped
// (ssthresh holds at the current operating point) and only the lost segment
// is repaired. A loss with a standing queue takes the stock NewReno cut.
// RTOs always collapse cwnd to one segment (the rewind is protocol-mandated)
// but a noise-classified RTO keeps ssthresh at the prior operating point so
// slow start regrows the window in one RTT instead of log2(cwnd) of them.

class CerlCc final : public CongestionControl {
public:
    CerlCc(Tcb& tcb, const CcEnv& env) : CongestionControl(tcb, env) {}
    CcKind kind() const override { return CcKind::kCerl; }

    void onRttSample(sim::Time sample) override {
        lastRtt_ = sample;
        if (baseRtt_ == 0 || sample < baseRtt_) baseRtt_ = sample;
    }

    void onAck(sim::Time, std::uint32_t acked) override { additiveIncrease(acked); }

    void onEnterRecovery(sim::Time) override {
        if (lossIsNoise()) {
            // Hold the operating point: ssthresh pins the current window so
            // the post-recovery deflation returns exactly here.
            tcb_.ssthresh = std::max(tcb_.cwnd, std::uint32_t(2 * tcb_.mss));
            ++ccStats_.cutsSkipped;
        } else {
            tcb_.ssthresh = std::max(flight() / 2, std::uint32_t(2 * tcb_.mss));
            ++ccStats_.lossCuts;
        }
        armRecovery();
    }

    void onRtoFire(sim::Time) override {
        if (lossIsNoise()) {
            tcb_.ssthresh = std::max(tcb_.cwnd, std::uint32_t(2 * tcb_.mss));
            ++ccStats_.cutsSkipped;
        } else {
            tcb_.ssthresh = std::max(flight() / 2, std::uint32_t(2 * tcb_.mss));
            ++ccStats_.lossCuts;
        }
        setCwnd(tcb_.mss);
        tcb_.inFastRecovery = false;
        tcb_.dupAcks = 0;
    }

    /// Exposed for the scripted unit tests.
    sim::Time baseRtt() const { return baseRtt_; }

private:
    bool lossIsNoise() const {
        // No RTT signal yet: assume congestion (the safe, stock response).
        if (baseRtt_ == 0 || lastRtt_ <= 0) return false;
        const sim::Time rtt = std::max(lastRtt_, baseRtt_);
        const double queuedFraction = 1.0 - double(baseRtt_) / double(rtt);
        const double queuedBytes = double(flight()) * queuedFraction;
        // Less than ~1.5 segments of standing queue at the loss: link noise.
        return queuedBytes < 1.5 * double(tcb_.mss);
    }

    sim::Time baseRtt_ = 0;  // propagation-delay floor (min RTT seen)
    sim::Time lastRtt_ = 0;  // most recent sample
};

// --- Westwood-style bandwidth estimation -----------------------------------
//
// The ACK stream measures the path's delivery rate directly: accumulate the
// bytes each ACK covers and, once per RTT-ish interval, fold the rate into
// an EWMA bandwidth estimate (Westwood+'s long filter). On loss, instead of
// halving blindly, ssthresh is set to the pipe the estimate says the path
// sustains — BWE x RTTmin — so random link losses on an underutilized path
// do not halve the operating point, while genuine congestion (which shows
// up as a depressed delivery rate) still shrinks it.

class WestwoodCc final : public CongestionControl {
public:
    WestwoodCc(Tcb& tcb, const CcEnv& env) : CongestionControl(tcb, env) {}
    CcKind kind() const override { return CcKind::kWestwood; }

    void onRttSample(sim::Time sample) override {
        if (rttMin_ == 0 || sample < rttMin_) rttMin_ = sample;
    }

    void onAck(sim::Time now, std::uint32_t acked) override {
        accumulate(now, acked);
        additiveIncrease(acked);
    }

    void onPartialAck(sim::Time now, std::uint32_t acked) override {
        accumulate(now, acked);
        CongestionControl::onPartialAck(now, acked);
    }

    void onEnterRecovery(sim::Time now) override {
        tcb_.ssthresh = lossThreshold(now);
        ++ccStats_.lossCuts;
        armRecovery();
    }

    void onRtoFire(sim::Time now) override {
        tcb_.ssthresh = lossThreshold(now);
        setCwnd(tcb_.mss);
        tcb_.inFastRecovery = false;
        tcb_.dupAcks = 0;
        ++ccStats_.lossCuts;
    }

    /// Bytes/second the EWMA filter currently believes the path delivers.
    double bandwidthEstimate() const { return bwe_; }
    sim::Time rttMin() const { return rttMin_; }

private:
    void accumulate(sim::Time now, std::uint32_t acked) {
        if (sampleStart_ == 0) sampleStart_ = now;
        accumBytes_ += acked;
        // One bandwidth sample per RTT (floor 50 ms so idle-period restarts
        // do not fold one giant interval into the filter).
        const sim::Time interval =
            std::max<sim::Time>(tcb_.srtt, 50 * sim::kMillisecond);
        if (now - sampleStart_ < interval) return;
        const double sample =
            double(accumBytes_) / (double(now - sampleStart_) / double(sim::kSecond));
        bwe_ = bwe_ == 0.0 ? sample : 0.875 * bwe_ + 0.125 * sample;
        sampleStart_ = now;
        accumBytes_ = 0;
    }

    std::uint32_t lossThreshold(sim::Time) const {
        const double floor = 2.0 * tcb_.mss;
        if (bwe_ <= 0.0 || rttMin_ == 0) {
            // No estimate yet: stock NewReno cut.
            return std::max(flight() / 2, std::uint32_t(floor));
        }
        const double pipe = bwe_ * (double(rttMin_) / double(sim::kSecond));
        return std::uint32_t(std::max(pipe, floor));
    }

    double bwe_ = 0.0;            // EWMA delivery rate, bytes/second
    sim::Time rttMin_ = 0;        // propagation floor for the pipe estimate
    sim::Time sampleStart_ = 0;   // current accumulation interval
    std::uint64_t accumBytes_ = 0;
};

/// Factory used by the socket (and the scripted unit tests).
std::unique_ptr<CongestionControl> makeCongestionControl(CcKind kind, Tcb& tcb,
                                                         const CcEnv& env);

}  // namespace tcplp::tcp
