#include "tcplp/harness/anemometer.hpp"

#include "tcplp/common/assert.hpp"

namespace tcplp::harness {

namespace {
constexpr phy::NodeId kSensorIds[] = {12, 13, 14, 15};

std::uint16_t mssForFramesToCloud(std::size_t frames) {
    for (std::uint16_t mss = 1200; mss >= 40; --mss) {
        tcp::Segment seg;
        seg.timestamps = tcp::Timestamps{1, 2};
        seg.payload = patternBytes(0, mss);
        ip6::Packet p;
        p.src = ip6::Address::meshLocal(12);
        p.dst = ip6::Address::cloud(1000);
        p.nextHeader = ip6::kProtoTcp;
        p.payload = seg.encode();
        if (lowpan::frameCountFor(p, 12, 1, phy::kMaxMacPayloadBytes) <= frames) return mss;
    }
    return 40;
}

/// Per-sensor transport plumbing, kept alive for the whole run.
struct SensorRig {
    mesh::Node* node = nullptr;
    std::unique_ptr<tcp::TcpStack> tcpStack;
    tcp::TcpSocket* socket = nullptr;
    std::unique_ptr<transport::UdpStack> udpStack;
    std::unique_ptr<coap::CoapClient> coapClient;
    std::unique_ptr<app::SensorTransport> transport;
    std::unique_ptr<app::SensorNode> sensor;
    tcp::TcpConfig moteTcpConfig;
    ip6::Address cloudAddr;
    std::uint64_t accumulatedRexmit = 0;  // across reconnected sockets
    std::uint64_t accumulatedTimeouts = 0;

    /// (Re)establishes the TCP connection; deployments reconnect after a
    /// connection times out (§9.4: TCP gives up after 12 retransmissions).
    void connectTcp() {
        socket = &tcpStack->createSocket(moteTcpConfig);
        static_cast<app::TcpSensorTransport*>(transport.get())->setSocket(*socket);
        socket->setOnSendSpace([this] { sensor->kick(); });
        socket->setOnConnected([this] { sensor->kick(); });
        socket->setOnError([this] {
            accumulatedRexmit += socket->stats().retransmissions;
            accumulatedTimeouts += socket->stats().timeouts;
            node->simulator().schedule(10 * sim::kSecond, [this] { connectTcp(); });
        });
        socket->connect(cloudAddr, 80);
    }
};
}  // namespace

const char* protocolName(SensorProtocol p) {
    switch (p) {
        case SensorProtocol::kTcp: return "TCPlp";
        case SensorProtocol::kCoap: return "CoAP";
        case SensorProtocol::kCocoa: return "CoCoA";
        case SensorProtocol::kUnreliable: return "Unreliable";
    }
    return "?";
}

AnemometerResult runAnemometer(const AnemometerOptions& options) {
    TestbedConfig cfg;
    cfg.seed = options.seed;
    cfg.scheduler = options.scheduler;
    cfg.sleepyLeaves = {12, 13, 14, 15};
    cfg.sleepyConfig.policy = mac::PollPolicy::kTransportHint;
    // §7.1's fix is assumed throughout the application study: a random
    // delay between link retries defuses hidden-terminal collisions.
    cfg.nodeDefaults.macConfig.retryDelayMax = 40 * sim::kMillisecond;
    cfg.nodeDefaults.tcpCc = options.cc;
    auto tb = Testbed::office(cfg);
    for (phy::NodeId id : kSensorIds) {
        // Sleepy devices park the radio during the inter-retry delay.
        tb->findNode(id)->macLayer()->mutableConfig().sleepDuringRetryDelay = true;
    }
    sim::Simulator& simulator = tb->simulator();
    if (options.deliveryTap) tb->channel().setDeliveryTap(options.deliveryTap);

    if (options.injectedLoss > 0.0) tb->wired().setLossRate(options.injectedLoss);
    if (options.diurnal) {
        tb->channel().setAmbientLoss(
            [night = options.nightLoss, peak = options.peakLoss](sim::Time now, phy::NodeId) {
                return diurnalLossAt(now, night, peak);
            });
    }

    const std::uint16_t mss = mssForFramesToCloud(options.mssFrames);
    app::SensorConfig sensorCfg;
    sensorCfg.batching = options.batching;
    sensorCfg.batchThreshold = 64;
    sensorCfg.coapBlockBytes = std::size_t(mss);
    const bool isTcp = options.protocol == SensorProtocol::kTcp;
    sensorCfg.queueCapacity = isTcp ? 64 : 104;  // §9.2

    // Cloud endpoints.
    app::ReadingCollector collector;
    std::unique_ptr<tcp::TcpStack> cloudTcp;
    std::unique_ptr<transport::UdpStack> cloudUdp;
    std::unique_ptr<coap::CoapServer> coapServer;
    if (isTcp) {
        cloudTcp = std::make_unique<tcp::TcpStack>(tb->cloud());
        tcp::TcpConfig serverCfg;
        serverCfg.mss = mss;
        serverCfg.sendBufferBytes = serverCfg.recvBufferBytes = 16384;
        cloudTcp->listen(80, serverCfg, [&collector](tcp::TcpSocket& s) {
            s.setOnData([&collector](BytesView d) { collector.feedStream(d); });
        });
    } else {
        cloudUdp = std::make_unique<transport::UdpStack>(tb->cloud());
        coapServer = std::make_unique<coap::CoapServer>(*cloudUdp, 5683);
        coapServer->setOnRequest([&collector](const coap::Message& m, const ip6::Address&) {
            collector.feedMessage(m.payload);
        });
    }

    // Sensor rigs.
    std::vector<std::unique_ptr<SensorRig>> rigs;
    for (phy::NodeId id : kSensorIds) {
        auto rig = std::make_unique<SensorRig>();
        rig->node = tb->findNode(id);
        TCPLP_ASSERT(rig->node != nullptr);
        rig->node->start();  // begin duty cycling

        rig->node->config().queueConfig.capacityPackets = 16;
        if (rig->node->forwardQueue())
            rig->node->forwardQueue()->mutableConfig().capacityPackets = 16;
        if (isTcp) {
            rig->tcpStack = std::make_unique<tcp::TcpStack>(*rig->node);
            tcp::TcpConfig moteCfg;
            moteCfg.mss = mss;
            moteCfg.recvBufferBytes = 4 * mss;
            // §9.2: the send buffer also holds ~40 readings of application
            // backlog beyond the 4-segment window.
            moteCfg.sendBufferBytes = 4 * mss + 40 * app::kReadingBytes;
            moteCfg.cwndCapBytes = std::uint32_t(4 * mss);
            // Duty-cycled multihop paths have multi-second RTT tails (poll
            // latency compounds per loss); a 1 s RTO floor fires spuriously.
            moteCfg.minRto = 2 * sim::kSecond;
            moteCfg.cc = rig->node->config().tcpCc;
            rig->moteTcpConfig = moteCfg;
            rig->cloudAddr = tb->cloud().address();
            rig->socket = &rig->tcpStack->createSocket(moteCfg);
            rig->transport = std::make_unique<app::TcpSensorTransport>(*rig->socket, sensorCfg);
        } else {
            rig->udpStack = std::make_unique<transport::UdpStack>(*rig->node);
            coap::CoapConfig coapCfg;
            coapCfg.cocoa = (options.protocol == SensorProtocol::kCocoa);
            rig->coapClient = std::make_unique<coap::CoapClient>(
                *rig->udpStack, tb->cloud().address(), 5683, coapCfg);
            if (options.protocol == SensorProtocol::kUnreliable) {
                rig->transport =
                    std::make_unique<app::UnreliableSensorTransport>(*rig->coapClient, sensorCfg);
            } else {
                rig->transport =
                    std::make_unique<app::CoapSensorTransport>(*rig->coapClient, sensorCfg);
            }
        }
        rig->sensor = std::make_unique<app::SensorNode>(simulator, id, *rig->transport, sensorCfg);
        rigs.push_back(std::move(rig));
    }

    // Establish TCP connections, then start sampling. Start times are
    // staggered so the four nodes' batches and SYNs do not phase-lock.
    sim::Time stagger = 0;
    for (auto& rig : rigs) {
        simulator.schedule(stagger, [&rig = *rig, isTcp] {
            if (isTcp) rig.connectTcp();
            rig.sensor->start();
        });
        stagger += 5377 * sim::kMillisecond;
    }

    simulator.runUntil(options.warmup);
    // Open the measurement window.
    for (auto& rig : rigs) {
        phy::Radio* radio = rig->node->radio();
        radio->energy().resetWindow(radio->state(), simulator.now());
    }

    AnemometerResult result;
    if (options.diurnal) {
        // Hourly duty-cycle buckets (Fig. 10).
        const int hours = int(options.duration / sim::kHour);
        double cpuSum = 0.0;
        for (int h = 0; h < hours; ++h) {
            simulator.runUntil(options.warmup + sim::Time(h + 1) * sim::kHour);
            double dc = 0.0, cpu = 0.0;
            for (auto& rig : rigs) {
                phy::Radio* radio = rig->node->radio();
                dc += radio->energy().radioDutyCycle(radio->state(), simulator.now());
                cpu += radio->energy().cpuDutyCycle(simulator.now());
                radio->energy().resetWindow(radio->state(), simulator.now());
            }
            result.hourlyRadioDutyCycle.push_back(dc / double(rigs.size()));
            cpuSum += cpu / double(rigs.size());
        }
        double radioSum = 0.0;
        for (double v : result.hourlyRadioDutyCycle) radioSum += v;
        result.radioDutyCycle = radioSum / double(hours);
        result.cpuDutyCycle = cpuSum / double(hours);
    } else {
        simulator.runUntil(options.warmup + options.duration);
        double radioDc = 0.0, cpuDc = 0.0;
        for (auto& rig : rigs) {
            phy::Radio* radio = rig->node->radio();
            radioDc += radio->energy().radioDutyCycle(radio->state(), simulator.now());
            cpuDc += radio->energy().cpuDutyCycle(simulator.now());
        }
        result.radioDutyCycle = radioDc / double(rigs.size());
        result.cpuDutyCycle = cpuDc / double(rigs.size());
    }
    const sim::Time measureEnd = simulator.now();

    // Stop sampling; let queued data drain.
    for (auto& rig : rigs) rig->sensor->stop();
    simulator.runUntil(measureEnd + options.drain);

    for (auto& rig : rigs) {
        result.generated += rig->sensor->stats().generated;
        if (rig->socket) {
            result.transportRetransmissions +=
                rig->accumulatedRexmit + rig->socket->stats().retransmissions;
            result.tcpTimeouts += rig->accumulatedTimeouts + rig->socket->stats().timeouts;
        }
        if (rig->coapClient) {
            result.transportRetransmissions += rig->coapClient->stats().retransmissions;
        }
    }
    result.delivered = collector.total();
    result.reliability =
        result.generated > 0 ? double(result.delivered) / double(result.generated) : 0.0;
    result.rngDigest = simulator.rng().stateDigest();
    return result;
}

}  // namespace tcplp::harness
