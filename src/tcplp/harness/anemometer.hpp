// The anemometer application study (§9): four duty-cycled sensor nodes
// (ids 12-15 in the office testbed, Fig. 3) stream 82-byte readings at 1 Hz
// to a cloud server, over one of four transports:
//
//   kTcp        — TCPlp sockets (full-scale TCP), app queue 64 readings;
//   kCoap       — confirmable CoAP with blockwise batches, queue 104;
//   kCocoa      — CoAP + CoCoA congestion control;
//   kUnreliable — non-confirmable CoAP (no ARQ), the §9.6 baseline.
//
// Knobs reproduce the paper's scenarios: batching on/off (Fig. 8), loss
// injected at the border router (Fig. 9), and a diurnal interference
// profile over 24 hours (Fig. 10 / Table 8).
#pragma once

#include <memory>
#include <vector>

#include "tcplp/app/sensor.hpp"
#include "tcplp/coap/coap.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"
#include "tcplp/transport/udp.hpp"

namespace tcplp::harness {

enum class SensorProtocol : std::uint8_t { kTcp, kCoap, kCocoa, kUnreliable };

const char* protocolName(SensorProtocol p);

struct AnemometerOptions {
    SensorProtocol protocol = SensorProtocol::kTcp;
    bool batching = true;
    sim::Time duration = 30 * sim::kMinute;  // measurement window
    sim::Time warmup = 2 * sim::kMinute;     // connection setup, excluded
    sim::Time drain = 3 * sim::kMinute;      // post-run flush, included in reliability
    double injectedLoss = 0.0;               // at the border router (§9.4)
    bool diurnal = false;                    // 24 h ambient profile (§9.5)
    double nightLoss = 0.01;
    double peakLoss = 0.12;
    std::size_t mssFrames = 5;               // 3 for the daytime study (§9.5)
    /// Congestion-control strategy for the sensors' TCP sockets; threaded
    /// through mesh::NodeConfig::tcpCc so the rig reads it off its node.
    tcp::CcKind cc = tcp::CcKind::kNewReno;
    std::uint64_t seed = 1;
    /// Simulator ready-queue backend (pure perf knob; identical results).
    sim::SchedulerKind scheduler = sim::SchedulerKind::kBinaryHeap;
    /// Optional delivery-log tap installed on the testbed channel.
    phy::Channel::DeliveryTap deliveryTap;
};

struct AnemometerResult {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    double reliability = 0.0;   // delivered / generated (§9.2)
    double radioDutyCycle = 0.0;  // mean over sensor nodes
    double cpuDutyCycle = 0.0;
    std::uint64_t transportRetransmissions = 0;  // TCP rexmits or CoAP retries
    std::uint64_t tcpTimeouts = 0;               // RTO subset (Fig. 9b)
    /// Fig. 10: per-hour mean radio duty cycle (diurnal runs only).
    std::vector<double> hourlyRadioDutyCycle;
    /// Rng::stateDigest at run end; sweep determinism tests compare runs
    /// executed serially vs sharded across workers through this.
    std::uint64_t rngDigest = 0;
};

AnemometerResult runAnemometer(const AnemometerOptions& options);

}  // namespace tcplp::harness
