// Anchor translation unit for the harness library.
