// Simulated testbeds mirroring the paper's experimental setups (§5):
//
//  * pair()       — two motes one hop apart (§6.3 node-to-node study).
//  * line(h)      — h wireless hops: mote — relays — border router — cloud.
//                   Geometry guarantees hidden terminals: adjacent nodes
//                   hear each other, nodes two hops apart do not (§7.1).
//  * office()     — 15-node tree approximating Fig. 3, border router = node
//                   1, leaf sensors 12-15 at 3-5 hops (§9.2).
//
// The border router is bridged to a "cloud" host over a wired link with
// ~12 ms RTT, like the paper's EC2 server (§9.2).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "tcplp/mesh/node.hpp"
#include "tcplp/phy/channel.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::harness {

struct TestbedConfig {
    std::uint64_t seed = 1;
    /// Ready-queue backend for the testbed's simulator (heap or timer
    /// wheel); both fire events in the identical order — a pure perf knob.
    sim::SchedulerKind scheduler = sim::SchedulerKind::kBinaryHeap;
    mesh::NodeConfig nodeDefaults{};
    double nodeSpacingMeters = 10.0;
    double radioRangeMeters = 12.0;  // adjacent in range, 2-apart out of range
    sim::Time wiredOneWayDelay = 6 * sim::kMillisecond;  // 12 ms RTT to cloud
    double linkLoss = 0.0;  // per-frame fading probability on mesh links
    /// Air bit rate for every radio frame. phy::kBitsPerSecond keeps the
    /// stock 802.15.4 symbol timing byte-for-byte; the ESP32-class link
    /// preset raises it into the tens of Mb/s.
    double airBitsPerSecond = phy::kBitsPerSecond;
    /// Frame-bus cost per byte for every mesh radio (MCU <-> transceiver
    /// copy); nullopt = the Radio's stock 21 us/B SPI model.
    std::optional<double> busMicrosPerByte;
    /// office(): these node ids become duty-cycled leaf devices attached to
    /// their BFS parent (the sensors of §9; empty = all routers).
    std::vector<phy::NodeId> sleepyLeaves{};
    mac::SleepyConfig sleepyConfig{};

    /// Self-healing mesh routing: every router gets link-liveness tracking
    /// (mesh::NeighborTable, probe seed derived per node from the run
    /// seed), and installTreeRoutes additionally installs ranked loop-free
    /// alternate next hops (neighbors strictly closer to the destination).
    /// Off by default: fault-free runs are byte-identical either way, but
    /// the flag keeps the legacy static-route topologies bit-exact.
    bool selfHealing = false;
    /// Knob overrides for the per-router NeighborConfig (enabled/probeSeed
    /// are managed by the testbed).
    mesh::NeighborConfig neighborDefaults{};
};

class Testbed {
public:
    explicit Testbed(TestbedConfig config = {});
    /// Cancels all pending simulator events before members are destroyed:
    /// a scheduled callback may hold in-flight packets whose payloads live
    /// in a node's reassembly arena, and those must be released while the
    /// nodes (declared after simulator_, destroyed first) still exist.
    ~Testbed();

    sim::Simulator& simulator() { return simulator_; }
    phy::Channel& channel() { return channel_; }
    mesh::WiredLink& wired() { return *wired_; }

    mesh::Node& node(std::size_t index) { return *nodes_[index]; }
    const mesh::Node& node(std::size_t index) const { return *nodes_[index]; }
    std::size_t nodeCount() const { return nodes_.size(); }
    mesh::Node& borderRouter() { return *border_; }
    mesh::Node& cloud() { return *cloud_; }

    /// Adds a mesh node; routes/topology are configured by the builders.
    mesh::Node& addNode(phy::NodeId id, phy::Position pos, mesh::NodeConfig config);
    /// Creates the border router (mesh side) + cloud host + wired link.
    void addBorderRouterAndCloud(phy::NodeId routerId, phy::Position pos,
                                 mesh::NodeConfig routerConfig);

    /// Installs per-hop routes along a path of node ids (both directions),
    /// and routes every on-path node's default toward position 0.
    void installLineRoutes(const std::vector<phy::NodeId>& path);

    /// Parent selection + route install for an arbitrary mesh: BFS tree
    /// toward the border router (node index 0) over the connectivity graph,
    /// default routes up the tree, downlink routes at every ancestor, and
    /// sleepy-leaf adoption per config.sleepyLeaves. Used by office(),
    /// grid() and star(); call after all nodes are added.
    void installTreeRoutes();

    mesh::Node* findNode(phy::NodeId id);

    // --- Canned topologies ---------------------------------------------
    /// Two motes, ids 10 and 11, one hop apart. No border router.
    static std::unique_ptr<Testbed> pair(TestbedConfig config = {});
    /// `hops` wireless hops between mote (last node) and border router
    /// (id 1) + cloud (id 1000). Mote id = 10 + hops - 1 ... source is
    /// node id (10 + hops - 1); relays between.
    static std::unique_ptr<Testbed> line(std::size_t hops, TestbedConfig config = {});
    /// 15-node office tree per Fig. 3; sensors 12-15 are 3-5 hops out.
    static std::unique_ptr<Testbed> office(TestbedConfig config = {});
    /// Dense n-node grid (ids 1..n, border router = 1 in the corner),
    /// node spacing vs radio range giving the §7.1 hidden-terminal
    /// geometry. Stresses the channel's spatial index at scale.
    static std::unique_ptr<Testbed> grid(std::size_t n, TestbedConfig config = {});
    /// Border router (id 1) with n-1 single-hop neighbors on a circle.
    static std::unique_ptr<Testbed> star(std::size_t n, TestbedConfig config = {});

private:
    TestbedConfig config_;
    sim::Simulator simulator_;
    phy::Channel channel_;
    std::vector<std::unique_ptr<mesh::Node>> nodes_;
    mesh::Node* border_ = nullptr;
    std::unique_ptr<mesh::Node> cloud_;
    std::unique_ptr<mesh::WiredLink> wired_;
};

/// Hourly ambient loss profile for the full-day experiment (Fig. 10): low
/// interference at night, high during working hours as humans move around
/// the office and WiFi traffic rises.
double diurnalLossAt(sim::Time now, double nightLoss, double peakLoss);

}  // namespace tcplp::harness
