// In-memory point-to-point NetIf pair: lets transport layers (TCP, UDP,
// CoAP) be exercised with precise control over delay, loss, reordering and
// ECN marking — no radio, MAC or 6LoWPAN involved. Used heavily by the unit
// tests and by the model-validation bench (§8), where packet loss must be an
// exact, independently-set probability.
#pragma once

#include <functional>
#include <map>

#include "tcplp/ip6/netif.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::harness {

class PipeEndpoint;

struct PipeConfig {
    sim::Time oneWayDelay = 50 * sim::kMillisecond;
    double lossAtoB = 0.0;  // drop probability per packet
    double lossBtoA = 0.0;
    /// Bits/second; 0 = infinite. Serializes packets FIFO.
    double bandwidthBps = 0.0;
    /// Mark instead of dropping (RED/ECN-style) with this probability.
    double ceMarkProbability = 0.0;
};

/// A bidirectional lossy pipe between two endpoints.
class Pipe {
public:
    using Config = PipeConfig;

    explicit Pipe(sim::Simulator& simulator, Config config = {});

    PipeEndpoint& a() { return *a_; }
    PipeEndpoint& b() { return *b_; }
    Config& config() { return config_; }

    std::uint64_t deliveredPackets() const { return delivered_; }
    std::uint64_t droppedPackets() const { return dropped_; }

private:
    friend class PipeEndpoint;
    void transfer(const PipeEndpoint* from, ip6::Packet packet);

    sim::Simulator& simulator_;
    Config config_;
    std::unique_ptr<PipeEndpoint> a_;
    std::unique_ptr<PipeEndpoint> b_;
    sim::Time nextFreeA_ = 0;  // serialization cursor per direction
    sim::Time nextFreeB_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

class PipeEndpoint : public ip6::NetIf {
public:
    PipeEndpoint(Pipe& pipe, sim::Simulator& simulator, ip6::Address addr)
        : pipe_(pipe), simulator_(simulator), addr_(addr) {}

    ip6::Address address() const override { return addr_; }
    sim::Simulator& simulator() override { return simulator_; }

    void sendPacket(ip6::Packet packet) override {
        if (packet.src == ip6::Address{}) packet.src = addr_;
        pipe_.transfer(this, std::move(packet));
    }

    void registerProtocol(std::uint8_t nextHeader, ProtocolHandler handler) override {
        handlers_[nextHeader] = std::move(handler);
    }

    void deliver(const ip6::Packet& packet) {
        auto it = handlers_.find(packet.nextHeader);
        if (it != handlers_.end()) it->second(packet);
    }

private:
    Pipe& pipe_;
    sim::Simulator& simulator_;
    ip6::Address addr_;
    std::map<std::uint8_t, ProtocolHandler> handlers_;
};

inline Pipe::Pipe(sim::Simulator& simulator, Config config)
    : simulator_(simulator), config_(config) {
    a_ = std::make_unique<PipeEndpoint>(*this, simulator, ip6::Address::meshLocal(1));
    b_ = std::make_unique<PipeEndpoint>(*this, simulator, ip6::Address::meshLocal(2));
}

inline void Pipe::transfer(const PipeEndpoint* from, ip6::Packet packet) {
    const bool aToB = (from == a_.get());
    const double loss = aToB ? config_.lossAtoB : config_.lossBtoA;
    if (simulator_.rng().chance(loss)) {
        ++dropped_;
        return;
    }
    if (config_.ceMarkProbability > 0.0 && packet.ecn() != ip6::Ecn::kNotCapable &&
        simulator_.rng().chance(config_.ceMarkProbability)) {
        packet.setEcn(ip6::Ecn::kCongestionExperienced);
    }

    sim::Time depart = simulator_.now();
    if (config_.bandwidthBps > 0.0) {
        const sim::Time txTime =
            sim::fromSeconds(double(packet.uncompressedSize()) * 8.0 / config_.bandwidthBps);
        sim::Time& cursor = aToB ? nextFreeA_ : nextFreeB_;
        depart = std::max(depart, cursor) + txTime;
        cursor = depart;
    }
    PipeEndpoint* to = aToB ? b_.get() : a_.get();
    simulator_.scheduleAt(depart + config_.oneWayDelay,
                          [this, to, packet = std::move(packet)]() mutable {
                              ++delivered_;
                              to->deliver(packet);
                          });
}

}  // namespace tcplp::harness
