#include "tcplp/harness/testbed.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "tcplp/common/assert.hpp"

namespace tcplp::harness {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      simulator_(sim::SimConfig{config.seed, config.scheduler}),
      channel_(simulator_, config.radioRangeMeters) {
    if (config_.linkLoss > 0.0) channel_.setDefaultLoss(config_.linkLoss);
    channel_.setBitsPerSecond(config_.airBitsPerSecond);
}

Testbed::~Testbed() { simulator_.cancelAllPending(); }

mesh::Node& Testbed::addNode(phy::NodeId id, phy::Position pos, mesh::NodeConfig config) {
    // Self-healing routing: routers learn link liveness and fail over.
    // Leaves stay out — their traffic rides the duty-cycled indirect path,
    // where a missed wakeup window says nothing about the link.
    if (config_.selfHealing && config.role != mesh::Role::kLeaf &&
        config.role != mesh::Role::kCloudHost) {
        config.neighbor = config_.neighborDefaults;
        config.neighbor.enabled = true;
        config.neighbor.probeSeed =
            sim::Rng::deriveStream(config_.seed, mesh::kLivenessStreamId + id);
    }
    nodes_.push_back(std::make_unique<mesh::Node>(simulator_, &channel_, id, pos, config));
    mesh::Node& node = *nodes_.back();
    if (config_.busMicrosPerByte && node.radio() != nullptr)
        node.radio()->setSpiMicrosPerByte(*config_.busMicrosPerByte);
    return node;
}

void Testbed::addBorderRouterAndCloud(phy::NodeId routerId, phy::Position pos,
                                      mesh::NodeConfig routerConfig) {
    routerConfig.role = mesh::Role::kBorderRouter;
    border_ = &addNode(routerId, pos, routerConfig);

    mesh::NodeConfig cloudConfig;
    cloudConfig.role = mesh::Role::kCloudHost;
    cloud_ = std::make_unique<mesh::Node>(simulator_, nullptr, phy::NodeId(1000),
                                          phy::Position{}, cloudConfig);
    wired_ = std::make_unique<mesh::WiredLink>(simulator_, config_.wiredOneWayDelay);
    wired_->attach(border_, cloud_.get());
    border_->attachWired(wired_.get());
    cloud_->attachWired(wired_.get());
}

mesh::Node* Testbed::findNode(phy::NodeId id) {
    for (auto& n : nodes_)
        if (n->id() == id) return n.get();
    if (cloud_ && cloud_->id() == id) return cloud_.get();
    return nullptr;
}

void Testbed::installLineRoutes(const std::vector<phy::NodeId>& path) {
    for (std::size_t i = 0; i < path.size(); ++i) {
        mesh::Node* node = findNode(path[i]);
        TCPLP_ASSERT(node != nullptr);
        // Toward the head of the path (uplink / border router).
        if (i > 0) node->setDefaultRoute(path[i - 1]);
        // Specific routes toward every node further down the path.
        for (std::size_t j = i + 1; j < path.size(); ++j)
            node->addRoute(path[j], path[i + 1]);
        for (std::size_t j = 0; j < i; ++j)
            node->addRoute(path[j], path[i - 1]);
    }
}

std::unique_ptr<Testbed> Testbed::pair(TestbedConfig config) {
    auto tb = std::make_unique<Testbed>(config);
    mesh::NodeConfig nc = config.nodeDefaults;
    nc.role = mesh::Role::kRouter;
    tb->addNode(10, phy::Position{0.0, 0.0}, nc);
    tb->addNode(11, phy::Position{config.nodeSpacingMeters, 0.0}, nc);
    tb->node(0).addRoute(11, 11);
    tb->node(1).addRoute(10, 10);
    return tb;
}

std::unique_ptr<Testbed> Testbed::line(std::size_t hops, TestbedConfig config) {
    TCPLP_ASSERT(hops >= 1);
    auto tb = std::make_unique<Testbed>(config);

    // Border router at x=0; relays/mote extending away, one hop apart.
    mesh::NodeConfig rc = config.nodeDefaults;
    rc.role = mesh::Role::kRouter;
    tb->addBorderRouterAndCloud(1, phy::Position{0.0, 0.0}, rc);

    std::vector<phy::NodeId> path{1};
    for (std::size_t i = 1; i <= hops; ++i) {
        const phy::NodeId id = phy::NodeId(9 + i);  // 10, 11, 12, ...
        mesh::NodeConfig nc = config.nodeDefaults;
        nc.role = mesh::Role::kRouter;
        tb->addNode(id, phy::Position{double(i) * config.nodeSpacingMeters, 0.0}, nc);
        path.push_back(id);
    }
    tb->installLineRoutes(path);
    return tb;
}

std::unique_ptr<Testbed> Testbed::office(TestbedConfig config) {
    auto tb = std::make_unique<Testbed>(config);
    const double s = config.nodeSpacingMeters;

    // Positions loosely following Fig. 3: node 1 (border router) at one end
    // of the office, router backbone snaking through, sensors 12-15 at the
    // far end (3-5 hops from the border router).
    struct Spot {
        phy::NodeId id;
        double x, y;
    };
    const Spot spots[] = {
        {2, 1.0 * s, 0.3 * s},  {3, 1.0 * s, -0.4 * s}, {4, 2.0 * s, 0.0},
        {5, 2.0 * s, 0.8 * s},  {6, 3.0 * s, 0.3 * s},  {7, 3.0 * s, -0.5 * s},
        {8, 4.0 * s, 0.0},      {9, 4.0 * s, 0.8 * s},  {10, 5.0 * s, 0.3 * s},
        {11, 5.0 * s, -0.4 * s},{12, 3.0 * s, 1.1 * s}, {13, 4.0 * s, 1.5 * s},
        {14, 5.0 * s, 1.0 * s}, {15, 6.0 * s, 0.2 * s},
    };

    const auto isLeaf = [&config](phy::NodeId id) {
        for (phy::NodeId l : config.sleepyLeaves)
            if (l == id) return true;
        return false;
    };

    mesh::NodeConfig rc = config.nodeDefaults;
    rc.role = mesh::Role::kRouter;
    tb->addBorderRouterAndCloud(1, phy::Position{0.0, 0.0}, rc);
    for (const Spot& sp : spots) {
        mesh::NodeConfig nc = config.nodeDefaults;
        nc.role = isLeaf(sp.id) ? mesh::Role::kLeaf : mesh::Role::kRouter;
        nc.sleepyConfig = config.sleepyConfig;
        tb->addNode(sp.id, phy::Position{sp.x, sp.y}, nc);
    }

    tb->installTreeRoutes();
    return tb;
}

void Testbed::installTreeRoutes() {
    const auto isLeaf = [this](phy::NodeId id) {
        for (phy::NodeId l : config_.sleepyLeaves)
            if (l == id) return true;
        return false;
    };

    // Parent selection: BFS tree toward the border router over the
    // connectivity graph (OpenThread picks good-quality uplinks; with a
    // unit-disk channel, hop count is the quality metric). Leaves never
    // relay, so only routers expand the frontier.
    const std::size_t n = nodeCount();
    std::vector<int> parent(n, -1);
    std::vector<int> depth(n, -1);
    std::queue<std::size_t> frontier;
    // Index 0 is the border router (added first).
    depth[0] = 0;
    frontier.push(0);
    while (!frontier.empty()) {
        const std::size_t u = frontier.front();
        frontier.pop();
        if (isLeaf(node(u).id())) continue;  // leaves don't forward
        for (std::size_t v = 0; v < n; ++v) {
            if (depth[v] != -1) continue;
            if (!channel().inRange(node(u).radio(), node(v).radio())) continue;
            depth[v] = depth[u] + 1;
            parent[v] = int(u);
            frontier.push(v);
        }
    }

    // Install tree routes: default route toward parent (uplink); downlink
    // routes at each ancestor pointing down the tree.
    for (std::size_t v = 1; v < n; ++v) {
        TCPLP_ASSERT(parent[v] >= 0);
        mesh::Node& child = node(v);
        mesh::Node& par = node(std::size_t(parent[v]));
        if (child.role() == mesh::Role::kLeaf) {
            child.setParent(par.id());
            par.adoptSleepyChild(child.id());
        } else {
            child.setDefaultRoute(par.id());
        }
        // Walk up the tree installing downlink routes for this node.
        int cur = int(v);
        while (parent[std::size_t(cur)] >= 0) {
            const int up = parent[std::size_t(cur)];
            node(std::size_t(up)).addRoute(child.id(), node(std::size_t(cur)).id());
            cur = up;
        }
    }

    if (!config_.selfHealing) return;

    // --- Ranked loop-free alternates (RPL-lite parent sets) ---------------
    // For every (router v, router destination d) the candidate set is the
    // in-range neighbors of v strictly closer to d, where distance is BFS
    // over the relay graph (leaves never relay). BFS depths equal graph
    // distances, so the tree next hop is always in the set; the installed
    // rank order is tree primary first, then ascending node id. Every
    // candidate hop strictly decreases the distance to d, so any mix of
    // failovers is loop-free by construction.
    const auto relays = [&](std::size_t u) { return !isLeaf(node(u).id()); };
    std::vector<std::vector<int>> distTo(n, std::vector<int>(n, -1));
    for (std::size_t d = 0; d < n; ++d) {
        if (!relays(d)) continue;  // a leaf is reachable only via its parent
        std::vector<int>& dist = distTo[d];
        dist[d] = 0;
        std::queue<std::size_t> q;
        q.push(d);
        while (!q.empty()) {
            const std::size_t u = q.front();
            q.pop();
            if (u != d && !relays(u)) continue;
            for (std::size_t v = 0; v < n; ++v) {
                if (dist[v] != -1) continue;
                if (!channel().inRange(node(u).radio(), node(v).radio())) continue;
                dist[v] = dist[u] + 1;
                q.push(v);
            }
        }
    }
    for (std::size_t v = 0; v < n; ++v) {
        if (!relays(v)) continue;
        mesh::Node& router = node(v);
        for (std::size_t d = 0; d < n; ++d) {
            if (d == v || !relays(d)) continue;
            const std::vector<int>& dist = distTo[d];
            if (dist[v] <= 0) continue;
            std::vector<phy::NodeId> cand;
            for (std::size_t u = 0; u < n; ++u) {
                if (u == v || dist[u] != dist[v] - 1) continue;
                if (u != d && !relays(u)) continue;
                if (!channel().inRange(node(v).radio(), node(u).radio())) continue;
                cand.push_back(node(u).id());
            }
            std::sort(cand.begin(), cand.end());
            if (d == 0) {
                // Uplink rides the default route; the tree parent is
                // already rank 0 (appends deduplicate against it).
                for (phy::NodeId c : cand) router.addDefaultRouteAlternate(c);
            } else {
                // Downlink/cross-tree: at ancestors the tree primary is
                // already rank 0; elsewhere the best-id candidate leads.
                for (phy::NodeId c : cand) router.addRouteAlternate(node(d).id(), c);
            }
        }
    }
}

std::unique_ptr<Testbed> Testbed::grid(std::size_t n, TestbedConfig config) {
    TCPLP_ASSERT(n >= 2);
    auto tb = std::make_unique<Testbed>(config);
    const double s = config.nodeSpacingMeters;
    const auto cols = std::size_t(std::ceil(std::sqrt(double(n))));

    const auto isLeaf = [&config](phy::NodeId id) {
        for (phy::NodeId l : config.sleepyLeaves)
            if (l == id) return true;
        return false;
    };

    // Border router = id 1 in the corner cell; ids 2..n fill the grid
    // row-major. 10 m spacing at 12 m range keeps adjacent nodes in range
    // and nodes two apart hidden from each other (§7.1 geometry), so dense
    // grids collide at relays exactly like the office runs.
    mesh::NodeConfig rc = config.nodeDefaults;
    rc.role = mesh::Role::kRouter;
    tb->addBorderRouterAndCloud(1, phy::Position{0.0, 0.0}, rc);
    for (std::size_t i = 1; i < n; ++i) {
        const phy::NodeId id = phy::NodeId(i + 1);
        mesh::NodeConfig nc = config.nodeDefaults;
        nc.role = isLeaf(id) ? mesh::Role::kLeaf : mesh::Role::kRouter;
        nc.sleepyConfig = config.sleepyConfig;
        tb->addNode(id, phy::Position{double(i % cols) * s, double(i / cols) * s}, nc);
    }
    tb->installTreeRoutes();
    return tb;
}

std::unique_ptr<Testbed> Testbed::star(std::size_t n, TestbedConfig config) {
    TCPLP_ASSERT(n >= 2);
    auto tb = std::make_unique<Testbed>(config);

    mesh::NodeConfig rc = config.nodeDefaults;
    rc.role = mesh::Role::kRouter;
    tb->addBorderRouterAndCloud(1, phy::Position{0.0, 0.0}, rc);
    const std::size_t spokes = n - 1;
    for (std::size_t i = 0; i < spokes; ++i) {
        const double angle = 2.0 * 3.14159265358979323846 * double(i) / double(spokes);
        mesh::NodeConfig nc = config.nodeDefaults;
        nc.role = mesh::Role::kRouter;
        tb->addNode(phy::NodeId(i + 2),
                    phy::Position{config.nodeSpacingMeters * std::cos(angle),
                                  config.nodeSpacingMeters * std::sin(angle)},
                    nc);
    }
    tb->installTreeRoutes();
    return tb;
}

double diurnalLossAt(sim::Time now, double nightLoss, double peakLoss) {
    const double hour = std::fmod(sim::toSeconds(now) / 3600.0, 24.0);
    // Office activity envelope: ramp 8-10am, plateau, fall 17-20h.
    double activity = 0.0;
    if (hour >= 8.0 && hour < 10.0) {
        activity = (hour - 8.0) / 2.0;
    } else if (hour >= 10.0 && hour < 17.0) {
        activity = 1.0;
    } else if (hour >= 17.0 && hour < 20.0) {
        activity = (20.0 - hour) / 3.0;
    }
    const double base = nightLoss + (peakLoss - nightLoss) * activity;

    // Interference bursts: short windows (~600 ms) during which the channel
    // is nearly unusable (a microwave turning on, a WiFi bulk transfer).
    // Bursts are what defeat bounded link retries and separate reliable
    // from unreliable transports in Table 8; smooth i.i.d. loss alone is
    // fully masked by ARQ. Deterministic hash of the time bucket keeps runs
    // reproducible.
    const std::uint64_t bucket = std::uint64_t(now / (600 * sim::kMillisecond));
    std::uint64_t h = bucket * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    // Burst frequency scales with activity: ~1.2% of buckets at night,
    // ~6% at peak (one burst every ~10-50 s).
    const double burstRate = 0.012 + 0.05 * activity;
    if (double(h % 10000) / 10000.0 < burstRate) return 0.92;
    return base;
}

}  // namespace tcplp::harness
