#include <algorithm>

#include "tcplp/coap/coap.hpp"
#include "tcplp/common/log.hpp"

namespace tcplp::coap {

CoapClient::CoapClient(transport::UdpStack& udp, const ip6::Address& dst,
                       std::uint16_t dstPort, CoapConfig config)
    : udp_(udp),
      dst_(dst),
      dstPort_(dstPort),
      srcPort_(udp.allocatePort()),
      config_(config),
      cocoa_(config.cocoaInitialRto),
      plainRto_(config.ackTimeout),
      timer_(udp.simulator(), [this] { onTimeout(); }) {
    udp_.bind(srcPort_, [this](const transport::UdpDatagram& d) { input(d); });
}

sim::Time CoapClient::currentRto() const {
    return config_.cocoa ? cocoa_.rto() : plainRto_;
}

sim::Time CoapClient::initialRto() {
    if (config_.cocoa) return cocoa_.rto();
    // Uniform in [ACK_TIMEOUT, ACK_TIMEOUT * ACK_RANDOM_FACTOR].
    const double f = 1.0 + udp_.simulator().rng().uniform() * (config_.ackRandomFactor - 1.0);
    return sim::Time(double(config_.ackTimeout) * f);
}

void CoapClient::postConfirmable(Bytes payload, DoneCallback done, std::optional<Block> block) {
    Exchange ex;
    ex.message.type = Type::kConfirmable;
    ex.message.code = kCodePost;
    ex.message.messageId = nextMessageId_++;
    ex.message.token = nextToken_++;
    ex.message.block1 = block;
    ex.message.payload = std::move(payload);
    ex.done = std::move(done);
    queue_.push_back(std::move(ex));
    ++stats_.exchangesStarted;
    startNext();
}

void CoapClient::postNonConfirmable(Bytes payload) {
    Message m;
    m.type = Type::kNonConfirmable;
    m.code = kCodePost;
    m.messageId = nextMessageId_++;
    m.token = nextToken_++;
    m.payload = std::move(payload);
    ++stats_.nonsSent;
    udp_.sendTo(dst_, dstPort_, srcPort_, m.encode());
}

void CoapClient::startNext() {
    if (current_ || queue_.empty()) return;  // NSTART = 1
    current_ = std::make_unique<Exchange>(std::move(queue_.front()));
    queue_.pop_front();
    current_->rto = initialRto();
    current_->firstTx = udp_.simulator().now();
    transmitCurrent();
}

void CoapClient::transmitCurrent() {
    ++current_->transmissions;
    udp_.sendTo(dst_, dstPort_, srcPort_, current_->message.encode());
    udp_.netif().setExpectingResponse(true);
    timer_.start(current_->rto);
}

void CoapClient::onTimeout() {
    if (!current_) return;
    if (current_->transmissions > config_.maxRetransmit) {
        // Give up; reset RTO (§9.4) and move to the next message.
        ++stats_.exchangesFailed;
        plainRto_ = config_.ackTimeout;
        auto done = std::move(current_->done);
        current_.reset();
        udp_.netif().setExpectingResponse(pendingExchanges() > 0);
        if (done) done(false);
        startNext();
        return;
    }
    ++stats_.retransmissions;
    current_->rto = config_.cocoa ? CocoaEstimator::backoff(current_->rto)
                                  : current_->rto * 2;
    transmitCurrent();
}

void CoapClient::input(const transport::UdpDatagram& d) {
    const auto msg = Message::decode(d.payload);
    if (!msg) return;
    if (msg->type != Type::kAck) return;
    if (!current_ || msg->messageId != current_->message.messageId) return;

    timer_.stop();
    ++stats_.exchangesDelivered;
    const sim::Time now = udp_.simulator().now();
    if (config_.cocoa) {
        // CoCoA samples: strong from clean exchanges, weak (measured from
        // the first transmission!) from exchanges with <= 2 retransmissions.
        const sim::Time rttFromFirst = now - current_->firstTx;
        if (current_->transmissions == 1) {
            cocoa_.strongSample(rttFromFirst);
        } else if (current_->transmissions <= 3) {
            cocoa_.weakSample(rttFromFirst);
        }
    }
    auto done = std::move(current_->done);
    current_.reset();
    udp_.netif().setExpectingResponse(pendingExchanges() > 0);
    if (done) done(true);
    startNext();
}

// ---------------------------------------------------------------------------

CoapServer::CoapServer(transport::UdpStack& udp, std::uint16_t port)
    : udp_(udp), port_(port) {
    udp_.bind(port_, [this](const transport::UdpDatagram& d) { input(d); });
}

void CoapServer::input(const transport::UdpDatagram& d) {
    const auto msg = Message::decode(d.payload);
    if (!msg) return;
    if (msg->type != Type::kConfirmable && msg->type != Type::kNonConfirmable) return;

    bool duplicate = false;
    if (msg->type == Type::kConfirmable) {
        auto& recent = recentMids_[d.srcAddr];
        duplicate = std::find(recent.begin(), recent.end(), msg->messageId) != recent.end();
        if (!duplicate) {
            recent.push_back(msg->messageId);
            if (recent.size() > 32) recent.pop_front();
        }
        // Piggybacked ACK response (sent for duplicates too: the original
        // ACK may have been lost).
        Message ack;
        ack.type = Type::kAck;
        ack.code = msg->block1 && msg->block1->more ? kCodeContinue : kCodeChanged;
        ack.messageId = msg->messageId;
        ack.token = msg->token;
        ack.tokenLength = msg->tokenLength;
        udp_.sendTo(d.srcAddr, d.srcPort, port_, ack.encode());
    }
    if (duplicate) {
        ++duplicatesSuppressed_;
        return;
    }
    ++requestsReceived_;
    if (onRequest_) onRequest_(*msg, d.srcAddr);
}

}  // namespace tcplp::coap
