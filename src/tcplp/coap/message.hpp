// CoAP message model and wire codec (RFC 7252 subset + Block1, RFC 7959).
//
// The evaluation (§9) uses CoAP as the representative LLN-specialized
// reliability protocol: confirmable POSTs carrying sensor readings, with
// blockwise transfer for batches. The codec produces real bytes (4-byte
// fixed header, token, delta-encoded options, 0xFF payload marker) so frame
// counts and header overhead are faithful.
#pragma once

#include <cstdint>
#include <optional>

#include "tcplp/common/bytes.hpp"

namespace tcplp::coap {

enum class Type : std::uint8_t { kConfirmable = 0, kNonConfirmable = 1, kAck = 2, kReset = 3 };

// Codes: class.detail packed as (cls << 5) | detail.
constexpr std::uint8_t kCodeEmpty = 0;
constexpr std::uint8_t kCodePost = 0x02;           // 0.02
constexpr std::uint8_t kCodeChanged = 0x44;        // 2.04
constexpr std::uint8_t kCodeContinue = 0x5f;       // 2.31 (blockwise)

/// Block1 option (RFC 7959): block number, more flag, size exponent.
struct Block {
    std::uint32_t num = 0;
    bool more = false;
    std::uint8_t szx = 6;  // block size = 2^(szx+4); szx 6 = 1024 B

    std::uint32_t sizeBytes() const { return 1u << (szx + 4); }
};

struct Message {
    Type type = Type::kConfirmable;
    std::uint8_t code = kCodePost;
    std::uint16_t messageId = 0;
    std::uint64_t token = 0;   // up to 8 bytes on the wire
    std::uint8_t tokenLength = 4;
    std::optional<Block> block1;
    Bytes payload;

    Bytes encode() const;
    static std::optional<Message> decode(BytesView in);
};

}  // namespace tcplp::coap
