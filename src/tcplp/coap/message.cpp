#include "tcplp/coap/message.hpp"

#include "tcplp/common/assert.hpp"

namespace tcplp::coap {
namespace {
constexpr std::uint8_t kOptionBlock1 = 27;
constexpr std::uint8_t kPayloadMarker = 0xff;

void putOptionHeader(Bytes& out, std::uint32_t delta, std::size_t length) {
    // Deltas/lengths < 13 only (all we need for Block1 = 27 from zero... 27
    // exceeds 12, so support the one-byte extended form).
    std::uint8_t d = delta < 13 ? std::uint8_t(delta) : 13;
    std::uint8_t l = std::uint8_t(length);
    TCPLP_ASSERT(length < 13);
    out.push_back(std::uint8_t((d << 4) | l));
    if (d == 13) out.push_back(std::uint8_t(delta - 13));
}
}  // namespace

Bytes Message::encode() const {
    Bytes out;
    out.push_back(std::uint8_t((1u << 6) | (std::uint8_t(type) << 4) | tokenLength));
    out.push_back(code);
    putU16(out, messageId);
    for (int i = tokenLength - 1; i >= 0; --i)
        out.push_back(std::uint8_t(token >> (8 * i)));

    if (block1) {
        // Block1 value: num(20) | more(1) | szx(3), minimal-length encoding.
        const std::uint32_t v = (block1->num << 4) | (std::uint32_t(block1->more) << 3) |
                                block1->szx;
        Bytes val;
        if (v >= 0x10000) {
            val.push_back(std::uint8_t(v >> 16));
            val.push_back(std::uint8_t(v >> 8));
            val.push_back(std::uint8_t(v));
        } else if (v >= 0x100) {
            val.push_back(std::uint8_t(v >> 8));
            val.push_back(std::uint8_t(v));
        } else {
            val.push_back(std::uint8_t(v));
        }
        putOptionHeader(out, kOptionBlock1, val.size());
        append(out, val);
    }
    if (!payload.empty()) {
        out.push_back(kPayloadMarker);
        append(out, payload);
    }
    return out;
}

std::optional<Message> Message::decode(BytesView in) {
    if (in.size() < 4) return std::nullopt;
    if ((in[0] >> 6) != 1) return std::nullopt;  // version
    Message m;
    m.type = static_cast<Type>((in[0] >> 4) & 0x3);
    m.tokenLength = in[0] & 0x0f;
    if (m.tokenLength > 8) return std::nullopt;
    m.code = in[1];
    m.messageId = getU16(in, 2);
    std::size_t off = 4;
    if (off + m.tokenLength > in.size()) return std::nullopt;
    m.token = 0;
    for (int i = 0; i < m.tokenLength; ++i) m.token = (m.token << 8) | in[off++];

    std::uint32_t optionNumber = 0;
    while (off < in.size() && in[off] != kPayloadMarker) {
        std::uint32_t delta = in[off] >> 4;
        std::uint32_t length = in[off] & 0x0f;
        ++off;
        if (delta == 13) {
            if (off >= in.size()) return std::nullopt;
            delta = 13 + in[off++];
        } else if (delta >= 14) {
            return std::nullopt;  // unsupported extended forms
        }
        if (length >= 13) return std::nullopt;
        if (off + length > in.size()) return std::nullopt;
        optionNumber += delta;
        if (optionNumber == kOptionBlock1) {
            std::uint32_t v = 0;
            for (std::uint32_t i = 0; i < length; ++i) v = (v << 8) | in[off + i];
            m.block1 = Block{v >> 4, ((v >> 3) & 1) != 0, std::uint8_t(v & 0x7)};
        }
        off += length;
    }
    if (off < in.size() && in[off] == kPayloadMarker) {
        ++off;
        if (off >= in.size()) return std::nullopt;  // marker with no payload
        m.payload.assign(in.begin() + long(off), in.end());
    }
    return m;
}

}  // namespace tcplp::coap
