// CoAP client/server message-layer reliability, plus the CoCoA variant.
//
// Client behavior per RFC 7252 §4.2: a confirmable message is retransmitted
// up to MAX_RETRANSMIT (4) times, initial timeout uniform in
// [ACK_TIMEOUT, ACK_TIMEOUT * ACK_RANDOM_FACTOR], doubling per retry.
// NSTART = 1: one outstanding exchange per peer; further messages queue.
// On giving up, the paper notes CoAP "resets its RTO to 3 seconds ... and
// mov[es] to the next packet" (§9.4) — we model exactly that.
//
// CoCoA (Betzler et al., §9.1/§9.4) replaces the fixed timeout with RTT
// estimators: a *strong* estimator fed by exchanges that completed without
// retransmission, and a *weak* estimator fed by retransmitted exchanges —
// measured, conservatively, from the FIRST transmission. That inflated weak
// sample is the failure mode §9.4 exposes at 15 % loss. Variable backoff:
// RTO < 1 s doubles... x3, 1-3 s x2, > 3 s x1.5.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "tcplp/coap/message.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/transport/udp.hpp"

namespace tcplp::coap {

struct CoapConfig {
    sim::Time ackTimeout = 2 * sim::kSecond;
    double ackRandomFactor = 1.5;
    int maxRetransmit = 4;
    bool cocoa = false;
    sim::Time giveUpResetRto = 3 * sim::kSecond;
    /// CoCoA initial overall RTO.
    sim::Time cocoaInitialRto = 2 * sim::kSecond;
};

struct CoapStats {
    std::uint64_t exchangesStarted = 0;
    std::uint64_t exchangesDelivered = 0;
    std::uint64_t exchangesFailed = 0;  // gave up after MAX_RETRANSMIT
    std::uint64_t retransmissions = 0;
    std::uint64_t nonsSent = 0;  // non-confirmable messages (no ARQ)
};

/// CoCoA RTO state per destination.
class CocoaEstimator {
public:
    explicit CocoaEstimator(sim::Time initialRto) : overallRto_(initialRto) {}

    sim::Time rto() const { return overallRto_; }

    /// Exchange completed without retransmission: strong sample.
    void strongSample(sim::Time rtt) {
        update(strong_, rtt, 4);
        overallRto_ = (rtoOf(strong_) + overallRto_) / 2;  // 0.5 / 0.5
    }

    /// Exchange needed retransmission; `rtt` measured from the FIRST
    /// transmission (the conservative choice the paper criticizes). K=4 as
    /// in er-cocoa, the implementation the paper adapted — together with
    /// the first-transmission-relative sample this is the positive feedback
    /// loop that inflates the RTO under sustained loss (§9.4).
    void weakSample(sim::Time rtt) {
        update(weak_, rtt, 4);
        overallRto_ = (rtoOf(weak_) + 3 * overallRto_) / 4;  // 0.25 / 0.75
    }

    /// Variable backoff factor (x1000 to stay integral).
    static sim::Time backoff(sim::Time rto) {
        if (rto < 1 * sim::kSecond) return rto * 3;
        if (rto > 3 * sim::kSecond) return rto * 3 / 2;
        return rto * 2;
    }

private:
    struct Estimator {
        sim::Time srtt = 0;
        sim::Time rttvar = 0;
        bool primed = false;
        int k = 4;
    };

    static void update(Estimator& e, sim::Time rtt, int k) {
        e.k = k;
        if (!e.primed) {
            e.srtt = rtt;
            e.rttvar = rtt / 2;
            e.primed = true;
            return;
        }
        const sim::Time err = rtt - e.srtt;
        e.srtt += err / 8;
        e.rttvar += ((err < 0 ? -err : err) - e.rttvar) / 4;
    }
    static sim::Time rtoOf(const Estimator& e) { return e.srtt + e.k * e.rttvar; }

    Estimator strong_;
    Estimator weak_;
    sim::Time overallRto_;
};

/// One-destination CoAP client with NSTART=1 queueing.
class CoapClient {
public:
    /// done(delivered): delivered=false means gave up after retries.
    using DoneCallback = std::function<void(bool delivered)>;

    CoapClient(transport::UdpStack& udp, const ip6::Address& dst, std::uint16_t dstPort,
               CoapConfig config = {});

    /// Sends a confirmable POST carrying `payload`.
    void postConfirmable(Bytes payload, DoneCallback done, std::optional<Block> block = {});
    /// Sends a non-confirmable POST (fire and forget, §9.6).
    void postNonConfirmable(Bytes payload);

    const CoapStats& stats() const { return stats_; }
    std::size_t pendingExchanges() const { return queue_.size() + (current_ ? 1 : 0); }
    sim::Time currentRto() const;
    sim::Simulator& simulator() { return udp_.simulator(); }

private:
    struct Exchange {
        Message message;
        DoneCallback done;
        int transmissions = 0;
        sim::Time firstTx = 0;
        sim::Time rto = 0;
    };

    void startNext();
    void transmitCurrent();
    void onTimeout();
    void input(const transport::UdpDatagram& d);
    sim::Time initialRto();

    transport::UdpStack& udp_;
    ip6::Address dst_;
    std::uint16_t dstPort_;
    std::uint16_t srcPort_;
    CoapConfig config_;
    CoapStats stats_;
    CocoaEstimator cocoa_;
    sim::Time plainRto_;  // non-CoCoA current RTO (reset per exchange)

    std::uint16_t nextMessageId_ = 1;
    std::uint64_t nextToken_ = 1;
    std::deque<Exchange> queue_;
    std::unique_ptr<Exchange> current_;
    sim::Timer timer_;
};

/// CoAP server: acknowledges confirmables, deduplicates by message id, and
/// hands request payloads to the application (our Californium stand-in).
class CoapServer {
public:
    using RequestHandler =
        std::function<void(const Message&, const ip6::Address& from)>;

    CoapServer(transport::UdpStack& udp, std::uint16_t port);

    void setOnRequest(RequestHandler handler) { onRequest_ = std::move(handler); }
    std::uint64_t requestsReceived() const { return requestsReceived_; }
    std::uint64_t duplicatesSuppressed() const { return duplicatesSuppressed_; }

private:
    void input(const transport::UdpDatagram& d);

    transport::UdpStack& udp_;
    std::uint16_t port_;
    RequestHandler onRequest_;
    std::uint64_t requestsReceived_ = 0;
    std::uint64_t duplicatesSuppressed_ = 0;
    // Recent (source, messageId) pairs for deduplication.
    std::map<ip6::Address, std::deque<std::uint16_t>> recentMids_;
};

}  // namespace tcplp::coap
