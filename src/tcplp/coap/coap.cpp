// Anchor translation unit for the coap library (filled by coap.hpp et al.).
