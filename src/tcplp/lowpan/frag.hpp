// 6LoWPAN fragmentation and reassembly (RFC 4944 style).
//
// A compressed IPv6 datagram larger than one 802.15.4 MAC payload is split
// into a FRAG1 frame (4-byte header + IPHC + leading payload) and FRAGN
// frames (5-byte header + continuation). Offsets are in 8-byte units of the
// *uncompressed* datagram. Losing any fragment loses the whole datagram —
// the reliability/MSS trade-off at the heart of the paper's §6.1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "tcplp/common/arena.hpp"
#include "tcplp/ip6/packet.hpp"
#include "tcplp/lowpan/iphc.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::lowpan {

constexpr std::size_t kFrag1HeaderBytes = 4;
constexpr std::size_t kFragNHeaderBytes = 5;

struct FragInfo {
    bool isFragment = false;
    bool isFirst = false;
    std::uint16_t datagramSize = 0;  // uncompressed bytes (40 + payload)
    std::uint16_t tag = 0;
    std::uint16_t offsetBytes = 0;   // uncompressed offset
    std::size_t headerLen = 0;       // bytes of FRAG header to skip
};

/// Classifies a MAC payload: FRAG1 / FRAGN / unfragmented IPHC.
std::optional<FragInfo> parseFragmentHeader(BytesView macPayload);

/// Compresses and (if needed) fragments `p` into MAC payloads no larger
/// than `maxMacPayload`. `tag` must be unique per (source, datagram).
/// Pass the packet by move from the TX hot path: an unfragmented datagram
/// then prepends its IPHC header in place (zero payload copies). Fragmented
/// datagrams copy each body chunk once into its per-frame wire buffer (a
/// deliberate origination scatter, not counted as a deep copy); relays then
/// forward those buffers by reference.
std::vector<PacketBuffer> encodeDatagram(ip6::Packet p, ip6::ShortAddr macSrc,
                                         ip6::ShortAddr macDst, std::uint16_t tag,
                                         std::size_t maxMacPayload);

/// Same encoding, appended into a caller-owned vector (cleared first). The
/// TX hot path passes its reusable per-node frame list so steady-state
/// datagram encoding allocates no vector storage; headers are staged in
/// stack buffers, and frame payload storage recycles through the slab pool.
void encodeDatagramInto(ip6::Packet p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                        std::uint16_t tag, std::size_t maxMacPayload,
                        std::vector<PacketBuffer>& out);

/// Number of frames `encodeDatagram` would produce (MSS planning, §6.1).
/// Computed arithmetically — no frames are materialized.
std::size_t frameCountFor(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                          std::size_t maxMacPayload);

struct ReassemblyStats {
    std::uint64_t delivered = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t dropped = 0;     // out-of-order / overlapping fragments
    std::uint64_t arenaDrops = 0;  // gather buffer did not fit in the arena
    std::uint64_t slotDrops = 0;   // all partial-datagram slots were busy
};

/// Per-node reassembly state machine. Fragments of a datagram must arrive
/// in order (the MAC's ARQ provides this on a single hop); a gap or timeout
/// discards the partial datagram.
///
/// Memory model: partial-datagram state lives in a fixed slot array sized at
/// construction (a mote tracks a handful of concurrent reassemblies, not an
/// elastic map), and the gather buffer for each datagram is carved out of an
/// optional BufferArena sized from the FRAG1 header. With an arena attached,
/// the steady-state reassembly path performs zero heap allocations; running
/// out of slots or arena bytes drops the datagram and counts it, exactly as
/// a mote with a full packet heap would.
class Reassembler {
public:
    using Deliver = std::function<void(ip6::Packet, ip6::ShortAddr macSrc)>;

    /// Concurrent partial datagrams tracked (OpenThread keeps a similar
    /// small fixed table; exceeding it drops the newest datagram). Sized so
    /// a border router riding out an interference burst — live reassemblies
    /// from every sensor plus dead tails awaiting the 5 s timeout — does not
    /// shed traffic in the paper's full-day office run.
    static constexpr std::size_t kDefaultMaxPartials = 16;

    Reassembler(sim::Simulator& simulator, Deliver deliver,
                sim::Time timeout = 5 * sim::kSecond, BufferArena* arena = nullptr,
                std::size_t maxPartials = kDefaultMaxPartials)
        : simulator_(simulator),
          deliver_(std::move(deliver)),
          timeout_(timeout),
          arena_(arena),
          slots_(maxPartials) {}

    /// Feeds one received MAC payload (fragment or whole datagram). An
    /// unfragmented datagram is delivered as a zero-copy subview of
    /// `macPayload`; fragments are gathered into a single arena chunk (heap
    /// buffer when no arena is attached) sized from the FRAG1 header.
    void input(ip6::ShortAddr macSrc, ip6::ShortAddr macDst, const PacketBuffer& macPayload);

    const ReassemblyStats& stats() const { return stats_; }
    const BufferArena* arena() const { return arena_; }
    std::size_t maxPartials() const { return slots_.size(); }

    /// Drops every partial datagram, returning their gather buffers to the
    /// arena (node reboot: volatile reassembly state is lost, not leaked).
    void clear();

private:
    struct Slot {
        bool active = false;
        ip6::ShortAddr src = 0;
        std::uint16_t tag = 0;
        ip6::Packet packet;        // header decoded from FRAG1
        std::uint16_t expectedSize = 0;
        std::size_t receivedUncompressed = 0;  // 40 + payload bytes so far
        sim::Time lastActivity = 0;
    };

    Slot* findSlot(ip6::ShortAddr src, std::uint16_t tag);
    void releaseSlot(Slot& slot);
    void expire();

    sim::Simulator& simulator_;
    Deliver deliver_;
    sim::Time timeout_;
    BufferArena* arena_;
    ReassemblyStats stats_;
    std::vector<Slot> slots_;  // fixed size after construction
};

}  // namespace tcplp::lowpan
