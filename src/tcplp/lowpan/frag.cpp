#include "tcplp/lowpan/frag.hpp"

#include <algorithm>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"

namespace tcplp::lowpan {
namespace {
constexpr std::uint8_t kFrag1Dispatch = 0b1100'0000;
constexpr std::uint8_t kFragNDispatch = 0b1110'0000;
constexpr std::uint8_t kDispatchMask = 0b1111'1000;
}  // namespace

std::optional<FragInfo> parseFragmentHeader(BytesView macPayload) {
    if (macPayload.empty()) return std::nullopt;
    FragInfo info;
    const std::uint8_t dispatch = macPayload[0] & kDispatchMask;  // high 5 bits
    if (dispatch == kFrag1Dispatch) {
        if (macPayload.size() < kFrag1HeaderBytes) return std::nullopt;
        info.isFragment = true;
        info.isFirst = true;
        info.datagramSize = std::uint16_t(((macPayload[0] & 0x07) << 8) | macPayload[1]);
        info.tag = getU16(macPayload, 2);
        info.headerLen = kFrag1HeaderBytes;
        return info;
    }
    if (dispatch == kFragNDispatch) {
        if (macPayload.size() < kFragNHeaderBytes) return std::nullopt;
        info.isFragment = true;
        info.isFirst = false;
        info.datagramSize = std::uint16_t(((macPayload[0] & 0x07) << 8) | macPayload[1]);
        info.tag = getU16(macPayload, 2);
        info.offsetBytes = std::uint16_t(macPayload[4]) * 8;
        info.headerLen = kFragNHeaderBytes;
        return info;
    }
    // Unfragmented IPHC datagram.
    info.isFragment = false;
    info.headerLen = 0;
    return info;
}

void encodeDatagramInto(ip6::Packet p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                        std::uint16_t tag, std::size_t maxMacPayload,
                        std::vector<PacketBuffer>& out) {
    out.clear();
    IphcHeader iphc;
    compressHeaderInto(p, macSrc, macDst, iphc);

    // Fits without fragmentation? Prepend the IPHC header in place — free
    // when the caller moved the packet in and it was originated with
    // headroom; a counted deep copy otherwise.
    if (iphc.size() + p.payload.size() <= maxMacPayload) {
        PacketBuffer f = std::move(p.payload);
        f.prepend(iphc.view());
        out.push_back(std::move(f));
        return;
    }

    const std::size_t datagramSize = p.uncompressedSize();
    TCPLP_ASSERT(datagramSize < (1u << 11));

    // FRAG1: header + IPHC + leading payload. The uncompressed prefix it
    // covers (40-byte IPv6 header + carried payload) must be 8-aligned.
    std::size_t room = maxMacPayload - kFrag1HeaderBytes - iphc.size();
    std::size_t firstPayload = ((ip6::kUncompressedHeaderBytes + room) / 8) * 8 -
                               ip6::kUncompressedHeaderBytes;
    firstPayload = std::min(firstPayload, p.payload.size());

    // Both fragment headers are staged in stack buffers; the only storage
    // each frame touches is its own composed wire buffer.
    std::uint8_t h1[kFrag1HeaderBytes + IphcHeader::kMaxBytes];
    h1[0] = std::uint8_t(kFrag1Dispatch | ((datagramSize >> 8) & 0x07));
    h1[1] = std::uint8_t(datagramSize & 0xff);
    h1[2] = std::uint8_t(tag >> 8);
    h1[3] = std::uint8_t(tag & 0xff);
    std::copy(iphc.bytes, iphc.bytes + iphc.len, h1 + kFrag1HeaderBytes);
    out.push_back(PacketBuffer::compose(BytesView(h1, kFrag1HeaderBytes + iphc.len),
                                        BytesView(p.payload.data(), firstPayload)));

    std::size_t sent = firstPayload;
    while (sent < p.payload.size()) {
        const std::size_t offset = ip6::kUncompressedHeaderBytes + sent;
        TCPLP_ASSERT(offset % 8 == 0);
        std::size_t chunk = ((maxMacPayload - kFragNHeaderBytes) / 8) * 8;
        TCPLP_ASSERT(chunk > 0);  // budget must fit FRAGN header + 8 bytes
        chunk = std::min(chunk, p.payload.size() - sent);
        std::uint8_t hn[kFragNHeaderBytes];
        hn[0] = std::uint8_t(kFragNDispatch | ((datagramSize >> 8) & 0x07));
        hn[1] = std::uint8_t(datagramSize & 0xff);
        hn[2] = std::uint8_t(tag >> 8);
        hn[3] = std::uint8_t(tag & 0xff);
        hn[4] = std::uint8_t(offset / 8);
        out.push_back(PacketBuffer::compose(BytesView(hn, kFragNHeaderBytes),
                                            BytesView(p.payload.data() + sent, chunk)));
        sent += chunk;
    }
}

std::vector<PacketBuffer> encodeDatagram(ip6::Packet p, ip6::ShortAddr macSrc,
                                         ip6::ShortAddr macDst, std::uint16_t tag,
                                         std::size_t maxMacPayload) {
    std::vector<PacketBuffer> frames;
    encodeDatagramInto(std::move(p), macSrc, macDst, tag, maxMacPayload, frames);
    return frames;
}

std::size_t frameCountFor(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                          std::size_t maxMacPayload) {
    IphcHeader iphc;
    compressHeaderInto(p, macSrc, macDst, iphc);
    if (iphc.size() + p.payload.size() <= maxMacPayload) return 1;
    const std::size_t room = maxMacPayload - kFrag1HeaderBytes - iphc.size();
    std::size_t firstPayload = ((ip6::kUncompressedHeaderBytes + room) / 8) * 8 -
                               ip6::kUncompressedHeaderBytes;
    firstPayload = std::min(firstPayload, p.payload.size());
    const std::size_t remaining = p.payload.size() - firstPayload;
    const std::size_t chunk = ((maxMacPayload - kFragNHeaderBytes) / 8) * 8;
    TCPLP_ASSERT(chunk > 0);  // budget must fit FRAGN header + 8 bytes
    return 1 + (remaining + chunk - 1) / chunk;
}

Reassembler::Slot* Reassembler::findSlot(ip6::ShortAddr src, std::uint16_t tag) {
    for (Slot& s : slots_) {
        if (s.active && s.src == src && s.tag == tag) return &s;
    }
    return nullptr;
}

void Reassembler::releaseSlot(Slot& slot) {
    slot.active = false;
    // Drop the gather buffer now (returns its chunk to the arena) rather
    // than when the slot is next recycled.
    slot.packet = ip6::Packet{};
}

void Reassembler::input(ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                        const PacketBuffer& macPayload) {
    expire();
    const auto info = parseFragmentHeader(macPayload);
    if (!info) return;

    if (!info->isFragment) {
        ip6::Packet p;
        const auto consumed = decompressHeader(macPayload, macSrc, macDst, p);
        if (!consumed) return;
        p.payload = macPayload.subview(*consumed);  // zero-copy delivery
        ++stats_.delivered;
        deliver_(std::move(p), macSrc);
        return;
    }

    if (info->isFirst) {
        // New FRAG1 replaces any stale partial with the same (src, tag);
        // otherwise it claims a free slot, or is dropped when a mote-sized
        // table would be full.
        Slot* slot = findSlot(macSrc, info->tag);
        if (slot == nullptr) {
            for (Slot& s : slots_) {
                if (!s.active) {
                    slot = &s;
                    break;
                }
            }
        }
        if (slot == nullptr) {
            ++stats_.slotDrops;
            return;
        }
        const PacketBuffer rest = macPayload.subview(info->headerLen);
        ip6::Packet header;
        const auto consumed = decompressHeader(rest, macSrc, macDst, header);
        if (!consumed) return;
        const std::size_t lead = rest.size() - *consumed;
        if (info->datagramSize < ip6::kUncompressedHeaderBytes ||
            lead > info->datagramSize - ip6::kUncompressedHeaderBytes) {
            ++stats_.dropped;  // malformed: more payload than announced
            return;
        }
        const std::size_t total = info->datagramSize - ip6::kUncompressedHeaderBytes;
        // Gather fragments into one chunk sized from the FRAG1 header (no
        // per-fragment growth reallocations) — carved from the arena when
        // one is attached, so the steady-state path never touches the heap.
        // Carve BEFORE touching any stale same-key partial: a transiently
        // full arena then usually leaves the old partial intact. If the
        // carve fails, the stale partial is sacrificed and the carve
        // retried — its chunk is the replacement's best chance to fit, and
        // an in-order continuation of the abandoned attempt is unlikely
        // once the sender has restarted the datagram. If the retry fails
        // too, both attempts are lost and the drop is counted.
        PacketBuffer gather = arena_ != nullptr
                                  ? PacketBuffer::allocateFrom(*arena_, total)
                                  : PacketBuffer::allocate(total, /*headroom=*/0);
        if (arena_ != nullptr && !gather.valid() && slot->active) {
            releaseSlot(*slot);
            gather = PacketBuffer::allocateFrom(*arena_, total);
        }
        if (!gather.valid()) {
            ++stats_.arenaDrops;  // packet heap full: the datagram is lost
            return;
        }
        releaseSlot(*slot);  // new FRAG1 replaces any stale same-key partial
        slot->active = true;
        slot->src = macSrc;
        slot->tag = info->tag;
        slot->packet = std::move(header);
        slot->packet.payload = std::move(gather);
        slot->packet.payload.writeAt(0, BytesView(rest.data() + *consumed, lead));
        slot->expectedSize = info->datagramSize;
        slot->receivedUncompressed = ip6::kUncompressedHeaderBytes + lead;
        slot->lastActivity = simulator_.now();
        return;
    }

    Slot* slot = findSlot(macSrc, info->tag);
    if (slot == nullptr) return;  // FRAG1 lost: datagram unrecoverable
    const std::size_t frag = macPayload.size() - info->headerLen;
    const std::size_t at = slot->receivedUncompressed - ip6::kUncompressedHeaderBytes;
    if (info->offsetBytes != slot->receivedUncompressed ||
        at + frag > slot->packet.payload.size()) {
        // Gap, duplicate, or overflow: a fragment was lost despite link
        // retries (or the header lied about the datagram size).
        ++stats_.dropped;
        releaseSlot(*slot);
        return;
    }
    slot->packet.payload.writeAt(at, BytesView(macPayload.data() + info->headerLen, frag));
    slot->receivedUncompressed += frag;
    slot->lastActivity = simulator_.now();

    if (slot->receivedUncompressed >= slot->expectedSize) {
        ip6::Packet done = std::move(slot->packet);
        releaseSlot(*slot);
        ++stats_.delivered;
        deliver_(std::move(done), macSrc);
    }
}

void Reassembler::clear() {
    for (Slot& s : slots_) {
        if (s.active) {
            ++stats_.dropped;
            releaseSlot(s);
        }
    }
}

void Reassembler::expire() {
    const sim::Time now = simulator_.now();
    for (Slot& s : slots_) {
        if (s.active && now - s.lastActivity > timeout_) {
            ++stats_.timedOut;
            releaseSlot(s);
        }
    }
}

}  // namespace tcplp::lowpan
