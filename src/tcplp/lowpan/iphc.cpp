#include "tcplp/lowpan/iphc.hpp"

#include <algorithm>

#include "tcplp/common/assert.hpp"

namespace tcplp::lowpan {
namespace {

constexpr std::uint8_t kIphcDispatch = 0b011'00000;  // high 3 bits of byte 0

AddrMode modeFor(const ip6::Address& addr, ip6::ShortAddr macAddr) {
    if (addr.isLinkLocal() && addr.shortAddr() == macAddr) return AddrMode::kElided;
    if (addr.isMeshLocal()) return AddrMode::kContext8;
    return AddrMode::kInline16;
}

std::size_t putAddress(std::uint8_t* out, const ip6::Address& addr, AddrMode mode) {
    switch (mode) {
        case AddrMode::kInline16:
            std::copy(addr.bytes.begin(), addr.bytes.end(), out);
            return 16;
        case AddrMode::kContext8:
            std::copy(addr.bytes.begin() + 8, addr.bytes.end(), out);
            return 8;
        case AddrMode::kElided:
            return 0;
    }
    return 0;
}

bool getAddress(BytesView in, std::size_t& off, AddrMode mode, ip6::ShortAddr macAddr,
                bool meshContext, ip6::Address& out) {
    switch (mode) {
        case AddrMode::kInline16:
            if (off + 16 > in.size()) return false;
            for (int i = 0; i < 16; ++i) out.bytes[std::size_t(i)] = in[off + std::size_t(i)];
            off += 16;
            return true;
        case AddrMode::kContext8: {
            if (off + 8 > in.size()) return false;
            out = ip6::Address{};
            out.bytes[0] = 0xfd;  // mesh-local context prefix
            for (int i = 0; i < 8; ++i) out.bytes[std::size_t(8 + i)] = in[off + std::size_t(i)];
            off += 8;
            (void)meshContext;
            return true;
        }
        case AddrMode::kElided:
            out = ip6::Address::linkLocal(macAddr);
            return true;
    }
    return false;
}

}  // namespace

void compressHeaderInto(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                        IphcHeader& out) {
    const AddrMode sm = modeFor(p.src, macSrc);
    const AddrMode dm = modeFor(p.dst, macDst);
    const bool tcInline = p.trafficClass != 0;
    std::uint8_t hlimMode;  // 0=inline 1=1 2=64 3=255
    switch (p.hopLimit) {
        case 1: hlimMode = 1; break;
        case 64: hlimMode = 2; break;
        case 255: hlimMode = 3; break;
        default: hlimMode = 0; break;
    }

    std::uint8_t* b = out.bytes;
    std::size_t n = 0;
    // Byte 0: dispatch(3) | tcInline(1) | reserved(2) | hlim(2)
    b[n++] = std::uint8_t(kIphcDispatch | (tcInline ? 0x10 : 0) | hlimMode);
    // Byte 1: srcMode(4) | dstMode(4)
    b[n++] = std::uint8_t((static_cast<std::uint8_t>(sm) << 4) |
                          static_cast<std::uint8_t>(dm));
    if (tcInline) b[n++] = p.trafficClass;
    b[n++] = p.nextHeader;  // no NHC for TCP (§Table 1: TCP is the point)
    if (hlimMode == 0) b[n++] = p.hopLimit;
    n += putAddress(b + n, p.src, sm);
    n += putAddress(b + n, p.dst, dm);
    TCPLP_ASSERT(n <= IphcHeader::kMaxBytes);
    out.len = n;
}

IphcResult compressHeader(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst) {
    IphcHeader h;
    compressHeaderInto(p, macSrc, macDst, h);
    IphcResult r;
    r.bytes.assign(h.bytes, h.bytes + h.len);
    return r;
}

std::optional<std::size_t> decompressHeader(BytesView in, ip6::ShortAddr macSrc,
                                            ip6::ShortAddr macDst, ip6::Packet& out) {
    if (in.size() < 3) return std::nullopt;
    if ((in[0] & 0b1110'0000) != kIphcDispatch) return std::nullopt;

    const bool tcInline = (in[0] & 0x10) != 0;
    const std::uint8_t hlimMode = in[0] & 0b11;
    const auto sm = static_cast<AddrMode>(in[1] >> 4);
    const auto dm = static_cast<AddrMode>(in[1] & 0x0f);

    std::size_t off = 2;
    out.trafficClass = 0;
    if (tcInline) {
        if (off >= in.size()) return std::nullopt;
        out.trafficClass = in[off++];
    }
    if (off >= in.size()) return std::nullopt;
    out.nextHeader = in[off++];
    switch (hlimMode) {
        case 0:
            if (off >= in.size()) return std::nullopt;
            out.hopLimit = in[off++];
            break;
        case 1: out.hopLimit = 1; break;
        case 2: out.hopLimit = 64; break;
        case 3: out.hopLimit = 255; break;
    }
    if (!getAddress(in, off, sm, macSrc, true, out.src)) return std::nullopt;
    if (!getAddress(in, off, dm, macDst, true, out.dst)) return std::nullopt;
    return off;
}

}  // namespace tcplp::lowpan
