// 6LoWPAN IPHC header compression (RFC 6282 subset).
//
// Encodes an IPv6 header into 2–28 bytes depending on how much can be elided
// (paper Table 6). Supported compression cases:
//  * traffic class elided when zero; 1 byte inline when ECN/DSCP set;
//  * next header always carried inline (1 byte — TCP has no NHC);
//  * hop limit elided for 1/64/255, else inline;
//  * addresses: elided (link-local, IID == MAC short address),
//    8-byte IID (mesh-local context), or 16 bytes inline (no context).
//
// The decoder needs the MAC-layer source/destination to reconstruct elided
// addresses, exactly as real 6LoWPAN does.
#pragma once

#include <optional>

#include "tcplp/common/bytes.hpp"
#include "tcplp/ip6/packet.hpp"

namespace tcplp::lowpan {

/// Address compression modes (2 bits each in the IPHC encoding byte).
enum class AddrMode : std::uint8_t {
    kInline16 = 0,  // full address inline
    kContext8 = 1,  // shared-prefix context, 8-byte IID inline
    kElided = 2,    // derived from the MAC address
};

struct IphcResult {
    Bytes bytes;           // compressed header
    std::size_t size() const { return bytes.size(); }
};

/// Fixed-capacity compressed header staged on the caller's stack — the TX
/// hot path's allocation-free variant of IphcResult. Worst case is 37 bytes
/// (2 control + traffic class + next header + hop limit + two 16-byte
/// inline addresses).
struct IphcHeader {
    static constexpr std::size_t kMaxBytes = 40;
    std::uint8_t bytes[kMaxBytes];
    std::size_t len = 0;
    std::size_t size() const { return len; }
    BytesView view() const { return BytesView(bytes, len); }
};

/// Compresses `header fields of p` (payload not included).
IphcResult compressHeader(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst);

/// Allocation-free compressHeader: writes into the caller's IphcHeader.
void compressHeaderInto(const ip6::Packet& p, ip6::ShortAddr macSrc, ip6::ShortAddr macDst,
                        IphcHeader& out);

/// Decompresses an IPHC header at the front of `in`; returns the number of
/// bytes consumed and fills everything except payload. Returns nullopt on a
/// malformed header.
std::optional<std::size_t> decompressHeader(BytesView in, ip6::ShortAddr macSrc,
                                            ip6::ShortAddr macDst, ip6::Packet& out);

}  // namespace tcplp::lowpan
