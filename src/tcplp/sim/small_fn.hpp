// Move-only callable with inline storage for small captures.
//
// The event core schedules hundreds of thousands of timer callbacks per
// simulated second; wrapping each in std::function would heap-allocate for
// any capture larger than the implementation's tiny SBO. SmallFn stores
// captures up to kInlineBytes (48 B — enough for every callback in the
// stack: a `this` pointer plus a few ints or a shared payload buffer)
// directly inside the event record, falling back to the heap only for
// oversized captures. The fallback count is observable so benches can assert
// the hot path stays allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace tcplp::sim {

class SmallFn {
public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
                 std::is_invocable_r_v<void, std::decay_t<F>&>)
    SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
            ops_ = &kInlineOps<Fn>;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            ops_ = &kHeapOps<Fn>;
            ++heapFallbacks_;
        }
    }

    SmallFn(SmallFn&& other) noexcept { moveFrom(other); }
    SmallFn& operator=(SmallFn&& other) noexcept {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }
    SmallFn(const SmallFn&) = delete;
    SmallFn& operator=(const SmallFn&) = delete;
    ~SmallFn() { reset(); }

    void reset() {
        if (ops_ != nullptr) ops_->destroy(object());
        ops_ = nullptr;
        heap_ = nullptr;
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(object()); }

    /// Total callables that did not fit inline (process-wide; benches use
    /// this to prove the scheduler hot path performs zero heap allocations).
    static std::uint64_t heapFallbacks() { return heapFallbacks_; }

private:
    struct Ops {
        void (*invoke)(void* obj);
        /// Move-constructs into `to` and destroys `from` (inline storage only).
        void (*relocate)(void* from, void* to);
        void (*destroy)(void* obj);
        bool onHeap;
    };

    template <typename Fn>
    static constexpr Ops kInlineOps{
        [](void* o) { (*static_cast<Fn*>(o))(); },
        [](void* from, void* to) {
            ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
            static_cast<Fn*>(from)->~Fn();
        },
        [](void* o) { static_cast<Fn*>(o)->~Fn(); },
        false,
    };
    template <typename Fn>
    static constexpr Ops kHeapOps{
        [](void* o) { (*static_cast<Fn*>(o))(); },
        nullptr,
        [](void* o) { delete static_cast<Fn*>(o); },
        true,
    };

    void* object() { return ops_ != nullptr && ops_->onHeap ? heap_ : static_cast<void*>(inline_); }

    void moveFrom(SmallFn& other) noexcept {
        ops_ = other.ops_;
        heap_ = other.heap_;
        if (ops_ != nullptr && !ops_->onHeap) ops_->relocate(other.inline_, inline_);
        other.ops_ = nullptr;
        other.heap_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
    void* heap_ = nullptr;
    const Ops* ops_ = nullptr;

    static inline std::uint64_t heapFallbacks_ = 0;
};

}  // namespace tcplp::sim
