// Discrete-event simulation core.
//
// The entire testbed — radios, MAC timers, TCP retransmission timers,
// application sensors — runs as callbacks on this event queue. Events at the
// same instant fire in scheduling order (a stable tiebreak), which keeps runs
// deterministic.
//
// Storage model: events live in a slab-allocated pool (256-record slabs,
// never relocated, recycled through a free list), so steady-state scheduling
// performs zero heap allocations. Callbacks with captures up to
// SmallFn::kInlineBytes are stored inline in the event record. Handles are
// generation-counted slot references — no shared_ptr/weak_ptr churn per
// event.
//
// Ordering is delegated to a Scheduler backend (sim/scheduler.hpp), selected
// per Simulator via SimConfig: the indexed binary heap (default — eager
// cancellation, O(log n) in-place reschedule) or the hierarchical TimerWheel
// (O(1) insert/cancel/re-arm; built for the timer-storm workloads where
// RTO/delayed-ACK/persist/poll deadlines cluster). Both backends fire events
// in the identical (when, seq) total order, so runs are bit-identical
// across backends.
//
// Lifetime: an EventHandle (and any Timer) must not be used after its
// Simulator is destroyed. Every component in this codebase owns a
// `Simulator&` with a strictly longer lifetime, so this is not a practical
// restriction; it is what buys handles their pointer-free cheapness.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/slab_pool.hpp"
#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/scheduler.hpp"
#include "tcplp/sim/small_fn.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::sim {

class Simulator;

/// Per-simulation configuration: the RNG seed and the ready-queue backend.
struct SimConfig {
    std::uint64_t seed = 1;
    SchedulerKind scheduler = SchedulerKind::kBinaryHeap;
};

/// Cancellable handle to a scheduled event. Copies share the same event:
/// cancelling through any copy cancels it, and once the event fires (or is
/// cancelled) every copy reports !pending(). Handles stay cheap (16 bytes,
/// no refcount) because slot reuse is disambiguated by a generation counter.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet. Safe to call repeatedly.
    inline void cancel();

    /// True if the event is still scheduled and will fire.
    inline bool pending() const;

private:
    friend class Simulator;
    EventHandle(Simulator* simulator, std::uint32_t slot, std::uint32_t generation)
        : simulator_(simulator), slot_(slot), generation_(generation) {}

    Simulator* simulator_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
};

/// Counters describing scheduler behavior, exported for benches/tests.
struct SchedulerStats {
    std::uint64_t scheduled = 0;    // schedule/scheduleAt calls
    std::uint64_t rescheduled = 0;  // in-place deadline updates (Timer re-arm)
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::size_t poolCapacity = 0;  // event records currently allocated
};

class Simulator {
public:
    explicit Simulator(std::uint64_t seed = 1) : Simulator(SimConfig{seed, {}}) {}
    explicit Simulator(const SimConfig& config)
        : rng_(config.seed), sched_(makeScheduler(config.scheduler, pool_)) {
        // Frame-storage recycler for this simulation: every PacketBuffer
        // allocated while this simulator exists recycles through it (see
        // slab_pool.hpp for why buffers may safely outlive the pool).
        framePool_.install();
    }
    ~Simulator() { framePool_.uninstall(); }

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    Time now() const { return now_; }
    Rng& rng() { return rng_; }
    SchedulerKind schedulerKind() const { return sched_->kind(); }

    /// Schedules `fn` to run `delay` microseconds from now.
    template <typename F>
    EventHandle schedule(Time delay, F&& fn) {
        return scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /// Schedules `fn` at absolute time `when` (>= now).
    template <typename F>
    EventHandle scheduleAt(Time when, F&& fn) {
        TCPLP_ASSERT(when >= now_);
        const std::uint32_t slot = pool_.alloc();
        detail::EventRecord& rec = pool_.record(slot);
        rec.fn = SmallFn(std::forward<F>(fn));
        rec.when = when;
        rec.seq = nextSeq_++;
        sched_->push(slot);
        ++stats_.scheduled;
        return EventHandle(this, slot, rec.generation);
    }

    /// Moves a still-pending event to a new deadline without releasing its
    /// record or callback — an in-place re-sort (O(log n) on the heap, O(1)
    /// on the wheel). Returns false (and does nothing) if the handle's event
    /// already fired or was cancelled.
    bool reschedule(const EventHandle& handle, Time when) {
        TCPLP_ASSERT(when >= now_);
        if (handle.simulator_ != this || !slotPending(handle.slot_, handle.generation_)) {
            return false;
        }
        detail::EventRecord& rec = pool_.record(handle.slot_);
        rec.when = when;
        rec.seq = nextSeq_++;  // re-armed events fire after existing same-time events
        sched_->update(handle.slot_);
        ++stats_.rescheduled;
        return true;
    }

    /// Runs events until the queue drains or simulated time reaches `until`.
    void runUntil(Time until) {
        for (;;) {
            const std::uint32_t slot = sched_->peekMin();
            if (slot == detail::kNoSlot || pool_.record(slot).when > until) break;
            fireMin(slot);
        }
        if (now_ < until) now_ = until;
    }

    /// Runs until the event queue is exhausted (or `maxEvents` fired —
    /// a guard against accidental infinite timer loops in tests).
    void run(std::uint64_t maxEvents = UINT64_MAX) {
        std::uint64_t fired = 0;
        while (fired < maxEvents) {
            const std::uint32_t slot = sched_->peekMin();
            if (slot == detail::kNoSlot) break;
            fireMin(slot);
            ++fired;
        }
    }

    std::size_t pendingEvents() const { return sched_->size(); }
    const SchedulerStats& stats() const {
        stats_.poolCapacity = pool_.capacity();
        return stats_;
    }

    /// This simulation's frame-storage recycler (datapath counters live in
    /// its stats; benches and scenario rows read them from here).
    SlabPool& framePool() { return framePool_; }
    const SlabPool& framePool() const { return framePool_; }

    /// Cancels every pending event, destroying the captured callbacks NOW.
    /// Orchestration layers call this before tearing down the components
    /// those callbacks reference — e.g. Testbed's destructor must release
    /// in-flight packets (which may hold arena-backed reassembly buffers)
    /// while the owning nodes are still alive.
    void cancelAllPending() {
        for (;;) {
            const std::uint32_t slot = sched_->peekMin();
            if (slot == detail::kNoSlot) break;
            sched_->remove(slot);
            pool_.release(slot);
            ++stats_.cancelled;
        }
    }

private:
    friend class EventHandle;

    bool slotPending(std::uint32_t slot, std::uint32_t generation) const {
        if (!pool_.contains(slot)) return false;
        const detail::EventRecord& rec = pool_.record(slot);
        return rec.generation == generation && rec.queuePos != detail::kNotQueued;
    }

    void cancelSlot(std::uint32_t slot, std::uint32_t generation) {
        if (!slotPending(slot, generation)) return;
        sched_->remove(slot);
        pool_.release(slot);
        ++stats_.cancelled;
    }

    void fireMin(std::uint32_t slot) {
        detail::EventRecord& rec = pool_.record(slot);
        TCPLP_ASSERT(rec.when >= now_);
        now_ = rec.when;
        // Move the callback out and retire the record *before* invoking, so
        // a callback that re-arms its own timer allocates a fresh event
        // instead of mutating a slot that is about to be recycled.
        SmallFn fn = std::move(rec.fn);
        sched_->remove(slot);
        pool_.release(slot);
        sched_->onTimeAdvance(now_);
        ++stats_.fired;
        fn();
    }

    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Rng rng_;
    mutable SchedulerStats stats_;
    detail::EventPool pool_;
    std::unique_ptr<Scheduler> sched_;
    SlabPool framePool_;
};

inline void EventHandle::cancel() {
    if (simulator_ != nullptr) simulator_->cancelSlot(slot_, generation_);
    simulator_ = nullptr;
}

inline bool EventHandle::pending() const {
    return simulator_ != nullptr && simulator_->slotPending(slot_, generation_);
}

/// Restartable one-shot timer bound to a simulator — the idiom used by all
/// protocol timers (TCP retransmit, delayed ACK, CoAP retransmit, MAC sleep).
/// Re-arming a pending timer reuses its pooled event record via
/// Simulator::reschedule — no allocation, no tombstone in the ready queue.
class Timer {
public:
    template <typename F>
    Timer(Simulator& simulator, F&& fn) : simulator_(simulator), fn_(std::forward<F>(fn)) {}

    ~Timer() { stop(); }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// (Re)arms the timer `delay` from now; any earlier arming is cancelled.
    void start(Time delay) {
        const Time when = simulator_.now() + delay;
        if (simulator_.reschedule(handle_, when)) return;
        handle_ = simulator_.scheduleAt(when, [this] { fn_(); });
    }

    void stop() { handle_.cancel(); }
    bool running() const { return handle_.pending(); }

private:
    Simulator& simulator_;
    SmallFn fn_;
    EventHandle handle_;
};

}  // namespace tcplp::sim
