// Discrete-event simulation core.
//
// The entire testbed — radios, MAC timers, TCP retransmission timers,
// application sensors — runs as callbacks on this event queue. Events at the
// same instant fire in scheduling order (a stable tiebreak), which keeps runs
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "tcplp/common/assert.hpp"
#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::sim {

class Simulator;

/// Cancellable handle to a scheduled event. Copies share the same event.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel() {
        if (auto s = state_.lock()) s->cancelled = true;
        state_.reset();
    }

    /// True if the event is still scheduled and will fire.
    bool pending() const {
        auto s = state_.lock();
        return s && !s->cancelled && !s->fired;
    }

private:
    friend class Simulator;
    struct State {
        bool cancelled = false;
        bool fired = false;
    };
    explicit EventHandle(std::weak_ptr<State> state) : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
};

class Simulator {
public:
    explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    Time now() const { return now_; }
    Rng& rng() { return rng_; }

    /// Schedules `fn` to run `delay` microseconds from now.
    EventHandle schedule(Time delay, std::function<void()> fn) {
        return scheduleAt(now_ + delay, std::move(fn));
    }

    /// Schedules `fn` at absolute time `when` (>= now).
    EventHandle scheduleAt(Time when, std::function<void()> fn) {
        TCPLP_ASSERT(when >= now_);
        auto state = std::make_shared<EventHandle::State>();
        queue_.push(Event{when, nextSeq_++, state, std::move(fn)});
        return EventHandle(state);
    }

    /// Runs events until the queue drains or simulated time reaches `until`.
    void runUntil(Time until) {
        while (!queue_.empty()) {
            const Event& top = queue_.top();
            if (top.when > until) break;
            Event ev = std::move(const_cast<Event&>(top));
            queue_.pop();
            TCPLP_ASSERT(ev.when >= now_);
            now_ = ev.when;
            if (!ev.state->cancelled) {
                ev.state->fired = true;
                ev.fn();
            }
        }
        if (now_ < until && queue_.empty()) now_ = until;
        if (now_ < until && !queue_.empty()) now_ = until;
    }

    /// Runs until the event queue is exhausted (or `maxEvents` fired —
    /// a guard against accidental infinite timer loops in tests).
    void run(std::uint64_t maxEvents = UINT64_MAX) {
        std::uint64_t fired = 0;
        while (!queue_.empty() && fired < maxEvents) {
            Event ev = std::move(const_cast<Event&>(queue_.top()));
            queue_.pop();
            now_ = ev.when;
            if (!ev.state->cancelled) {
                ev.state->fired = true;
                ev.fn();
                ++fired;
            }
        }
    }

    std::size_t pendingEvents() const { return queue_.size(); }

private:
    struct Event {
        Time when;
        std::uint64_t seq;  // FIFO tiebreak for simultaneous events.
        std::shared_ptr<EventHandle::State> state;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Rng rng_;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Restartable one-shot timer bound to a simulator — the idiom used by all
/// protocol timers (TCP retransmit, delayed ACK, CoAP retransmit, MAC sleep).
class Timer {
public:
    Timer(Simulator& simulator, std::function<void()> fn)
        : simulator_(simulator), fn_(std::move(fn)) {}

    ~Timer() { stop(); }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// (Re)arms the timer `delay` from now; any earlier arming is cancelled.
    void start(Time delay) {
        stop();
        handle_ = simulator_.schedule(delay, [this] { fn_(); });
    }

    void stop() { handle_.cancel(); }
    bool running() const { return handle_.pending(); }

private:
    Simulator& simulator_;
    std::function<void()> fn_;
    EventHandle handle_;
};

}  // namespace tcplp::sim
