// Discrete-event simulation core.
//
// The entire testbed — radios, MAC timers, TCP retransmission timers,
// application sensors — runs as callbacks on this event queue. Events at the
// same instant fire in scheduling order (a stable tiebreak), which keeps runs
// deterministic.
//
// Storage model: events live in a slab-allocated pool (256-record slabs,
// never relocated, recycled through a free list), so steady-state scheduling
// performs zero heap allocations. Callbacks with captures up to
// SmallFn::kInlineBytes are stored inline in the event record. Handles are
// generation-counted slot references — no shared_ptr/weak_ptr churn per
// event. The ready queue is an indexed binary heap: cancellation removes the
// entry eagerly (no lazy tombstones) and a pending event can be rescheduled
// in place in O(log n), which is what Timer::start does on re-arm.
//
// Lifetime: an EventHandle (and any Timer) must not be used after its
// Simulator is destroyed. Every component in this codebase owns a
// `Simulator&` with a strictly longer lifetime, so this is not a practical
// restriction; it is what buys handles their pointer-free cheapness.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "tcplp/common/assert.hpp"
#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/small_fn.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::sim {

class Simulator;

/// Cancellable handle to a scheduled event. Copies share the same event:
/// cancelling through any copy cancels it, and once the event fires (or is
/// cancelled) every copy reports !pending(). Handles stay cheap (16 bytes,
/// no refcount) because slot reuse is disambiguated by a generation counter.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancels the event if it has not fired yet. Safe to call repeatedly.
    inline void cancel();

    /// True if the event is still scheduled and will fire.
    inline bool pending() const;

private:
    friend class Simulator;
    EventHandle(Simulator* simulator, std::uint32_t slot, std::uint32_t generation)
        : simulator_(simulator), slot_(slot), generation_(generation) {}

    Simulator* simulator_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
};

/// Counters describing scheduler behavior, exported for benches/tests.
struct SchedulerStats {
    std::uint64_t scheduled = 0;    // schedule/scheduleAt calls
    std::uint64_t rescheduled = 0;  // in-place deadline updates (Timer re-arm)
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::size_t poolCapacity = 0;  // event records currently allocated
};

class Simulator {
public:
    explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    Time now() const { return now_; }
    Rng& rng() { return rng_; }

    /// Schedules `fn` to run `delay` microseconds from now.
    template <typename F>
    EventHandle schedule(Time delay, F&& fn) {
        return scheduleAt(now_ + delay, std::forward<F>(fn));
    }

    /// Schedules `fn` at absolute time `when` (>= now).
    template <typename F>
    EventHandle scheduleAt(Time when, F&& fn) {
        TCPLP_ASSERT(when >= now_);
        const std::uint32_t slot = allocRecord();
        Record& rec = record(slot);
        rec.fn = SmallFn(std::forward<F>(fn));
        rec.when = when;
        rec.seq = nextSeq_++;
        heapPush(slot);
        ++stats_.scheduled;
        return EventHandle(this, slot, rec.generation);
    }

    /// Moves a still-pending event to a new deadline without releasing its
    /// record or callback — an O(log n) heap update. Returns false (and does
    /// nothing) if the handle's event already fired or was cancelled.
    bool reschedule(const EventHandle& handle, Time when) {
        TCPLP_ASSERT(when >= now_);
        if (handle.simulator_ != this || !slotPending(handle.slot_, handle.generation_)) {
            return false;
        }
        Record& rec = record(handle.slot_);
        rec.when = when;
        rec.seq = nextSeq_++;  // re-armed events fire after existing same-time events
        heapFix(rec.heapIndex);
        ++stats_.rescheduled;
        return true;
    }

    /// Runs events until the queue drains or simulated time reaches `until`.
    void runUntil(Time until) {
        while (!heap_.empty()) {
            const std::uint32_t slot = heap_.front();
            if (record(slot).when > until) break;
            fireTop();
        }
        if (now_ < until) now_ = until;
    }

    /// Runs until the event queue is exhausted (or `maxEvents` fired —
    /// a guard against accidental infinite timer loops in tests).
    void run(std::uint64_t maxEvents = UINT64_MAX) {
        std::uint64_t fired = 0;
        while (!heap_.empty() && fired < maxEvents) {
            fireTop();
            ++fired;
        }
    }

    std::size_t pendingEvents() const { return heap_.size(); }
    const SchedulerStats& stats() const { return stats_; }

    /// Cancels every pending event, destroying the captured callbacks NOW.
    /// Orchestration layers call this before tearing down the components
    /// those callbacks reference — e.g. Testbed's destructor must release
    /// in-flight packets (which may hold arena-backed reassembly buffers)
    /// while the owning nodes are still alive.
    void cancelAllPending() {
        while (!heap_.empty()) {
            const std::uint32_t slot = heap_.front();
            heapRemove(0);
            releaseRecord(slot);
            ++stats_.cancelled;
        }
    }

private:
    friend class EventHandle;

    static constexpr std::uint32_t kSlabBits = 8;
    static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
    static constexpr std::uint32_t kNotQueued = std::numeric_limits<std::uint32_t>::max();

    struct Record {
        SmallFn fn;
        Time when = 0;
        std::uint64_t seq = 0;
        std::uint32_t generation = 0;
        std::uint32_t heapIndex = kNotQueued;
    };

    Record& record(std::uint32_t slot) {
        return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
    }
    const Record& record(std::uint32_t slot) const {
        return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
    }

    bool slotPending(std::uint32_t slot, std::uint32_t generation) const {
        if (slot >> kSlabBits >= slabs_.size()) return false;
        const Record& rec = record(slot);
        return rec.generation == generation && rec.heapIndex != kNotQueued;
    }

    void cancelSlot(std::uint32_t slot, std::uint32_t generation) {
        if (!slotPending(slot, generation)) return;
        heapRemove(record(slot).heapIndex);
        releaseRecord(slot);
        ++stats_.cancelled;
    }

    std::uint32_t allocRecord() {
        if (freeList_.empty()) {
            const auto base = std::uint32_t(slabs_.size()) * kSlabSize;
            slabs_.push_back(std::make_unique<Record[]>(kSlabSize));
            stats_.poolCapacity += kSlabSize;
            freeList_.reserve(kSlabSize);
            for (std::uint32_t i = kSlabSize; i > 0; --i) freeList_.push_back(base + i - 1);
        }
        const std::uint32_t slot = freeList_.back();
        freeList_.pop_back();
        return slot;
    }

    void releaseRecord(std::uint32_t slot) {
        Record& rec = record(slot);
        rec.fn.reset();
        rec.heapIndex = kNotQueued;
        ++rec.generation;  // invalidate outstanding handles
        freeList_.push_back(slot);
    }

    void fireTop() {
        const std::uint32_t slot = heap_.front();
        Record& rec = record(slot);
        TCPLP_ASSERT(rec.when >= now_);
        now_ = rec.when;
        // Move the callback out and retire the record *before* invoking, so
        // a callback that re-arms its own timer allocates a fresh event
        // instead of mutating a slot that is about to be recycled.
        SmallFn fn = std::move(rec.fn);
        heapRemove(0);
        releaseRecord(slot);
        ++stats_.fired;
        fn();
    }

    // --- Indexed binary heap over event records ------------------------
    // heap_ holds slot ids ordered by (when, seq); each record tracks its
    // position so cancel/reschedule are O(log n) with no tombstones.

    bool earlier(std::uint32_t a, std::uint32_t b) const {
        const Record& ra = record(a);
        const Record& rb = record(b);
        if (ra.when != rb.when) return ra.when < rb.when;
        return ra.seq < rb.seq;
    }

    void heapPlace(std::size_t index, std::uint32_t slot) {
        heap_[index] = slot;
        record(slot).heapIndex = std::uint32_t(index);
    }

    void heapPush(std::uint32_t slot) {
        heap_.push_back(slot);
        record(slot).heapIndex = std::uint32_t(heap_.size() - 1);
        siftUp(heap_.size() - 1);
    }

    void heapRemove(std::size_t index) {
        record(heap_[index]).heapIndex = kNotQueued;
        const std::uint32_t last = heap_.back();
        heap_.pop_back();
        if (index < heap_.size()) {
            heapPlace(index, last);
            heapFix(std::uint32_t(index));
        }
    }

    void heapFix(std::uint32_t index) {
        siftUp(index);
        siftDown(index);
    }

    void siftUp(std::size_t index) {
        const std::uint32_t slot = heap_[index];
        while (index > 0) {
            const std::size_t parent = (index - 1) / 2;
            if (!earlier(slot, heap_[parent])) break;
            heapPlace(index, heap_[parent]);
            index = parent;
        }
        heapPlace(index, slot);
    }

    void siftDown(std::size_t index) {
        const std::uint32_t slot = heap_[index];
        const std::size_t n = heap_.size();
        while (true) {
            std::size_t child = 2 * index + 1;
            if (child >= n) break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
            if (!earlier(heap_[child], slot)) break;
            heapPlace(index, heap_[child]);
            index = child;
        }
        heapPlace(index, slot);
    }

    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Rng rng_;
    SchedulerStats stats_;
    std::vector<std::unique_ptr<Record[]>> slabs_;
    std::vector<std::uint32_t> freeList_;
    std::vector<std::uint32_t> heap_;
};

inline void EventHandle::cancel() {
    if (simulator_ != nullptr) simulator_->cancelSlot(slot_, generation_);
    simulator_ = nullptr;
}

inline bool EventHandle::pending() const {
    return simulator_ != nullptr && simulator_->slotPending(slot_, generation_);
}

/// Restartable one-shot timer bound to a simulator — the idiom used by all
/// protocol timers (TCP retransmit, delayed ACK, CoAP retransmit, MAC sleep).
/// Re-arming a pending timer reuses its pooled event record via
/// Simulator::reschedule — no allocation, no tombstone in the ready queue.
class Timer {
public:
    template <typename F>
    Timer(Simulator& simulator, F&& fn) : simulator_(simulator), fn_(std::forward<F>(fn)) {}

    ~Timer() { stop(); }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// (Re)arms the timer `delay` from now; any earlier arming is cancelled.
    void start(Time delay) {
        const Time when = simulator_.now() + delay;
        if (simulator_.reschedule(handle_, when)) return;
        handle_ = simulator_.scheduleAt(when, [this] { fn_(); });
    }

    void stop() { handle_.cancel(); }
    bool running() const { return handle_.pending(); }

private:
    Simulator& simulator_;
    SmallFn fn_;
    EventHandle handle_;
};

}  // namespace tcplp::sim
