#include "tcplp/sim/fault.hpp"

#include <algorithm>
#include <tuple>

namespace tcplp::sim {

const char* faultKindName(FaultKind k) {
    switch (k) {
        case FaultKind::kNodeReboot: return "node_reboot";
        case FaultKind::kLinkBlackout: return "link_blackout";
        case FaultKind::kCorruptionBurst: return "corruption_burst";
        case FaultKind::kNodeFailure: return "node_failure";
    }
    return "?";
}

std::vector<FaultEvent> expandFaultPlan(const FaultPlan& plan, std::uint64_t seed) {
    std::vector<FaultEvent> events = plan.fixed;

    // One dedicated stream for the whole expansion; draws happen in a fixed
    // order (per event: time, duration, target), so the schedule is a pure
    // function of (plan, seed).
    Rng rng(Rng::deriveStream(seed, kFaultStreamId));
    for (const RandomFaultBurst& burst : plan.random) {
        for (std::uint32_t i = 0; i < burst.count; ++i) {
            FaultEvent ev;
            ev.kind = burst.kind;
            const Time window = burst.windowEnd > burst.windowStart
                                    ? burst.windowEnd - burst.windowStart
                                    : 0;
            ev.at = burst.windowStart + Time(rng.uniformInt(std::uint64_t(window)));
            ev.duration = Time(rng.uniformRange(burst.durationMin, burst.durationMax));
            if (!burst.candidates.empty()) {
                ev.target = burst.candidates[std::size_t(
                    rng.uniformInt(burst.candidates.size()))];
            }
            ev.peer = (burst.kind == FaultKind::kLinkBlackout) ? ev.target : 0;
            events.push_back(ev);
        }
    }

    // A permanent failure has no outage window that ever ends: normalize the
    // duration to zero (the draw above still happened, keeping the per-event
    // draw count uniform across kinds) so timeline code never treats the
    // infinite outage as a finite one.
    for (FaultEvent& ev : events)
        if (ev.kind == FaultKind::kNodeFailure) ev.duration = 0;

    // Stable deterministic order: injection hooks fire in list order at
    // equal times, so the sort key must pin every field.
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return std::tuple(a.at, std::uint8_t(a.kind), a.target,
                                           a.duration, a.peer) <
                                std::tuple(b.at, std::uint8_t(b.kind), b.target,
                                           b.duration, b.peer);
                     });
    return events;
}

}  // namespace tcplp::sim
