// Deterministic pseudo-random source (xoshiro256**), seeded per simulation.
// Experiments are reproducible bit-for-bit given the same seed; multi-seed
// averages are produced by rerunning with seed+1, seed+2, ...
#pragma once

#include <cstdint>

namespace tcplp::sim {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // SplitMix64 expansion of the seed into xoshiro state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() { return double(next() >> 11) * (1.0 / 9007199254740992.0); }

    /// Uniform integer in [0, bound) — bound 0 returns 0.
    std::uint64_t uniformInt(std::uint64_t bound) {
        if (bound == 0) return 0;
        return next() % bound;  // Modulo bias is negligible for our bounds.
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi) {
        if (hi <= lo) return lo;
        return lo + std::int64_t(uniformInt(std::uint64_t(hi - lo + 1)));
    }

    /// Bernoulli trial with success probability p.
    bool chance(double p) { return uniform() < p; }

    /// Derives the seed for run point `streamId` of a sweep rooted at
    /// `baseSeed` (a SplitMix64 finalizer over the pair). Sweep runners key
    /// the stream on the point's position in the expanded grid — never on
    /// which worker process executes it — so sharding a sweep across N
    /// processes replays the exact RNG streams of the serial run.
    static std::uint64_t deriveStream(std::uint64_t baseSeed, std::uint64_t streamId) {
        std::uint64_t z = baseSeed + 0x9e3779b97f4a7c15ULL * (streamId + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Order-sensitive digest of the generator state. Two simulations that
    /// start from the same seed have equal digests iff they consumed the
    /// same number of draws — the channel-equivalence tests use this to
    /// prove the spatial index replays the linear scan's RNG sequence.
    std::uint64_t stateDigest() const {
        return state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 47);
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    std::uint64_t state_[4];
};

}  // namespace tcplp::sim
