// Ready-queue backends for the discrete-event simulator.
//
// The Simulator owns a pool of event records (slab-allocated, recycled,
// generation-counted — see EventPool) and delegates *ordering* to a
// Scheduler: the structure that answers "which pending event fires next?".
// Two backends implement the same total order (when, then scheduling seq):
//
//  * HeapScheduler — the indexed binary heap from PR 1. Cancellation removes
//    the entry eagerly (no lazy tombstones) and a pending event can be
//    re-sorted in place in O(log n), which is what Timer::start does on
//    re-arm.
//
//  * TimerWheel — a hierarchical timing wheel (Varghese & Lauck), 4 levels x
//    64 slots with a ~1 ms tick (1024 us, so tick extraction is a shift) and
//    an overflow list for deadlines beyond the top level's horizon
//    (64^4 ticks ~= 4.8 hours of simulated time). Insert, cancel and re-arm are O(1) list splices;
//    finding the next event scans a 64-bit occupancy mask per level. The
//    protocol workload — RTO, delayed-ACK, persist, CSMA backoff and
//    sleepy-MAC poll timers clustering at a handful of deadlines — is
//    exactly the regime where the wheel beats the heap's log-n re-sorting.
//
// Both backends are exact: events fire in identical (when, seq) order, so a
// Simulator produces bit-identical runs (same RNG draw sequence, same
// delivery logs) regardless of the configured backend. The equivalence is
// pinned by tests/test_sim.cpp (storm suites run against both) and
// tests/test_timer_wheel.cpp (office / grid200 scenario digests).
//
// Bucket placement in the wheel is *alignment-based*: an event with deadline
// tick T lives at the lowest level L whose 64^(L+1)-tick aligned window also
// contains the wheel's base tick (base <= every pending tick, maintained at
// fire time). Within the shared parent window, T's level-L index is >= the
// base's, so each level scans forward only — no wrap-around — and the first
// occupied bucket of the lowest occupied level holds the globally earliest
// event. Advancing the base relocates exactly one bucket per level (the one
// the new base maps into), which is how far-future events cascade toward
// level 0 as simulated time approaches them.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "tcplp/common/assert.hpp"
#include "tcplp/sim/small_fn.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::sim {

/// Ready-queue backend selector, configured per Simulator via SimConfig.
enum class SchedulerKind : std::uint8_t { kBinaryHeap, kTimerWheel };

inline const char* schedulerKindName(SchedulerKind kind) {
    return kind == SchedulerKind::kTimerWheel ? "wheel" : "heap";
}

namespace detail {

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kNotQueued = std::numeric_limits<std::uint32_t>::max();

/// One pooled event. `queuePos` is backend bookkeeping — the heap index or
/// the wheel bucket id — and doubles as the pending flag (kNotQueued when
/// the record is not scheduled). `next`/`prev` are the intrusive links of a
/// TimerWheel bucket list; the heap leaves them untouched.
struct EventRecord {
    SmallFn fn;
    Time when = 0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 0;
    std::uint32_t queuePos = kNotQueued;
    std::uint32_t next = kNoSlot;
    std::uint32_t prev = kNoSlot;
};

/// Slab-allocated pool of event records: 256-record slabs, never relocated,
/// recycled through a free list — steady-state scheduling performs zero heap
/// allocations. Slot reuse is disambiguated by the record's generation.
class EventPool {
public:
    static constexpr std::uint32_t kSlabBits = 8;
    static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

    EventRecord& record(std::uint32_t slot) {
        return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
    }
    const EventRecord& record(std::uint32_t slot) const {
        return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
    }

    bool contains(std::uint32_t slot) const {
        return (slot >> kSlabBits) < slabs_.size();
    }

    std::uint32_t alloc() {
        if (freeList_.empty()) {
            const auto base = std::uint32_t(slabs_.size()) * kSlabSize;
            slabs_.push_back(std::make_unique<EventRecord[]>(kSlabSize));
            freeList_.reserve(kSlabSize);
            for (std::uint32_t i = kSlabSize; i > 0; --i) freeList_.push_back(base + i - 1);
        }
        const std::uint32_t slot = freeList_.back();
        freeList_.pop_back();
        return slot;
    }

    /// Destroys the callback, invalidates outstanding handles, recycles.
    void release(std::uint32_t slot) {
        EventRecord& rec = record(slot);
        rec.fn.reset();
        rec.queuePos = kNotQueued;
        ++rec.generation;
        freeList_.push_back(slot);
    }

    std::size_t capacity() const { return slabs_.size() * kSlabSize; }

private:
    std::vector<std::unique_ptr<EventRecord[]>> slabs_;
    std::vector<std::uint32_t> freeList_;
};

}  // namespace detail

/// Ordering backend over pooled event records. All operations refer to pool
/// slots whose `when`/`seq` the Simulator has already filled in; the backend
/// maintains `queuePos` and must present events in (when, seq) order.
class Scheduler {
public:
    explicit Scheduler(detail::EventPool& pool) : pool_(pool) {}
    virtual ~Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Enqueues `slot` (not currently queued).
    virtual void push(std::uint32_t slot) = 0;
    /// Re-sorts a queued `slot` after its when/seq changed (Timer re-arm).
    virtual void update(std::uint32_t slot) = 0;
    /// Removes a queued `slot` (cancellation or firing).
    virtual void remove(std::uint32_t slot) = 0;
    /// Slot of the (when, seq)-minimum queued event; kNoSlot when empty.
    /// May cache — any mutation invalidates internally.
    virtual std::uint32_t peekMin() = 0;
    /// Hint that simulated time reached `now` (every queued deadline is
    /// >= now). The wheel uses it to advance its base and cascade buckets;
    /// the heap ignores it.
    virtual void onTimeAdvance(Time now) { (void)now; }

    std::size_t size() const { return size_; }
    SchedulerKind kind() const { return kind_; }

protected:
    bool earlier(std::uint32_t a, std::uint32_t b) const {
        const detail::EventRecord& ra = pool_.record(a);
        const detail::EventRecord& rb = pool_.record(b);
        if (ra.when != rb.when) return ra.when < rb.when;
        return ra.seq < rb.seq;
    }

    detail::EventPool& pool_;
    std::size_t size_ = 0;
    SchedulerKind kind_ = SchedulerKind::kBinaryHeap;
};

/// Indexed binary heap over event records, ordered by (when, seq); each
/// record tracks its heap position in `queuePos`, so cancel and reschedule
/// are O(log n) with no tombstones.
class HeapScheduler final : public Scheduler {
public:
    explicit HeapScheduler(detail::EventPool& pool) : Scheduler(pool) {
        kind_ = SchedulerKind::kBinaryHeap;
    }

    void push(std::uint32_t slot) override {
        heap_.push_back(slot);
        pool_.record(slot).queuePos = std::uint32_t(heap_.size() - 1);
        siftUp(heap_.size() - 1);
        ++size_;
    }

    void update(std::uint32_t slot) override { fix(pool_.record(slot).queuePos); }

    void remove(std::uint32_t slot) override {
        const std::size_t index = pool_.record(slot).queuePos;
        pool_.record(slot).queuePos = detail::kNotQueued;
        const std::uint32_t last = heap_.back();
        heap_.pop_back();
        if (index < heap_.size()) {
            place(index, last);
            fix(index);
        }
        --size_;
    }

    std::uint32_t peekMin() override {
        return heap_.empty() ? detail::kNoSlot : heap_.front();
    }

private:
    void place(std::size_t index, std::uint32_t slot) {
        heap_[index] = slot;
        pool_.record(slot).queuePos = std::uint32_t(index);
    }

    void fix(std::size_t index) {
        siftUp(index);
        siftDown(index);
    }

    void siftUp(std::size_t index) {
        const std::uint32_t slot = heap_[index];
        while (index > 0) {
            const std::size_t parent = (index - 1) / 2;
            if (!earlier(slot, heap_[parent])) break;
            place(index, heap_[parent]);
            index = parent;
        }
        place(index, slot);
    }

    void siftDown(std::size_t index) {
        const std::uint32_t slot = heap_[index];
        const std::size_t n = heap_.size();
        while (true) {
            std::size_t child = 2 * index + 1;
            if (child >= n) break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
            if (!earlier(heap_[child], slot)) break;
            place(index, heap_[child]);
            index = child;
        }
        place(index, slot);
    }

    std::vector<std::uint32_t> heap_;
};

/// Hierarchical timing wheel: kLevels levels of kSlots buckets, tick =
/// 2^kTickShift microseconds, plus an overflow list beyond the top level's
/// horizon. See the file comment for the placement/cascade invariants.
class TimerWheel final : public Scheduler {
public:
    static constexpr int kTickShift = 10;  // 1024 us ~= the 1 ms protocol tick
    static constexpr int kLevelBits = 6;
    static constexpr int kLevels = 4;
    static constexpr std::uint32_t kSlots = 1u << kLevelBits;

    explicit TimerWheel(detail::EventPool& pool) : Scheduler(pool) {
        kind_ = SchedulerKind::kTimerWheel;
        for (auto& level : heads_)
            for (auto& head : level) head = detail::kNoSlot;
    }

    void push(std::uint32_t slot) override {
        place(slot);
        ++size_;
        // A new earlier-than-cached event becomes the cached min directly;
        // an unknown cache stays unknown.
        if (cachedMin_ != detail::kNoSlot && earlier(slot, cachedMin_)) cachedMin_ = slot;
    }

    void update(std::uint32_t slot) override {
        unlink(slot);
        place(slot);
        if (slot == cachedMin_) {
            cachedMin_ = detail::kNoSlot;  // its key changed; rescan
        } else if (cachedMin_ != detail::kNoSlot && earlier(slot, cachedMin_)) {
            cachedMin_ = slot;
        }
    }

    void remove(std::uint32_t slot) override {
        unlink(slot);
        pool_.record(slot).queuePos = detail::kNotQueued;
        --size_;
        if (slot == cachedMin_) cachedMin_ = detail::kNoSlot;
    }

    std::uint32_t peekMin() override {
        if (size_ == 0) return detail::kNoSlot;
        if (cachedMin_ != detail::kNoSlot) return cachedMin_;
        for (int level = 0; level < kLevels; ++level) {
            if (masks_[level] == 0) continue;
            // Buckets below the base cursor are empty by invariant; the
            // lowest set bit is the earliest window at this level.
            const std::uint32_t bucket =
                std::uint32_t(std::countr_zero(masks_[level]));
            cachedMin_ = bucketMin(heads_[level][bucket]);
            return cachedMin_;
        }
        cachedMin_ = bucketMin(overflowHead_);
        return cachedMin_;
    }

    void onTimeAdvance(Time now) override {
        advanceTo(std::uint64_t(now) >> kTickShift);
    }

private:
    static std::uint64_t tickOf(Time when) { return std::uint64_t(when) >> kTickShift; }

    /// Buckets are addressed as level * kSlots + index; the overflow list is
    /// the bucket past the last level.
    static constexpr std::uint32_t kOverflowBucket = kLevels * kSlots;

    std::uint32_t* headOf(std::uint32_t bucket) {
        if (bucket == kOverflowBucket) return &overflowHead_;
        return &heads_[bucket >> kLevelBits][bucket & (kSlots - 1)];
    }

    void place(std::uint32_t slot) {
        detail::EventRecord& rec = pool_.record(slot);
        const std::uint64_t tick = tickOf(rec.when);
        TCPLP_ASSERT(tick >= base_ && "deadline before the wheel's base");
        std::uint32_t bucket = kOverflowBucket;
        for (int level = 0; level < kLevels; ++level) {
            const int parentShift = kLevelBits * (level + 1);
            if ((tick >> parentShift) == (base_ >> parentShift)) {
                bucket = std::uint32_t(level) * kSlots +
                         std::uint32_t((tick >> (kLevelBits * level)) & (kSlots - 1));
                break;
            }
        }
        std::uint32_t* head = headOf(bucket);
        rec.queuePos = bucket;
        rec.prev = detail::kNoSlot;
        rec.next = *head;
        if (*head != detail::kNoSlot) pool_.record(*head).prev = slot;
        *head = slot;
        if (bucket != kOverflowBucket)
            masks_[bucket >> kLevelBits] |= 1ull << (bucket & (kSlots - 1));
    }

    /// Detaches `slot` from its bucket list, leaving queuePos untouched
    /// (remove() clears it; update() re-places immediately).
    void unlink(std::uint32_t slot) {
        detail::EventRecord& rec = pool_.record(slot);
        const std::uint32_t bucket = rec.queuePos;
        std::uint32_t* head = headOf(bucket);
        if (rec.prev != detail::kNoSlot) {
            pool_.record(rec.prev).next = rec.next;
        } else {
            *head = rec.next;
        }
        if (rec.next != detail::kNoSlot) pool_.record(rec.next).prev = rec.prev;
        rec.next = detail::kNoSlot;
        rec.prev = detail::kNoSlot;
        if (bucket != kOverflowBucket && *head == detail::kNoSlot)
            masks_[bucket >> kLevelBits] &= ~(1ull << (bucket & (kSlots - 1)));
    }

    /// Linear (when, seq)-min scan of one bucket list. Bucket lists are
    /// short in practice: a level-0 bucket holds one tick's events, and
    /// higher-level buckets cascade down before they are drained.
    std::uint32_t bucketMin(std::uint32_t head) const {
        std::uint32_t best = head;
        for (std::uint32_t s = pool_.record(head).next; s != detail::kNoSlot;
             s = pool_.record(s).next) {
            if (earlier(s, best)) best = s;
        }
        return best;
    }

    /// Moves the base forward (every queued deadline is >= newTick) and
    /// relocates the one bucket per level that the new base maps into: its
    /// events now share a lower-level window with the base and cascade down.
    void advanceTo(std::uint64_t newTick) {
        if (newTick <= base_) return;
        const std::uint64_t oldBase = base_;
        base_ = newTick;
        for (int level = 1; level < kLevels; ++level) {
            const int shift = kLevelBits * level;
            if ((newTick >> shift) == (oldBase >> shift)) break;  // no window change
            const std::uint32_t bucket =
                std::uint32_t(level) * kSlots +
                std::uint32_t((newTick >> shift) & (kSlots - 1));
            relocateBucket(bucket);
        }
        if ((newTick >> (kLevelBits * kLevels)) != (oldBase >> (kLevelBits * kLevels)))
            relocateOverflow();
    }

    void relocateBucket(std::uint32_t bucket) {
        std::uint32_t* head = headOf(bucket);
        std::uint32_t slot = *head;
        *head = detail::kNoSlot;
        masks_[bucket >> kLevelBits] &= ~(1ull << (bucket & (kSlots - 1)));
        while (slot != detail::kNoSlot) {
            const std::uint32_t next = pool_.record(slot).next;
            place(slot);  // strictly lower level: the window now matches
            slot = next;
        }
    }

    void relocateOverflow() {
        std::uint32_t slot = overflowHead_;
        overflowHead_ = detail::kNoSlot;
        while (slot != detail::kNoSlot) {
            const std::uint32_t next = pool_.record(slot).next;
            place(slot);  // re-homes in-horizon events; the rest re-overflow
            slot = next;
        }
    }

    std::uint64_t base_ = 0;  // tick floor of simulated now; <= every deadline
    std::uint32_t cachedMin_ = detail::kNoSlot;
    std::uint64_t masks_[kLevels] = {};
    std::uint32_t heads_[kLevels][kSlots];
    std::uint32_t overflowHead_ = detail::kNoSlot;
};

inline std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind,
                                                detail::EventPool& pool) {
    if (kind == SchedulerKind::kTimerWheel) return std::make_unique<TimerWheel>(pool);
    return std::make_unique<HeapScheduler>(pool);
}

}  // namespace tcplp::sim
