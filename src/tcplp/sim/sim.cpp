// The sim module is header-only; this translation unit anchors the library.
#include "tcplp/sim/simulator.hpp"
