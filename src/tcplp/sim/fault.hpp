// Deterministic fault plans: a typed schedule of injected failures.
//
// The paper's core robustness claim (§8, §9.4) is that full-scale TCP
// survives the failure modes real LLN deployments see — nodes brown out and
// reboot, links go dark for seconds at a time, the border router restarts.
// A FaultPlan describes such a failure schedule. Plans are *data*: a list of
// fixed events plus optional randomized bursts that are expanded into fixed
// events by `expandFaultPlan` using a dedicated Rng stream derived from the
// run seed. Identical (plan, seed) pairs therefore expand to identical
// schedules — fault injection never perturbs the simulation's own RNG
// stream, and chaos runs stay byte-reproducible and shardable.
//
// This layer is deliberately free of phy/mesh dependencies: targets are bare
// node ids. The scenario layer (scenario/chaos.*) maps expanded events onto
// Radio power, Channel blackouts, and Node::reboot calls.
#pragma once

#include <cstdint>
#include <vector>

#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::sim {

enum class FaultKind : std::uint8_t {
    /// Node loses power for `duration`, then cold-boots: radio off, all
    /// volatile protocol state (TCP connections, reassembly buffers, MAC
    /// queues) is lost.
    kNodeReboot,
    /// The link `target` <-> `peer` delivers nothing during the window
    /// (both directions). target == peer means every link at that node;
    /// target == peer == 0 means every link in the network.
    kLinkBlackout,
    /// Burst interference: all frames in the window are corrupted in flight.
    /// In this PHY model corruption and loss are observationally identical
    /// at the MAC (FCS failure -> frame discarded), so this maps to a
    /// global blackout; kept as a distinct kind for plan readability.
    kCorruptionBurst,
    /// Permanent node death: the reboot teardown with infinite downtime —
    /// the node never returns. `duration` is normalized to 0 in expansion
    /// (there is no outage window that ends; recovery metrics anchor at
    /// `at`, and only a routing repair can restore connectivity).
    kNodeFailure,
};

const char* faultKindName(FaultKind k);

/// One concrete fault occurrence on the simulation timeline.
struct FaultEvent {
    FaultKind kind = FaultKind::kNodeReboot;
    Time at = 0;        // injection time
    Time duration = 0;  // outage length (reboot downtime / blackout window)
    std::uint16_t target = 0;  // node id (reboot) or link endpoint A
    std::uint16_t peer = 0;    // link endpoint B (blackout only)
};

/// A randomized batch of faults, expanded deterministically from the run
/// seed: `count` events of `kind`, each at a uniform time in
/// [windowStart, windowEnd), lasting uniform [durationMin, durationMax],
/// targeting a uniformly chosen entry of `candidates`.
struct RandomFaultBurst {
    FaultKind kind = FaultKind::kNodeReboot;
    std::uint32_t count = 0;
    Time windowStart = 0;
    Time windowEnd = 0;
    Time durationMin = 0;
    Time durationMax = 0;
    std::vector<std::uint16_t> candidates;
};

/// A full fault schedule: fixed events plus randomized bursts.
struct FaultPlan {
    std::vector<FaultEvent> fixed;
    std::vector<RandomFaultBurst> random;

    bool empty() const { return fixed.empty() && random.empty(); }
};

/// Expands a plan into a time-sorted event list. Randomized bursts draw from
/// a dedicated stream (`Rng::deriveStream(seed, kFaultStreamId)`) in a fixed
/// order — per event: time, duration, target — so the expansion depends only
/// on (plan, seed), never on anything else the simulation does. The result
/// is sorted by (at, kind, target, duration, peer) with a stable tie-break,
/// making the schedule itself reproducible byte-for-byte.
std::vector<FaultEvent> expandFaultPlan(const FaultPlan& plan, std::uint64_t seed);

/// Stream id reserved for fault-plan expansion (disjoint from the sweep
/// runner's grid-position streams by magnitude).
constexpr std::uint64_t kFaultStreamId = 0xFA17'0000'0000'0001ULL;

}  // namespace tcplp::sim
