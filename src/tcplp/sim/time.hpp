// Simulated time. All protocol timing in the repository is expressed in
// simulated microseconds; nothing reads the wall clock.
#pragma once

#include <cstdint>

namespace tcplp::sim {

/// Microseconds since simulation start.
using Time = std::int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * kMillisecond;
constexpr Time kMinute = 60 * kSecond;
constexpr Time kHour = 60 * kMinute;

constexpr double toSeconds(Time t) { return double(t) / double(kSecond); }
constexpr double toMillis(Time t) { return double(t) / double(kMillisecond); }
constexpr Time fromSeconds(double s) { return static_cast<Time>(s * double(kSecond)); }
constexpr Time fromMillis(double ms) { return static_cast<Time>(ms * double(kMillisecond)); }

}  // namespace tcplp::sim
