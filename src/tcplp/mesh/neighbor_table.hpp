// Link-liveness tracking for self-healing mesh routing.
//
// The paper's testbed leans on the routing layer (RPL / OpenThread MLE)
// to notice dead links and repair around them; Ayers et al. make the
// protocol-design argument that LLN stacks should surface link-failure
// feedback upward instead of letting every layer time out on its own.
// This table is that feedback path: mac::CsmaMac reports the final verdict
// of every direct unicast payload (acked / exhausted retries), and K
// consecutive failures mark the neighbor unreachable. Any later success —
// usually one of the low-rate probes this table emits toward dead
// neighbors — marks it live again.
//
// Determinism rules: in a fault-free run no neighbor ever goes dead, so the
// table draws no randomness and schedules no events — runs with liveness
// enabled are byte-identical to runs without it. Probe-interval jitter for
// dead-neighbor probing draws from a dedicated stream derived from
// (run seed, kLivenessStreamId + node id), never from the simulation's own
// Rng, so probing perturbs nothing and chaos runs stay shardable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "tcplp/phy/radio.hpp"
#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::mesh {

/// Stream id for per-node probe jitter (disjoint from kFaultStreamId and the
/// sweep runner's grid-position streams by magnitude; the node id is added).
constexpr std::uint64_t kLivenessStreamId = 0x11FE'0000'0000'0100ULL;

struct NeighborConfig {
    /// Master switch: off = the table ignores outcomes and reports every
    /// neighbor live (the pre-self-healing behavior, byte-for-byte).
    bool enabled = false;
    /// K: consecutive exhausted-retry failures before a neighbor is marked
    /// unreachable. Each failure already represents a full CSMA retry
    /// ladder, so small K detects fast without tripping on single
    /// collisions.
    int failureThreshold = 2;
    /// Probe cadence toward dead neighbors (0 disables probing — then only
    /// organic traffic can revive a neighbor). Probes are empty MAC
    /// payloads; the receiver's 6LoWPAN parser discards them, but the MAC
    /// ACK is the liveness signal.
    sim::Time probeInterval = 2 * sim::kSecond;
    /// Uniform extra delay added to each probe, drawn from the dedicated
    /// stream (decorrelates probes from synchronized retry schedules).
    sim::Time probeJitterMax = 500 * sim::kMillisecond;
    /// Seed of the probe-jitter stream; the testbed stamps
    /// Rng::deriveStream(runSeed, kLivenessStreamId + nodeId) here.
    std::uint64_t probeSeed = 0;
};

struct NeighborTableStats {
    std::uint64_t deadMarks = 0;   // live -> unreachable transitions
    std::uint64_t revivals = 0;    // unreachable -> live transitions
    std::uint64_t probesSent = 0;  // liveness probes emitted
};

class NeighborTable {
public:
    using ProbeSender = std::function<void(phy::NodeId neighbor)>;

    NeighborTable(sim::Simulator& simulator, NeighborConfig config)
        : simulator_(simulator), config_(config), probeRng_(config.probeSeed) {}

    const NeighborConfig& config() const { return config_; }
    const NeighborTableStats& stats() const { return stats_; }

    /// Unknown neighbors are live: liveness is learned only from failures.
    bool isLive(phy::NodeId neighbor) const {
        if (!config_.enabled) return true;
        const auto it = entries_.find(neighbor);
        return it == entries_.end() || !it->second.dead;
    }

    /// The MAC's per-payload verdict (via CsmaMac::setTxOutcomeCallback).
    void onTxOutcome(phy::NodeId neighbor, bool acked);

    /// How this table emits probes (the Node routes them into its MAC).
    void setProbeSender(ProbeSender sender) { probeSender_ = std::move(sender); }

    /// Reboot semantics: liveness is volatile state — learned verdicts and
    /// armed probe timers die with the power rail (the epoch bump strands
    /// already-scheduled probe closures).
    void reset() {
        entries_.clear();
        ++epoch_;
    }

private:
    struct Entry {
        int consecutiveFailures = 0;
        bool dead = false;
        bool probeArmed = false;
    };

    void armProbe(phy::NodeId neighbor);

    sim::Simulator& simulator_;
    NeighborConfig config_;
    sim::Rng probeRng_;
    NeighborTableStats stats_;
    ProbeSender probeSender_;
    std::map<phy::NodeId, Entry> entries_;
    std::uint64_t epoch_ = 0;
};

}  // namespace tcplp::mesh
