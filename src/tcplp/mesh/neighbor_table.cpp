#include "tcplp/mesh/neighbor_table.hpp"

namespace tcplp::mesh {

void NeighborTable::onTxOutcome(phy::NodeId neighbor, bool acked) {
    if (!config_.enabled) return;
    Entry& e = entries_[neighbor];
    if (acked) {
        e.consecutiveFailures = 0;
        if (e.dead) {
            e.dead = false;
            ++stats_.revivals;
        }
        return;
    }
    ++e.consecutiveFailures;
    if (!e.dead && e.consecutiveFailures >= config_.failureThreshold) {
        e.dead = true;
        ++stats_.deadMarks;
        armProbe(neighbor);
    }
}

void NeighborTable::armProbe(phy::NodeId neighbor) {
    if (config_.probeInterval <= 0 || !probeSender_) return;
    Entry& e = entries_[neighbor];
    if (e.probeArmed) return;
    e.probeArmed = true;
    sim::Time delay = config_.probeInterval;
    if (config_.probeJitterMax > 0)
        delay += probeRng_.uniformRange(0, config_.probeJitterMax);
    simulator_.schedule(delay, [this, neighbor, epoch = epoch_] {
        if (epoch != epoch_) return;  // the node rebooted meanwhile
        const auto it = entries_.find(neighbor);
        if (it == entries_.end()) return;
        it->second.probeArmed = false;
        if (!it->second.dead) return;  // revived by organic traffic
        ++stats_.probesSent;
        probeSender_(neighbor);
        // Keep probing until something gets through. The probe's own MAC
        // verdict flows back through onTxOutcome like any other payload.
        armProbe(neighbor);
    });
}

}  // namespace tcplp::mesh
