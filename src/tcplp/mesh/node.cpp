#include "tcplp/mesh/node.hpp"

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"

namespace tcplp::mesh {

void WiredLink::transfer(const Node* from, ip6::Packet packet) {
    Node* to = (from == a_) ? b_ : a_;
    TCPLP_ASSERT(to != nullptr);
    if (lossRate_ > 0.0 && simulator_.rng().chance(lossRate_)) {
        ++dropped_;
        return;
    }
    inFlight_.push_back(InFlight{to, std::move(packet)});
    simulator_.schedule(delay_, [this] {
        InFlight entry = std::move(inFlight_.front());
        inFlight_.pop_front();
        entry.to->wiredInput(std::move(entry.packet));
    });
}

Node::Node(sim::Simulator& simulator, phy::Channel* channel, NodeId id, phy::Position pos,
           NodeConfig config)
    : simulator_(simulator), id_(id), config_(std::move(config)) {
    address_ = (config_.role == Role::kCloudHost) ? ip6::Address::cloud(id)
                                                  : ip6::Address::meshLocal(id);
    if (config_.role != Role::kCloudHost) {
        TCPLP_ASSERT(channel != nullptr);
        arena_ = std::make_unique<BufferArena>(config_.reassemblyArenaBytes);
        radio_ = std::make_unique<phy::Radio>(simulator, *channel, id, pos);
        mac_ = std::make_unique<mac::CsmaMac>(*radio_, config_.macConfig);
        neighbors_ = std::make_unique<NeighborTable>(simulator, config_.neighbor);
        if (config_.neighbor.enabled) {
            mac_->setTxOutcomeCallback([this](NodeId dst, bool acked) {
                neighbors_->onTxOutcome(dst, acked);
            });
            neighbors_->setProbeSender([this](NodeId n) { sendProbe(n); });
            routes_.setLiveness([this](NodeId n) { return neighbors_->isLive(n); });
        }
        reassembler_ = std::make_unique<lowpan::Reassembler>(
            simulator,
            [this](ip6::Packet p, ip6::ShortAddr src) {
                handleAssembled(std::move(p), src);
            },
            5 * sim::kSecond, arena_.get(), config_.reassemblySlots);
        queue_ = std::make_unique<ip6::RedQueue>(simulator, config_.queueConfig);
        if (config_.role == Role::kLeaf) {
            // Parent is set later via setParent(); construct lazily there.
        } else {
            mac_->setReceiveCallback(
                [this](NodeId src, const PacketBuffer& payload) { macInput(src, payload); });
        }
    }
}

Node::~Node() = default;

const NodeStats& Node::stats() const {
    // Refresh the reassembly-pressure fields from the live counters so
    // readers see the memory model without reaching into sublayers.
    if (reassembler_) {
        stats_.reassemblyOverflowDrops =
            reassembler_->stats().arenaDrops + reassembler_->stats().slotDrops;
    }
    if (arena_) stats_.reassemblyArenaHighWater = arena_->stats().highWaterBytes;
    stats_.reroutes = routes_.reroutes();
    stats_.failbacks = routes_.failbacks();
    stats_.blackholeDrops = routes_.blackholeDrops();
    return stats_;
}

void Node::setParent(NodeId parent) {
    TCPLP_ASSERT(config_.role == Role::kLeaf);
    parent_ = parent;
    setDefaultRoute(parent);
    if (!sleepy_) {
        sleepy_ = std::make_unique<mac::SleepyMac>(*mac_, parent, config_.sleepyConfig);
        sleepy_->setReceiveCallback(
            [this](NodeId src, const PacketBuffer& payload) { macInput(src, payload); });
    }
}

void Node::start() {
    if (sleepy_) sleepy_->start();
}

void Node::reboot(sim::Time downtime) {
    TCPLP_ASSERT(config_.role != Role::kCloudHost);
    if (failed_) return;  // a permanently failed node never power-cycles
    ++stats_.reboots;
    ++rebootEpoch_;  // invalidates closures scheduled before the crash
    const bool wasDown = down_;
    down_ = true;

    // Volatile state dies with the power rail. Order matters: the radio
    // first (its done-callbacks are guarded by the MAC's current_ check),
    // then MAC queues, then the reassembly partials (returning their arena
    // chunks), then this node's own forwarding state.
    if (radio_) radio_->setPowered(false);
    if (mac_) mac_->reset();
    if (reassembler_) reassembler_->clear();
    if (queue_) queue_->clear();
    txFrames_.clear();
    txIndex_ = 0;
    txTagActive_ = false;
    draining_ = false;
    fragRoutes_.clear();
    // Liveness verdicts and failover selections are volatile; installed
    // routes (configuration) survive.
    if (neighbors_) neighbors_->reset();
    routes_.resetSelections();

    if (!wasDown)
        for (auto& listener : rebootListeners_) listener(true);

    simulator_.schedule(downtime, [this, epoch = rebootEpoch_] {
        if (epoch != rebootEpoch_) return;  // superseded by a later reboot
        down_ = false;
        if (radio_) radio_->setPowered(true);
        if (sleepy_) sleepy_->start();  // leaf resumes its poll loop
        for (auto& listener : rebootListeners_) listener(false);
    });
}

void Node::addRoute(ip6::ShortAddr dst, NodeId nextHop) { routes_.setRoute(dst, nextHop); }
void Node::addRouteAlternate(ip6::ShortAddr dst, NodeId nextHop) {
    routes_.addAlternate(dst, nextHop);
}
void Node::setDefaultRoute(NodeId nextHop) { routes_.setDefaultRoute(nextHop); }
void Node::addDefaultRouteAlternate(NodeId nextHop) {
    routes_.addDefaultAlternate(nextHop);
}

void Node::failPermanently() {
    TCPLP_ASSERT(config_.role != Role::kCloudHost);
    if (failed_) return;
    failed_ = true;
    ++rebootEpoch_;  // strands any scheduled recovery / delayed sends
    const bool wasDown = down_;
    down_ = true;
    if (radio_) radio_->setPowered(false);
    if (mac_) mac_->reset();
    if (reassembler_) reassembler_->clear();
    if (queue_) queue_->clear();
    txFrames_.clear();
    txIndex_ = 0;
    txTagActive_ = false;
    draining_ = false;
    fragRoutes_.clear();
    if (neighbors_) neighbors_->reset();
    routes_.resetSelections();
    if (!wasDown)
        for (auto& listener : rebootListeners_) listener(true);
    // No recovery is scheduled: the node is gone for good.
}

void Node::attachWired(WiredLink* link) { wired_ = link; }

void Node::adoptSleepyChild(NodeId child) {
    TCPLP_ASSERT(mac_);
    mac_->registerSleepyChild(child);
}

void Node::registerProtocol(std::uint8_t nextHeader, ProtocolHandler handler) {
    protocols_[nextHeader] = std::move(handler);
}

void Node::setExpectingResponse(bool expecting) {
    if (sleepy_) sleepy_->setExpectingResponse(expecting);
}

RouteLookupStatus Node::lookupRoute(const ip6::Address& dst, NodeId& nextHop) {
    return routes_.lookup(dst.shortAddr(), nextHop);
}

void Node::sendPacket(ip6::Packet packet) {
    if (down_) return;  // a crashed node originates nothing
    if (packet.src == ip6::Address{}) packet.src = address_;
    ++stats_.packetsSent;
    if (radio_) radio_->energy().addCpuBusy(config_.cpuPerPacket);
    routePacket(std::move(packet), /*forwarded=*/false);
}

void Node::wiredInput(ip6::Packet packet) {
    if (down_) return;  // wired frames to a crashed border router are lost
    if (packet.dst == address_) {
        deliverLocal(packet);
        return;
    }
    // Border router: wired packet headed into the mesh.
    ++stats_.packetsForwarded;
    routePacket(std::move(packet), /*forwarded=*/true);
}

void Node::routePacket(ip6::Packet packet, bool forwarded) {
    if (packet.dst == address_) {
        deliverLocal(packet);
        return;
    }
    if (config_.role == Role::kCloudHost) {
        // The cloud host reaches everything through its wired uplink.
        if (wired_ != nullptr) {
            wired_->transfer(this, std::move(packet));
        } else {
            ++stats_.noRouteDrops;
        }
        return;
    }
    if (packet.dst.isCloud()) {
        if (wired_ != nullptr) {
            wired_->transfer(this, std::move(packet));
            return;
        }
        // Mote: cloud traffic goes toward the border router (default route).
    }
    if (forwarded) {
        if (packet.hopLimit == 0 || --packet.hopLimit == 0) {
            ++stats_.noRouteDrops;
            return;
        }
    }
    NodeId nextHop = 0;
    switch (lookupRoute(packet.dst, nextHop)) {
        case RouteLookupStatus::kNoRoute:
            ++stats_.noRouteDrops;
            return;
        case RouteLookupStatus::kDead:
            // Route exists but every next hop is known dead: drop now
            // (counted by the route manager) instead of burning a CSMA
            // retry ladder per frame into a blackhole.
            return;
        case RouteLookupStatus::kOk:
            break;
    }
    enqueueMeshPacket(std::move(packet), nextHop);
}

void Node::enqueueMeshPacket(ip6::Packet packet, NodeId nextHop) {
    TCPLP_ASSERT(mac_);
    // The chosen next hop is not stashed with the queue entry: the route is
    // resolved again at dequeue. With static routes the two lookups are
    // equivalent; with self-healing routing the dequeue-time lookup is the
    // one that must win (the selection may have failed over meanwhile).
    if (!queue_->push(std::move(packet))) {
        ++stats_.forwardDrops;
        return;
    }
    (void)nextHop;
    drainQueue();
}

void Node::drainQueue() {
    if (draining_ || !queue_ || queue_->empty()) return;
    draining_ = true;
    ip6::Packet packet = queue_->pop();
    // Re-resolve at dequeue: with self-healing routing the selection may
    // have failed over (or back) while the packet sat in the queue.
    NodeId hop = 0;
    const RouteLookupStatus status = lookupRoute(packet.dst, hop);
    if (status != RouteLookupStatus::kOk) {
        if (status == RouteLookupStatus::kNoRoute) ++stats_.noRouteDrops;
        draining_ = false;
        drainQueue();
        return;
    }
    const std::optional<NodeId> nextHop = hop;
    // Skip tags adopted by the relay fast path: relayed fragments bypass
    // this queue and can interleave with our own in the MAC, so the two
    // streams must not share a (sender, tag) pair at the receiver.
    const std::uint16_t tag = claimOutgoingTag(std::nullopt);
    currentTxTag_ = tag;
    txTagActive_ = true;  // reserve through any txProcessingDelay
    const std::uint64_t prependBase = PacketBuffer::stats().prependFallbacks;
    if (config_.txProcessingDelay > 0) {
        std::vector<PacketBuffer> frames = lowpan::encodeDatagram(
            std::move(packet), id_, *nextHop, tag, config_.macPayloadBudget);
        stats_.prependFallbacks += PacketBuffer::stats().prependFallbacks - prependBase;
        simulator_.schedule(
            config_.txProcessingDelay,
            [this, frames = std::move(frames), hop = *nextHop,
             epoch = rebootEpoch_]() mutable {
                if (epoch != rebootEpoch_) return;  // node crashed meanwhile
                sendDatagramFrames(std::move(frames), hop);
            });
        if (radio_) radio_->energy().addCpuBusy(config_.txProcessingDelay / 2);
    } else {
        // Hot path: encode straight into the node's reusable frame list.
        // draining_ serializes datagrams, so txFrames_ is idle here and its
        // capacity (and, via the slab pool, its frames' storage) is reused
        // from one datagram to the next.
        lowpan::encodeDatagramInto(std::move(packet), id_, *nextHop, tag,
                                   config_.macPayloadBudget, txFrames_);
        stats_.prependFallbacks += PacketBuffer::stats().prependFallbacks - prependBase;
        txIndex_ = 0;
        sendNextFrame(*nextHop);
    }
}

void Node::sendDatagramFrames(std::vector<PacketBuffer> frames, NodeId nextHop) {
    // Datagrams drain one at a time (draining_ serializes), so the in-flight
    // frame list lives in the node rather than in a self-referencing closure.
    txFrames_ = std::move(frames);
    txIndex_ = 0;
    sendNextFrame(nextHop);
}

void Node::sendNextFrame(NodeId nextHop) {
    // Transmit fragments in order; a fragment that fails after link retries
    // dooms the datagram — sending the rest is pointless, so drop the
    // remainder (the receiver discards on gap anyway).
    if (txIndex_ >= txFrames_.size()) {
        txFrames_.clear();
        txTagActive_ = false;
        draining_ = false;
        drainQueue();
        return;
    }
    // Dead-next-hop fast drop: if liveness tracking has marked the hop
    // unreachable mid-datagram, abandon the remainder immediately instead
    // of paying a full CSMA retry ladder per frame.
    if (neighbors_ && config_.neighbor.enabled && !neighbors_->isLive(nextHop)) {
        routes_.noteBlackhole();
        txIndex_ = txFrames_.size();
        sendNextFrame(nextHop);
        return;
    }
    PacketBuffer payload = std::move(txFrames_[txIndex_]);
    ++txIndex_;
    macSend(nextHop, std::move(payload), [this, nextHop](const mac::SendResult& r) {
        if (!r.success) txIndex_ = txFrames_.size();  // abandon the datagram
        sendNextFrame(nextHop);
    });
}

void Node::sendProbe(NodeId neighbor) {
    if (down_ || !mac_) return;
    // An empty unicast payload: the receiver's 6LoWPAN parser discards it,
    // but the link-layer ACK (or the exhausted retry ladder) feeds the
    // neighbor table through the MAC's TX-outcome callback.
    mac_->send(neighbor, PacketBuffer{}, nullptr);
}

void Node::macSend(NodeId dst, PacketBuffer payload, mac::CsmaMac::SendCallback done) {
    if (sleepy_) {
        sleepy_->send(dst, std::move(payload), std::move(done));
    } else {
        mac_->send(dst, std::move(payload), std::move(done));
    }
}

void Node::macInput(NodeId macSrc, const PacketBuffer& macPayload) {
    if (down_) return;  // the MCU is off (the radio is too, but be explicit)
    if (radio_) radio_->energy().addCpuBusy(config_.cpuPerPacket / 4);
    const auto info = lowpan::parseFragmentHeader(macPayload);
    if (!info) return;
    if (info->isFragment) expireFragRoutes();

    if (config_.perHopReassembly || !info->isFragment) {
        reassembler_->input(macSrc, id_, macPayload);
        return;
    }

    // Fragment-forwarding path (stock OpenThread behavior): relay fragments
    // without reassembling, deciding the route from FRAG1's IP header.
    if (info->isFirst) {
        BytesView rest(macPayload.data() + info->headerLen,
                       macPayload.size() - info->headerLen);
        ip6::Packet probe;
        if (!lowpan::decompressHeader(rest, macSrc, id_, probe)) return;
        if (probe.dst == address_ || (probe.dst.isCloud() && wired_ != nullptr)) {
            reassembler_->input(macSrc, id_, macPayload);
            return;
        }
        NodeId hop = 0;
        switch (lookupRoute(probe.dst, hop)) {
            case RouteLookupStatus::kNoRoute:
                ++stats_.noRouteDrops;
                return;
            case RouteLookupStatus::kDead:
                return;  // counted by the route manager
            case RouteLookupStatus::kOk:
                break;
        }
        const std::optional<NodeId> nextHop = hop;
        // Zero-copy fast path: keep the origin's datagram tag when no other
        // datagram this node is currently relaying or originating uses it,
        // so the fragment can be forwarded as a shared buffer with no header
        // rewrite. A simultaneous collision falls back to a fresh tag and a
        // counted copy-on-write rewrite in forwardRawFragment.
        const std::uint16_t outTag = claimOutgoingTag(info->tag);
        insertFragRoute(macSrc, info->tag, outTag, *nextHop);
        forwardRawFragment(macPayload, *info, macSrc);
        return;
    }
    if (findFragRoute(macSrc, info->tag) != nullptr) {
        forwardRawFragment(macPayload, *info, macSrc);
        return;
    }
    // Not being forwarded: it is ours (or stale) — reassemble locally.
    reassembler_->input(macSrc, id_, macPayload);
}

bool Node::outgoingTagInUse(std::uint16_t tag) const {
    // Datagrams drain one at a time, so the only originated tag that can
    // still be in flight alongside relayed fragments is the current one.
    if (txTagActive_ && currentTxTag_ == tag) return true;
    for (const FragRoute& route : fragRoutes_) {
        if (route.active && route.newTag == tag) return true;
    }
    return false;
}

std::uint16_t Node::claimOutgoingTag(std::optional<std::uint16_t> preferred) {
    if (preferred && !outgoingTagInUse(*preferred)) return *preferred;
    std::uint16_t tag = nextTag_++;
    while (outgoingTagInUse(tag)) tag = nextTag_++;
    return tag;
}

Node::FragRoute* Node::findFragRoute(NodeId originSrc, std::uint16_t originTag) {
    for (FragRoute& route : fragRoutes_) {
        if (route.active && route.originSrc == originSrc && route.originTag == originTag)
            return &route;
    }
    return nullptr;
}

void Node::insertFragRoute(NodeId originSrc, std::uint16_t originTag, std::uint16_t newTag,
                           NodeId nextHop) {
    FragRoute* slot = findFragRoute(originSrc, originTag);
    if (slot == nullptr) {
        for (FragRoute& route : fragRoutes_) {
            if (!route.active) {
                slot = &route;
                break;
            }
        }
    }
    if (slot == nullptr) {
        fragRoutes_.emplace_back();
        slot = &fragRoutes_.back();
    }
    *slot = FragRoute{originSrc, originTag, newTag, nextHop, simulator_.now(), true};
}

void Node::forwardRawFragment(const PacketBuffer& macPayload, const lowpan::FragInfo& info,
                              NodeId macSrc) {
    FragRoute* route = findFragRoute(macSrc, info.tag);
    TCPLP_ASSERT(route != nullptr);
    // Pinned fast-path hop gone dead mid-datagram: drop the fragment and
    // retire the route — the receiver discards on gap anyway, and burning
    // retry ladders into a blackhole would only delay the sender's own
    // failover.
    if (neighbors_ && config_.neighbor.enabled && !neighbors_->isLive(route->nextHop)) {
        routes_.noteBlackhole();
        route->active = false;
        return;
    }
    route->lastActivity = simulator_.now();
    PacketBuffer out = macPayload;  // shares storage with the received frame
    if (route->newTag != info.tag) {
        // Tag collision: rewriting the FRAG header needs exclusive bytes —
        // the only payload deep copy possible on the forwarding path.
        out.copyForWrite();
        std::uint8_t* bytes = out.mutableData();
        bytes[2] = std::uint8_t(route->newTag >> 8);
        bytes[3] = std::uint8_t(route->newTag);
        ++stats_.payloadDeepCopies;
    }
    ++stats_.packetsForwarded;
    const NodeId nextHop = route->nextHop;
    // Last fragment? Retire the mapping so the table stays bounded.
    if (!info.isFirst &&
        info.offsetBytes + (macPayload.size() - info.headerLen) >= info.datagramSize) {
        route->active = false;
    }
    macSend(nextHop, std::move(out), nullptr);
}

void Node::expireFragRoutes() {
    // Matches the reassembler's discard timeout: after this long without a
    // fragment, the datagram's remainder is not coming.
    constexpr sim::Time kFragRouteTimeout = 5 * sim::kSecond;
    const sim::Time now = simulator_.now();
    for (FragRoute& route : fragRoutes_) {
        if (route.active && now - route.lastActivity > kFragRouteTimeout) {
            route.active = false;
        }
    }
}

void Node::handleAssembled(ip6::Packet packet, ip6::ShortAddr macSrc) {
    (void)macSrc;
    if (packet.dst == address_) {
        deliverLocal(packet);
        return;
    }
    // Reassembled but not ours: forward (per-hop reassembly mode, or a
    // whole datagram transiting a relay, or cloud-bound traffic at the
    // border router).
    ++stats_.packetsForwarded;
    routePacket(std::move(packet), /*forwarded=*/true);
}

void Node::deliverLocal(const ip6::Packet& packet) {
    ++stats_.packetsDelivered;
    if (radio_) radio_->energy().addCpuBusy(config_.cpuPerPacket);
    auto it = protocols_.find(packet.nextHeader);
    if (it != protocols_.end()) it->second(packet);
}

}  // namespace tcplp::mesh
