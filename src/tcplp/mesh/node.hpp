// A complete simulated network node: radio + MAC + 6LoWPAN + IPv6
// forwarding, assembled per role.
//
//  * kRouter      — always-on Thread router; forwards; may parent leaves.
//  * kLeaf        — duty-cycled sleepy end device (SleepyMac).
//  * kBorderRouter— router that also owns a wired link to the cloud host.
//  * kCloudHost   — no radio; wired link only (the EC2 server of §9.2).
//
// Forwarding modes (Appendix A): by default relays forward 6LoWPAN
// *fragments* without reassembly, as stock OpenThread does; with
// `perHopReassembly` the node reassembles whole IPv6 packets at each hop and
// runs them through a RED/ECN queue — the paper's fix for multi-flow
// unfairness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "tcplp/common/ring_deque.hpp"
#include "tcplp/ip6/netif.hpp"
#include "tcplp/ip6/red_queue.hpp"
#include "tcplp/lowpan/frag.hpp"
#include "tcplp/mac/csma.hpp"
#include "tcplp/mac/sleepy.hpp"
#include "tcplp/mesh/neighbor_table.hpp"
#include "tcplp/mesh/route_manager.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/tcp/cc.hpp"

namespace tcplp::mesh {

using phy::NodeId;

enum class Role : std::uint8_t { kRouter, kLeaf, kBorderRouter, kCloudHost };

struct NodeConfig {
    Role role = Role::kRouter;
    mac::CsmaConfig macConfig{};
    mac::SleepyConfig sleepyConfig{};
    ip6::RedConfig queueConfig{};
    bool perHopReassembly = false;
    /// CPU charge per IPv6 datagram processed above the MAC.
    sim::Time cpuPerPacket = 150;

    // --- Reassembly memory model (Tables 3/4) --------------------------
    /// Bytes of packet heap reserved for 6LoWPAN reassembly gather buffers
    /// (default sized like OpenThread's message pool on a larger mote:
    /// 64 x 128 B). Exhaustion drops datagrams and is counted in NodeStats.
    std::size_t reassemblyArenaBytes = 8192;
    /// Concurrent partial datagrams tracked before new FRAG1s are dropped.
    std::size_t reassemblySlots = lowpan::Reassembler::kDefaultMaxPartials;

    // --- Network-stack profile emulation (§6.3) ------------------------
    /// Usable MAC payload per frame; smaller values emulate stacks with
    /// more per-frame header overhead (e.g. GNRC vs OpenThread).
    std::size_t macPayloadBudget = phy::kMaxMacPayloadBytes;
    /// Per-datagram processing latency before frames reach the MAC
    /// (thread-per-layer IPC in GNRC, event queue in BLIP).
    sim::Time txProcessingDelay = 0;

    // --- Self-healing routing (link liveness + failover) ----------------
    /// neighbor.enabled turns on liveness tracking, dead-next-hop fast
    /// drops, and failover across the alternate routes the harness
    /// installs. Off (the default) reproduces the static-route behavior
    /// byte-for-byte — no extra RNG draws, no extra events.
    NeighborConfig neighbor{};

    /// Congestion-control strategy for TCP endpoints hosted on this node.
    /// Only a selection token (tcp/cc.hpp, header-only): harness rigs that
    /// build a TcpConfig for a node's sockets copy it into TcpConfig::cc
    /// (see harness/anemometer.cpp). kNewReno = the paper's stock behavior.
    tcp::CcKind tcpCc = tcp::CcKind::kNewReno;

    /// TCP receive-memory budget for sockets hosted on this node: the hard
    /// ceiling receive-buffer autotuning may grow toward (copied into
    /// TcpConfig::recvBufferMaxBytes by harness rigs, clamping any
    /// workload-requested budget). 0 = no budget — autotuning stays off
    /// unless a rig asks for it, and an unbudgeted node never clamps.
    std::size_t tcpRecvBudgetBytes = 0;
};

struct NodeStats {
    std::uint64_t reboots = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsForwarded = 0;
    std::uint64_t packetsDelivered = 0;
    std::uint64_t forwardDrops = 0;  // queue overflow / RED drops
    std::uint64_t noRouteDrops = 0;
    /// Payload deep copies this node performed while *forwarding* (the
    /// zero-copy fast path keeps this at 0; only a datagram-tag collision
    /// forces a copy-on-write of a relayed fragment).
    std::uint64_t payloadDeepCopies = 0;
    /// Datagrams lost to reassembly buffer pressure: arena exhaustion plus
    /// partial-slot exhaustion (mirrors Reassembler stats).
    std::uint64_t reassemblyOverflowDrops = 0;
    /// PacketBuffer::prepend slow paths this node's 6LoWPAN encoder hit
    /// (headroom exhausted, storage reallocated through the slab pool).
    /// The TCP/IPHC headroom budget keeps this at 0 on the hot path.
    std::uint64_t prependFallbacks = 0;
    /// High-water mark of the reassembly arena, in bytes (Tables 3/4:
    /// genuine buffer pressure, not elastic heap growth).
    std::size_t reassemblyArenaHighWater = 0;

    // --- Self-healing routing (mirrors RouteManager counters) -----------
    std::uint64_t reroutes = 0;        // selection slid to a worse rank
    std::uint64_t failbacks = 0;       // selection recovered a better rank
    std::uint64_t blackholeDrops = 0;  // route existed, no live next hop
};

class Node;

/// Point-to-point wired link between the border router and the cloud host
/// (the paper's border-router-to-EC2 path, RTT ~12 ms, §9.2).
class WiredLink {
public:
    WiredLink(sim::Simulator& simulator, sim::Time oneWayDelay = 6 * sim::kMillisecond)
        : simulator_(simulator), delay_(oneWayDelay) {}

    void attach(Node* a, Node* b) {
        a_ = a;
        b_ = b;
    }
    void transfer(const Node* from, ip6::Packet packet);

    /// Uniform packet drop across this link — the paper's "injected loss at
    /// the border router" (§9.4, Fig. 9). Applied to both directions.
    void setLossRate(double p) { lossRate_ = p; }
    double lossRate() const { return lossRate_; }
    std::uint64_t dropped() const { return dropped_; }

private:
    sim::Simulator& simulator_;
    sim::Time delay_;
    double lossRate_ = 0.0;
    std::uint64_t dropped_ = 0;
    Node* a_ = nullptr;
    Node* b_ = nullptr;
    // In-flight packets, in schedule order. The propagation delay is a
    // constant, so deliveries fire in FIFO order and each scheduled event
    // pops exactly one entry — which lets transfer() schedule a [this]-only
    // closure (fits the simulator's inline event storage) instead of
    // capturing the packet by value.
    struct InFlight {
        Node* to = nullptr;
        ip6::Packet packet;
    };
    RingDeque<InFlight> inFlight_;
};

class Node : public ip6::NetIf {
public:
    Node(sim::Simulator& simulator, phy::Channel* channel, NodeId id, phy::Position pos,
         NodeConfig config);
    ~Node() override;

    NodeId id() const { return id_; }
    Role role() const { return config_.role; }
    const NodeStats& stats() const;
    NodeConfig& config() { return config_; }

    phy::Radio* radio() { return radio_.get(); }
    mac::CsmaMac* macLayer() { return mac_.get(); }
    mac::SleepyMac* sleepyMac() { return sleepy_.get(); }
    ip6::RedQueue* forwardQueue() { return queue_.get(); }
    const lowpan::Reassembler* reassembler() const { return reassembler_.get(); }
    const BufferArena* reassemblyArena() const { return arena_.get(); }

    // --- Topology wiring -------------------------------------------------
    /// Route packets for `dst` (short address) via neighbor `nextHop`
    /// (installs/replaces the rank-0 primary).
    void addRoute(ip6::ShortAddr dst, NodeId nextHop);
    /// Appends a ranked loop-free alternate next hop for `dst`.
    void addRouteAlternate(ip6::ShortAddr dst, NodeId nextHop);
    /// Route anything without a specific route via `nextHop` (mesh side).
    void setDefaultRoute(NodeId nextHop);
    /// Appends a ranked alternate for the default route.
    void addDefaultRouteAlternate(NodeId nextHop);
    /// Self-healing introspection (tests, presenters).
    const RouteManager& routeTable() const { return routes_; }
    const NeighborTable* neighborTable() const { return neighbors_.get(); }
    /// Attach the wired link (border router / cloud host roles).
    void attachWired(WiredLink* link);
    /// Declare `child` as a duty-cycled child (parent queues indirectly).
    void adoptSleepyChild(NodeId child);
    /// Leaf only: set/replace the parent used for polls.
    void setParent(NodeId parent);

    // --- NetIf -----------------------------------------------------------
    ip6::Address address() const override { return address_; }
    void sendPacket(ip6::Packet packet) override;
    void registerProtocol(std::uint8_t nextHeader, ProtocolHandler handler) override;
    sim::Simulator& simulator() override { return simulator_; }
    void setExpectingResponse(bool expecting) override;

    /// Wired-link ingress (called by WiredLink).
    void wiredInput(ip6::Packet packet);

    /// Starts duty cycling (leaf role).
    void start();

    // --- Fault injection -------------------------------------------------
    /// Fires on both edges of a reboot: listener(true) at power loss (after
    /// volatile node state is flushed), listener(false) at recovery. The
    /// transport layer lives outside the Node, so the workload rig uses this
    /// to drop TCP connections with crash semantics and schedule reconnects.
    using RebootListener = std::function<void(bool isDown)>;
    void addRebootListener(RebootListener listener) {
        rebootListeners_.push_back(std::move(listener));
    }

    /// Crash-reboots the node: the radio rail drops, MAC queues and the
    /// in-flight datagram are abandoned, reassembly partials return their
    /// arena chunks, and the forwarding queue empties — no callbacks fire.
    /// After `downtime` the node powers back up (routes and sleepy-child
    /// registrations survive: they model configuration, not volatile state;
    /// a leaf resumes its poll loop). A reboot during downtime extends the
    /// outage (the superseded recovery is ignored via an epoch counter).
    void reboot(sim::Time downtime);
    bool isDown() const { return down_; }

    /// Permanent failure (FaultKind::kNodeFailure): the reboot teardown
    /// with no recovery — the node never returns, and later reboot() calls
    /// are ignored. Reboot listeners fire their down edge once.
    void failPermanently();
    bool isFailed() const { return failed_; }

    /// Raw MAC ingress (also exposed for forwarding-path tests): one
    /// received MAC payload from neighbor `macSrc`.
    void macInput(NodeId macSrc, const PacketBuffer& macPayload);

private:
    void handleAssembled(ip6::Packet packet, ip6::ShortAddr macSrc);
    void deliverLocal(const ip6::Packet& packet);
    void routePacket(ip6::Packet packet, bool forwarded);
    void enqueueMeshPacket(ip6::Packet packet, NodeId nextHop);
    void drainQueue();
    void sendDatagramFrames(std::vector<PacketBuffer> frames, NodeId nextHop);
    void sendNextFrame(NodeId nextHop);
    /// True if `tag` is the outgoing tag of any datagram this node is
    /// currently relaying or originating (they must stay unique per sender).
    bool outgoingTagInUse(std::uint16_t tag) const;
    /// Picks an outgoing datagram tag: `preferred` (the zero-copy adoption
    /// case) when free, else fresh counter values skipping in-use tags.
    std::uint16_t claimOutgoingTag(std::optional<std::uint16_t> preferred);
    void forwardRawFragment(const PacketBuffer& macPayload, const lowpan::FragInfo& info,
                            NodeId macSrc);
    RouteLookupStatus lookupRoute(const ip6::Address& dst, NodeId& nextHop);
    void macSend(NodeId dst, PacketBuffer payload, mac::CsmaMac::SendCallback done);
    /// Emits an empty-payload unicast toward a dead neighbor; the MAC ACK
    /// (or its absence) is the liveness verdict.
    void sendProbe(NodeId neighbor);

    sim::Simulator& simulator_;
    NodeId id_;
    NodeConfig config_;
    ip6::Address address_;
    // Mutable so stats() can refresh the reassembly-pressure fields from the
    // arena/reassembler counters on read.
    mutable NodeStats stats_;

    // Must outlive reassembler_ and every packet it delivers (arena rule).
    std::unique_ptr<BufferArena> arena_;
    std::unique_ptr<phy::Radio> radio_;
    std::unique_ptr<mac::CsmaMac> mac_;
    std::unique_ptr<mac::SleepyMac> sleepy_;
    std::unique_ptr<lowpan::Reassembler> reassembler_;
    std::unique_ptr<ip6::RedQueue> queue_;
    WiredLink* wired_ = nullptr;

    RouteManager routes_;
    std::unique_ptr<NeighborTable> neighbors_;
    std::optional<NodeId> parent_;
    std::map<std::uint8_t, ProtocolHandler> protocols_;

    std::uint16_t nextTag_ = 1;
    bool draining_ = false;
    // Fault injection: while down_, every ingress/egress path is a no-op.
    // The epoch counter invalidates closures scheduled before a reboot
    // (txProcessingDelay sends, the recovery event of a superseded reboot).
    bool down_ = false;
    bool failed_ = false;  // kNodeFailure: down forever, reboots ignored
    std::uint64_t rebootEpoch_ = 0;
    std::vector<RebootListener> rebootListeners_;
    // Frames of the datagram currently draining to the MAC (in order),
    // and the datagram tag it was encoded with (tag-uniqueness bookkeeping).
    std::vector<PacketBuffer> txFrames_;
    std::size_t txIndex_ = 0;
    // Originated-datagram tag reservation: set when the tag is claimed in
    // drainQueue (which may precede transmission by txProcessingDelay) and
    // cleared when the datagram's last frame has drained.
    std::uint16_t currentTxTag_ = 0;
    bool txTagActive_ = false;
    // Fragment-forwarding state: (origin MAC, origin tag) -> (new tag, hop).
    // Entries normally retire with the final fragment; a timeout sweep
    // (expireFragRoutes) reclaims routes whose tail was lost upstream so
    // they cannot pin tags or grow the table forever. A relay tracks a
    // handful of concurrent datagrams, so the table is a flat slot vector
    // (linear scan, retired slots recycled in place) rather than a node-
    // per-entry map — the forwarding hot path allocates nothing once the
    // vector's high-water capacity is reached.
    struct FragRoute {
        NodeId originSrc = 0;
        std::uint16_t originTag = 0;
        std::uint16_t newTag = 0;
        NodeId nextHop = 0;
        sim::Time lastActivity = 0;
        bool active = false;
    };
    FragRoute* findFragRoute(NodeId originSrc, std::uint16_t originTag);
    void insertFragRoute(NodeId originSrc, std::uint16_t originTag, std::uint16_t newTag,
                         NodeId nextHop);
    void expireFragRoutes();
    std::vector<FragRoute> fragRoutes_;
};

}  // namespace tcplp::mesh
