// Ranked next-hop routing table with liveness-driven failover/failback.
//
// RPL-lite: for each destination (and for the default route) the harness
// installs a ranked candidate list — the BFS-tree next hop first, then the
// loop-free alternates (neighbors strictly closer to the destination, so
// any combination of failovers is loop-free). Lookup returns the
// best-ranked *live* candidate: when the primary goes unreachable the
// selection slides down the list (a reroute), and when a better-ranked
// candidate revives it slides back up (a failback). With no liveness
// source installed the manager behaves exactly like the plain map +
// default-route pair it replaced: rank 0, always.
//
// All state transitions are counted — reroutes, failbacks, and blackhole
// drops (a lookup that found a route but no live candidate) — and surfaced
// through mesh::NodeStats into the chaos campaign rows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "tcplp/ip6/address.hpp"
#include "tcplp/phy/radio.hpp"

namespace tcplp::mesh {

/// Outcome of a route lookup: distinguishes "never had a route" (the
/// caller's noRouteDrops) from "have routes, all next hops dead" (counted
/// here as a blackhole drop).
enum class RouteLookupStatus : std::uint8_t { kOk, kNoRoute, kDead };

class RouteManager {
public:
    /// nullptr = everything live (the pre-self-healing behavior).
    using LivenessFn = std::function<bool(phy::NodeId)>;
    void setLiveness(LivenessFn fn) { liveness_ = std::move(fn); }

    /// Installs/replaces the rank-0 primary for `dst`, clearing alternates
    /// (matches the overwrite semantics of the map it replaced).
    void setRoute(ip6::ShortAddr dst, phy::NodeId nextHop) {
        Entry& e = entries_[dst];
        e.hops.assign(1, nextHop);
        e.sel = 0;
    }
    /// Appends an alternate candidate (deduplicated, keeps rank order).
    void addAlternate(ip6::ShortAddr dst, phy::NodeId nextHop) {
        append(entries_[dst], nextHop);
    }
    void setDefaultRoute(phy::NodeId nextHop) {
        defaultEntry_.hops.assign(1, nextHop);
        defaultEntry_.sel = 0;
        haveDefault_ = true;
    }
    void addDefaultAlternate(phy::NodeId nextHop) {
        // An alternate without a primary would promote itself to rank 0.
        if (haveDefault_) append(defaultEntry_, nextHop);
    }

    /// Best-ranked live next hop for `dst` (specific entry, else default).
    /// Counts reroutes/failbacks on selection changes and blackhole drops
    /// when a route exists but every candidate is dead.
    RouteLookupStatus lookup(ip6::ShortAddr dst, phy::NodeId& nextHop);

    bool hasDefaultRoute() const { return haveDefault_; }
    /// Candidate list introspection (tests, presenters). Empty = no entry.
    std::vector<phy::NodeId> candidates(ip6::ShortAddr dst) const {
        const auto it = entries_.find(dst);
        return it == entries_.end() ? std::vector<phy::NodeId>{} : it->second.hops;
    }
    std::vector<phy::NodeId> defaultCandidates() const {
        return haveDefault_ ? defaultEntry_.hops : std::vector<phy::NodeId>{};
    }

    /// An in-flight frame was abandoned because its next hop is known dead
    /// (the enqueue-time fast drop that replaces the CSMA retry burn).
    void noteBlackhole() { ++blackholeDrops_; }

    /// Reboot semantics: installed routes are configuration and survive;
    /// the failover selections are volatile and snap back to rank 0
    /// without counting a failback.
    void resetSelections() {
        for (auto& [dst, e] : entries_) e.sel = 0;
        defaultEntry_.sel = 0;
    }

    std::uint64_t reroutes() const { return reroutes_; }
    std::uint64_t failbacks() const { return failbacks_; }
    std::uint64_t blackholeDrops() const { return blackholeDrops_; }

private:
    struct Entry {
        std::vector<phy::NodeId> hops;  // ranked best-first
        std::size_t sel = 0;            // current selection (sticky)
    };

    static void append(Entry& e, phy::NodeId hop) {
        for (phy::NodeId h : e.hops)
            if (h == hop) return;
        e.hops.push_back(hop);
    }

    RouteLookupStatus select(Entry& e, phy::NodeId& nextHop);

    std::map<ip6::ShortAddr, Entry> entries_;
    Entry defaultEntry_;
    bool haveDefault_ = false;
    LivenessFn liveness_;
    std::uint64_t reroutes_ = 0;
    std::uint64_t failbacks_ = 0;
    std::uint64_t blackholeDrops_ = 0;
};

}  // namespace tcplp::mesh
