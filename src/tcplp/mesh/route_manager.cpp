#include "tcplp/mesh/route_manager.hpp"

namespace tcplp::mesh {

RouteLookupStatus RouteManager::select(Entry& e, phy::NodeId& nextHop) {
    if (!liveness_) {
        nextHop = e.hops[e.sel];
        return RouteLookupStatus::kOk;
    }
    // Scan best-first: the first live candidate wins, so a revived primary
    // is re-selected (failback) on the next lookup automatically.
    for (std::size_t i = 0; i < e.hops.size(); ++i) {
        if (!liveness_(e.hops[i])) continue;
        if (i != e.sel) {
            if (i > e.sel)
                ++reroutes_;
            else
                ++failbacks_;
            e.sel = i;
        }
        nextHop = e.hops[i];
        return RouteLookupStatus::kOk;
    }
    ++blackholeDrops_;
    return RouteLookupStatus::kDead;
}

RouteLookupStatus RouteManager::lookup(ip6::ShortAddr dst, phy::NodeId& nextHop) {
    if (const auto it = entries_.find(dst); it != entries_.end())
        return select(it->second, nextHop);
    if (haveDefault_) return select(defaultEntry_, nextHop);
    return RouteLookupStatus::kNoRoute;
}

}  // namespace tcplp::mesh
