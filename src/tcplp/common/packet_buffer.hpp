// PacketBuffer — the zero-copy byte buffer used for all packet payloads.
//
// The paper (and Ayers et al., "Design Considerations for Low Power Internet
// Protocols") observes that buffer copies dominate constrained-stack cost.
// The seed of this codebase mirrored that anti-pattern in host code: a
// payload was deep-copied at every layer boundary (TCP segment -> IPv6
// packet -> 6LoWPAN fragment -> 802.15.4 frame, then once per receiver in
// the channel). PacketBuffer replaces those copies with reference-counted
// sharing plus reserved headroom, so a datagram is materialized once at the
// transport layer and then travels down the stack — and across every
// forwarding hop — by refcount alone.
//
// ## Ownership model (who may mutate, and when copyForWrite() is required)
//
//  * A PacketBuffer is a view (offset + length) into a shared storage block.
//    Copying a PacketBuffer, or taking a subview(), bumps a refcount; the
//    bytes are shared.
//  * Readers never need anything: view(), operator[], iteration and decoding
//    are always safe on shared storage.
//  * A writer may mutate bytes only while `unique()` is true (it holds the
//    storage's only reference). `mutableData()` and `writeAt()` assert this.
//  * A holder of a *shared* buffer that needs to mutate must call
//    `copyForWrite()` first, which duplicates the bytes. Every such
//    duplication is counted in stats().deepCopies — the forwarding-path
//    copy-counter tests assert this stays at zero.
//  * `prepend()` grows the view downward into reserved headroom. It is
//    in-place (free) when the storage is unique and headroom remains;
//    otherwise it falls back to a counted deep copy. Layers are expected to
//    originate buffers with enough headroom for the headers below them
//    (kDefaultHeadroom covers TCP framing + IPHC + FRAG1).
//
// ## Arena-backed storage (reassembly gather buffers)
//
//  * `allocateFrom(arena, n)` places the storage block inside a BufferArena
//    instead of the heap — the 6LoWPAN reassembler uses this so gathering a
//    fragmented datagram performs zero heap allocations. Exhaustion returns
//    an invalid buffer (`!valid()`); callers drop the datagram and count it,
//    exactly as a mote with a full packet heap would.
//  * Sharing semantics are identical to heap storage: subview/copy bump the
//    refcount, and when the LAST reference dies the block is returned to its
//    arena (not the heap). The chunk therefore stays carved for as long as
//    any layer still references the reassembled payload — this is the
//    "buffer pressure" the Table 3/4 benches measure.
//  * Mutating fallbacks (`copyForWrite()`, the `prepend()` slow path)
//    allocate their fresh storage on the HEAP, never in the arena: a
//    shared-buffer rewrite is a host-side correctness escape hatch, and it
//    must not be able to exhaust the mote-sized pool.
//  * Lifetime rule: the arena must strictly outlive every buffer carved from
//    it (see arena.hpp). Node owns its arena and its reassembler together,
//    so the rule holds by member ordering.
//
// The refcount is deliberately non-atomic: the simulator is single-threaded,
// and this buffer is a model of a mote packet heap, not a concurrency
// primitive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "tcplp/common/arena.hpp"
#include "tcplp/common/assert.hpp"
#include "tcplp/common/bytes.hpp"
#include "tcplp/common/slab_pool.hpp"

namespace tcplp {

struct PacketBufferStats {
    std::uint64_t allocations = 0;  // fresh storage blocks created
    std::uint64_t deepCopies = 0;   // copy-on-write / prepend-fallback duplications
    std::uint64_t copiedBytes = 0;  // bytes duplicated by those deep copies
    std::uint64_t shares = 0;       // refcount bumps (copies + subviews)
    std::uint64_t prependFallbacks = 0;  // prepend() slow paths (shared or headroom-less)
};

class PacketBuffer {
public:
    /// Default headroom on originated buffers: covers a FRAG1 header (4 B)
    /// plus a worst-case IPHC header (39 B) with margin, so every
    /// lower-layer prepend on the TX path lands in place.
    static constexpr std::size_t kDefaultHeadroom = 48;
    static constexpr std::size_t npos = std::size_t(-1);

    PacketBuffer() = default;

    /// Origination from legacy Bytes (copies once into counted storage).
    PacketBuffer(const Bytes& b) : PacketBuffer(copyOf(BytesView(b))) {}  // NOLINT

    // Copying never allocates (refcount bump), so it is noexcept — which
    // matters beyond hygiene: closures holding buffers (or Frames) stay
    // nothrow-move-constructible and therefore SmallFn-inline on the event
    // hot path instead of falling back to the heap.
    PacketBuffer(const PacketBuffer& other) noexcept
        : storage_(other.storage_), off_(other.off_), len_(other.len_) {
        if (storage_ != nullptr) {
            ++storage_->refs;
            ++stats_.shares;
        }
    }
    PacketBuffer& operator=(const PacketBuffer& other) noexcept {
        if (this != &other) {
            PacketBuffer tmp(other);
            swap(tmp);
        }
        return *this;
    }
    PacketBuffer(PacketBuffer&& other) noexcept
        : storage_(other.storage_), off_(other.off_), len_(other.len_) {
        other.storage_ = nullptr;
        other.off_ = other.len_ = 0;
    }
    PacketBuffer& operator=(PacketBuffer&& other) noexcept {
        if (this != &other) {
            release();
            storage_ = other.storage_;
            off_ = other.off_;
            len_ = other.len_;
            other.storage_ = nullptr;
            other.off_ = other.len_ = 0;
        }
        return *this;
    }
    ~PacketBuffer() { release(); }

    /// Fresh zero-filled buffer of `n` bytes with reserved headroom.
    static PacketBuffer allocate(std::size_t n, std::size_t headroom = kDefaultHeadroom) {
        PacketBuffer b;
        b.storage_ = newStorage(headroom + n);
        b.off_ = headroom;
        b.len_ = n;
        if (n > 0) std::memset(b.storage_->bytes() + b.off_, 0, n);
        return b;
    }

    /// Carves a zero-filled buffer of `n` bytes (plus headroom) out of
    /// `arena` instead of the heap. Returns an invalid buffer (!valid())
    /// when the arena cannot satisfy the request — the arena counts the
    /// exhaustion; the caller decides what "drop" means at its layer.
    static PacketBuffer allocateFrom(BufferArena& arena, std::size_t n,
                                     std::size_t headroom = 0) {
        void* mem = arena.carve(sizeof(Storage) + headroom + n);
        if (mem == nullptr) return PacketBuffer();
        PacketBuffer b;
        b.storage_ = ::new (mem) Storage{1, std::uint32_t(headroom + n), &arena};
        b.off_ = headroom;
        b.len_ = n;
        if (n > 0) std::memset(b.storage_->bytes() + b.off_, 0, n);
        return b;
    }

    /// False only for a default-constructed buffer or a failed arena carve.
    /// (A zero-length view of real storage is still valid.)
    bool valid() const { return storage_ != nullptr; }
    /// True when the storage block lives in a BufferArena.
    bool arenaBacked() const { return storage_ != nullptr && storage_->arena != nullptr; }

    /// Copies `data` into a fresh buffer (deliberate origination copy).
    static PacketBuffer copyOf(BytesView data, std::size_t headroom = kDefaultHeadroom) {
        PacketBuffer b = allocate(data.size(), headroom);
        if (!data.empty()) std::memcpy(b.storage_->bytes() + b.off_, data.data(), data.size());
        return b;
    }

    /// Builds [prefix | body] in one storage block (deliberate compose, e.g.
    /// a wire header in front of payload that must stay shared elsewhere).
    static PacketBuffer compose(BytesView prefix, BytesView body,
                                std::size_t headroom = kDefaultHeadroom) {
        PacketBuffer b = allocate(prefix.size() + body.size(), headroom);
        if (!prefix.empty())
            std::memcpy(b.storage_->bytes() + b.off_, prefix.data(), prefix.size());
        if (!body.empty())
            std::memcpy(b.storage_->bytes() + b.off_ + prefix.size(), body.data(), body.size());
        return b;
    }

    std::size_t size() const { return len_; }
    bool empty() const { return len_ == 0; }
    const std::uint8_t* data() const {
        return storage_ != nullptr ? storage_->bytes() + off_ : nullptr;
    }
    std::uint8_t operator[](std::size_t i) const {
        TCPLP_ASSERT(i < len_);
        return storage_->bytes()[off_ + i];
    }
    BytesView view() const { return BytesView(data(), len_); }
    operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)
    const std::uint8_t* begin() const { return data(); }
    const std::uint8_t* end() const { return data() + len_; }

    Bytes toBytes() const { return Bytes(begin(), end()); }

    /// Content equality (not storage identity).
    bool operator==(const PacketBuffer& other) const {
        return len_ == other.len_ &&
               (len_ == 0 || std::memcmp(data(), other.data(), len_) == 0);
    }

    /// True when this is the storage's only reference (mutation is safe).
    bool unique() const { return storage_ != nullptr && storage_->refs == 1; }
    bool sharesStorageWith(const PacketBuffer& other) const {
        return storage_ != nullptr && storage_ == other.storage_;
    }
    std::size_t refCount() const { return storage_ != nullptr ? storage_->refs : 0; }
    std::size_t headroom() const { return storage_ != nullptr ? off_ : 0; }

    /// Shared view of a byte range (refcount bump, no copy).
    PacketBuffer subview(std::size_t off, std::size_t n = npos) const {
        TCPLP_ASSERT(off <= len_);
        if (n == npos) n = len_ - off;
        TCPLP_ASSERT(off + n <= len_);
        PacketBuffer b(*this);
        b.off_ += off;
        b.len_ = n;
        return b;
    }

    void trimFront(std::size_t n) {
        TCPLP_ASSERT(n <= len_);
        off_ += n;
        len_ -= n;
    }
    void trimEnd(std::size_t n) {
        TCPLP_ASSERT(n <= len_);
        len_ -= n;
    }

    /// Ensures unique storage, duplicating the bytes if currently shared.
    /// The duplication is counted — forwarding paths must never hit it.
    void copyForWrite() {
        if (storage_ == nullptr || storage_->refs == 1) return;
        const std::size_t off = off_;
        const std::size_t len = len_;
        Storage* fresh = newStorage(off + len);
        std::memcpy(fresh->bytes() + off, storage_->bytes() + off, len);
        ++stats_.deepCopies;
        stats_.copiedBytes += len;
        release();
        storage_ = fresh;
        off_ = off;
        len_ = len;
    }

    /// Mutable access; caller must hold the only reference.
    std::uint8_t* mutableData() {
        TCPLP_ASSERT(unique());
        return storage_->bytes() + off_;
    }

    /// Writes `src` at byte offset `off`; caller must hold the only reference.
    void writeAt(std::size_t off, BytesView src) {
        TCPLP_ASSERT(unique());
        TCPLP_ASSERT(off + src.size() <= len_);
        if (!src.empty()) std::memcpy(storage_->bytes() + off_ + off, src.data(), src.size());
    }

    /// Grows the view downward to place `hdr` in front of the current bytes.
    /// In place when storage is unique and headroom suffices; otherwise a
    /// counted deep-copy fallback.
    void prepend(BytesView hdr) {
        if (storage_ != nullptr && storage_->refs == 1 && off_ >= hdr.size()) {
            off_ -= hdr.size();
            if (!hdr.empty()) std::memcpy(storage_->bytes() + off_, hdr.data(), hdr.size());
            len_ += hdr.size();
            return;
        }
        ++stats_.prependFallbacks;
        const std::size_t len = len_;
        Storage* fresh = newStorage(kDefaultHeadroom + hdr.size() + len);
        if (!hdr.empty())
            std::memcpy(fresh->bytes() + kDefaultHeadroom, hdr.data(), hdr.size());
        if (len > 0) {
            std::memcpy(fresh->bytes() + kDefaultHeadroom + hdr.size(),
                        storage_->bytes() + off_, len);
            ++stats_.deepCopies;
            stats_.copiedBytes += len;
        }
        release();
        storage_ = fresh;
        off_ = kDefaultHeadroom;
        len_ = hdr.size() + len;
    }

    static const PacketBufferStats& stats() { return stats_; }
    static void resetStats() { stats_ = PacketBufferStats{}; }

private:
    struct Storage {
        std::uint32_t refs;
        std::uint32_t capacity;
        BufferArena* arena;  // nullptr = heap-owned
        std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(this + 1); }
    };

    static Storage* newStorage(std::size_t capacity) {
        // Class-rounded through the slab recycler: the rounding slack is
        // kept as extra tail capacity, and the exact class size at release
        // is what lets the block go back on a free list.
        const std::size_t block = SlabPool::roundUp(sizeof(Storage) + capacity);
        void* mem = SlabPool::acquire(block);
        ++stats_.allocations;  // logical creations; SlabPoolStats splits pooled/heap
        return ::new (mem) Storage{1, std::uint32_t(block - sizeof(Storage)), nullptr};
    }

    void release() {
        if (storage_ != nullptr && --storage_->refs == 0) {
            BufferArena* arena = storage_->arena;
            const std::size_t block = sizeof(Storage) + storage_->capacity;
            storage_->~Storage();
            if (arena != nullptr) {
                arena->release(storage_);
            } else {
                SlabPool::release(storage_, block);
            }
        }
        storage_ = nullptr;
        off_ = len_ = 0;
    }

    void swap(PacketBuffer& other) noexcept {
        std::swap(storage_, other.storage_);
        std::swap(off_, other.off_);
        std::swap(len_, other.len_);
    }

    Storage* storage_ = nullptr;
    std::size_t off_ = 0;
    std::size_t len_ = 0;

    static inline PacketBufferStats stats_{};
};

}  // namespace tcplp
