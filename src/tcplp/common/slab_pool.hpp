// SlabPool — a per-simulation recycler for packet-storage blocks.
//
// The PR 1 event pool killed per-event heap traffic; this applies the same
// trick to the frame datapath. Every PacketBuffer storage block (TCP
// segment, 6LoWPAN fragment, 802.15.4 frame payload) is allocated at a
// size-classed capacity (powers of two, 64 B..4 KiB of total block bytes)
// and, when its last reference dies, is pushed onto the active pool's
// per-class LIFO free list instead of going back to the heap. Steady-state
// forwarding then recycles the same handful of blocks forever: after the
// first few datagrams warm the lists, the datapath performs zero heap
// allocations per frame (the bench_city_scale driver and the
// AllocCounting test pin this).
//
// ## Activation model (why blocks do not remember their pool)
//
// A pool is *installed* as the process-wide active recycler (stack
// discipline: install saves the previous pool, uninstall restores it).
// sim::Simulator installs one for its lifetime, which is what makes the
// recycler "per-simulation" without threading a pool pointer through every
// layer. Crucially, a block does NOT record which pool it came from:
//
//  * acquire() pops from the active pool's free list, or heap-allocates a
//    block of the exact class size.
//  * release() pushes onto whatever pool is active *now*, or heap-frees
//    when none is (or the size is off-class).
//
// Because every pooled block is a plain ::operator new allocation of its
// class size, any block may be freed — or adopted — by any pool at any
// time. Buffers that outlive their simulator, nested simulators, and
// non-LIFO teardown orders are all safe by construction; the worst case is
// a missed recycle. uninstall() additionally unlinks the pool from the
// middle of the active chain, so destruction order never dangles.
//
// Single-threaded by design, like the rest of the simulator: the active
// pointer is deliberately not atomic. Sharded sweeps isolate by process.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>

namespace tcplp {

/// Counters for the pooled-vs-heap split (surfaced as datapath metrics).
struct SlabPoolStats {
    std::uint64_t recycled = 0;      // blocks served from a free list
    std::uint64_t fresh = 0;         // blocks that had to hit the heap
    std::uint64_t returned = 0;      // blocks pushed back onto a free list
    std::uint64_t bytesRecycled = 0; // bytes served from free lists
    std::uint64_t bytesFresh = 0;    // bytes heap-allocated through acquire
};

class SlabPool {
public:
    static constexpr std::size_t kMinClassBytes = 64;
    static constexpr std::size_t kMaxClassBytes = 4096;
    static constexpr std::size_t kClassCount = 7;  // 64,128,...,4096

    SlabPool() = default;
    ~SlabPool() {
        uninstall();  // no-op unless still installed (crash-path safety)
        drain();
    }
    SlabPool(const SlabPool&) = delete;
    SlabPool& operator=(const SlabPool&) = delete;

    /// The pool acquire/release currently route through (nullptr = heap).
    static SlabPool* active() { return active_; }

    /// Installs this pool as the active recycler, stacking on any current
    /// one. Idempotent per pool (a second install is ignored).
    void install() {
        if (installed_) return;
        installed_ = true;
        prev_ = active_;
        active_ = this;
    }

    /// Removes this pool from the active chain (restoring the previous pool
    /// when this one is on top; unlinking mid-chain otherwise, so non-LIFO
    /// destruction orders cannot leave a dangling active pointer).
    void uninstall() {
        if (!installed_) return;
        installed_ = false;
        if (active_ == this) {
            active_ = prev_;
            return;
        }
        for (SlabPool* p = active_; p != nullptr; p = p->prev_) {
            if (p->prev_ == this) {
                p->prev_ = prev_;
                return;
            }
        }
    }

    /// Rounds a block size up to its size class. Sizes above the largest
    /// class are returned unchanged — they stay plain heap blocks.
    static std::size_t roundUp(std::size_t bytes) {
        if (bytes <= kMinClassBytes) return kMinClassBytes;
        if (bytes > kMaxClassBytes) return bytes;
        return std::bit_ceil(bytes);
    }

    /// Returns a block of exactly `blockBytes` (which must be roundUp'd by
    /// the caller): recycled from the active pool when possible, fresh from
    /// the heap otherwise.
    static void* acquire(std::size_t blockBytes) {
        SlabPool* pool = active_;
        const int cls = classOf(blockBytes);
        if (pool != nullptr && cls >= 0 && pool->free_[cls] != nullptr) {
            FreeBlock* block = pool->free_[cls];
            pool->free_[cls] = block->next;
            --pool->freeCount_[cls];
            ++pool->stats_.recycled;
            pool->stats_.bytesRecycled += blockBytes;
            return block;
        }
        void* mem = ::operator new(blockBytes);
        if (pool != nullptr) {
            ++pool->stats_.fresh;
            pool->stats_.bytesFresh += blockBytes;
        }
        return mem;
    }

    /// Returns a block previously obtained from acquire(`blockBytes`):
    /// pushed onto the active pool's free list when one is installed and
    /// the size is a class, heap-freed otherwise.
    static void release(void* block, std::size_t blockBytes) noexcept {
        SlabPool* pool = active_;
        const int cls = classOf(blockBytes);
        if (pool != nullptr && cls >= 0) {
            FreeBlock* fb = ::new (block) FreeBlock{pool->free_[cls]};
            pool->free_[cls] = fb;
            ++pool->freeCount_[cls];
            ++pool->stats_.returned;
            return;
        }
        ::operator delete(block);
    }

    /// Frees every free-listed block (live blocks are unaffected).
    void drain() {
        for (std::size_t cls = 0; cls < kClassCount; ++cls) {
            FreeBlock* block = free_[cls];
            while (block != nullptr) {
                FreeBlock* next = block->next;
                ::operator delete(block);
                block = next;
            }
            free_[cls] = nullptr;
            freeCount_[cls] = 0;
        }
    }

    /// Blocks currently parked on free lists.
    std::size_t freeBlocks() const {
        std::size_t total = 0;
        for (std::size_t cls = 0; cls < kClassCount; ++cls) total += freeCount_[cls];
        return total;
    }

    const SlabPoolStats& stats() const { return stats_; }
    void resetStats() { stats_ = SlabPoolStats{}; }

private:
    struct FreeBlock {
        FreeBlock* next;
    };

    /// Exact class index for `bytes`, or -1 when off-class (not a pooled
    /// size). Pooled sizes are exactly the powers of two in range, which is
    /// what lets release() trust the size alone.
    static int classOf(std::size_t bytes) {
        if (bytes < kMinClassBytes || bytes > kMaxClassBytes) return -1;
        if (!std::has_single_bit(bytes)) return -1;
        return std::countr_zero(bytes) - std::countr_zero(kMinClassBytes);
    }

    FreeBlock* free_[kClassCount] = {};
    std::size_t freeCount_[kClassCount] = {};
    SlabPoolStats stats_;
    bool installed_ = false;
    SlabPool* prev_ = nullptr;

    static inline SlabPool* active_ = nullptr;
};

}  // namespace tcplp
