// Always-on invariant checking. The simulator is a measurement instrument:
// a silently-corrupted invariant would invalidate experiment output, so
// these checks stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tcplp::detail {
[[noreturn]] inline void assertFail(const char* expr, const char* file, int line) {
    std::fprintf(stderr, "tcplp invariant failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}
}  // namespace tcplp::detail

#define TCPLP_ASSERT(expr) \
    ((expr) ? void(0) : ::tcplp::detail::assertFail(#expr, __FILE__, __LINE__))
