// BufferArena — a fixed-capacity byte arena modelling a mote packet heap.
//
// Constrained IP stacks do not malloc per datagram: TinyOS/BLIP and
// OpenThread both reserve a fixed message pool at boot and carve every
// packet buffer out of it, dropping traffic when the pool is exhausted
// (Ayers et al. flag exactly this buffer pressure as the footprint cost of
// full-scale protocols; Tables 3/4 of the TCPlp paper size it). This class
// reproduces that memory model in host code so the reassembly path can be
// allocation-free and the memory benches can report genuine pressure:
// drops on exhaustion and a byte high-water mark instead of an elastic heap.
//
// ## Design
//
//  * One contiguous block, allocated once at construction. carve() hands out
//    8-byte-aligned chunks via a first-fit free list; release() returns a
//    chunk and coalesces it with free neighbors, so long-running simulations
//    do not fragment into confetti.
//  * Each chunk is preceded by a small header recording its span, so
//    release() needs only the pointer.
//  * carve() NEVER falls back to the heap: exhaustion returns nullptr and is
//    counted in stats().exhaustionDrops. Callers model a mote dropping a
//    packet, not a host growing a vector.
//  * Free-list bookkeeping lives in a vector whose capacity is reserved up
//    front for the worst case (maximally fragmented arena), so steady-state
//    carve/release performs zero heap allocations.
//
// ## Lifetime
//
// The arena must outlive every chunk carved from it — including any
// PacketBuffer whose storage was placed here via PacketBuffer::allocateFrom
// (see packet_buffer.hpp "Arena-backed storage"). In this codebase each
// mesh::Node owns its reassembly arena and every reassembled datagram is
// consumed within the node graph's lifetime, which satisfies the rule by
// construction — with one teardown caveat: a *scheduled* callback (e.g. a
// WiredLink transfer) can capture an arena-backed payload, and the
// simulator typically outlives the nodes. Orchestration layers therefore
// cancel all pending events before destroying nodes (see
// Simulator::cancelAllPending and Testbed::~Testbed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tcplp/common/assert.hpp"

namespace tcplp {

struct ArenaStats {
    std::uint64_t carves = 0;           // successful allocations
    std::uint64_t releases = 0;         // chunks returned
    std::uint64_t exhaustionDrops = 0;  // carve() failures (no fitting chunk)
    std::size_t bytesInUse = 0;         // currently carved, incl. headers
    std::size_t highWaterBytes = 0;     // max bytesInUse ever observed
};

class BufferArena {
public:
    explicit BufferArena(std::size_t capacity)
        : capacity_(roundUp(capacity)), storage_(new std::uint8_t[capacity_]) {
        // Worst case the arena alternates carved/free chunks of minimal
        // size; reserving that many free-list entries up front keeps
        // carve/release heap-silent forever after.
        free_.reserve(capacity_ / (kHeaderBytes + kAlign) + 2);
        free_.push_back(Span{0, capacity_});
    }

    BufferArena(const BufferArena&) = delete;
    BufferArena& operator=(const BufferArena&) = delete;

    /// Carves `bytes` usable bytes; nullptr (counted) when nothing fits.
    void* carve(std::size_t bytes) {
        const std::size_t need = kHeaderBytes + roundUp(bytes);
        for (std::size_t i = 0; i < free_.size(); ++i) {
            if (free_[i].len < need) continue;
            const std::size_t off = free_[i].off;
            if (free_[i].len == need) {
                free_.erase(free_.begin() + long(i));
            } else {
                free_[i].off += need;
                free_[i].len -= need;
            }
            auto* hdr = reinterpret_cast<Header*>(storage_.get() + off);
            hdr->span = std::uint32_t(need);
            ++stats_.carves;
            stats_.bytesInUse += need;
            if (stats_.bytesInUse > stats_.highWaterBytes) {
                stats_.highWaterBytes = stats_.bytesInUse;
            }
            return storage_.get() + off + kHeaderBytes;
        }
        ++stats_.exhaustionDrops;
        return nullptr;
    }

    /// Returns a chunk obtained from carve(); coalesces with free neighbors.
    void release(void* p) {
        TCPLP_ASSERT(owns(p));
        // Step back to the header via uintptr_t: p provably points into
        // storage_, but when release() is inlined behind an arena-null
        // check GCC's -Warray-bounds reasons about the dead branch.
        auto* bytes = reinterpret_cast<std::uint8_t*>(
            reinterpret_cast<std::uintptr_t>(p) - kHeaderBytes);
        const auto* hdr = reinterpret_cast<const Header*>(bytes);
        const std::size_t off = std::size_t(bytes - storage_.get());
        const std::size_t len = hdr->span;
        TCPLP_ASSERT(len >= kHeaderBytes && off + len <= capacity_);
        ++stats_.releases;
        TCPLP_ASSERT(stats_.bytesInUse >= len);
        stats_.bytesInUse -= len;

        // Insert sorted by offset, then merge with adjacent free spans.
        std::size_t i = 0;
        while (i < free_.size() && free_[i].off < off) ++i;
        free_.insert(free_.begin() + long(i), Span{off, len});
        if (i + 1 < free_.size() && free_[i].off + free_[i].len == free_[i + 1].off) {
            free_[i].len += free_[i + 1].len;
            free_.erase(free_.begin() + long(i) + 1);
        }
        if (i > 0 && free_[i - 1].off + free_[i - 1].len == free_[i].off) {
            free_[i - 1].len += free_[i].len;
            free_.erase(free_.begin() + long(i));
        }
    }

    /// True if `p` points into this arena's storage (valid carve result).
    /// The upper bound is inclusive: a zero-byte carve at the arena tail
    /// legitimately returns one-past-the-last-header.
    bool owns(const void* p) const {
        const auto* b = static_cast<const std::uint8_t*>(p);
        return b >= storage_.get() + kHeaderBytes && b <= storage_.get() + capacity_;
    }

    std::size_t capacity() const { return capacity_; }
    /// Largest single request carve() could currently satisfy.
    std::size_t largestFreeChunk() const {
        std::size_t best = 0;
        for (const Span& s : free_)
            if (s.len > best) best = s.len;
        return best > kHeaderBytes ? best - kHeaderBytes : 0;
    }
    std::size_t outstandingChunks() const {
        return std::size_t(stats_.carves - stats_.releases);
    }
    const ArenaStats& stats() const { return stats_; }

private:
    static constexpr std::size_t kAlign = 8;
    struct Header {
        std::uint32_t span;  // header + payload + padding, in bytes
    };
    static constexpr std::size_t kHeaderBytes = kAlign;  // keep payload aligned
    struct Span {
        std::size_t off;
        std::size_t len;
    };

    static std::size_t roundUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

    std::size_t capacity_;
    std::unique_ptr<std::uint8_t[]> storage_;
    std::vector<Span> free_;  // sorted by offset, coalesced
    ArenaStats stats_;
};

}  // namespace tcplp
