// Fixed-capacity circular byte buffer.
//
// This is the storage primitive behind TCPlp's receive buffer (the paper's
// "flat array-based circular buffer", section 4.3.2): capacity is reserved
// up front, so memory use is deterministic regardless of how fragmented the
// arriving byte stream is.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/bytes.hpp"

namespace tcplp {

class RingBuffer {
public:
    explicit RingBuffer(std::size_t capacity) : data_(capacity) {}

    std::size_t capacity() const { return data_.size(); }
    std::size_t size() const { return size_; }
    std::size_t free() const { return capacity() - size_; }
    bool empty() const { return size_ == 0; }

    /// Appends up to `src.size()` bytes; returns the number written.
    std::size_t write(BytesView src) {
        const std::size_t n = std::min(src.size(), free());
        for (std::size_t i = 0; i < n; ++i)
            data_[wrap(head_ + size_ + i)] = src[i];
        size_ += n;
        return n;
    }

    /// Writes `src` at byte offset `off` past the current tail, without
    /// advancing size. Used by the in-place reassembly queue to deposit
    /// out-of-order data into its eventual position (paper Figure 1b).
    void writeAt(std::size_t off, BytesView src) {
        TCPLP_ASSERT(off + src.size() <= capacity());
        for (std::size_t i = 0; i < src.size(); ++i)
            data_[wrap(head_ + size_ + off + i)] = src[i];
    }

    /// Marks `n` bytes previously deposited via writeAt() as in-sequence.
    void commit(std::size_t n) {
        TCPLP_ASSERT(size_ + n <= capacity());
        size_ += n;
    }

    /// Copies up to `dst.size()` bytes from the front without consuming.
    std::size_t peek(std::span<std::uint8_t> dst) const {
        const std::size_t n = std::min(dst.size(), size_);
        for (std::size_t i = 0; i < n; ++i) dst[i] = data_[wrap(head_ + i)];
        return n;
    }

    /// Removes and returns up to `n` bytes from the front.
    Bytes read(std::size_t n) {
        Bytes out;
        readInto(n, out);
        return out;
    }

    /// read() into a caller-provided vector whose capacity is reused —
    /// the auto-drain delivery path calls this once per committed run, so
    /// reusing the scratch keeps the receive path allocation-free.
    std::size_t readInto(std::size_t n, Bytes& out) {
        n = std::min(n, size_);
        out.resize(n);
        for (std::size_t i = 0; i < n; ++i) out[i] = data_[wrap(head_ + i)];
        consume(n);
        return n;
    }

    /// Drops `n` bytes from the front.
    void consume(std::size_t n) {
        TCPLP_ASSERT(n <= size_);
        head_ = wrap(head_ + n);
        size_ -= n;
    }

    /// Random access relative to the front (0 = oldest byte).
    std::uint8_t at(std::size_t i) const {
        TCPLP_ASSERT(i < size_);
        return data_[wrap(head_ + i)];
    }

    void clear() {
        head_ = 0;
        size_ = 0;
    }

    /// Grows capacity, preserving the readable bytes AND any bytes deposited
    /// past the tail via writeAt() (the in-place reassembly queue): the whole
    /// old ring is re-linearized starting at head_, so every tail-relative
    /// offset is unchanged afterwards. Shrinking is not supported.
    void grow(std::size_t newCapacity) {
        TCPLP_ASSERT(newCapacity >= capacity());
        if (newCapacity == capacity()) return;
        Bytes next(newCapacity, 0);
        for (std::size_t i = 0; i < data_.size(); ++i) next[i] = data_[wrap(head_ + i)];
        data_ = std::move(next);
        head_ = 0;
    }

private:
    std::size_t wrap(std::size_t i) const { return i % data_.size(); }

    Bytes data_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace tcplp
