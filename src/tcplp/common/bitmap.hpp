// Dynamic bitmap with range operations.
//
// TCPlp's in-place reassembly queue (paper section 4.3.2, Figure 1b) records
// which bytes past the in-sequence data are valid out-of-order data using a
// bitmap; this is that bitmap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tcplp/common/assert.hpp"

namespace tcplp {

class Bitmap {
public:
    explicit Bitmap(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

    std::size_t size() const { return bits_; }

    bool test(std::size_t i) const {
        TCPLP_ASSERT(i < bits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void set(std::size_t i) {
        TCPLP_ASSERT(i < bits_);
        words_[i >> 6] |= std::uint64_t(1) << (i & 63);
    }

    void clear(std::size_t i) {
        TCPLP_ASSERT(i < bits_);
        words_[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }

    void setRange(std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) set(i);
    }

    void clearRange(std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) clear(i);
    }

    void clearAll() { std::fill(words_.begin(), words_.end(), 0); }

    /// Shifts every bit down by `by` in place (bit i+by moves to bit i); the
    /// vacated top bits clear. Allocation-free — the reassembly commit path
    /// advances its bitmap origin with this on every in-sequence run.
    void shiftDown(std::size_t by) {
        if (by == 0) return;
        if (by >= bits_) {
            clearAll();
            return;
        }
        const std::size_t wordShift = by >> 6;
        const std::size_t bitShift = by & 63;
        const std::size_t nw = words_.size();
        for (std::size_t i = 0; i + wordShift < nw; ++i) {
            std::uint64_t v = words_[i + wordShift] >> bitShift;
            if (bitShift != 0 && i + wordShift + 1 < nw)
                v |= words_[i + wordShift + 1] << (64 - bitShift);
            words_[i] = v;
        }
        for (std::size_t i = nw - wordShift; i < nw; ++i) words_[i] = 0;
    }

    /// Grows to `bits` (new bits start clear); shrinking is not supported.
    /// Used by receive-buffer autotuning — existing bit positions keep
    /// their values, so parked out-of-order ranges survive a grow.
    void grow(std::size_t bits) {
        TCPLP_ASSERT(bits >= bits_);
        bits_ = bits;
        words_.resize((bits + 63) / 64, 0);
    }

    /// Length of the run of set bits starting at `begin`.
    std::size_t countContiguousFrom(std::size_t begin) const {
        std::size_t n = 0;
        while (begin + n < bits_ && test(begin + n)) ++n;
        return n;
    }

    std::size_t popcount() const {
        std::size_t n = 0;
        for (std::size_t i = 0; i < bits_; ++i) n += test(i);
        return n;
    }

private:
    std::size_t bits_;
    std::vector<std::uint64_t> words_;
};

}  // namespace tcplp
