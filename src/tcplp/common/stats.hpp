// Streaming summary statistics used by every experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace tcplp {

/// Accumulates samples and answers mean / percentile / min / max queries.
/// Keeps all samples (experiments produce at most a few million).
class Summary {
public:
    void add(double x) {
        samples_.push_back(x);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    double mean() const {
        if (samples_.empty()) return 0.0;
        double s = 0.0;
        for (double x : samples_) s += x;
        return s / double(samples_.size());
    }

    double stddev() const {
        if (samples_.size() < 2) return 0.0;
        const double m = mean();
        double s = 0.0;
        for (double x : samples_) s += (x - m) * (x - m);
        return std::sqrt(s / double(samples_.size() - 1));
    }

    double min() const { return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end()); }
    double max() const { return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end()); }

    /// Percentile in [0,100] by nearest-rank on the sorted samples.
    double percentile(double p) const {
        if (samples_.empty()) return 0.0;
        sort();
        const double rank = p / 100.0 * double(samples_.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
        const double frac = rank - double(lo);
        return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
    }

    double median() const { return percentile(50.0); }

    const std::vector<double>& samples() const {
        sort();
        return samples_;
    }

    /// Histogram with `bins` equal-width buckets over [lo, hi); returns counts.
    std::vector<std::size_t> histogram(double lo, double hi, std::size_t bins) const {
        std::vector<std::size_t> out(bins, 0);
        if (hi <= lo || bins == 0) return out;
        for (double x : samples_) {
            if (x < lo || x >= hi) continue;
            auto b = static_cast<std::size_t>((x - lo) / (hi - lo) * double(bins));
            out[std::min(b, bins - 1)]++;
        }
        return out;
    }

private:
    void sort() const {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

}  // namespace tcplp
