#include "tcplp/common/log.hpp"

#include <cstdio>

namespace tcplp {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* tag(LogLevel level) {
    switch (level) {
        case LogLevel::kError: return "E";
        case LogLevel::kWarn: return "W";
        case LogLevel::kInfo: return "I";
        case LogLevel::kDebug: return "D";
        case LogLevel::kTrace: return "T";
        default: return "?";
    }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
    std::fprintf(stderr, "[%s] ", tag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

}  // namespace tcplp
