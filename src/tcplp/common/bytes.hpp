// Byte-buffer utilities shared across the stack.
//
// `Bytes` (a plain vector) is for small header scratch space and
// application-layer data. Packet payloads that cross layer or hop
// boundaries use `PacketBuffer` (packet_buffer.hpp), which shares storage
// by refcount instead of copying — see that header for the ownership model
// (who may mutate, and when copyForWrite() is required).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tcplp {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a byte vector from an ASCII string (test/workload convenience).
inline Bytes toBytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

/// Renders bytes as ASCII, replacing non-printable bytes with '.'.
inline std::string toPrintable(BytesView b) {
    std::string out;
    out.reserve(b.size());
    for (std::uint8_t c : b) out.push_back((c >= 0x20 && c < 0x7f) ? char(c) : '.');
    return out;
}

/// Generates `n` deterministic pattern bytes starting at stream offset
/// `offset`. Used by bulk-transfer workloads so receivers can verify
/// content integrity without keeping a copy of the sent stream.
inline std::uint8_t patternByteAt(std::size_t pos) {
    return static_cast<std::uint8_t>((pos * 131) ^ (pos >> 8) ^ 0x5a);
}

/// Allocation-free patternBytes: fills out[0..n).
inline void patternBytesInto(std::size_t offset, std::size_t n, std::uint8_t* out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = patternByteAt(offset + i);
}

inline Bytes patternBytes(std::size_t offset, std::size_t n) {
    Bytes out(n);
    patternBytesInto(offset, n, out.data());
    return out;
}

/// Checks that `data` equals the pattern stream at `offset`.
inline bool matchesPattern(std::size_t offset, BytesView data) {
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] != patternByteAt(offset + i)) return false;
    }
    return true;
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

// Big-endian (network order) scalar encode/decode helpers used by the
// header codecs (6LoWPAN, IPv6, TCP, CoAP).
inline void putU16(Bytes& b, std::uint16_t v) {
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v));
}
inline void putU32(Bytes& b, std::uint32_t v) {
    b.push_back(static_cast<std::uint8_t>(v >> 24));
    b.push_back(static_cast<std::uint8_t>(v >> 16));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v));
}
inline std::uint16_t getU16(BytesView b, std::size_t off) {
    return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}
inline std::uint32_t getU32(BytesView b, std::size_t off) {
    return (std::uint32_t(b[off]) << 24) | (std::uint32_t(b[off + 1]) << 16) |
           (std::uint32_t(b[off + 2]) << 8) | std::uint32_t(b[off + 3]);
}

}  // namespace tcplp
