// Minimal leveled logging. Experiments run with logging off by default;
// tests flip it on to debug protocol traces.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace tcplp {

enum class LogLevel : std::uint8_t { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log threshold; messages above it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging to stderr, prefixed with the level tag.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define TCPLP_LOG(level, ...)                                       \
    do {                                                            \
        if (static_cast<int>(level) <= static_cast<int>(::tcplp::logLevel())) \
            ::tcplp::logf(level, __VA_ARGS__);                      \
    } while (0)

#define TCPLP_DEBUG(...) TCPLP_LOG(::tcplp::LogLevel::kDebug, __VA_ARGS__)
#define TCPLP_INFO(...) TCPLP_LOG(::tcplp::LogLevel::kInfo, __VA_ARGS__)
#define TCPLP_WARN(...) TCPLP_LOG(::tcplp::LogLevel::kWarn, __VA_ARGS__)

}  // namespace tcplp
