// Capacity-retaining double-ended FIFO.
//
// std::deque allocates a ~512-byte chunk every time it grows from empty to
// one element and frees it when drained — and a MAC send queue (or a packet
// queue) cycles through empty constantly, so the chunk churn lands on the
// simulation hot path. RingDeque keeps its slots in one circular vector
// whose capacity only grows: after warm-up, the push/pop cycle allocates
// nothing.
//
// Requirements on T: default-constructible and move-assignable. pop_front()
// resets the vacated slot to T{} so owned resources (buffers, callbacks)
// are released at pop time, not when the slot is eventually overwritten.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace tcplp {

template <typename T>
class RingDeque {
public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T& front() { return slots_[head_]; }
    const T& front() const { return slots_[head_]; }

    void push_back(T v) {
        reserveOne();
        slots_[wrap(head_ + size_)] = std::move(v);
        ++size_;
    }

    void push_front(T v) {
        reserveOne();
        head_ = wrap(head_ + slots_.size() - 1);
        slots_[head_] = std::move(v);
        ++size_;
    }

    void pop_front() {
        slots_[head_] = T{};
        head_ = wrap(head_ + 1);
        --size_;
    }

    /// Destroys the elements' contents but keeps the slot capacity.
    void clear() {
        for (std::size_t i = 0; i < size_; ++i) slots_[wrap(head_ + i)] = T{};
        head_ = 0;
        size_ = 0;
    }

    /// Front-to-back const iteration (input-iterator subset: range-for).
    class const_iterator {
    public:
        const_iterator(const RingDeque* d, std::size_t i) : d_(d), i_(i) {}
        const T& operator*() const { return d_->slots_[d_->wrap(d_->head_ + i_)]; }
        const_iterator& operator++() {
            ++i_;
            return *this;
        }
        bool operator==(const const_iterator& o) const { return i_ == o.i_; }
        bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

    private:
        const RingDeque* d_;
        std::size_t i_;
    };
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

private:
    std::size_t wrap(std::size_t i) const {
        return slots_.empty() ? 0 : i % slots_.size();
    }

    void reserveOne() {
        if (size_ < slots_.size()) return;
        const std::size_t grown = slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> next(grown);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(slots_[wrap(head_ + i)]);
        slots_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace tcplp
