#include "tcplp/mac/sleepy.hpp"

#include <algorithm>

namespace tcplp::mac {

SleepyMac::SleepyMac(CsmaMac& mac, NodeId parent, SleepyConfig config)
    : mac_(mac), parent_(parent), config_(config) {
    currentInterval_ = intervalFor();
    mac_.setReceiveCallback([this](NodeId src, const PacketBuffer& payload) {
        gotFrameThisWindow_ = true;
        if (config_.policy == PollPolicy::kAdaptive) {
            // Trickle-style reset: traffic arrived, poll aggressively.
            currentInterval_ = config_.sminAdaptive;
        }
        if (inListenWindow_) {
            // A frame with more behind it (pending bit chained by the
            // parent) extends the window; extend unconditionally and let
            // the window timer re-arm.
            enterListenWindow();
        }
        if (upperRx_) upperRx_(src, payload);
    });
    mac_.setIdleCallback([this] { maybeSleep(); });
}

void SleepyMac::setReceiveCallback(CsmaMac::ReceiveCallback cb) { upperRx_ = std::move(cb); }

void SleepyMac::start() {
    started_ = true;
    mac_.radio().setSleeping(true);
    scheduleNextPoll();
}

void SleepyMac::send(NodeId dst, PacketBuffer payload, CsmaMac::SendCallback done) {
    // Upstream traffic may be sent at any time (§3.2); the CSMA machine
    // wakes the radio itself, and maybeSleep() re-parks it afterwards.
    mac_.send(dst, std::move(payload), [this, done = std::move(done)](const SendResult& r) {
        if (done) done(r);
        maybeSleep();
    });
}

void SleepyMac::setExpectingResponse(bool expecting) {
    if (expecting == expectingResponse_) return;
    expectingResponse_ = expecting;
    if (started_ && expecting) {
        // Re-arm the poll timer at the faster cadence immediately.
        scheduleNextPoll();
    }
}

sim::Time SleepyMac::intervalFor() const {
    switch (config_.policy) {
        case PollPolicy::kFixed: return config_.sleepInterval;
        case PollPolicy::kTransportHint:
            return expectingResponse_ ? config_.activeInterval : config_.idleInterval;
        case PollPolicy::kAdaptive:
            return std::clamp(currentInterval_, config_.sminAdaptive, config_.smaxAdaptive);
    }
    return config_.sleepInterval;
}

void SleepyMac::scheduleNextPoll() {
    if (!started_) return;
    pollTimer_.cancel();
    pollTimer_ = mac_.simulator().schedule(intervalFor(), [this] { poll(); });
}

void SleepyMac::pollNow() { poll(); }

void SleepyMac::poll() {
    ++pollsSent_;
    gotFrameThisWindow_ = false;
    mac_.sendDataRequest(parent_, [this](bool acked, bool pending) {
        if (acked && pending) {
            enterListenWindow();
        } else {
            pollFinished(gotFrameThisWindow_);
        }
    });
}

void SleepyMac::enterListenWindow() {
    inListenWindow_ = true;
    mac_.radio().setSleeping(false);
    listenTimer_.cancel();
    listenTimer_ = mac_.simulator().schedule(config_.wakeupInterval, [this] {
        inListenWindow_ = false;
        pollFinished(gotFrameThisWindow_);
    });
}

void SleepyMac::pollFinished(bool receivedAnything) {
    inListenWindow_ = false;
    if (config_.policy == PollPolicy::kAdaptive) {
        if (receivedAnything) {
            currentInterval_ = config_.sminAdaptive;
        } else {
            currentInterval_ =
                std::min(currentInterval_ * 2, config_.smaxAdaptive);
        }
    }
    maybeSleep();
    scheduleNextPoll();
}

void SleepyMac::maybeSleep() {
    if (!started_) return;
    if (inListenWindow_) return;
    if (mac_.busy()) return;  // CSMA machine still owns the radio
    mac_.radio().setSleeping(true);
}

}  // namespace tcplp::mac
