// Duty-cycled (sleepy) leaf MAC: Thread-style listen-after-send.
//
// The leaf keeps its radio asleep and periodically polls its parent with an
// 802.15.4 Data Request (§3.2). If the parent's ACK carries the pending bit,
// the leaf listens for a wakeup interval to receive queued downstream frames;
// received data frames with the pending bit set extend the listen window
// (Appendix C, Figure 11). Upstream frames may be sent at any time.
//
// Three polling policies are provided:
//  * kFixed          — poll every `sleepInterval` (Appendix C.1, Fig. 12/13).
//  * kTransportHint  — poll every `idleInterval` (4 min default) normally,
//                      but every `activeInterval` (100 ms) while the
//                      transport layer says a response is expected (§9.2).
//  * kAdaptive       — Trickle-like: on receiving a frame, reset the sleep
//                      interval to smin; after an empty poll, double it up
//                      to smax (Appendix C.2, Fig. 14).
#pragma once

#include <functional>

#include "tcplp/mac/csma.hpp"

namespace tcplp::mac {

enum class PollPolicy : std::uint8_t { kFixed, kTransportHint, kAdaptive };

struct SleepyConfig {
    PollPolicy policy = PollPolicy::kTransportHint;
    sim::Time sleepInterval = 2 * sim::kSecond;       // kFixed period
    sim::Time idleInterval = 4 * sim::kMinute;        // kTransportHint idle (§9.2)
    sim::Time activeInterval = 100 * sim::kMillisecond;  // when expecting ACK
    sim::Time sminAdaptive = 20 * sim::kMillisecond;  // Appendix C.2
    sim::Time smaxAdaptive = 5 * sim::kSecond;
    sim::Time wakeupInterval = 30 * sim::kMillisecond;  // listen window per poll
};

class SleepyMac {
public:
    SleepyMac(CsmaMac& mac, NodeId parent, SleepyConfig config = {});

    CsmaMac& link() { return mac_; }
    NodeId parent() const { return parent_; }
    const SleepyConfig& config() const { return config_; }
    SleepyConfig& mutableConfig() { return config_; }

    /// Starts the poll loop and puts the radio to sleep.
    void start();

    /// Sends a payload upstream (radio wakes just long enough to transmit).
    void send(NodeId dst, PacketBuffer payload, CsmaMac::SendCallback done = nullptr);

    void setReceiveCallback(CsmaMac::ReceiveCallback cb);

    /// Transport-layer hint (§9.2): while true, polls run at activeInterval
    /// because a TCP ACK / CoAP response is expected imminently.
    void setExpectingResponse(bool expecting);

    /// Forces an immediate poll (tests / transport fast path).
    void pollNow();

    sim::Time currentSleepInterval() const { return currentInterval_; }
    std::uint64_t pollsSent() const { return pollsSent_; }

private:
    void scheduleNextPoll();
    void poll();
    void pollFinished(bool receivedAnything);
    void enterListenWindow();
    void maybeSleep();
    sim::Time intervalFor() const;

    CsmaMac& mac_;
    NodeId parent_;
    SleepyConfig config_;
    CsmaMac::ReceiveCallback upperRx_;
    sim::EventHandle pollTimer_;
    sim::EventHandle listenTimer_;
    bool started_ = false;
    bool expectingResponse_ = false;
    bool inListenWindow_ = false;
    bool gotFrameThisWindow_ = false;
    sim::Time currentInterval_ = 0;
    std::uint64_t pollsSent_ = 0;
};

}  // namespace tcplp::mac
