// CSMA-CA MAC with software link retries.
//
// Reproduces the paper's two MAC-level contributions:
//
//  1. *Software CSMA* (§4): the AT86RF233's hardware CSMA puts the radio in a
//     low-power state during backoff ("deaf listening"), so a node running
//     hardware CSMA misses incoming frames — fatal for TCP, which needs data
//     and ACKs flowing in opposite directions. TCPlp performs CSMA and link
//     retries in software, keeping the radio listening between attempts.
//     `Config::softwareCsma=false` restores the deaf behavior for ablation.
//
//  2. *Random delay between link retries* (§7.1): after a failed transmission
//     the sender waits uniform [0, d] before retrying, decorrelating
//     hidden-terminal collisions. `Config::retryDelayMax` is d.
//
// The MAC also implements the router side of Thread-style indirect
// messaging (§3.2): frames destined to a registered sleepy child are queued
// until the child polls with an 802.15.4 Data Request; the MAC ACK's
// "frame pending" bit tells the child whether to stay awake.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "tcplp/common/ring_deque.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::mac {

using phy::Frame;
using phy::FrameType;
using phy::NodeId;

struct CsmaConfig {
    // IEEE 802.15.4 unslotted CSMA-CA constants.
    int minBe = 3;
    int maxBe = 5;
    int maxCsmaBackoffs = 4;
    sim::Time backoffUnit = 320;   // aUnitBackoffPeriod = 20 symbols
    sim::Time ccaTime = 128;       // 8 symbols
    sim::Time turnaround = 192;    // aTurnaroundTime = 12 symbols
    sim::Time ackTimeout = 864;    // macAckWaitDuration = 54 symbols

    // Software link-retry policy (§7.1).
    int maxFrameRetries = 7;       // retransmissions after the first attempt
    sim::Time retryDelayMax = 0;   // "d": uniform extra delay between retries

    // false = emulate hardware CSMA's deaf listening (§4 ablation).
    bool softwareCsma = true;
    /// Sleepy end devices may park the radio during the long inter-retry
    /// delay (they expect no unsolicited frames); routers keep listening.
    bool sleepDuringRetryDelay = false;

    // Retry policy for indirect (queued-for-sleepy-child) frames. The paper
    // §9.5 enables link retries for indirect messages and retries them more
    // rapidly; they are capped by the child's wakeup window instead of d.
    int indirectMaxRetries = 4;
    sim::Time indirectRetryDelayMax = 4 * sim::kMillisecond;
    /// After in-window retries fail (the child fell back asleep), the frame
    /// returns to the indirect queue to ride the child's next data request —
    /// up to this many times before being dropped.
    int indirectRequeueLimit = 4;

    // CPU cost charged per MAC frame handled (header parsing, queueing).
    sim::Time cpuPerFrame = 80;

    /// A-MPDU-style frame aggregation: up to this many queued frames ride
    /// one channel acquisition — after a frame is ACKed on its first try,
    /// the next queued frame transmits after a single turnaround instead of
    /// a fresh CSMA backoff ladder (the way the ESP32-class studies batch
    /// frames per preamble). 1 = stock 802.15.4 behavior, bit-identical to
    /// the pre-aggregation MAC (no extra RNG draws, no event reordering).
    /// Any CCA failure or link retry ends the burst.
    int aggFrames = 1;

    /// Largest payload the MAC accepts in one frame. 802.15.4's 104 B by
    /// default; the ESP32-class link preset raises it together with the
    /// node's 6LoWPAN fragmentation budget (NodeConfig::macPayloadBudget) —
    /// the two must move in lockstep or send() rejects the fragments.
    std::size_t maxPayloadBytes = phy::kMaxMacPayloadBytes;
};

struct MacStats {
    std::uint64_t dataSent = 0;           // unique payloads attempted
    std::uint64_t dataDelivered = 0;      // payloads ACKed by peer
    std::uint64_t dataFailed = 0;         // payloads dropped after retries
    std::uint64_t transmissions = 0;      // frames radiated (incl. retries)
    std::uint64_t retries = 0;            // retransmission attempts
    std::uint64_t ccaFailures = 0;        // channel-access failures
    std::uint64_t acksSent = 0;
    std::uint64_t dataRequestsHeard = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t aggregatedFrames = 0;   // frames sent without a CSMA ladder
};

/// Result of a MAC send, reported to the layer above.
struct SendResult {
    bool success = false;
    int transmissions = 0;  // CSMA attempts that radiated the frame
};

class CsmaMac {
public:
    using SendCallback = std::function<void(const SendResult&)>;
    using ReceiveCallback = std::function<void(NodeId src, const PacketBuffer& payload)>;

    CsmaMac(phy::Radio& radio, CsmaConfig config = {});

    NodeId id() const { return radio_.id(); }
    phy::Radio& radio() { return radio_; }
    const CsmaConfig& config() const { return config_; }
    CsmaConfig& mutableConfig() { return config_; }
    const MacStats& stats() const { return stats_; }
    sim::Simulator& simulator() { return radio_.simulator(); }

    /// Queues a payload for `dst`. Payload must fit one frame (the 6LoWPAN
    /// layer fragments above this); it is shared, not copied, into the TX
    /// queue. `done` fires on final success/failure.
    void send(NodeId dst, PacketBuffer payload, SendCallback done = nullptr);

    /// Payloads from frames addressed to this node (or broadcast).
    void setReceiveCallback(ReceiveCallback cb) { receiveCallback_ = std::move(cb); }

    /// Per-neighbor TX outcome feed for link-liveness tracking: fires once
    /// per direct unicast data payload with the final verdict — acked, or
    /// dropped after exhausting the retry ladder. Indirect (sleepy-child)
    /// deliveries are excluded: a missed wakeup window says nothing about
    /// the link. Fired before the SendCallback so the routing layer's view
    /// is fresh when the sender decides what to do with the rest of the
    /// datagram.
    using TxOutcomeCallback = std::function<void(NodeId dst, bool acked)>;
    void setTxOutcomeCallback(TxOutcomeCallback cb) { txOutcome_ = std::move(cb); }

    /// Fires whenever the TX queue drains (used by the sleepy wrapper to
    /// decide when the radio may sleep).
    void setIdleCallback(std::function<void()> cb) { idleCallback_ = std::move(cb); }

    /// Called by a duty-cycled child's MAC: emit a Data Request poll to
    /// `parent` and report whether the parent's ACK had the pending bit.
    void sendDataRequest(NodeId parent, std::function<void(bool acked, bool pending)> done);

    // --- Router-side duty-cycling support (indirect messages, §3.2) ------
    void registerSleepyChild(NodeId child);
    void unregisterSleepyChild(NodeId child);
    bool isSleepyChild(NodeId child) const { return sleepyChildren_.count(child) > 0; }
    std::size_t indirectQueueDepth(NodeId child) const;
    /// Any frame for `child` anywhere in the MAC (indirect queue, main
    /// queue, or in flight)? Drives the pending bit on poll ACKs.
    bool hasTrafficFor(NodeId child) const;

    /// Pending-bit observed on the most recent ACK received for a frame we
    /// sent (a polling child uses this to decide whether to keep listening).
    bool lastAckPending() const { return lastAckPending_; }

    bool busy() const { return current_.has_value() || !queue_.empty(); }

    /// Crash semantics (node reboot): abandons the in-flight frame, cancels
    /// pending waits, and empties every queue without firing completion
    /// callbacks. The `!current_` guards on radio done-callbacks make this
    /// safe even with a frame upload in progress. Sleepy-child registrations
    /// survive (they model the parent's config, not volatile state).
    void reset();

private:
    struct SendOp {
        Frame frame;
        SendCallback done;
        bool indirect = false;   // being delivered in response to a poll
        int csmaBackoffs = 0;    // NB in the 802.15.4 state machine
        int be = 3;
        int retries = 0;
        int transmissions = 0;
        int requeues = 0;        // times returned to the indirect queue
        std::function<void(bool, bool)> pollDone;  // for data requests
    };

    void startNext();
    void csmaAttempt();
    void backoffTimerStart(sim::Time backoff);
    void waitThen(sim::Time delay, std::function<void()> fn);
    void transmitCurrent();
    void ackTimedOut();
    void scheduleRetry(SendOp& op);
    void finishCurrent(bool success);
    void handleFrame(const Frame& frame);
    void deliverData(const Frame& frame);
    void serveDataRequest(NodeId child);
    int maxRetriesFor(const SendOp& op) const;
    sim::Time retryDelayFor(const SendOp& op);

    phy::Radio& radio_;
    CsmaConfig config_;
    MacStats stats_;
    ReceiveCallback receiveCallback_;
    TxOutcomeCallback txOutcome_;
    std::function<void()> idleCallback_;

    // Direct-send FIFO: a RingDeque so the constant drain-to-empty cycle
    // reuses its slots (std::deque would re-allocate its chunk every cycle).
    // The indirect queues below stay std::deque — they exist only for
    // sleepy children, far off the dense-mesh hot path.
    RingDeque<SendOp> queue_;
    std::optional<SendOp> current_;
    sim::EventHandle waitHandle_;  // drives backoff / retry / ack-wait waits
    bool awaitingAck_ = false;
    /// Frames the current channel acquisition may still carry without a
    /// fresh CSMA ladder (config_.aggFrames - 1 at acquisition, counts down).
    int burstRemaining_ = 0;
    /// True only while finishCurrent runs completion callbacks with a burst
    /// still open: startNext() becomes a no-op so a frame queued by the
    /// callback tailgates the burst instead of starting its own ladder.
    bool deferStarts_ = false;
    std::uint8_t txSeq_ = 0;
    bool lastAckPending_ = false;

    // Duplicate suppression: last delivered sequence number per neighbor.
    std::map<NodeId, std::uint8_t> lastDeliveredSeq_;
    std::set<NodeId> sleepyChildren_;
    std::map<NodeId, std::deque<SendOp>> indirectQueues_;
    std::map<NodeId, sim::Time> lastPollAt_;
};

}  // namespace tcplp::mac
