#include "tcplp/mac/csma.hpp"

#include <algorithm>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"

namespace tcplp::mac {

namespace {
/// ACK air time at the rate of the channel this radio is attached to (the
/// 802.15.4 default reproduces the historical constant exactly).
sim::Time ackAirTime(phy::Radio& radio) {
    Frame ack;
    ack.type = FrameType::kAck;
    return radio.channel().frameAirTime(ack);
}
}  // namespace

CsmaMac::CsmaMac(phy::Radio& radio, CsmaConfig config)
    : radio_(radio), config_(config) {
    radio_.setReceiveCallback([this](const Frame& f) { handleFrame(f); });
    // Hardware auto-ACK pending bit: set when any frame for the polling
    // sleepy child is held anywhere in the MAC (§3.2).
    radio_.setPendingBitProvider([this](NodeId src, FrameType) {
        return isSleepyChild(src) && hasTrafficFor(src);
    });
}

void CsmaMac::send(NodeId dst, PacketBuffer payload, SendCallback done) {
    TCPLP_ASSERT(payload.size() <= config_.maxPayloadBytes);
    SendOp op;
    op.frame.type = FrameType::kData;
    op.frame.src = id();
    op.frame.dst = dst;
    op.frame.seq = ++txSeq_;
    op.frame.ackRequest = (dst != phy::kBroadcast);
    op.frame.payload = std::move(payload);
    op.done = std::move(done);
    ++stats_.dataSent;

    if (isSleepyChild(dst)) {
        // Thread-style indirect message: hold until the child polls (§3.2).
        // Exception: if the child polled moments ago its receive window is
        // still open — deliver immediately and chain with the pending bit
        // (§9.5's "prioritize indirect messages").
        const auto lastPoll = lastPollAt_.find(dst);
        if (lastPoll != lastPollAt_.end() &&
            simulator().now() - lastPoll->second < 25 * sim::kMillisecond) {
            op.indirect = true;
            queue_.push_front(std::move(op));
            if (!current_) startNext();
            return;
        }
        indirectQueues_[dst].push_back(std::move(op));
        return;
    }
    queue_.push_back(std::move(op));
    if (!current_) startNext();
}

void CsmaMac::sendDataRequest(NodeId parent, std::function<void(bool, bool)> done) {
    SendOp op;
    op.frame.type = FrameType::kDataRequest;
    op.frame.src = id();
    op.frame.dst = parent;
    op.frame.seq = ++txSeq_;
    op.frame.ackRequest = true;
    op.pollDone = std::move(done);
    op.indirect = true;  // polls use the rapid-retry policy (§9.5)
    queue_.push_front(std::move(op));
    if (!current_) startNext();
}

void CsmaMac::registerSleepyChild(NodeId child) { sleepyChildren_.insert(child); }

void CsmaMac::unregisterSleepyChild(NodeId child) {
    sleepyChildren_.erase(child);
    // Release anything queued for the (now always-on) child.
    auto it = indirectQueues_.find(child);
    if (it == indirectQueues_.end()) return;
    for (auto& op : it->second) queue_.push_back(std::move(op));
    indirectQueues_.erase(it);
    if (!current_) startNext();
}

std::size_t CsmaMac::indirectQueueDepth(NodeId child) const {
    auto it = indirectQueues_.find(child);
    return it == indirectQueues_.end() ? 0 : it->second.size();
}

bool CsmaMac::hasTrafficFor(NodeId child) const {
    if (indirectQueueDepth(child) > 0) return true;
    if (current_ && current_->frame.type == FrameType::kData && current_->frame.dst == child)
        return true;
    for (const SendOp& op : queue_)
        if (op.frame.type == FrameType::kData && op.frame.dst == child) return true;
    return false;
}

void CsmaMac::startNext() {
    // A completion callback is running with an aggregation burst open:
    // frames it queues wait for finishCurrent's burst check (they tailgate
    // the proven channel claim) instead of opening a fresh CSMA ladder.
    if (deferStarts_) return;
    if (current_ || queue_.empty()) {
        if (!current_ && queue_.empty() && idleCallback_) idleCallback_();
        return;
    }
    current_ = std::move(queue_.front());
    queue_.pop_front();
    current_->csmaBackoffs = 0;
    current_->be = config_.minBe;
    // A fresh channel acquisition opens a new aggregation burst: up to
    // aggFrames - 1 follow-on frames may skip their own CSMA ladder.
    burstRemaining_ = std::max(0, config_.aggFrames - 1);
    csmaAttempt();
}

void CsmaMac::csmaAttempt() {
    TCPLP_ASSERT(current_);
    const sim::Time backoff =
        sim::Time(simulator().rng().uniformInt(1ULL << current_->be)) * config_.backoffUnit;

    if (!config_.softwareCsma) {
        // Deaf listening: hardware CSMA parks the radio in a low-power state
        // during backoff, so incoming frames are missed (§4).
        radio_.setSleeping(true);
    } else {
        radio_.setSleeping(false);
    }

    backoffTimerStart(backoff);
}

void CsmaMac::backoffTimerStart(sim::Time backoff) {
    waitThen(backoff, [this] {
        radio_.setSleeping(false);  // CCA requires the receiver on
        waitThen(config_.ccaTime, [this] {
            if (!current_) return;
            if (radio_.channelClear()) {
                transmitCurrent();
                return;
            }
            ++current_->csmaBackoffs;
            current_->be = std::min(current_->be + 1, config_.maxBe);
            if (current_->csmaBackoffs > config_.maxCsmaBackoffs) {
                ++stats_.ccaFailures;
                scheduleRetry(*current_);
            } else {
                csmaAttempt();
            }
        });
    });
}

void CsmaMac::waitThen(sim::Time delay, std::function<void()> fn) {
    waitHandle_.cancel();
    waitHandle_ = simulator().schedule(delay, std::move(fn));
}

void CsmaMac::transmitCurrent() {
    TCPLP_ASSERT(current_);
    radio_.transmit(current_->frame, [this](bool radiated) {
        if (!current_) return;
        if (!radiated) {
            // Channel went busy during the frame upload: another CSMA round.
            ++current_->csmaBackoffs;
            current_->be = std::min(current_->be + 1, config_.maxBe);
            if (current_->csmaBackoffs > config_.maxCsmaBackoffs) {
                ++stats_.ccaFailures;
                scheduleRetry(*current_);
            } else {
                csmaAttempt();
            }
            return;
        }
        ++stats_.transmissions;
        ++current_->transmissions;
        if (!current_->frame.ackRequest) {
            finishCurrent(true);
            return;
        }
        awaitingAck_ = true;
        waitThen(config_.turnaround + ackAirTime(radio_) + config_.ackTimeout,
                 [this] { ackTimedOut(); });
    });
}

void CsmaMac::ackTimedOut() {
    if (!current_ || !awaitingAck_) return;
    awaitingAck_ = false;
    scheduleRetry(*current_);
}

int CsmaMac::maxRetriesFor(const SendOp& op) const {
    return op.indirect ? config_.indirectMaxRetries : config_.maxFrameRetries;
}

sim::Time CsmaMac::retryDelayFor(const SendOp& op) {
    const sim::Time d = op.indirect ? config_.indirectRetryDelayMax : config_.retryDelayMax;
    if (d <= 0) return 0;
    return simulator().rng().uniformRange(0, d);
}

void CsmaMac::scheduleRetry(SendOp& op) {
    ++op.retries;
    if (op.retries > maxRetriesFor(op)) {
        finishCurrent(false);
        return;
    }
    ++stats_.retries;
    op.csmaBackoffs = 0;
    op.be = config_.minBe;
    // The random inter-retry delay that defuses hidden terminals (§7.1).
    const sim::Time delay = retryDelayFor(op);
    if (!config_.softwareCsma || config_.sleepDuringRetryDelay)
        radio_.setSleeping(true);
    waitThen(delay, [this] {
        if (current_) csmaAttempt();
    });
}

void CsmaMac::reset() {
    waitHandle_.cancel();
    current_.reset();
    awaitingAck_ = false;
    burstRemaining_ = 0;
    deferStarts_ = false;
    queue_.clear();
    indirectQueues_.clear();
    lastDeliveredSeq_.clear();
    lastPollAt_.clear();
    lastAckPending_ = false;
}

void CsmaMac::finishCurrent(bool success) {
    TCPLP_ASSERT(current_);
    SendOp op = std::move(*current_);
    current_.reset();
    awaitingAck_ = false;
    waitHandle_.cancel();

    // A failed indirect data frame usually means the sleepy child's listen
    // window closed; park it back in the indirect queue for the next data
    // request instead of dropping (§9.5's indirect-message improvements).
    if (!success && op.indirect && op.frame.type == FrameType::kData &&
        isSleepyChild(op.frame.dst) && op.requeues < config_.indirectRequeueLimit) {
        ++op.requeues;
        op.retries = 0;
        op.transmissions = 0;
        indirectQueues_[op.frame.dst].push_front(std::move(op));
        startNext();
        return;
    }

    if (op.frame.type == FrameType::kData) {
        if (success)
            ++stats_.dataDelivered;
        else
            ++stats_.dataFailed;
        // Link-liveness feed: direct unicast payloads only. Broadcasts are
        // unacked (no signal) and indirect frames answer to the child's
        // wakeup schedule, not the link.
        if (txOutcome_ && op.frame.ackRequest && !op.indirect)
            txOutcome_(op.frame.dst, success);
    }
    // A-MPDU-style aggregation: a frame that was ACKed without needing a
    // retry proves the channel is still ours — chain the next queued frame
    // after one turnaround, skipping the CSMA backoff ladder entirely. Any
    // retry or CCA failure voids the claim and the burst ends. While the
    // completion callbacks run, starts are deferred so that a follow-on
    // frame they queue (the datapath hands fragments over one completion at
    // a time) tailgates the burst instead of opening its own ladder. At
    // aggFrames = 1, burstEligible is always false, deferStarts_ never
    // arms, and this path is bit-identical to the pre-aggregation MAC.
    const bool burstEligible = success && op.retries == 0 && burstRemaining_ > 0;
    deferStarts_ = burstEligible;
    if (op.pollDone) op.pollDone(success, lastAckPending_);
    if (op.done) op.done(SendResult{success, op.transmissions});
    deferStarts_ = false;

    if (burstEligible && !current_ && !queue_.empty()) {
        --burstRemaining_;
        ++stats_.aggregatedFrames;
        current_ = std::move(queue_.front());
        queue_.pop_front();
        current_->csmaBackoffs = 0;
        current_->be = config_.minBe;
        waitThen(config_.turnaround, [this] {
            if (!current_) return;
            // Our own radio may be busy ACKing a frame received during the
            // turnaround (bidirectional TCP traffic makes this routine on a
            // relay). The burst degrades to a fresh CSMA ladder for this
            // frame instead of colliding with our own ACK transmission.
            if (radio_.txIdle()) {
                transmitCurrent();
            } else {
                csmaAttempt();
            }
        });
        return;
    }
    startNext();
}

void CsmaMac::handleFrame(const Frame& frame) {
    radio_.energy().addCpuBusy(config_.cpuPerFrame);

    if (frame.type == FrameType::kAck) {
        if (awaitingAck_ && current_ && frame.src == current_->frame.dst &&
            frame.seq == current_->frame.seq) {
            awaitingAck_ = false;
            lastAckPending_ = frame.framePending;
            finishCurrent(true);
        }
        return;
    }

    if (frame.dst != id() && frame.dst != phy::kBroadcast) return;

    // Note: acknowledgment of unicast frames happens in radio hardware
    // (phy::Radio auto-ACK), as on the AT86RF233.

    if (frame.type == FrameType::kDataRequest) {
        ++stats_.dataRequestsHeard;
        lastPollAt_[frame.src] = simulator().now();
        serveDataRequest(frame.src);
        return;
    }

    // Data frame.
    auto it = lastDeliveredSeq_.find(frame.src);
    if (it != lastDeliveredSeq_.end() && it->second == frame.seq) {
        // Link-layer retransmission of a frame whose ACK was lost.
        ++stats_.duplicatesSuppressed;
        return;
    }
    lastDeliveredSeq_[frame.src] = frame.seq;
    deliverData(frame);
}

void CsmaMac::deliverData(const Frame& frame) {
    if (receiveCallback_) receiveCallback_(frame.src, frame.payload);
}

void CsmaMac::serveDataRequest(NodeId child) {
    auto it = indirectQueues_.find(child);
    if (it == indirectQueues_.end() || it->second.empty()) return;

    // Appendix C: unlike stock OpenThread (one frame per poll), flush the
    // whole queue, chaining frames with the pending bit so the child keeps
    // listening until the burst ends.
    std::deque<SendOp>& q = it->second;
    std::size_t remaining = q.size();
    std::deque<SendOp> batch;
    while (!q.empty()) {
        SendOp op = std::move(q.front());
        q.pop_front();
        --remaining;
        op.indirect = true;
        op.frame.framePending = remaining > 0;
        batch.push_back(std::move(op));
    }
    // Indirect frames jump the queue (§9.5 improvement: prioritize indirect
    // messages so the child's listen window is not wasted).
    for (auto rit = batch.rbegin(); rit != batch.rend(); ++rit)
        queue_.push_front(std::move(*rit));
    if (!current_) startNext();
}

}  // namespace tcplp::mac
