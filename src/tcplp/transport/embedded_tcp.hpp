// Simplified embedded TCP, in the style of the stacks TCPlp displaces.
//
// Reproduces the baseline rows of Tables 1 and 7: uIP and BLIP allow only a
// single outstanding (unACKed) segment — no sliding window, no congestion
// control, no SACK, no delayed ACKs, no out-of-order reassembly. Profiles:
//
//            | uIP profile          | BLIP profile
//  ----------+----------------------+----------------------
//  window    | 1 segment            | 1 segment
//  MSS       | 1 frame (negotiated) | 1 frame (no MSS option)
//  RTT est.  | yes (RFC 793 style)  | no (fixed 3 s RTO)
//  OOO data  | dropped              | dropped
//
// The wire format is ordinary TCP (tcp::Segment), so an embedded endpoint
// interoperates with a full-scale TCPlp peer — exactly the situation of the
// prior studies the paper compares against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "tcplp/ip6/netif.hpp"
#include "tcplp/sim/simulator.hpp"
#include "tcplp/tcp/segment.hpp"

namespace tcplp::transport {

enum class EmbeddedProfile : std::uint8_t { kUip, kBlip };

struct EmbeddedTcpConfig {
    EmbeddedProfile profile = EmbeddedProfile::kUip;
    std::uint16_t mss = 60;  // ~1 frame of payload after headers
    sim::Time initialRto = 3 * sim::kSecond;
    sim::Time minRto = 1 * sim::kSecond;
    sim::Time maxRto = 60 * sim::kSecond;
    int maxRetries = 8;
    std::size_t sendQueueBytes = 2048;  // application backlog (not in flight)
};

struct EmbeddedTcpStats {
    std::uint64_t segsSent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t bytesAcked = 0;
    std::uint64_t oooDropped = 0;  // segments discarded for lack of reassembly
};

/// Client-side stop-and-wait TCP endpoint (enough protocol to run the
/// paper's unidirectional bulk-transfer and sensor workloads).
class EmbeddedTcpSocket {
public:
    using DataCallback = std::function<void(BytesView)>;
    using EventCallback = std::function<void()>;

    EmbeddedTcpSocket(ip6::NetIf& netif, EmbeddedTcpConfig config);

    void connect(const ip6::Address& dst, std::uint16_t dstPort);
    std::size_t send(BytesView data);
    void close();

    void setOnConnected(EventCallback cb) { onConnected_ = std::move(cb); }
    void setOnData(DataCallback cb) { onData_ = std::move(cb); }
    void setOnError(EventCallback cb) { onError_ = std::move(cb); }

    bool established() const { return established_; }
    const EmbeddedTcpStats& stats() const { return stats_; }
    std::size_t backlog() const { return sendQueue_.size(); }

private:
    void input(const ip6::Packet& packet);
    void sendSyn();
    void trySendNext();
    void transmitCurrent();
    void retransmitTimeout();
    void emit(tcp::Segment& seg);
    void updateRtt(sim::Time sample);

    ip6::NetIf& netif_;
    EmbeddedTcpConfig config_;
    EmbeddedTcpStats stats_;

    ip6::Address remoteAddr_{};
    std::uint16_t remotePort_ = 0;
    std::uint16_t localPort_ = 0;

    bool synSent_ = false;
    bool established_ = false;
    bool closed_ = false;
    std::uint32_t sndNxt_ = 0;
    std::uint32_t rcvNxt_ = 0;

    std::deque<std::uint8_t> sendQueue_;  // bytes not yet transmitted
    Bytes inFlight_;                      // the single outstanding segment
    std::uint32_t inFlightSeq_ = 0;
    int retries_ = 0;
    bool awaitingAck_ = false;
    sim::Time sentAt_ = 0;
    bool retransmitted_ = false;  // Karn's rule: skip RTT sample

    sim::Time srtt_ = 0;
    sim::Time rttvar_ = 0;
    sim::Time rto_;
    sim::Timer rexmitTimer_;

    EventCallback onConnected_;
    EventCallback onError_;
    DataCallback onData_;
};

}  // namespace tcplp::transport
