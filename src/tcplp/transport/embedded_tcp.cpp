#include "tcplp/transport/embedded_tcp.hpp"

#include <algorithm>

#include "tcplp/common/log.hpp"

namespace tcplp::transport {

EmbeddedTcpSocket::EmbeddedTcpSocket(ip6::NetIf& netif, EmbeddedTcpConfig config)
    : netif_(netif),
      config_(config),
      rto_(config.initialRto),
      rexmitTimer_(netif.simulator(), [this] { retransmitTimeout(); }) {
    netif_.registerProtocol(ip6::kProtoTcp, [this](const ip6::Packet& p) { input(p); });
    localPort_ = 50000;
}

void EmbeddedTcpSocket::connect(const ip6::Address& dst, std::uint16_t dstPort) {
    remoteAddr_ = dst;
    remotePort_ = dstPort;
    sndNxt_ = 100;  // fixed ISS: these stacks have no randomness to spare
    sendSyn();
}

void EmbeddedTcpSocket::sendSyn() {
    tcp::Segment syn;
    syn.flags.syn = true;
    syn.seq = sndNxt_;
    if (config_.profile == EmbeddedProfile::kUip) syn.mssOption = config_.mss;
    synSent_ = true;
    awaitingAck_ = true;
    inFlightSeq_ = sndNxt_;
    sentAt_ = netif_.simulator().now();
    retransmitted_ = false;
    emit(syn);
    rexmitTimer_.start(rto_);
}

std::size_t EmbeddedTcpSocket::send(BytesView data) {
    const std::size_t room = config_.sendQueueBytes - sendQueue_.size();
    const std::size_t n = std::min(room, data.size());
    sendQueue_.insert(sendQueue_.end(), data.begin(), data.begin() + long(n));
    if (established_ && !awaitingAck_) trySendNext();
    return n;
}

void EmbeddedTcpSocket::close() { closed_ = true; }

void EmbeddedTcpSocket::trySendNext() {
    if (!established_ || awaitingAck_ || sendQueue_.empty()) return;
    const std::size_t len = std::min<std::size_t>(config_.mss, sendQueue_.size());
    inFlight_.assign(sendQueue_.begin(), sendQueue_.begin() + long(len));
    sendQueue_.erase(sendQueue_.begin(), sendQueue_.begin() + long(len));
    inFlightSeq_ = sndNxt_;
    retries_ = 0;
    retransmitted_ = false;
    awaitingAck_ = true;
    transmitCurrent();
}

void EmbeddedTcpSocket::transmitCurrent() {
    tcp::Segment seg;
    seg.seq = inFlightSeq_;
    seg.payload = inFlight_;
    seg.flags.psh = true;
    sentAt_ = netif_.simulator().now();
    emit(seg);
    rexmitTimer_.start(rto_);
}

void EmbeddedTcpSocket::retransmitTimeout() {
    if (!awaitingAck_) return;
    ++retries_;
    if (retries_ > config_.maxRetries) {
        awaitingAck_ = false;
        established_ = false;
        if (onError_) onError_();
        return;
    }
    ++stats_.retransmissions;
    retransmitted_ = true;
    rto_ = std::min(rto_ * 2, config_.maxRto);
    if (synSent_ && !established_) {
        tcp::Segment syn;
        syn.flags.syn = true;
        syn.seq = inFlightSeq_;
        if (config_.profile == EmbeddedProfile::kUip) syn.mssOption = config_.mss;
        emit(syn);
        rexmitTimer_.start(rto_);
    } else {
        transmitCurrent();
    }
}

void EmbeddedTcpSocket::emit(tcp::Segment& seg) {
    seg.srcPort = localPort_;
    seg.dstPort = remotePort_;
    if (established_ || (!seg.flags.syn)) {
        seg.flags.ack = true;
        seg.ack = rcvNxt_;
    }
    seg.setWindowBytes(0x0400, 0);  // one segment's worth: the whole point
    ++stats_.segsSent;
    ip6::Packet p;
    p.src = netif_.address();
    p.dst = remoteAddr_;
    p.nextHeader = ip6::kProtoTcp;
    p.payload = seg.encode();
    netif_.sendPacket(std::move(p));
    netif_.setExpectingResponse(awaitingAck_);
}

void EmbeddedTcpSocket::updateRtt(sim::Time sample) {
    if (config_.profile == EmbeddedProfile::kBlip) return;  // no RTT estimation
    if (retransmitted_) return;                              // Karn's rule
    if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
    } else {
        const sim::Time err = sample - srtt_;
        srtt_ += err / 8;
        rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
    }
    rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.minRto, config_.maxRto);
}

void EmbeddedTcpSocket::input(const ip6::Packet& packet) {
    const auto segOpt = tcp::Segment::decode(packet.payload);
    if (!segOpt) return;
    const tcp::Segment& seg = *segOpt;

    if (seg.flags.rst) {
        established_ = false;
        awaitingAck_ = false;
        rexmitTimer_.stop();
        if (onError_) onError_();
        return;
    }

    if (synSent_ && !established_ && seg.flags.syn && seg.flags.ack) {
        if (seg.ack != inFlightSeq_ + 1) return;
        sndNxt_ = seg.ack;
        rcvNxt_ = seg.seq + 1;
        established_ = true;
        awaitingAck_ = false;
        rexmitTimer_.stop();
        updateRtt(netif_.simulator().now() - sentAt_);
        // ACK the SYN+ACK.
        tcp::Segment ack;
        ack.seq = sndNxt_;
        emit(ack);
        if (onConnected_) onConnected_();
        trySendNext();
        return;
    }

    if (!established_) return;

    // ACK handling: single outstanding segment.
    if (seg.flags.ack && awaitingAck_ &&
        tcp::seqGe(seg.ack, inFlightSeq_ + std::uint32_t(inFlight_.size()))) {
        awaitingAck_ = false;
        rexmitTimer_.stop();
        sndNxt_ = inFlightSeq_ + std::uint32_t(inFlight_.size());
        stats_.bytesAcked += inFlight_.size();
        updateRtt(netif_.simulator().now() - sentAt_);
        retries_ = 0;
        inFlight_.clear();
        trySendNext();
    }

    // Data handling: in-order only, immediate ACK, no reassembly.
    if (!seg.payload.empty()) {
        if (seg.seq == rcvNxt_) {
            rcvNxt_ += std::uint32_t(seg.payload.size());
            if (onData_) onData_(seg.payload);
        } else {
            ++stats_.oooDropped;
        }
        tcp::Segment ack;
        ack.seq = sndNxt_;
        emit(ack);
    }
}

}  // namespace tcplp::transport
