// Anchor translation unit; see udp.hpp and embedded_tcp.hpp.
#include "tcplp/transport/udp.hpp"
