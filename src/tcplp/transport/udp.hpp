// Minimal UDP: the substrate for CoAP and for unreliable ("nonconfirmable")
// sensor transport (§9.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "tcplp/ip6/netif.hpp"

namespace tcplp::transport {

constexpr std::size_t kUdpHeaderBytes = 8;

struct UdpDatagram {
    ip6::Address srcAddr;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    Bytes payload;
};

class UdpStack {
public:
    using Handler = std::function<void(const UdpDatagram&)>;

    explicit UdpStack(ip6::NetIf& netif) : netif_(netif) {
        netif_.registerProtocol(ip6::kProtoUdp,
                                [this](const ip6::Packet& p) { input(p); });
    }

    ip6::NetIf& netif() { return netif_; }
    sim::Simulator& simulator() { return netif_.simulator(); }

    void bind(std::uint16_t port, Handler handler) { handlers_[port] = std::move(handler); }
    std::uint16_t allocatePort() { return nextEphemeral_++; }

    void sendTo(const ip6::Address& dst, std::uint16_t dstPort, std::uint16_t srcPort,
                BytesView payload) {
        ip6::Packet p;
        p.src = netif_.address();
        p.dst = dst;
        p.nextHeader = ip6::kProtoUdp;
        Bytes header;
        header.reserve(kUdpHeaderBytes);
        putU16(header, srcPort);
        putU16(header, dstPort);
        putU16(header, std::uint16_t(kUdpHeaderBytes + payload.size()));
        putU16(header, 0);  // checksum: corruption is modeled as loss
        // Single origination copy with headroom for the layers below.
        p.payload = PacketBuffer::compose(header, payload);
        netif_.sendPacket(std::move(p));
    }

private:
    void input(const ip6::Packet& p) {
        if (p.payload.size() < kUdpHeaderBytes) return;
        UdpDatagram d;
        d.srcAddr = p.src;
        d.srcPort = getU16(p.payload, 0);
        d.dstPort = getU16(p.payload, 2);
        d.payload.assign(p.payload.begin() + kUdpHeaderBytes, p.payload.end());  // app copy
        auto it = handlers_.find(d.dstPort);
        if (it != handlers_.end()) it->second(d);
    }

    ip6::NetIf& netif_;
    std::map<std::uint16_t, Handler> handlers_;
    std::uint16_t nextEphemeral_ = 40000;
};

}  // namespace tcplp::transport
