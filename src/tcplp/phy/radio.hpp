// AT86RF233-style radio model.
//
// Key calibrated behaviors from the paper:
//  * 250 kb/s air rate, 127 B frames (§5, Table 5).
//  * SPI transfer overhead roughly doubles the effective per-frame cost:
//    a full frame takes 4.1 ms in the air but 8.2 ms end to end (§6.4). We
//    model the SPI copy as a per-byte CPU-busy delay before transmission and
//    after reception.
//  * Optional "deaf listening": the real radio's hardware CSMA drops to a
//    low-power state during backoff and cannot hear incoming frames (§4).
//    TCPlp's fix is software CSMA that keeps the radio in listen mode; both
//    modes are implemented so the ablation bench can quantify the fix.
#pragma once

#include <functional>

#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/energy.hpp"
#include "tcplp/phy/frame.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::phy {

class Radio {
public:
    Radio(sim::Simulator& simulator, Channel& channel, NodeId id, Position pos);

    NodeId id() const { return id_; }
    const Position& position() const { return position_; }
    /// Moves the radio; the channel re-files it in the spatial grid index.
    void setPosition(Position pos);
    RadioState state() const { return state_; }
    /// True when transmit() may be called right now: no frame being loaded
    /// or radiated. The MAC's burst path checks this before skipping CCA —
    /// this radio may be mid-ACK for a frame it just received.
    bool txIdle() const { return !txBusy_ && state_ != RadioState::kTx; }
    EnergyMeter& energy() { return energy_; }
    const EnergyMeter& energy() const { return energy_; }
    sim::Simulator& simulator() { return simulator_; }
    Channel& channel() { return channel_; }

    /// SPI transfer time for `bytes` bytes between MCU and radio FIFO.
    sim::Time spiTime(std::size_t bytes) const {
        return sim::Time(double(bytes) * spiMicrosPerByte_);
    }
    void setSpiMicrosPerByte(double v) { spiMicrosPerByte_ = v; }

    /// Moves the radio between SLEEP and LISTEN. Ignored mid-TX/RX.
    void setSleeping(bool sleeping);
    bool sleeping() const { return state_ == RadioState::kSleep; }

    /// Power rail (fault injection). Powering off forces SLEEP, abandons any
    /// in-flight RX lock, and refuses transmissions until powered back on;
    /// setSleeping(false) is a no-op while unpowered. Powering on returns
    /// the transceiver to LISTEN.
    void setPowered(bool on);
    bool powered() const { return powered_; }

    /// Loads the frame over SPI (CPU busy), re-checks the channel at
    /// carrier-up time (as the AT86RF233's TX_ARET sequence does after the
    /// frame upload), then radiates. `done(true)` fires when the carrier
    /// stops; `done(false)` fires immediately if the channel was busy or a
    /// reception was in progress at carrier-up — the MAC should back off.
    void transmit(const Frame& frame, std::function<void(bool radiated)> done);

    bool transmitting() const { return state_ == RadioState::kTx; }
    bool receiving() const { return state_ == RadioState::kRx; }

    /// Clear-channel assessment (CCA). A sleeping radio cannot sense.
    bool channelClear() const;

    /// Frames that survived geometry, collisions, and fading arrive here
    /// after the SPI readout delay.
    void setReceiveCallback(std::function<void(const Frame&)> cb) {
        receiveCallback_ = std::move(cb);
    }

    /// Hardware acknowledgment (AT86RF233 AACK): unicast frames addressed
    /// to this radio are ACKed aTurnaroundTime after reception, without
    /// waiting for the MCU to read the frame out over SPI. The MAC supplies
    /// the "frame pending" bit via the provider (indirect-queue state).
    void setAutoAck(bool enabled) { autoAck_ = enabled; }
    void setPendingBitProvider(std::function<bool(NodeId src, FrameType type)> fn) {
        pendingBitProvider_ = std::move(fn);
    }
    std::uint64_t autoAcksSent() const { return autoAcksSent_; }

    // --- Channel-facing interface -------------------------------------
    void airStarted(std::uint64_t txId);
    void airCollided();
    void airFinished(std::uint64_t txId, const Frame& frame, bool corrupted);

    std::uint64_t framesSent() const { return framesSent_; }
    std::uint64_t framesReceived() const { return framesReceived_; }

private:
    void changeState(RadioState next);
    /// Immediate carrier-up for `frame` (caller has done all gating).
    void radiate(const Frame& frame, std::function<void()> airDone);
    /// The state to return to when idle: LISTEN normally, SLEEP when the
    /// power rail is off.
    RadioState idleState() const { return powered_ ? RadioState::kListen : RadioState::kSleep; }

    sim::Simulator& simulator_;
    Channel& channel_;
    NodeId id_;
    Position position_;
    RadioState state_ = RadioState::kListen;
    EnergyMeter energy_;
    /// Calibrated so that a full-size 127 B frame costs ~8.2 ms end to end
    /// (air 4.26 ms + SPI + mean CSMA backoff + CCA), matching the paper's
    /// measured per-frame time (§6.4).
    double spiMicrosPerByte_ = 21.0;

    std::function<void(const Frame&)> receiveCallback_;
    std::function<bool(NodeId, FrameType)> pendingBitProvider_;
    bool autoAck_ = true;
    bool powered_ = true;
    bool txBusy_ = false;  // covers the SPI-load + air phases of transmit()
    // txBusy_ admits at most one transmit() in flight and radiate() asserts
    // no concurrent carrier, so the pending frame and completion callbacks
    // live here instead of inside scheduled closures — the event-queue
    // lambdas capture only `this` and stay within SmallFn's inline storage.
    Frame txFrame_;
    std::function<void(bool)> txDone_;
    std::function<void()> airDone_;
    // Reception attempt tracking (one frame at a time).
    std::uint64_t rxTxId_ = 0;
    bool rxCorrupted_ = false;
    std::uint64_t framesSent_ = 0;
    std::uint64_t framesReceived_ = 0;
    std::uint64_t autoAcksSent_ = 0;
};

}  // namespace tcplp::phy
