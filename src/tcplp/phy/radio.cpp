#include "tcplp/phy/radio.hpp"

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"

namespace tcplp::phy {

Radio::Radio(sim::Simulator& simulator, Channel& channel, NodeId id, Position pos)
    : simulator_(simulator), channel_(channel), id_(id), position_(pos) {
    channel_.addRadio(this);
}

void Radio::setPosition(Position pos) {
    const Position old = position_;
    position_ = pos;
    channel_.radioMoved(this, old);
}

void Radio::changeState(RadioState next) {
    if (next == state_) return;
    energy_.radioTransition(state_, next, simulator_.now());
    state_ = next;
}

void Radio::setSleeping(bool sleeping) {
    if (sleeping) {
        if (state_ == RadioState::kTx) return;  // cannot sleep mid-transmit
        if (state_ == RadioState::kRx) {
            // Abandon the in-flight reception attempt.
            rxTxId_ = 0;
        }
        changeState(RadioState::kSleep);
    } else if (state_ == RadioState::kSleep && powered_) {
        changeState(RadioState::kListen);
    }
}

void Radio::setPowered(bool on) {
    if (on == powered_) return;
    powered_ = on;
    if (!on) {
        // The rail drops instantly: any reception lock is lost and a frame
        // mid-air from this radio dies with the carrier (receivers stay
        // locked on the txId and see it end; rxTxId mismatch elsewhere is
        // impossible since the carrier object lives in the channel).
        rxTxId_ = 0;
        rxCorrupted_ = false;
        changeState(RadioState::kSleep);
    } else {
        changeState(RadioState::kListen);
    }
}

bool Radio::channelClear() const {
    if (state_ == RadioState::kSleep) return false;  // cannot sense while asleep
    if (state_ == RadioState::kRx) return false;     // mid-reception: busy
    if (state_ == RadioState::kTx) return false;     // own carrier up
    if (txBusy_) return false;                       // frame being loaded/ACK pending
    return channel_.clearAt(this);
}

void Radio::transmit(const Frame& frame, std::function<void(bool)> done) {
    TCPLP_ASSERT(state_ != RadioState::kTx);
    TCPLP_ASSERT(!txBusy_);
    if (!powered_) {
        // Unpowered transceiver: fail fast so the MAC backs off/retries.
        if (done) done(false);
        return;
    }
    txBusy_ = true;
    txFrame_ = frame;
    txDone_ = std::move(done);
    if (state_ == RadioState::kSleep) changeState(RadioState::kListen);

    // SPI load: the MCU copies the frame into the radio FIFO. This is the
    // overhead that halves effective throughput in §6.4. Hardware-generated
    // ACKs skip it. The radio keeps listening during the load.
    const sim::Time load = (frame.type == FrameType::kAck) ? 0 : spiTime(frame.mpduBytes());
    energy_.addCpuBusy(load);
    simulator_.schedule(load, [this] {
        // Final clear-channel check at carrier-up time: a frame may have
        // started (or be arriving at us) during the SPI load, or our own
        // hardware auto-ACK may be in the air.
        if (!powered_ || state_ == RadioState::kRx || state_ == RadioState::kTx ||
            !channel_.clearAt(this)) {
            txBusy_ = false;
            auto cb = std::move(txDone_);
            txDone_ = nullptr;
            if (cb) cb(false);
            return;
        }
        radiate(txFrame_, [this] {
            txBusy_ = false;
            auto cb = std::move(txDone_);
            txDone_ = nullptr;
            if (cb) cb(true);
        });
    });
}

void Radio::radiate(const Frame& frame, std::function<void()> airDone) {
    TCPLP_ASSERT(state_ != RadioState::kTx);
    changeState(RadioState::kTx);
    ++framesSent_;
    // airDone_ is necessarily empty here: it is only non-empty while a
    // carrier is up (state kTx), and that state is asserted away above.
    airDone_ = std::move(airDone);
    channel_.startTransmission(this, frame);
    simulator_.schedule(channel_.frameAirTime(frame), [this] {
        changeState(idleState());
        auto cb = std::move(airDone_);
        airDone_ = nullptr;
        if (cb) cb();
    });
}

void Radio::airStarted(std::uint64_t txId) {
    switch (state_) {
        case RadioState::kListen:
            // Begin a reception attempt on the new carrier.
            changeState(RadioState::kRx);
            rxTxId_ = txId;
            rxCorrupted_ = false;
            break;
        case RadioState::kRx:
            // A second audible carrier while receiving: collision. Both the
            // in-flight frame and the new one are lost at this radio.
            rxCorrupted_ = true;
            break;
        case RadioState::kSleep:
        case RadioState::kTx:
            break;  // deaf to the channel
    }
}

void Radio::airFinished(std::uint64_t txId, const Frame& frame, bool faded) {
    if (rxTxId_ != txId) return;  // we were not locked onto this frame
    const bool corrupted = rxCorrupted_ || faded;
    if (rxCorrupted_) channel_.noteCollision();
    rxTxId_ = 0;
    rxCorrupted_ = false;
    if (state_ == RadioState::kRx) changeState(idleState());
    if (corrupted) return;

    ++framesReceived_;

    // Hardware auto-ACK (AACK): fires aTurnaroundTime after the frame, in
    // parallel with the SPI readout below.
    if (autoAck_ && frame.ackRequest && frame.dst == id_ &&
        frame.type != FrameType::kAck) {
        Frame ack;
        ack.type = FrameType::kAck;
        ack.src = id_;
        ack.dst = frame.src;
        ack.seq = frame.seq;
        ack.framePending =
            pendingBitProvider_ ? pendingBitProvider_(frame.src, frame.type) : false;
        simulator_.schedule(192, [this, ack = std::move(ack)] {  // aTurnaroundTime = 12 symbols
            // The AACK engine bypasses the frame FIFO, so an in-progress
            // SPI upload (txBusy_) does not block it — only an actually
            // radiating or sleeping transceiver loses the ACK.
            if (state_ == RadioState::kSleep || state_ == RadioState::kTx) return;
            if (state_ == RadioState::kRx) rxTxId_ = 0;  // turnaround aborts RX
            ++autoAcksSent_;
            radiate(ack, nullptr);
        });
    }

    // SPI readout before the MAC sees the bytes (ACK frames are consumed by
    // the transceiver front-end without a readout).
    const sim::Time readout =
        (frame.type == FrameType::kAck) ? 32 : spiTime(frame.mpduBytes());
    energy_.addCpuBusy(readout);
    // Init-capture: a plain `[this, frame]` capture of the const-reference
    // parameter would give the closure a `const Frame` member, whose "move"
    // is a copy — init-capture deduces a mutable Frame, keeping the closure
    // nothrow-move-constructible and inside SmallFn's inline storage.
    simulator_.schedule(readout, [this, frame = frame] {
        if (receiveCallback_) receiveCallback_(frame);
    });
}

}  // namespace tcplp::phy
