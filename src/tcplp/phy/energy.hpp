// Duty-cycle accounting — the paper's power-consumption proxy (§9.2):
// "radio duty cycle, the proportion of time during which the radio was not
// in its low-power sleep mode" and "CPU duty cycle, the proportion of time
// during which a thread was executing".
#pragma once

#include <array>
#include <cstddef>

#include "tcplp/common/assert.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::phy {

enum class RadioState : std::uint8_t { kSleep, kListen, kRx, kTx };

class EnergyMeter {
public:
    /// Called by the radio on every state transition.
    void radioTransition(RadioState from, RadioState to, sim::Time now) {
        accumulate(from, now);
        (void)to;
        lastChange_ = now;
    }

    /// Charges CPU busy time (SPI transfers, protocol processing).
    void addCpuBusy(sim::Time duration) { cpuBusy_ += duration; }

    /// Closes the books for the current state up to `now` and returns the
    /// fraction of time since the last reset the radio spent out of SLEEP.
    double radioDutyCycle(RadioState current, sim::Time now) const {
        const sim::Time total = now - windowStart_;
        if (total <= 0) return 0.0;
        sim::Time active = stateTime_[idx(RadioState::kListen)] +
                           stateTime_[idx(RadioState::kRx)] +
                           stateTime_[idx(RadioState::kTx)];
        if (current != RadioState::kSleep) active += now - lastChange_;
        return double(active) / double(total);
    }

    double cpuDutyCycle(sim::Time now) const {
        const sim::Time total = now - windowStart_;
        return total > 0 ? double(cpuBusy_) / double(total) : 0.0;
    }

    sim::Time timeIn(RadioState s) const { return stateTime_[idx(s)]; }
    sim::Time txTime() const { return stateTime_[idx(RadioState::kTx)]; }

    /// Starts a fresh accounting window (used for hourly buckets in the
    /// full-day experiment, Fig. 10).
    void resetWindow(RadioState current, sim::Time now) {
        accumulate(current, now);
        stateTime_ = {};
        cpuBusy_ = 0;
        windowStart_ = now;
        lastChange_ = now;
    }

private:
    static std::size_t idx(RadioState s) { return static_cast<std::size_t>(s); }

    void accumulate(RadioState state, sim::Time now) {
        TCPLP_ASSERT(now >= lastChange_);
        stateTime_[idx(state)] += now - lastChange_;
    }

    std::array<sim::Time, 4> stateTime_{};
    sim::Time cpuBusy_ = 0;
    sim::Time windowStart_ = 0;
    sim::Time lastChange_ = 0;
};

}  // namespace tcplp::phy
