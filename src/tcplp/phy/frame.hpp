// IEEE 802.15.4 frame model.
//
// Frames carry real payload bytes; header sizes follow the paper's Table 6
// (23 B MAC header on data frames). The PHY prepends a 6-byte synchronization
// header (preamble + SFD + length), which matters for air-time accounting.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tcplp/common/bytes.hpp"
#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/sim/time.hpp"

namespace tcplp::phy {

/// Short (16-bit) 802.15.4 address. The simulator uses one address per node.
using NodeId = std::uint16_t;
constexpr NodeId kBroadcast = 0xffff;

enum class FrameType : std::uint8_t {
    kData,         // MAC data frame (6LoWPAN payload)
    kAck,          // immediate MAC acknowledgment
    kDataRequest,  // 802.15.4 MAC command: poll parent for queued frames
};

/// IEEE 802.15.4 PHY constants at the standard 2.4 GHz O-QPSK rate used by
/// the paper (250 kb/s; §5 notes the radio's faster proprietary rates are
/// deliberately not used).
constexpr double kBitsPerSecond = 250000.0;
constexpr sim::Time kByteAirTime = 32;             // 8 bits / 250 kb/s = 32 us
constexpr std::size_t kPhySyncHeaderBytes = 6;     // preamble(4)+SFD(1)+len(1)
constexpr std::size_t kMaxFrameBytes = 127;        // max MPDU (Table 5)
constexpr std::size_t kMacDataHeaderBytes = 23;    // Table 6, data frames
constexpr std::size_t kAckMpduBytes = 5;           // imm-ack MPDU
constexpr std::size_t kDataRequestMpduBytes = 12;  // MAC command frame
constexpr std::size_t kMaxMacPayloadBytes = kMaxFrameBytes - kMacDataHeaderBytes;  // 104

struct Frame {
    FrameType type = FrameType::kData;
    NodeId src = 0;
    NodeId dst = kBroadcast;
    std::uint8_t seq = 0;
    bool ackRequest = false;
    /// "Frame pending" header bit: tells a polling (duty-cycled) receiver
    /// that more queued frames follow (paper §3.2, Appendix C).
    bool framePending = false;
    // MAC payload (6LoWPAN bytes) — empty for ACK/poll. Copying a Frame
    // shares the payload storage; the channel fan-out to N receivers and the
    // MAC retry queue all reference the same bytes.
    PacketBuffer payload;

    /// MPDU size in bytes (MAC header + payload), excluding PHY sync header.
    std::size_t mpduBytes() const {
        switch (type) {
            case FrameType::kAck: return kAckMpduBytes;
            case FrameType::kDataRequest: return kDataRequestMpduBytes;
            case FrameType::kData: return kMacDataHeaderBytes + payload.size();
        }
        return 0;
    }

    /// Time the frame occupies the air, including the PHY sync header.
    sim::Time airTime() const {
        return sim::Time(mpduBytes() + kPhySyncHeaderBytes) * kByteAirTime;
    }
};

/// Air time of a maximum-size frame: (127+6)*32us = 4.256 ms, matching the
/// paper's "4.1 ms" within PHY-header rounding (§6.4, Table 5).
inline sim::Time maxFrameAirTime() {
    return sim::Time(kMaxFrameBytes + kPhySyncHeaderBytes) * kByteAirTime;
}

}  // namespace tcplp::phy
