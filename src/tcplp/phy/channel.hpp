// Shared wireless medium.
//
// Unit-disk propagation: a transmission is audible at every radio within
// `range` meters of the transmitter. Two overlapping audible transmissions
// corrupt each other at a listener — which is exactly how hidden terminals
// damage TCP flows in the paper's multihop experiments (§7.1): two nodes out
// of carrier-sense range of each other transmit to a common relay and their
// frames collide there.
//
// On top of geometry the channel supports per-link Bernoulli loss and a
// time-varying ambient loss function, used to model the office testbed's
// daytime interference (Fig. 10) and the injected-loss experiment (Fig. 9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "tcplp/phy/frame.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::phy {

class Radio;

struct Position {
    double x = 0.0;
    double y = 0.0;
};

class Channel {
public:
    explicit Channel(sim::Simulator& simulator, double range = 12.0)
        : simulator_(simulator), range_(range) {}

    sim::Simulator& simulator() { return simulator_; }
    double range() const { return range_; }

    void addRadio(Radio* radio);

    /// Per-link frame error probability (applied after geometry/collisions),
    /// set symmetrically.
    void setLinkLoss(NodeId a, NodeId b, double probability);
    /// One-direction loss (src -> dst only), e.g. asymmetric links.
    void setLinkLossDirectional(NodeId src, NodeId dst, double probability) {
        linkLoss_[{src, dst}] = probability;
    }
    /// Baseline frame error probability for all links.
    void setDefaultLoss(double probability) { defaultLoss_ = probability; }
    /// Ambient time/node dependent extra loss (diurnal interference model).
    void setAmbientLoss(std::function<double(sim::Time, NodeId)> fn) {
        ambientLoss_ = std::move(fn);
    }

    /// Called by a radio when its carrier actually starts radiating.
    void startTransmission(Radio* transmitter, const Frame& frame);

    /// Clear-channel assessment at `listener`: true if no audible carrier.
    bool clearAt(const Radio* listener) const;

    /// True when `a` can hear `b` (distance within range).
    bool inRange(const Radio* a, const Radio* b) const;

    // Aggregate statistics for Fig. 6(d) (total frames transmitted).
    std::uint64_t framesTransmitted() const { return framesTransmitted_; }
    std::uint64_t framesCollided() const { return framesCollided_; }
    std::uint64_t framesLostToFading() const { return framesLostToFading_; }

    /// Receiver-side collision report (called by Radio).
    void noteCollision() { ++framesCollided_; }

private:
    struct Transmission {
        Radio* transmitter;
        Frame frame;
        sim::Time end;
    };

    double lossFor(NodeId src, NodeId dst, sim::Time now) const;
    void finishTransmission(std::size_t txIndex);

    sim::Simulator& simulator_;
    double range_;
    double defaultLoss_ = 0.0;
    std::vector<Radio*> radios_;
    std::map<std::pair<NodeId, NodeId>, double> linkLoss_;
    std::function<double(sim::Time, NodeId)> ambientLoss_;
    std::vector<Transmission> active_;
    std::uint64_t nextTxId_ = 1;
    std::uint64_t framesTransmitted_ = 0;
    std::uint64_t framesCollided_ = 0;
    std::uint64_t framesLostToFading_ = 0;
};

}  // namespace tcplp::phy
