// Shared wireless medium.
//
// Unit-disk propagation: a transmission is audible at every radio within
// `range` meters of the transmitter. Two overlapping audible transmissions
// corrupt each other at a listener — which is exactly how hidden terminals
// damage TCP flows in the paper's multihop experiments (§7.1): two nodes out
// of carrier-sense range of each other transmit to a common relay and their
// frames collide there.
//
// On top of geometry the channel supports per-link Bernoulli loss and a
// time-varying ambient loss function, used to model the office testbed's
// daytime interference (Fig. 10) and the injected-loss experiment (Fig. 9).
//
// ## Spatial index (uniform grid)
//
// Radios are indexed by a uniform grid whose cell side equals the radio
// range. Invariants the implementation relies on:
//
//  * cell(p) = (floor(p.x / range), floor(p.y / range)). Because the cell
//    side is exactly `range`, every radio within range of a transmitter lies
//    in the 3×3 cell neighborhood of the transmitter's cell; conversely any
//    radio whose cell differs by >= 2 in either axis is strictly farther
//    than `range` and can be rejected without a distance computation.
//  * The grid is maintained eagerly: addRadio() inserts, and a radio that
//    moves (Radio::setPosition) re-files itself via radioMoved(). There is
//    no deferred rebuild — startTransmission/clearAt may trust the grid at
//    any instant.
//  * Per-transmitter neighbor lists (the 3×3 candidate set, self excluded,
//    sorted by NodeId) are cached and invalidated by a global epoch that
//    bumps whenever grid membership changes. Candidate sets still require
//    the exact inRange() test at use; the cache only bounds who is examined.
//  * Delivery iterates listeners in ascending NodeId order in BOTH delivery
//    modes, so the RNG draw sequence (one Bernoulli draw per in-range
//    listener) is identical between the spatial index and the linear scan —
//    and reproducible run to run. This is what keeps the figure benches
//    byte-identical across the indexing rework.
//  * Caveat on exact linear-vs-indexed replay: a batch fires at the FIRST
//    member's position in the same-tick event order, while the seed fired
//    each transmission's delivery at its own position. A third event
//    scheduled between those positions at exactly that tick (e.g. a CCA
//    check) could therefore observe a later batch member's carrier already
//    down in indexed mode. None of the in-tree workloads can hit this
//    window — the equivalence suites pre-schedule every transmission (their
//    event seqs all precede any delivery seq) and bench_channel's slotted
//    starts (≡0 mod 320 us) never share a tick with carrier ends (≡160 mod
//    320 us) — and the production mode is verified byte-identical against
//    the seed on the figure benches, but new mode-comparison workloads must
//    respect it.
//
// ## Batched delivery
//
// Transmissions whose air time ends at the same tick are coalesced into one
// pooled delivery event per end tick (instead of one event per frame). Each
// batch retires its transmissions from the active list first — so CCA during
// delivery callbacks sees every same-tick carrier down — then delivers them
// in transmission-id order. Active transmissions are keyed by a unique txId;
// the old (transmitter, end-time) linear erase could match the wrong entry
// when one transmitter had two frames ending at the same tick.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "tcplp/phy/frame.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::phy {

class Radio;

struct Position {
    double x = 0.0;
    double y = 0.0;
};

/// Counters exposing how much work the medium performs per frame; the
/// channel bench uses these to show O(all-radios) vs O(neighborhood).
struct ChannelStats {
    std::uint64_t deliveryEvents = 0;   // pooled end-of-air events fired
    std::uint64_t listenerVisits = 0;   // candidate radios examined
    std::uint64_t neighborRebuilds = 0; // neighbor-cache misses (full rebuild)
    /// Cache refreshes that compared the 3x3 cell epochs and found the
    /// window untouched — a grid change elsewhere cost 9 integer compares
    /// instead of a rebuild.
    std::uint64_t neighborRevalidations = 0;
};

class Channel {
public:
    /// kSpatialIndex is the indexed path; kLinearScan is the frozen seed
    /// reference the equivalence tests and the channel bench compare
    /// against: every radio examined per frame AND one delivery event per
    /// transmission (no batching). kAuto — the production default — picks
    /// per operation: linear scan below kAutoLinearThreshold radios (where
    /// grid upkeep ≈ the scan it saves, e.g. the 15-node office runs),
    /// spatial index above it. The two paths replay the identical RNG
    /// sequence, so the switch point is a pure perf decision and may even
    /// move mid-run as radios join.
    enum class DeliveryMode : std::uint8_t { kSpatialIndex, kLinearScan, kAuto };

    /// Below this many radios kAuto stays on the linear scan.
    static constexpr std::size_t kAutoLinearThreshold = 20;

    explicit Channel(sim::Simulator& simulator, double range = 12.0)
        : simulator_(simulator), range_(range) {}

    sim::Simulator& simulator() { return simulator_; }
    double range() const { return range_; }

    /// Air bit rate of this medium. The 802.15.4 default replays
    /// Frame::airTime() to the microsecond (frameAirTime short-circuits to
    /// it), so every existing scenario is byte-identical; higher rates model
    /// ESP32-class links (tens of Mb/s) for the high-BDP sweeps.
    double bitsPerSecond() const { return bitsPerSecond_; }
    void setBitsPerSecond(double bps) { bitsPerSecond_ = bps; }
    /// Time `frame` keeps the carrier up at this channel's bit rate.
    sim::Time frameAirTime(const Frame& frame) const {
        if (bitsPerSecond_ == kBitsPerSecond) return frame.airTime();
        const double us = double(frame.mpduBytes() + kPhySyncHeaderBytes) * 8.0 *
                          1e6 / bitsPerSecond_;
        return std::max<sim::Time>(1, sim::Time(us));
    }

    void setDeliveryMode(DeliveryMode mode) {
        mode_ = mode;
        resolvedMode_ = resolveMode();
    }
    DeliveryMode deliveryMode() const { return mode_; }
    /// The mode kAuto resolves to right now (itself otherwise). Cached in a
    /// member — radios are only ever added, so it can change only inside
    /// addRadio()/setDeliveryMode(); recomputing it per active transmission
    /// in clearAt was measurable overhead on small-n auto runs.
    DeliveryMode effectiveMode() const { return resolvedMode_; }

    void addRadio(Radio* radio);
    /// Re-files `radio` under its new position (called by Radio::setPosition
    /// after the position is updated; `oldPos` is where it was indexed).
    void radioMoved(Radio* radio, Position oldPos);

    /// Per-link frame error probability (applied after geometry/collisions),
    /// set symmetrically.
    void setLinkLoss(NodeId a, NodeId b, double probability);
    /// One-direction loss (src -> dst only), e.g. asymmetric links.
    void setLinkLossDirectional(NodeId src, NodeId dst, double probability) {
        linkLoss_[{src, dst}] = probability;
    }
    /// Baseline frame error probability for all links.
    void setDefaultLoss(double probability) { defaultLoss_ = probability; }
    /// Ambient time/node dependent extra loss (diurnal interference model).
    void setAmbientLoss(std::function<double(sim::Time, NodeId)> fn) {
        ambientLoss_ = std::move(fn);
    }

    // --- Blackouts (fault injection) ----------------------------------
    // A blacked-out link fades every frame (loss 1.0) while leaving the
    // carrier geometry — and hence the RNG fading-draw order — untouched:
    // a chaos run consumes exactly the draws a clean run does, which keeps
    // fault schedules from perturbing the simulation's RNG stream. Each
    // entry is a counter so overlapping windows compose (deactivation
    // decrements; the blackout lifts when the count returns to zero).
    void setLinkBlackout(NodeId a, NodeId b, bool active);
    void setNodeBlackout(NodeId node, bool active);
    void setGlobalBlackout(bool active);
    bool anyBlackoutActive() const { return blackoutEntries_ > 0; }

    /// Optional delivery log tap: invoked once per in-range listener at
    /// delivery time — (now, transmitter, listener, MPDU bytes, faded) — in
    /// exactly the order the RNG fading draws are made. The scheduler
    /// equivalence suite hashes this stream to prove heap- and wheel-backed
    /// simulations deliver identical frame sequences.
    using DeliveryTap =
        std::function<void(sim::Time, NodeId, NodeId, std::size_t, bool)>;
    void setDeliveryTap(DeliveryTap tap) { deliveryTap_ = std::move(tap); }

    /// Called by a radio when its carrier actually starts radiating.
    void startTransmission(Radio* transmitter, const Frame& frame);

    /// Clear-channel assessment at `listener`: true if no audible carrier.
    bool clearAt(const Radio* listener) const;

    /// True when `a` can hear `b` (distance within range).
    bool inRange(const Radio* a, const Radio* b) const;

    // Aggregate statistics for Fig. 6(d) (total frames transmitted).
    std::uint64_t framesTransmitted() const { return framesTransmitted_; }
    std::uint64_t framesCollided() const { return framesCollided_; }
    std::uint64_t framesLostToFading() const { return framesLostToFading_; }
    const ChannelStats& channelStats() const { return channelStats_; }

    /// Carriers currently in the air (test/diagnostic hook).
    std::size_t activeTransmissionCount() const { return active_.size(); }

    /// Receiver-side collision report (called by Radio).
    void noteCollision() { ++framesCollided_; }

private:
    struct Transmission {
        std::uint64_t txId;
        Radio* transmitter;
        Frame frame;
        sim::Time end;
    };
    /// Transmissions whose carriers drop at the same tick share one pooled
    /// delivery event; the txIds are appended in ascending order.
    struct Batch {
        sim::Time end;
        std::vector<std::uint64_t> txIds;
    };
    struct CellKey {
        std::int32_t cx;
        std::int32_t cy;
        bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
    };
    struct CellKeyHash {
        std::size_t operator()(const CellKey& k) const {
            return std::size_t((std::uint64_t(std::uint32_t(k.cx)) << 32) |
                               std::uint32_t(k.cy));
        }
    };
    /// One grid cell: its members plus the global-epoch value at the last
    /// membership change — the unit of incremental cache revalidation.
    struct Cell {
        std::vector<Radio*> radios;
        std::uint64_t epoch = 0;
    };

    struct NeighborCache {
        std::uint64_t epoch = 0;
        bool built = false;
        std::vector<Radio*> radios;  // 3x3-cell candidates, NodeId-ascending
        // Snapshot for incremental revalidation: the window the cache was
        // built over and the per-cell epochs of its 9 cells (row-major,
        // 0 for a cell absent from the grid at build time). On a global
        // epoch bump, an unchanged snapshot proves the candidate set is
        // still exact — no rebuild needed.
        CellKey center{0, 0};
        std::uint64_t cellEpochs[9] = {};
    };
    /// NodeId pairs hash into a perfect 32-bit key (ids are 16-bit).
    struct LinkKeyHash {
        std::size_t operator()(const std::pair<NodeId, NodeId>& k) const {
            return std::size_t((std::uint32_t(k.first) << 16) | k.second);
        }
    };

    CellKey cellOf(Position p) const;
    void insertIntoGrid(Radio* radio, CellKey key);
    DeliveryMode resolveMode() const {
        if (mode_ != DeliveryMode::kAuto) return mode_;
        return radiosById_.size() < kAutoLinearThreshold ? DeliveryMode::kLinearScan
                                                         : DeliveryMode::kSpatialIndex;
    }
    /// Epoch of the cell at `key` (0 when the grid has no such cell).
    std::uint64_t cellEpoch(CellKey key) const {
        const auto it = grid_.find(key);
        return it == grid_.end() ? 0 : it->second.epoch;
    }
    const std::vector<Radio*>& neighborsOf(Radio* transmitter);
    /// Calls fn(listener) for each candidate in ascending NodeId order;
    /// callers still apply inRange(). Spatial mode visits the cached 3x3
    /// neighborhood, linear mode every other radio.
    template <typename Fn>
    void forEachCandidate(Radio* transmitter, Fn&& fn);

    double lossFor(NodeId src, NodeId dst, sim::Time now) const;
    bool blackedOut(NodeId src, NodeId dst) const;
    Transmission retireActive(std::uint64_t txId);
    void deliverTransmission(const Transmission& tx);
    void deliverBatch(sim::Time end);
    void deliverOne(std::uint64_t txId);

    sim::Simulator& simulator_;
    double range_;
    double bitsPerSecond_ = kBitsPerSecond;
    DeliveryMode mode_ = DeliveryMode::kAuto;
    // What kAuto currently resolves to (kAuto itself never stored here);
    // updated by addRadio()/setDeliveryMode(), read on every CCA/delivery.
    DeliveryMode resolvedMode_ = DeliveryMode::kLinearScan;
    double defaultLoss_ = 0.0;
    std::vector<Radio*> radiosById_;  // all radios, ascending NodeId
    std::unordered_map<CellKey, Cell, CellKeyHash> grid_;
    std::uint64_t gridEpoch_ = 1;
    std::unordered_map<const Radio*, NeighborCache> neighborCache_;
    std::unordered_map<std::pair<NodeId, NodeId>, double, LinkKeyHash> linkLoss_;
    std::unordered_map<std::pair<NodeId, NodeId>, int, LinkKeyHash> linkBlackout_;
    std::unordered_map<NodeId, int> nodeBlackout_;
    int globalBlackout_ = 0;
    int blackoutEntries_ = 0;  // total active entries: single fast-path gate
    std::function<double(sim::Time, NodeId)> ambientLoss_;
    DeliveryTap deliveryTap_;
    std::vector<Transmission> active_;
    std::vector<Batch> batches_;                        // pending, small
    std::vector<std::vector<std::uint64_t>> batchPool_; // recycled id vectors
    std::vector<Transmission> deliverScratch_;          // reused per batch
    std::uint64_t nextTxId_ = 1;
    std::uint64_t framesTransmitted_ = 0;
    std::uint64_t framesCollided_ = 0;
    std::uint64_t framesLostToFading_ = 0;
    ChannelStats channelStats_;
};

}  // namespace tcplp::phy
