#include "tcplp/phy/channel.hpp"

#include <cmath>

#include "tcplp/common/log.hpp"
#include "tcplp/phy/radio.hpp"

namespace tcplp::phy {

void Channel::addRadio(Radio* radio) { radios_.push_back(radio); }

void Channel::setLinkLoss(NodeId a, NodeId b, double probability) {
    linkLoss_[{a, b}] = probability;
    linkLoss_[{b, a}] = probability;
}

bool Channel::inRange(const Radio* a, const Radio* b) const {
    const double dx = a->position().x - b->position().x;
    const double dy = a->position().y - b->position().y;
    return std::sqrt(dx * dx + dy * dy) <= range_;
}

bool Channel::clearAt(const Radio* listener) const {
    for (const Transmission& t : active_) {
        if (t.transmitter != listener && inRange(listener, t.transmitter)) return false;
    }
    return true;
}

double Channel::lossFor(NodeId src, NodeId dst, sim::Time now) const {
    double p = defaultLoss_;
    if (auto it = linkLoss_.find({src, dst}); it != linkLoss_.end()) p = it->second;
    if (ambientLoss_) {
        // Combine independent loss processes: survive both to be received.
        const double ambient = ambientLoss_(now, dst);
        p = 1.0 - (1.0 - p) * (1.0 - ambient);
    }
    return p;
}

void Channel::startTransmission(Radio* transmitter, const Frame& frame) {
    ++framesTransmitted_;
    const std::uint64_t txId = nextTxId_++;
    active_.push_back(Transmission{transmitter, frame, simulator_.now() + frame.airTime()});
    active_.back().frame.seq = frame.seq;

    // Let every other in-range radio react to the rising carrier.
    for (Radio* r : radios_) {
        if (r == transmitter || !inRange(r, transmitter)) continue;
        r->airStarted(txId);
    }

    simulator_.schedule(frame.airTime(), [this, txId, transmitter, frame] {
        // Remove from the active list first so CCA during delivery
        // callbacks sees the carrier down.
        for (std::size_t i = 0; i < active_.size(); ++i) {
            if (active_[i].transmitter == transmitter && active_[i].end == simulator_.now()) {
                active_.erase(active_.begin() + long(i));
                break;
            }
        }
        for (Radio* r : radios_) {
            if (r == transmitter || !inRange(r, transmitter)) continue;
            const bool faded =
                simulator_.rng().chance(lossFor(transmitter->id(), r->id(), simulator_.now()));
            if (faded) ++framesLostToFading_;
            r->airFinished(txId, frame, faded);
        }
    });
}

}  // namespace tcplp::phy
