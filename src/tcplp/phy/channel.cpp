#include "tcplp/phy/channel.hpp"

#include <algorithm>
#include <cmath>

#include "tcplp/common/assert.hpp"
#include "tcplp/common/log.hpp"
#include "tcplp/phy/radio.hpp"

namespace tcplp::phy {

Channel::CellKey Channel::cellOf(Position p) const {
    return CellKey{std::int32_t(std::floor(p.x / range_)),
                   std::int32_t(std::floor(p.y / range_))};
}

void Channel::insertIntoGrid(Radio* radio, CellKey key) {
    // Cell order is irrelevant: neighborsOf sorts the merged candidate set.
    Cell& cell = grid_[key];
    cell.radios.push_back(radio);
    cell.epoch = gridEpoch_;
}

void Channel::addRadio(Radio* radio) {
    auto it = std::lower_bound(
        radiosById_.begin(), radiosById_.end(), radio,
        [](const Radio* a, const Radio* b) { return a->id() < b->id(); });
    radiosById_.insert(it, radio);
    ++gridEpoch_;
    insertIntoGrid(radio, cellOf(radio->position()));
    resolvedMode_ = resolveMode();
}

void Channel::radioMoved(Radio* radio, Position oldPos) {
    const CellKey oldKey = cellOf(oldPos);
    const CellKey newKey = cellOf(radio->position());
    if (oldKey == newKey) return;  // same cell: candidate sets are unchanged
    ++gridEpoch_;
    Cell& cell = grid_[oldKey];
    cell.radios.erase(std::find(cell.radios.begin(), cell.radios.end(), radio));
    cell.epoch = gridEpoch_;
    insertIntoGrid(radio, newKey);
}

const std::vector<Radio*>& Channel::neighborsOf(Radio* transmitter) {
    NeighborCache& cache = neighborCache_[transmitter];
    if (cache.epoch == gridEpoch_) return cache.radios;

    const CellKey center = cellOf(transmitter->position());
    if (cache.built && center == cache.center) {
        // Incremental revalidation: the global epoch moved, but if none of
        // the 9 cells in this transmitter's window changed membership, the
        // cached candidate set is still exact — adopt the new epoch for the
        // price of 9 integer compares instead of a rebuild + sort.
        bool unchanged = true;
        std::size_t slot = 0;
        for (std::int32_t dx = -1; dx <= 1 && unchanged; ++dx) {
            for (std::int32_t dy = -1; dy <= 1; ++dy, ++slot) {
                if (cellEpoch(CellKey{center.cx + dx, center.cy + dy}) !=
                    cache.cellEpochs[slot]) {
                    unchanged = false;
                    break;
                }
            }
        }
        if (unchanged) {
            cache.epoch = gridEpoch_;
            ++channelStats_.neighborRevalidations;
            return cache.radios;
        }
    }

    cache.epoch = gridEpoch_;
    cache.built = true;
    cache.center = center;
    cache.radios.clear();
    ++channelStats_.neighborRebuilds;
    std::size_t slot = 0;
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
        for (std::int32_t dy = -1; dy <= 1; ++dy, ++slot) {
            const CellKey key{center.cx + dx, center.cy + dy};
            cache.cellEpochs[slot] = cellEpoch(key);
            const auto it = grid_.find(key);
            if (it == grid_.end()) continue;
            for (Radio* r : it->second.radios) {
                if (r != transmitter) cache.radios.push_back(r);
            }
        }
    }
    std::sort(cache.radios.begin(), cache.radios.end(),
              [](const Radio* a, const Radio* b) { return a->id() < b->id(); });
    return cache.radios;
}

template <typename Fn>
void Channel::forEachCandidate(Radio* transmitter, Fn&& fn) {
    if (effectiveMode() == DeliveryMode::kSpatialIndex) {
        for (Radio* r : neighborsOf(transmitter)) {
            ++channelStats_.listenerVisits;
            fn(r);
        }
    } else {
        for (Radio* r : radiosById_) {
            if (r == transmitter) continue;
            ++channelStats_.listenerVisits;
            fn(r);
        }
    }
}

void Channel::setLinkLoss(NodeId a, NodeId b, double probability) {
    linkLoss_[{a, b}] = probability;
    linkLoss_[{b, a}] = probability;
}

bool Channel::inRange(const Radio* a, const Radio* b) const {
    const double dx = a->position().x - b->position().x;
    const double dy = a->position().y - b->position().y;
    return std::sqrt(dx * dx + dy * dy) <= range_;
}

bool Channel::clearAt(const Radio* listener) const {
    // Mode check hoisted out of the loop (and the listener's cell computed
    // only when the spatial reject will use it): CCA runs once per CSMA
    // attempt, and the per-transmission recompute showed up as pure
    // overhead on small-n auto runs that resolve to the linear scan.
    if (resolvedMode_ != DeliveryMode::kSpatialIndex) {
        for (const Transmission& t : active_) {
            if (t.transmitter == listener) continue;
            if (inRange(listener, t.transmitter)) return false;
        }
        return true;
    }
    const CellKey lc = cellOf(listener->position());
    for (const Transmission& t : active_) {
        if (t.transmitter == listener) continue;
        // Cells >= 2 apart in either axis are strictly farther than
        // `range` (cell side == range): reject without the distance math.
        const CellKey tc = cellOf(t.transmitter->position());
        if (tc.cx - lc.cx > 1 || lc.cx - tc.cx > 1 || tc.cy - lc.cy > 1 ||
            lc.cy - tc.cy > 1) {
            continue;
        }
        if (inRange(listener, t.transmitter)) return false;
    }
    return true;
}

bool Channel::blackedOut(NodeId src, NodeId dst) const {
    if (globalBlackout_ > 0) return true;
    if (!nodeBlackout_.empty()) {
        if (auto it = nodeBlackout_.find(src); it != nodeBlackout_.end() && it->second > 0)
            return true;
        if (auto it = nodeBlackout_.find(dst); it != nodeBlackout_.end() && it->second > 0)
            return true;
    }
    if (!linkBlackout_.empty()) {
        if (auto it = linkBlackout_.find({src, dst});
            it != linkBlackout_.end() && it->second > 0)
            return true;
    }
    return false;
}

void Channel::setLinkBlackout(NodeId a, NodeId b, bool active) {
    const int delta = active ? 1 : -1;
    linkBlackout_[{a, b}] += delta;
    linkBlackout_[{b, a}] += delta;
    blackoutEntries_ += delta;
}

void Channel::setNodeBlackout(NodeId node, bool active) {
    const int delta = active ? 1 : -1;
    nodeBlackout_[node] += delta;
    blackoutEntries_ += delta;
}

void Channel::setGlobalBlackout(bool active) {
    const int delta = active ? 1 : -1;
    globalBlackout_ += delta;
    blackoutEntries_ += delta;
}

double Channel::lossFor(NodeId src, NodeId dst, sim::Time now) const {
    // Blackout fades the frame with certainty: the Bernoulli draw still
    // happens (chance(1.0) is always true — uniform() < 1.0), preserving
    // the RNG draw order of the equivalent clean run.
    if (blackoutEntries_ > 0 && blackedOut(src, dst)) return 1.0;
    double p = defaultLoss_;
    if (auto it = linkLoss_.find({src, dst}); it != linkLoss_.end()) p = it->second;
    if (ambientLoss_) {
        // Combine independent loss processes: survive both to be received.
        const double ambient = ambientLoss_(now, dst);
        p = 1.0 - (1.0 - p) * (1.0 - ambient);
    }
    return p;
}

void Channel::startTransmission(Radio* transmitter, const Frame& frame) {
    ++framesTransmitted_;
    const std::uint64_t txId = nextTxId_++;
    const sim::Time air = frameAirTime(frame);
    const sim::Time end = simulator_.now() + air;
    active_.push_back(Transmission{txId, transmitter, frame, end});

    // Let every other in-range radio react to the rising carrier.
    forEachCandidate(transmitter, [&](Radio* r) {
        if (inRange(r, transmitter)) r->airStarted(txId);
    });

    if (effectiveMode() == DeliveryMode::kLinearScan) {
        // Frozen seed behavior: one delivery event per transmission.
        simulator_.schedule(air, [this, txId] { deliverOne(txId); });
        return;
    }

    // Coalesce into the pending batch for this end tick, or open one.
    for (Batch& b : batches_) {
        if (b.end == end) {
            b.txIds.push_back(txId);
            return;
        }
    }
    Batch batch;
    batch.end = end;
    if (!batchPool_.empty()) {
        batch.txIds = std::move(batchPool_.back());
        batchPool_.pop_back();
    }
    batch.txIds.push_back(txId);
    batches_.push_back(std::move(batch));
    simulator_.schedule(air, [this, end] { deliverBatch(end); });
}

Channel::Transmission Channel::retireActive(std::uint64_t txId) {
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].txId != txId) continue;
        Transmission tx = std::move(active_[i]);
        active_[i] = std::move(active_.back());
        active_.pop_back();
        return tx;
    }
    TCPLP_ASSERT(false && "unknown txId");
    return Transmission{};
}

void Channel::deliverTransmission(const Transmission& tx) {
    forEachCandidate(tx.transmitter, [&](Radio* r) {
        if (!inRange(r, tx.transmitter)) return;
        const bool faded = simulator_.rng().chance(
            lossFor(tx.transmitter->id(), r->id(), simulator_.now()));
        if (faded) ++framesLostToFading_;
        if (deliveryTap_)
            deliveryTap_(simulator_.now(), tx.transmitter->id(), r->id(),
                         tx.frame.mpduBytes(), faded);
        r->airFinished(tx.txId, tx.frame, faded);
    });
}

void Channel::deliverOne(std::uint64_t txId) {
    ++channelStats_.deliveryEvents;
    // Remove from the active list first so CCA during delivery callbacks
    // sees the carrier down.
    const Transmission tx = retireActive(txId);
    deliverTransmission(tx);
}

void Channel::deliverBatch(sim::Time end) {
    ++channelStats_.deliveryEvents;
    std::vector<std::uint64_t> txIds;
    for (std::size_t i = 0; i < batches_.size(); ++i) {
        if (batches_[i].end != end) continue;
        txIds = std::move(batches_[i].txIds);
        batches_[i] = std::move(batches_.back());
        batches_.pop_back();
        break;
    }
    TCPLP_ASSERT(!txIds.empty());

    // Retire every transmission in the batch from the active list BEFORE
    // delivering any of them, so CCA during delivery callbacks sees all
    // same-tick carriers down. Lookup is keyed on txId: two back-to-back
    // frames from one transmitter ending the same tick retire independently.
    deliverScratch_.clear();
    for (const std::uint64_t txId : txIds) deliverScratch_.push_back(retireActive(txId));
    txIds.clear();
    batchPool_.push_back(std::move(txIds));

    // Deliver in txId (= start) order; listeners in ascending NodeId order,
    // so the per-listener RNG draws replay identically in both modes.
    for (const Transmission& tx : deliverScratch_) deliverTransmission(tx);
    deliverScratch_.clear();
}

}  // namespace tcplp::phy
