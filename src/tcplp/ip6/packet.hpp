// IPv6 packet representation used across the stack.
#pragma once

#include <cstdint>

#include "tcplp/common/bytes.hpp"
#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/ip6/address.hpp"

namespace tcplp::ip6 {

constexpr std::size_t kUncompressedHeaderBytes = 40;

enum NextHeader : std::uint8_t {
    kProtoTcp = 6,
    kProtoUdp = 17,
    kProtoIcmp = 58,
};

/// ECN codepoints (RFC 3168), carried in the low two bits of traffic class.
enum class Ecn : std::uint8_t {
    kNotCapable = 0b00,
    kCapable0 = 0b10,
    kCapable1 = 0b01,
    kCongestionExperienced = 0b11,
};

struct Packet {
    Address src;
    Address dst;
    std::uint8_t nextHeader = kProtoUdp;
    std::uint8_t hopLimit = 64;
    std::uint8_t trafficClass = 0;
    PacketBuffer payload;  // encoded transport segment (shared, not copied, per hop)

    Ecn ecn() const { return static_cast<Ecn>(trafficClass & 0b11); }
    void setEcn(Ecn e) {
        trafficClass = std::uint8_t((trafficClass & ~0b11) | static_cast<std::uint8_t>(e));
    }

    /// Size on an uncompressed wire (used for queue accounting and the
    /// Table 6 comparison against IPHC).
    std::size_t uncompressedSize() const { return kUncompressedHeaderBytes + payload.size(); }
};

}  // namespace tcplp::ip6
