// Relay forwarding queue: tail-drop or RED, with optional ECN marking.
//
// Appendix A: with buffers of 7 segments, two competing TCP flows shared the
// path unfairly because of tail drops at a relay; Random Early Detection
// (RFC-style, Floyd & Jacobson) with ECN marking restored fairness and kept
// RTTs near 1 s. This queue implements both disciplines so the Table 9
// bench can compare them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "tcplp/ip6/packet.hpp"
#include "tcplp/sim/rng.hpp"

namespace tcplp::ip6 {

enum class QueueDiscipline : std::uint8_t { kTailDrop, kRed };

struct RedConfig {
    QueueDiscipline discipline = QueueDiscipline::kTailDrop;
    std::size_t capacityPackets = 8;  // hard limit (mote packet heap is small)
    // RED parameters, in packets.
    double minThreshold = 1.5;
    double maxThreshold = 4.5;
    double maxMarkProbability = 0.1;
    double weight = 0.25;  // EWMA weight for average queue size
    bool ecnMarking = true;  // mark CE instead of dropping when ECT
};

struct QueueStats {
    std::uint64_t enqueued = 0;
    std::uint64_t tailDropped = 0;
    std::uint64_t redDropped = 0;
    std::uint64_t ecnMarked = 0;
};

class RedQueue {
public:
    RedQueue(sim::Rng& rng, RedConfig config = {}) : rng_(rng), config_(config) {}

    const RedConfig& config() const { return config_; }
    RedConfig& mutableConfig() { return config_; }
    const QueueStats& stats() const { return stats_; }
    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    /// Attempts to enqueue; returns false if the packet was dropped.
    bool push(Packet packet) {
        updateAverage();
        if (config_.discipline == QueueDiscipline::kRed) {
            const double mark = markProbability();
            if (mark > 0.0 && rng_.chance(mark)) {
                if (config_.ecnMarking && packet.ecn() != Ecn::kNotCapable) {
                    packet.setEcn(Ecn::kCongestionExperienced);
                    ++stats_.ecnMarked;
                } else {
                    ++stats_.redDropped;
                    return false;
                }
            }
        }
        if (queue_.size() >= config_.capacityPackets) {
            ++stats_.tailDropped;
            return false;
        }
        queue_.push_back(std::move(packet));
        ++stats_.enqueued;
        return true;
    }

    Packet pop() {
        Packet p = std::move(queue_.front());
        queue_.pop_front();
        return p;
    }

private:
    void updateAverage() {
        avg_ = (1.0 - config_.weight) * avg_ + config_.weight * double(queue_.size());
    }

    double markProbability() const {
        if (avg_ < config_.minThreshold) return 0.0;
        if (avg_ >= config_.maxThreshold) return 1.0;
        return config_.maxMarkProbability * (avg_ - config_.minThreshold) /
               (config_.maxThreshold - config_.minThreshold);
    }

    sim::Rng& rng_;
    RedConfig config_;
    QueueStats stats_;
    std::deque<Packet> queue_;
    double avg_ = 0.0;
};

}  // namespace tcplp::ip6
