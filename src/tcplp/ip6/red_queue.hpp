// Relay forwarding queue: tail-drop or RED, with optional ECN marking.
//
// Appendix A: with buffers of 7 segments, two competing TCP flows shared the
// path unfairly because of tail drops at a relay; Random Early Detection
// (RFC-style, Floyd & Jacobson) with ECN marking restored fairness and kept
// RTTs near 1 s. This queue implements both disciplines so the Table 9
// bench can compare them.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>

#include "tcplp/common/ring_deque.hpp"
#include "tcplp/ip6/packet.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::ip6 {

enum class QueueDiscipline : std::uint8_t { kTailDrop, kRed };

struct RedConfig {
    QueueDiscipline discipline = QueueDiscipline::kTailDrop;
    std::size_t capacityPackets = 8;  // hard limit (mote packet heap is small)
    // RED parameters, in packets.
    double minThreshold = 1.5;
    double maxThreshold = 4.5;
    double maxMarkProbability = 0.1;
    double weight = 0.25;  // EWMA weight for average queue size
    /// Typical per-packet service time (the RED paper's `s`): while the
    /// queue sits empty, the average decays as if small packets had been
    /// dequeued at this rate. A 127-byte 802.15.4 frame airs in ~4 ms.
    sim::Time idlePacketTime = 4 * sim::kMillisecond;
    bool ecnMarking = true;  // mark CE instead of dropping when ECT
};

struct QueueStats {
    std::uint64_t enqueued = 0;
    std::uint64_t tailDropped = 0;
    std::uint64_t redDropped = 0;
    std::uint64_t ecnMarked = 0;
};

class RedQueue {
public:
    RedQueue(sim::Simulator& simulator, RedConfig config = {})
        : simulator_(simulator), config_(config) {}

    const RedConfig& config() const { return config_; }
    RedConfig& mutableConfig() { return config_; }
    const QueueStats& stats() const { return stats_; }
    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    /// The EWMA queue average the marking decision uses (test hook).
    double averageQueueSize() const { return avg_; }

    /// Attempts to enqueue; returns false if the packet was dropped.
    bool push(Packet packet) {
        updateAverage();
        if (config_.discipline == QueueDiscipline::kRed) {
            const double mark = markProbability();
            if (mark > 0.0 && simulator_.rng().chance(mark)) {
                if (config_.ecnMarking && packet.ecn() != Ecn::kNotCapable) {
                    packet.setEcn(Ecn::kCongestionExperienced);
                    ++stats_.ecnMarked;
                } else {
                    ++stats_.redDropped;
                    return false;
                }
            }
        }
        if (queue_.size() >= config_.capacityPackets) {
            ++stats_.tailDropped;
            return false;
        }
        queue_.push_back(std::move(packet));
        ++stats_.enqueued;
        return true;
    }

    Packet pop() {
        Packet p = std::move(queue_.front());
        queue_.pop_front();
        // The average only updates on enqueue; remember when an idle period
        // starts so the next arrival can decay it (Floyd & Jacobson §4).
        if (queue_.empty()) emptySince_ = simulator_.now();
        return p;
    }

    /// Crash semantics (node reboot): queued packets and the RED average are
    /// volatile state and vanish with the power rail.
    void clear() {
        queue_.clear();
        avg_ = 0.0;
        emptySince_ = simulator_.now();
    }

private:
    void updateAverage() {
        if (queue_.empty()) {
            // Classic RED idle fix: without it the average freezes across
            // idle periods and the first burst after silence is over-marked.
            // Decay as if `m` typical packets had drained while idle:
            // avg <- avg * (1 - w)^m.
            const sim::Time idle = simulator_.now() - emptySince_;
            if (idle > 0 && config_.idlePacketTime > 0 && avg_ > 0.0) {
                const double m = double(idle) / double(config_.idlePacketTime);
                avg_ *= std::pow(1.0 - config_.weight, m);
            }
            emptySince_ = simulator_.now();
        }
        avg_ = (1.0 - config_.weight) * avg_ + config_.weight * double(queue_.size());
    }

    double markProbability() const {
        if (avg_ < config_.minThreshold) return 0.0;
        if (avg_ >= config_.maxThreshold) return 1.0;
        return config_.maxMarkProbability * (avg_ - config_.minThreshold) /
               (config_.maxThreshold - config_.minThreshold);
    }

    sim::Simulator& simulator_;
    RedConfig config_;
    QueueStats stats_;
    // RingDeque: a relay queue drains to empty constantly; reusing its slot
    // storage keeps the forwarding hot path allocation-free.
    RingDeque<Packet> queue_;
    double avg_ = 0.0;
    sim::Time emptySince_ = 0;
};

}  // namespace tcplp::ip6
