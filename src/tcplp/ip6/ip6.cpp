// The ip6 module is header-only; this translation unit anchors the library.
#include "tcplp/ip6/packet.hpp"
#include "tcplp/ip6/red_queue.hpp"
