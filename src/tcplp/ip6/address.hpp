// IPv6 addresses as used in the simulated Thread-style network.
//
// Three address families appear in the experiments, chosen because they
// exercise the three 6LoWPAN IPHC compression levels (Table 6's "2 B to
// 28 B" range):
//  * link-local (fe80::/64) with an IID derived from the 16-bit short MAC
//    address — fully elidable under IPHC;
//  * mesh-local ULA (fd00::/64, a shared compression context) — prefix
//    elided, IID carried;
//  * off-mesh "cloud" addresses (2001:db8::/64, no context) — carried whole.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tcplp::ip6 {

using ShortAddr = std::uint16_t;  // equals phy::NodeId for mesh nodes

struct Address {
    std::array<std::uint8_t, 16> bytes{};

    auto operator<=>(const Address&) const = default;

    static Address linkLocal(ShortAddr node) {
        Address a;
        a.bytes[0] = 0xfe;
        a.bytes[1] = 0x80;
        a.bytes[14] = std::uint8_t(node >> 8);
        a.bytes[15] = std::uint8_t(node);
        return a;
    }

    static Address meshLocal(ShortAddr node) {
        Address a;
        a.bytes[0] = 0xfd;
        a.bytes[8] = 0x11;  // non-MAC-derived IID: prefix elided, IID inline
        a.bytes[14] = std::uint8_t(node >> 8);
        a.bytes[15] = std::uint8_t(node);
        return a;
    }

    static Address cloud(std::uint16_t host) {
        Address a;
        a.bytes[0] = 0x20;
        a.bytes[1] = 0x01;
        a.bytes[2] = 0x0d;
        a.bytes[3] = 0xb8;
        a.bytes[14] = std::uint8_t(host >> 8);
        a.bytes[15] = std::uint8_t(host);
        return a;
    }

    bool isLinkLocal() const { return bytes[0] == 0xfe && bytes[1] == 0x80; }
    bool isMeshLocal() const { return bytes[0] == 0xfd; }
    bool isCloud() const { return bytes[0] == 0x20; }

    /// Node/host number carried in the last two bytes.
    ShortAddr shortAddr() const {
        return ShortAddr((bytes[14] << 8) | bytes[15]);
    }

    std::string str() const {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%02x%02x::%02x%02x", bytes[0], bytes[1], bytes[14],
                      bytes[15]);
        return buf;
    }
};

}  // namespace tcplp::ip6
