// Interface the transport layers (TCP, UDP) use to reach the network.
//
// Implemented by mesh::Node for simulated motes/routers/cloud hosts, and by
// in-memory pipes in unit tests so TCP can be exercised without a radio.
#pragma once

#include <functional>

#include "tcplp/ip6/packet.hpp"
#include "tcplp/sim/simulator.hpp"

namespace tcplp::ip6 {

class NetIf {
public:
    using ProtocolHandler = std::function<void(const Packet&)>;

    virtual ~NetIf() = default;

    /// Primary address of this interface (packet sources default to it).
    virtual Address address() const = 0;

    /// Queues a packet for transmission toward `packet.dst`.
    virtual void sendPacket(Packet packet) = 0;

    /// Registers the upper-layer handler for a next-header value.
    virtual void registerProtocol(std::uint8_t nextHeader, ProtocolHandler handler) = 0;

    virtual sim::Simulator& simulator() = 0;

    /// Duty-cycle hint (§9.2): the transport expects a response soon, so a
    /// sleepy MAC should poll its parent rapidly. No-op on always-on nodes.
    virtual void setExpectingResponse(bool) {}
};

}  // namespace tcplp::ip6
