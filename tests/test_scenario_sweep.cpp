// Scenario engine + sweep runner coverage.
//
// The two load-bearing guarantees of the PR 3 refactor are pinned here:
//
//  1. Sweep determinism: the same spec + seed list produces byte-identical
//     metric JSON at --jobs 1 and --jobs 8 (rows cross the worker pipe and
//     must round-trip exactly, and the merge must be in grid order).
//
//  2. Path equivalence: the declarative engine replays the exact
//     simulations the hand-rolled pre-refactor bench drivers ran. The
//     reference below is a frozen inline copy of bench/common.hpp's
//     runBulkTransfer as it stood before the refactor; Rng::stateDigest
//     equality proves the engine consumed the identical RNG stream on the
//     bench_sec72_hops path. The bench_fig10_table8_day path goes through
//     harness::runAnemometer on both sides; equality there proves the spec
//     binds the exact same options.
#include <gtest/gtest.h>
#include <signal.h>

#include "tcplp/app/bulk.hpp"
#include "tcplp/harness/anemometer.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/scenario/metrics.hpp"
#include "tcplp/scenario/registry.hpp"
#include "tcplp/scenario/sweep.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/rng.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

// --- Frozen pre-refactor reference (bench/common.hpp as of PR 2) -----------

namespace reference {

struct BulkOptions {
    std::size_t hops = 1;
    std::size_t totalBytes = 150000;
    sim::Time retryDelayMax = sim::fromMillis(40);
    std::uint16_t mss = 462;
    std::size_t windowSegments = 4;
    bool uplink = true;
    std::uint64_t seed = 1;
    double linkLoss = 0.0;
    sim::Time timeLimit = 40 * sim::kMinute;
};

struct BulkResult {
    double goodputKbps = 0.0;
    std::uint64_t framesTransmitted = 0;
    std::size_t bytes = 0;
    bool contentOk = false;
    std::uint64_t rngDigest = 0;
};

BulkResult runBulkTransfer(const BulkOptions& opt) {
    harness::TestbedConfig cfg;
    cfg.seed = opt.seed;
    cfg.linkLoss = opt.linkLoss;
    cfg.nodeDefaults.macConfig.retryDelayMax = opt.retryDelayMax;
    cfg.nodeDefaults.queueConfig.capacityPackets = 24;
    auto tb = harness::Testbed::line(opt.hops, cfg);

    mesh::Node& mote = *tb->findNode(phy::NodeId(9 + opt.hops));
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    tcp::TcpStack& senderStack = opt.uplink ? moteStack : cloudStack;
    tcp::TcpStack& receiverStack = opt.uplink ? cloudStack : moteStack;
    const auto mote_cfg = [&] {
        tcp::TcpConfig c;
        c.mss = opt.mss;
        c.sendBufferBytes = opt.windowSegments * opt.mss;
        c.recvBufferBytes = opt.windowSegments * opt.mss;
        return c;
    };
    const auto server_cfg = [&] {
        tcp::TcpConfig c;
        c.mss = opt.mss;
        c.sendBufferBytes = 16384;
        c.recvBufferBytes = 16384;
        return c;
    };
    const tcp::TcpConfig senderCfg = opt.uplink ? mote_cfg() : server_cfg();
    const tcp::TcpConfig receiverCfg = opt.uplink ? server_cfg() : mote_cfg();

    receiverStack.listen(80, receiverCfg, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& sender = senderStack.createSocket(senderCfg);
    app::BulkSender bulk(sender, opt.totalBytes);
    const ip6::Address dst = opt.uplink ? tb->cloud().address() : mote.address();
    sender.connect(dst, 80);
    tb->simulator().runUntil(opt.timeLimit);

    BulkResult r;
    r.goodputKbps = meter.goodputKbps();
    r.bytes = meter.bytes();
    r.contentOk = meter.contentOk();
    r.framesTransmitted = tb->channel().framesTransmitted();
    r.rngDigest = tb->simulator().rng().stateDigest();
    return r;
}

}  // namespace reference

// --- Metric rows + JSON ----------------------------------------------------

TEST(ScenarioMetrics, RowKeepsInsertionOrderAndOverwritesInPlace) {
    MetricRow row;
    row.set("b", 1).set("a", 2.5).set("b", 7);
    EXPECT_EQ(toJsonLine(row), "{\"b\":7,\"a\":2.5}");
}

TEST(ScenarioMetrics, JsonEscapesStringsAndRendersTypes) {
    MetricRow row;
    row.set("s", "a\"b\\c\nd").set("t", true).set("u", std::uint64_t(18446744073709551615ULL));
    EXPECT_EQ(toJsonLine(row),
              "{\"s\":\"a\\\"b\\\\c\\nd\",\"t\":true,\"u\":18446744073709551615}");
}

TEST(ScenarioMetrics, DoubleFormatRoundTrips) {
    // Shortest-round-trip rendering: reparsing yields the identical bits.
    for (double v : {0.1, 1.0 / 3.0, 63.77937438811663, 1e-300, 12345678.9}) {
        const std::string text = formatDouble(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
    EXPECT_EQ(formatDouble(std::nan("")), "null");
}

// --- Grid expansion + stream derivation ------------------------------------

TEST(ScenarioSweep, ExpandsAxesOuterToInnerWithSeedsInnermost) {
    ScenarioDef def;
    def.name = "expand";
    def.axes = {{"a", {10, 20}}, {"b", {1, 2, 3}}};
    def.seeds = {5, 6};
    const auto points = expandPoints(def, def.seeds);
    ASSERT_EQ(points.size(), 12u);
    EXPECT_EQ(points[0].value("a"), 10);
    EXPECT_EQ(points[0].value("b"), 1);
    EXPECT_EQ(points[0].seed, 5u);
    EXPECT_EQ(points[1].seed, 6u);  // seeds innermost
    EXPECT_EQ(points[2].value("b"), 2);
    EXPECT_EQ(points[6].value("a"), 20);  // axis a flips after b completes
    EXPECT_EQ(points[11].value("b"), 3);
}

TEST(ScenarioSweep, DeriveStreamIsDeterministicAndPositionKeyed) {
    EXPECT_EQ(sim::Rng::deriveStream(42, 7), sim::Rng::deriveStream(42, 7));
    EXPECT_NE(sim::Rng::deriveStream(42, 7), sim::Rng::deriveStream(42, 8));
    EXPECT_NE(sim::Rng::deriveStream(42, 7), sim::Rng::deriveStream(43, 7));

    ScenarioDef def;
    def.name = "derive";
    def.deriveSeeds = true;
    def.baseSeed = 42;
    def.seeds = {1, 1};  // two replications per cell; values unused
    const auto points = expandPoints(def, def.seeds);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].seed, sim::Rng::deriveStream(42, 0));
    EXPECT_EQ(points[1].seed, sim::Rng::deriveStream(42, 1));
}

// --- Sweep determinism: serial vs sharded ----------------------------------

namespace {

ScenarioDef smallBulkSweep() {
    ScenarioDef def;
    def.name = "test_sweep";
    def.base.topology.retryDelayMax = sim::fromMillis(40);
    def.base.topology.queueCapacityPackets = 24;
    def.base.workload.totalBytes = 8000;
    def.base.workload.timeLimit = 5 * sim::kMinute;
    def.axes = {{"hops", {1, 2}}};
    def.seeds = {1, 2, 3, 4};
    def.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.hops = std::size_t(p.value("hops"));
    };
    return def;
}

}  // namespace

TEST(ScenarioSweep, ParallelMergeIsByteIdenticalToSerial) {
    const ScenarioDef def = smallBulkSweep();
    const SweepResult serial = runSweep(def, SweepOptions{1, {}});
    const SweepResult parallel = runSweep(def, SweepOptions{8, {}});
    ASSERT_TRUE(serial.ok) << serial.error;
    ASSERT_TRUE(parallel.ok) << parallel.error;
    ASSERT_EQ(serial.records.size(), 8u);
    ASSERT_EQ(parallel.records.size(), 8u);
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        EXPECT_EQ(serial.records[i].point.seed, parallel.records[i].point.seed);
        EXPECT_TRUE(serial.records[i].row == parallel.records[i].row) << "row " << i;
    }
    EXPECT_EQ(serial.jsonLines(), parallel.jsonLines());
    // The digests are live (a real simulation ran in every worker).
    for (const auto& record : serial.records)
        EXPECT_NE(record.row.number("rng_digest"), 0.0);
}

TEST(ScenarioSweep, OddJobCountsAndSeedOverridesStayIdentical) {
    const ScenarioDef def = smallBulkSweep();
    SweepOptions serialOpt{1, {7, 9}};
    SweepOptions parallelOpt{3, {7, 9}};
    const SweepResult serial = runSweep(def, serialOpt);
    const SweepResult parallel = runSweep(def, parallelOpt);
    ASSERT_TRUE(serial.ok && parallel.ok);
    ASSERT_EQ(serial.records.size(), 4u);  // 2 hops x 2 override seeds
    EXPECT_EQ(serial.records[0].point.seed, 7u);
    EXPECT_EQ(serial.jsonLines(), parallel.jsonLines());
}

TEST(ScenarioSweep, NonFiniteMetricsSurviveTheWorkerPipe) {
    ScenarioDef def;
    def.name = "test_nonfinite";
    def.axes = {{"i", {0, 1}}};
    def.measure = [](const ScenarioSpec&, const Point& p) {
        MetricRow row;
        row.set("inf", std::numeric_limits<double>::infinity())
            .set("neg_inf", -std::numeric_limits<double>::infinity())
            .set("nan", std::nan(""))
            .set("i", p.value("i"));
        return row;
    };
    const SweepResult serial = runSweep(def, SweepOptions{1, {}});
    const SweepResult parallel = runSweep(def, SweepOptions{2, {}});
    ASSERT_TRUE(serial.ok && parallel.ok);
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        // In-memory rows must match exactly (inf stays inf, not NaN), so
        // presenter arithmetic cannot diverge between serial and sharded.
        EXPECT_TRUE(serial.records[i].row == parallel.records[i].row) << i;
        EXPECT_TRUE(std::isinf(parallel.records[i].row.number("inf")));
    }
    EXPECT_EQ(serial.jsonLines(), parallel.jsonLines());
}

TEST(ScenarioSweep, WorkerFailureSurfacesAsError) {
    ScenarioDef def;
    def.name = "test_failure";
    def.axes = {{"i", {0, 1, 2, 3}}};
    def.measure = [](const ScenarioSpec&, const Point& p) -> MetricRow {
        if (p.value("i") == 2) throw std::runtime_error("boom");
        MetricRow row;
        row.set("ok", true);
        return row;
    };
    const SweepResult parallel = runSweep(def, SweepOptions{4, {}});
    EXPECT_FALSE(parallel.ok);
    EXPECT_FALSE(parallel.error.empty());
    // The diagnostic names the failing scenario + grid point and carries
    // the exception text (workers print uncaught what() to the captured
    // stderr before dying).
    EXPECT_NE(parallel.error.find("test_failure"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("i=2"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("boom"), std::string::npos) << parallel.error;
    ASSERT_EQ(parallel.failures.size(), 1u);
    EXPECT_TRUE(parallel.failures[0].taskKnown);
    EXPECT_EQ(parallel.failures[0].taskIndex, 2u);
}

TEST(ScenarioSweep, KilledWorkerIsAttributedToItsRunPoint) {
    // A worker dying MID-POINT (SIGKILL — no exception, no exit handler:
    // the OOM-killer shape) must be attributed to the exact scenario and
    // grid point it was executing, with the stderr it managed to write.
    ScenarioDef def;
    def.name = "test_killed";
    def.axes = {{"i", {0, 1, 2, 3, 4, 5}}};
    def.seeds = {9};
    def.measure = [](const ScenarioSpec&, const Point& p) -> MetricRow {
        if (p.value("i") == 3) {
            std::fprintf(stderr, "about to die on point three\n");
            std::fflush(stderr);
            ::raise(SIGKILL);
        }
        MetricRow row;
        row.set("ok", true);
        return row;
    };
    const SweepResult parallel = runSweep(def, SweepOptions{3, {}});
    ASSERT_FALSE(parallel.ok);
    EXPECT_NE(parallel.error.find("signal 9"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("test_killed"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("i=3"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("seed=9"), std::string::npos) << parallel.error;
    EXPECT_NE(parallel.error.find("about to die on point three"), std::string::npos)
        << parallel.error;
    ASSERT_EQ(parallel.failures.size(), 1u);
    EXPECT_TRUE(parallel.failures[0].taskKnown);
    EXPECT_EQ(parallel.failures[0].taskIndex, 3u);
    EXPECT_NE(parallel.failures[0].stderrTail.find("about to die"), std::string::npos);
}

// --- Path equivalence vs the pre-refactor drivers --------------------------

TEST(ScenarioEquivalence, BulkEngineReplaysPreRefactorRngStream_Sec72Path) {
    // bench_sec72_hops points (reduced byte counts keep the suite fast; the
    // engine sees the same reduction, so stream equality is exact).
    for (const std::size_t hops : {std::size_t(1), std::size_t(3)}) {
        for (const std::uint64_t seed : {std::uint64_t(1), std::uint64_t(2)}) {
            reference::BulkOptions old;
            old.hops = hops;
            old.totalBytes = 15000;
            old.retryDelayMax = sim::fromMillis(40);
            old.mss = mssForFrames(5);
            old.windowSegments = 4;
            old.seed = seed;
            const reference::BulkResult expected = reference::runBulkTransfer(old);

            ScenarioSpec spec;
            spec.topology.hops = hops;
            spec.topology.retryDelayMax = sim::fromMillis(40);
            spec.topology.queueCapacityPackets = 24;
            spec.workload.totalBytes = 15000;
            const BulkRunResult actual = runBulk(spec, seed);

            EXPECT_EQ(actual.rngDigest, expected.rngDigest)
                << "hops=" << hops << " seed=" << seed;
            EXPECT_EQ(actual.framesTransmitted, expected.framesTransmitted);
            EXPECT_EQ(actual.bytes, expected.bytes);
            EXPECT_DOUBLE_EQ(actual.goodputKbps, expected.goodputKbps);
            EXPECT_TRUE(actual.contentOk);
        }
    }
}

TEST(ScenarioEquivalence, BulkEngineReplaysPreRefactorRngStream_Downlink) {
    reference::BulkOptions old;
    old.hops = 1;
    old.totalBytes = 12000;
    old.retryDelayMax = 0;
    old.mss = mssForFrames(5);
    old.uplink = false;
    old.seed = 3;
    const reference::BulkResult expected = reference::runBulkTransfer(old);

    ScenarioSpec spec;
    spec.topology.hops = 1;
    spec.topology.retryDelayMax = sim::Time(0);
    spec.topology.queueCapacityPackets = 24;
    spec.workload.totalBytes = 12000;
    spec.workload.uplink = false;
    const BulkRunResult actual = runBulk(spec, 3);
    EXPECT_EQ(actual.rngDigest, expected.rngDigest);
    EXPECT_DOUBLE_EQ(actual.goodputKbps, expected.goodputKbps);
}

TEST(ScenarioEquivalence, AnemometerSpecBindsPreRefactorOptions_Fig10Path) {
    // bench_fig10_table8_day's runDay() options (duration cut to 1 h so the
    // suite stays fast; both sides see the same cut).
    harness::AnemometerOptions old;
    old.protocol = harness::SensorProtocol::kTcp;
    old.batching = true;
    old.diurnal = true;
    old.duration = 1 * sim::kHour;
    old.warmup = 2 * sim::kMinute;
    old.mssFrames = 3;
    old.seed = 7;
    const harness::AnemometerResult expected = harness::runAnemometer(old);

    ScenarioSpec spec;
    spec.workload.kind = WorkloadKind::kAnemometer;
    spec.workload.anemometer.protocol = harness::SensorProtocol::kTcp;
    spec.workload.anemometer.batching = true;
    spec.workload.anemometer.diurnal = true;
    spec.workload.anemometer.duration = 1 * sim::kHour;
    spec.workload.anemometer.warmup = 2 * sim::kMinute;
    spec.workload.anemometer.mssFrames = 3;
    const harness::AnemometerResult actual = runAnemometerSpec(spec, 7);

    EXPECT_NE(expected.rngDigest, 0u);
    EXPECT_EQ(actual.rngDigest, expected.rngDigest);
    EXPECT_EQ(actual.generated, expected.generated);
    EXPECT_EQ(actual.delivered, expected.delivered);
    EXPECT_EQ(actual.hourlyRadioDutyCycle.size(), expected.hourlyRadioDutyCycle.size());
}

// --- New topologies --------------------------------------------------------

TEST(ScenarioTopology, GridRoutesReachTheCloudFromTheFarCorner) {
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kGrid;
    spec.topology.nodes = 9;
    spec.topology.retryDelayMax = sim::fromMillis(40);
    spec.topology.queueCapacityPackets = 24;
    spec.workload.totalBytes = 5000;
    spec.workload.timeLimit = 5 * sim::kMinute;
    const BulkRunResult r = runBulk(spec, 1);
    EXPECT_TRUE(r.contentOk);
    EXPECT_EQ(r.bytes, 5000u);
    EXPECT_GT(r.goodputKbps, 0.0);
}

TEST(ScenarioTopology, StarIsSingleHopEverywhere) {
    auto tb = buildTestbed(
        [] {
            TopologySpec t;
            t.kind = TopologyKind::kStar;
            t.nodes = 6;
            return t;
        }(),
        1);
    ASSERT_EQ(tb->nodeCount(), 6u);
    // Every spoke is within radio range of the border router.
    for (std::size_t i = 1; i < tb->nodeCount(); ++i) {
        EXPECT_TRUE(
            tb->channel().inRange(tb->node(0).radio(), tb->node(i).radio()));
    }
}

TEST(ScenarioTopology, MultiFlowRunsMixedDirectionsOnTheOfficeTree) {
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kOffice;
    spec.topology.retryDelayMax = sim::fromMillis(40);
    spec.workload.kind = WorkloadKind::kMultiFlow;
    spec.workload.multiFlowDuration = 30 * sim::kSecond;
    spec.workload.flows = {{12, true, 4000}, {13, false, 4000}};
    const MultiFlowResult r = runMultiFlow(spec, 1);
    ASSERT_EQ(r.flows.size(), 2u);
    EXPECT_GT(r.flows[0].goodputKbps, 0.0);
    EXPECT_GT(r.flows[1].goodputKbps, 0.0);
    EXPECT_GT(r.jainFairness, 0.0);
    EXPECT_LE(r.jainFairness, 1.0);
}

// --- Adaptive channel mode -------------------------------------------------

TEST(ScenarioChannel, AutoModeFlipsAtTheRadioThreshold) {
    sim::Simulator simulator;
    phy::Channel channel(simulator, 12.0);
    EXPECT_EQ(channel.deliveryMode(), phy::Channel::DeliveryMode::kAuto);
    EXPECT_EQ(channel.effectiveMode(), phy::Channel::DeliveryMode::kLinearScan);

    std::vector<std::unique_ptr<phy::Radio>> radios;
    for (std::size_t i = 0; i < phy::Channel::kAutoLinearThreshold; ++i) {
        radios.push_back(std::make_unique<phy::Radio>(
            simulator, channel, phy::NodeId(i + 1), phy::Position{double(i), 0.0}));
        const bool belowThreshold = radios.size() < phy::Channel::kAutoLinearThreshold;
        EXPECT_EQ(channel.effectiveMode(),
                  belowThreshold ? phy::Channel::DeliveryMode::kLinearScan
                                 : phy::Channel::DeliveryMode::kSpatialIndex);
    }
}

// --- Registry ---------------------------------------------------------------

TEST(ScenarioRegistry, AddAndFind) {
    Registry registry;  // fresh instance (not the global singleton)
    ScenarioDef def;
    def.name = "x";
    registry.add(def);
    EXPECT_NE(registry.find("x"), nullptr);
    EXPECT_EQ(registry.find("y"), nullptr);
}
