// End-to-end integration: full TCP over radio + CSMA MAC + 6LoWPAN +
// mesh forwarding. Validates the whole stack and checks the headline §6
// throughput shape: single-hop goodput in the tens of kb/s, bounded by §6.4.
#include <gtest/gtest.h>

#include "tcplp/app/bulk.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/model/models.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

tcp::TcpConfig moteConfig() {
    tcp::TcpConfig c;
    c.mss = 462;
    c.sendBufferBytes = 4 * 462;
    c.recvBufferBytes = 4 * 462;
    return c;
}

tcp::TcpConfig serverConfig() {
    tcp::TcpConfig c;
    c.mss = 462;
    c.sendBufferBytes = 16384;
    c.recvBufferBytes = 16384;
    return c;
}

struct UplinkRun {
    double goodputKbps = 0.0;
    bool contentOk = false;
    std::size_t bytes = 0;
    tcp::TcpStats clientStats;
};

// Mote (last node of the line) uploads `totalBytes` to the cloud host.
UplinkRun runUplink(std::size_t hops, std::size_t totalBytes, sim::Time retryDelayMax,
                    std::uint64_t seed = 1, double linkLoss = 0.0) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.linkLoss = linkLoss;
    cfg.nodeDefaults.macConfig.retryDelayMax = retryDelayMax;
    auto tb = harness::Testbed::line(hops, cfg);

    mesh::Node& mote = *tb->findNode(phy::NodeId(9 + hops));
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    cloudStack.listen(80, serverConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView data) { meter.onData(data); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    tcp::TcpSocket& client = moteStack.createSocket(moteConfig());
    app::BulkSender sender(client, totalBytes);
    client.connect(tb->cloud().address(), 80);

    tb->simulator().runUntil(30 * sim::kMinute);

    UplinkRun out;
    out.goodputKbps = meter.goodputKbps();
    out.contentOk = meter.contentOk();
    out.bytes = meter.bytes();
    out.clientStats = client.stats();
    return out;
}

TEST(RadioIntegration, SingleHopBulkUplinkDeliversAllBytes) {
    const auto run = runUplink(1, 100000, 0);
    EXPECT_EQ(run.bytes, 100000u);
    EXPECT_TRUE(run.contentOk);
}

TEST(RadioIntegration, SingleHopGoodputNearPaperRange) {
    // Paper §6.4: ~64-75 kb/s measured, 82 kb/s upper bound.
    const auto run = runUplink(1, 200000, 0);
    EXPECT_GT(run.goodputKbps, 40.0);
    const double bound =
        model::singleHopUpperBound(462.0, 5.0) * 8.0 / 1000.0;  // kb/s
    EXPECT_LT(run.goodputKbps, bound * 1.15);
}

TEST(RadioIntegration, MultihopGoodputDegradesWithHops) {
    // §7.2: B, ~B/2, ~B/3 for 1, 2, 3 hops.
    const double g1 = runUplink(1, 120000, sim::fromMillis(40)).goodputKbps;
    const double g2 = runUplink(2, 80000, sim::fromMillis(40)).goodputKbps;
    const double g3 = runUplink(3, 60000, sim::fromMillis(40)).goodputKbps;
    EXPECT_GT(g1, g2);
    EXPECT_GT(g2, g3);
    EXPECT_LT(g2, g1 * 0.75);  // at most ~B/1.3; expect near B/2
    EXPECT_LT(g3, g1 * 0.55);
    EXPECT_GT(g3, g1 * 0.15);
}

TEST(RadioIntegration, LinkRetryDelayImprovesMultihopLoss) {
    // §7.1 / Fig. 6(b): with d=0, hidden-terminal collisions inflate TCP
    // segment loss; d=40ms masks them.
    const auto noDelay = runUplink(3, 50000, 0, 3);
    const auto withDelay = runUplink(3, 50000, sim::fromMillis(40), 3);
    EXPECT_EQ(noDelay.bytes, 50000u);
    EXPECT_EQ(withDelay.bytes, 50000u);
    const auto lossEvents = [](const tcp::TcpStats& s) {
        return s.fastRetransmissions + s.timeouts;
    };
    EXPECT_LE(lossEvents(withDelay.clientStats), lossEvents(noDelay.clientStats));
}

TEST(RadioIntegration, DownlinkWorksThroughBorderRouter) {
    auto tb = harness::Testbed::line(2, {});
    mesh::Node& mote = *tb->findNode(11);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    moteStack.listen(7000, moteConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView data) { meter.onData(data); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    tcp::TcpSocket& cloudSock = cloudStack.createSocket(serverConfig());
    app::BulkSender sender(cloudSock, 30000);
    cloudSock.connect(mote.address(), 7000);
    tb->simulator().runUntil(10 * sim::kMinute);

    EXPECT_EQ(meter.bytes(), 30000u);
    EXPECT_TRUE(meter.contentOk());
}

TEST(RadioIntegration, SurvivesFadingLoss) {
    const auto run = runUplink(2, 40000, sim::fromMillis(40), 5, /*linkLoss=*/0.05);
    EXPECT_EQ(run.bytes, 40000u);
    EXPECT_TRUE(run.contentOk);
}

TEST(RadioIntegration, OfficeTopologyReachesLeafNodes) {
    auto tb = harness::Testbed::office({});
    // Node 15 should be several hops out; run a small upload from it.
    mesh::Node& mote = *tb->findNode(15);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());

    app::GoodputMeter meter(tb->simulator());
    cloudStack.listen(80, serverConfig(), [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView data) { meter.onData(data); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = moteStack.createSocket(moteConfig());
    app::BulkSender sender(client, 20000);
    client.connect(tb->cloud().address(), 80);
    tb->simulator().runUntil(10 * sim::kMinute);

    EXPECT_EQ(meter.bytes(), 20000u);
    EXPECT_TRUE(meter.contentOk());
}

}  // namespace
