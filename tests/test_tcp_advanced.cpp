// Advanced TCP machinery: SACK recovery, persist/zero-window probes, ECN,
// header prediction, challenge ACKs, timestamp-based RTT, congestion window
// dynamics (the behaviors Table 1 credits to full-scale TCP).
#include <gtest/gtest.h>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

struct TcpPair {
    sim::Simulator simulator;
    harness::Pipe pipe;
    tcp::TcpStack clientStack;
    tcp::TcpStack serverStack;
    tcp::TcpSocket* client = nullptr;
    tcp::TcpSocket* server = nullptr;
    Bytes received;
    bool autoDrain = true;

    explicit TcpPair(harness::Pipe::Config pipeConfig = {}, tcp::TcpConfig clientCfg = {},
                     tcp::TcpConfig serverCfg = {}, std::uint64_t seed = 7,
                     bool drain = true)
        : simulator(seed),
          pipe(simulator, pipeConfig),
          clientStack(pipe.a()),
          serverStack(pipe.b()),
          autoDrain(drain) {
        serverStack.listen(80, serverCfg, [this](tcp::TcpSocket& s) {
            server = &s;
            if (autoDrain)
                s.setOnData([this](BytesView data) { append(received, data); });
            s.setOnPeerFin([&s] { s.close(); });
        });
        client = &clientStack.createSocket(clientCfg);
    }

    void connectAndSettle() {
        client->connect(pipe.b().address(), 80);
        simulator.runUntil(simulator.now() + 2 * sim::kSecond);
    }

    void pumpPattern(std::size_t total) {
        auto offset = std::make_shared<std::size_t>(0);
        auto pump = [this, offset, total] {
            while (*offset < total) {
                const Bytes d = patternBytes(*offset, std::min<std::size_t>(462, total - *offset));
                const std::size_t n = client->send(d);
                if (n == 0) break;
                *offset += n;
            }
        };
        client->setOnSendSpace(pump);
        pump();
    }
};

TEST(TcpSack, SackBlocksAdvertisedOnGap) {
    // Drop exactly one data packet; the receiver's dup ACKs must carry SACK.
    TcpPair t;
    t.connectAndSettle();

    // Temporarily sever the path while we inject a gap scenario via loss.
    t.pipe.config().lossAtoB = 0.25;
    t.pumpPattern(20000);
    t.simulator.runUntil(5 * sim::kMinute);
    t.pipe.config().lossAtoB = 0.0;
    t.simulator.runUntil(10 * sim::kMinute);

    EXPECT_EQ(t.received.size(), 20000u);
    EXPECT_TRUE(matchesPattern(0, t.received));
    // SACK-driven retransmissions occurred (loss with 4-segment windows).
    EXPECT_GT(t.client->stats().retransmissions, 0u);
}

TEST(TcpSack, DisabledSackStillRecovers) {
    tcp::TcpConfig noSack;
    noSack.sack = false;
    harness::Pipe::Config lossy;
    lossy.lossAtoB = 0.15;
    TcpPair t(lossy, noSack, noSack, 21);
    t.connectAndSettle();
    EXPECT_FALSE(t.client->tcb().sackEnabled);
    t.pumpPattern(15000);
    t.simulator.runUntil(20 * sim::kMinute);
    EXPECT_EQ(t.received.size(), 15000u);
    EXPECT_TRUE(matchesPattern(0, t.received));
}

TEST(TcpPersist, ZeroWindowProbedAndRecovered) {
    // Server never drains (no onData): its window closes; client must probe.
    TcpPair t({}, {}, {}, 7, /*drain=*/false);
    t.connectAndSettle();

    t.pumpPattern(8000);  // recv buffer is 2048: window will shut
    t.simulator.runUntil(3 * sim::kMinute);
    EXPECT_EQ(t.client->tcb().sndWnd, 0u);
    EXPECT_GT(t.client->stats().zeroWindowProbes, 0u);

    // Server app wakes up and reads; window reopens; transfer completes.
    ASSERT_NE(t.server, nullptr);
    Bytes drained;
    while (true) {
        const sim::Time before = t.simulator.now();
        Bytes chunk = t.server->read(4096);
        append(drained, chunk);
        t.simulator.runUntil(before + 30 * sim::kSecond);
        if (drained.size() >= 8000) break;
        if (t.simulator.now() > 30 * sim::kMinute) break;
    }
    EXPECT_EQ(drained.size(), 8000u);
    EXPECT_TRUE(matchesPattern(0, drained));
}

TEST(TcpPersist, ProbeScheduleUsesUnbackedRtoBase) {
    // Regression: the persist interval used to be computed as
    // `rto << persistShift` where `rto` could already be exponentially
    // backed off by retransmit timeouts before the connection fell into
    // persist mode, double-scaling the probe schedule. The fix snapshots
    // the un-backed-off RTO (from srtt/rttvar, ~1 s here after the minRto
    // clamp) as the shift base when persist mode is entered, so the probe
    // gaps are clamp(1 s << shift, 5 s, 60 s): 5, 5, 5, 8, 16, 32 seconds —
    // independent of how backed-off `rto` was at entry.
    TcpPair t({}, {}, {}, 7, /*drain=*/false);
    t.connectAndSettle();
    // Measure an RTT so the RTO base is the srtt estimate, not initialRto.
    t.pumpPattern(500);
    t.simulator.runUntil(t.simulator.now() + 5 * sim::kSecond);
    ASSERT_GT(t.client->tcb().srtt, 0);

    // Black-hole the ACK path: the window-filling burst times out and backs
    // the RTO off several times before the healed path's zero-window ACK
    // finally lands the connection in persist mode.
    t.pipe.config().lossBtoA = 1.0;
    t.pumpPattern(8000);  // server recv buffer is 2048: window will shut
    t.simulator.runUntil(t.simulator.now() + 10 * sim::kSecond);
    EXPECT_GE(t.client->stats().timeouts, 2u);
    t.pipe.config().lossBtoA = 0.0;
    // Step in fine increments until the healed ACK lands the connection in
    // persist mode, so probe sampling starts before the first probe fires.
    for (int i = 0; i < 600 && !t.client->tcb().persisting; ++i)
        t.simulator.runUntil(t.simulator.now() + 100 * sim::kMillisecond);
    ASSERT_TRUE(t.client->tcb().persisting);
    ASSERT_EQ(t.client->tcb().sndWnd, 0u);

    // Step simulated time and record when each zero-window probe goes out.
    std::vector<sim::Time> probeTimes;
    std::uint64_t seen = t.client->stats().zeroWindowProbes;
    const sim::Time start = t.simulator.now();
    while (t.simulator.now() < start + 150 * sim::kSecond && probeTimes.size() < 7) {
        t.simulator.runUntil(t.simulator.now() + sim::kSecond);
        if (t.client->stats().zeroWindowProbes > seen) {
            seen = t.client->stats().zeroWindowProbes;
            probeTimes.push_back(t.simulator.now());
        }
    }
    ASSERT_GE(probeTimes.size(), 6u);
    std::vector<sim::Time> gapsSeconds;
    for (std::size_t i = 1; i < 6; ++i)
        gapsSeconds.push_back((probeTimes[i] - probeTimes[i - 1]) / sim::kSecond);
    EXPECT_EQ(gapsSeconds, (std::vector<sim::Time>{5, 5, 8, 16, 32}));
    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
}

TEST(TcpRto, BackoffCollapsesOnFreshAckWithoutTimestamps) {
    // RFC 6298 §5.7: once an ACK for new data arrives after a retransmit
    // backoff, the RTO must be recomputed from srtt/rttvar — not left at
    // the doubled value. Without timestamps Karn's rule forbids sampling
    // retransmitted segments, so nothing else would ever repair it.
    tcp::TcpConfig noTs;
    noTs.timestamps = false;
    TcpPair t({}, noTs, noTs, 11);
    t.connectAndSettle();
    ASSERT_FALSE(t.client->tcb().tsEnabled);
    // No timestamps -> no RTT samples -> RTO stays at initialRto (3 s).
    ASSERT_EQ(t.client->currentRto(), 3 * sim::kSecond);

    // Black-hole the data path; one segment retransmits with backoff.
    t.pipe.config().lossAtoB = 1.0;
    t.pumpPattern(400);
    t.simulator.runUntil(t.simulator.now() + 25 * sim::kSecond);
    EXPECT_GE(t.client->stats().timeouts, 3u);
    const sim::Time backedOff = t.client->currentRto();
    EXPECT_GE(backedOff, 12 * sim::kSecond);  // 3 s doubled >= twice

    // Heal the path; the next retransmission is acked. The RTO must
    // collapse back to the (unmeasured) base, not stay at `backedOff`.
    t.pipe.config().lossAtoB = 0.0;
    t.simulator.runUntil(t.simulator.now() + 60 * sim::kSecond);
    EXPECT_EQ(t.received.size(), 400u);
    EXPECT_EQ(t.client->currentRto(), 3 * sim::kSecond);
}

TEST(TcpEcn, CongestionMarkReducesWindowWithoutLoss) {
    tcp::TcpConfig ecnCfg;
    ecnCfg.ecn = true;
    harness::Pipe::Config marks;
    marks.ceMarkProbability = 0.3;  // mark, never drop
    TcpPair t(marks, ecnCfg, ecnCfg, 9);
    t.connectAndSettle();
    EXPECT_TRUE(t.client->tcb().ecnEnabled);

    t.pumpPattern(30000);
    t.simulator.runUntil(10 * sim::kMinute);
    EXPECT_EQ(t.received.size(), 30000u);
    EXPECT_GT(t.client->stats().ecnResponses, 0u);
    // ECN avoided actual retransmissions on a loss-free path.
    EXPECT_EQ(t.client->stats().timeouts, 0u);
}

TEST(TcpEcn, NotNegotiatedWhenPeerLacksIt) {
    tcp::TcpConfig ecnCfg;
    ecnCfg.ecn = true;
    tcp::TcpConfig plain;  // server without ECN
    TcpPair t({}, ecnCfg, plain);
    t.connectAndSettle();
    EXPECT_FALSE(t.client->tcb().ecnEnabled);
}

TEST(TcpHeaderPrediction, FastPathHitsOnBulkTransfer) {
    TcpPair t;
    t.connectAndSettle();
    t.pumpPattern(30000);
    t.simulator.runUntil(5 * sim::kMinute);
    EXPECT_EQ(t.received.size(), 30000u);
    // In-order bulk data on a clean path: most server-side segments and
    // most client-side pure ACKs hit the prediction fast path.
    EXPECT_GT(t.server->stats().headerPredictions, 30u);
    EXPECT_GT(t.client->stats().headerPredictions, 10u);
}

TEST(TcpChallengeAck, BlindSynIgnoredWithChallenge) {
    TcpPair t;
    t.connectAndSettle();
    ASSERT_EQ(t.client->state(), tcp::State::kEstablished);

    // Forge an in-window SYN at the client (RFC 5961 blind attack).
    tcp::Segment syn;
    syn.srcPort = 80;
    syn.dstPort = t.client->localPort();
    syn.flags.syn = true;
    syn.seq = t.client->tcb().rcvNxt + 5;
    ip6::Packet p;
    p.src = t.pipe.b().address();
    p.dst = t.pipe.a().address();
    p.nextHeader = ip6::kProtoTcp;
    p.payload = syn.encode();
    t.pipe.b().sendPacket(std::move(p));
    t.simulator.runUntil(t.simulator.now() + 2 * sim::kSecond);

    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);  // survived
    EXPECT_GE(t.client->stats().challengeAcks, 1u);
}

TEST(TcpChallengeAck, InWindowInexactRstDoesNotKill) {
    TcpPair t;
    t.connectAndSettle();
    tcp::Segment rst;
    rst.srcPort = 80;
    rst.dstPort = t.client->localPort();
    rst.flags.rst = true;
    rst.seq = t.client->tcb().rcvNxt + 100;  // in window, not exact
    ip6::Packet p;
    p.src = t.pipe.b().address();
    p.dst = t.pipe.a().address();
    p.nextHeader = ip6::kProtoTcp;
    p.payload = rst.encode();
    t.pipe.b().sendPacket(std::move(p));
    t.simulator.runUntil(t.simulator.now() + 2 * sim::kSecond);
    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
}

TEST(TcpRtt, TimestampsMeasureRttDespiteRetransmissions) {
    // §9.4: "the TCP timestamp option allows TCP to unambiguously determine
    // the RTT even for retransmitted segments" — samples stay near the true
    // RTT even under heavy loss.
    harness::Pipe::Config lossy;
    lossy.lossAtoB = 0.2;
    lossy.oneWayDelay = 100 * sim::kMillisecond;
    TcpPair t(lossy, {}, {}, 31);
    t.connectAndSettle();
    t.pumpPattern(15000);
    t.simulator.runUntil(30 * sim::kMinute);
    ASSERT_EQ(t.received.size(), 15000u);
    ASSERT_GE(t.client->stats().rttSamples.count(), 20u);
    // True RTT is ~200 ms (+delack); median sample must not be inflated to
    // retransmission timescales (seconds).
    EXPECT_LT(t.client->stats().rttSamples.median(), 600.0);
    EXPECT_GE(t.client->stats().rttSamples.median(), 190.0);
}

TEST(TcpCwnd, TraceShowsRecoveryAfterLoss) {
    harness::Pipe::Config lossy;
    lossy.lossAtoB = 0.08;
    TcpPair t(lossy, {}, {}, 13);
    t.connectAndSettle();

    std::vector<std::uint32_t> cwnds;
    t.client->setCwndTracer(
        [&](sim::Time, std::uint32_t cwnd, std::uint32_t) { cwnds.push_back(cwnd); });
    t.pumpPattern(40000);
    t.simulator.runUntil(30 * sim::kMinute);
    ASSERT_EQ(t.received.size(), 40000u);

    // §7.3: with 4-segment buffers, cwnd dips on loss but recovers to the
    // cap quickly — the max value must be the buffer cap, reached many times.
    const std::uint32_t cap = 2048;  // sendBufferBytes default
    std::size_t atCap = 0;
    for (auto c : cwnds) atCap += (c >= cap);
    EXPECT_GT(atCap, 10u);
    EXPECT_GT(t.client->stats().fastRetransmissions + t.client->stats().timeouts, 0u);
}

TEST(TcpDupAck, ThreeDupAcksTriggerFastRetransmit) {
    TcpPair t;
    t.connectAndSettle();
    // Warm up cwnd to the buffer cap so a full 4-segment window can fly.
    t.client->send(patternBytes(0, 2000));
    t.simulator.runUntil(t.simulator.now() + 30 * sim::kSecond);
    ASSERT_EQ(t.received.size(), 2000u);

    // Lose exactly the next segment, then send three more behind it.
    t.pipe.config().lossAtoB = 1.0;
    t.client->send(patternBytes(2000, 462));  // lost
    t.simulator.runUntil(t.simulator.now() + 100 * sim::kMillisecond);
    t.pipe.config().lossAtoB = 0.0;
    t.client->send(patternBytes(2462, 462 * 3));  // arrive OOO -> 3 dup ACKs
    t.simulator.runUntil(t.simulator.now() + 3 * sim::kSecond);

    EXPECT_EQ(t.received.size(), 2000u + 462u * 4);
    EXPECT_TRUE(matchesPattern(0, t.received));
    EXPECT_GE(t.client->stats().fastRetransmissions, 1u);
    EXPECT_EQ(t.client->stats().timeouts, 0u);  // recovered without RTO
}

TEST(TcpMemory, ActiveSocketStateWithinMoteBudget) {
    // Tables 3/4: active connection protocol state is a few hundred bytes.
    EXPECT_LE(sizeof(tcp::Tcb), 256u);
    // Passive sockets are far smaller than active ones (§4.1).
    EXPECT_LT(sizeof(tcp::PassiveSocket), sizeof(tcp::TcpSocket) / 4);
}

TEST(TcpClose, SimultaneousCloseReachesClosed) {
    TcpPair t;
    t.connectAndSettle();
    t.client->send(toBytes("x"));
    t.simulator.runUntil(t.simulator.now() + 2 * sim::kSecond);
    // Close both ends at the same instant.
    t.client->close();
    t.server->close();
    t.simulator.runUntil(t.simulator.now() + 60 * sim::kSecond);
    EXPECT_EQ(t.client->state(), tcp::State::kClosed);
    EXPECT_EQ(t.server->state(), tcp::State::kClosed);
}

TEST(TcpIdle, NoTrafficMeansNoSegments) {
    // A quiescent established connection sends nothing (relevant for the
    // duty-cycle experiments: idle TCP costs no radio time).
    TcpPair t;
    t.connectAndSettle();
    const auto sentBefore = t.client->stats().segsSent;
    t.simulator.runUntil(t.simulator.now() + 10 * sim::kMinute);
    EXPECT_EQ(t.client->stats().segsSent, sentBefore);
}

}  // namespace
