// Fault-plan expansion: the determinism contract of the chaos campaigns.
//
// expandFaultPlan must be a pure function of (plan, seed) — fixed events
// pass through untouched, randomized bursts draw from a dedicated derived
// stream within the declared bounds, and the result is totally ordered by a
// stable key. Everything downstream (installFaults, golden-pinned chaos
// rows) leans on exactly these properties.
#include <gtest/gtest.h>

#include "tcplp/sim/fault.hpp"

using namespace tcplp;
using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::RandomFaultBurst;

namespace {

FaultPlan stormPlan() {
    FaultPlan plan;
    RandomFaultBurst burst;
    burst.kind = FaultKind::kNodeReboot;
    burst.count = 8;
    burst.windowStart = 10 * sim::kSecond;
    burst.windowEnd = 120 * sim::kSecond;
    burst.durationMin = 2 * sim::kSecond;
    burst.durationMax = 9 * sim::kSecond;
    burst.candidates = {2, 3, 4, 5, 6, 7};
    plan.random = {burst};
    return plan;
}

bool sameEvents(const std::vector<FaultEvent>& a, const std::vector<FaultEvent>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].at != b[i].at ||
            a[i].duration != b[i].duration || a[i].target != b[i].target ||
            a[i].peer != b[i].peer) {
            return false;
        }
    }
    return true;
}

}  // namespace

TEST(Fault, EmptyPlanExpandsToNothing) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_TRUE(sim::expandFaultPlan(plan, 1).empty());
}

TEST(Fault, FixedEventsPassThroughTimeSorted) {
    FaultPlan plan;
    plan.fixed = {
        {FaultKind::kLinkBlackout, 45 * sim::kSecond, 7 * sim::kSecond, 1, 10},
        {FaultKind::kNodeReboot, 20 * sim::kSecond, 20 * sim::kSecond, 1, 0},
        {FaultKind::kLinkBlackout, 15 * sim::kSecond, 10 * sim::kSecond, 1, 10},
    };
    const std::vector<FaultEvent> events = sim::expandFaultPlan(plan, 99);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at, 15 * sim::kSecond);
    EXPECT_EQ(events[1].at, 20 * sim::kSecond);
    EXPECT_EQ(events[1].kind, FaultKind::kNodeReboot);
    EXPECT_EQ(events[2].at, 45 * sim::kSecond);
    // A purely fixed plan expands identically under every seed.
    EXPECT_TRUE(sameEvents(events, sim::expandFaultPlan(plan, 12345)));
}

TEST(Fault, SameSeedSamePlanExpandIdentically) {
    const FaultPlan plan = stormPlan();
    const auto a = sim::expandFaultPlan(plan, 7);
    const auto b = sim::expandFaultPlan(plan, 7);
    ASSERT_EQ(a.size(), 8u);
    EXPECT_TRUE(sameEvents(a, b));
}

TEST(Fault, DifferentSeedsDrawDifferentSchedules) {
    const FaultPlan plan = stormPlan();
    const auto a = sim::expandFaultPlan(plan, 1);
    const auto b = sim::expandFaultPlan(plan, 2);
    EXPECT_FALSE(sameEvents(a, b));
}

TEST(Fault, BurstDrawsStayWithinDeclaredBounds) {
    const FaultPlan plan = stormPlan();
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const std::vector<FaultEvent> events = sim::expandFaultPlan(plan, seed);
        ASSERT_EQ(events.size(), 8u);
        sim::Time prev = 0;
        for (const FaultEvent& e : events) {
            EXPECT_EQ(e.kind, FaultKind::kNodeReboot);
            EXPECT_GE(e.at, 10 * sim::kSecond);
            EXPECT_LT(e.at, 120 * sim::kSecond);  // window end is exclusive
            EXPECT_GE(e.duration, 2 * sim::kSecond);
            EXPECT_LE(e.duration, 9 * sim::kSecond);  // duration max inclusive
            EXPECT_GE(e.target, 2);
            EXPECT_LE(e.target, 7);
            EXPECT_EQ(e.peer, 0);  // reboots have no link peer
            EXPECT_GE(e.at, prev) << "expansion must be time-sorted";
            prev = e.at;
        }
    }
}

TEST(Fault, MixedPlanKeepsFixedEventsVerbatim) {
    FaultPlan plan = stormPlan();
    const FaultEvent pinned{FaultKind::kCorruptionBurst, 33 * sim::kSecond,
                            3 * sim::kSecond, 0, 0};
    plan.fixed = {pinned};
    const std::vector<FaultEvent> events = sim::expandFaultPlan(plan, 4);
    ASSERT_EQ(events.size(), 9u);
    int found = 0;
    for (const FaultEvent& e : events) {
        if (e.kind == FaultKind::kCorruptionBurst) {
            ++found;
            EXPECT_EQ(e.at, pinned.at);
            EXPECT_EQ(e.duration, pinned.duration);
        }
    }
    EXPECT_EQ(found, 1);
}

TEST(Fault, KindNamesAreStable) {
    EXPECT_STREQ(sim::faultKindName(FaultKind::kNodeReboot), "node_reboot");
    EXPECT_STREQ(sim::faultKindName(FaultKind::kLinkBlackout), "link_blackout");
    EXPECT_STREQ(sim::faultKindName(FaultKind::kCorruptionBurst), "corruption_burst");
}
