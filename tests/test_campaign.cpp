// Campaign orchestrator + golden corpus coverage.
//
// The load-bearing guarantees pinned here:
//
//  1. Cross-scenario determinism: one worker pool executing points from
//     DIFFERENT scenarios back-to-back produces canonical output
//     byte-identical to the serial run, merged registry-order across
//     scenarios and grid-order within.
//
//  2. Resumability: a campaign interrupted by a dying worker resumes from
//     its manifest (completed points skipped, their recorded rows merged)
//     and the final output is byte-identical to an uninterrupted run.
//
//  3. Golden regression: --golden writes canonical per-scenario artifacts,
//     --check passes against an unchanged tree, and a deliberate knob
//     perturbation (an MSS change on a real bulk scenario) fails the check
//     with the first diverging row named.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tcplp/scenario/campaign.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratchDir(const char* name) {
    const std::string dir =
        std::string(::testing::TempDir()) + "tcplp_campaign_" + name + "_" +
        std::to_string(::getpid());
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Mechanical scenario: rows are pure functions of (axes, seed) — fast, and
/// any machinery bug (dropped row, reordered merge, worker-state leak)
/// shows up as a byte diff.
ScenarioDef mechanicalDef(const std::string& name, double scale) {
    ScenarioDef def;
    def.name = name;
    def.axes = {{"i", {0, 1, 2}}, {"j", {10, 20}}};
    def.seeds = {1, 2};
    def.measure = [scale](const ScenarioSpec&, const Point& p) {
        MetricRow row;
        row.set("value", scale * p.value("i") + p.value("j") + double(p.seed) / 8.0)
            .set("wall_ms", 123.456)  // timing field: must never reach output
            .set("tag", "mech");
        return row;
    };
    return def;
}

/// Real (simulated) bulk scenario, small enough for a test suite: the
/// golden perturbation check below uses it so an MSS knob change flows
/// through the full engine into the corpus diff.
ScenarioDef smallBulkDef() {
    ScenarioDef def;
    def.name = "camp_bulk";
    def.base.topology.retryDelayMax = sim::fromMillis(40);
    def.base.topology.queueCapacityPackets = 24;
    def.base.workload.totalBytes = 8000;
    def.base.workload.timeLimit = 5 * sim::kMinute;
    def.axes = {{"hops", {1, 2}}};
    def.seeds = {1, 2};
    def.bind = [](ScenarioSpec& s, const Point& p) {
        s.topology.hops = std::size_t(p.value("hops"));
    };
    return def;
}

}  // namespace

// --- Timing-field canonicalization -----------------------------------------

TEST(CampaignCanonical, TimingFieldListMatchesTheDocumentedConvention) {
    EXPECT_TRUE(isTimingField("wall_ms"));
    EXPECT_TRUE(isTimingField("backend"));
    EXPECT_TRUE(isTimingField("cores"));
    EXPECT_TRUE(isTimingField("speedup"));
    EXPECT_TRUE(isTimingField("auto_speedup"));
    EXPECT_TRUE(isTimingField("wheel_vs_heap_speedup"));
    EXPECT_TRUE(isTimingField("pooled_events_per_sec"));
    EXPECT_TRUE(isTimingField("legacy_ns_per_event"));
    EXPECT_TRUE(isTimingField("serial_wall_ms"));
    // Simulated-time metrics are NOT timing fields: they must stay pinned.
    EXPECT_FALSE(isTimingField("rtt_median_ms"));
    EXPECT_FALSE(isTimingField("goodput_kbps"));
    EXPECT_FALSE(isTimingField("rng_digest"));
    EXPECT_FALSE(isTimingField("lln_tx_time_ms"));
}

TEST(CampaignCanonical, StripKeepsOrderAndDropsOnlyTimingFields) {
    MetricRow row;
    row.set("a", 1).set("wall_ms", 2.5).set("b", "x").set("events_per_sec", 9.0);
    const MetricRow stripped = stripTimingFields(row);
    EXPECT_EQ(toJsonLine(stripped), "{\"a\":1,\"b\":\"x\"}");
    EXPECT_EQ(toCanonicalJsonLine(row), "{\"a\":1,\"b\":\"x\"}");
}

// --- Cross-scenario sharding ------------------------------------------------

TEST(Campaign, CrossScenarioShardingIsByteIdenticalToSerial) {
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0),
                                           mechanicalDef("camp_b", 5.0),
                                           smallBulkDef()};
    CampaignOptions serialOpt;
    serialOpt.jobs = 1;
    CampaignOptions parallelOpt;
    parallelOpt.jobs = 5;  // odd, non-divisor: points from different
                           // scenarios interleave within one worker
    const CampaignResult serial = runCampaign(defs, serialOpt);
    const CampaignResult parallel = runCampaign(defs, parallelOpt);
    ASSERT_TRUE(serial.ok) << serial.error;
    ASSERT_TRUE(parallel.ok) << parallel.error;
    ASSERT_EQ(serial.scenarios.size(), 3u);
    EXPECT_EQ(serial.pointsRun, 12u + 12u + 4u);
    EXPECT_EQ(serial.canonicalLines(), parallel.canonicalLines());
    // Merge order: selection order across scenarios, grid order within.
    EXPECT_EQ(serial.scenarios[0].def.name, "camp_a");
    EXPECT_EQ(serial.scenarios[2].def.name, "camp_bulk");
    for (std::size_t i = 0; i < serial.scenarios[2].records.size(); ++i)
        EXPECT_EQ(serial.scenarios[2].records[i].point.index, i);
    // Timing fields never reach canonical output.
    EXPECT_EQ(serial.canonicalLines().find("wall_ms"), std::string::npos);
    // The real scenario's digests are live in both runs.
    for (const RunRecord& r : parallel.scenarios[2].records)
        EXPECT_NE(r.row.number("rng_digest"), 0.0);
}

TEST(Campaign, SeedOverrideAppliesToEveryScenario) {
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0),
                                           mechanicalDef("camp_b", 5.0)};
    CampaignOptions opt;
    opt.seedOverride = {7};
    const CampaignResult result = runCampaign(defs, opt);
    ASSERT_TRUE(result.ok) << result.error;
    for (const CampaignScenario& s : result.scenarios) {
        ASSERT_EQ(s.records.size(), 6u);  // 3x2 axes, one override seed
        for (const RunRecord& r : s.records) EXPECT_EQ(r.point.seed, 7u);
    }
}

// --- Resume -----------------------------------------------------------------

namespace {

/// Def whose measure kills the worker (hard _exit, no exception path) on
/// any point with i >= 2 while the poison flag file exists.
ScenarioDef poisonedDef(const std::string& flagPath) {
    ScenarioDef def;
    def.name = "camp_poison";
    def.axes = {{"i", {0, 1, 2, 3, 4, 5}}};
    def.seeds = {3};
    def.measure = [flagPath](const ScenarioSpec&, const Point& p) {
        if (p.value("i") >= 2 && fs::exists(flagPath)) {
            std::fprintf(stderr, "poisoned point %d\n", int(p.value("i")));
            std::fflush(stderr);
            ::_exit(7);
        }
        MetricRow row;
        row.set("value", 100.0 * p.value("i") + double(p.seed));
        return row;
    };
    return def;
}

}  // namespace

TEST(Campaign, ResumeAfterWorkerAbortIsByteIdenticalToUninterrupted) {
    const std::string dir = scratchDir("resume");
    const std::string flag = dir + "/poison.flag";
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0),
                                           poisonedDef(flag)};

    // Interrupt: the poisoned points kill their workers partway through.
    std::ofstream(flag) << "1";
    CampaignOptions opt;
    opt.jobs = 2;
    opt.outDir = dir + "/out";
    const CampaignResult interrupted = runCampaign(defs, opt);
    ASSERT_FALSE(interrupted.ok);
    EXPECT_NE(interrupted.error.find("camp_poison"), std::string::npos)
        << interrupted.error;
    EXPECT_NE(interrupted.error.find("poisoned point"), std::string::npos)
        << interrupted.error;
    ASSERT_GT(interrupted.pointsRun, 0u);  // some points landed in the manifest

    // Resume with the poison cleared: completed points are skipped, the
    // rest run, and the merged output matches a fresh uninterrupted run.
    fs::remove(flag);
    opt.resume = true;
    const CampaignResult resumed = runCampaign(defs, opt);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_GT(resumed.pointsResumed, 0u);
    EXPECT_LT(resumed.pointsRun, 12u + 6u);

    CampaignOptions freshOpt;
    freshOpt.jobs = 2;
    freshOpt.outDir = dir + "/fresh";
    const CampaignResult fresh = runCampaign(defs, freshOpt);
    ASSERT_TRUE(fresh.ok) << fresh.error;
    EXPECT_EQ(resumed.canonicalLines(), fresh.canonicalLines());

    // The per-scenario artifacts on disk are byte-identical too.
    for (const char* name : {"camp_a", "camp_poison"}) {
        std::ifstream a(opt.outDir + "/" + name + ".jsonl");
        std::ifstream b(freshOpt.outDir + "/" + name + ".jsonl");
        std::stringstream sa, sb;
        sa << a.rdbuf();
        sb << b.rdbuf();
        EXPECT_EQ(sa.str(), sb.str()) << name;
        EXPECT_FALSE(sa.str().empty()) << name;
    }
}

TEST(Campaign, ResumeSalvagesAManifestWithATruncatedTailFrame) {
    // The recorder can die mid-fwrite, leaving a partial ROW frame at the
    // manifest tail. Resume must salvage every complete frame before it,
    // rewrite the manifest clean, and still produce byte-identical output.
    const std::string dir = scratchDir("truncated");
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0)};
    CampaignOptions opt;
    opt.outDir = dir;
    const CampaignResult full = runCampaign(defs, opt);
    ASSERT_TRUE(full.ok);

    // Chop the manifest mid-way through its final frame.
    const std::string path = dir + "/MANIFEST";
    std::stringstream ss;
    {
        std::ifstream in(path, std::ios::binary);
        ss << in.rdbuf();
    }
    const std::string content = ss.str();
    const std::size_t lastFrame = content.rfind("ROW ");
    ASSERT_NE(lastFrame, std::string::npos);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << content.substr(0, lastFrame + 9);  // partial header line

    opt.resume = true;
    const CampaignResult resumed = runCampaign(defs, opt);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_GT(resumed.pointsResumed, 0u);   // the salvage was used
    EXPECT_GT(resumed.pointsRun, 0u);       // the chopped point re-ran
    EXPECT_EQ(resumed.canonicalLines(), full.canonicalLines());

    // The rewritten manifest is clean: resuming again skips everything.
    const CampaignResult again = runCampaign(defs, opt);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.pointsRun, 0u);
    EXPECT_EQ(again.pointsResumed, 12u);
    EXPECT_EQ(again.canonicalLines(), full.canonicalLines());
}

TEST(Campaign, ResumeIgnoresAManifestFromADifferentPlan) {
    const std::string dir = scratchDir("plan_change");
    const std::vector<ScenarioDef> defsA = {mechanicalDef("camp_a", 2.0)};
    CampaignOptions opt;
    opt.outDir = dir;
    const CampaignResult first = runCampaign(defsA, opt);
    ASSERT_TRUE(first.ok);

    // Same outDir, different plan (extra scenario): the stale manifest must
    // not poison the run — everything executes fresh.
    const std::vector<ScenarioDef> defsB = {mechanicalDef("camp_a", 2.0),
                                            mechanicalDef("camp_b", 5.0)};
    opt.resume = true;
    const CampaignResult second = runCampaign(defsB, opt);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.pointsResumed, 0u);
    EXPECT_EQ(second.pointsRun, 24u);
}

// --- Golden corpus ----------------------------------------------------------

TEST(Campaign, GoldenWriteThenCheckIsClean) {
    const std::string dir = scratchDir("golden_clean");
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0), smallBulkDef()};
    const CampaignResult result = runCampaign(defs, {});
    ASSERT_TRUE(result.ok) << result.error;
    std::string error;
    ASSERT_TRUE(writeGoldenCorpus(result, dir, error)) << error;
    EXPECT_TRUE(fs::exists(goldenArtifactPath(dir, "camp_a")));
    EXPECT_TRUE(fs::exists(goldenArtifactPath(dir, "camp_bulk")));

    // A re-run of the unchanged tree checks clean — including at a
    // different job count (artifacts are canonical, not run-shaped).
    CampaignOptions parallelOpt;
    parallelOpt.jobs = 3;
    const CampaignResult rerun = runCampaign(defs, parallelOpt);
    ASSERT_TRUE(rerun.ok);
    EXPECT_TRUE(checkGoldenCorpus(rerun, dir).empty());
}

TEST(Campaign, GoldenCheckFailsOnAKnobPerturbation) {
    const std::string dir = scratchDir("golden_perturb");
    std::vector<ScenarioDef> defs = {smallBulkDef()};
    const CampaignResult baseline = runCampaign(defs, {});
    ASSERT_TRUE(baseline.ok);
    std::string error;
    ASSERT_TRUE(writeGoldenCorpus(baseline, dir, error)) << error;

    // The acceptance perturbation: shrink the MSS by one 6LoWPAN frame.
    // Every simulated byte now takes a different path; the corpus must
    // catch it and name the first diverging row.
    defs[0].base.workload.mssFrames = 4;
    const CampaignResult perturbed = runCampaign(defs, {});
    ASSERT_TRUE(perturbed.ok);
    const std::vector<GoldenDiff> diffs = checkGoldenCorpus(perturbed, dir);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].scenario, "camp_bulk");
    EXPECT_NE(diffs[0].detail.find("diverged"), std::string::npos) << diffs[0].detail;
    EXPECT_NE(diffs[0].detail.find("rng_digest"), std::string::npos) << diffs[0].detail;
}

TEST(Campaign, GoldenCheckReportsMissingArtifactsAndCountChanges) {
    const std::string dir = scratchDir("golden_missing");
    const std::vector<ScenarioDef> defs = {mechanicalDef("camp_a", 2.0)};
    const CampaignResult result = runCampaign(defs, {});
    ASSERT_TRUE(result.ok);

    // No corpus at all -> missing artifact.
    std::vector<GoldenDiff> diffs = checkGoldenCorpus(result, dir);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].detail.find("missing"), std::string::npos);

    // Corpus written from a SMALLER grid -> point-count diff.
    std::vector<ScenarioDef> trimmed = defs;
    trimmed[0].seeds = {1};
    const CampaignResult small = runCampaign(trimmed, {});
    ASSERT_TRUE(small.ok);
    std::string error;
    ASSERT_TRUE(writeGoldenCorpus(small, dir, error)) << error;
    diffs = checkGoldenCorpus(result, dir);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].detail.find("point count changed"), std::string::npos)
        << diffs[0].detail;
}

// --- Golden subset registration --------------------------------------------

TEST(Campaign, GoldenSubsetCoversTheCuratedScenariosWhenLinked) {
    // The test binary links no bench drivers, so the registry is empty here
    // and the subset is too — but the helper must not crash, and the
    // registryDefs filter must behave.
    EXPECT_TRUE(goldenSubset().empty() ||
                goldenSubset().front().name == "sweep_smoke");
    const std::vector<ScenarioDef> none = registryDefs("no_such_scenario_name");
    EXPECT_TRUE(none.empty());
    // The curated name list is independent of what is linked: the campaign
    // CLI diffs the registered subset against it so a dropped driver fails
    // loudly instead of silently shrinking the corpus check.
    const std::vector<std::string> names = goldenSubsetNames();
    ASSERT_EQ(names.size(), 15u);
    EXPECT_EQ(names.front(), "sweep_smoke");
    EXPECT_EQ(names.back(), "bdp_line");
}
