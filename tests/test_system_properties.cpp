// System-level properties: determinism, multi-connection servers, abort
// semantics, persist backoff, and energy-meter windowing.
#include <gtest/gtest.h>

#include "tcplp/app/bulk.hpp"
#include "tcplp/harness/pipe.hpp"
#include "tcplp/harness/testbed.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

double oneRadioRun(std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.seed = seed;
    cfg.linkLoss = 0.05;
    auto tb = harness::Testbed::line(2, cfg);
    mesh::Node& mote = *tb->findNode(11);
    tcp::TcpStack moteStack(mote);
    tcp::TcpStack cloudStack(tb->cloud());
    app::GoodputMeter meter(tb->simulator());
    tcp::TcpConfig serv;
    serv.sendBufferBytes = serv.recvBufferBytes = 8192;
    cloudStack.listen(80, serv, [&](tcp::TcpSocket& s) {
        s.setOnData([&](BytesView d) { meter.onData(d); });
        s.setOnPeerFin([&s] { s.close(); });
    });
    tcp::TcpSocket& client = moteStack.createSocket({});
    app::BulkSender sender(client, 30000);
    client.connect(tb->cloud().address(), 80);
    tb->simulator().runUntil(10 * sim::kMinute);
    return meter.goodputKbps();
}

TEST(Determinism, SameSeedSameResultDifferentSeedDifferent) {
    // The whole stack — radio, MAC randomness, TCP timers — must be a pure
    // function of the seed. This is what makes every bench reproducible.
    const double a1 = oneRadioRun(42);
    const double a2 = oneRadioRun(42);
    const double b = oneRadioRun(43);
    EXPECT_DOUBLE_EQ(a1, a2);
    EXPECT_NE(a1, b);
}

TEST(TcpServer, HandlesManySequentialConnections) {
    sim::Simulator simulator(3);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    int accepted = 0;
    Bytes all;
    serverStack.listen(80, {}, [&](tcp::TcpSocket& s) {
        ++accepted;
        s.setOnData([&](BytesView d) { append(all, d); });
        s.setOnPeerFin([&s] { s.close(); });
    });

    for (int i = 0; i < 8; ++i) {
        tcp::TcpSocket& c = clientStack.createSocket({});
        c.setOnConnected([&c, i] {
            c.send(toBytes(std::string("msg") + char('0' + i)));
            c.close();
        });
        c.connect(pipe.b().address(), 80);
        simulator.runUntil(simulator.now() + 30 * sim::kSecond);
    }
    EXPECT_EQ(accepted, 8);
    EXPECT_EQ(all.size(), 8u * 4u);
    EXPECT_EQ(toPrintable(all).substr(0, 8), "msg0msg1");
}

TEST(TcpServer, ConcurrentConnectionsAreIsolated) {
    sim::Simulator simulator(4);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    std::map<std::uint16_t, Bytes> perConnection;
    serverStack.listen(80, {}, [&](tcp::TcpSocket& s) {
        s.setOnData([&perConnection, &s](BytesView d) {
            append(perConnection[s.tcb().irs & 0xffff], d);  // key by peer ISS
        });
    });

    tcp::TcpSocket& c1 = clientStack.createSocket({});
    tcp::TcpSocket& c2 = clientStack.createSocket({});
    c1.setOnConnected([&] { c1.send(patternBytes(0, 1000)); });
    c2.setOnConnected([&] { c2.send(patternBytes(5000, 1000)); });
    c1.connect(pipe.b().address(), 80);
    c2.connect(pipe.b().address(), 80);
    simulator.runUntil(2 * sim::kMinute);

    ASSERT_EQ(perConnection.size(), 2u);
    std::vector<Bytes> streams;
    for (auto& [k, v] : perConnection) streams.push_back(v);
    ASSERT_EQ(streams[0].size(), 1000u);
    ASSERT_EQ(streams[1].size(), 1000u);
    // One stream carries pattern@0, the other pattern@5000 — no mixing.
    const bool ordered = matchesPattern(0, streams[0]) && matchesPattern(5000, streams[1]);
    const bool swapped = matchesPattern(5000, streams[0]) && matchesPattern(0, streams[1]);
    EXPECT_TRUE(ordered || swapped);
}

TEST(TcpAbort, RstTearsDownPeerImmediately) {
    sim::Simulator simulator(5);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    tcp::TcpSocket* server = nullptr;
    bool serverError = false;
    serverStack.listen(80, {}, [&](tcp::TcpSocket& s) {
        server = &s;
        s.setOnError([&] { serverError = true; });
    });
    tcp::TcpSocket& client = clientStack.createSocket({});
    client.connect(pipe.b().address(), 80);
    simulator.runUntil(10 * sim::kSecond);
    ASSERT_NE(server, nullptr);
    ASSERT_EQ(server->state(), tcp::State::kEstablished);

    client.abort();
    simulator.runUntil(simulator.now() + 5 * sim::kSecond);
    EXPECT_EQ(client.state(), tcp::State::kClosed);
    EXPECT_TRUE(serverError);
    EXPECT_EQ(server->state(), tcp::State::kClosed);
}

TEST(TcpPersist, ProbeIntervalBacksOff) {
    sim::Simulator simulator(6);
    harness::Pipe pipe(simulator, {});
    tcp::TcpStack clientStack(pipe.a());
    tcp::TcpStack serverStack(pipe.b());

    tcp::TcpConfig tinyServer;
    tinyServer.recvBufferBytes = 512;  // closes quickly, app never reads
    serverStack.listen(80, tinyServer, [](tcp::TcpSocket&) {});
    tcp::TcpSocket& client = clientStack.createSocket({});
    client.setOnConnected([&] { client.send(patternBytes(0, 2000)); });
    client.connect(pipe.b().address(), 80);

    simulator.runUntil(2 * sim::kMinute);
    const auto probesEarly = client.stats().zeroWindowProbes;
    simulator.runUntil(10 * sim::kMinute);
    const auto probesMid = client.stats().zeroWindowProbes - probesEarly;
    simulator.runUntil(30 * sim::kMinute);
    const auto probesLate = client.stats().zeroWindowProbes - probesMid - probesEarly;
    EXPECT_GT(probesEarly + probesMid + probesLate, 2u);
    // Probe rate decays: the last 20 minutes see no more probes than the
    // first 10 (exponential persist backoff, clamped at persistMax).
    EXPECT_LE(probesLate, (probesEarly + probesMid) * 4);
    EXPECT_EQ(client.state(), tcp::State::kEstablished);  // never dropped
}

TEST(EnergyMeter, WindowResetIsolatesPeriods) {
    phy::EnergyMeter meter;
    // 0-100: listen; 100-200: sleep.
    meter.radioTransition(phy::RadioState::kListen, phy::RadioState::kSleep, 100);
    EXPECT_NEAR(meter.radioDutyCycle(phy::RadioState::kSleep, 200), 0.5, 1e-9);
    meter.resetWindow(phy::RadioState::kSleep, 200);
    // New window is all sleep.
    EXPECT_NEAR(meter.radioDutyCycle(phy::RadioState::kSleep, 300), 0.0, 1e-9);
    meter.addCpuBusy(50);
    EXPECT_NEAR(meter.cpuDutyCycle(300), 0.5, 1e-9);
}

TEST(Pipe, BandwidthSerializesPackets) {
    sim::Simulator simulator(7);
    harness::PipeConfig pc;
    pc.oneWayDelay = 0;
    pc.bandwidthBps = 8000.0;  // 1000 B/s
    harness::Pipe pipe(simulator, pc);
    int got = 0;
    sim::Time lastArrival = 0;
    pipe.b().registerProtocol(200, [&](const ip6::Packet&) {
        ++got;
        lastArrival = simulator.now();
    });
    for (int i = 0; i < 4; ++i) {
        ip6::Packet p;
        p.dst = pipe.b().address();
        p.nextHeader = 200;
        p.payload = patternBytes(0, 960);  // 1000 B with header = 1 s each
        pipe.a().sendPacket(std::move(p));
    }
    simulator.run();
    EXPECT_EQ(got, 4);
    EXPECT_NEAR(sim::toSeconds(lastArrival), 4.0, 0.1);
}

}  // namespace
