// city_scale scenario + datapath plumbing: reduced-scale determinism
// (serial == sharded, pinned RNG digest), the datapath counter row keys,
// the epoch-diffed neighbor-cache revalidation, and the prepend slow path
// routing its storage through the slab recycler.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tcplp/common/packet_buffer.hpp"
#include "tcplp/common/slab_pool.hpp"
#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/scenario/sweep.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

/// The reduced city grid the tests (and, at 120 nodes, the golden corpus)
/// exercise: small enough for CI, large enough that the slab pool and the
/// spatial index carry real load.
ScenarioSpec reducedCitySpec() { return cityScaleSpec(10 * sim::kSecond, 96); }

std::uint64_t rngDigestOf(const MetricRow& row) {
    for (const auto& [key, value] : row.fields()) {
        if (key == "rng_digest") return value.asUint();
    }
    return 0;
}

}  // namespace

TEST(CityScale, ReducedRunIsDeterministicAndPinned) {
    const MetricRow a = runScenario(reducedCitySpec(), 1);
    const MetricRow b = runScenario(reducedCitySpec(), 1);
    EXPECT_EQ(toCanonicalJsonLine(a), toCanonicalJsonLine(b));
    // Pinned replay: any engine change that perturbs the RNG draw order
    // (slab pool, batched delivery, cache revalidation are all required to
    // be draw-neutral) moves this digest.
    EXPECT_EQ(rngDigestOf(a), 4847400228719065429ULL);
}

TEST(CityScale, SerialAndShardedSweepsMatch) {
    ScenarioDef d;
    d.name = "city_scale_test";
    d.base = reducedCitySpec();
    d.seeds = {1, 2};
    const SweepResult serial = runSweep(d, SweepOptions{1, {}});
    const SweepResult sharded = runSweep(d, SweepOptions{4, {}});
    ASSERT_TRUE(serial.ok);
    ASSERT_TRUE(sharded.ok);
    EXPECT_EQ(serial.jsonLines(), sharded.jsonLines());
}

TEST(CityScale, DatapathCounterRowKeys) {
    const MetricRow row = runScenario(reducedCitySpec(), 1);
    // Steady-state storage comes from the recycler, not the heap: the pool
    // warms up with a bounded set of fresh blocks, then serves from free
    // lists for the rest of the run.
    EXPECT_GT(row.number("pool_recycled"), 0.0);
    EXPECT_GT(row.number("pool_fresh"), 0.0);
    EXPECT_GT(row.number("pool_recycled"), 2.0 * row.number("pool_fresh"));
    EXPECT_GT(row.number("pool_bytes_recycled"), row.number("pool_bytes_fresh"));
    // Event closures all fit inline. Prepend fallbacks are nonzero by
    // design here: relays re-encode single-frame datagrams whose storage
    // the upstream sender still holds for link retries — a mandatory
    // copy-on-write, counted and slab-served (so it never reaches the
    // heap; see the steady-state alloc bound in tcplp_steady_alloc).
    EXPECT_EQ(row.number("smallfn_heap_fallbacks"), 0.0);
    EXPECT_GT(row.number("prepend_fallbacks"), 0.0);
    // Static grid: each transmitter's candidate cache builds at most once.
    EXPECT_GT(row.number("neighbor_rebuilds"), 0.0);
    EXPECT_LE(row.number("neighbor_rebuilds"), 96.0);
}

TEST(CityScale, LegacyDatapathReplaysIdenticalByteStream) {
    // The pre-PR engine switches (linear-scan delivery, no pooling) are
    // pure perf knobs: the behavioral row — goodput, frames, RNG digest —
    // must be unchanged; only the datapath counters may differ.
    ScenarioSpec current = cityScaleSpec(5 * sim::kSecond, 64);
    ScenarioSpec legacy = current;
    legacy.topology.legacyDatapath = true;
    const MetricRow a = runScenario(current, 1);
    const MetricRow b = runScenario(legacy, 1);
    EXPECT_EQ(rngDigestOf(a), rngDigestOf(b));
    EXPECT_EQ(a.number("frames_tx"), b.number("frames_tx"));
    EXPECT_EQ(a.number("aggregate_kbps"), b.number("aggregate_kbps"));
    // And the counters prove the switches took effect.
    EXPECT_GT(a.number("pool_recycled"), 0.0);
    EXPECT_EQ(b.number("pool_recycled"), 0.0);
}

TEST(ChannelEpoch, RevalidationSkipsRebuildWhenWindowUnchanged) {
    sim::Simulator simulator(7);
    phy::Channel channel(simulator, 12.0);
    channel.setDeliveryMode(phy::Channel::DeliveryMode::kSpatialIndex);
    std::vector<std::unique_ptr<phy::Radio>> radios;
    auto add = [&](phy::NodeId id, double x, double y) {
        radios.push_back(
            std::make_unique<phy::Radio>(simulator, channel, id, phy::Position{x, y}));
        radios.back()->setAutoAck(false);
    };
    auto transmit = [&](std::size_t i) {
        phy::Frame f;
        f.src = radios[i]->id();
        f.dst = phy::kBroadcast;
        f.payload = patternBytes(1, 20);
        channel.startTransmission(radios[i].get(), f);
        simulator.run();
    };
    add(1, 0.0, 0.0);
    add(2, 5.0, 0.0);

    transmit(0);
    EXPECT_EQ(channel.channelStats().neighborRebuilds, 1u);
    EXPECT_EQ(channel.channelStats().neighborRevalidations, 0u);

    // A radio far outside node 1's 3x3 cell window bumps the global grid
    // epoch, but every cell in the window is untouched: the cached
    // candidate set revalidates without a rebuild.
    add(3, 1000.0, 1000.0);
    transmit(0);
    EXPECT_EQ(channel.channelStats().neighborRebuilds, 1u);
    EXPECT_EQ(channel.channelStats().neighborRevalidations, 1u);

    // A radio inside the window (same cell as node 1: cell side = 12 m)
    // invalidates the snapshot and forces a real rebuild.
    add(4, 10.0, 0.0);
    transmit(0);
    EXPECT_EQ(channel.channelStats().neighborRebuilds, 2u);
    EXPECT_EQ(channel.channelStats().neighborRevalidations, 1u);
}

TEST(PacketBufferPool, PrependFallbackRoutesThroughSlabRecycler) {
    SlabPool pool;
    pool.install();
    const std::uint8_t hdr[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const Bytes body = patternBytes(3, 100);
    const std::uint64_t fallbacks0 = PacketBuffer::stats().prependFallbacks;
    for (int round = 0; round < 2; ++round) {
        // Zero headroom forces the prepend slow path: new storage, one copy.
        PacketBuffer b = PacketBuffer::copyOf(BytesView(body.data(), body.size()),
                                              /*headroom=*/0);
        b.prepend(BytesView(hdr, sizeof hdr));
        ASSERT_EQ(b.size(), body.size() + sizeof hdr);
        EXPECT_EQ(b.data()[0], 1);
        EXPECT_EQ(b.data()[sizeof hdr], body[0]);
    }
    EXPECT_EQ(PacketBuffer::stats().prependFallbacks, fallbacks0 + 2);
    // Round 2's storage was served from round 1's returned blocks.
    EXPECT_GT(pool.stats().recycled, 0u);
    EXPECT_GT(pool.stats().returned, 0u);
    pool.uninstall();
}
