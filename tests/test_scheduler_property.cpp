// Randomized property test: HeapScheduler and TimerWheel implement the
// exact same (when, scheduling-seq) total order.
//
// The scripted storm in tests/test_sim.cpp replays ONE handcrafted
// schedule/cancel/reschedule sequence; this suite generates seeded random
// operation sequences (10k ops each) against BOTH backends in lockstep —
// insert, cancel, re-arm, and advance (fire the earliest pending events,
// mirroring Simulator::fireMin's remove -> release -> onTimeAdvance order)
// — and requires bit-identical firing logs at every advance.
//
// On a mismatch the failing sequence is shrunk by prefix bisection: the
// shortest failing prefix of the generated op list is located and reported
// with its seed, so a regression reproduces from a two-number recipe
// instead of a 10k-op haystack.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tcplp/sim/rng.hpp"
#include "tcplp/sim/scheduler.hpp"

using namespace tcplp;
using namespace tcplp::sim;

namespace {

struct Op {
    enum Kind : std::uint8_t { kInsert, kCancel, kRearm, kAdvance } kind = kInsert;
    Time delay = 0;        // kInsert / kRearm: deadline = now + delay
    std::size_t pick = 0;  // kCancel / kRearm: index into the live set
    int fireCount = 0;     // kAdvance: how many events to fire
};

/// Deadline mix spanning every wheel regime: same-tick, level 0/1, level 2+,
/// and past-the-horizon overflow (the test_sim storm's distribution).
Time randomDelay(Rng& rng) {
    switch (rng.uniformInt(4)) {
        case 0: return Time(rng.uniformInt(900));
        case 1: return Time(rng.uniformInt(60'000));
        case 2: return Time(rng.uniformInt(30 * kMinute));
        default: return Time(rng.uniformInt(12 * kHour));
    }
}

std::vector<Op> generateOps(std::uint64_t seed, std::size_t count) {
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Op op;
        const std::uint64_t kind = rng.uniformInt(10);
        if (kind < 4) {
            op.kind = Op::kInsert;
            op.delay = randomDelay(rng);
        } else if (kind < 6) {
            op.kind = Op::kCancel;
            op.pick = std::size_t(rng.uniformInt(1 << 16));
        } else if (kind < 8) {
            op.kind = Op::kRearm;
            op.pick = std::size_t(rng.uniformInt(1 << 16));
            op.delay = randomDelay(rng);
        } else {
            op.kind = Op::kAdvance;
            op.fireCount = int(1 + rng.uniformInt(8));
        }
        ops.push_back(op);
    }
    return ops;
}

/// One backend + pool + the live-slot set, driven by the shared op list.
struct Harness {
    sim::detail::EventPool pool;
    std::unique_ptr<Scheduler> sched;
    std::vector<std::uint32_t> live;  // insertion order (stable across backends)
    std::uint64_t nextSeq = 0;
    Time now = 0;

    explicit Harness(SchedulerKind kind) : sched(makeScheduler(kind, pool)) {}

    void insert(Time delay) {
        const std::uint32_t slot = pool.alloc();
        sim::detail::EventRecord& rec = pool.record(slot);
        rec.when = now + delay;
        rec.seq = nextSeq++;
        sched->push(slot);
        live.push_back(slot);
    }

    void eraseLive(std::size_t index) { live.erase(live.begin() + long(index)); }

    void cancel(std::size_t pick) {
        if (live.empty()) return;
        const std::size_t index = pick % live.size();
        const std::uint32_t slot = live[index];
        sched->remove(slot);
        pool.release(slot);
        eraseLive(index);
    }

    void rearm(std::size_t pick, Time delay) {
        if (live.empty()) return;
        const std::uint32_t slot = live[pick % live.size()];
        sim::detail::EventRecord& rec = pool.record(slot);
        rec.when = now + delay;
        rec.seq = nextSeq++;  // re-armed events fire after same-time peers
        sched->update(slot);
    }

    /// Fires up to `count` earliest events, mirroring Simulator::fireMin:
    /// remove + release the min, then advance the backend's time base.
    /// Returns the (when, seq) firing log.
    std::vector<std::pair<Time, std::uint64_t>> advance(int count) {
        std::vector<std::pair<Time, std::uint64_t>> log;
        for (int i = 0; i < count; ++i) {
            const std::uint32_t slot = sched->peekMin();
            if (slot == sim::detail::kNoSlot) break;
            const sim::detail::EventRecord& rec = pool.record(slot);
            now = rec.when;
            log.emplace_back(rec.when, rec.seq);
            sched->remove(slot);
            pool.release(slot);
            sched->onTimeAdvance(now);
            for (std::size_t k = 0; k < live.size(); ++k) {
                if (live[k] == slot) {
                    eraseLive(k);
                    break;
                }
            }
        }
        return log;
    }
};

/// Replays `ops` against both backends in lockstep. Returns a mismatch
/// description, or nullopt if the logs stayed bit-identical throughout.
std::optional<std::string> replay(const std::vector<Op>& ops) {
    Harness heap(SchedulerKind::kBinaryHeap);
    Harness wheel(SchedulerKind::kTimerWheel);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        switch (op.kind) {
            case Op::kInsert:
                heap.insert(op.delay);
                wheel.insert(op.delay);
                break;
            case Op::kCancel:
                heap.cancel(op.pick);
                wheel.cancel(op.pick);
                break;
            case Op::kRearm:
                heap.rearm(op.pick, op.delay);
                wheel.rearm(op.pick, op.delay);
                break;
            case Op::kAdvance: {
                const auto a = heap.advance(op.fireCount);
                const auto b = wheel.advance(op.fireCount);
                if (a != b) {
                    return "firing logs diverged at op " + std::to_string(i) +
                           " (advance " + std::to_string(op.fireCount) + "): heap fired " +
                           std::to_string(a.size()) + ", wheel fired " +
                           std::to_string(b.size());
                }
                break;
            }
        }
        if (heap.sched->size() != wheel.sched->size()) {
            return "pending-event counts diverged at op " + std::to_string(i) + ": heap " +
                   std::to_string(heap.sched->size()) + ", wheel " +
                   std::to_string(wheel.sched->size());
        }
    }
    // Drain: the remaining events must pop in the identical total order.
    const auto a = heap.advance(int(heap.sched->size()));
    const auto b = wheel.advance(int(wheel.sched->size()));
    if (a != b) return "drain order diverged (" + std::to_string(a.size()) + " events)";
    return std::nullopt;
}

/// Prefix bisection: the length of the shortest failing prefix of `ops`
/// (ops.size() if only the full sequence fails).
std::size_t shrinkFailingPrefix(const std::vector<Op>& ops) {
    std::size_t lo = 0, hi = ops.size();  // invariant: prefix[hi] fails
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const std::vector<Op> prefix(ops.begin(), ops.begin() + long(mid));
        if (replay(prefix).has_value()) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return hi;
}

}  // namespace

TEST(SchedulerProperty, RandomOpSequencesFireIdenticallyOnBothBackends) {
    constexpr std::size_t kOpsPerSeed = 10000;
    for (std::uint64_t seed : {1ULL, 42ULL, 0xfeedULL}) {
        const std::vector<Op> ops = generateOps(seed, kOpsPerSeed);
        const std::optional<std::string> mismatch = replay(ops);
        if (mismatch.has_value()) {
            const std::size_t prefix = shrinkFailingPrefix(ops);
            FAIL() << "seed " << seed << ": " << *mismatch
                   << "; shortest failing prefix: " << prefix << " of " << kOpsPerSeed
                   << " ops (reproduce: generateOps(" << seed << ", " << prefix << "))";
        }
    }
}

TEST(SchedulerProperty, ShrinkerLocatesAMinimalFailingPrefix) {
    // Sanity-check the shrinking machinery itself against a synthetic
    // failure: a predicate that "fails" once the op list contains the
    // first kAdvance at-or-after position 7 locates exactly that prefix.
    const std::vector<Op> ops = generateOps(7, 200);
    std::size_t firstAdvance = ops.size();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == Op::kAdvance) {
            firstAdvance = i;
            break;
        }
    }
    ASSERT_LT(firstAdvance, ops.size());
    // Bisect with the synthetic predicate (prefix fails iff it includes the
    // first kAdvance op), reusing the same bisection loop shape.
    std::size_t lo = 0, hi = ops.size();
    const auto fails = [&](std::size_t n) { return n > firstAdvance; };
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (fails(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    EXPECT_EQ(hi, firstAdvance + 1);
}

TEST(SchedulerProperty, AdversarialClusteredDeadlines) {
    // Heavy when-ties: every deadline lands on one of 3 instants, so the
    // entire order is carried by the scheduling seq — the regime where a
    // bucket-scan bug in the wheel would be invisible to throughput tests
    // but corrupt the replay order.
    Harness heap(SchedulerKind::kBinaryHeap);
    Harness wheel(SchedulerKind::kTimerWheel);
    Rng rng(99);
    for (int round = 0; round < 500; ++round) {
        const Time delay = Time(1000 * (1 + rng.uniformInt(3)));
        heap.insert(delay);
        wheel.insert(delay);
        if (round % 5 == 2) {
            const std::size_t pick = std::size_t(rng.uniformInt(1 << 10));
            heap.cancel(pick);
            wheel.cancel(pick);
        }
        if (round % 7 == 3) {
            const auto a = heap.advance(2);
            const auto b = wheel.advance(2);
            ASSERT_EQ(a, b) << "round " << round;
        }
    }
    const auto a = heap.advance(int(heap.sched->size()));
    const auto b = wheel.advance(int(wheel.sched->size()));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}
