// Tests: embedded-TCP baselines (uIP/BLIP profiles), RED queue, analytical
// models, and the sensor application plumbing.
#include <gtest/gtest.h>

#include "tcplp/app/sensor.hpp"
#include "tcplp/harness/pipe.hpp"
#include "tcplp/ip6/red_queue.hpp"
#include "tcplp/model/models.hpp"
#include "tcplp/transport/embedded_tcp.hpp"

using namespace tcplp;

// --- Embedded TCP baselines ---------------------------------------------------

namespace {
struct EmbeddedPair {
    sim::Simulator simulator;
    harness::Pipe pipe;
    transport::EmbeddedTcpSocket client;
    tcp::TcpStack serverStack;
    Bytes received;

    explicit EmbeddedPair(transport::EmbeddedTcpConfig cfg = {},
                          harness::Pipe::Config pc = {}, std::uint64_t seed = 3)
        : simulator(seed),
          pipe(simulator, pc),
          client(pipe.a(), cfg),
          serverStack(pipe.b()) {
        tcp::TcpConfig serverCfg;
        serverCfg.sendBufferBytes = serverCfg.recvBufferBytes = 8192;
        serverStack.listen(80, serverCfg, [this](tcp::TcpSocket& s) {
            s.setOnData([this](BytesView d) { append(received, d); });
        });
    }
};
}  // namespace

TEST(EmbeddedTcp, InteroperatesWithFullScalePeer) {
    EmbeddedPair t;
    bool connected = false;
    t.client.setOnConnected([&] { connected = true; });
    t.client.connect(t.pipe.b().address(), 80);
    t.simulator.runUntil(5 * sim::kSecond);
    ASSERT_TRUE(connected);

    t.client.send(patternBytes(0, 600));
    t.simulator.runUntil(2 * sim::kMinute);
    EXPECT_EQ(t.received.size(), 600u);
    EXPECT_TRUE(matchesPattern(0, t.received));
}

TEST(EmbeddedTcp, StopAndWaitOneSegmentAtATime) {
    // 600 B at MSS 60: exactly 10 data segments, each needing its own RTT —
    // the single-outstanding-segment property of uIP/BLIP (Table 7).
    EmbeddedPair t;
    t.client.connect(t.pipe.b().address(), 80);
    t.simulator.runUntil(5 * sim::kSecond);
    const sim::Time start = t.simulator.now();
    t.client.send(patternBytes(0, 600));
    t.simulator.runUntil(start + 5 * sim::kMinute);
    EXPECT_EQ(t.received.size(), 600u);
    EXPECT_EQ(t.client.stats().segsSent - 2, 10u);  // minus SYN + handshake ACK
}

TEST(EmbeddedTcp, UipEstimatesRttBlipDoesNot) {
    // BLIP profile keeps the fixed 3 s RTO; uIP adapts down on a 100 ms path,
    // so after loss uIP retransmits much sooner.
    auto lossRecovery = [](transport::EmbeddedProfile profile) {
        transport::EmbeddedTcpConfig cfg;
        cfg.profile = profile;
        EmbeddedPair t(cfg, {}, 5);
        t.client.connect(t.pipe.b().address(), 80);
        t.simulator.runUntil(5 * sim::kSecond);
        // Warm up RTT estimate with clean transfers.
        t.client.send(patternBytes(0, 300));
        t.simulator.runUntil(t.simulator.now() + 30 * sim::kSecond);
        // One lost transmission.
        t.pipe.config().lossAtoB = 1.0;
        t.client.send(patternBytes(300, 60));
        t.simulator.runUntil(t.simulator.now() + 100 * sim::kMillisecond);
        t.pipe.config().lossAtoB = 0.0;
        const sim::Time lossAt = t.simulator.now();
        t.simulator.runUntil(lossAt + 30 * sim::kSecond);
        return std::make_pair(t.received.size(), t.client.stats().retransmissions);
    };
    const auto uip = lossRecovery(transport::EmbeddedProfile::kUip);
    const auto blip = lossRecovery(transport::EmbeddedProfile::kBlip);
    EXPECT_EQ(uip.first, 360u);
    EXPECT_EQ(blip.first, 360u);
    EXPECT_GE(uip.second, 1u);
    EXPECT_GE(blip.second, 1u);
}

TEST(EmbeddedTcp, DropsOutOfOrderData) {
    EXPECT_EQ(transport::EmbeddedTcpStats{}.oooDropped, 0u);
    // (OOO delivery cannot be produced over the FIFO pipe; the counter is
    // exercised by the stack comparison bench over the radio.)
}

// --- RED queue ---------------------------------------------------------------

TEST(RedQueue, TailDropAtCapacity) {
    sim::Simulator simulator(1);
    ip6::RedConfig cfg;
    cfg.capacityPackets = 3;
    ip6::RedQueue q(simulator, cfg);
    ip6::Packet p;
    EXPECT_TRUE(q.push(p));
    EXPECT_TRUE(q.push(p));
    EXPECT_TRUE(q.push(p));
    EXPECT_FALSE(q.push(p));
    EXPECT_EQ(q.stats().tailDropped, 1u);
}

TEST(RedQueue, RedDropsProbabilisticallyAboveThreshold) {
    sim::Simulator simulator(2);
    ip6::RedConfig cfg;
    cfg.discipline = ip6::QueueDiscipline::kRed;
    cfg.capacityPackets = 10;
    cfg.minThreshold = 1.0;
    cfg.maxThreshold = 4.0;
    cfg.maxMarkProbability = 0.5;
    cfg.ecnMarking = false;
    ip6::RedQueue q(simulator, cfg);
    ip6::Packet p;
    int dropped = 0;
    for (int i = 0; i < 2000; ++i) {
        if (!q.push(p)) ++dropped;
        if (q.size() > 3) q.pop();  // keep average in the marking band
    }
    EXPECT_GT(dropped, 50);
    EXPECT_LT(dropped, 1500);
}

TEST(RedQueue, EcnMarksInsteadOfDroppingEctPackets) {
    sim::Simulator simulator(3);
    ip6::RedConfig cfg;
    cfg.discipline = ip6::QueueDiscipline::kRed;
    cfg.capacityPackets = 10;
    cfg.minThreshold = 0.0;
    cfg.maxThreshold = 1.0;
    cfg.maxMarkProbability = 1.0;
    cfg.ecnMarking = true;
    ip6::RedQueue q(simulator, cfg);
    ip6::Packet p;
    p.setEcn(ip6::Ecn::kCapable0);
    q.push(p);
    q.push(p);
    q.push(p);
    EXPECT_GT(q.stats().ecnMarked, 0u);
    EXPECT_EQ(q.stats().redDropped, 0u);
    bool sawCe = false;
    while (!q.empty())
        sawCe |= (q.pop().ecn() == ip6::Ecn::kCongestionExperienced);
    EXPECT_TRUE(sawCe);
}

TEST(RedQueue, AverageDecaysAcrossIdlePeriods) {
    // Classic RED idle bug: the EWMA only updates on enqueue, so without an
    // idle correction the average freezes across quiet periods and the first
    // burst after silence is over-marked. The fix decays avg by the elapsed
    // idle time in units of idlePacketTime (Floyd & Jacobson §4).
    sim::Simulator simulator(4);
    ip6::RedConfig cfg;
    cfg.discipline = ip6::QueueDiscipline::kRed;
    cfg.capacityPackets = 10;
    cfg.minThreshold = 1.0;
    cfg.maxThreshold = 1000.0;  // marking off while we shape the average
    cfg.maxMarkProbability = 0.0;
    cfg.weight = 0.25;
    cfg.idlePacketTime = 4 * sim::kMillisecond;
    ip6::RedQueue q(simulator, cfg);
    ip6::Packet p;

    // Drive the EWMA well above minThreshold, then drain to empty.
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(p));
    while (!q.empty()) q.pop();
    const double avgBusy = q.averageQueueSize();
    ASSERT_GT(avgBusy, cfg.minThreshold);

    // An immediate arrival still sees (nearly) the busy-period average.
    ASSERT_TRUE(q.push(p));
    EXPECT_GT(q.averageQueueSize(), 0.5 * avgBusy);
    q.pop();

    // After one idle second (250 packet times) the average must have decayed
    // to ~0, so a fresh burst is not marked against stale history.
    simulator.runUntil(simulator.now() + sim::kSecond);
    q.mutableConfig().maxMarkProbability = 1.0;  // marking live again
    q.mutableConfig().maxThreshold = 4.0;
    q.mutableConfig().ecnMarking = false;
    const auto droppedBefore = q.stats().redDropped;
    EXPECT_TRUE(q.push(p));
    EXPECT_EQ(q.stats().redDropped, droppedBefore);
    EXPECT_LT(q.averageQueueSize(), cfg.minThreshold);
}

// --- Analytical models ----------------------------------------------------------

TEST(Models, Equation2MatchesHandComputation) {
    // B = MSS/RTT * 1/(1/w + 2p): MSS=462B, RTT=0.75s, w=4, p=0.01.
    const double b = model::llnGoodput(462.0, 0.75, 0.01, 4.0);
    EXPECT_NEAR(b, 462.0 / 0.75 / (0.25 + 0.02), 1e-9);
}

TEST(Models, LlnModelRobustToSmallLossMathisIsNot) {
    // §8: B is less sensitive to p when p is small, unlike Equation 1.
    const double mss = 462.0, rtt = 0.75, w = 4.0;
    const double llnClean = model::llnGoodput(mss, rtt, 1e-4, w);
    const double llnLossy = model::llnGoodput(mss, rtt, 0.06, w);
    EXPECT_GT(llnLossy / llnClean, 0.6);  // ~33% hit at 6% loss

    const double mathisClean = model::mathisGoodput(mss, rtt, 1e-4);
    const double mathisLossy = model::mathisGoodput(mss, rtt, 0.06);
    EXPECT_LT(mathisLossy / mathisClean, 0.1);  // collapses ~ sqrt(p)
}

TEST(Models, SingleHopBoundNearPaper) {
    // §6.4: 462 B per ~45 ms -> ≈82 kb/s.
    const double bound = model::singleHopUpperBound(462.0, 5.0);
    EXPECT_NEAR(bound * 8.0 / 1000.0, 82.0, 8.0);
}

TEST(Models, MultihopFactorSaturatesAtThree) {
    EXPECT_DOUBLE_EQ(model::multihopFactor(1), 1.0);
    EXPECT_DOUBLE_EQ(model::multihopFactor(2), 0.5);
    EXPECT_DOUBLE_EQ(model::multihopFactor(3), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(model::multihopFactor(4), 1.0 / 3.0);  // §7.2
    EXPECT_DOUBLE_EQ(model::multihopFactor(7), 1.0 / 3.0);
}

TEST(Models, BdpMatchesPaperEstimate) {
    // §6.2: 125 kb/s x 0.1 s ≈ 1.6 KiB.
    EXPECT_NEAR(model::bdpBytes(125000.0, 0.1), 1562.5, 1.0);
}

// --- Sensor app -----------------------------------------------------------------

TEST(SensorApp, ReadingFormatAndCollector) {
    const Bytes r = app::makeReading(14, 99);
    EXPECT_EQ(r.size(), app::kReadingBytes);
    app::ReadingCollector c;
    c.feedStream(r);
    EXPECT_EQ(c.total(), 1u);
    EXPECT_EQ(c.forNode(14), 1u);
}

TEST(SensorApp, CollectorReassemblesSplitStream) {
    app::ReadingCollector c;
    Bytes stream;
    for (std::uint32_t i = 0; i < 10; ++i) append(stream, app::makeReading(3, i));
    // Feed in awkward chunk sizes (TCP segmentation does not respect
    // reading boundaries).
    std::size_t off = 0;
    const std::size_t chunks[] = {100, 7, 300, 1, 250, 162};
    for (std::size_t n : chunks) {
        c.feedStream(BytesView(stream.data() + off, n));
        off += n;
    }
    c.feedStream(BytesView(stream.data() + off, stream.size() - off));
    EXPECT_EQ(c.total(), 10u);
    EXPECT_EQ(c.forNode(3), 10u);
}

TEST(SensorApp, QueueOverflowCountsDrops) {
    sim::Simulator simulator;
    // Transport that never drains: every sample beyond capacity drops.
    struct Stuck : app::SensorTransport {
        void pump(app::ReadingQueue&, app::SensorStats&) override {}
    } stuck;
    app::SensorConfig cfg;
    cfg.queueCapacity = 5;
    cfg.sampleInterval = sim::kSecond;
    app::SensorNode node(simulator, 1, stuck, cfg);
    node.start();
    simulator.runUntil(20 * sim::kSecond);
    EXPECT_EQ(node.stats().generated, 20u);
    EXPECT_EQ(node.stats().queueDrops, 15u);
}

TEST(SensorApp, BatchingWaitsForThreshold) {
    sim::Simulator simulator;
    struct Counting : app::SensorTransport {
        int pumpsWithData = 0;
        std::uint64_t sent = 0;
        void pump(app::ReadingQueue& q, app::SensorStats& stats) override {
            if (q.size() < 8) return;  // mimic batching threshold
            ++pumpsWithData;
            while (!q.empty()) {
                q.pop();
                ++stats.submitted;
                ++sent;
            }
        }
    } counting;
    app::SensorConfig cfg;
    cfg.queueCapacity = 16;
    app::SensorNode node(simulator, 1, counting, cfg);
    node.start();
    simulator.runUntil(24 * sim::kSecond);
    EXPECT_EQ(counting.sent, 24u);
    EXPECT_EQ(counting.pumpsWithData, 3);  // drained in batches of 8
}
