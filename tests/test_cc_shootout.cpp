// The cc shootout axis and the ccMetrics row schema.
//
// Pins the three cross-layer guarantees of the pluggable-CC work:
//
//  1. Schema gating: the cwnd-dynamics keys exist exactly when
//     TopologySpec::ccMetrics is set, so legacy rows (and their golden
//     artifacts) are byte-identical.
//
//  2. Determinism: a shootout point is a pure function of (spec, seed) for
//     every strategy, and the cc knob changes the simulation it names.
//
//  3. Acceptance: on the lossy-line shootout's 5% i.i.d. loss point, CERL
//     delivers strictly higher goodput than stock NewReno — the same gate
//     CI enforces on BENCH_cc.json.
#include <gtest/gtest.h>

#include "tcplp/scenario/metrics.hpp"
#include "tcplp/scenario/spec.hpp"
#include "tcplp/scenario/workloads.hpp"
#include "tcplp/tcp/cc.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

/// The lossy_line_cc_shootout base (bench/bench_cc_shootout.cpp), inlined
/// so the acceptance gate is pinned even when no bench driver is linked.
ScenarioSpec lossyLineSpec(tcp::CcKind cc, double loss) {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kLine;
    s.topology.hops = 3;
    s.topology.retryDelayMax = sim::fromMillis(40);
    s.topology.queueCapacityPackets = 24;
    s.topology.maxFrameRetries = 1;
    s.topology.linkLoss = loss;
    s.topology.ccMetrics = true;
    s.workload.totalBytes = 100000;
    s.workload.windowSegments = 12;
    s.workload.mssFrames = 3;
    s.workload.timeLimit = 20 * sim::kMinute;
    s.workload.cc = cc;
    return s;
}

/// A small bulk run for schema checks: two motes one hop apart.
ScenarioSpec smallPairSpec(bool ccMetrics) {
    ScenarioSpec s;
    s.topology.kind = TopologyKind::kPair;
    s.topology.ccMetrics = ccMetrics;
    s.workload.totalBytes = 4000;
    s.workload.timeLimit = 30 * sim::kSecond;
    return s;
}

const char* const kCcKeys[] = {"cc_name",        "cwnd_min",  "cwnd_max",
                               "cwnd_mean",      "ssthresh_final",
                               "loss_cuts",      "cuts_skipped"};

TEST(CcShootout, CcFromAxisMapsTheCanonicalValues) {
    EXPECT_EQ(ccFromAxis(0.0), tcp::CcKind::kNewReno);
    EXPECT_EQ(ccFromAxis(1.0), tcp::CcKind::kCerl);
    EXPECT_EQ(ccFromAxis(2.0), tcp::CcKind::kWestwood);
}

TEST(CcShootout, BulkRowsCarryCcKeysOnlyWhenTheSpecOptsIn) {
    const MetricRow gated = runScenario(smallPairSpec(true), 3);
    for (const char* key : kCcKeys)
        EXPECT_NE(gated.find(key), nullptr) << key;
    EXPECT_EQ(gated.str("cc_name"), "newreno");
    // A clean short run never cuts and its window summary is sane.
    EXPECT_GE(gated.number("cwnd_max"), gated.number("cwnd_min"));
    EXPECT_GE(gated.number("cwnd_mean"), gated.number("cwnd_min"));

    const MetricRow legacy = runScenario(smallPairSpec(false), 3);
    for (const char* key : kCcKeys)
        EXPECT_EQ(legacy.find(key), nullptr) << key;
    // The knob only adds keys; the simulation itself is untouched.
    EXPECT_EQ(legacy.number("rng_digest"), gated.number("rng_digest"));
    EXPECT_EQ(legacy.number("goodput_kbps"), gated.number("goodput_kbps"));
}

TEST(CcShootout, TwoFlowRowsCarrySuffixedCcKeysWhenGated) {
    ScenarioSpec s;
    s.topology.hops = 1;
    s.topology.retryDelayMax = sim::fromMillis(40);
    s.topology.queueCapacityPackets = 7;
    s.topology.ccMetrics = true;
    s.workload.kind = WorkloadKind::kTwoFlow;
    s.workload.totalBytes = 20000;
    s.workload.timeLimit = 30 * sim::kSecond;
    const MetricRow row = runScenario(s, 2);
    for (const char* suffix : {"_a", "_b"}) {
        for (const char* stem : {"cwnd_min", "cwnd_max", "cwnd_mean",
                                 "ssthresh_final", "loss_cuts", "cuts_skipped"})
            EXPECT_NE(row.find(std::string(stem) + suffix), nullptr)
                << stem << suffix;
    }

    s.topology.ccMetrics = false;
    const MetricRow legacy = runScenario(s, 2);
    EXPECT_EQ(legacy.find("cwnd_min_a"), nullptr);
    EXPECT_EQ(legacy.number("rng_digest"), row.number("rng_digest"));
}

TEST(CcShootout, EveryStrategyIsDeterministicPerSpecAndSeed) {
    for (tcp::CcKind cc :
         {tcp::CcKind::kNewReno, tcp::CcKind::kCerl, tcp::CcKind::kWestwood}) {
        const ScenarioSpec s = lossyLineSpec(cc, 0.02);
        const MetricRow a = runScenario(s, 7);
        const MetricRow b = runScenario(s, 7);
        // Canonical rendering strips the wall-clock fields, which are the
        // only keys allowed to differ between identical (spec, seed) runs.
        EXPECT_EQ(toCanonicalJsonLine(a), toCanonicalJsonLine(b))
            << tcp::ccName(cc);
    }
}

TEST(CcShootout, TheCcKnobNamesThreeDistinctSimulations) {
    const MetricRow reno = runScenario(lossyLineSpec(tcp::CcKind::kNewReno, 0.02), 7);
    const MetricRow cerl = runScenario(lossyLineSpec(tcp::CcKind::kCerl, 0.02), 7);
    EXPECT_NE(reno.number("rng_digest"), cerl.number("rng_digest"));
    // CERL is the only strategy that ever skips a cut.
    EXPECT_EQ(reno.number("cuts_skipped"), 0.0);
    EXPECT_GT(cerl.number("cuts_skipped"), 0.0);
}

TEST(CcShootout, CerlBeatsNewRenoAtTheNoiseLossGatePoint) {
    // The CI acceptance gate on BENCH_cc.json, pinned in-tree: at 5% i.i.d.
    // link loss, loss differentiation must buy measurable goodput.
    const MetricRow reno = runScenario(lossyLineSpec(tcp::CcKind::kNewReno, 0.05), 7);
    const MetricRow cerl = runScenario(lossyLineSpec(tcp::CcKind::kCerl, 0.05), 7);
    EXPECT_GT(cerl.number("goodput_kbps"), 1.05 * reno.number("goodput_kbps"));
    // The mechanism, not just the outcome: CERL skipped cuts NewReno took.
    EXPECT_GT(cerl.number("cuts_skipped"), 0.0);
    EXPECT_LT(cerl.number("loss_cuts"), reno.number("loss_cuts"));
}

}  // namespace
