// Core TCP engine tests over a lossless/lossy in-memory pipe: handshake,
// bulk transfer integrity, teardown, retransmission machinery.
#include <gtest/gtest.h>

#include "tcplp/harness/pipe.hpp"
#include "tcplp/tcp/tcp.hpp"

using namespace tcplp;

namespace {

struct TcpPair {
    sim::Simulator simulator;
    harness::Pipe pipe;
    tcp::TcpStack clientStack;
    tcp::TcpStack serverStack;
    tcp::TcpSocket* client = nullptr;
    tcp::TcpSocket* server = nullptr;
    Bytes received;
    bool serverSawFin = false;

    explicit TcpPair(harness::Pipe::Config pipeConfig = {}, tcp::TcpConfig clientCfg = {},
                     tcp::TcpConfig serverCfg = {}, std::uint64_t seed = 7)
        : simulator(seed),
          pipe(simulator, pipeConfig),
          clientStack(pipe.a()),
          serverStack(pipe.b()) {
        serverStack.listen(80, serverCfg, [this](tcp::TcpSocket& s) {
            server = &s;
            s.setOnData([this](BytesView data) { append(received, data); });
            s.setOnPeerFin([this, &s] {
                serverSawFin = true;
                s.close();
            });
        });
        client = &clientStack.createSocket(clientCfg);
    }

    void connect() { client->connect(pipe.b().address(), 80); }
};

TEST(TcpBasic, ThreeWayHandshake) {
    TcpPair t;
    bool connected = false;
    t.client->setOnConnected([&] { connected = true; });
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    EXPECT_TRUE(connected);
    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
    ASSERT_NE(t.server, nullptr);
    EXPECT_EQ(t.server->state(), tcp::State::kEstablished);
}

TEST(TcpBasic, OptionsNegotiatedOnSyn) {
    TcpPair t;
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    EXPECT_TRUE(t.client->tcb().sackEnabled);
    EXPECT_TRUE(t.client->tcb().tsEnabled);
    EXPECT_TRUE(t.server->tcb().sackEnabled);
    EXPECT_TRUE(t.server->tcb().tsEnabled);
    EXPECT_EQ(t.client->tcb().mss, 462);
}

TEST(TcpBasic, MssClampedToPeerOffer) {
    tcp::TcpConfig small;
    small.mss = 200;
    TcpPair t({}, {}, small);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    EXPECT_EQ(t.client->tcb().mss, 200);
    EXPECT_EQ(t.server->tcb().mss, 200);
}

TEST(TcpBasic, BulkTransferDeliversExactBytes) {
    TcpPair t;
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);

    const Bytes data = patternBytes(0, 10000);
    std::size_t offset = 0;
    // Feed the send buffer as space opens.
    auto pump = [&] {
        while (offset < data.size()) {
            const std::size_t n = t.client->send(
                BytesView(data.data() + offset, std::min<std::size_t>(512, data.size() - offset)));
            if (n == 0) break;
            offset += n;
        }
    };
    t.client->setOnSendSpace(pump);
    pump();
    t.simulator.runUntil(120 * sim::kSecond);

    ASSERT_EQ(t.received.size(), data.size());
    EXPECT_TRUE(matchesPattern(0, t.received));
}

TEST(TcpBasic, GracefulCloseBothSides) {
    TcpPair t;
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    t.client->send(toBytes("goodbye"));
    t.simulator.runUntil(4 * sim::kSecond);
    t.client->close();
    t.simulator.runUntil(60 * sim::kSecond);
    EXPECT_TRUE(t.serverSawFin);
    // Client went FIN_WAIT* -> TIME_WAIT -> CLOSED; server LAST_ACK -> CLOSED.
    EXPECT_EQ(t.server->state(), tcp::State::kClosed);
    EXPECT_EQ(t.client->state(), tcp::State::kClosed);
}

TEST(TcpBasic, LossyPathStillDeliversEverything) {
    harness::Pipe::Config cfg;
    cfg.lossAtoB = 0.1;
    cfg.lossBtoA = 0.1;
    TcpPair t(cfg);
    t.connect();
    t.simulator.runUntil(10 * sim::kSecond);
    ASSERT_EQ(t.client->state(), tcp::State::kEstablished);

    const Bytes data = patternBytes(0, 20000);
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < data.size()) {
            const std::size_t n = t.client->send(
                BytesView(data.data() + offset, std::min<std::size_t>(462, data.size() - offset)));
            if (n == 0) break;
            offset += n;
        }
    };
    t.client->setOnSendSpace(pump);
    pump();
    t.simulator.runUntil(30 * sim::kMinute);

    ASSERT_EQ(t.received.size(), data.size());
    EXPECT_TRUE(matchesPattern(0, t.received));
    EXPECT_GT(t.client->stats().retransmissions, 0u);
}

TEST(TcpBasic, RetransmissionOnTotalBlackout) {
    TcpPair t;
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    t.pipe.config().lossAtoB = 1.0;  // all client data lost
    t.client->send(toBytes("hello"));
    t.simulator.runUntil(10 * sim::kSecond);
    EXPECT_GE(t.client->stats().timeouts, 1u);
    EXPECT_TRUE(t.received.empty());
    // Heal the path; the retransmission machinery recovers.
    t.pipe.config().lossAtoB = 0.0;
    t.simulator.runUntil(80 * sim::kSecond);
    EXPECT_EQ(toPrintable(t.received), "hello");
}

TEST(TcpBasic, ConnectionFailsAfterMaxRetransmits) {
    // R2 (RFC 1122 §4.2.3.5): a dead path must not retransmit forever. The
    // terminal state is kFailed, distinguishable from a clean close.
    tcp::TcpConfig cfg;
    cfg.maxRetransmits = 3;
    TcpPair t({}, cfg);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    t.pipe.config().lossAtoB = 1.0;
    t.client->send(toBytes("doomed"));
    t.simulator.runUntil(10 * sim::kMinute);
    EXPECT_TRUE(errored);
    EXPECT_EQ(t.client->state(), tcp::State::kFailed);
    EXPECT_EQ(t.client->stats().rexmitGiveUps, 1u);
}

TEST(TcpBasic, R1ThresholdNotifiesBeforeR2Aborts) {
    tcp::TcpConfig cfg;
    cfg.rexmitNotifyThreshold = 2;
    cfg.maxRetransmits = 5;
    TcpPair t({}, cfg);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    bool troubled = false;
    bool errored = false;
    t.client->setOnRexmitTrouble([&] {
        troubled = true;
        EXPECT_FALSE(errored);  // R1 strictly precedes R2
        EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
    });
    t.client->setOnError([&] { errored = true; });
    t.pipe.config().lossAtoB = 1.0;
    t.client->send(toBytes("doomed"));
    t.simulator.runUntil(30 * sim::kMinute);
    EXPECT_TRUE(troubled);
    EXPECT_TRUE(errored);
    EXPECT_EQ(t.client->stats().rexmitNotifications, 1u);
}

TEST(TcpBasic, RexmitTroubleClearedByRecovery) {
    // R1 fires, then the path heals: the transfer completes and no abort
    // happens; a later stall starts the R1 count over.
    tcp::TcpConfig cfg;
    cfg.rexmitNotifyThreshold = 2;
    TcpPair t({}, cfg);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    t.pipe.config().lossAtoB = 1.0;
    t.client->send(toBytes("delayed"));
    t.simulator.runUntil(30 * sim::kSecond);
    EXPECT_GE(t.client->stats().rexmitNotifications, 1u);
    t.pipe.config().lossAtoB = 0.0;
    t.simulator.runUntil(3 * sim::kMinute);
    EXPECT_FALSE(errored);
    EXPECT_EQ(toPrintable(t.received), "delayed");
    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
}

TEST(TcpBasic, PersistProbesGiveUpWhenPeerVanishes) {
    // Zero-window probing collapses into the same give-up logic as R2: a
    // peer that stops answering probes eventually fails the connection.
    tcp::TcpConfig clientCfg;
    clientCfg.maxPersistProbes = 4;
    tcp::TcpConfig serverCfg;
    serverCfg.recvBufferBytes = 128;
    TcpPair t({}, clientCfg, serverCfg);
    // Manual-read server: never drain, so the window closes.
    t.serverStack.listen(81, serverCfg, [&](tcp::TcpSocket& s) { t.server = &s; });
    t.client->connect(t.pipe.b().address(), 81);
    t.simulator.runUntil(2 * sim::kSecond);
    ASSERT_EQ(t.client->state(), tcp::State::kEstablished);

    const Bytes data = patternBytes(0, 600);
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < data.size()) {
            const std::size_t n = t.client->send(
                BytesView(data.data() + offset, std::min<std::size_t>(128, data.size() - offset)));
            if (n == 0) break;
            offset += n;
        }
    };
    t.client->setOnSendSpace(pump);
    pump();
    t.simulator.runUntil(2 * sim::kMinute);
    ASSERT_TRUE(t.client->tcb().persisting);
    EXPECT_GT(t.client->stats().zeroWindowProbes, 0u);

    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    // Peer answers probes -> probing continues indefinitely (RFC 1122 allows
    // a zero window to persist); only an unreachable peer accumulates.
    t.pipe.config().lossAtoB = 1.0;
    t.pipe.config().lossBtoA = 1.0;
    t.simulator.runUntil(60 * sim::kMinute);
    EXPECT_TRUE(errored);
    EXPECT_EQ(t.client->state(), tcp::State::kFailed);
    EXPECT_EQ(t.client->stats().persistGiveUps, 1u);
}

TEST(TcpBasic, PersistProbesContinueWhilePeerAnswers) {
    tcp::TcpConfig clientCfg;
    clientCfg.maxPersistProbes = 3;
    tcp::TcpConfig serverCfg;
    serverCfg.recvBufferBytes = 128;
    TcpPair t({}, clientCfg, serverCfg);
    t.serverStack.listen(81, serverCfg, [&](tcp::TcpSocket& s) { t.server = &s; });
    t.client->connect(t.pipe.b().address(), 81);
    t.simulator.runUntil(2 * sim::kSecond);

    const Bytes data = patternBytes(0, 600);
    std::size_t offset = 0;
    auto pump = [&] {
        while (offset < data.size()) {
            const std::size_t n = t.client->send(
                BytesView(data.data() + offset, std::min<std::size_t>(128, data.size() - offset)));
            if (n == 0) break;
            offset += n;
        }
    };
    t.client->setOnSendSpace(pump);
    pump();
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    // Probe count far beyond maxPersistProbes, but every probe is answered.
    t.simulator.runUntil(30 * sim::kMinute);
    EXPECT_GT(t.client->stats().zeroWindowProbes, 3u);
    EXPECT_FALSE(errored);
    ASSERT_NE(t.server, nullptr);
    // Reader finally drains; the transfer completes.
    while (t.server->readable() > 0 || t.received.size() < data.size()) {
        const Bytes chunk = t.server->read(128);
        append(t.received, BytesView(chunk));
        t.simulator.runUntil(t.simulator.now() + 10 * sim::kSecond);
        if (t.simulator.now() > 90 * sim::kMinute) break;
    }
    EXPECT_EQ(t.received.size(), data.size());
    EXPECT_TRUE(matchesPattern(0, t.received));
}

TEST(TcpBasic, KeepAliveProbesDetectDeadPeer) {
    tcp::TcpConfig cfg;
    cfg.keepAliveIdle = 30 * sim::kSecond;
    cfg.keepAliveInterval = 10 * sim::kSecond;
    cfg.keepAliveProbes = 3;
    TcpPair t({}, cfg);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    ASSERT_EQ(t.client->state(), tcp::State::kEstablished);
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    // Idle connection, dead path: keep-alive notices within
    // idle + probes*interval.
    t.pipe.config().lossAtoB = 1.0;
    t.pipe.config().lossBtoA = 1.0;
    t.simulator.runUntil(5 * sim::kMinute);
    EXPECT_TRUE(errored);
    EXPECT_EQ(t.client->state(), tcp::State::kFailed);
    EXPECT_GE(t.client->stats().keepAliveProbesSent, 3u);
    EXPECT_EQ(t.client->stats().keepAliveGiveUps, 1u);
}

TEST(TcpBasic, KeepAliveQuietOnLivePeer) {
    tcp::TcpConfig cfg;
    cfg.keepAliveIdle = 20 * sim::kSecond;
    cfg.keepAliveInterval = 5 * sim::kSecond;
    cfg.keepAliveProbes = 2;
    TcpPair t({}, cfg);
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    // Idle but healthy path: probes are answered, the connection lives.
    t.simulator.runUntil(10 * sim::kMinute);
    EXPECT_FALSE(errored);
    EXPECT_EQ(t.client->state(), tcp::State::kEstablished);
    EXPECT_GT(t.client->stats().keepAliveProbesSent, 0u);
}

TEST(TcpBasic, RstOnSegmentToClosedPort) {
    TcpPair t;
    bool errored = false;
    t.client->setOnError([&] { errored = true; });
    t.client->connect(t.pipe.b().address(), 9999);  // nobody listening
    t.simulator.runUntil(5 * sim::kSecond);
    EXPECT_TRUE(errored);
    EXPECT_EQ(t.client->state(), tcp::State::kClosed);
}

TEST(TcpBasic, ZeroCopySendDeliversSameBytes) {
    TcpPair t;
    t.connect();
    t.simulator.runUntil(2 * sim::kSecond);
    auto chunk = std::make_shared<const Bytes>(patternBytes(0, 900));
    ASSERT_EQ(t.client->sendZeroCopy(chunk), 900u);
    t.simulator.runUntil(20 * sim::kSecond);
    ASSERT_EQ(t.received.size(), 900u);
    EXPECT_TRUE(matchesPattern(0, t.received));
}

TEST(TcpBasic, DelayedAckReducesAckCount) {
    // With delayed ACKs, roughly one ACK per two segments (§6.4).
    tcp::TcpConfig delayed;
    delayed.delayedAck = true;
    tcp::TcpConfig immediate;
    immediate.delayedAck = false;

    auto ackCount = [](tcp::TcpConfig serverCfg) {
        TcpPair t({}, {}, serverCfg, 11);
        t.connect();
        t.simulator.runUntil(2 * sim::kSecond);
        const Bytes data = patternBytes(0, 8000);
        std::size_t offset = 0;
        auto pump = [&] {
            while (offset < data.size()) {
                const std::size_t n = t.client->send(BytesView(
                    data.data() + offset, std::min<std::size_t>(462, data.size() - offset)));
                if (n == 0) break;
                offset += n;
            }
        };
        t.client->setOnSendSpace(pump);
        pump();
        t.simulator.runUntil(2 * sim::kMinute);
        EXPECT_EQ(t.received.size(), data.size());
        return t.server->stats().segsSent;
    };

    const auto withDelack = ackCount(delayed);
    const auto without = ackCount(immediate);
    EXPECT_LT(withDelack, without);
    EXPECT_LT(withDelack, without * 3 / 4);
}

}  // namespace
