// Unit tests: 6LoWPAN IPHC compression and fragmentation (paper §6.1,
// Table 6).
#include <gtest/gtest.h>

#include "tcplp/lowpan/frag.hpp"
#include "tcplp/lowpan/iphc.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::lowpan;

namespace {
ip6::Packet makePacket(ip6::Address src, ip6::Address dst, std::size_t payloadLen) {
    ip6::Packet p;
    p.src = src;
    p.dst = dst;
    p.nextHeader = ip6::kProtoTcp;
    p.hopLimit = 64;
    p.payload = patternBytes(0, payloadLen);
    return p;
}
}  // namespace

TEST(Iphc, LinkLocalFullyElides) {
    // Link-local addresses derived from the MAC: best case, few bytes.
    const auto p = makePacket(ip6::Address::linkLocal(10), ip6::Address::linkLocal(11), 0);
    const auto r = compressHeader(p, 10, 11);
    EXPECT_LE(r.size(), 4u);  // dispatch(2) + NH(1); HL=64 elided

    ip6::Packet out;
    const auto consumed = decompressHeader(r.bytes, 10, 11, out);
    ASSERT_TRUE(consumed);
    EXPECT_EQ(out.src, p.src);
    EXPECT_EQ(out.dst, p.dst);
    EXPECT_EQ(out.hopLimit, 64);
    EXPECT_EQ(out.nextHeader, ip6::kProtoTcp);
}

TEST(Iphc, MeshLocalUsesContext) {
    const auto p = makePacket(ip6::Address::meshLocal(10), ip6::Address::meshLocal(11), 0);
    const auto r = compressHeader(p, 10, 11);
    EXPECT_EQ(r.size(), 2u + 1u + 8u + 8u);  // IID carried for both

    ip6::Packet out;
    ASSERT_TRUE(decompressHeader(r.bytes, 10, 11, out));
    EXPECT_EQ(out.src, p.src);
    EXPECT_EQ(out.dst, p.dst);
}

TEST(Iphc, CloudAddressCarriedInline) {
    const auto p = makePacket(ip6::Address::meshLocal(10), ip6::Address::cloud(1), 0);
    const auto r = compressHeader(p, 10, 1);
    // Table 6: compressed IPv6 header is 2-28 bytes; off-mesh dst is the
    // expensive end of that range.
    EXPECT_GE(r.size(), 20u);
    EXPECT_LE(r.size(), 28u);

    ip6::Packet out;
    ASSERT_TRUE(decompressHeader(r.bytes, 10, 1, out));
    EXPECT_EQ(out.dst, p.dst);
}

TEST(Iphc, EcnBitsSurvive) {
    auto p = makePacket(ip6::Address::meshLocal(3), ip6::Address::meshLocal(4), 0);
    p.setEcn(ip6::Ecn::kCongestionExperienced);
    const auto r = compressHeader(p, 3, 4);
    ip6::Packet out;
    ASSERT_TRUE(decompressHeader(r.bytes, 3, 4, out));
    EXPECT_EQ(out.ecn(), ip6::Ecn::kCongestionExperienced);
}

TEST(Iphc, NonDefaultHopLimitInline) {
    auto p = makePacket(ip6::Address::meshLocal(3), ip6::Address::meshLocal(4), 0);
    p.hopLimit = 17;
    const auto r = compressHeader(p, 3, 4);
    ip6::Packet out;
    ASSERT_TRUE(decompressHeader(r.bytes, 3, 4, out));
    EXPECT_EQ(out.hopLimit, 17);
}

TEST(Frag, SmallDatagramUnfragmented) {
    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::meshLocal(2), 40);
    const auto frames = encodeDatagram(p, 1, 2, 7, 104);
    ASSERT_EQ(frames.size(), 1u);
    const auto info = parseFragmentHeader(frames[0]);
    ASSERT_TRUE(info);
    EXPECT_FALSE(info->isFragment);
}

TEST(Frag, LargeDatagramFragmentsAndCounts) {
    // A 462-byte TCP payload + headers: the paper's 5-frame MSS ballpark.
    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::cloud(2), 462 + 32);
    const std::size_t frames = frameCountFor(p, 1, 2, 104);
    EXPECT_GE(frames, 5u);
    EXPECT_LE(frames, 7u);
}

TEST(Frag, ReassemblyRoundTrip) {
    sim::Simulator simulator;
    ip6::Packet got;
    bool delivered = false;
    Reassembler reasm(simulator, [&](ip6::Packet p, ip6::ShortAddr) {
        got = std::move(p);
        delivered = true;
    });

    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::meshLocal(2), 700);
    const auto frames = encodeDatagram(p, 1, 2, 42, 104);
    ASSERT_GT(frames.size(), 1u);
    for (const PacketBuffer& f : frames) reasm.input(1, 2, f);

    ASSERT_TRUE(delivered);
    EXPECT_EQ(got.payload, p.payload);
    EXPECT_EQ(got.src, p.src);
    EXPECT_EQ(got.dst, p.dst);
}

TEST(Frag, MissingFragmentDropsWholeDatagram) {
    sim::Simulator simulator;
    int delivered = 0;
    Reassembler reasm(simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; });

    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::meshLocal(2), 700);
    auto frames = encodeDatagram(p, 1, 2, 43, 104);
    ASSERT_GE(frames.size(), 3u);
    // Drop the middle fragment: the datagram must not be delivered (§6.1:
    // "the loss of one frame results in the loss of an entire packet").
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i == 1) continue;
        reasm.input(1, 2, frames[i]);
    }
    EXPECT_EQ(delivered, 0);
    EXPECT_GE(reasm.stats().dropped, 1u);
}

TEST(Frag, InterleavedSourcesReassembleIndependently) {
    sim::Simulator simulator;
    int delivered = 0;
    Reassembler reasm(simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; });

    const auto pa = makePacket(ip6::Address::meshLocal(1), ip6::Address::meshLocal(9), 300);
    const auto pb = makePacket(ip6::Address::meshLocal(2), ip6::Address::meshLocal(9), 300);
    const auto fa = encodeDatagram(pa, 1, 9, 1, 104);
    const auto fb = encodeDatagram(pb, 2, 9, 1, 104);  // same tag, other source
    for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
        if (i < fa.size()) reasm.input(1, 9, fa[i]);
        if (i < fb.size()) reasm.input(2, 9, fb[i]);
    }
    EXPECT_EQ(delivered, 2);
}

TEST(Frag, ReassemblyTimesOut) {
    sim::Simulator simulator;
    int delivered = 0;
    Reassembler reasm(simulator, [&](ip6::Packet, ip6::ShortAddr) { ++delivered; },
                      1 * sim::kSecond);

    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::meshLocal(2), 700);
    const auto frames = encodeDatagram(p, 1, 2, 5, 104);
    reasm.input(1, 2, frames[0]);
    simulator.runUntil(3 * sim::kSecond);
    // Trigger expiry scan with an unrelated frame.
    const auto q = makePacket(ip6::Address::meshLocal(3), ip6::Address::meshLocal(2), 10);
    reasm.input(3, 2, encodeDatagram(q, 3, 2, 6, 104)[0]);
    EXPECT_EQ(reasm.stats().timedOut, 1u);
    // Late remainder of the stale datagram must not resurrect it.
    for (std::size_t i = 1; i < frames.size(); ++i) reasm.input(1, 2, frames[i]);
    EXPECT_EQ(delivered, 1);  // only the unrelated small datagram
}

TEST(Frag, FrameCountMatchesEncoderForAllSizes) {
    // frameCountFor computes fragmentation arithmetic without materializing
    // frames; it must agree with the encoder for every size and budget.
    for (const std::size_t budget : {53u, 80u, 104u}) {
        for (std::size_t len = 0; len <= 1200; len += 7) {
            const auto p =
                makePacket(ip6::Address::meshLocal(1), ip6::Address::cloud(2), len);
            EXPECT_EQ(frameCountFor(p, 1, 2, budget),
                      encodeDatagram(p, 1, 2, 3, budget).size())
                << "payload=" << len << " budget=" << budget;
        }
    }
}

TEST(Frag, Table6HeaderOverheadShape) {
    // First frame carries FRAG1 + IPHC + TCP header; subsequent frames only
    // FRAGN (5 B) — the "significantly less in subsequent frames" property.
    const auto p = makePacket(ip6::Address::meshLocal(1), ip6::Address::cloud(2), 600);
    const auto frames = encodeDatagram(p, 1, 2, 9, 104);
    ASSERT_GE(frames.size(), 3u);
    // Subsequent fragments: 5-byte overhead over pure payload.
    const auto info = parseFragmentHeader(frames[1]);
    ASSERT_TRUE(info && info->isFragment && !info->isFirst);
    EXPECT_EQ(info->headerLen, kFragNHeaderBytes);
}
