// Unit tests: radio/channel model and CSMA MAC — collisions, hidden
// terminals, link retries, duty cycling.
#include <gtest/gtest.h>

#include "tcplp/mac/csma.hpp"
#include "tcplp/mac/sleepy.hpp"
#include "tcplp/phy/channel.hpp"
#include "tcplp/phy/radio.hpp"
#include "tcplp/sim/simulator.hpp"

using namespace tcplp;
using namespace tcplp::phy;

TEST(Frame, AirTimeMatchesPaperTable5) {
    Frame f;
    f.payload = Bytes(kMaxMacPayloadBytes, 0);
    EXPECT_EQ(f.mpduBytes(), kMaxFrameBytes);
    // Table 5: ~4.1 ms for a full 127 B frame at 250 kb/s.
    EXPECT_NEAR(sim::toMillis(f.airTime()), 4.1, 0.3);
}

TEST(Channel, DeliversWithinRangeOnly) {
    sim::Simulator simulator;
    Channel ch(simulator, 12.0);
    Radio a(simulator, ch, 1, {0, 0});
    Radio b(simulator, ch, 2, {10, 0});
    Radio c(simulator, ch, 3, {30, 0});  // out of range of a

    int bGot = 0, cGot = 0;
    b.setReceiveCallback([&](const Frame&) { ++bGot; });
    c.setReceiveCallback([&](const Frame&) { ++cGot; });

    Frame f;
    f.src = 1;
    f.dst = kBroadcast;
    f.payload = toBytes("x");
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(bGot, 1);
    EXPECT_EQ(cGot, 0);
}

TEST(Channel, HiddenSendersCollideAtCommonReceiver) {
    // a and b are out of carrier-sense range of each other; r hears both.
    sim::Simulator simulator;
    Channel ch(simulator, 12.0);
    Radio a(simulator, ch, 1, {0, 0});
    Radio r(simulator, ch, 2, {10, 0});
    Radio b(simulator, ch, 3, {20, 0});

    int rGot = 0;
    r.setReceiveCallback([&](const Frame&) { ++rGot; });

    Frame f;
    f.dst = kBroadcast;
    f.payload = patternBytes(0, 50);
    f.src = 1;
    a.transmit(f, nullptr);
    f.src = 3;
    b.transmit(f, nullptr);  // same instant, can't hear a: overlap at r
    simulator.run();
    EXPECT_EQ(rGot, 0);
    EXPECT_GE(ch.framesCollided(), 1u);
}

TEST(Channel, PerLinkLossDropsFrames) {
    sim::Simulator simulator(99);
    Channel ch(simulator, 20.0);
    Radio a(simulator, ch, 1, {0, 0});
    Radio b(simulator, ch, 2, {10, 0});
    ch.setLinkLoss(1, 2, 1.0);

    int got = 0;
    b.setReceiveCallback([&](const Frame&) { ++got; });
    Frame f;
    f.src = 1;
    f.dst = kBroadcast;
    f.payload = toBytes("y");
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(ch.framesLostToFading(), 1u);
}

TEST(Radio, AutoAckAnswersUnicast) {
    sim::Simulator simulator;
    Channel ch(simulator, 20.0);
    Radio a(simulator, ch, 1, {0, 0});
    Radio b(simulator, ch, 2, {10, 0});

    int acks = 0;
    a.setReceiveCallback([&](const Frame& f) {
        if (f.type == FrameType::kAck) ++acks;
    });
    Frame f;
    f.src = 1;
    f.dst = 2;
    f.ackRequest = true;
    f.payload = toBytes("data");
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(acks, 1);
    EXPECT_EQ(b.autoAcksSent(), 1u);
}

TEST(Radio, SleepingRadioMissesFrames) {
    sim::Simulator simulator;
    Channel ch(simulator, 20.0);
    Radio a(simulator, ch, 1, {0, 0});
    Radio b(simulator, ch, 2, {10, 0});
    b.setSleeping(true);

    int got = 0;
    b.setReceiveCallback([&](const Frame&) { ++got; });
    Frame f;
    f.src = 1;
    f.dst = kBroadcast;
    f.payload = toBytes("z");
    a.transmit(f, nullptr);
    simulator.run();
    EXPECT_EQ(got, 0);
}

TEST(Radio, DutyCycleAccountsSleep) {
    sim::Simulator simulator;
    Channel ch(simulator, 20.0);
    Radio a(simulator, ch, 1, {0, 0});
    a.setSleeping(true);
    simulator.schedule(750'000, [&] { a.setSleeping(false); });
    simulator.runUntil(1'000'000);
    const double dc = a.energy().radioDutyCycle(a.state(), simulator.now());
    EXPECT_NEAR(dc, 0.25, 0.01);
}

// --- CSMA MAC ----------------------------------------------------------------

struct MacPair {
    sim::Simulator simulator;
    Channel channel{simulator, 12.0};
    Radio radioA{simulator, channel, 1, {0, 0}};
    Radio radioB{simulator, channel, 2, {10, 0}};
    mac::CsmaMac macA;
    mac::CsmaMac macB;

    explicit MacPair(mac::CsmaConfig cfg = {}, std::uint64_t seed = 3)
        : simulator(seed), macA(radioA, cfg), macB(radioB, cfg) {}
};

TEST(CsmaMac, UnicastDeliveredAndAcked) {
    MacPair p;
    Bytes got;
    p.macB.setReceiveCallback([&](NodeId src, const PacketBuffer& payload) {
        EXPECT_EQ(src, 1);
        got = payload.toBytes();
    });
    bool ok = false;
    p.macA.send(2, toBytes("hello mac"), [&](const mac::SendResult& r) { ok = r.success; });
    p.simulator.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(toPrintable(got), "hello mac");
    EXPECT_EQ(p.macA.stats().dataDelivered, 1u);
}

TEST(CsmaMac, RetriesWhenAckLost) {
    MacPair p;
    // Receiver hears us but we never hear the ACK (asymmetric loss).
    p.channel.setLinkLossDirectional(2, 1, 1.0);
    int delivered = 0;
    p.macB.setReceiveCallback([&](NodeId, const PacketBuffer&) { ++delivered; });
    bool ok = true;
    p.macA.send(2, toBytes("x"), [&](const mac::SendResult& r) { ok = r.success; });
    p.simulator.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(p.macA.stats().retries, 7u);  // maxFrameRetries
    EXPECT_EQ(delivered, 1);               // duplicates suppressed
    EXPECT_GE(p.macB.stats().duplicatesSuppressed, 6u);
}

TEST(CsmaMac, QueueTransmitsInOrder) {
    MacPair p;
    std::string got;
    p.macB.setReceiveCallback(
        [&](NodeId, const PacketBuffer& payload) { got += toPrintable(payload); });
    p.macA.send(2, toBytes("a"));
    p.macA.send(2, toBytes("b"));
    p.macA.send(2, toBytes("c"));
    p.simulator.run();
    EXPECT_EQ(got, "abc");
}

TEST(CsmaMac, RetryDelayBoundsRespected) {
    mac::CsmaConfig cfg;
    cfg.retryDelayMax = sim::fromMillis(40);
    MacPair p(cfg);
    p.channel.setLinkLossDirectional(2, 1, 1.0);  // force retries
    sim::Time start = 0;
    p.macA.send(2, toBytes("x"), nullptr);
    (void)start;
    p.simulator.run();
    // 7 retries each with up to 40 ms extra delay: total under ~400 ms + tx.
    EXPECT_LT(p.simulator.now(), sim::fromMillis(600));
    EXPECT_GT(p.simulator.now(), sim::fromMillis(40));  // some delay happened
}

TEST(CsmaMac, HiddenTerminalCollisionsReducedByRetryDelay) {
    // Three nodes in a line: 1 and 3 cannot hear each other, both send to 2.
    auto run = [](sim::Time d, std::uint64_t seed) {
        sim::Simulator simulator(seed);
        Channel ch(simulator, 12.0);
        Radio r1(simulator, ch, 1, {0, 0});
        Radio r2(simulator, ch, 2, {10, 0});
        Radio r3(simulator, ch, 3, {20, 0});
        mac::CsmaConfig cfg;
        cfg.retryDelayMax = d;
        mac::CsmaMac m1(r1, cfg), m2(r2, cfg), m3(r3, cfg);
        int delivered = 0;
        m2.setReceiveCallback([&](NodeId, const PacketBuffer&) { ++delivered; });
        int failures = 0;
        auto cb = [&](const mac::SendResult& r) {
            if (!r.success) ++failures;
        };
        for (int i = 0; i < 30; ++i) {
            m1.send(2, patternBytes(std::size_t(i), 80), cb);
            m3.send(2, patternBytes(std::size_t(i) + 1000, 80), cb);
        }
        simulator.run();
        return std::pair<int, std::uint64_t>(failures, ch.framesCollided());
    };
    std::uint64_t collisions0 = 0, collisions40 = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        collisions0 += run(0, seed).second;
        collisions40 += run(sim::fromMillis(40), seed).second;
    }
    // §7.1: the random inter-retry delay decorrelates retransmissions.
    EXPECT_LT(collisions40, collisions0);
}

TEST(SleepyMac, RadioSleepsBetweenPolls) {
    sim::Simulator simulator;
    Channel ch(simulator, 12.0);
    Radio parentRadio(simulator, ch, 1, {0, 0});
    Radio leafRadio(simulator, ch, 2, {10, 0});
    mac::CsmaMac parentMac(parentRadio);
    mac::CsmaMac leafMac(leafRadio);
    parentMac.registerSleepyChild(2);

    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kFixed;
    sc.sleepInterval = sim::fromMillis(500);
    mac::SleepyMac sleepy(leafMac, 1, sc);
    sleepy.start();
    simulator.runUntil(10 * sim::kSecond);

    const double dc = leafRadio.energy().radioDutyCycle(leafRadio.state(), simulator.now());
    EXPECT_LT(dc, 0.10);  // mostly asleep
    EXPECT_GE(sleepy.pollsSent(), 15u);
}

TEST(SleepyMac, IndirectDeliveryViaPoll) {
    sim::Simulator simulator;
    Channel ch(simulator, 12.0);
    Radio parentRadio(simulator, ch, 1, {0, 0});
    Radio leafRadio(simulator, ch, 2, {10, 0});
    mac::CsmaMac parentMac(parentRadio);
    mac::CsmaMac leafMac(leafRadio);
    parentMac.registerSleepyChild(2);

    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kFixed;
    sc.sleepInterval = sim::fromMillis(200);
    mac::SleepyMac sleepy(leafMac, 1, sc);
    Bytes got;
    sleepy.setReceiveCallback([&](NodeId, const PacketBuffer& payload) { got = payload.toBytes(); });
    sleepy.start();

    // Parent queues a frame while the leaf sleeps; delivered on next poll.
    bool sent = false;
    parentMac.send(2, toBytes("queued frame"),
                   [&](const mac::SendResult& r) { sent = r.success; });
    EXPECT_EQ(parentMac.indirectQueueDepth(2), 1u);
    simulator.runUntil(2 * sim::kSecond);
    EXPECT_TRUE(sent);
    EXPECT_EQ(toPrintable(got), "queued frame");
    EXPECT_EQ(parentMac.indirectQueueDepth(2), 0u);
}

TEST(SleepyMac, AdaptiveIntervalResetsOnTrafficAndDecays) {
    sim::Simulator simulator;
    Channel ch(simulator, 12.0);
    Radio parentRadio(simulator, ch, 1, {0, 0});
    Radio leafRadio(simulator, ch, 2, {10, 0});
    mac::CsmaMac parentMac(parentRadio);
    mac::CsmaMac leafMac(leafRadio);
    parentMac.registerSleepyChild(2);

    mac::SleepyConfig sc;
    sc.policy = mac::PollPolicy::kAdaptive;
    sc.sminAdaptive = sim::fromMillis(20);
    sc.smaxAdaptive = 5 * sim::kSecond;
    mac::SleepyMac sleepy(leafMac, 1, sc);
    sleepy.setReceiveCallback([](NodeId, const PacketBuffer&) {});
    sleepy.start();

    // With no traffic the interval doubles to smax (Appendix C.2).
    simulator.runUntil(60 * sim::kSecond);
    EXPECT_EQ(sleepy.currentSleepInterval(), 5 * sim::kSecond);

    // Traffic resets it to smin: after the queued frame is delivered on the
    // next poll, the leaf polls at smin and decays — many polls follow in a
    // short window, unlike the smax cadence (one per 5 s).
    const auto pollsBefore = sleepy.pollsSent();
    parentMac.send(2, toBytes("wake"), nullptr);
    simulator.runUntil(72 * sim::kSecond);
    EXPECT_GE(sleepy.pollsSent() - pollsBefore, 6u);
}

TEST(DeafListening, HardwareCsmaMissesIncomingFrames) {
    // §4: with deaf listening (radio sleeps during backoff), a node busy
    // transmitting misses frames sent to it. Compare delivery of B->A
    // traffic while A is also sending, software vs deaf CSMA.
    auto run = [](bool softwareCsma) {
        sim::Simulator simulator(17);
        Channel ch(simulator, 12.0);
        Radio ra(simulator, ch, 1, {0, 0});
        Radio rb(simulator, ch, 2, {10, 0});
        mac::CsmaConfig cfg;
        cfg.softwareCsma = softwareCsma;
        cfg.retryDelayMax = sim::fromMillis(10);
        mac::CsmaMac ma(ra, cfg);
        mac::CsmaMac mb(rb, cfg);
        int aGot = 0;
        ma.setReceiveCallback([&](NodeId, const PacketBuffer&) { ++aGot; });
        mb.setReceiveCallback([](NodeId, const PacketBuffer&) {});
        for (int i = 0; i < 40; ++i) {
            ma.send(2, patternBytes(std::size_t(i), 90), nullptr);
            mb.send(1, patternBytes(std::size_t(i) + 5000, 90), nullptr);
        }
        simulator.run();
        return aGot;
    };
    const int software = run(true);
    const int deaf = run(false);
    EXPECT_GE(software, deaf);
    EXPECT_EQ(software, 40);
}
