// Chaos campaign machinery: fault-aware runs must be byte-reproducible,
// shard-safe, watchdog-bounded, and actually survive the injected failures.
//
// The load-bearing guarantees pinned here:
//
//  1. Determinism: identical (spec, seed) chaos runs produce byte-identical
//     rows and RNG digests, and a sharded sweep (--jobs 8) merges to exactly
//     the serial bytes — fault injection never perturbs reproducibility.
//
//  2. No chaos run can hang: the progress watchdog converts an intentionally
//     wedged flow (connection dead, reconnect disabled) into an attributed
//     failure in BOTH execution modes — serial in-process and forked
//     workers.
//
//  3. Survival (the PR's acceptance scenario): a border-router reboot
//     mid-transfer kills the connection via the tightened R2 budget, the
//     app-level reconnect re-establishes the flow, and the transfer
//     completes with verified content.
#include <gtest/gtest.h>

#include "tcplp/scenario/chaos.hpp"
#include "tcplp/scenario/sweep.hpp"
#include "tcplp/scenario/workloads.hpp"

using namespace tcplp;
using namespace tcplp::scenario;

namespace {

/// Small chaos scenario: 2-hop line, a first-hop blackout plus a randomized
/// relay-reboot pair — every fault type of the sweep axis in a fast run.
ScenarioDef chaosDef() {
    ScenarioDef def;
    def.name = "chaos_test";
    def.base.topology.kind = TopologyKind::kLine;
    def.base.topology.hops = 2;
    def.base.workload.totalBytes = 12000;
    def.base.workload.timeLimit = 5 * sim::kMinute;
    def.base.fault.chaos = true;
    def.base.fault.plan.fixed = {
        {sim::FaultKind::kLinkBlackout, 2 * sim::kSecond, 3 * sim::kSecond, 1, 10},
    };
    sim::RandomFaultBurst burst;
    burst.kind = sim::FaultKind::kNodeReboot;
    burst.count = 2;
    burst.windowStart = 1 * sim::kSecond;
    burst.windowEnd = 20 * sim::kSecond;
    burst.durationMin = 1 * sim::kSecond;
    burst.durationMax = 3 * sim::kSecond;
    burst.candidates = {10};  // the relay
    def.base.fault.plan.random = {burst};
    def.axes = {{"fault", {0, 1}}};
    def.seeds = {1, 2};
    def.bind = [](ScenarioSpec& s, const Point& p) {
        s.fault.enabled = faultFromAxis(p.value("fault"));
    };
    return def;
}

/// A flow guaranteed to wedge: the blackout kills the connection (tiny R2
/// budget) and reconnect is disabled, so nothing ever moves again after the
/// window ends — exactly what the watchdog exists to catch.
ScenarioDef wedgedDef() {
    ScenarioDef def;
    def.name = "chaos_wedged";
    def.base.topology.kind = TopologyKind::kLine;
    def.base.topology.hops = 1;
    def.base.workload.totalBytes = 500000;  // cannot finish before the fault
    def.base.workload.timeLimit = 2 * sim::kMinute;
    def.base.fault.chaos = true;
    def.base.fault.enabled = true;
    def.base.fault.plan.fixed = {
        {sim::FaultKind::kLinkBlackout, 5 * sim::kSecond, 10 * sim::kSecond, 0, 0},
    };
    def.base.fault.maxRetransmits = 2;   // give up during the blackout
    def.base.fault.reconnect = false;    // ... and stay dead
    def.base.fault.watchdogStall = 20 * sim::kSecond;
    // Two points: the shard runner clamps jobs to the task count, so a
    // single-seed def would silently fall back to the serial path and never
    // exercise the forked-worker failure attribution.
    def.seeds = {1, 2};
    return def;
}

}  // namespace

TEST(Chaos, TimelineOutageUnionMergesOverlaps) {
    FaultTimeline tl;
    tl.events = {
        {sim::FaultKind::kLinkBlackout, 10 * sim::kSecond, 10 * sim::kSecond, 0, 0},
        {sim::FaultKind::kNodeReboot, 15 * sim::kSecond, 10 * sim::kSecond, 3, 0},
        {sim::FaultKind::kLinkBlackout, 40 * sim::kSecond, 5 * sim::kSecond, 0, 0},
    };
    EXPECT_DOUBLE_EQ(tl.outageSeconds(), 20.0);  // [10,25) + [40,45)
    EXPECT_TRUE(tl.outageActive(12 * sim::kSecond));
    EXPECT_TRUE(tl.outageActive(20 * sim::kSecond));
    EXPECT_FALSE(tl.outageActive(30 * sim::kSecond));
    EXPECT_EQ(tl.lastOutageEnd(), 45 * sim::kSecond);
    EXPECT_EQ(tl.lastOutageEndBefore(30 * sim::kSecond), 25 * sim::kSecond);
    EXPECT_EQ(tl.lastOutageEndBefore(5 * sim::kSecond), 0);
}

TEST(Chaos, SameSeedAndPlanAreByteIdentical) {
    const ScenarioDef def = chaosDef();
    const SweepResult a = runSweep(def);
    const SweepResult b = runSweep(def);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.jsonLines(), b.jsonLines());
    for (const RunRecord& r : a.records) {
        EXPECT_NE(r.row.number("rng_digest"), 0.0);
        EXPECT_EQ(r.row.number("content_ok"), 1.0);
    }
    // The fault axis actually injects: fault rows see outage time, clean
    // rows see none.
    EXPECT_GT(a.mean("fault_events", {{"fault", 1.0}}), 0.0);
    EXPECT_GT(a.mean("outage_s", {{"fault", 1.0}}), 0.0);
    EXPECT_EQ(a.mean("fault_events", {{"fault", 0.0}}), 0.0);
    EXPECT_EQ(a.mean("outage_s", {{"fault", 0.0}}), 0.0);
}

TEST(Chaos, ShardedSweepMergesToSerialBytes) {
    const ScenarioDef def = chaosDef();
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions sharded;
    sharded.jobs = 8;
    const SweepResult a = runSweep(def, serial);
    const SweepResult b = runSweep(def, sharded);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.jsonLines(), b.jsonLines());
}

TEST(Chaos, WatchdogFailsWedgedFlowInProcess) {
    const SweepResult r = runSweep(wedgedDef());
    ASSERT_FALSE(r.ok);
    // The serial path wraps the throw into an attributed in-process error.
    EXPECT_NE(r.error.find("chaos watchdog"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("chaos_wedged"), std::string::npos) << r.error;
}

TEST(Chaos, WatchdogFailsWedgedFlowAcrossForkedWorkers) {
    SweepOptions sharded;
    sharded.jobs = 2;
    const SweepResult r = runSweep(wedgedDef(), sharded);
    ASSERT_FALSE(r.ok);
    ASSERT_FALSE(r.failures.empty());
    const ShardFailure& f = r.failures.front();
    EXPECT_TRUE(f.taskKnown);
    EXPECT_NE(f.message().find("chaos_wedged"), std::string::npos) << f.message();
    // The worker's stderr tail carries the watchdog diagnosis.
    EXPECT_NE(f.message().find("chaos watchdog"), std::string::npos) << f.message();
}

// The PR's acceptance scenario: border router reboots 4 s into a 2-hop
// transfer (mid-flight — the clean run takes ~8.5 s), stays dark for 20 s. R2 (maxRetransmits = 3) gives up during the
// outage; the app reconnect ladder re-establishes the flow and finishes the
// transfer with verified content.
TEST(Chaos, BorderRouterRestartReestablishesFlow) {
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kLine;
    spec.topology.hops = 2;
    spec.workload.totalBytes = 30000;
    spec.workload.timeLimit = 10 * sim::kMinute;
    spec.fault.chaos = true;
    spec.fault.enabled = true;
    spec.fault.plan.fixed = {
        {sim::FaultKind::kNodeReboot, 4 * sim::kSecond, 20 * sim::kSecond, 1, 0},
    };
    spec.fault.maxRetransmits = 3;

    const ChaosBulkResult r = runChaosBulk(spec, 1);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.contentOk);
    EXPECT_EQ(r.bytes, 30000u);
    EXPECT_GE(r.reconnects, 1);
    EXPECT_GE(r.giveUps, 1u);          // R2 fired during the outage
    EXPECT_GE(r.timeToRecoverS, 0.0);  // flow came back after the outage
    EXPECT_GT(r.goodputKbps, 0.0);
}

// Endpoint crash: the sender mote itself reboots mid-transfer, losing all
// TCP state. The reboot listener drops the connections silently (no FIN/RST
// reaches the peer) and the app resumes from the acked offset on recovery.
TEST(Chaos, SenderMoteRebootResumesFromAckedOffset) {
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kLine;
    spec.topology.hops = 1;
    spec.workload.totalBytes = 60000;
    spec.workload.timeLimit = 10 * sim::kMinute;
    spec.fault.chaos = true;
    spec.fault.enabled = true;
    spec.fault.plan.fixed = {
        {sim::FaultKind::kNodeReboot, 3 * sim::kSecond, 3 * sim::kSecond, 10, 0},
    };

    const ChaosBulkResult r = runChaosBulk(spec, 1);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.contentOk);
    EXPECT_GE(r.reconnects, 1);
    EXPECT_GT(r.goodputKbps, 0.0);
}

// The clean baseline of a chaos scenario shares the chaos schema but must
// behave exactly like a plain bulk run: no reconnects, no give-ups, full
// delivery.
TEST(Chaos, CleanBaselineCompletesWithoutSurvivalMachinery) {
    ScenarioSpec spec;
    spec.topology.kind = TopologyKind::kLine;
    spec.topology.hops = 1;
    spec.workload.totalBytes = 20000;
    spec.workload.timeLimit = 5 * sim::kMinute;
    spec.fault.chaos = true;  // chaos runner, but no plan armed

    const ChaosBulkResult r = runChaosBulk(spec, 1);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.contentOk);
    EXPECT_EQ(r.reconnects, 0);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.faultEvents, 0u);
    EXPECT_DOUBLE_EQ(r.outageSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.timeToRecoverS, -1.0);
}
